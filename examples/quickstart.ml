(* Quickstart: define your own deterministic object type and determine its
   consensus number and recoverable consensus number.

   Run with:  dune exec examples/quickstart.exe *)

(* A "sticky pair" object: it remembers the first two distinct proposals
   made to it, in order.  Values encode (first, second) where 0 = empty:
   a small custom type, written exactly the way a user of the library
   would. *)
let sticky_pair =
  (* Values: 0 = (empty, empty); 1 + f = (f, empty) for f in {0,1};
     3 + 2f + s = (f, s).  Ops: 0 = propose 0, 1 = propose 1, 2 = read.
     Proposals respond with the first sticky value. *)
  let first_of v = if v = 0 then None else if v <= 2 then Some (v - 1) else Some ((v - 3) / 2) in
  Objtype.make ~name:"sticky-pair" ~num_values:7 ~num_ops:3 ~num_responses:9
    ~op_name:(function 0 -> "propose(0)" | 1 -> "propose(1)" | _ -> "read")
    (fun v o ->
      if o = 2 then (2 + v, v)
      else
        match first_of v with
        | None -> (o, 1 + o)
        | Some f when v <= 2 -> (f, 3 + (2 * f) + o)
        | Some f -> (f, v))

let () =
  Format.printf "Type under analysis: %a@.@." Objtype.pp sticky_pair;

  (* One call determines everything below a cap. *)
  let analysis = Numbers.analyze ~cap:5 sticky_pair in
  Format.printf "%a@.@." Analysis.pp analysis;

  (* The certificates explain *why*: replay them independently. *)
  (match analysis.Analysis.recording.Analysis.certificate with
  | Some cert ->
      Format.printf "Recording certificate found by the decider:@.%a@." Certificate.pp cert;
      Format.printf "Independent replay validates it: %b@.@."
        (Certificate.check_recording cert)
  | None -> Format.printf "No recording certificate below the cap.@.@.");

  (* Compare with the classical anchors from the literature. *)
  Format.printf "For reference:@.";
  List.iter
    (fun ty -> Format.printf "%a@." Analysis.pp (Numbers.analyze ~cap:4 ty))
    [ Gallery.register 2; Gallery.test_and_set; Gallery.sticky_bit ];

  (* And render the state machine, as in the paper's Figure 3. *)
  Format.printf "@.State machine (values reachable from the initial value):@.%s"
    (Dot.to_ascii sticky_pair)
