(* n-process recoverable consensus, synthesized from certificates: the
   executable face of DFFR Theorem 8 + the paper's Theorem 13 at full
   strength.  The planner asks the decider for a clean recording
   certificate at every node of a binary tournament over the processes;
   planning succeeds exactly up to the type's recoverable consensus
   number.

   Run with:  dune exec examples/tournament_consensus.exe *)

let () =
  let ty = Gallery.team_ladder ~cap:4 in
  Format.printf "type: %a@." Objtype.pp ty;
  Format.printf "recoverable consensus number: %s@.@."
    (Analysis.level_to_string
       (Option.get (Analysis.recoverable_consensus_number (Numbers.analyze ~cap:5 ty))));

  (* Plan a 4-process tournament. *)
  (match Tournament.plan ty ~nprocs:4 with
  | Error m -> Format.printf "planning failed: %s@." m
  | Ok plan ->
      Format.printf "%a@.@." Tournament.pp_plan plan;
      let p = Tournament.consensus plan in

      (* One crash-heavy run, narrated. *)
      let inputs = [| 1; 0; 0; 1 |] in
      let adv = Adversary.random ~crash_prob:0.3 ~seed:5 ~nprocs:4 in
      let c0 = Config.initial p ~inputs in
      let final, sched, out =
        Exec.run_adversary p c0
          ~pick:(fun ~decided b -> adv ~decided b)
          ~budget:(Budget.counter ~z:1 ~nprocs:4)
          ~fuel:4000 ()
      in
      Format.printf "inputs: %s@."
        (String.concat "" (List.map string_of_int (Array.to_list inputs)));
      Format.printf "schedule (%d events, %d crashes): %s@." (List.length sched)
        (List.length
           (List.filter (function Sched.Crash _ -> true | _ -> false) sched))
        (Sched.to_string sched);
      Array.iteri
        (fun i d ->
          match d with
          | Some v -> Format.printf "p%d decided %d@." i v
          | None -> Format.printf "p%d undecided@." i)
        (Config.decisions p final);
      Format.printf "all decided: %b, verdict: %a@.@." out.Exec.all_decided
        Checker.pp_verdict (Checker.consensus p final);

      (* Many more, silently. *)
      let bad = ref 0 in
      for seed = 1 to 500 do
        let adv = Adversary.random ~crash_prob:0.3 ~seed ~nprocs:4 in
        let c0 = Config.initial p ~inputs:[| seed land 1; (seed lsr 1) land 1; 0; 1 |] in
        let final, _, out =
          Exec.run_adversary p c0
            ~pick:(fun ~decided b -> adv ~decided b)
            ~budget:(Budget.counter ~z:1 ~nprocs:4)
            ~fuel:4000 ()
        in
        if not (out.Exec.all_decided && Checker.is_ok (Checker.consensus p final)) then
          incr bad
      done;
      Format.printf "500 crash storms: %d violations@.@." !bad);

  (* The flip side, Theorem 13's necessity: a type whose recoverable
     consensus number is too low cannot be planned. *)
  match Tournament.plan (Gallery.team_ladder ~cap:4) ~nprocs:5 with
  | Error m -> Format.printf "5 processes on a level-4 type: %s@." m
  | Ok _ -> Format.printf "unexpected: 5-process plan on a level-4 type@."
