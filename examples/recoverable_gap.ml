(* The paper's two gap families between consensus numbers and recoverable
   consensus numbers, demonstrated computationally.

   Run with:  dune exec examples/recoverable_gap.exe *)

let rule () = print_endline (String.make 72 '-')

let () =
  rule ();
  print_endline "1. Readable types: the X_4 gap (corollary to Theorem 13)";
  rule ();
  let x4 = Gallery.x4_witness in
  Format.printf "%a@.@." Objtype.pp_table x4;
  Format.printf "%a@.@." Analysis.pp (Numbers.analyze ~cap:5 x4);
  Format.printf
    "Consensus number 4, recoverable consensus number 2: by Ruppert's@.\
     characterization and by DFFR Theorem 8 + the paper's Theorem 13, both@.\
     numbers are exactly the max discerning/recording levels shown above.@.@.";

  (* Show the hiding pattern that kills 3-process recording: one operation
     followed by two cross-side operations restores the initial value. *)
  let _, after = Objtype.apply_schedule x4 0 [ 0; 2; 3 ] in
  Format.printf "Hiding in action: a1; b1; b2 from u ends at %s — team 0 is hidden.@.@."
    (x4.Objtype.value_name after);

  rule ();
  print_endline "1b. The gap for EVERY n >= 4: the crossing family";
  rule ();
  List.iter
    (fun n ->
      let ty = Gallery.crossing_witness ~n in
      Format.printf "crossing-x%d (%d values, 3 ops): %a@." n ty.Objtype.num_values
        Analysis.pp
        (Numbers.analyze ~cap:(n + 1) ty))
    [ 4; 5; 6 ];
  Format.printf
    "Two side-tagged cross-counters; the (cap+1)-th cross-side operation@.     restores u.  Even n: cap = (n-2)/2; odd n adds an A-side same-op@.     restore at the cap.  All verified exactly by the deciders.@.@.";

  rule ();
  print_endline "1c. Robustness (Theorem 14) on combined objects";
  rule ();
  List.iter
    (fun (a, b) ->
      Format.printf "%a@." Robustness.pp_product_report (Robustness.check_product ~cap:4 a b))
    [
      (Gallery.test_and_set, Gallery.test_and_set);
      (Gallery.test_and_set, Gallery.team_ladder ~cap:2);
    ];
  Format.printf "@.";

  rule ();
  print_endline "2. Non-readable types: the arbitrarily large T_{n,n'} gap (Section 4)";
  rule ();
  List.iter
    (fun (n, n') ->
      let ty = Gallery.tnn ~n ~n' in
      let a = Numbers.analyze ~cap:(n + 1) ty in
      Format.printf "%a@." Analysis.pp a;
      Format.printf
        "  paper: consensus number %d, recoverable consensus number %d.@.\
        \  Note max-recording = %s exceeds %d: n-recording is necessary but not@.\
        \  sufficient without readability (op_R destroys values s_{x,i>%d}).@."
        n n'
        (Analysis.level_to_string a.Analysis.recording)
        n' n')
    [ (3, 1); (4, 2); (5, 2) ];

  rule ();
  print_endline "3. Why the recoverable numbers are what they are: executions";
  rule ();
  (* T_{4,2}: the recoverable protocol is correct for 2 processes... *)
  let ok_protocol = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let inputs_list = [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ] in
  (match Counterexample.certify ~z:1 ~inputs_list ok_protocol with
  | Ok (), truncated ->
      Format.printf
        "2 processes on T_{4,2}: exhaustively certified over E_1^* executions@.\
         (truncated: %b) — agreement and validity always hold.@.@."
        truncated
  | Error _, _ -> Format.printf "unexpected violation!@.");

  (* ...and breaks for 3: the explorer finds the paper-predicted crash
     schedule that drives the object past s_{x,n'} so op_R destroys it. *)
  let bad_protocol = Tnn_protocol.recoverable_overloaded ~procs:3 ~n:4 ~n':2 in
  let inputs_list = List.init 8 (fun m -> Array.init 3 (fun i -> (m lsr i) land 1)) in
  match Counterexample.search ~z:1 ~inputs_list bad_protocol with
  | Some r ->
      Format.printf
        "3 processes on T_{4,2}: the model checker exhibits a violation.@.\
        \  inputs:   %s@.  schedule: %s@.\
         After three op_R + op_x rounds the object reaches s_{x,3}; a crashed@.\
         process re-runs op_R, which returns bot and destroys the value.@."
        (String.concat "" (List.map string_of_int (Array.to_list r.Counterexample.inputs)))
        (Sched.to_string r.Counterexample.schedule)
  | None -> Format.printf "no violation found (unexpected)@."
