(** A gallery of canned deterministic object types.

    All constructors return well-formed {!Objtype.t} values.  Conventions:
    the conventional initial value is [default_initial]; response spaces are
    documented per type.  Readable types expose a Read operation detectable
    by {!Objtype.read_op}. *)

val register : int -> Objtype.t
(** [register k]: a read/write register over values [0 .. k-1].
    Ops: [0] = Read, [1+i] = Write i.  Writes respond with an ack.
    Consensus number 1.  Requires [k >= 2]. *)

val test_and_set : Objtype.t
(** Values [0] (unset) and [1] (set).  Ops: [0] = TAS (returns the old value
    and sets the bit), [1] = Read.  Consensus number 2; recoverable consensus
    number 1 (Golab 2020). *)

val swap : int -> Objtype.t
(** [swap k]: register with a Swap(i) operation returning the old value.
    Ops: [0] = Read, [1+i] = Swap i.  Consensus number 2. *)

val fetch_and_add : int -> Objtype.t
(** [fetch_and_add k]: counter modulo [k] with ops [0] = Read and
    [1] = FAA (returns old value, increments mod [k]).  Consensus number 2. *)

val compare_and_swap : int -> Objtype.t
(** [compare_and_swap k]: values [0 .. k-1]; op [a*k + b] = CAS(a, b),
    returning the old value and setting [b] when the old value equals [a].
    Readable (CAS(a,a) reads).  Consensus number unbounded. *)

val sticky_bit : Objtype.t
(** Values [0] = undecided, [1], [2] = stuck at 0 / 1.  Ops [0] = Set0,
    [1] = Set1 (both return the stuck bit), [2] = Read.  Consensus number
    unbounded. *)

val consensus_object : int -> Objtype.t
(** [consensus_object k]: one-shot consensus over proposals [0 .. k-1].
    Values: [0] = undecided, [1+v] = decided [v].  Ops: [v] = Propose v
    (returns the decided value), [k] = Read.  Consensus number unbounded. *)

val max_register : int -> Objtype.t
(** [max_register k]: holds the maximum value written so far.  Ops:
    [0] = Read, [1+i] = WriteMax i (responds with an ack).  Like a plain
    register, consensus number 1 — writes towards a maximum commute. *)

val write_once : int -> Objtype.t
(** [write_once k]: a sticky register over [k] values: the first write wins
    and every operation afterwards reports the sticky value.  Ops:
    [i] = Write i (responds with the sticky value), [k] = Read.  Values:
    [0] = empty, [1+v] = stuck at [v].  Consensus number unbounded, and —
    unlike test-and-set — it keeps its power under recovery. *)

val opaque_counter : int -> Objtype.t
(** [opaque_counter k]: a counter modulo [k] whose single Increment
    operation responds with a bare ack — no reads, no informative
    responses.  Consensus number 1. *)

val bounded_queue : unit -> Objtype.t
(** A two-slot FIFO queue over items [{0,1}].  Ops: [0] = Enq 0, [1] = Enq 1,
    [2] = Deq.  Deq returns the head or bottom; Enq on a full queue responds
    "full" and leaves the queue unchanged.  Not readable. *)

val tnn : n:int -> n':int -> Objtype.t
(** The paper's type [T_{n,n'}] (Section 4), for [n > n' >= 1].  Values:
    [0] = s, [1] = s_bot, and s_{x,i} for x in [{0,1}], i in [1 .. n-1].
    Ops: [0] = op_0, [1] = op_1, [2] = op_R.  Consensus number [n],
    recoverable consensus number [n'].  Not readable (op_R destroys values
    s_{x,i} with [i > n']). *)

val tnn_value : n:int -> x:int -> i:int -> Objtype.value
(** Encoding of s_{x,i} inside {!tnn}: [tnn_value ~n ~x ~i].  [s] is [0] and
    [s_bot] is [1]. *)

val tnn_s : Objtype.value
val tnn_bot : Objtype.value

val tnn_op : [ `Op0 | `Op1 | `OpR ] -> Objtype.op

val tnn_response :
  n:int -> Objtype.response -> [ `Zero | `One | `Bot | `Value of Objtype.value ]
(** Decode a response of {!tnn}. *)

val team_ladder : cap:int -> Objtype.t
(** [team_ladder ~cap]: a readable variant of the [T] family.  Values
    [s], [s_bot], s_{x,i} for i in [1 .. cap].  Ops [0] = op_0, [1] = op_1
    (each responds with the team of the chain, bottom once capped),
    [2] = Read.  Consensus number [cap + 1], recoverable consensus number
    [cap] (verified by the deciders in the test suite). *)

val x4_witness : Objtype.t
(** A readable deterministic type with consensus number 4 and recoverable
    consensus number 2 — a witness for the paper's corollary that DFFR's
    X_n has recoverable consensus number n-2, instantiated at n = 4.  Found
    by [Rcn_synth] search and checked by the deciders in the test suite. *)

val all : unit -> (string * Objtype.t) list
(** Representative instances of every gallery family, for table-driven
    tests and the [gallery] experiment. *)

val find : string -> Objtype.t option
(** Look up a gallery entry produced by {!all} by name. *)

val resolve : string -> (Objtype.t, [> `Msg of string ]) result
(** {!find}, falling back to reading [name] as a specification file in the
    {!Objtype.to_spec_string} format (as written by [rcn synth --save]).
    The error message lists the available gallery names — the shared
    front end of every CLI TYPE argument. *)

val tnn_team_of_value : n:int -> Objtype.value -> int option
(** For a value s_{x,i} of {!tnn}, the team [x]; [None] for [s] and
    [s_bot]. *)

val crossing_witness : n:int -> Objtype.t
(** An explicit gap-2 witness family covering *every* [n >= 4]: a readable
    deterministic type with consensus number exactly [n] and recoverable
    consensus number exactly [n - 2] (the role the paper's corollary
    assigns to DFFR's X_n).  The construction generalizes {!x4_witness}:
    values are [u] plus two side-tagged cross-counters [(X, c)] with
    [c <= cap]; the first RMW operation brands the object with its side;
    same-side operations are idle; cross-side operations count, and the
    [(cap+1)]-th cross *restores u* — the hiding pattern.  For odd [n]
    (cap [= (n-1)/2]) the A-side additionally restores [u] on a same-side
    operation at the cap.  [2*cap + 3] values, three operations.  Verified
    exactly for [n = 4..7] by the test suite and benches.
    @raise Invalid_argument when [n < 4]. *)
