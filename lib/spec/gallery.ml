let register k =
  if k < 2 then invalid_arg "Gallery.register: need at least two values";
  (* Responses: 0 = ack, 1+v = "value v". *)
  Objtype.make ~name:(Printf.sprintf "register-%d" k) ~num_values:k
    ~num_ops:(1 + k) ~num_responses:(1 + k)
    ~op_name:(fun o -> if o = 0 then "read" else Printf.sprintf "write(%d)" (o - 1))
    ~response_name:(fun r -> if r = 0 then "ack" else Printf.sprintf "=%d" (r - 1))
    (fun v o -> if o = 0 then (1 + v, v) else (0, o - 1))

let test_and_set =
  Objtype.make ~name:"test-and-set" ~num_values:2 ~num_ops:2 ~num_responses:2
    ~value_name:(fun v -> if v = 0 then "unset" else "set")
    ~op_name:(fun o -> if o = 0 then "tas" else "read")
    (fun v o -> if o = 0 then (v, 1) else (v, v))

let swap k =
  if k < 2 then invalid_arg "Gallery.swap: need at least two values";
  Objtype.make ~name:(Printf.sprintf "swap-%d" k) ~num_values:k ~num_ops:(1 + k)
    ~num_responses:k
    ~op_name:(fun o -> if o = 0 then "read" else Printf.sprintf "swap(%d)" (o - 1))
    ~response_name:(fun r -> Printf.sprintf "=%d" r)
    (fun v o -> if o = 0 then (v, v) else (v, o - 1))

let fetch_and_add k =
  if k < 2 then invalid_arg "Gallery.fetch_and_add: need at least two values";
  Objtype.make ~name:(Printf.sprintf "fetch-and-add-%d" k) ~num_values:k ~num_ops:2
    ~num_responses:k
    ~op_name:(fun o -> if o = 0 then "read" else "faa")
    ~response_name:(fun r -> Printf.sprintf "=%d" r)
    (fun v o -> if o = 0 then (v, v) else (v, (v + 1) mod k))

let compare_and_swap k =
  if k < 2 then invalid_arg "Gallery.compare_and_swap: need at least two values";
  Objtype.make ~name:(Printf.sprintf "cas-%d" k) ~num_values:k ~num_ops:(k * k)
    ~num_responses:k
    ~op_name:(fun o -> Printf.sprintf "cas(%d,%d)" (o / k) (o mod k))
    ~response_name:(fun r -> Printf.sprintf "=%d" r)
    (fun v o ->
      let expected = o / k and replacement = o mod k in
      (v, if v = expected then replacement else v))

let sticky_bit =
  Objtype.make ~name:"sticky-bit" ~num_values:3 ~num_ops:3 ~num_responses:5
    ~value_name:(function 0 -> "undecided" | 1 -> "zero" | _ -> "one")
    ~op_name:(function 0 -> "set0" | 1 -> "set1" | _ -> "read")
    ~response_name:(function
      | 0 -> "stuck0"
      | 1 -> "stuck1"
      | 2 -> "=undecided"
      | 3 -> "=zero"
      | _ -> "=one")
    (fun v o ->
      match o with
      | 0 | 1 -> if v = 0 then (o, 1 + o) else (v - 1, v)
      | _ -> (2 + v, v))

let consensus_object k =
  if k < 2 then invalid_arg "Gallery.consensus_object: need at least two proposals";
  (* Values: 0 = undecided, 1+v = decided v.  Responses: 0..k-1 = decided
     value (from Propose), k+v = Read of value index v. *)
  Objtype.make
    ~name:(Printf.sprintf "consensus-%d" k)
    ~num_values:(1 + k) ~num_ops:(1 + k)
    ~num_responses:(2 * k + 1)
    ~value_name:(fun v -> if v = 0 then "undecided" else Printf.sprintf "decided(%d)" (v - 1))
    ~op_name:(fun o -> if o = k then "read" else Printf.sprintf "propose(%d)" o)
    (fun v o ->
      if o = k then (k + v, v)
      else if v = 0 then (o, 1 + o)
      else (v - 1, v))

let max_register k =
  if k < 2 then invalid_arg "Gallery.max_register: need at least two values";
  Objtype.make ~name:(Printf.sprintf "max-register-%d" k) ~num_values:k
    ~num_ops:(1 + k) ~num_responses:(1 + k)
    ~op_name:(fun o -> if o = 0 then "read" else Printf.sprintf "write-max(%d)" (o - 1))
    ~response_name:(fun r -> if r = 0 then "ack" else Printf.sprintf "=%d" (r - 1))
    (fun v o -> if o = 0 then (1 + v, v) else (0, max v (o - 1)))

let write_once k =
  if k < 2 then invalid_arg "Gallery.write_once: need at least two values";
  Objtype.make ~name:(Printf.sprintf "write-once-%d" k) ~num_values:(1 + k)
    ~num_ops:(1 + k)
    ~num_responses:(1 + (2 * k))
    ~value_name:(fun v -> if v = 0 then "empty" else Printf.sprintf "stuck(%d)" (v - 1))
    ~op_name:(fun o -> if o = k then "read" else Printf.sprintf "write(%d)" o)
    ~response_name:(fun r ->
      if r < k then Printf.sprintf "stuck %d" r
      else if r = k then "=empty"
      else Printf.sprintf "=stuck(%d)" (r - k - 1))
    (fun v o ->
      if o = k then (k + v, v)
      else if v = 0 then (o, 1 + o)
      else (v - 1, v))

let opaque_counter k =
  if k < 2 then invalid_arg "Gallery.opaque_counter: need at least two values";
  Objtype.make ~name:(Printf.sprintf "opaque-counter-%d" k) ~num_values:k ~num_ops:1
    ~num_responses:1
    ~op_name:(fun _ -> "inc")
    ~response_name:(fun _ -> "ack")
    (fun v _ -> (0, (v + 1) mod k))

let bounded_queue () =
  (* Values: 0 = [], 1+a = [a], 3 + 2a + b = [a; b] with head a.
     Responses: 0 = ok, 1 = full, 2 = empty, 3+i = item i. *)
  let empty = 0 in
  let single a = 1 + a in
  let pair a b = 3 + (2 * a) + b in
  let value_name v =
    if v = 0 then "[]"
    else if v <= 2 then Printf.sprintf "[%d]" (v - 1)
    else Printf.sprintf "[%d;%d]" ((v - 3) / 2) ((v - 3) mod 2)
  in
  Objtype.make ~name:"queue2" ~num_values:7 ~num_ops:3 ~num_responses:5 ~value_name
    ~op_name:(function 0 -> "enq(0)" | 1 -> "enq(1)" | _ -> "deq")
    ~response_name:(function
      | 0 -> "ok"
      | 1 -> "full"
      | 2 -> "empty"
      | r -> Printf.sprintf "got %d" (r - 3))
    (fun v o ->
      match o with
      | 0 | 1 -> (
          let item = o in
          if v = empty then (0, single item)
          else if v <= 2 then (0, pair (v - 1) item)
          else (1, v))
      | _ ->
          if v = empty then (2, v)
          else if v <= 2 then (3 + (v - 1), empty)
          else
            let a = (v - 3) / 2 and b = (v - 3) mod 2 in
            (3 + a, single b))

(* ------------------------------------------------------------------ *)
(* The paper's type T_{n,n'} (Section 4). *)

let tnn_s = 0
let tnn_bot = 1

let tnn_value ~n ~x ~i =
  if x < 0 || x > 1 then invalid_arg "Gallery.tnn_value: x must be 0 or 1";
  if i < 1 || i > n - 1 then invalid_arg "Gallery.tnn_value: i out of range";
  2 + (x * (n - 1)) + (i - 1)

let tnn_op = function `Op0 -> 0 | `Op1 -> 1 | `OpR -> 2

let tnn_response ~n:_ r =
  match r with 0 -> `Zero | 1 -> `One | 2 -> `Bot | r -> `Value (r - 3)

let tnn ~n ~n' =
  if not (n > n' && n' >= 1) then invalid_arg "Gallery.tnn: need n > n' >= 1";
  let num_values = 2 * n in
  let decode v =
    if v = tnn_s then `S
    else if v = tnn_bot then `Bot
    else
      let k = v - 2 in
      `Mid (k / (n - 1), (k mod (n - 1)) + 1)
  in
  let value_name v =
    match decode v with
    | `S -> "s"
    | `Bot -> "s_bot"
    | `Mid (x, i) -> Printf.sprintf "s_{%d,%d}" x i
  in
  let delta v o =
    match (decode v, o) with
    | `S, (0 | 1) -> (o, tnn_value ~n ~x:o ~i:1)
    | `S, _ -> (3 + tnn_s, v)
    | `Bot, _ -> (2, tnn_bot)
    | `Mid (x, i), (0 | 1) ->
        (x, if i < n - 1 then tnn_value ~n ~x ~i:(i + 1) else tnn_bot)
    | `Mid (_, i), _ -> if i <= n' then (3 + v, v) else (2, tnn_bot)
  in
  Objtype.make
    ~name:(Printf.sprintf "T_{%d,%d}" n n')
    ~num_values ~num_ops:3
    ~num_responses:(3 + num_values)
    ~value_name
    ~op_name:(function 0 -> "op_0" | 1 -> "op_1" | _ -> "op_R")
    ~response_name:(fun r ->
      match r with 0 -> "0" | 1 -> "1" | 2 -> "bot" | r -> "=" ^ value_name (r - 3))
    delta

let team_ladder ~cap =
  if cap < 1 then invalid_arg "Gallery.team_ladder: cap must be positive";
  let num_values = 2 + (2 * cap) in
  let mid x i = 2 + (x * cap) + (i - 1) in
  let decode v =
    if v = 0 then `S
    else if v = 1 then `Bot
    else
      let k = v - 2 in
      `Mid (k / cap, (k mod cap) + 1)
  in
  let value_name v =
    match decode v with
    | `S -> "s"
    | `Bot -> "s_bot"
    | `Mid (x, i) -> Printf.sprintf "s_{%d,%d}" x i
  in
  let delta v o =
    match (decode v, o) with
    | `S, (0 | 1) -> (o, mid o 1)
    | `Bot, (0 | 1) -> (2, 1)
    | `Mid (x, i), (0 | 1) -> (x, if i < cap then mid x (i + 1) else 1)
    | _, _ -> (3 + v, v)
  in
  Objtype.make
    ~name:(Printf.sprintf "team-ladder-%d" cap)
    ~num_values ~num_ops:3
    ~num_responses:(3 + num_values)
    ~value_name
    ~op_name:(function 0 -> "op_0" | 1 -> "op_1" | _ -> "read")
    ~response_name:(fun r ->
      match r with 0 -> "0" | 1 -> "1" | 2 -> "bot" | r -> "=" ^ value_name (r - 3))
    delta

(* A readable deterministic type with consensus number exactly 4 and
   recoverable consensus number exactly 2 — a witness for the paper's
   corollary at n = 4, playing the role of DFFR's X_4.  Derived with the
   deciders in the loop (see Rcn_synth and DESIGN.md): two "sides" A and B
   with one rung and one cross-counter each; the first RMW operation brands
   the object with its side; same-side operations are idle on branded
   values; cross-side operations climb the counter and a second cross
   *restores the initial value u* — the hiding pattern that kills every
   3-process recording certificate (the paper's u-in-U_x condition) while
   4-process discerning certificates survive because responses reveal the
   old value.  Verified by the test suite: max-discerning = 4 and
   max-recording = 2, both exactly. *)
let x4_witness =
  let side op = if op <= 1 then `A else `B in
  let delta v op =
    if op = 4 then (5 + v, v)
    else
      let next =
        match (v, side op) with
        | 0, `A -> 1
        | 0, `B -> 3
        | 1, `A -> 1 (* A1: same-side idle *)
        | 1, `B -> 2 (* A1: cross climbs to A1c *)
        | 2, `A -> 1 (* A1c: same-side falls back to A1 *)
        | 2, `B -> 0 (* A1c: second cross restores u *)
        | 3, `B -> 3
        | 3, `A -> 4
        | 4, `B -> 3
        | 4, `A -> 0
        | _ -> assert false
      in
      (v, next)
  in
  Objtype.make ~name:"x4-witness" ~num_values:5 ~num_ops:5 ~num_responses:10
    ~value_name:(fun v -> [| "u"; "A1"; "A1c"; "B1"; "B1c" |].(v))
    ~op_name:(fun o -> [| "a1"; "a2"; "b1"; "b2"; "read" |].(o))
    ~response_name:(fun r ->
      if r < 5 then "old " ^ [| "u"; "A1"; "A1c"; "B1"; "B1c" |].(r)
      else "=" ^ [| "u"; "A1"; "A1c"; "B1"; "B1c" |].(r - 5))
    delta

(* The generalized crossing family: see the interface documentation.  For
   even n, cap = (n - 2) / 2 and no same-side restore; for odd n,
   cap = (n - 1) / 2 with the A-side same-side restore at the cap
   ("pattern2").  Conjecturally X_n for all n >= 4; verified exactly for
   n = 4..7 by deciders (tests and bench E6). *)
let crossing_witness ~n =
  if n < 4 then invalid_arg "Gallery.crossing_witness: need n >= 4";
  let pattern2 = n mod 2 = 1 in
  let cap = if pattern2 then (n - 1) / 2 else (n - 2) / 2 in
  let w = cap + 1 in
  let num_values = (2 * w) + 1 in
  let value_name v =
    if v = 0 then "u"
    else Printf.sprintf "%c%d" (if (v - 1) / w = 0 then 'A' else 'B') ((v - 1) mod w)
  in
  let delta v op =
    if op = 2 then (num_values + v, v)
    else if v = 0 then (0, 1 + (w * op))
    else
      let x = (v - 1) / w and c = (v - 1) mod w in
      let next =
        if op = x then if pattern2 && x = 0 && c = cap then 0 else v
        else if c = cap then 0
        else v + 1
      in
      (v, next)
  in
  Objtype.make
    ~name:(Printf.sprintf "crossing-x%d" n)
    ~num_values ~num_ops:3
    ~num_responses:(2 * num_values)
    ~value_name
    ~op_name:(function 0 -> "a" | 1 -> "b" | _ -> "read")
    ~response_name:(fun r ->
      if r < num_values then "old " ^ value_name r else "=" ^ value_name (r - num_values))
    delta

let all () =
  let entries =
    [
      register 2;
      register 3;
      test_and_set;
      swap 3;
      fetch_and_add 4;
      compare_and_swap 3;
      sticky_bit;
      max_register 3;
      write_once 2;
      opaque_counter 3;
      consensus_object 2;
      bounded_queue ();
      tnn ~n:3 ~n':1;
      tnn ~n:4 ~n':2;
      tnn ~n:5 ~n':2;
      team_ladder ~cap:2;
      team_ladder ~cap:3;
      x4_witness;
      crossing_witness ~n:4;
      crossing_witness ~n:5;
      crossing_witness ~n:6;
    ]
  in
  List.map (fun (t : Objtype.t) -> (t.Objtype.name, t)) entries

let find name = List.assoc_opt name (all ())

let resolve name =
  match find name with
  | Some t -> Ok t
  | None when Sys.file_exists name -> (
      let contents = In_channel.with_open_text name In_channel.input_all in
      try Ok (Objtype.of_spec_string contents)
      with Objtype.Ill_formed msg -> Error (`Msg (Printf.sprintf "%s: %s" name msg)))
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown type %S (and no such file); available: %s" name
             (String.concat ", " (List.map fst (all ())))))

let tnn_team_of_value ~n v = if v < 2 then None else Some ((v - 2) / (n - 1))
