(** Processes, events and schedules (paper Section 2).

    A schedule is a sequence of processes (steps) and crashes.  Processes are
    numbered [0 .. n-1]; the number is the process identifier, and smaller
    identifiers have higher priority in the paper's crash-budget sets. *)

type proc = int

type event = Step of proc | Crash of proc | Crash_all

type t = event list
(** A schedule.  [Step i] means process [p_i] takes its next step; [Crash i]
    resets [p_i] to its initial state; [Crash_all] is a *simultaneous* crash
    resetting every process (the alternative crash model discussed in the
    paper's introduction, where the hierarchy collapses back to Herlihy's). *)

val step : proc -> event
val crash : proc -> event
val crash_all : event

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
(** Compact rendering: [p0 p2 c1 p1] style, as in the paper. *)

val steps_of : t -> proc -> int
(** Number of [Step] events by the given process. *)

val crashes_of : t -> proc -> int
(** Number of individual [Crash] events by the given process
    ([Crash_all] events are not counted; see {!crash_alls}). *)

val crash_alls : t -> int
(** Number of simultaneous crashes. *)

val procs_stepping : t -> proc list
(** Processes that take at least one step, in increasing order. *)

val crash_free : t -> bool

val of_procs : proc list -> t
(** A crash-free schedule stepping the given processes in order. *)

val length : t -> int

val remove_at : t -> int -> t
(** The schedule without its [i]-th event (0-based); unchanged when [i] is
    out of range.  The single-event probe of schedule minimization. *)

val keep_indices : t -> int list -> t
(** The subsequence at the given (deduplicated, then sorted) indices —
    the subset operation delta-debugging shrinks through. *)

val at_most_once : nprocs:int -> proc list list
(** The paper's [S({p_0, ..., p_{nprocs-1}})]: every sequence of *distinct*
    processes drawn from [0 .. nprocs-1], including the empty sequence.
    Cardinality is [sum_{k=0}^{n} n!/(n-k)!].  Order of the result: by
    length, then lexicographically. *)

val at_most_once_of : proc list -> proc list list
(** [S(P')] for an arbitrary process set given as a list (duplicates
    ignored). *)

val at_most_once_count : int -> int
(** Closed-form cardinality of {!at_most_once} for [n] processes. *)

(** {!at_most_once} compiled into a prefix trie.

    The at-most-once set is prefix-closed, so its schedules are in bijection
    with the nodes of a trie; node ids follow the (length, lex) order of
    {!at_most_once} — node [0] is the empty schedule and every parent
    precedes its children — so a single forward pass over the arrays folds
    every schedule at once, visiting each shared prefix exactly once.  This
    is the schedule half of the decision kernel ([Kernel] in the core
    library); everything here is immutable after construction and safe to
    share across domains. *)
module Trie : sig
  type t

  val of_nprocs : nprocs:int -> t
  (** Compile [at_most_once ~nprocs].  @raise Invalid_argument when
      [nprocs < 1]. *)

  val nprocs : t -> int

  val num_nodes : t -> int
  (** [at_most_once_count nprocs] — one node per schedule. *)

  val parent : t -> int array
  (** [parent.(i)] is the node of schedule [i] minus its last step
      ([-1] for the root); always [< i]. *)

  val proc : t -> int array
  (** The process stepping last in node [i]'s schedule ([-1] at the root). *)

  val first : t -> int array
  (** The first process of node [i]'s schedule ([-1] at the root) — the
      process whose team classifies the schedule's final value. *)

  val depth : t -> int array
  (** Schedule length per node. *)

  val total_steps : t -> int
  (** Sum of all schedule lengths — the step count a trie-less replay of the
      whole set would pay per candidate. *)

  val schedule : t -> int -> proc list
  (** Node [id]'s schedule, rebuilt by walking parents (not a hot path).
      @raise Invalid_argument when [id] is out of range. *)

  val schedules : t -> proc list list
  (** All schedules in node order — equals [at_most_once ~nprocs]. *)
end

val nonempty_starting_with : nprocs:int -> first:proc list -> proc list list
(** The nonempty members of [S(P)] whose first process belongs to [first]. *)

val permutations : proc list -> proc list list
(** All permutations of a list of distinct processes. *)

val interleavings : nprocs:int -> steps_per_proc:int -> t list
(** All crash-free schedules in which each of the [nprocs] processes takes
    exactly [steps_per_proc] steps — the exhaustive wait-free workload used
    by experiment E2.  Beware: grows as a multinomial coefficient. *)

val of_string : string -> (t, string) result
(** Parse the rendering produced by {!to_string}: whitespace-separated
    tokens [pN] (step), [cN] (crash), [C*] (simultaneous crash). *)
