type proc = int
type event = Step of proc | Crash of proc | Crash_all
type t = event list

let step p = Step p
let crash p = Crash p
let crash_all = Crash_all

let pp_event ppf = function
  | Step p -> Format.fprintf ppf "p%d" p
  | Crash p -> Format.fprintf ppf "c%d" p
  | Crash_all -> Format.pp_print_string ppf "C*"

let pp ppf sched =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ') pp_event ppf sched

let to_string sched = Format.asprintf "%a" pp sched

let steps_of sched p =
  List.fold_left (fun acc e -> match e with Step q when q = p -> acc + 1 | _ -> acc) 0 sched

let crashes_of sched p =
  List.fold_left (fun acc e -> match e with Crash q when q = p -> acc + 1 | _ -> acc) 0 sched

let crash_alls sched =
  List.fold_left (fun acc e -> match e with Crash_all -> acc + 1 | _ -> acc) 0 sched

let procs_stepping sched =
  List.filter_map (function Step p -> Some p | Crash _ | Crash_all -> None) sched
  |> List.sort_uniq compare

let crash_free sched =
  List.for_all (function Step _ -> true | Crash _ | Crash_all -> false) sched

let of_procs procs = List.map step procs

let length = List.length

let remove_at sched i =
  List.filteri (fun j _ -> j <> i) sched

let keep_indices sched indices =
  let rec loop j sched indices =
    match (sched, indices) with
    | _, [] | [], _ -> []
    | e :: rest, i :: is ->
        if j = i then e :: loop (j + 1) rest is else loop (j + 1) rest indices
  in
  loop 0 sched (List.sort_uniq compare indices)

(* All sequences of distinct elements drawn from [procs]; depth-first so the
   result is grouped by first element, then sorted by (length, lex). *)
let at_most_once_of procs =
  let procs = List.sort_uniq compare procs in
  let rec extend prefix_rev remaining acc =
    let acc = List.rev prefix_rev :: acc in
    List.fold_left
      (fun acc p ->
        let remaining' = List.filter (fun q -> q <> p) remaining in
        extend (p :: prefix_rev) remaining' acc)
      acc remaining
  in
  let all = extend [] procs [] in
  List.sort
    (fun a b ->
      let c = compare (List.length a) (List.length b) in
      if c <> 0 then c else compare a b)
    all

let at_most_once ~nprocs = at_most_once_of (List.init nprocs Fun.id)

(* The at-most-once schedule set is prefix-closed (dropping the last step of
   a distinct-process sequence leaves a distinct-process sequence), so it
   compiles into a prefix trie whose nodes are exactly the schedules.  The
   (length, lex) order of [at_most_once] puts every prefix before its
   extensions, giving a parent-before-child node numbering for free: one
   forward pass over the node arrays folds *all* schedules at once, visiting
   each transition exactly once instead of refolding shared prefixes. *)
module Trie = struct
  type t = {
    nprocs : int;
    num_nodes : int;
    parent : int array;
    proc : int array;
    first : int array;
    depth : int array;
  }

  let of_nprocs ~nprocs =
    if nprocs < 1 then invalid_arg "Sched.Trie.of_nprocs: need nprocs >= 1";
    let scheds = at_most_once ~nprocs in
    let num_nodes = List.length scheds in
    let parent = Array.make num_nodes (-1) in
    let proc = Array.make num_nodes (-1) in
    let first = Array.make num_nodes (-1) in
    let depth = Array.make num_nodes 0 in
    let ids = Hashtbl.create (2 * num_nodes) in
    List.iteri
      (fun id sched ->
        Hashtbl.add ids sched id;
        match sched with
        | [] -> ()
        | f :: _ ->
            let prefix = List.filteri (fun i _ -> i < List.length sched - 1) sched in
            let last = List.nth sched (List.length sched - 1) in
            let pid = Hashtbl.find ids prefix in
            parent.(id) <- pid;
            proc.(id) <- last;
            first.(id) <- f;
            depth.(id) <- depth.(pid) + 1)
      scheds;
    { nprocs; num_nodes; parent; proc; first; depth }

  let nprocs t = t.nprocs
  let num_nodes t = t.num_nodes
  let parent t = t.parent
  let proc t = t.proc
  let first t = t.first
  let depth t = t.depth

  let total_steps t = Array.fold_left ( + ) 0 t.depth

  (* Reconstruct node [id]'s schedule by walking parents — for tests and
     witnesses, not the hot path. *)
  let schedule t id =
    let rec up id acc = if id <= 0 then acc else up t.parent.(id) (t.proc.(id) :: acc) in
    if id < 0 || id >= t.num_nodes then invalid_arg "Sched.Trie.schedule: node out of range";
    up id []

  let schedules t = List.init t.num_nodes (schedule t)
end

let at_most_once_count n =
  (* sum_{k=0}^{n} n!/(n-k)!, computed with an incrementally maintained
     falling factorial P(n,k). *)
  let sum = ref 1 and perm = ref 1 in
  for k = 1 to n do
    perm := !perm * (n - k + 1);
    sum := !sum + !perm
  done;
  !sum

let nonempty_starting_with ~nprocs ~first =
  at_most_once ~nprocs
  |> List.filter (function [] -> false | p :: _ -> List.mem p first)

let permutations procs =
  let rec perms = function
    | [] -> [ [] ]
    | procs ->
        List.concat_map
          (fun p ->
            let rest = List.filter (fun q -> q <> p) procs in
            List.map (fun tail -> p :: tail) (perms rest))
          procs
  in
  perms procs

let interleavings ~nprocs ~steps_per_proc =
  let rec build remaining =
    if Array.for_all (fun r -> r = 0) remaining then [ [] ]
    else
      List.concat
        (List.init nprocs (fun p ->
             if remaining.(p) = 0 then []
             else begin
               let remaining' = Array.copy remaining in
               remaining'.(p) <- remaining'.(p) - 1;
               List.map (fun tail -> Step p :: tail) (build remaining')
             end))
  in
  build (Array.make nprocs steps_per_proc)

let of_string text =
  let tokens =
    String.split_on_char ' ' text |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let parse tok =
    if tok = "C*" then Ok Crash_all
    else
      let body () = int_of_string_opt (String.sub tok 1 (String.length tok - 1)) in
      match tok.[0] with
      | 'p' -> (
          match body () with
          | Some i when i >= 0 -> Ok (Step i)
          | Some _ | None -> Error (Printf.sprintf "bad process token %S" tok))
      | 'c' -> (
          match body () with
          | Some i when i >= 0 -> Ok (Crash i)
          | Some _ | None -> Error (Printf.sprintf "bad crash token %S" tok))
      | _ -> Error (Printf.sprintf "unknown token %S" tok)
  in
  List.fold_left
    (fun acc tok ->
      match (acc, parse tok) with
      | Ok events, Ok e -> Ok (e :: events)
      | (Error _ as e), _ -> e
      | _, Error m -> Error m)
    (Ok []) tokens
  |> Result.map List.rev
