(** The distributed census coordinator: the exhaustive census of
    [Engine.census] sharded over crash-prone worker {e processes}, with
    a crash-safe lease ledger as the only durable state.

    The rank space is cut into chunks; each chunk is granted to a worker
    under a lease recorded in the {!Dist_ledger}.  The full failure
    model lives here:

    - {b Lease expiry}: a worker that stops heartbeating past
      [lease_ttl] (monotonic clock) is SIGKILLed and its range
      re-queued.
    - {b Death detection}: worker exits are reaped ([waitpid]) and
      socket EOFs noticed; a dead worker's lease is revoked and the
      {e full} range re-queued — partial progress never survives a
      death, which is what makes the merged histogram independent of
      the crash schedule.
    - {b Respawn}: dead workers respawn under the seeded backoff of a
      [Supervise.Policy], up to [max_spawns] per slot.
    - {b Work stealing}: an idle worker marks the straggler with the
      most remaining work; at the straggler's next heartbeat the tail
      above the midpoint is re-leased and the victim truncated.  Only
      undecided ranks move, so stealing cannot double-count.
    - {b Honest degradation}: a range that fails [range_attempts]
      grants (or outlives every worker slot) is quarantined — in the
      ledger, and in [outcome.quarantined] with context
      ["dist.census"] — and the census reports an incomplete total
      exactly like a deadline-cut [Engine.census] (PARTIAL exit 3
      under [Api.Response.exit_code]).

    A coverage bitmap proves Done ranges disjoint and complete, so when
    [complete] holds the histogram is {e bit-identical} to
    [Engine.census] at any worker count, crash schedule and steal
    order.  Killing the coordinator itself is recoverable: rerun with
    the same ledger and [resume = true], and only the uncovered ranges
    are recomputed. *)

type outcome = {
  entries : Census.entry list;  (** histogram over the decided tables *)
  total : int;
  completed : int;  (** tables decided, including resumed ones *)
  resumed : int;  (** tables replayed from the ledger's Done records *)
  complete : bool;  (** [completed = total] *)
  quarantined : Supervise.quarantine list;
  deaths : int;  (** worker deaths observed (crashes, kills, expiries) *)
}

type plan = {
  plan_total : int;
  plan_covered : int;  (** ranks proven decided by disjoint Done records *)
  plan_entries : Census.entry list;
  plan_gaps : (int * int) list;  (** uncovered [(lo, hi)] ranges, sorted *)
  plan_deaths : int;  (** Death records in the ledger *)
}

val plan_of_ledger : expected:string -> total:int -> string -> plan
(** What a recovering coordinator would trust from the ledger at [path]:
    the disjoint, self-consistent Done records folded into a coverage
    map and histogram.  Pure read — the file is not modified.  The
    truncate-at-every-offset recovery test and the soak's final audit
    are built on this.
    @raise Invalid_argument on a ledger from a different census. *)

val census :
  ?obs:Obs.t ->
  ?rcn:string ->
  ?ledger:string ->
  ?resume:bool ->
  ?fsync:bool ->
  ?lease_ttl:float ->
  ?chunk:int ->
  ?stride:int ->
  ?steal_min:int ->
  ?range_attempts:int ->
  ?max_spawns:int ->
  ?policy:Supervise.Policy.t ->
  ?crash:(int * int) list ->
  ?throttle:(int * int) list ->
  workers:int ->
  config:Api.Config.t ->
  Synth.space ->
  outcome
(** Run the census over [workers] freshly spawned [rcn worker]
    processes ([rcn] defaults to [Sys.executable_name]; each worker runs
    its own domain pool of [config.jobs]).

    [ledger] is the lease ledger path (default: a temp file, removed on
    return); [resume] (requires [ledger]) replays its Done records and
    recomputes only the gaps.  [fsync] (default [true]) makes ledger
    appends durable.  [lease_ttl] (default 30 s) is the heartbeat
    budget; [chunk] the grant granularity (default [total / (4 *
    workers)]); [stride] the workers' batch-and-heartbeat granularity;
    [steal_min] (default [2 * stride]) the minimum remaining width worth
    stealing; [range_attempts] (default 3) the grants a range gets
    before quarantine; [max_spawns] (default 5) the processes a slot
    gets before retiring, with respawns paced by [policy]'s seeded
    backoff.

    [crash] and [throttle] are deterministic fault injection, passed to
    first-generation workers only (so an injected crash cannot recur
    after respawn): [(slot, k)] SIGKILLs slot's first process after [k]
    tables, [(slot, us)] throttles it by [us] microseconds per table.

    With [obs], counts [dist.leases_granted] / [dist.leases_expired] /
    [dist.leases_stolen] / [dist.workers_spawned] /
    [dist.workers_killed] / [dist.workers_respawned] /
    [dist.ranges_quarantined] / [dist.ranks_resumed] (plus the ledger's
    [dist.ledger_*]).
    @raise Invalid_argument on nonsensical parameters or a ledger from
    a different census. *)
