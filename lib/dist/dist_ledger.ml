(* Append-only lease ledger of a distributed census.  On-disk format,
   one record after another, nothing else in the file:

     rcndist1 <kind> <payload_bytes>\n
     <payload>\n

   — the same scan-forward, truncate-at-first-torn-record discipline as
   the serve store's rcnstore log.  The payload of the header record is
   the plain header line pinning space, cap and table count; every other
   payload is canonical single-line Wire JSON, so payloads never contain
   a newline and a record boundary is always where the scanner thinks it
   is. *)

let magic = "rcndist1"

(* A symmetry-reduced census grants leases over canonical-class ranks,
   not table indices; the [sym_classes] suffix pins the rank space so
   resume never mixes the two interpretations of [lo, hi).  Without it
   the v1 header bytes are unchanged. *)
let header ?sym_classes ~space ~cap ~total () =
  let base =
    Printf.sprintf "rcn-dist-census v1 values=%d rws=%d responses=%d cap=%d total=%d"
      space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap
      total
  in
  match sym_classes with
  | None -> base
  | Some n -> Printf.sprintf "%s sym=1 classes=%d" base n

type record =
  | Header of string
  | Grant of { lease : int; lo : int; hi : int; worker : int }
  | Done of { lo : int; hi : int; entries : (int * int * int) list }
  | Expire of { lease : int; lo : int; hi : int; worker : int }
  | Steal of { lease : int; victim : int; at : int; hi : int }
  | Death of { worker : int; pid : int }
  | Quarantine of { lo : int; hi : int; attempts : int; error : string }

let kind_of = function
  | Header _ -> "header"
  | Grant _ -> "grant"
  | Done _ -> "done"
  | Expire _ -> "expire"
  | Steal _ -> "steal"
  | Death _ -> "death"
  | Quarantine _ -> "quarantine"

let lease_fields ~lease ~lo ~hi ~worker =
  [
    ("lease", Wire.Int lease);
    ("lo", Wire.Int lo);
    ("hi", Wire.Int hi);
    ("worker", Wire.Int worker);
  ]

let payload_of = function
  | Header h -> h
  | Grant { lease; lo; hi; worker } ->
      Wire.to_string (Wire.Obj (lease_fields ~lease ~lo ~hi ~worker))
  | Expire { lease; lo; hi; worker } ->
      Wire.to_string (Wire.Obj (lease_fields ~lease ~lo ~hi ~worker))
  | Done { lo; hi; entries } ->
      Wire.to_string
        (Wire.Obj
           [
             ("lo", Wire.Int lo);
             ("hi", Wire.Int hi);
             ( "entries",
               Wire.List
                 (List.map
                    (fun (d, r, c) ->
                      Wire.List [ Wire.Int d; Wire.Int r; Wire.Int c ])
                    entries) );
           ])
  | Steal { lease; victim; at; hi } ->
      Wire.to_string
        (Wire.Obj
           [
             ("lease", Wire.Int lease);
             ("victim", Wire.Int victim);
             ("at", Wire.Int at);
             ("hi", Wire.Int hi);
           ])
  | Death { worker; pid } ->
      Wire.to_string
        (Wire.Obj [ ("worker", Wire.Int worker); ("pid", Wire.Int pid) ])
  | Quarantine { lo; hi; attempts; error } ->
      Wire.to_string
        (Wire.Obj
           [
             ("lo", Wire.Int lo);
             ("hi", Wire.Int hi);
             ("attempts", Wire.Int attempts);
             ("error", Wire.String error);
           ])

let encode r =
  let p = payload_of r in
  Printf.sprintf "%s %s %d\n%s\n" magic (kind_of r) (String.length p) p

(* Payload decoding.  A record whose payload does not decode is treated
   exactly like a torn record: the replayable prefix ends just before
   it. *)

let ( let* ) = Result.bind

let int_field obj name =
  match List.assoc_opt name obj with
  | Some (Wire.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

let string_field obj name =
  match List.assoc_opt name obj with
  | Some (Wire.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let entries_of_json = function
  | Wire.List l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Wire.List [ Wire.Int d; Wire.Int r; Wire.Int c ] :: rest ->
            go ((d, r, c) :: acc) rest
        | _ -> Error "malformed entry triple"
      in
      go [] l
  | _ -> Error "entries: expected a list"

let decode_payload kind payload =
  if kind = "header" then Ok (Header payload)
  else
    let* j = Wire.of_string payload in
    let* obj =
      match j with Wire.Obj o -> Ok o | _ -> Error "payload: expected object"
    in
    match kind with
    | "grant" | "expire" ->
        let* lease = int_field obj "lease" in
        let* lo = int_field obj "lo" in
        let* hi = int_field obj "hi" in
        let* worker = int_field obj "worker" in
        Ok
          (if kind = "grant" then Grant { lease; lo; hi; worker }
           else Expire { lease; lo; hi; worker })
    | "done" ->
        let* lo = int_field obj "lo" in
        let* hi = int_field obj "hi" in
        let* entries =
          match List.assoc_opt "entries" obj with
          | Some j -> entries_of_json j
          | None -> Error "missing entries"
        in
        Ok (Done { lo; hi; entries })
    | "steal" ->
        let* lease = int_field obj "lease" in
        let* victim = int_field obj "victim" in
        let* at = int_field obj "at" in
        let* hi = int_field obj "hi" in
        Ok (Steal { lease; victim; at; hi })
    | "death" ->
        let* worker = int_field obj "worker" in
        let* pid = int_field obj "pid" in
        Ok (Death { worker; pid })
    | "quarantine" ->
        let* lo = int_field obj "lo" in
        let* hi = int_field obj "hi" in
        let* attempts = int_field obj "attempts" in
        let* error = string_field obj "error" in
        Ok (Quarantine { lo; hi; attempts; error })
    | other -> Error (Printf.sprintf "unknown record kind %S" other)

(* Scan [contents], returning the complete records in file order and the
   offset just past the last complete record. *)
let scan contents =
  let n = String.length contents in
  let out = ref [] in
  let good = ref 0 in
  let pos = ref 0 in
  (try
     while !pos < n do
       let nl =
         match String.index_from_opt contents !pos '\n' with
         | Some i -> i
         | None -> raise Exit
       in
       let header = String.sub contents !pos (nl - !pos) in
       let kind, len =
         match String.split_on_char ' ' header with
         | [ m; kind; len ] when m = magic -> (
             match int_of_string_opt len with
             | Some len when len >= 0 -> (kind, len)
             | _ -> raise Exit)
         | _ -> raise Exit
       in
       let payload_start = nl + 1 in
       if payload_start + len + 1 > n then raise Exit;
       if contents.[payload_start + len] <> '\n' then raise Exit;
       let payload = String.sub contents payload_start len in
       (match decode_payload kind payload with
       | Ok r -> out := r :: !out
       | Error _ -> raise Exit);
       pos := payload_start + len + 1;
       good := !pos
     done
   with Exit -> ());
  (List.rev !out, !good)

let check_header ~expected = function
  | [] -> ()
  | Header h :: _ ->
      if h <> expected then
        invalid_arg
          (Printf.sprintf
             "Dist_ledger: ledger belongs to a different census (%S, expected %S)"
             h expected)
  | _ -> invalid_arg "Dist_ledger: ledger does not start with a header record"

let load path ~expected =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let records, good = scan contents in
    check_header ~expected records;
    (records, String.length contents - good)
  end

type t = {
  fd : Unix.file_descr;
  chan : out_channel;
  fsync : bool;
  mutable closed : bool;
}

let append t record =
  if t.closed then invalid_arg "Dist_ledger.append: ledger is closed";
  output_string t.chan (encode record);
  flush t.chan;
  if t.fsync then Unix.fsync t.fd

let open_ledger ?obs ?(fsync = true) ~expected ~resume path =
  let c_loaded = Option.map (fun o -> Obs.counter o "dist.ledger_loaded") obs in
  let c_torn =
    Option.map (fun o -> Obs.counter o "dist.ledger_torn_bytes") obs
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Unix.set_close_on_exec fd;
  let size = (Unix.fstat fd).Unix.st_size in
  let contents =
    let ic = Unix.in_channel_of_descr (Unix.dup fd) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic size)
  in
  let records, good =
    if resume then begin
      let records, good = scan contents in
      (try check_header ~expected records
       with Invalid_argument _ as e ->
         Unix.close fd;
         raise e);
      (records, good)
    end
    else ([], 0)
  in
  if good < size then begin
    Unix.ftruncate fd good;
    Option.iter (fun c -> Obs.Metrics.Counter.add c (size - good)) c_torn
  end;
  Option.iter (fun c -> Obs.Metrics.Counter.add c (List.length records)) c_loaded;
  ignore (Unix.lseek fd good Unix.SEEK_SET);
  let chan = Unix.out_channel_of_descr fd in
  let t = { fd; chan; fsync; closed = false } in
  if records = [] then append t (Header expected);
  (t, records)

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out t.chan
  end
