(* Append-only lease ledger of a distributed census.  On-disk format,
   one record after another, nothing else in the file (the shared
   Fsio.Record discipline):

     rcndist2 <kind> <payload_bytes> <crc32hex>\n
     <payload>\n

   — the same scan-forward discipline as the serve store's rcnstore log:
   a torn tail is truncated, a CRC-failing complete record is hard
   corruption.  The payload of the header record is the plain header
   line pinning space, cap and table count; every other payload is
   canonical single-line Wire JSON, so payloads never contain a newline
   and a record boundary is always where the scanner thinks it is.

   rcndist2 bumped the magic when records grew the CRC field: an
   rcndist1 file's records fail the magic check, so the scanner keeps
   none of them — the ledger restarts from scratch rather than being
   misparsed, the same policy as the rcnstore3 bump. *)

let magic = "rcndist2"

(* A symmetry-reduced census grants leases over canonical-class ranks,
   not table indices; the [sym_classes] suffix pins the rank space so
   resume never mixes the two interpretations of [lo, hi).  Without it
   the v1 header bytes are unchanged. *)
let header ?sym_classes ~space ~cap ~total () =
  let base =
    Printf.sprintf "rcn-dist-census v1 values=%d rws=%d responses=%d cap=%d total=%d"
      space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap
      total
  in
  match sym_classes with
  | None -> base
  | Some n -> Printf.sprintf "%s sym=1 classes=%d" base n

type record =
  | Header of string
  | Grant of { lease : int; lo : int; hi : int; worker : int }
  | Done of { lo : int; hi : int; entries : (int * int * int) list }
  | Expire of { lease : int; lo : int; hi : int; worker : int }
  | Steal of { lease : int; victim : int; at : int; hi : int }
  | Death of { worker : int; pid : int }
  | Quarantine of { lo : int; hi : int; attempts : int; error : string }

let kind_of = function
  | Header _ -> "header"
  | Grant _ -> "grant"
  | Done _ -> "done"
  | Expire _ -> "expire"
  | Steal _ -> "steal"
  | Death _ -> "death"
  | Quarantine _ -> "quarantine"

let lease_fields ~lease ~lo ~hi ~worker =
  [
    ("lease", Wire.Int lease);
    ("lo", Wire.Int lo);
    ("hi", Wire.Int hi);
    ("worker", Wire.Int worker);
  ]

let payload_of = function
  | Header h -> h
  | Grant { lease; lo; hi; worker } ->
      Wire.to_string (Wire.Obj (lease_fields ~lease ~lo ~hi ~worker))
  | Expire { lease; lo; hi; worker } ->
      Wire.to_string (Wire.Obj (lease_fields ~lease ~lo ~hi ~worker))
  | Done { lo; hi; entries } ->
      Wire.to_string
        (Wire.Obj
           [
             ("lo", Wire.Int lo);
             ("hi", Wire.Int hi);
             ( "entries",
               Wire.List
                 (List.map
                    (fun (d, r, c) ->
                      Wire.List [ Wire.Int d; Wire.Int r; Wire.Int c ])
                    entries) );
           ])
  | Steal { lease; victim; at; hi } ->
      Wire.to_string
        (Wire.Obj
           [
             ("lease", Wire.Int lease);
             ("victim", Wire.Int victim);
             ("at", Wire.Int at);
             ("hi", Wire.Int hi);
           ])
  | Death { worker; pid } ->
      Wire.to_string
        (Wire.Obj [ ("worker", Wire.Int worker); ("pid", Wire.Int pid) ])
  | Quarantine { lo; hi; attempts; error } ->
      Wire.to_string
        (Wire.Obj
           [
             ("lo", Wire.Int lo);
             ("hi", Wire.Int hi);
             ("attempts", Wire.Int attempts);
             ("error", Wire.String error);
           ])

let encode r = Fsio.Record.encode ~magic ~tag:(kind_of r) (payload_of r)

(* Payload decoding.  A record whose payload does not decode is treated
   exactly like a torn record: the replayable prefix ends just before
   it. *)

let ( let* ) = Result.bind

let int_field obj name =
  match List.assoc_opt name obj with
  | Some (Wire.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

let string_field obj name =
  match List.assoc_opt name obj with
  | Some (Wire.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let entries_of_json = function
  | Wire.List l ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Wire.List [ Wire.Int d; Wire.Int r; Wire.Int c ] :: rest ->
            go ((d, r, c) :: acc) rest
        | _ -> Error "malformed entry triple"
      in
      go [] l
  | _ -> Error "entries: expected a list"

let decode_payload kind payload =
  if kind = "header" then Ok (Header payload)
  else
    let* j = Wire.of_string payload in
    let* obj =
      match j with Wire.Obj o -> Ok o | _ -> Error "payload: expected object"
    in
    match kind with
    | "grant" | "expire" ->
        let* lease = int_field obj "lease" in
        let* lo = int_field obj "lo" in
        let* hi = int_field obj "hi" in
        let* worker = int_field obj "worker" in
        Ok
          (if kind = "grant" then Grant { lease; lo; hi; worker }
           else Expire { lease; lo; hi; worker })
    | "done" ->
        let* lo = int_field obj "lo" in
        let* hi = int_field obj "hi" in
        let* entries =
          match List.assoc_opt "entries" obj with
          | Some j -> entries_of_json j
          | None -> Error "missing entries"
        in
        Ok (Done { lo; hi; entries })
    | "steal" ->
        let* lease = int_field obj "lease" in
        let* victim = int_field obj "victim" in
        let* at = int_field obj "at" in
        let* hi = int_field obj "hi" in
        Ok (Steal { lease; victim; at; hi })
    | "death" ->
        let* worker = int_field obj "worker" in
        let* pid = int_field obj "pid" in
        Ok (Death { worker; pid })
    | "quarantine" ->
        let* lo = int_field obj "lo" in
        let* hi = int_field obj "hi" in
        let* attempts = int_field obj "attempts" in
        let* error = string_field obj "error" in
        Ok (Quarantine { lo; hi; attempts; error })
    | other -> Error (Printf.sprintf "unknown record kind %S" other)

(* Scan [contents], returning the complete records in file order and
   the offset just past the last complete record.  The framing layer
   (Fsio.Record.scan) decides torn vs corrupt; a record whose CRC
   checks out but whose payload does not decode is corruption too —
   the bytes were acknowledged whole, so losing them must be loud.
   @raise Fsio.Corrupt *)
let scan ~path contents =
  let framed, good, verdict = Fsio.Record.scan ~magic contents in
  (match verdict with
  | Fsio.Record.Complete | Fsio.Record.Torn _ -> ()
  | Fsio.Record.Corrupt_at { offset; reason } ->
      raise (Fsio.Corrupt { path; offset; reason }));
  let out = ref [] in
  let pos = ref 0 in
  List.iter
    (fun (kind, payload) ->
      (match decode_payload kind payload with
      | Ok r -> out := r :: !out
      | Error reason ->
          raise
            (Fsio.Corrupt
               { path; offset = !pos; reason = "payload: " ^ reason }));
      pos := !pos + String.length (Fsio.Record.encode ~magic ~tag:kind payload))
    framed;
  (List.rev !out, good)

let check_header ~expected = function
  | [] -> ()
  | Header h :: _ ->
      if h <> expected then
        invalid_arg
          (Printf.sprintf
             "Dist_ledger: ledger belongs to a different census (%S, expected %S)"
             h expected)
  | _ -> invalid_arg "Dist_ledger: ledger does not start with a header record"

let load path ~expected =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let records, good = scan ~path contents in
    check_header ~expected records;
    (records, String.length contents - good)
  end

type t = {
  log : Fsio.t;
  fsync : bool;
  mutable closed : bool;
  mutable degraded_reason : string option;
  c_degraded : Obs.Metrics.Counter.t option;
  c_dropped : Obs.Metrics.Counter.t option;
}

let degraded t = t.degraded_reason

(* An append failure does not kill the census: the ledger flips to a
   sticky degraded mode and every later append is dropped (counted).
   The coordinator checks [degraded] at the end and reports the run
   PARTIAL — honest At_least semantics, exactly like a quarantined
   range — instead of crashing with work in flight.  Fsio's append
   atomicity means the failed record left the file byte-identical, so
   resume replays a clean prefix. *)
let append t record =
  if t.closed then invalid_arg "Dist_ledger.append: ledger is closed";
  match t.degraded_reason with
  | Some _ -> Option.iter Obs.Metrics.Counter.incr t.c_dropped
  | None -> (
      match
        Fsio.append t.log (encode record);
        if t.fsync then Fsio.fsync t.log
      with
      | () -> ()
      | exception (Fsio.Io_error _ as e) ->
          t.degraded_reason <- Fsio.error_message e;
          Option.iter Obs.Metrics.Counter.incr t.c_degraded)

let open_ledger ?obs ?(fsync = true) ?injector ~expected ~resume path =
  let c_loaded = Option.map (fun o -> Obs.counter o "dist.ledger_loaded") obs in
  let c_torn =
    Option.map (fun o -> Obs.counter o "dist.ledger_torn_bytes") obs
  in
  let c_degraded =
    Option.map (fun o -> Obs.counter o "dist.ledger_degraded") obs
  in
  let c_dropped =
    Option.map (fun o -> Obs.counter o "dist.ledger_dropped") obs
  in
  let log = Fsio.open_log ?injector path in
  match
    let contents = Fsio.contents log in
    let size = String.length contents in
    let records, good =
      if resume then begin
        let records, good = scan ~path contents in
        check_header ~expected records;
        (records, good)
      end
      else ([], 0)
    in
    (records, good, size)
  with
  | exception e ->
      (try Fsio.close log with Fsio.Io_error _ -> ());
      raise e
  | records, good, size ->
      if good < size then begin
        Fsio.truncate log good;
        Option.iter (fun c -> Obs.Metrics.Counter.add c (size - good)) c_torn
      end;
      Option.iter
        (fun c -> Obs.Metrics.Counter.add c (List.length records))
        c_loaded;
      let t =
        { log; fsync; closed = false; degraded_reason = None; c_degraded; c_dropped }
      in
      if records = [] then append t (Header expected);
      (t, records)

let close t =
  if not t.closed then begin
    t.closed <- true;
    Fsio.close t.log
  end
