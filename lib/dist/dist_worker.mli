(** The worker process body of the distributed census.

    [run ~config ~space ~fd ()] speaks the {!Api.Worker} protocol over
    [fd] (the coordinator's socketpair end, inherited as stdin by the
    [rcn worker] subcommand): send [Hello], then loop — receive an
    [Assign]ed rank range, decide it in [stride]-sized batches on a
    domain pool of [config.jobs] workers via [Engine.census_levels]
    (warming the same per-process-count state as [Engine.census], so
    decided levels are independent of which worker decides a table),
    heartbeat [Progress] between batches, obey [Truncate] steals, and
    report the range's histogram as [Result].

    Returns the process exit code: [0] on [Shutdown] {e and} on losing
    the coordinator (EOF/EPIPE — an orphan exits quietly; the
    coordinator's lease machinery owns all failure handling), [70] on a
    protocol violation.

    [throttle_us] sleeps that many microseconds per decided table and
    [crash_after] SIGKILLs the process after that many tables — the
    deterministic straggler/crash injection hooks that the soak, smoke
    and test harnesses drive through [rcn worker]'s flags. *)

val run :
  ?obs:Obs.t ->
  ?stride:int ->
  ?throttle_us:int ->
  ?crash_after:int ->
  config:Api.Config.t ->
  space:Synth.space ->
  fd:Unix.file_descr ->
  unit ->
  int
