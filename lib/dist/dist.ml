(* The distributed census coordinator.

   The rank space [0, total) is sharded into chunks held in a pending
   queue.  N worker processes (rcn worker) are spawned over socketpairs;
   each Waiting worker is granted a lease on the next pending chunk.
   All coordinator state that matters is reconstructible from the
   fsync'd lease ledger: completed ranges (Done records) are trusted on
   resume, everything else is re-leased.

   The failure model, in one place:

   - A worker that dies (reaped via waitpid, or EOF on its socket) has
     its lease revoked and the FULL range re-queued with attempts + 1 —
     progress heartbeats only renew leases; partial results never
     survive a death, which is what makes the merge independent of the
     crash schedule.
   - A lease whose deadline passes without a heartbeat is expired: the
     worker is SIGKILLed (it may be alive but wedged) and the range
     re-queued.
   - Dead workers respawn with seeded backoff (Supervise.Policy), up to
     max_spawns per slot; a slot that exhausts its spawns retires.
   - A range that fails range_attempts grants is quarantined — recorded
     in the ledger and the outcome, never silently dropped — and the
     census degrades to an honest partial (exit 3), like any other
     supervised sweep.
   - Work stealing: when a worker goes idle with nothing pending, the
     straggler with the most remaining work is marked; at its next
     heartbeat the tail above the midpoint is re-queued and the victim
     truncated.  Stealing only moves undecided work, so it cannot
     double-count.

   Merging is a plain histogram sum over Done ranges, which a bitmap
   proves disjoint and complete — hence bit-identical to Engine.census
   regardless of worker count, crash schedule or steal order. *)

type outcome = {
  entries : Census.entry list;
  total : int;
  completed : int;
  resumed : int;
  complete : bool;
  quarantined : Supervise.quarantine list;
  deaths : int;
}

type plan = {
  plan_total : int;
  plan_covered : int;
  plan_entries : Census.entry list;
  plan_gaps : (int * int) list;
  plan_deaths : int;
}

(* Fold the Done records of a replayed ledger into a coverage bitmap and
   histogram, ignoring any record that is out of range, overlapping, or
   whose counts do not sum to its weight — the paranoid read that makes
   resume trust only self-consistent results.  [weight ~lo ~hi] is the
   number of tables the range accounts for: its width normally, the sum
   of its orbit sizes under symmetry reduction (where ranks are
   canonical classes and one verdict counts a whole orbit). *)
let replay_done ~total ~weight records =
  let covered = Bytes.make total '\000' in
  let hist : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let covered_n = ref 0 in
  let deaths = ref 0 in
  let free lo hi =
    let ok = ref true in
    for i = lo to hi - 1 do
      if Bytes.get covered i <> '\000' then ok := false
    done;
    !ok
  in
  List.iter
    (function
      | Dist_ledger.Done { lo; hi; entries }
        when lo >= 0 && hi <= total && lo < hi && free lo hi
             && List.fold_left (fun a (_, _, c) -> a + c) 0 entries = weight ~lo ~hi
        ->
          Bytes.fill covered lo (hi - lo) '\001';
          covered_n := !covered_n + weight ~lo ~hi;
          List.iter
            (fun (d, r, c) ->
              Hashtbl.replace hist (d, r)
                (c + Option.value ~default:0 (Hashtbl.find_opt hist (d, r))))
            entries
      | Dist_ledger.Death _ -> incr deaths
      | _ -> ())
    records;
  (covered, hist, !covered_n, !deaths)

let gaps_of covered total =
  let gaps = ref [] in
  let i = ref 0 in
  while !i < total do
    if Bytes.get covered !i = '\000' then begin
      let j = ref !i in
      while !j < total && Bytes.get covered !j = '\000' do
        incr j
      done;
      gaps := (!i, !j) :: !gaps;
      i := !j
    end
    else incr i
  done;
  List.rev !gaps

let plan_of_ledger ~expected ~total path =
  let records, _torn = Dist_ledger.load path ~expected in
  let covered, hist, covered_n, deaths =
    replay_done ~total ~weight:(fun ~lo ~hi -> hi - lo) records
  in
  {
    plan_total = total;
    plan_covered = covered_n;
    plan_entries = Census.of_histogram hist;
    plan_gaps = gaps_of covered total;
    plan_deaths = deaths;
  }

(* Coordinator-side per-worker state machine. *)

type lease = {
  id : int;
  lo : int;
  mutable hi : int;
  mutable at : int;  (** every rank below [at] is decided by the holder *)
  attempts : int;  (** prior failed grants of this range *)
  mutable deadline : float;
  mutable steal_to : int;  (** pending steal point; [-1] when none *)
}

type slot_state =
  | Starting  (** spawned; Hello not yet received *)
  | Waiting  (** idle, blocked on our next reply *)
  | Busy of lease
  | Cooling  (** dead; respawn backoff running *)
  | Finishing  (** sent Shutdown; awaiting exit *)
  | Retired  (** reaped for good — cleanly done or spawns exhausted *)

type slot = {
  index : int;
  mutable pid : int;
  mutable fd : Unix.file_descr option;
  mutable state : slot_state;
  mutable spawns : int;
  mutable respawn_at : float;
}

let default_policy =
  Supervise.Policy.v ~max_attempts:3 ~base_backoff:0.01 ~max_backoff:0.25 ()

let census ?obs ?rcn ?ledger ?(resume = false) ?(fsync = true)
    ?(lease_ttl = 30.) ?chunk ?(stride = 32) ?steal_min ?(range_attempts = 3)
    ?(max_spawns = 5) ?(policy = default_policy) ?(crash = []) ?(throttle = [])
    ~workers ~(config : Api.Config.t) space =
  if workers < 1 then invalid_arg "Dist.census: workers must be positive";
  if lease_ttl <= 0. then invalid_arg "Dist.census: lease_ttl must be positive";
  if stride < 1 then invalid_arg "Dist.census: stride must be positive";
  if range_attempts < 1 then
    invalid_arg "Dist.census: range_attempts must be positive";
  if max_spawns < 1 then invalid_arg "Dist.census: max_spawns must be positive";
  let total = Census.space_size space in
  let cap = config.Api.Config.cap in
  let counter name = Option.map (fun o -> Obs.counter o name) obs in
  let c_granted = counter "dist.leases_granted" in
  let c_expired = counter "dist.leases_expired" in
  let c_stolen = counter "dist.leases_stolen" in
  let c_spawned = counter "dist.workers_spawned" in
  let c_killed = counter "dist.workers_killed" in
  let c_respawned = counter "dist.workers_respawned" in
  let c_quarantined = counter "dist.ranges_quarantined" in
  let c_resumed = counter "dist.ranks_resumed" in
  let c_cut = counter "dist.deadline_truncations" in
  let bump c = Option.iter Obs.Metrics.Counter.incr c in
  (* The wall-clock budget is resolved against the monotonic clock
     exactly once, here.  Workers never see [config.deadline]: each
     assignment carries the seconds *remaining* at grant time, so a
     worker (re)spawned late in the run inherits the tail of the budget
     instead of restarting it. *)
  let deadline_abs = Option.map Obs.Clock.after config.Api.Config.deadline in
  let expired () = Obs.Clock.expired deadline_abs in
  (* Symmetry reduction: the rank space the leases shard is the space of
     canonical-class ranks, and each rank [i] accounts for [orbits.(i)]
     tables.  The scan is deterministic, so every worker derives the
     identical representative list on its own — assignments stay plain
     [lo, hi) rank ranges on the wire. *)
  let sym_orbits =
    if config.Api.Config.sym then
      let s =
        Sym.make ~values:space.Synth.num_values ~ops:space.Synth.num_rws
          ~responses:space.Synth.num_responses
      in
      let reps, orbits = Sym.classes s in
      (match obs with
      | None -> ()
      | Some o ->
          Obs.Metrics.Counter.add (Obs.counter o "sym.classes") (Array.length reps);
          Obs.Metrics.Counter.add (Obs.counter o "sym.orbit_max")
            (Array.fold_left max 0 orbits));
      Some orbits
    else None
  in
  let ranks = match sym_orbits with Some orbits -> Array.length orbits | None -> total in
  (* weight-prefix sums: [wsum.(i)] tables live below rank [i] *)
  let wsum =
    match sym_orbits with
    | None -> [||]
    | Some orbits ->
        let pre = Array.make (ranks + 1) 0 in
        Array.iteri (fun i w -> pre.(i + 1) <- pre.(i) + w) orbits;
        assert (pre.(ranks) = total);
        pre
  in
  let weight_of ~lo ~hi =
    match sym_orbits with None -> hi - lo | Some _ -> wsum.(hi) - wsum.(lo)
  in
  let rcn = match rcn with Some p -> p | None -> Sys.executable_name in
  let ledger_path, temp_ledger =
    match ledger with
    | Some p -> (p, false)
    | None ->
        if resume then
          invalid_arg "Dist.census: resume needs an explicit ledger path";
        (Filename.temp_file "rcn-dist" ".ledger", true)
  in
  let expected =
    Dist_ledger.header
      ?sym_classes:(match sym_orbits with Some _ -> Some ranks | None -> None)
      ~space ~cap ~total ()
  in
  let led, replayed =
    Dist_ledger.open_ledger ?obs ~fsync ~expected ~resume ledger_path
  in
  let covered, hist, resumed, _ =
    replay_done ~total:ranks ~weight:weight_of replayed
  in
  Option.iter (fun c -> Obs.Metrics.Counter.add c resumed) c_resumed;
  let completed = ref resumed in
  let accounted = ref resumed in
  (* decided or quarantined, in table units *)
  let quarantined = ref [] in
  let deaths = ref 0 in
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Dist.census: chunk must be positive"
    | None -> max stride (1 + ((ranks - 1) / max 1 (4 * workers)))
  in
  let steal_min = match steal_min with Some s -> max 2 s | None -> 2 * stride in
  (* Pending ranges: (lo, hi, failed grants so far). *)
  let pending : (int * int * int) Queue.t = Queue.create () in
  List.iter
    (fun (lo, hi) ->
      let i = ref lo in
      while !i < hi do
        let j = min (!i + chunk) hi in
        Queue.add (!i, j, 0) pending;
        i := j
      done)
    (gaps_of covered ranks);
  let mark_done ~lo ~hi entries =
    Bytes.fill covered lo (hi - lo) '\001';
    completed := !completed + weight_of ~lo ~hi;
    accounted := !accounted + weight_of ~lo ~hi;
    List.iter
      (fun (d, r, c) ->
        Hashtbl.replace hist (d, r)
          (c + Option.value ~default:0 (Hashtbl.find_opt hist (d, r))))
      entries
  in
  let range_free ~lo ~hi =
    lo >= 0 && hi <= ranks && lo < hi
    &&
    let ok = ref true in
    for i = lo to hi - 1 do
      if Bytes.get covered i <> '\000' then ok := false
    done;
    !ok
  in
  let quarantine_range ~lo ~hi ~attempts ~error =
    Bytes.fill covered lo (hi - lo) '\002';
    accounted := !accounted + weight_of ~lo ~hi;
    quarantined :=
      {
        Supervise.q_context = "dist.census";
        q_lo = lo;
        q_hi = hi;
        q_attempts = attempts;
        q_error = error;
      }
      :: !quarantined;
    Dist_ledger.append led (Dist_ledger.Quarantine { lo; hi; attempts; error });
    bump c_quarantined
  in
  let requeue ~lo ~hi ~attempts ~error =
    if lo >= hi then () (* a lease truncated to nothing holds no work *)
    else if expired () then
      (* Past the deadline nothing is re-granted; leave the range in
         [pending] unescalated so it shows as an honest gap (resumable),
         not a spurious quarantine. *)
      Queue.add (lo, hi, attempts) pending
    else if attempts + 1 >= range_attempts then
      quarantine_range ~lo ~hi ~attempts:(attempts + 1) ~error
    else Queue.add (lo, hi, attempts + 1) pending
  in
  let all_work_done () = !accounted = total in
  let slots =
    Array.init workers (fun index ->
        { index; pid = -1; fd = None; state = Retired; spawns = 0; respawn_at = 0. })
  in
  let busy_exists () =
    Array.exists (fun s -> match s.state with Busy _ -> true | _ -> false) slots
  in
  (* Spawn plumbing.  The worker inherits its end of the socketpair as
     stdin; our end is close-on-exec so sibling workers cannot hold a
     dead worker's connection open and defeat EOF detection. *)
  let worker_argv slot =
    let injected spec = if slot.spawns = 0 then List.assoc_opt slot.index spec else None in
    let base =
      [
        rcn;
        "worker";
        "--values";
        string_of_int space.Synth.num_values;
        "--rws";
        string_of_int space.Synth.num_rws;
        "--responses";
        string_of_int space.Synth.num_responses;
        "--stride";
        string_of_int stride;
        "--config";
        (* The deadline is stripped: a worker must never resolve the
           user's budget against its own spawn time (that is exactly the
           respawn-resets-the-deadline bug).  What remains of the budget
           travels in each Assign instead. *)
        Wire.to_string (Api.Config.to_json { config with Api.Config.deadline = None });
      ]
    in
    let base =
      match injected crash with
      | Some k -> base @ [ "--crash-after"; string_of_int k ]
      | None -> base
    in
    let base =
      match injected throttle with
      | Some us -> base @ [ "--throttle-us"; string_of_int us ]
      | None -> base
    in
    Array.of_list base
  in
  let spawn slot =
    let ours, theirs = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec ours;
    let argv = worker_argv slot in
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid = Unix.create_process rcn argv theirs devnull Unix.stderr in
    Unix.close theirs;
    Unix.close devnull;
    slot.pid <- pid;
    slot.fd <- Some ours;
    slot.state <- Starting;
    slot.spawns <- slot.spawns + 1;
    bump c_spawned
  in
  let close_slot_fd slot =
    match slot.fd with
    | None -> ()
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        slot.fd <- None
  in
  let reply slot r =
    match slot.fd with
    | None -> ()
    | Some fd -> (
        try Frame.write fd (Api.Worker.reply_to_string r)
        with Unix.Unix_error _ -> () (* dying worker; the reap will see it *))
  in
  let revoke ~error slot lease =
    Dist_ledger.append led
      (Dist_ledger.Expire
         { lease = lease.id; lo = lease.lo; hi = lease.hi; worker = slot.index });
    bump c_expired;
    requeue ~lo:lease.lo ~hi:lease.hi ~attempts:lease.attempts ~error
  in
  let abandon_or_cool slot =
    if slot.spawns >= max_spawns then slot.state <- Retired
    else begin
      slot.state <- Cooling;
      slot.respawn_at <-
        Obs.Clock.now ()
        +. Supervise.Policy.backoff policy ~key:slot.index ~attempt:slot.spawns
    end
  in
  (* The worker process is known dead (already reaped). *)
  let on_death slot ~error =
    incr deaths;
    Dist_ledger.append led
      (Dist_ledger.Death { worker = slot.index; pid = slot.pid });
    let was = slot.state in
    close_slot_fd slot;
    slot.pid <- -1;
    (match was with Busy lease -> revoke ~error slot lease | _ -> ());
    match was with
    | Finishing -> slot.state <- Retired
    | _ -> abandon_or_cool slot
  in
  let kill_slot slot ~error =
    (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
    bump c_killed;
    (try ignore (Fsio.Retry.eintr (fun () -> Unix.waitpid [] slot.pid))
     with Unix.Unix_error _ -> ());
    on_death slot ~error
  in
  (* Mark the straggler holding the most remaining work for a steal; the
     split happens at its next heartbeat, which is the only moment the
     coordinator knows a safe cut point. *)
  let mark_steal () =
    let best = ref None in
    Array.iter
      (fun s ->
        match s.state with
        | Busy l when l.steal_to < 0 ->
            let remaining = l.hi - l.at in
            if remaining >= steal_min then begin
              match !best with
              | Some (_, r) when r >= remaining -> ()
              | _ -> best := Some (l, remaining)
            end
        | _ -> ())
      slots;
    match !best with
    | Some (l, _) -> l.steal_to <- l.at + ((l.hi - l.at) / 2)
    | None -> ()
  in
  let lease_ctr = ref 0 in
  let try_assign slot =
    if expired () then begin
      (* Budget exhausted: nothing is granted anymore, idle workers are
         sent home, and busy ones get truncated at their next
         heartbeat. *)
      reply slot Api.Worker.Shutdown;
      slot.state <- Finishing
    end
    else if not (Queue.is_empty pending) then begin
      let lo, hi, attempts = Queue.pop pending in
      incr lease_ctr;
      let lease =
        {
          id = !lease_ctr;
          lo;
          hi;
          at = lo;
          attempts;
          deadline = Obs.Clock.now () +. lease_ttl;
          steal_to = -1;
        }
      in
      slot.state <- Busy lease;
      Dist_ledger.append led
        (Dist_ledger.Grant { lease = lease.id; lo; hi; worker = slot.index });
      bump c_granted;
      let budget =
        Option.map (fun d -> Float.max 0. (d -. Obs.Clock.now ())) deadline_abs
      in
      reply slot (Api.Worker.Assign { lease = lease.id; lo; hi; budget })
    end
    else if all_work_done () && not (busy_exists ()) then begin
      reply slot Api.Worker.Shutdown;
      slot.state <- Finishing
    end
    else
      (* Idle with work still leased elsewhere: set up a steal and stay
         Waiting; the split lands in [pending] at the victim's next
         heartbeat and the drain loop hands it over. *)
      mark_steal ()
  in
  let drain_pending () =
    Array.iter
      (fun s ->
        match s.state with
        | Waiting when not (Queue.is_empty pending) -> try_assign s
        | _ -> ())
      slots
  in
  let on_progress slot lease_id at =
    match slot.state with
    | Busy l when l.id = lease_id ->
        l.at <- max l.at at;
        l.deadline <- Obs.Clock.now () +. lease_ttl;
        if expired () then begin
          (* Deadline cut: truncate the lease at the progress point.
             Decided work below [at] still comes back in the Result; the
             abandoned tail is recorded and stays an honest gap. *)
          let cut = l.at in
          if cut < l.hi then begin
            Dist_ledger.append led
              (Dist_ledger.Expire
                 { lease = l.id; lo = cut; hi = l.hi; worker = slot.index });
            bump c_cut
          end;
          l.hi <- cut;
          l.steal_to <- -1;
          reply slot (Api.Worker.Truncate { hi = cut })
        end
        else if l.steal_to > l.at then begin
          let cut = l.steal_to in
          Dist_ledger.append led
            (Dist_ledger.Steal
               { lease = l.id; victim = slot.index; at = l.at; hi = l.hi });
          Queue.add (cut, l.hi, 0) pending;
          l.hi <- cut;
          l.steal_to <- -1;
          bump c_stolen;
          reply slot (Api.Worker.Truncate { hi = cut });
          drain_pending ()
        end
        else begin
          (* an overtaken steal point is stale: cancel it *)
          l.steal_to <- -1;
          reply slot Api.Worker.Continue
        end
    | _ -> reply slot Api.Worker.Continue
  in
  let on_result slot lease_id lo hi entries =
    match slot.state with
    | Busy l when l.id = lease_id && lo = l.lo && hi = l.hi && lo = hi ->
        (* A deadline truncation at the lease's own [lo] leaves nothing
           to report: no Done record, no coverage — just hand the worker
           its Shutdown via [try_assign]. *)
        if entries <> [] then kill_slot slot ~error:"inconsistent result"
        else begin
          slot.state <- Waiting;
          try_assign slot
        end
    | Busy l when l.id = lease_id && lo = l.lo && hi = l.hi ->
        let triples =
          List.map
            (fun (e : Census.entry) ->
              (e.Census.discerning, e.Census.recording, e.Census.count))
            entries
        in
        let width = List.fold_left (fun a (_, _, c) -> a + c) 0 triples in
        if width <> weight_of ~lo ~hi || not (range_free ~lo ~hi) then
          kill_slot slot ~error:"inconsistent result"
        else begin
          Dist_ledger.append led (Dist_ledger.Done { lo; hi; entries = triples });
          mark_done ~lo ~hi triples;
          slot.state <- Waiting;
          try_assign slot
        end
    | _ -> kill_slot slot ~error:"result for a lease not held"
  in
  let handle_readable slot =
    match slot.fd with
    | None -> ()
    | Some fd -> (
        match Frame.read fd with
        | Frame.Frame s -> (
            match Api.Worker.msg_of_string s with
            | Ok (Api.Worker.Hello _) -> (
                match slot.state with
                | Starting ->
                    slot.state <- Waiting;
                    try_assign slot
                | _ -> kill_slot slot ~error:"unexpected hello")
            | Ok (Api.Worker.Progress { lease; at }) -> on_progress slot lease at
            | Ok (Api.Worker.Result { lease; lo; hi; entries }) ->
                on_result slot lease lo hi entries
            | Error e -> kill_slot slot ~error:("protocol: " ^ e))
        | Frame.Eof -> (
            match slot.state with
            | Finishing ->
                (* the expected EOF of a worker told to shut down *)
                (try ignore (Fsio.Retry.eintr (fun () -> Unix.waitpid [] slot.pid))
                 with Unix.Unix_error _ -> ());
                close_slot_fd slot;
                slot.pid <- -1;
                slot.state <- Retired
            | _ -> kill_slot slot ~error:"connection closed")
        | Frame.Bad m -> kill_slot slot ~error:("bad frame: " ^ m))
  in
  let tick () =
    let now = Obs.Clock.now () in
    (* reap exits *)
    Array.iter
      (fun slot ->
        if slot.pid >= 0 then
          match Fsio.Retry.eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] slot.pid) with
          | 0, _ -> ()
          | _ -> (
              match slot.state with
              | Finishing ->
                  close_slot_fd slot;
                  slot.pid <- -1;
                  slot.state <- Retired
              | _ -> on_death slot ~error:"worker died")
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> (
              match slot.state with
              | Finishing ->
                  close_slot_fd slot;
                  slot.pid <- -1;
                  slot.state <- Retired
              | _ -> on_death slot ~error:"worker vanished"))
      slots;
    (* lease expiry: a missed heartbeat revokes the lease and kills the
       (possibly wedged) holder *)
    Array.iter
      (fun slot ->
        match slot.state with
        | Busy l when now > l.deadline -> kill_slot slot ~error:"lease expired"
        | _ -> ())
      slots;
    (* due respawns — pointless once the budget is spent: a respawned
       worker would only be shut down again, and respawning must never
       stretch the user's wall clock *)
    Array.iter
      (fun slot ->
        match slot.state with
        | Cooling when now >= slot.respawn_at ->
            if all_work_done () || expired () then slot.state <- Retired
            else begin
              spawn slot;
              bump c_respawned
            end
        | _ -> ())
      slots;
    (* livelock guard: no slot can ever run again but work remains.  Not
       past the deadline — an out-of-time range is a gap, not a
       quarantine. *)
    let runnable =
      Array.exists
        (fun s -> match s.state with Retired -> false | _ -> true)
        slots
    in
    if (not runnable) && (not (expired ())) && not (Queue.is_empty pending) then begin
      Queue.iter
        (fun (lo, hi, attempts) ->
          quarantine_range ~lo ~hi ~attempts ~error:"workers exhausted")
        pending;
      Queue.clear pending
    end;
    drain_pending ();
    (* termination: once nothing remains — or the budget is spent — shut
       the idle fleet down *)
    if expired () || (all_work_done () && not (busy_exists ())) then
      Array.iter
        (fun slot ->
          match slot.state with
          | Waiting -> try_assign slot (* hits the Shutdown branch *)
          | Cooling -> slot.state <- Retired
          | _ -> ())
        slots
  in
  let finished () =
    Array.for_all
      (fun s -> match s.state with Retired -> true | _ -> false)
      slots
    && (all_work_done () || expired ())
  in
  let cleanup () =
    Array.iter
      (fun slot ->
        if slot.pid >= 0 then begin
          (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Fsio.Retry.eintr (fun () -> Unix.waitpid [] slot.pid))
          with Unix.Unix_error _ -> ()
        end;
        close_slot_fd slot)
      slots;
    Dist_ledger.close led;
    if temp_ledger then try Sys.remove ledger_path with Sys_error _ -> ()
  in
  let prev_pipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ -> None
  in
  let restore_pipe () =
    match prev_pipe with
    | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
    | None -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      cleanup ();
      restore_pipe ())
    (fun () ->
      if (not (all_work_done ())) && not (expired ()) then Array.iter spawn slots;
      while not (finished ()) do
        let fds =
          Array.fold_left
            (fun acc s -> match s.fd with Some fd -> fd :: acc | None -> acc)
            [] slots
        in
        let readable =
          if fds = [] then begin
            Obs.Clock.sleep 0.01;
            []
          end
          else
            match Unix.select fds [] [] 0.05 with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match Array.find_opt (fun s -> s.fd = Some fd) slots with
            | Some slot -> handle_readable slot
            | None -> ())
          readable;
        tick ()
      done;
      (* A degraded ledger means results past the failure point were
         never made durable: the run is reported PARTIAL via a
         synthetic quarantine entry, the same honesty channel as a
         poisoned range — never a silent success. *)
      let quarantined =
        match Dist_ledger.degraded led with
        | None -> List.rev !quarantined
        | Some reason ->
            {
              Supervise.q_context = "dist.ledger";
              q_lo = 0;
              q_hi = 0;
              q_attempts = 1;
              q_error = "ledger append failed: " ^ reason;
            }
            :: List.rev !quarantined
      in
      {
        entries = Census.of_histogram hist;
        total;
        completed = !completed;
        resumed;
        complete = (!completed = total) && Dist_ledger.degraded led = None;
        quarantined;
        deaths = !deaths;
      })
