(* The worker half of the distributed census: one process, one
   socketpair to the coordinator (inherited as fd 0), one domain pool.
   Strictly half-duplex: write one message, block for one reply.

   The worker decides a leased range in [stride]-sized batches.  Between
   batches it heartbeats a Progress message — which is simultaneously
   the lease renewal and the coordinator's steal point: the reply may
   truncate the range ("stop at hi, the tail was re-leased elsewhere").
   Work below the reported progress point is never stolen, so the
   histogram the worker finally reports covers exactly [lo, hi) of the
   (possibly truncated) range, disjoint from everyone else's.

   Failure handling is one-sided by design: a worker that loses its
   coordinator (EOF or EPIPE on the socket) is an orphan and exits
   quietly; a worker that receives a nonsensical reply exits 70; the
   coordinator's lease machinery handles everything else. *)

exception Bye of int

let crash_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let run ?obs ?(stride = 32) ?(throttle_us = 0) ?(crash_after = 0)
    ~(config : Api.Config.t) ~space ~fd () =
  if stride < 1 then invalid_arg "Dist_worker.run: stride must be positive";
  let cap = config.Api.Config.cap in
  let kernel = config.Api.Config.kernel in
  let jobs = Engine.resolve_jobs config.Api.Config.jobs in
  let cache = Engine.Cache.create ?obs () in
  (* Warm per-process-count state up front, exactly like Engine.census:
     decided levels must not depend on which worker decides a table. *)
  for n = 2 to cap do
    match kernel with
    | Kernel.Reference -> ignore (Engine.Cache.scheds cache ~n)
    | Kernel.Tables | Kernel.Trie -> Kernel.warm_trie ?obs ~nprocs:n ()
  done;
  let send msg = Frame.write fd (Api.Worker.msg_to_string msg) in
  let recv () =
    match Frame.read fd with
    | Frame.Frame s -> (
        match Api.Worker.reply_of_string s with
        | Ok r -> r
        | Error _ -> raise (Bye 70))
    | Frame.Eof -> raise (Bye 0) (* coordinator is gone: orphan, exit *)
    | Frame.Bad _ -> raise (Bye 70)
  in
  (* Under symmetry reduction the coordinator leases canonical-class
     ranks: the worker derives the same deterministic representative
     list, decides [reps.(rank)] and weights the verdict by
     [orbits.(rank)] — exactly the sym sweep of [Engine.census]. *)
  let sym_classes =
    if config.Api.Config.sym then
      Some
        (Sym.classes
           (Sym.make ~values:space.Synth.num_values ~ops:space.Synth.num_rws
              ~responses:space.Synth.num_responses))
    else None
  in
  let tables = Atomic.make 0 in
  let decide rank =
    let idx =
      match sym_classes with Some (reps, _) -> reps.(rank) | None -> rank
    in
    let ty = Synth.to_objtype (Census.genome_of_index space idx) in
    let levels = Engine.census_levels ?obs cache ~kernel ~cap ty in
    if throttle_us > 0 then
      Obs.Clock.sleep (float_of_int throttle_us /. 1_000_000.);
    if crash_after > 0 && 1 + Atomic.fetch_and_add tables 1 >= crash_after then
      crash_self ();
    levels
  in
  let weight rank =
    match sym_classes with Some (_, orbits) -> orbits.(rank) | None -> 1
  in
  let process pool ~lease ~lo ~hi ~stop_at =
    let hist : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
    let bump key w =
      Hashtbl.replace hist key
        (w + Option.value ~default:0 (Hashtbl.find_opt hist key))
    in
    let cur = ref lo in
    let stop = ref hi in
    let exchange () =
      (* one Progress, one reply — the lease renewal, the steal point,
         and (past the assignment's budget) the deadline cut *)
      send (Api.Worker.Progress { lease; at = !cur });
      match recv () with
      | Api.Worker.Continue -> ()
      | Api.Worker.Truncate { hi } ->
          (* the coordinator never cuts below the progress point it is
             answering, but clamp defensively: decided work stays. *)
          stop := max !cur (min !stop hi)
      | Api.Worker.Shutdown -> raise (Bye 0)
      | Api.Worker.Assign _ -> raise (Bye 70)
    in
    while !cur < !stop do
      if Obs.Clock.expired stop_at then
        (* Over budget: report where we are and obey the coordinator's
           answer.  A Continue (the coordinator's clock disagrees) runs
           one more batch rather than spinning on the exchange. *)
        exchange ();
      if !cur < !stop then begin
        let base = !cur in
        let next = min (base + stride) !stop in
        let batch = Array.make (next - base) (0, 0) in
        Pool.parallel_for pool ~chunk:4 (next - base) (fun a b ->
            for k = a to b - 1 do
              batch.(k) <- decide (base + k)
            done);
        Array.iteri (fun k lv -> bump lv (weight (base + k))) batch;
        cur := next;
        if !cur < !stop && not (Obs.Clock.expired stop_at) then exchange ()
      end
    done;
    send
      (Api.Worker.Result
         { lease; lo; hi = !stop; entries = Census.of_histogram hist })
  in
  try
    Pool.with_pool ?obs ~jobs @@ fun pool ->
    send (Api.Worker.Hello { pid = Unix.getpid () });
    let rec loop () =
      match recv () with
      | Api.Worker.Assign { lease; lo; hi; budget } ->
          (* [budget] is the whole census' remaining seconds at grant
             time, resolved by the coordinator: anchoring it here, at
             receipt, keeps the absolute cutoff aligned across every
             (re)spawn instead of restarting per process. *)
          process pool ~lease ~lo ~hi ~stop_at:(Option.map Obs.Clock.after budget);
          loop ()
      | Api.Worker.Shutdown -> 0
      | Api.Worker.Continue | Api.Worker.Truncate _ -> 70
    in
    loop ()
  with
  | Bye code -> code
  | Unix.Unix_error (Unix.EPIPE, _, _) -> 0
  | Sys_error _ -> 0
