(** The crash-safe lease ledger of a distributed census — the
    coordinator's only durable state.

    An append-only log in the shared [Fsio.Record] discipline
    ([rcndist2 <kind> <len> <crc32hex>\n<payload>\n]); recovery scans
    from the top and truncates a torn tail, so a [kill -9] mid-append
    costs at most the record being written — while a structurally
    complete record that fails its CRC (or decodes to garbage) is
    {e corruption} and raises [Fsio.Corrupt] with the offset, never a
    silent truncation of acknowledged data.  The
    first record is always a {!Header} pinning space, cap and table
    count, so a stale ledger from a different census is rejected rather
    than merged.

    Only {!record.Done} records carry results; everything else
    ({!record.Grant}, {!record.Expire}, {!record.Steal},
    {!record.Death}, {!record.Quarantine}) is an audit trail of the
    failure model — what was leased, what expired, what was stolen, who
    died — that resume deliberately ignores: a recovering coordinator
    trusts only completed ranges and re-leases everything else,
    including previously quarantined ranges (a fresh incarnation gets a
    fresh retry budget). *)

type record =
  | Header of string  (** the exact {!header} line of this census *)
  | Grant of { lease : int; lo : int; hi : int; worker : int }
  | Done of { lo : int; hi : int; entries : (int * int * int) list }
      (** histogram of the decided range: (discerning, recording, count)
          triples summing to [hi - lo] *)
  | Expire of { lease : int; lo : int; hi : int; worker : int }
      (** the lease was revoked — missed heartbeats or worker death *)
  | Steal of { lease : int; victim : int; at : int; hi : int }
      (** [\[steal point, hi)] of the lease was re-queued; the victim
          was truncated at the steal point *)
  | Death of { worker : int; pid : int }
  | Quarantine of { lo : int; hi : int; attempts : int; error : string }

val magic : string
(** ["rcndist2"] — bumped from [rcndist1] when records grew the CRC
    field; old-format records fail the magic check and are dropped
    wholesale on replay, like a torn tail. *)

val header : ?sym_classes:int -> space:Synth.space -> cap:int -> total:int -> unit -> string
(** The exact header payload a ledger for this census must carry.
    [sym_classes] (a symmetry-reduced census) appends a [sym=1
    classes=N] suffix pinning the canonical-rank space, so resume never
    reinterprets class ranks as table indices or vice versa; without it
    the v1 bytes are unchanged. *)

val encode : record -> string
(** The exact bytes {!append} writes — exposed so tests can compute
    record boundaries for truncate-at-every-offset pins. *)

val load : string -> expected:string -> record list * int
(** All complete records in file order, plus the torn tail byte count.
    A missing file is [([], 0)]; the replayable prefix ends at the first
    record that is cut short at end of file.
    @raise Fsio.Corrupt on a complete record failing CRC or decode.
    @raise Invalid_argument when the ledger's header differs from
    [expected] (or the file is nonempty without a leading header). *)

type t

val open_ledger :
  ?obs:Obs.t ->
  ?fsync:bool ->
  ?injector:Fsio.Injector.t ->
  expected:string ->
  resume:bool ->
  string ->
  t * record list
(** Open (creating if missing) the ledger for appending, returning the
    replayed records.  With [resume = false] the file is truncated and
    started fresh; with [resume = true] the complete records are
    replayed and a torn tail is truncated in place, exactly like
    [Store.open_store].  Either way the file ends up starting with the
    [expected] header (appended when absent).  [fsync] (default [true]
    — the ledger is the only thing that survives a coordinator kill)
    makes every {!append} fsync.  [injector] routes every I/O operation
    through a seeded fault plan (the [rcn crashtest] harness).  With
    [obs], counts [dist.ledger_loaded] (records replayed),
    [dist.ledger_torn_bytes], [dist.ledger_degraded] (flipped on the
    first failed append) and [dist.ledger_dropped] (appends dropped
    while degraded).
    @raise Fsio.Corrupt on mid-log corruption.
    @raise Invalid_argument on a header mismatch. *)

val append : t -> record -> unit
(** Append one record, flushed (and fsync'd when enabled) before
    returning.  An append that fails flips the ledger to a sticky
    {e degraded} mode instead of raising: the failed and all later
    records are dropped (counted), and {!degraded} reports the reason —
    the coordinator finishes the census and reports it PARTIAL, the
    same honesty discipline as a quarantined range. *)

val degraded : t -> string option
(** The sticky append-failure reason, if the ledger is degraded. *)

val close : t -> unit
