type env = {
  obs : Obs.t;
  cache : Engine.Cache.t;
  pool : Pool.t;
  store : Store.t option;
  supervision_obs : Obs.t option;
  command : string;
}

let env ?store ?supervision_obs ~obs ~command pool =
  { obs; cache = Engine.Cache.create ~obs (); pool; store; supervision_obs; command }

let metrics_response ~obs ~command =
  let line = String.trim (Obs.Stats.render ~command obs Obs.Stats.Json) in
  match Wire.of_string line with
  | Ok stats -> Api.Response.make (Api.Response.Metrics stats)
  | Error msg ->
      Api.Response.error ~code:Api.Response.err_internal
        (Printf.sprintf "stats rendering broke its own format: %s" msg)

(* The analyze store key.  Under [--sym on] the key is the canonical
   form's digest, so isomorphic queries (same table up to value /
   operation / response relabeling) share one record; the cached
   analysis is the representative's — levels are orbit invariants,
   certificates may witness a relabeled twin.  Without [sym] the key
   pins the exact spec, as always. *)
let analyze_digest ~(config : Api.Config.t) ty =
  if config.Api.Config.sym then
    Api.query_digest_canonical ty ~cap:config.Api.Config.cap
  else Api.query_digest ty ~cap:config.Api.Config.cap

(* The synth store key follows the same [--sym on] selection: the
   canonical key collapses parameter spellings that provably run the
   same search (defaulted vs explicit [restart_every]). *)
let synth_digest ~(config : Api.Config.t) space ~target ~seed ~iterations
    ~restart_every ~portfolio =
  if config.Api.Config.sym then
    Api.synth_digest_canonical space ~target ~seed ~iterations ~restart_every
      ~portfolio
  else Api.synth_digest space ~target ~seed ~iterations ~restart_every ~portfolio

(* A store hit replays the exact bytes the cold run published — decode
   them back into the analysis; a record that no longer decodes (a
   foreign or corrupt store file) is reported, not served. *)
let store_hit store ~digest =
  match Store.find store digest with
  | None -> None
  | Some payload ->
      Some
        (match Result.bind (Wire.of_string payload) Api.analysis_of_json with
        | Ok analysis ->
            Api.Response.make (Api.Response.Analysis { analysis; from_store = true })
        | Error msg ->
            Api.Response.error ~code:Api.Response.err_internal
              (Printf.sprintf "store record %s undecodable: %s" digest msg))

(* Census and synth results are memoized with the same byte-replay
   guarantee as analyses: the store keeps the canonical body bytes of
   the pristine cold run, so a warm query's body is byte-identical to
   the cold one.  Checkpoint/resume censuses are never memoized — their
   result is a function of the checkpoint file, not of the query. *)

let census_memoizable ~checkpoint ~resume ~durable ~(config : Api.Config.t) =
  checkpoint = None && (not resume) && (not durable)
  && config.Api.Config.deadline = None

let census_store_hit store ~digest =
  match Store.find store digest with
  | None -> None
  | Some payload ->
      Some
        (match
           Result.bind (Wire.of_string payload) Api.Response.census_summary_of_json
         with
        | Ok c -> Api.Response.make (Api.Response.Census c)
        | Error msg ->
            Api.Response.error ~code:Api.Response.err_internal
              (Printf.sprintf "store record %s undecodable: %s" digest msg))

let synth_store_hit store ~digest =
  match Store.find store digest with
  | None -> None
  | Some payload ->
      Some
        (match
           Result.bind (Wire.of_string payload) Api.Response.witness_opt_of_json
         with
        | Ok witness -> Api.Response.make (Api.Response.Synth { witness })
        | Error msg ->
            Api.Response.error ~code:Api.Response.err_internal
              (Printf.sprintf "store record %s undecodable: %s" digest msg))

let fast_path ~obs ?store ~command (req : Api.Request.t) =
  match req with
  | Api.Request.Ping -> Some (Api.Response.make Api.Response.Pong)
  | Api.Request.Metrics -> Some (metrics_response ~obs ~command)
  | Api.Request.Analyze { spec; config } -> (
      match store with
      | None -> None
      | Some store -> (
          match Objtype.of_spec_string spec with
          | exception Objtype.Ill_formed _ -> None (* let [run] report it *)
          | ty -> store_hit store ~digest:(analyze_digest ~config ty)))
  | Api.Request.Census { space; sample; seed; checkpoint; resume; durable; config }
    when census_memoizable ~checkpoint ~resume ~durable ~config -> (
      match store with
      | None -> None
      | Some store ->
          census_store_hit store
            ~digest:(Api.census_digest space ~cap:config.Api.Config.cap ~sample ~seed))
  | Api.Request.Synth { space; target; seed; iterations; restart_every; portfolio; config }
    when config.Api.Config.deadline = None -> (
      match store with
      | None -> None
      | Some store ->
          synth_store_hit store
            ~digest:
              (synth_digest ~config space ~target ~seed ~iterations ~restart_every
                 ~portfolio))
  | _ -> None

(* The response's supervision ledger, read off the per-request
   supervisor. *)
let ledger supervisor =
  match supervisor with
  | None -> (0, 0, [])
  | Some sup ->
      let trips =
        match Supervise.watchdog sup with
        | Some wd -> Supervise.Watchdog.trips wd
        | None -> 0
      in
      (Supervise.retries sup, trips, Supervise.quarantined sup)

let run_analyze env ~spec ~(config : Api.Config.t) =
  match Objtype.of_spec_string spec with
  | exception Objtype.Ill_formed msg ->
      Api.Response.error (Printf.sprintf "bad type spec: %s" msg)
  | ty -> (
      let digest = analyze_digest ~config ty in
      (* Re-probe under the pool owner: the fast path may have lost a race
         with the compute that published this digest. *)
      match Option.bind env.store (fun s -> store_hit s ~digest) with
      | Some resp -> resp
      | None ->
          let supervisor =
            Api.Config.supervisor config ~obs:env.supervision_obs
              ~jobs:(Pool.jobs env.pool)
          in
          let analysis =
            Engine.analyze ~cache:env.cache ~obs:env.obs ?supervisor ~config env.pool ty
          in
          let retries, watchdog_trips, quarantined = ledger supervisor in
          (* Only publish pristine results: a deadline- or
             quarantine-degraded analysis is this run's truth, not the
             query's. *)
          if config.Api.Config.deadline = None && quarantined = [] then
            Option.iter
              (fun store ->
                Store.put store ~key:digest
                  (Wire.to_string (Api.analysis_to_json analysis)))
              env.store;
          Api.Response.make ~retries ~watchdog_trips ~quarantined
            (Api.Response.Analysis { analysis; from_store = false }))

let run_census env ~space ~sample ~seed ~checkpoint ~resume ~durable
    ~(config : Api.Config.t) =
  let memoizable = census_memoizable ~checkpoint ~resume ~durable ~config in
  let digest () =
    Api.census_digest space ~cap:config.Api.Config.cap ~sample ~seed
  in
  (* Re-probe under the pool owner: the fast path may have lost a race
     with the compute that published this digest. *)
  match
    if memoizable then
      Option.bind env.store (fun s -> census_store_hit s ~digest:(digest ()))
    else None
  with
  | Some resp -> resp
  | None -> (
      let publish (c : Api.Response.census_summary) =
        if memoizable && c.Api.Response.complete then
          Option.iter
            (fun store ->
              Store.put store ~key:(digest ())
                (Wire.to_string (Api.Response.census_summary_to_json c)))
            env.store
      in
      match sample with
      | Some count ->
          (* Sampling census: the sequential estimator over random tables —
             the sweep machinery (checkpoints, resume) is exhaustive-only.
             Deterministic in (sample, seed), so always pristine. *)
          let entries = Census.sample ~cap:config.Api.Config.cap ~seed ~count space in
          let c =
            {
              Api.Response.entries;
              total = count;
              completed = count;
              resumed = 0;
              complete = true;
            }
          in
          publish c;
          Api.Response.make (Api.Response.Census c)
      | None ->
          let supervisor =
            Api.Config.supervisor config ~obs:env.supervision_obs
              ~jobs:(Pool.jobs env.pool)
          in
          let run =
            Engine.census ~cache:env.cache ~obs:env.obs ?supervisor ?checkpoint ~resume
              ~durable ~config env.pool space
          in
          let retries, watchdog_trips, quarantined = ledger supervisor in
          (* A checkpoint-writer failure degrades the run the same way a
             quarantined chunk does: a synthetic quarantine entry turns
             the exit PARTIAL and names the storage failure — decided
             tables past the failure were never made durable. *)
          let quarantined =
            match run.Engine.storage_error with
            | None -> quarantined
            | Some msg ->
                {
                  Supervise.q_context = "census.checkpoint";
                  q_lo = 0;
                  q_hi = 0;
                  q_attempts = 1;
                  q_error = "checkpoint append failed: " ^ msg;
                }
                :: quarantined
          in
          let c =
            {
              Api.Response.entries = run.Engine.entries;
              total = run.Engine.total;
              completed = run.Engine.completed;
              resumed = run.Engine.resumed;
              complete = run.Engine.complete;
            }
          in
          (* Only publish pristine results: quarantine holes (or an
             incomplete sweep) are this run's truth, not the query's. *)
          if quarantined = [] then publish c;
          Api.Response.make ~retries ~watchdog_trips ~quarantined
            (Api.Response.Census c))

let run_synth env ~space ~target ~seed ~iterations ~restart_every ~portfolio
    ~(config : Api.Config.t) =
  let memoizable = config.Api.Config.deadline = None in
  let digest () =
    synth_digest ~config space ~target ~seed ~iterations ~restart_every ~portfolio
  in
  match
    if memoizable then
      Option.bind env.store (fun s -> synth_store_hit s ~digest:(digest ()))
    else None
  with
  | Some resp -> resp
  | None ->
      let supervisor =
        Api.Config.supervisor config ~obs:env.supervision_obs ~jobs:(Pool.jobs env.pool)
      in
      let witness =
        Engine.synth_portfolio ~seed ~max_iterations:iterations ?restart_every
          ~obs:env.obs ?supervisor ~config ~portfolio env.pool ~target space
      in
      let retries, watchdog_trips, quarantined = ledger supervisor in
      (* A no-witness outcome is as deterministic as a witness — both are
         cached; quarantine holes mean the search was cut, so neither. *)
      if memoizable && quarantined = [] then
        Option.iter
          (fun store ->
            Store.put store ~key:(digest ())
              (Wire.to_string (Api.Response.witness_opt_to_json witness)))
          env.store;
      Api.Response.make ~retries ~watchdog_trips ~quarantined
        (Api.Response.Synth { witness })

let run env (req : Api.Request.t) =
  let checked f =
    match Option.map Api.Config.validate (Api.Request.config req) with
    | Some (Error msg) -> Api.Response.error msg
    | Some (Ok ()) | None -> (
        try f () with
        | (Fsio.Io_error _ | Fsio.Corrupt _) as e ->
            (* Durable storage failed mid-request: the store has already
               flipped to sticky read-only, so the daemon stays up and
               answers honestly instead of crashing. *)
            Api.Response.error ~code:Api.Response.err_storage
              (Option.value ~default:(Printexc.to_string e)
                 (Fsio.error_message e))
        | exn ->
            Api.Response.error ~code:Api.Response.err_internal
              (Printexc.to_string exn))
  in
  match req with
  | Api.Request.Ping -> Api.Response.make Api.Response.Pong
  | Api.Request.Metrics -> metrics_response ~obs:env.obs ~command:env.command
  | Api.Request.Analyze { spec; config } ->
      checked (fun () -> run_analyze env ~spec ~config)
  | Api.Request.Census { space; sample; seed; checkpoint; resume; durable; config } ->
      checked (fun () ->
          run_census env ~space ~sample ~seed ~checkpoint ~resume ~durable ~config)
  | Api.Request.Synth { space; target; seed; iterations; restart_every; portfolio; config }
    ->
      checked (fun () ->
          run_synth env ~space ~target ~seed ~iterations ~restart_every ~portfolio
            ~config)

let handle env req =
  match fast_path ~obs:env.obs ?store:env.store ~command:env.command req with
  | Some resp -> resp
  | None -> run env req
  | exception ((Fsio.Io_error _ | Fsio.Corrupt _) as e) ->
      Api.Response.error ~code:Api.Response.err_storage
        (Option.value ~default:(Printexc.to_string e) (Fsio.error_message e))
