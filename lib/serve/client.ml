type t = { fd : Unix.file_descr }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with exn ->
     Unix.close fd;
     raise exn);
  { fd }

let close t = try Unix.close t.fd with _ -> ()

let call t req =
  match Frame.write t.fd (Api.Request.to_string req) with
  | exception exn -> Error (Printf.sprintf "send failed: %s" (Printexc.to_string exn))
  | () -> (
      match Frame.read t.fd with
      | Frame.Frame payload -> Api.Response.of_string payload
      | Frame.Eof -> Error "connection closed before the response"
      | Frame.Bad msg -> Error (Printf.sprintf "bad response frame: %s" msg))

let with_client socket f =
  let t = connect socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let one_shot ~socket req = with_client socket (fun t -> call t req)
