(** Length-prefixed frames over a file descriptor — the serve protocol's
    transport.  A frame is the payload byte count in ASCII decimal, a
    newline, then exactly that many payload bytes:

    {[ 24\n{"rcn_request":1,...} ]}

    The header is self-delimiting and human-writable ([printf '5\nhello']
    is a valid frame), the payload is length-delimited so it can carry
    anything.  Both sides of the protocol exchange one request frame for
    one response frame, repeatedly, on one connection. *)

val max_frame : int
(** Upper bound (16 MiB) on an accepted payload; a larger announced
    length is treated as a malformed frame, so a stray client speaking
    another protocol cannot make the server allocate unboundedly. *)

type read_result =
  | Frame of string
  | Eof  (** clean end of stream at a frame boundary *)
  | Bad of string  (** malformed header, oversized length, or torn payload *)

val read : Unix.file_descr -> read_result

val write : Unix.file_descr -> string -> unit
(** Write one frame, looping over partial writes.
    @raise Unix.Unix_error as the underlying writes do (e.g. [EPIPE]). *)
