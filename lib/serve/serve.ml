type job = {
  req : Api.Request.t;
  job_m : Mutex.t;
  job_cv : Condition.t;
  mutable resp : Api.Response.t option;
}

type t = {
  obs : Obs.t;
  socket : string;
  store : Store.t;
  jobs : int;
  queue_limit : int;
  listen_fd : Unix.file_descr;
  stopped : bool Atomic.t;
  queue : job Queue.t;
  m : Mutex.t;
  cv : Condition.t;  (* signals the scheduler: new job or shutdown *)
  c_connections : Obs.Metrics.Counter.t;
  c_requests : Obs.Metrics.Counter.t;
  c_busy : Obs.Metrics.Counter.t;
  c_bad_frames : Obs.Metrics.Counter.t;
}

let command = "serve"

let create ?jobs ?(queue_limit = 64) ?fsync ?obs ~socket ~store () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let jobs = match jobs with Some j -> j | None -> Engine.default_jobs () in
  let store = Store.open_store ~obs ?fsync store in
  if Sys.file_exists socket then Unix.unlink socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX socket);
     Unix.listen listen_fd 64
   with exn ->
     Unix.close listen_fd;
     raise exn);
  {
    obs;
    socket;
    store;
    jobs;
    queue_limit;
    listen_fd;
    stopped = Atomic.make false;
    queue = Queue.create ();
    m = Mutex.create ();
    cv = Condition.create ();
    c_connections = Obs.counter obs "serve.connections";
    c_requests = Obs.counter obs "serve.requests";
    c_busy = Obs.counter obs "serve.busy";
    c_bad_frames = Obs.counter obs "serve.bad_frames";
  }

let obs t = t.obs
let socket t = t.socket
let stop t = Atomic.set t.stopped true

let busy_response msg =
  Api.Response.error ~code:Api.Response.err_busy msg

(* Queue an engine request and block until the scheduler resolves it.
   Admission control and the shutdown fence live under the same mutex as
   the scheduler's drain, so a job is either answered or refused — never
   parked on a queue nobody reads. *)
let submit t req =
  let job =
    { req; job_m = Mutex.create (); job_cv = Condition.create (); resp = None }
  in
  let admitted =
    Mutex.protect t.m (fun () ->
        if Atomic.get t.stopped then false
        else if Queue.length t.queue >= t.queue_limit then false
        else begin
          Queue.push job t.queue;
          Condition.signal t.cv;
          true
        end)
  in
  if not admitted then begin
    Obs.Metrics.Counter.incr t.c_busy;
    busy_response
      (if Atomic.get t.stopped then "server shutting down"
       else Printf.sprintf "admission queue full (%d waiting)" t.queue_limit)
  end
  else
    Mutex.protect job.job_m (fun () ->
        while job.resp = None do
          Condition.wait job.job_cv job.job_m
        done;
        Option.get job.resp)

let resolve job resp =
  Mutex.protect job.job_m (fun () ->
      job.resp <- Some resp;
      Condition.signal job.job_cv)

(* The scheduler owns the pool: one request at a time, parallel inside. *)
let scheduler t () =
  Pool.with_pool ~obs:t.obs ~jobs:t.jobs @@ fun pool ->
  let env = Dispatch.env ~store:t.store ~obs:t.obs ~command pool in
  let rec loop () =
    let next =
      Mutex.protect t.m (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
            else if Atomic.get t.stopped then None
            else begin
              Condition.wait t.cv t.m;
              wait ()
            end
          in
          wait ())
    in
    match next with
    | None -> ()
    | Some job ->
        resolve job (Dispatch.run env job.req);
        loop ()
  in
  loop ()

let serve_connection t fd =
  Obs.Metrics.Counter.incr t.c_connections;
  let respond resp =
    match Frame.write fd (Api.Response.to_string resp) with
    | () -> true
    | exception _ -> false
  in
  let rec loop () =
    match Frame.read fd with
    | Frame.Eof -> ()
    | Frame.Bad msg ->
        Obs.Metrics.Counter.incr t.c_bad_frames;
        ignore (respond (Api.Response.error msg))
    | Frame.Frame payload ->
        Obs.Metrics.Counter.incr t.c_requests;
        let resp =
          match Api.Request.of_string payload with
          | Error msg -> Api.Response.error msg
          | Ok req -> (
              match
                Dispatch.fast_path ~obs:t.obs ~store:t.store ~command req
              with
              | Some resp -> resp
              | None -> submit t req)
        in
        if respond resp then loop ()
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) loop

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sched = Thread.create (scheduler t) () in
  let rec accept_loop () =
    if not (Atomic.get t.stopped) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ -> ignore (Thread.create (serve_connection t) fd)
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Shutdown: stop accepting, wake the scheduler so it drains the queue
     and exits, refuse stragglers (the [submit] fence), join, close. *)
  (try Unix.close t.listen_fd with _ -> ());
  (try Unix.unlink t.socket with _ -> ());
  Mutex.protect t.m (fun () -> Condition.broadcast t.cv);
  Thread.join sched;
  Store.close t.store
