(** The in-tree client of the serve protocol: one framed request, one
    framed response, any number of times per connection.  This is what
    the CLI's [--connect] flag and the concurrent serve tests speak;
    [tools/serve_client.ml] reimplements the same ten lines standalone
    so the smoke harness depends on nothing from the tree. *)

type t

val connect : string -> t
(** Connect to a daemon's Unix-domain socket path.
    @raise Unix.Unix_error when nothing listens there. *)

val close : t -> unit

val call : t -> Api.Request.t -> (Api.Response.t, string) result
(** Send one request, wait for its response.  [Error] covers transport
    failures (daemon died, malformed frame) and undecodable responses;
    protocol-level failures arrive as [Api.Response.Error] responses. *)

val with_client : string -> (t -> 'a) -> 'a
(** [connect], apply, [close] (also on exception). *)

val one_shot : socket:string -> Api.Request.t -> (Api.Response.t, string) result
(** A single call on a fresh connection. *)
