(** [rcn serve]: the analysis-as-a-service daemon.

    One process, three kinds of thread:

    - the {e accept loop} (the caller's thread, inside {!run}) polls the
      listening Unix-domain socket and spawns one thread per connection;
    - {e connection threads} read request frames, answer
      {!Dispatch.fast_path} requests (pings, metrics, store hits)
      inline, and queue everything else;
    - one {e scheduler thread} owns the domain {!Pool} (which is not
      reentrant and expects a single submitting thread) and drains the
      queue one request at a time — engine requests are serialized, and
      their fan-out parallelism comes from the pool's domains, not from
      concurrent requests.

    Admission control is the queue bound: when [queue_limit] requests
    are already waiting, further engine requests are refused immediately
    with [err_busy] (75) instead of accumulating latency.  Fast-path
    requests are never refused — a loaded server still answers pings,
    metrics scrapes, and repeat queries.

    {!stop} only flips an atomic flag, so it is safe to call from a
    signal handler; the accept loop notices within its poll interval,
    stops accepting, drains the queued requests, rejects late ones with
    [err_busy], joins the scheduler, and returns from {!run} — the clean
    SIGTERM shutdown the smoke test pins.  Results of completed analyze
    requests are in the {!Store} (opened with [~fsync] passed through),
    so a SIGKILL instead of SIGTERM loses at most the in-flight request;
    the restarted daemon recovers the store log and serves the same
    bytes. *)

type t

val create :
  ?jobs:int ->
  ?queue_limit:int ->
  ?fsync:bool ->
  ?obs:Obs.t ->
  socket:string ->
  store:string ->
  unit ->
  t
(** Open the store at [store], bind and listen on the Unix-domain socket
    path [socket] (replacing a stale socket file).  [jobs] defaults to
    [Engine.default_jobs ()]; [queue_limit] to [64]; [fsync] (default
    [false]) makes store appends fsync.  The socket exists when [create]
    returns, so a launcher can wait for the path.  The daemon's counters
    ([serve.connections], [serve.requests], [serve.busy],
    [serve.bad_frames], plus the store's and engine's) live in [obs].
    @raise Unix.Unix_error when the socket cannot be bound. *)

val obs : t -> Obs.t
val socket : t -> string

val run : t -> unit
(** Serve until {!stop}; returns after the drain.  Ignores [SIGPIPE]
    (a client hanging up mid-response must not kill the daemon). *)

val stop : t -> unit
(** Request shutdown.  Async-signal-safe: only sets a flag. *)
