let max_frame = 16 * 1024 * 1024

type read_result = Frame of string | Eof | Bad of string

(* The header is at most a handful of bytes, so byte-at-a-time reads cost
   nothing next to the request they precede. *)
let read_header fd =
  let byte = Bytes.create 1 in
  let acc = Buffer.create 20 in
  let rec loop () =
    if Buffer.length acc > 20 then Error "oversized frame header"
    else
      match Unix.read fd byte 0 1 with
      | 0 -> if Buffer.length acc = 0 then Ok None else Error "eof inside frame header"
      | _ -> (
          match Bytes.get byte 0 with
          | '\n' -> Ok (Some (Buffer.contents acc))
          | c ->
              Buffer.add_char acc c;
              loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let read_exact fd len =
  let buf = Bytes.create len in
  let rec loop off =
    if off = len then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | k -> loop (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  loop 0

let read fd =
  match read_header fd with
  | Error "eof inside frame header" -> Bad "eof inside frame header"
  | Error msg -> Bad msg
  | Ok None -> Eof
  | Ok (Some header) -> (
      match int_of_string_opt header with
      | None -> Bad (Printf.sprintf "bad frame header %S" header)
      | Some len when len < 0 || len > max_frame ->
          Bad (Printf.sprintf "bad frame length %d" len)
      | Some len -> (
          match read_exact fd len with
          | Some payload -> Frame payload
          | None -> Bad "eof inside frame payload"))

let write fd payload =
  let s = Printf.sprintf "%d\n%s" (String.length payload) payload in
  let len = String.length s in
  let rec loop off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | k -> loop (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  loop 0
