(** The one request handler: every query — CLI subcommand or daemon
    frame — is an [Api.Request.t] dispatched here, so the two paths
    cannot drift in semantics, supervision, store behavior or exit
    codes.

    The split between {!fast_path} and {!run} is the daemon's threading
    model: {!run} drives the domain {!Pool}, which is owned by a single
    scheduler thread, while {!fast_path} touches only the store and the
    metrics registry and is safe from any connection thread — so pings,
    metrics scrapes and store hits are answered inline without queueing
    behind a census. *)

type env = {
  obs : Obs.t;
  cache : Engine.Cache.t;  (** shared across requests, like the store *)
  pool : Pool.t;
  store : Store.t option;
  supervision_obs : Obs.t option;
      (** registry for supervisor ledger counters: the CLI passes its
          own [obs] (one request owns the process and its stats export);
          the daemon passes [None] so each request gets a private ledger
          — see [Api.Config.supervisor] *)
  command : string;  (** the [command] field of the metrics reply *)
}

val env :
  ?store:Store.t ->
  ?supervision_obs:Obs.t ->
  obs:Obs.t ->
  command:string ->
  Pool.t ->
  env

val fast_path :
  obs:Obs.t -> ?store:Store.t -> command:string -> Api.Request.t -> Api.Response.t option
(** Answer without the pool, from any thread: [Ping], [Metrics], and any
    memoized query whose digest is already in the store, replayed from
    the stored canonical bytes — an [Analyze] ([from_store = true]), a
    [Census] without checkpoint/resume/durable, or a [Synth]; both of
    the latter only when the config carries no deadline (a deadline-cut
    result is timing-dependent, so such queries bypass the store
    entirely).  [None] means the request needs {!run}. *)

val run : env -> Api.Request.t -> Api.Response.t
(** Execute on the engine.  Must be called from the thread that owns
    [env.pool].  Validates the config ({!Api.Config.validate} — failures
    become [err_invalid] responses, engine exceptions [err_internal]
    ones, never a raise), builds the per-request supervisor, runs the
    query, and publishes the canonical result bytes of pristine outcomes
    to the store: an analyze / a complete census / a synth (witness or
    honest exhaustion), each only when run with no deadline and no
    quarantined chunks, censuses additionally only without
    checkpoint/resume ([Api.census_digest] / [Api.synth_digest] are the
    keys).  A warm repeat of a memoized census or synth query replays
    the stored bytes, so its body is byte-identical to the cold run's. *)

val handle : env -> Api.Request.t -> Api.Response.t
(** {!fast_path}, falling back to {!run} — the whole CLI code path. *)
