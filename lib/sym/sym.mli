(** Canonical labeling of transition tables under the value/op/response
    permutation group — the symmetry quotient behind [--sym].

    A table over [values] values, [ops] operations and [responses]
    responses is the array [t] of [(response, value)] cells with cell
    [(x, op)] at index [x * ops + op] — exactly the census genome layout
    ([Census.genome_of_index]) and, with [ops = num_ops], an
    [Objtype.t]'s memoized delta.  The group

      G  =  S_values x S_ops x S_responses

    acts by [(pi, sigma, rho) . T = T'] with
    [T'[pi x][sigma op] = (rho r, pi y)] when [T[x][op] = (r, y)].
    Two tables in the same orbit are isomorphic objects: the paper's
    levels (max discerning / max recording) quantify over every initial
    value, every operation assignment and every process team, and
    responses matter only up to injective relabeling, so both levels are
    orbit invariants.  Deciding one representative per orbit and
    weighting it by the orbit size reproduces the exhaustive census
    histogram bit-identically.

    The canonizer is refinement + backtracking: an iterated color
    refinement over the three sorts prunes the candidate relabelings to
    the class-respecting ones, a backtracking scan of those (with greedy
    first-appearance response labeling, which is optimal per candidate)
    selects the lexicographically least key among them.  The canonical
    form is a fixed representative of the orbit — every member canonizes
    to the same form, index, digest and orbit size — and the
    automorphism count falls out of the same scan, giving the orbit size
    by orbit-stabilizer.  Pinned against brute-force orbit enumeration
    on small spaces in the test suite. *)

type t
(** A canonizer for one table shape (fixed [values]/[ops]/[responses]). *)

val make : values:int -> ops:int -> responses:int -> t
(** @raise Invalid_argument when a dimension is nonpositive.  A shape
    whose space size overflows [max_int] (the [Census.space_size] limit)
    is {e unrankable}: {!canonize}, {!digest} and the group oracles all
    work, but the index-side API ({!space_size}, {!table_of_index},
    {!index_of_table}, {!is_rep}, {!classes}) raises — the synthesizer's
    symmetry memo canonizes tables from spaces far past any rankable
    census. *)

val values : t -> int
val ops : t -> int
val responses : t -> int

val cells : t -> int
(** [values * ops], the table length. *)

val group_order : t -> int
(** [values! * ops! * responses!].
    @raise Invalid_argument when that product overflows [max_int]
    (canonization and digests still work in such spaces; only the orbit
    accounting is unavailable). *)

val space_size : t -> int
(** [(responses * values) ^ cells] — the number of tables of this shape;
    agrees with [Census.space_size] on census spaces.
    @raise Invalid_argument on an unrankable space. *)

val table_of_index : t -> int -> (int * int) array
(** The rank/unrank bijection of [Census.genome_of_index]: cell [i] is
    the [i]-th least-significant base-[responses * values] digit of the
    index, a digit [(r, v)] encoding as [r * values + v]. *)

val index_of_table : t -> (int * int) array -> int
(** Inverse of {!table_of_index}.
    @raise Invalid_argument on a malformed table or an unrankable
    space. *)

type canon = {
  form : (int * int) array;  (** the canonical table of the orbit *)
  index : int;  (** rank of [form] — equal across the whole orbit; [-1] on an unrankable space *)
  orbit : int;  (** orbit size; orbit sizes over all classes sum to {!space_size}; [-1] when {!group_order} overflows *)
  aut : int;  (** automorphism count; [orbit * aut = group_order] *)
}

val canonize : t -> (int * int) array -> canon
(** @raise Invalid_argument on a malformed table. *)

val canonize_index : t -> int -> canon

val is_rep : t -> int -> bool
(** [is_rep t i] holds when rank [i] is its own canonical index — the
    one representative its orbit contains. *)

val digest : t -> (int * int) array -> string
(** MD5 hex of a version-tagged encoding of the canonical form: equal
    exactly on isomorphic tables.  The store key material behind
    [Api.query_digest_canonical]. *)

val classes : t -> int array * int array
(** [(reps, orbits)]: the canonical representatives of every orbit in
    increasing rank order, with [orbits.(i)] the orbit size of
    [reps.(i)].  A full scan of the space — O(size) canonizations — so
    meant for census-sized spaces, not for one-off queries. *)

(** {1 Brute-force oracles (for tests)} *)

val orbit_brute : t -> (int * int) array -> int
(** Orbit size by enumerating all [group_order] images — exponential,
    test-only. *)

val apply : t -> (int * int) array -> pv:int array -> po:int array -> pr:int array -> (int * int) array
(** The group action itself: [apply t tbl ~pv ~po ~pr] is
    [(pv, po, pr) . tbl] with each permutation given as an
    [old -> new] array. *)

val permutations : int -> int array list
(** All [n!] permutations of [0 .. n-1], each as an [old -> new] array.
    Test-only helper for the brute oracles. *)
