(* Canonical labeling of transition tables under
   S_values x S_ops x S_responses.  See sym.mli for the contract; the
   shape of the algorithm:

     1. iterated color refinement over the three sorts (values, ops,
        responses) until the partition stabilizes — signatures are
        isomorphism-invariant, so the final coloring is too, and dense
        color ids assigned in signature order are themselves canonical;
     2. enumerate every *class-respecting* placement of values and ops
        into canonical positions (color blocks in color order, any
        order within a block) — any relabeling that maps the table onto
        a canonical form is class-respecting, so nothing is missed;
     3. per placement, label responses greedily in first-appearance
        order (lexicographically optimal once value/op positions are
        fixed) and compare the resulting digit string cell by cell
        against the best so far, aborting on the first losing digit;
     4. the number m of placements achieving the minimum, times
        (responses - used)! for the response labels the table never
        mentions, is the stabilizer order; orbit-stabilizer gives the
        orbit size.

   Refinement does the heavy lifting: on random tables most colors are
   singletons and step 2 enumerates a handful of placements.  The
   worst case (the fully symmetric table) enumerates values! * ops!
   placements, which is why census spaces keep dimensions small. *)

type t = {
  values : int;
  ops : int;
  responses : int;
  cells : int;
  base : int;  (* responses * values: digits per cell *)
  group : int option;  (* values! * ops! * responses!; [None] on overflow *)
  size : int option;  (* base ^ cells; [None] when it overflows [max_int] *)
}

let rec fact n = if n <= 1 then 1 else n * fact (n - 1)

(* values! * ops! * responses! with overflow detection: multiply the
   factors [2 .. d] of each dimension one by one, saturating to [None]
   (the synthesizer's symmetry memo canonizes in spaces whose group
   order far exceeds [max_int]). *)
let group_checked dims =
  List.fold_left
    (fun acc d ->
      let acc = ref acc in
      for f = 2 to d do
        acc := (match !acc with Some a when a <= max_int / f -> Some (a * f) | _ -> None)
      done;
      !acc)
    (Some 1) dims

let make ~values ~ops ~responses =
  if values < 1 || ops < 1 || responses < 1 then
    invalid_arg "Sym.make: dimensions must be positive";
  let cells = values * ops in
  let base = responses * values in
  (* Canonization and digests never rank, so an overflowing space is
     fine — only the index-side API ([space_size], [table_of_index],
     [index_of_table], [is_rep], [classes]) requires a rankable space. *)
  let size =
    let acc = ref (Some 1) in
    for _ = 1 to cells do
      acc :=
        match !acc with
        | Some a when a <= max_int / base -> Some (a * base)
        | _ -> None
    done;
    !acc
  in
  { values; ops; responses; cells; base; group = group_checked [ values; ops; responses ]; size }

let values t = t.values
let ops t = t.ops
let responses t = t.responses
let cells t = t.cells
let group_order t =
  match t.group with
  | Some g -> g
  | None -> invalid_arg "Sym.group_order: overflows max_int"
let unranked = "Sym: space size overflows max_int (unrankable space)"
let space_size t = match t.size with Some s -> s | None -> invalid_arg unranked

let check t tbl =
  if Array.length tbl <> t.cells then invalid_arg "Sym: bad table length";
  Array.iter
    (fun (r, v) ->
      if r < 0 || r >= t.responses || v < 0 || v >= t.values then
        invalid_arg "Sym: table entry out of range")
    tbl

let table_of_index t idx =
  if idx < 0 || idx >= space_size t then invalid_arg "Sym.table_of_index";
  let tbl = Array.make t.cells (0, 0) in
  let rem = ref idx in
  for i = 0 to t.cells - 1 do
    let digit = !rem mod t.base in
    tbl.(i) <- (digit / t.values, digit mod t.values);
    rem := !rem / t.base
  done;
  tbl

let index_of_table t tbl =
  check t tbl;
  if t.size = None then invalid_arg unranked;
  let idx = ref 0 in
  for i = t.cells - 1 downto 0 do
    let r, v = tbl.(i) in
    idx := (!idx * t.base) + (r * t.values) + v
  done;
  !idx

(* --- color refinement ----------------------------------------------- *)

(* Reassign dense colors from signatures: equal signature, equal color;
   colors ordered by signature.  Returns the class count. *)
let recolor sigs col =
  let n = Array.length sigs in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare sigs.(a) sigs.(b)) order;
  let c = ref 0 in
  Array.iteri
    (fun k i ->
      if k > 0 && compare sigs.(order.(k - 1)) sigs.(i) <> 0 then incr c;
      col.(i) <- !c)
    order;
  !c + 1

let refine t tbl =
  let v = t.values and o = t.ops and r = t.responses in
  let vc = Array.make v 0 and oc = Array.make o 0 and rc = Array.make r 0 in
  let round () =
    let vsig =
      Array.init v (fun x ->
          ( vc.(x),
            List.sort compare
              (List.init o (fun op ->
                   let rs, y = tbl.((x * o) + op) in
                   (oc.(op), rc.(rs), vc.(y)))) ))
    in
    let osig =
      Array.init o (fun op ->
          ( oc.(op),
            List.sort compare
              (List.init v (fun x ->
                   let rs, y = tbl.((x * o) + op) in
                   (vc.(x), rc.(rs), vc.(y)))) ))
    in
    let rsig =
      Array.init r (fun r0 ->
          let occs = ref [] in
          for x = 0 to v - 1 do
            for op = 0 to o - 1 do
              let rs, y = tbl.((x * o) + op) in
              if rs = r0 then occs := (vc.(x), oc.(op), vc.(y)) :: !occs
            done
          done;
          (rc.(r0), List.sort compare !occs))
    in
    let nv = recolor vsig vc and no = recolor osig oc and nr = recolor rsig rc in
    (nv, no, nr)
  in
  let rec go prev =
    let next = round () in
    if next <> prev then go next
  in
  go (-1, -1, -1);
  (vc, oc)

(* Call [f] on every placement perm with perm.(position) = old id such
   that positions walk the color classes in color order and each class's
   members fill its block in every order.  [perm] is reused in place —
   callers must not retain it. *)
let iter_class_perms colors f =
  let n = Array.length colors in
  let k = 1 + Array.fold_left max (-1) colors in
  let members = Array.make k [] in
  for i = n - 1 downto 0 do
    members.(colors.(i)) <- i :: members.(colors.(i))
  done;
  let perm = Array.make n 0 in
  let rec fill_class c pos remaining =
    match remaining with
    | [] -> next_class (c + 1) pos
    | _ ->
        List.iter
          (fun x ->
            perm.(pos) <- x;
            fill_class c (pos + 1) (List.filter (fun y -> y <> x) remaining))
          remaining
  and next_class c pos = if c = k then f perm else fill_class c pos members.(c)
  in
  next_class 0 0

type canon = { form : (int * int) array; index : int; orbit : int; aut : int }

let canonize t tbl =
  check t tbl;
  let v = t.values and o = t.ops and r = t.responses in
  let vc, oc = refine t tbl in
  let used =
    let seen = Array.make r false in
    Array.iter (fun (rs, _) -> seen.(rs) <- true) tbl;
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 seen
  in
  let best = Array.make t.cells max_int in
  let cand = Array.make t.cells 0 in
  let m = ref 0 in
  let pos_of = Array.make v 0 in
  let rho = Array.make r (-1) in
  let try_pair vperm operm =
    for i = 0 to v - 1 do
      pos_of.(vperm.(i)) <- i
    done;
    Array.fill rho 0 r (-1);
    let used_r = ref 0 in
    (* 0 while equal to [best]; -1 once strictly below *)
    let cmp = ref 0 in
    try
      let i = ref 0 in
      for x' = 0 to v - 1 do
        let row = vperm.(x') * o in
        for op' = 0 to o - 1 do
          let rs, y = tbl.(row + operm.(op')) in
          if rho.(rs) < 0 then begin
            rho.(rs) <- !used_r;
            incr used_r
          end;
          let digit = (rho.(rs) * v) + pos_of.(y) in
          if !cmp = 0 then
            if digit > best.(!i) then raise Exit
            else if digit < best.(!i) then cmp := -1;
          cand.(!i) <- digit;
          incr i
        done
      done;
      if !cmp < 0 then begin
        Array.blit cand 0 best 0 t.cells;
        m := 1
      end
      else incr m
    with Exit -> ()
  in
  iter_class_perms vc (fun vperm ->
      (* vperm is reused in place across op placements below, but only
         read inside try_pair before the next mutation — safe. *)
      iter_class_perms oc (fun operm -> try_pair vperm operm));
  let aut = !m * fact (r - used) in
  let orbit =
    match t.group with
    | Some g ->
        if g mod aut <> 0 then invalid_arg "Sym.canonize: internal error (stabilizer)";
        g / aut
    | None -> -1
  in
  let form = Array.map (fun d -> (d / v, d mod v)) best in
  let index = match t.size with Some _ -> index_of_table t form | None -> -1 in
  { form; index; orbit; aut }

let canonize_index t idx = canonize t (table_of_index t idx)
let is_rep t idx = (canonize_index t idx).index = idx

let digest t tbl =
  let c = canonize t tbl in
  let buf = Buffer.create (32 + (3 * t.cells)) in
  Buffer.add_string buf
    (Printf.sprintf "rcn-sym v1 values=%d ops=%d responses=%d\n" t.values t.ops t.responses);
  Array.iter (fun (r, v) -> Buffer.add_string buf (Printf.sprintf " %d:%d" r v)) c.form;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Forward declaration: [classes] wants the group-element lists that the
   brute-force section below builds. *)
let permutations n =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys as l -> (x :: l) :: List.map (fun r -> y :: r) (insert x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert x) (perms xs)
  in
  List.map Array.of_list (perms (List.init n Fun.id))

(* Orbit sweep, not a canonize-per-index scan: canonizing all [size]
   tables costs a refinement + placement search each, which dominates a
   reduced census.  Instead, walk indices ascending and, at each index
   not yet claimed by an earlier orbit, enumerate its whole orbit by
   applying every group element once — marking every member so later
   sweep positions skip it, and counting the distinct images (the orbit
   size, definitionally).  Only the one orbit seed is canonized, to name
   the class by its canonical index.  Total work is classes
   canonizations plus classes * |G| cheap table maps, instead of size
   canonizations.  (The canonical index is *not* simply the least index
   in the orbit — canonize restricts its search to class-respecting
   placements, so its minimum is over a refinement-invariant subset of
   images, not the whole orbit — which is why the seed must still go
   through canonize.) *)
let classes t =
  let pvs = permutations t.values in
  let pops = permutations t.ops in
  let prs = permutations t.responses in
  let size = space_size t in
  let mark = Bytes.make size '\000' in
  let tbl = Array.make t.cells (0, 0) in
  let digits = Array.make t.cells 0 in
  let acc = ref [] in
  for idx = 0 to size - 1 do
    if Bytes.get mark idx = '\000' then begin
      let rem = ref idx in
      for i = 0 to t.cells - 1 do
        let d = !rem mod t.base in
        tbl.(i) <- (d / t.values, d mod t.values);
        rem := !rem / t.base
      done;
      let distinct = ref 0 in
      List.iter
        (fun pv ->
          List.iter
            (fun po ->
              List.iter
                (fun pr ->
                  for x = 0 to t.values - 1 do
                    let row = x * t.ops in
                    let row' = pv.(x) * t.ops in
                    for op = 0 to t.ops - 1 do
                      let rs, y = tbl.(row + op) in
                      digits.(row' + po.(op)) <- (pr.(rs) * t.values) + pv.(y)
                    done
                  done;
                  let img = ref 0 in
                  for i = t.cells - 1 downto 0 do
                    img := (!img * t.base) + digits.(i)
                  done;
                  if Bytes.get mark !img = '\000' then begin
                    Bytes.set mark !img '\001';
                    incr distinct
                  end)
                prs)
            pops)
        pvs;
      let c = canonize t tbl in
      acc := (c.index, !distinct) :: !acc
    end
  done;
  let pairs = Array.of_list !acc in
  Array.sort (fun (a, _) (b, _) -> compare a b) pairs;
  (Array.map fst pairs, Array.map snd pairs)

(* --- brute-force oracles (tests) ------------------------------------ *)

let apply t tbl ~pv ~po ~pr =
  check t tbl;
  let out = Array.make t.cells (0, 0) in
  for x = 0 to t.values - 1 do
    for op = 0 to t.ops - 1 do
      let rs, y = tbl.((x * t.ops) + op) in
      out.((pv.(x) * t.ops) + po.(op)) <- (pr.(rs), pv.(y))
    done
  done;
  out

let orbit_brute t tbl =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun pv ->
      List.iter
        (fun po ->
          List.iter
            (fun pr -> Hashtbl.replace seen (index_of_table t (apply t tbl ~pv ~po ~pr)) ())
            (permutations t.responses))
        (permutations t.ops))
    (permutations t.values);
  Hashtbl.length seen
