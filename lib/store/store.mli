(** Persistent content-addressed result store: the serve daemon's memory
    of every analysis it has ever completed.

    The store maps a content address (the hex digest of a query's
    canonical form — see [Api.query_digest]) to the {e canonical bytes}
    of its result ([Api.analysis_to_json |> Wire.to_string]).  Keeping
    bytes rather than values is the point: a store hit replays the exact
    bytes of the cold run, so "byte-identical certificate" is a checkable
    guarantee rather than a re-serialization hope.

    Durability follows the census [--durable] checkpoint discipline: one
    append-only log, a record at a time, appended whole through {!Fsio}
    (and with [~fsync:true] fsync'd) before the entry becomes visible.
    A crash can only ever tear the {e tail} of the log; {!open_store}
    scans forward, keeps every complete record, truncates the torn tail
    in place, and resumes appending from there — pinned by a truncation
    test that corrupts the log at every byte offset.  Each record
    carries a CRC32, so a structurally complete record that fails
    validation is {e corruption} and raises [Fsio.Corrupt] with the
    offset rather than silently truncating acknowledged data.

    An append that fails (ENOSPC, EIO, failed fsync) flips the store to
    a sticky {e read-only degraded mode}: the failing [put] re-raises
    [Fsio.Io_error] (once — so the daemon can answer [err_storage]),
    every later [put] silently drops (counted), and [find] keeps
    answering from memory.  The failed append leaves the log
    byte-identical (Fsio's whole-record atomicity), so a degraded store
    reopens clean.

    First write wins: a [put] on a key already present is a no-op, so a
    racing duplicate compute can never flip the stored bytes.  All
    operations are thread-safe (the daemon hits the store from every
    connection thread). *)

type t

val open_store : ?obs:Obs.t -> ?fsync:bool -> ?injector:Fsio.Injector.t -> string -> t
(** Open (creating if missing) the store backed by the given log file.
    Replays the log, dropping and truncating a torn tail.  [fsync]
    (default [false]) makes every {!put} fsync before returning.
    [injector] routes every I/O operation through a seeded fault plan
    (the [rcn crashtest] harness).  With [obs], the store's ledger lives
    in that registry: [store.hits] / [store.misses] (per {!find}),
    [store.puts] (appended records), [store.loaded] (records recovered
    on open), [store.torn_bytes] (tail bytes discarded on open),
    [store.readonly] (flipped on the first failed append), and
    [store.dropped_puts] (puts dropped while degraded).
    @raise Fsio.Io_error when the path is unopenable.
    @raise Fsio.Corrupt on a mid-log CRC/format violation. *)

val find : t -> string -> string option
(** The canonical result bytes stored under this key, counting a hit or
    a miss. *)

val mem : t -> string -> bool
(** Presence without touching the hit/miss counters. *)

val put : t -> key:string -> string -> unit
(** Append and publish a record; no-op (not counted) if the key is
    already present.  @raise Fsio.Io_error on the {e first} append
    failure, which also flips the store {!readonly}; while degraded,
    puts silently drop instead (counted as [store.dropped_puts]). *)

val readonly : t -> bool
(** The sticky degraded flag: set by the first failed append, never
    cleared for the life of the handle. *)

val size : t -> int
(** Number of distinct keys. *)

val path : t -> string

val compact :
  ?obs:Obs.t -> ?injector:Fsio.Injector.t -> ?max_bytes:int -> string -> int * int
(** [compact path] rewrites the log at [path] offline, dropping
    superseded duplicate records and any torn tail, and returns
    [(records kept, bytes dropped)].  Replay semantics are preserved
    exactly: reopening the compacted log yields the same table as
    reopening the original.  Crash-safe by construction — the new log is
    fully written and fsync'd to [path ^ ".compact.tmp"], then renamed
    over [path] (and the directory fsync'd, best effort), so a process
    killed at {e any} point leaves either the untouched original or the
    complete compacted log, never a mix; a leftover temp file from a
    killed compaction is simply overwritten by the next one.  A missing
    [path] is [(0, 0)].  Meant for a store no process has open: a live
    appender would keep writing to the renamed-away inode.

    [max_bytes] is the eviction budget: after deduplication, records
    are evicted {e oldest-first-seen} until the rewritten log fits in
    [max_bytes] (sizes measured on the encoded records).  Idempotent —
    a log already within budget is rewritten unchanged — and covered by
    the same rename-atomicity crash argument.

    With [obs], counts [store.compactions], [store.compacted_bytes] and
    [store.evicted] (records evicted by the budget).
    @raise Fsio.Corrupt on a mid-log CRC/format violation. *)

val close : t -> unit
(** Flush and close the log.  Further [put]s raise; [find] keeps
    answering from memory. *)
