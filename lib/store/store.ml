(* Append-only content-addressed log.  On-disk format, one record after
   another, nothing else in the file:

     rcnstore1 <key> <payload_bytes>\n
     <payload>\n

   The header is plain text (key is a hex digest, never contains spaces);
   the payload is length-delimited, so it may contain anything.  Recovery
   needs no index or footer: scan from the top, stop at the first record
   that does not parse or is cut short, truncate there. *)

let magic = "rcnstore1"

type counters = {
  hits : Obs.Metrics.Counter.t;
  misses : Obs.Metrics.Counter.t;
  puts : Obs.Metrics.Counter.t;
  loaded : Obs.Metrics.Counter.t;
  torn : Obs.Metrics.Counter.t;
}

type t = {
  path : string;
  fsync : bool;
  fd : Unix.file_descr;
  mutable chan : out_channel option;
  table : (string, string) Hashtbl.t;
  c : counters option;
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count c field =
  match c with
  | None -> ()
  | Some c -> Obs.Metrics.Counter.incr (field c)

(* Replay [contents], filling [table]; returns the offset just past the
   last complete record. *)
let replay contents table =
  let n = String.length contents in
  let good = ref 0 in
  let pos = ref 0 in
  (try
     while !pos < n do
       let nl =
         match String.index_from_opt contents !pos '\n' with
         | Some i -> i
         | None -> raise Exit
       in
       let header = String.sub contents !pos (nl - !pos) in
       let key, len =
         match String.split_on_char ' ' header with
         | [ m; key; len ] when m = magic -> (
             match int_of_string_opt len with
             | Some len when len >= 0 -> (key, len)
             | _ -> raise Exit)
         | _ -> raise Exit
       in
       let payload_start = nl + 1 in
       (* payload plus its trailing newline must be fully present *)
       if payload_start + len + 1 > n then raise Exit;
       if contents.[payload_start + len] <> '\n' then raise Exit;
       let payload = String.sub contents payload_start len in
       Hashtbl.replace table key payload;
       pos := payload_start + len + 1;
       good := !pos
     done
   with Exit -> ());
  !good

let open_store ?obs ?(fsync = false) path =
  let c =
    Option.map
      (fun obs ->
        {
          hits = Obs.counter obs "store.hits";
          misses = Obs.counter obs "store.misses";
          puts = Obs.counter obs "store.puts";
          loaded = Obs.counter obs "store.loaded";
          torn = Obs.counter obs "store.torn_bytes";
        })
      obs
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let contents =
    let ic = Unix.in_channel_of_descr (Unix.dup fd) in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic size)
  in
  let table = Hashtbl.create 64 in
  let good = replay contents table in
  if good < size then begin
    Unix.ftruncate fd good;
    match c with
    | None -> ()
    | Some c -> Obs.Metrics.Counter.add c.torn (size - good)
  end;
  (match c with
  | None -> ()
  | Some c -> Obs.Metrics.Counter.add c.loaded (Hashtbl.length table));
  ignore (Unix.lseek fd good Unix.SEEK_SET);
  let chan = Unix.out_channel_of_descr fd in
  { path; fsync; fd; chan = Some chan; table; c; lock = Mutex.create () }

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some payload ->
          count t.c (fun c -> c.hits);
          Some payload
      | None ->
          count t.c (fun c -> c.misses);
          None)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)
let size t = with_lock t (fun () -> Hashtbl.length t.table)
let path t = t.path

let put t ~key payload =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        let chan =
          match t.chan with
          | Some c -> c
          | None -> invalid_arg "Store.put: store is closed"
        in
        Printf.fprintf chan "%s %s %d\n" magic key (String.length payload);
        output_string chan payload;
        output_char chan '\n';
        flush chan;
        if t.fsync then Unix.fsync t.fd;
        Hashtbl.replace t.table key payload;
        count t.c (fun c -> c.puts)
      end)

let close t =
  with_lock t (fun () ->
      match t.chan with
      | None -> ()
      | Some chan ->
          t.chan <- None;
          (* closes the underlying fd too *)
          close_out chan)
