(* Append-only content-addressed log over the Fsio durable-I/O layer.
   On-disk format, one record after another, nothing else in the file
   (the shared Fsio.Record discipline):

     rcnstore3 <key> <payload_bytes> <crc32hex>\n
     <payload>\n

   The header is plain text (key is a hex digest, never contains
   spaces); the payload is length-delimited, so it may contain anything;
   the CRC covers key + payload so replay can tell a torn tail (crash
   mid-append: truncate, carry on) from mid-log corruption (hard error
   with the offset, never silently dropped).

   rcnstore3 bumped the magic when records grew the CRC field (rcnstore2
   had bumped it for canonical --sym keys): an older file's records fail
   the magic check, so the scanner keeps none of them and the log is
   truncated like a torn tail — stale keys are dropped cleanly rather
   than migrated, the policy pinned since the rcnstore2 bump. *)

let magic = "rcnstore3"

type counters = {
  hits : Obs.Metrics.Counter.t;
  misses : Obs.Metrics.Counter.t;
  puts : Obs.Metrics.Counter.t;
  loaded : Obs.Metrics.Counter.t;
  torn : Obs.Metrics.Counter.t;
  readonly_c : Obs.Metrics.Counter.t;
  dropped_puts : Obs.Metrics.Counter.t;
}

type t = {
  path : string;
  fsync : bool;
  log : Fsio.t;
  table : (string, string) Hashtbl.t;
  c : counters option;
  lock : Mutex.t;
  mutable readonly : bool;
  mutable closed : bool;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count c field =
  match c with
  | None -> ()
  | Some c -> Obs.Metrics.Counter.incr (field c)

(* Replay [contents], filling [table]; returns the offset just past the
   last complete record.  A torn tail is the caller's to truncate; a
   complete-but-invalid record is corruption and raised, never eaten. *)
let replay ~path contents table =
  let records, good, verdict = Fsio.Record.scan ~magic contents in
  (match verdict with
  | Fsio.Record.Complete | Fsio.Record.Torn _ -> ()
  | Fsio.Record.Corrupt_at { offset; reason } ->
      raise (Fsio.Corrupt { path; offset; reason }));
  List.iter (fun (key, payload) -> Hashtbl.replace table key payload) records;
  good

let open_store ?obs ?(fsync = false) ?injector path =
  let c =
    Option.map
      (fun obs ->
        {
          hits = Obs.counter obs "store.hits";
          misses = Obs.counter obs "store.misses";
          puts = Obs.counter obs "store.puts";
          loaded = Obs.counter obs "store.loaded";
          torn = Obs.counter obs "store.torn_bytes";
          readonly_c = Obs.counter obs "store.readonly";
          dropped_puts = Obs.counter obs "store.dropped_puts";
        })
      obs
  in
  let log = Fsio.open_log ?injector path in
  match
    let contents = Fsio.contents log in
    let size = String.length contents in
    let table = Hashtbl.create 64 in
    let good = replay ~path contents table in
    (table, size, good)
  with
  | exception e ->
      (try Fsio.close log with Fsio.Io_error _ -> ());
      raise e
  | table, size, good ->
      if good < size then begin
        Fsio.truncate log good;
        match c with
        | None -> ()
        | Some c -> Obs.Metrics.Counter.add c.torn (size - good)
      end;
      (match c with
      | None -> ()
      | Some c -> Obs.Metrics.Counter.add c.loaded (Hashtbl.length table));
      {
        path;
        fsync;
        log;
        table;
        c;
        lock = Mutex.create ();
        readonly = false;
        closed = false;
      }

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some payload ->
          count t.c (fun c -> c.hits);
          Some payload
      | None ->
          count t.c (fun c -> c.misses);
          None)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)
let size t = with_lock t (fun () -> Hashtbl.length t.table)
let path t = t.path
let readonly t = with_lock t (fun () -> t.readonly)

(* First append failure flips the store to sticky read-only and
   re-raises so the caller can answer err_storage; after that, puts
   silently drop (counted) — the daemon keeps serving, just without
   memoization.  The record either lands whole or not at all (Fsio's
   append atomicity), so degraded mode can never leave a half record
   for replay to trip on. *)
let put t ~key payload =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Store.put: store is closed";
      if t.readonly then count t.c (fun c -> c.dropped_puts)
      else if not (Hashtbl.mem t.table key) then begin
        match
          Fsio.append t.log (Fsio.Record.encode ~magic ~tag:key payload);
          if t.fsync then Fsio.fsync t.log
        with
        | () ->
            Hashtbl.replace t.table key payload;
            count t.c (fun c -> c.puts)
        | exception (Fsio.Io_error _ as e) ->
            t.readonly <- true;
            count t.c (fun c -> c.readonly_c);
            raise e
      end)

(* Offline log rewrite.  The crash-safety argument is rename atomicity:
   every byte of the replacement log is written and fsync'd into a
   sibling temp file first, so at any kill point the store path holds
   either the original log (untouched, including if the temp write
   dies half way) or the complete compacted one — never a mix.  The
   rewrite preserves replay semantics exactly: last occurrence of a key
   wins (what [replay] computes), records land in first-seen key order,
   torn tails and superseded duplicates are dropped.  With [max_bytes],
   oldest-first-seen records are evicted until the rewritten log fits
   the budget — the same argument covers eviction, since it only
   changes which records the temp file holds. *)
let compact ?obs ?injector ?max_bytes path =
  let compactions = Option.map (fun o -> Obs.counter o "store.compactions") obs in
  let dropped_c = Option.map (fun o -> Obs.counter o "store.compacted_bytes") obs in
  let evicted_c = Option.map (fun o -> Obs.counter o "store.evicted") obs in
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let records, _good, verdict = Fsio.Record.scan ~magic contents in
    (match verdict with
    | Fsio.Record.Complete | Fsio.Record.Torn _ -> ()
    | Fsio.Record.Corrupt_at { offset; reason } ->
        raise (Fsio.Corrupt { path; offset; reason }));
    (* Last occurrence of a key wins; keys kept in first-seen order. *)
    let table = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (key, payload) ->
        if not (Hashtbl.mem table key) then order := key :: !order;
        Hashtbl.replace table key payload)
      records;
    let order = List.rev !order in
    (* Eviction: drop oldest-first-seen keys until the suffix fits the
       byte budget.  Record sizes are computed on the encoded form, so
       the budget bounds the actual rewritten file size. *)
    let encoded key = Fsio.Record.encode ~magic ~tag:key (Hashtbl.find table key) in
    let keep =
      match max_bytes with
      | None -> order
      | Some budget ->
          let total =
            List.fold_left (fun a k -> a + String.length (encoded k)) 0 order
          in
          let rec drop excess = function
            | k :: rest when excess > 0 ->
                drop (excess - String.length (encoded k)) rest
            | l -> l
          in
          let kept = drop (total - budget) order in
          (match evicted_c with
          | None -> ()
          | Some c ->
              Obs.Metrics.Counter.add c (List.length order - List.length kept));
          kept
    in
    let tmp = path ^ ".compact.tmp" in
    if Sys.file_exists tmp then Sys.remove tmp;
    let log = Fsio.open_log ?injector tmp in
    let written =
      match
        List.iter (fun key -> Fsio.append log (encoded key)) keep;
        Fsio.fsync log;
        Fsio.size log
      with
      | n ->
          Fsio.close log;
          n
      | exception e ->
          (try Fsio.close log with Fsio.Io_error _ -> ());
          raise e
    in
    Fsio.rename ?injector ~src:tmp path;
    (* Best effort: persist the rename itself (the directory entry). *)
    Fsio.fsync_dir (Filename.dirname path);
    let dropped = String.length contents - written in
    Option.iter Obs.Metrics.Counter.incr compactions;
    Option.iter (fun c -> Obs.Metrics.Counter.add c dropped) dropped_c;
    (List.length keep, dropped)
  end

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Fsio.close t.log
      end)
