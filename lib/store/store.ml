(* Append-only content-addressed log.  On-disk format, one record after
   another, nothing else in the file:

     rcnstore2 <key> <payload_bytes>\n
     <payload>\n

   The header is plain text (key is a hex digest, never contains spaces);
   the payload is length-delimited, so it may contain anything.  Recovery
   needs no index or footer: scan from the top, stop at the first record
   that does not parse or is cut short, truncate there.

   rcnstore2 bumped the magic when analyze keys became canonical under
   --sym (and configs started carrying the flag): an rcnstore1 file's
   records simply fail the magic check, so the scanner keeps none of
   them and the first put truncates the old log — stale keys are
   ignored cleanly rather than migrated. *)

let magic = "rcnstore2"

type counters = {
  hits : Obs.Metrics.Counter.t;
  misses : Obs.Metrics.Counter.t;
  puts : Obs.Metrics.Counter.t;
  loaded : Obs.Metrics.Counter.t;
  torn : Obs.Metrics.Counter.t;
}

type t = {
  path : string;
  fsync : bool;
  fd : Unix.file_descr;
  mutable chan : out_channel option;
  table : (string, string) Hashtbl.t;
  c : counters option;
  lock : Mutex.t;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count c field =
  match c with
  | None -> ()
  | Some c -> Obs.Metrics.Counter.incr (field c)

(* Replay [contents], filling [table]; returns the offset just past the
   last complete record. *)
let replay contents table =
  let n = String.length contents in
  let good = ref 0 in
  let pos = ref 0 in
  (try
     while !pos < n do
       let nl =
         match String.index_from_opt contents !pos '\n' with
         | Some i -> i
         | None -> raise Exit
       in
       let header = String.sub contents !pos (nl - !pos) in
       let key, len =
         match String.split_on_char ' ' header with
         | [ m; key; len ] when m = magic -> (
             match int_of_string_opt len with
             | Some len when len >= 0 -> (key, len)
             | _ -> raise Exit)
         | _ -> raise Exit
       in
       let payload_start = nl + 1 in
       (* payload plus its trailing newline must be fully present *)
       if payload_start + len + 1 > n then raise Exit;
       if contents.[payload_start + len] <> '\n' then raise Exit;
       let payload = String.sub contents payload_start len in
       Hashtbl.replace table key payload;
       pos := payload_start + len + 1;
       good := !pos
     done
   with Exit -> ());
  !good

let open_store ?obs ?(fsync = false) path =
  let c =
    Option.map
      (fun obs ->
        {
          hits = Obs.counter obs "store.hits";
          misses = Obs.counter obs "store.misses";
          puts = Obs.counter obs "store.puts";
          loaded = Obs.counter obs "store.loaded";
          torn = Obs.counter obs "store.torn_bytes";
        })
      obs
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let contents =
    let ic = Unix.in_channel_of_descr (Unix.dup fd) in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic size)
  in
  let table = Hashtbl.create 64 in
  let good = replay contents table in
  if good < size then begin
    Unix.ftruncate fd good;
    match c with
    | None -> ()
    | Some c -> Obs.Metrics.Counter.add c.torn (size - good)
  end;
  (match c with
  | None -> ()
  | Some c -> Obs.Metrics.Counter.add c.loaded (Hashtbl.length table));
  ignore (Unix.lseek fd good Unix.SEEK_SET);
  let chan = Unix.out_channel_of_descr fd in
  { path; fsync; fd; chan = Some chan; table; c; lock = Mutex.create () }

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some payload ->
          count t.c (fun c -> c.hits);
          Some payload
      | None ->
          count t.c (fun c -> c.misses);
          None)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)
let size t = with_lock t (fun () -> Hashtbl.length t.table)
let path t = t.path

let put t ~key payload =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        let chan =
          match t.chan with
          | Some c -> c
          | None -> invalid_arg "Store.put: store is closed"
        in
        Printf.fprintf chan "%s %s %d\n" magic key (String.length payload);
        output_string chan payload;
        output_char chan '\n';
        flush chan;
        if t.fsync then Unix.fsync t.fd;
        Hashtbl.replace t.table key payload;
        count t.c (fun c -> c.puts)
      end)

(* Offline log rewrite.  The crash-safety argument is rename atomicity:
   every byte of the replacement log is written and fsync'd into a
   sibling temp file first, so at any kill point the store path holds
   either the original log (untouched, including if the temp write
   dies half way) or the complete compacted one — never a mix.  The
   rewrite preserves replay semantics exactly: last occurrence of a key
   wins (what [replay] computes), records land in first-seen key order,
   torn tails and superseded duplicates are dropped. *)
let compact ?obs path =
  let compactions = Option.map (fun o -> Obs.counter o "store.compactions") obs in
  let dropped_c = Option.map (fun o -> Obs.counter o "store.compacted_bytes") obs in
  if not (Sys.file_exists path) then (0, 0)
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let table = Hashtbl.create 64 in
    ignore (replay contents table);
    (* First-seen key order, recomputed with the same scan discipline. *)
    let order = ref [] in
    let seen = Hashtbl.create 64 in
    let pos = ref 0 in
    let n = String.length contents in
    (try
       while !pos < n do
         let nl =
           match String.index_from_opt contents !pos '\n' with
           | Some i -> i
           | None -> raise Exit
         in
         let header = String.sub contents !pos (nl - !pos) in
         let key, len =
           match String.split_on_char ' ' header with
           | [ m; key; len ] when m = magic -> (
               match int_of_string_opt len with
               | Some len when len >= 0 -> (key, len)
               | _ -> raise Exit)
           | _ -> raise Exit
         in
         if nl + 1 + len + 1 > n then raise Exit;
         if contents.[nl + 1 + len] <> '\n' then raise Exit;
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.add seen key ();
           order := key :: !order
         end;
         pos := nl + 1 + len + 1
       done
     with Exit -> ());
    let order = List.rev !order in
    let tmp = path ^ ".compact.tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let written =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let oc = Unix.out_channel_of_descr (Unix.dup fd) in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              List.iter
                (fun key ->
                  let payload = Hashtbl.find table key in
                  Printf.fprintf oc "%s %s %d\n" magic key (String.length payload);
                  output_string oc payload;
                  output_char oc '\n')
                order;
              flush oc);
          Unix.fsync fd;
          (Unix.fstat fd).Unix.st_size)
    in
    Unix.rename tmp path;
    (* Best effort: persist the rename itself (the directory entry). *)
    (match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
    | dirfd ->
        (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
        Unix.close dirfd
    | exception Unix.Unix_error _ -> ());
    let dropped = String.length contents - written in
    Option.iter Obs.Metrics.Counter.incr compactions;
    Option.iter (fun c -> Obs.Metrics.Counter.add c dropped) dropped_c;
    (List.length order, dropped)
  end

let close t =
  with_lock t (fun () ->
      match t.chan with
      | None -> ()
      | Some chan ->
          t.chan <- None;
          (* closes the underlying fd too *)
          close_out chan)
