/* Monotonic clock stub for Obs.Clock.

   OCaml 5.1's Unix library exposes only gettimeofday (wall time, steps
   under NTP); the observability layer needs CLOCK_MONOTONIC so deadlines
   and elapsed times survive clock adjustments.  One tiny stub keeps the
   tree free of extra opam dependencies. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

#if !defined(CLOCK_MONOTONIC)
#include <sys/time.h>
#endif

CAMLprim value rcn_obs_monotonic_now(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#else
  /* Last-resort fallback for platforms without a monotonic clock. */
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
#endif
}
