/* Monotonic clock stub for Obs.Clock.

   OCaml 5.1's Unix library exposes only gettimeofday (wall time, steps
   under NTP); the observability layer needs CLOCK_MONOTONIC so deadlines
   and elapsed times survive clock adjustments.  One tiny stub keeps the
   tree free of extra opam dependencies. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/threads.h>
#include <time.h>
#include <errno.h>

#if !defined(CLOCK_MONOTONIC)
#include <sys/time.h>
#endif

CAMLprim value rcn_obs_monotonic_now(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#else
  /* Last-resort fallback for platforms without a monotonic clock. */
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
#endif
}

/* Interruption-resilient sleep for Obs.Clock.sleep: nanosleep resumed on
   EINTR with the remaining interval, so supervised backoff pauses are not
   silently shortened by signals.  Releases the OCaml runtime lock so the
   other domains of a pool keep working while one backs off. */
CAMLprim value rcn_obs_sleep(value seconds)
{
  double s = Double_val(seconds);
  if (s > 0) {
    struct timespec req, rem;
    req.tv_sec = (time_t)s;
    req.tv_nsec = (long)((s - (double)req.tv_sec) * 1e9);
    if (req.tv_nsec > 999999999L) req.tv_nsec = 999999999L;
    caml_release_runtime_system();
    while (nanosleep(&req, &rem) == -1 && errno == EINTR)
      req = rem;
    caml_acquire_runtime_system();
  }
  return Val_unit;
}
