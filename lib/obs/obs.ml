external monotonic_now : unit -> float = "rcn_obs_monotonic_now"
external monotonic_sleep : float -> unit = "rcn_obs_sleep"

module Clock = struct
  let now () = monotonic_now ()
  let after s = now () +. s
  let expired = function None -> false | Some d -> now () > d
  let sleep s = if s > 0.0 then monotonic_sleep s
end

module Metrics = struct
  module Counter = struct
    type t = { name : string; v : int Atomic.t }

    let name c = c.name
    let incr c = ignore (Atomic.fetch_and_add c.v 1)
    let add c n = ignore (Atomic.fetch_and_add c.v n)
    let value c = Atomic.get c.v
  end

  module Histogram = struct
    type t = {
      name : string;
      mutex : Mutex.t;
      mutable count : int;
      mutable sum : float;
      mutable mn : float;
      mutable mx : float;
    }

    let name h = h.name

    let observe h x =
      Mutex.protect h.mutex (fun () ->
          if h.count = 0 then begin
            h.mn <- x;
            h.mx <- x
          end
          else begin
            if x < h.mn then h.mn <- x;
            if x > h.mx then h.mx <- x
          end;
          h.count <- h.count + 1;
          h.sum <- h.sum +. x)

    let read h f = Mutex.protect h.mutex (fun () -> f h)
    let count h = read h (fun h -> h.count)
    let sum h = read h (fun h -> h.sum)
    let min h = read h (fun h -> h.mn)
    let max h = read h (fun h -> h.mx)
    let mean h = read h (fun h -> if h.count = 0 then 0. else h.sum /. float_of_int h.count)
  end

  type metric = C of Counter.t | H of Histogram.t

  type t = { mutex : Mutex.t; table : (string, metric) Hashtbl.t }

  let create () = { mutex = Mutex.create (); table = Hashtbl.create 32 }

  let counter t name =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.table name with
        | Some (C c) -> c
        | Some (H _) ->
            invalid_arg (Printf.sprintf "Obs.Metrics.counter: %S is a histogram" name)
        | None ->
            let c = { Counter.name; v = Atomic.make 0 } in
            Hashtbl.add t.table name (C c);
            c)

  let histogram t name =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.table name with
        | Some (H h) -> h
        | Some (C _) ->
            invalid_arg (Printf.sprintf "Obs.Metrics.histogram: %S is a counter" name)
        | None ->
            let h =
              { Histogram.name; mutex = Mutex.create (); count = 0; sum = 0.; mn = 0.; mx = 0. }
            in
            Hashtbl.add t.table name (H h);
            h)

  type value =
    | Count of int
    | Summary of { count : int; sum : float; min : float; max : float }

  let snapshot t =
    let metrics =
      Mutex.protect t.mutex (fun () ->
          Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [])
    in
    metrics
    |> List.map (fun (name, m) ->
           match m with
           | C c -> (name, Count (Counter.value c))
           | H h ->
               ( name,
                 Histogram.read h (fun h ->
                     Summary { count = h.count; sum = h.sum; min = h.mn; max = h.mx }) ))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end

(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

module Trace = struct
  type sink =
    | Null
    | Stderr of Mutex.t
    | Jsonl of { mutex : Mutex.t; mutable oc : out_channel option }

  let null = Null
  let stderr () = Stderr (Mutex.create ())
  let jsonl path = Jsonl { mutex = Mutex.create (); oc = Some (open_out path) }

  let close = function
    | Null | Stderr _ -> ()
    | Jsonl j ->
        Mutex.protect j.mutex (fun () ->
            match j.oc with
            | None -> ()
            | Some oc ->
                close_out oc;
                j.oc <- None)

  let attrs_text attrs =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k v) attrs)

  let attrs_json attrs =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           attrs)
    ^ "}"

  (* [dur = None] marks a punctual event rather than a span. *)
  let emit sink ~name ~start ~dur ~attrs =
    match sink with
    | Null -> ()
    | Stderr m ->
        Mutex.protect m (fun () ->
            (match dur with
            | Some d -> Printf.eprintf "[rcn-obs] span %s %.6fs%s\n" name d (attrs_text attrs)
            | None -> Printf.eprintf "[rcn-obs] event %s%s\n" name (attrs_text attrs));
            flush Stdlib.stderr)
    | Jsonl j ->
        Mutex.protect j.mutex (fun () ->
            match j.oc with
            | None -> ()
            | Some oc ->
                (match dur with
                | Some d ->
                    Printf.fprintf oc
                      "{\"type\":\"span\",\"name\":\"%s\",\"start_s\":%.6f,\"dur_s\":%.6f,\"attrs\":%s}\n"
                      (json_escape name) start d (attrs_json attrs)
                | None ->
                    Printf.fprintf oc
                      "{\"type\":\"event\",\"name\":\"%s\",\"start_s\":%.6f,\"attrs\":%s}\n"
                      (json_escape name) start (attrs_json attrs));
                flush oc)
end

type t = { metrics : Metrics.t; sink : Trace.sink }

let create ?(sink = Trace.null) () = { metrics = Metrics.create (); sink }
let metrics t = t.metrics
let sink t = t.sink
let counter t name = Metrics.counter t.metrics name
let histogram t name = Metrics.histogram t.metrics name

let with_span ?obs ?(attrs = []) name f =
  match obs with
  | None -> f ()
  | Some o ->
      let t0 = Clock.now () in
      let finish () =
        let dur = Clock.now () -. t0 in
        Metrics.Histogram.observe (histogram o ("span." ^ name)) dur;
        Trace.emit o.sink ~name ~start:t0 ~dur:(Some dur) ~attrs
      in
      (match f () with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e)

let event ?obs ?(attrs = []) name =
  match obs with
  | None -> ()
  | Some o ->
      Metrics.Counter.incr (counter o ("event." ^ name));
      Trace.emit o.sink ~name ~start:(Clock.now ()) ~dur:None ~attrs

module Stats = struct
  type format = Text | Json

  let render ?command t format =
    let snap = Metrics.snapshot t.metrics in
    let counters =
      List.filter_map
        (fun (n, v) -> match v with Metrics.Count c -> Some (n, c) | _ -> None)
        snap
    in
    let histograms =
      List.filter_map
        (fun (n, v) ->
          match v with Metrics.Summary s -> Some (n, (s.count, s.sum, s.min, s.max)) | _ -> None)
        snap
    in
    match format with
    | Text ->
        let buf = Buffer.create 256 in
        Option.iter (fun c -> Buffer.add_string buf (Printf.sprintf "stats for %s\n" c)) command;
        List.iter (fun (n, c) -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" n c)) counters;
        List.iter
          (fun (n, (count, sum, mn, mx)) ->
            Buffer.add_string buf
              (Printf.sprintf "histogram %s count=%d sum=%.6fs min=%.6fs max=%.6fs\n" n count sum
                 mn mx))
          histograms;
        Buffer.contents buf
    | Json ->
        let buf = Buffer.create 256 in
        Buffer.add_string buf "{\"rcn_stats\":1";
        Option.iter
          (fun c -> Buffer.add_string buf (Printf.sprintf ",\"command\":\"%s\"" (json_escape c)))
          command;
        Buffer.add_string buf ",\"counters\":{";
        List.iteri
          (fun i (n, c) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape n) c))
          counters;
        Buffer.add_string buf "},\"histograms\":{";
        List.iteri
          (fun i (n, (count, sum, mn, mx)) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":{\"count\":%d,\"sum_s\":%.6f,\"min_s\":%.6f,\"max_s\":%.6f}"
                 (json_escape n) count sum mn mx))
          histograms;
        Buffer.add_string buf "}}\n";
        Buffer.contents buf
end
