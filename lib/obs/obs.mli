(** Lightweight, thread-safe observability: one monotonic clock, one
    counter/histogram implementation, and span-based tracing with
    pluggable sinks — the single instrumentation layer for the decision
    engine, the census sweep, the synthesis portfolio and the
    fault-injection campaigns.

    Design constraints, in order:

    - {b Cheap when off.}  Every hook takes the context as an option;
      [None] costs one pattern match.  A context with the {!Trace.null}
      sink still accumulates metrics but emits nothing — the mode the
      E17 overhead budget (< 5% on the E9 workload) is measured in.
    - {b Safe to share.}  Counters are single atomics, histograms and
      sinks are mutex-protected; everything may be hammered from every
      domain of a {!Pool} concurrently.
    - {b One clock.}  {!Clock.now} is [clock_gettime(CLOCK_MONOTONIC)]
      via a local C stub.  All engine deadlines and elapsed times are
      measured on it, so an NTP step can neither expire a deadline early
      nor produce a negative duration. *)

module Clock : sig
  val now : unit -> float
  (** Monotonic seconds since an arbitrary (per-boot) origin.  Only
      differences and comparisons are meaningful; do not mix with
      [Unix.gettimeofday] timestamps. *)

  val after : float -> float
  (** [after s] is the absolute monotonic deadline [s] seconds from now
      — what the engine's [?deadline] parameters expect. *)

  val expired : float option -> bool
  (** [expired None] is [false]; [expired (Some d)] is [now () > d].
      The one deadline predicate in the tree. *)

  val sleep : float -> unit
  (** Block the calling domain for (at least) the given number of seconds;
      nonpositive durations return immediately.  Interrupted sleeps are
      resumed with the remaining interval, so a signal cannot silently
      shorten a supervised backoff pause.  Releases the runtime lock — the
      other domains of a pool keep running. *)
end

module Metrics : sig
  type t
  (** A registry of named counters and histograms.  Lookups are
      mutex-protected and idempotent; the returned handles are safe to
      cache and to update from any domain. *)

  val create : unit -> t

  module Counter : sig
    type t

    val name : t -> string
    val incr : t -> unit
    val add : t -> int -> unit
    val value : t -> int
  end

  module Histogram : sig
    type t

    val name : t -> string
    val observe : t -> float -> unit
    val count : t -> int
    val sum : t -> float

    val min : t -> float
    (** [0.] when empty *)

    val max : t -> float
    (** [0.] when empty *)

    val mean : t -> float
    (** [0.] when empty *)
  end

  val counter : t -> string -> Counter.t
  (** The counter registered under this name, created (at zero) on first
      use.  @raise Invalid_argument if the name holds a histogram. *)

  val histogram : t -> string -> Histogram.t
  (** Same, for histograms.
      @raise Invalid_argument if the name holds a counter. *)

  type value =
    | Count of int
    | Summary of { count : int; sum : float; min : float; max : float }

  val snapshot : t -> (string * value) list
  (** Every registered metric, sorted by name.  Individual reads are
      atomic; the snapshot as a whole is only consistent once writers
      are quiescent. *)
end

module Trace : sig
  type sink
  (** Where spans and events go.  All sinks are safe for concurrent
      emission. *)

  val null : sink
  (** Drop everything (the default). *)

  val stderr : unit -> sink
  (** One human-readable line per span/event on standard error. *)

  val jsonl : string -> sink
  (** Append one JSON object per span/event to the given file, flushed
      per line (truncates an existing file). *)

  val close : sink -> unit
  (** Flush and close a {!jsonl} sink's channel; a no-op on the others.
      Emitting to a closed sink is a no-op. *)
end

type t
(** An observability context: one metrics registry plus one trace sink. *)

val create : ?sink:Trace.sink -> unit -> t
(** Fresh context; [sink] defaults to {!Trace.null}. *)

val metrics : t -> Metrics.t
val sink : t -> Trace.sink

val counter : t -> string -> Metrics.Counter.t
(** [Metrics.counter (metrics t)]. *)

val histogram : t -> string -> Metrics.Histogram.t

val with_span :
  ?obs:t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ?obs name f] runs [f ()]; with [obs] present it times the
    call on {!Clock}, records the duration in the histogram
    [span.<name>] of the context's registry, and emits a span record
    (with the given attributes) to the sink — also when [f] raises.
    With [obs = None] it is exactly [f ()]. *)

val event : ?obs:t -> ?attrs:(string * string) list -> string -> unit
(** Punctual occurrence: increments the counter [event.<name>] and emits
    an event record to the sink.  [None] is a no-op. *)

module Stats : sig
  type format = Text | Json

  val render : ?command:string -> t -> format -> string
  (** The machine-readable stats block benches can diff.

      [Json] is a single line
      [{"rcn_stats":1,"command":...,"counters":{...},"histograms":{...}}]
      with keys sorted, histogram fields [count]/[sum_s]/[min_s]/[max_s],
      and a trailing newline — greppable out of mixed CLI output.

      [Text] is one [counter NAME VALUE] or
      [histogram NAME count=.. sum=..s min=..s max=..s] line per metric,
      sorted by name. *)
end
