let default_jobs () =
  match Sys.getenv_opt "RCN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "RCN_JOBS=%S: expected a positive integer" s))
  | None -> min 8 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | 0 -> default_jobs ()
  | n when n > 0 -> n
  | n -> invalid_arg (Printf.sprintf "Engine.resolve_jobs: %d" n)

(* The config's [deadline] is a relative wall-clock budget (a wire value
   has no clock origin); resolve it into the absolute monotonic timestamp
   the sweeps poll exactly once, at the public entry point. *)
let resolve_deadline (config : Api.Config.t) =
  Option.map Obs.Clock.after config.Api.Config.deadline

(* The one deadline predicate: absolute monotonic timestamps from
   [Obs.Clock], immune to NTP steps. *)
let expired = Obs.Clock.expired

module Cache = struct
  type stats = {
    sched_hits : int;
    sched_misses : int;
    probes : int;
    hits : int;
    misses : int;
    expired : int;
  }

  (* Counters live in an [Obs.Metrics] registry (the caller's, when the
     cache is created with [?obs]) so the CLI stats export and
     [Cache.stats] read the same numbers — one counter implementation. *)
  type counters = {
    c_sched_hits : Obs.Metrics.Counter.t;
    c_sched_misses : Obs.Metrics.Counter.t;
    c_probes : Obs.Metrics.Counter.t;
    c_hits : Obs.Metrics.Counter.t;
    c_misses : Obs.Metrics.Counter.t;
    c_expired : Obs.Metrics.Counter.t;
  }

  type t = {
    mutex : Mutex.t;
    scheds : (int, Sched.proc list list) Hashtbl.t;
    outcomes : (string * Decide.condition * int, Certificate.t option) Hashtbl.t;
    c : counters;
  }

  let create ?obs () =
    let m = match obs with Some o -> Obs.metrics o | None -> Obs.Metrics.create () in
    {
      mutex = Mutex.create ();
      scheds = Hashtbl.create 8;
      outcomes = Hashtbl.create 64;
      c =
        {
          c_sched_hits = Obs.Metrics.counter m "engine.cache.sched_hits";
          c_sched_misses = Obs.Metrics.counter m "engine.cache.sched_misses";
          c_probes = Obs.Metrics.counter m "engine.cache.probes";
          c_hits = Obs.Metrics.counter m "engine.cache.hits";
          c_misses = Obs.Metrics.counter m "engine.cache.misses";
          c_expired = Obs.Metrics.counter m "engine.cache.expired";
        };
    }

  let stats t =
    {
      sched_hits = Obs.Metrics.Counter.value t.c.c_sched_hits;
      sched_misses = Obs.Metrics.Counter.value t.c.c_sched_misses;
      probes = Obs.Metrics.Counter.value t.c.c_probes;
      hits = Obs.Metrics.Counter.value t.c.c_hits;
      misses = Obs.Metrics.Counter.value t.c.c_misses;
      expired = Obs.Metrics.Counter.value t.c.c_expired;
    }

  let scheds t ~n =
    let hit, s =
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.scheds n with
          | Some s -> (true, s)
          | None ->
              let s = Sched.at_most_once ~nprocs:n in
              Hashtbl.add t.scheds n s;
              (false, s))
    in
    Obs.Metrics.Counter.incr (if hit then t.c.c_sched_hits else t.c.c_sched_misses);
    s

  (* Every probe is eventually accounted to exactly one of hits / misses /
     expired, so the three sum to [probes] once no search is in flight:
     a probe that finds the key is a hit; one that leads to a completed
     sweep is a miss if its publish inserted the outcome and a (late) hit
     if another worker published the same key first — publishing never
     double-counts a miss; and a probe whose sweep the deadline cut is
     recorded by [record_expired]. *)
  let probe t ~key =
    Obs.Metrics.Counter.incr t.c.c_probes;
    match Mutex.protect t.mutex (fun () -> Hashtbl.find_opt t.outcomes key) with
    | Some outcome ->
        Obs.Metrics.Counter.incr t.c.c_hits;
        Some outcome
    | None -> None

  let publish t ~key outcome =
    let inserted =
      Mutex.protect t.mutex (fun () ->
          if Hashtbl.mem t.outcomes key then false
          else begin
            Hashtbl.add t.outcomes key outcome;
            true
          end)
    in
    Obs.Metrics.Counter.incr (if inserted then t.c.c_misses else t.c.c_hits)

  let record_expired t = Obs.Metrics.Counter.incr t.c.c_expired
end

type search_outcome =
  | Found of Certificate.t
  | Refuted
  | Expired

let condition_name = function
  | Decide.Discerning -> "discerning"
  | Decide.Recording -> "recording"

(* Resolve the candidate-throughput counter once per search; [None] keeps
   the uninstrumented paths allocation- and lookup-free. *)
let candidates_counter obs = Option.map (fun o -> Obs.counter o "engine.candidates") obs

let count_checked counter n =
  if n > 0 then Option.iter (fun c -> Obs.Metrics.Counter.add c n) counter

(* Supervision plumbing around one sweep: [quarantine_fence] tells whether
   the sweep poisoned any chunk (so a would-be [Refuted] must honestly
   degrade — a quarantined range was never checked), and [with_watchdog]
   is the cancel-and-retry driver for stalled workers: each watchdog trip
   cancels the level and reruns it with a halved chunk size (sweeps are
   idempotent, so rerunning only re-covers unfinished work), and the final
   round runs without the watchdog so a genuinely slow level still
   completes instead of degrading. *)
let quarantine_fence supervisor =
  match supervisor with
  | None -> fun () -> false
  | Some sup ->
      let q0 = Supervise.quarantine_count sup in
      fun () -> Supervise.quarantine_count sup > q0

let watchdog_rounds = 3

let with_watchdog ?supervisor ~chunk sweep =
  match Option.bind supervisor Supervise.watchdog with
  | None -> sweep ~chunk ~wd_stop:(fun () -> false)
  | Some wd ->
      let rec go round chunk =
        let fired = Atomic.make false in
        let wd_stop =
          if round >= watchdog_rounds then fun () -> false
          else
            fun () ->
              Atomic.get fired
              || Supervise.Watchdog.stalled wd
                 && begin
                      if Atomic.compare_and_set fired false true then
                        Supervise.Watchdog.trip wd;
                      true
                    end
        in
        let r = sweep ~chunk ~wd_stop in
        if Atomic.get fired then go (round + 1) (max 1 (chunk / 2)) else r
      in
      go 1 chunk

let default_chunk pool total = max 1 (total / (8 * Pool.jobs pool))

(* Deterministic parallel first-witness search: domains claim ranges of the
   materialized candidate array and race to lower [best], the minimal
   witnessing index found so far.  A range starting at or past [best] is
   pruned.  Every index below the final minimum has been checked and
   refuted, so the minimum is the sequential first witness.  With a
   [deadline], every worker also polls the clock per candidate and abandons
   the sweep on expiry — a found witness is still genuine, but an expired
   sweep with no witness proves nothing and reports [Expired]. *)
let search_label condition t ~n =
  Printf.sprintf "search %s %s n=%d" t.Objtype.name (condition_name condition) n

let search_fanout ?obs ?deadline ?supervisor pool scheds condition t ~n =
  let cands = Array.of_seq (Decide.candidates t ~n) in
  let total = Array.length cands in
  let counter = candidates_counter obs in
  let label = search_label condition t ~n in
  with_watchdog ?supervisor ~chunk:(default_chunk pool total) @@ fun ~chunk ~wd_stop ->
  let tainted = quarantine_fence supervisor in
  let best = Atomic.make max_int in
  let timed_out = Atomic.make false in
  let completed =
    Pool.parallel_for_until pool ~chunk ?supervisor ~label
      ~should_stop:(fun () -> Atomic.get timed_out || wd_stop ())
      total
      (fun lo hi ->
        let checked = ref 0 in
        let i = ref lo in
        while !i < hi && !i < Atomic.get best && not (Atomic.get timed_out) do
          if expired deadline then begin
            Atomic.set timed_out true;
            i := hi
          end
          else begin
            let u, team, ops = cands.(!i) in
            incr checked;
            if Decide.check condition t scheds ~u ~team ~ops then begin
              let rec lower () =
                let b = Atomic.get best in
                if !i < b && not (Atomic.compare_and_set best b !i) then lower ()
              in
              lower ();
              i := hi
            end
            else incr i
          end
        done;
        count_checked counter !checked)
  in
  match Atomic.get best with
  | b when b = max_int ->
      if Atomic.get timed_out || not completed || tainted () then Expired else Refuted
  | b ->
      let u, team, ops = cands.(b) in
      Found (Certificate.make ~objtype:t ~initial:u ~team ~ops)

(* Kernelized variant of the fan-out: no candidate materialization — the
   kernel's dense rank space *is* the chunked index space, each worker
   evaluates its ranges through a private scratch, and the same
   minimal-rank race gives the same sequential-first-witness guarantee.
   The kernel is compiled on the submitting domain, so workers share the
   (immutable) tables and trie and only their scratches are private. *)
let search_fanout_kernel ?obs ?deadline ?supervisor ~mode pool condition t ~n =
  let k = Kernel.compile ?obs t ~n in
  let counter = candidates_counter obs in
  let label = search_label condition t ~n in
  with_watchdog ?supervisor ~chunk:(default_chunk pool (Kernel.total k))
  @@ fun ~chunk ~wd_stop ->
  let tainted = quarantine_fence supervisor in
  let best = Atomic.make max_int in
  let timed_out = Atomic.make false in
  let completed =
    Pool.parallel_for_until pool ~chunk ?supervisor ~label
      ~should_stop:(fun () -> Atomic.get timed_out || wd_stop ())
      (Kernel.total k)
      (fun lo hi ->
        let s = Kernel.scratch k in
        let stop rank =
          if expired deadline then begin
            Atomic.set timed_out true;
            true
          end
          else rank >= Atomic.get best
        in
        let witness, checked =
          Kernel.search_range ~mode k s condition ~lo ~hi ~stop
        in
        count_checked counter checked;
        match witness with
        | Some r ->
            let rec lower () =
              let b = Atomic.get best in
              if r < b && not (Atomic.compare_and_set best b r) then lower ()
            in
            lower ()
        | None -> ())
  in
  match Atomic.get best with
  | b when b = max_int ->
      if Atomic.get timed_out || not completed || tainted () then Expired else Refuted
  | b ->
      let u, team, ops = Kernel.candidate k b in
      Found (Certificate.make ~objtype:t ~initial:u ~team ~ops)

let search_sequential_kernel ?obs ~deadline ~mode condition t ~n =
  let k = Kernel.compile ?obs t ~n in
  let s = Kernel.scratch k in
  let counter = candidates_counter obs in
  let timed_out = ref false in
  let stop _ =
    if expired deadline then begin
      timed_out := true;
      true
    end
    else false
  in
  let witness, checked =
    Kernel.search_range ~mode k s condition ~lo:0 ~hi:(Kernel.total k) ~stop
  in
  count_checked counter checked;
  match witness with
  | Some r ->
      let u, team, ops = Kernel.candidate k r in
      Found (Certificate.make ~objtype:t ~initial:u ~team ~ops)
  | None -> if !timed_out then Expired else Refuted

(* Sequential sweep with per-candidate deadline polls; identical
   enumeration order to [Decide.search]. *)
let search_sequential ?obs ~deadline scheds condition t ~n =
  let counter = candidates_counter obs in
  let checked = ref 0 in
  let finish outcome =
    count_checked counter !checked;
    outcome
  in
  let rec loop seq =
    match seq () with
    | Seq.Nil -> finish Refuted
    | Seq.Cons ((u, team, ops), rest) ->
        if expired deadline then finish Expired
        else begin
          incr checked;
          if Decide.check condition t scheds ~u ~team ~ops then
            finish (Found (Certificate.make ~objtype:t ~initial:u ~team ~ops))
          else loop rest
        end
  in
  loop (Decide.candidates t ~n)

(* Supervised queries always take the chunked fan-out path — at [jobs = 1]
   it degenerates to the pool's supervised sequential drain — so retry,
   quarantine and watchdog semantics are identical at every job count. *)
let search_uncached ?scheds ?obs ?deadline ?supervisor ?(kernel = Kernel.Trie) pool
    condition t ~n =
  if expired deadline then Expired
  else
    let plain = Pool.jobs pool = 1 && Option.is_none supervisor in
    match kernel with
    | Kernel.Reference -> (
        let scheds =
          match scheds with Some s -> s | None -> Sched.at_most_once ~nprocs:n
        in
        if plain then
          match (deadline, obs) with
          | None, None -> (
              match Decide.search ~scheds ~mode:Kernel.Reference condition t ~n with
              | Some c -> Found c
              | None -> Refuted)
          | _ -> search_sequential ?obs ~deadline scheds condition t ~n
        else search_fanout ?obs ?deadline ?supervisor pool scheds condition t ~n)
    | mode ->
        if plain then search_sequential_kernel ?obs ~deadline ~mode condition t ~n
        else search_fanout_kernel ?obs ?deadline ?supervisor ~mode pool condition t ~n

let outcome_of_option = function Some c -> Found c | None -> Refuted

(* Expired and quarantine-degraded sweeps are never published to the
   cache: they are interrupted computations, not results — but their
   probes are still accounted, so the stats invariant holds.  The
   schedule memo only feeds the reference path; the kernel shares its
   compiled tries internally. *)
let search_within_abs ?cache ?obs ?deadline ?supervisor ?kernel pool condition t ~n =
  match cache with
  | None -> search_uncached ?obs ?deadline ?supervisor ?kernel pool condition t ~n
  | Some c -> (
      let key = (Objtype.to_spec_string t, condition, n) in
      match Cache.probe c ~key with
      | Some outcome -> outcome_of_option outcome
      | None -> (
          let scheds =
            if kernel = Some Kernel.Reference then Some (Cache.scheds c ~n)
            else None
          in
          match
            search_uncached ?scheds ?obs ?deadline ?supervisor ?kernel pool condition t
              ~n
          with
          | Found cert ->
              Cache.publish c ~key (Some cert);
              Found cert
          | Refuted ->
              Cache.publish c ~key None;
              Refuted
          | Expired ->
              Cache.record_expired c;
              Expired))

let search_within ?cache ?obs ?supervisor ~(config : Api.Config.t) pool condition t ~n =
  search_within_abs ?cache ?obs ?deadline:(resolve_deadline config) ?supervisor
    ~kernel:config.Api.Config.kernel pool condition t ~n

(* Only [config.kernel] applies here: a [search] promises a complete
   verdict, which a deadline or quarantine hole could not honor. *)
let search ?cache ?obs ~(config : Api.Config.t) pool condition t ~n =
  match
    search_within_abs ?cache ?obs ~kernel:config.Api.Config.kernel pool condition t ~n
  with
  | Found c -> Some c
  | Refuted -> None
  | Expired -> assert false (* no deadline and no supervisor were given *)

let scan ?cache ?obs ?(cap = Numbers.default_cap) ?deadline ?supervisor ?kernel pool
    condition t =
  if cap < 2 then invalid_arg "Engine: cap must be at least 2";
  let rec loop n best =
    if n > cap then
      { Analysis.value = cap; status = Analysis.At_least; certificate = best }
    else
      let outcome =
        Obs.with_span ?obs "engine.level"
          ~attrs:
            [
              ("type", t.Objtype.name);
              ("condition", condition_name condition);
              ("n", string_of_int n);
            ]
          (fun () ->
            search_within_abs ?cache ?obs ?deadline ?supervisor ?kernel pool condition t
              ~n)
      in
      match outcome with
      | Found c -> loop (n + 1) (Some c)
      | Refuted -> { Analysis.value = n - 1; status = Analysis.Exact; certificate = best }
      | Expired ->
          (* The deadline cut the scan short — or quarantined chunks left
             holes in the sweep: every level up to [n - 1] was
             established, level [n] was not refuted — an honest lower
             bound, never a fabricated [Exact]. *)
          { Analysis.value = n - 1; status = Analysis.At_least; certificate = best }
  in
  loop 2 None

let max_discerning ?cache ?obs ?supervisor ~(config : Api.Config.t) pool t =
  scan ?cache ?obs ~cap:config.Api.Config.cap ?deadline:(resolve_deadline config)
    ?supervisor ~kernel:config.Api.Config.kernel pool Decide.Discerning t

let max_recording ?cache ?obs ?supervisor ~(config : Api.Config.t) pool t =
  scan ?cache ?obs ~cap:config.Api.Config.cap ?deadline:(resolve_deadline config)
    ?supervisor ~kernel:config.Api.Config.kernel pool Decide.Recording t

(* [analyze_abs] takes the already-resolved deadline so a batch
   ([analyze_all]) shares one budget instead of restarting it per type. *)
let analyze_abs ?cache ?obs ?deadline ?supervisor ~cap ~kernel pool t =
  Obs.with_span ?obs "engine.analyze" ~attrs:[ ("type", t.Objtype.name) ] @@ fun () ->
  let started = Obs.Clock.now () in
  let scan condition = scan ?cache ?obs ~cap ?deadline ?supervisor ~kernel pool condition t in
  let discerning = scan Decide.Discerning in
  let recording = scan Decide.Recording in
  {
    Analysis.type_name = t.Objtype.name;
    readable = Objtype.is_readable t;
    discerning;
    recording;
    elapsed = Obs.Clock.now () -. started;
  }

let analyze ?cache ?obs ?supervisor ~(config : Api.Config.t) pool t =
  analyze_abs ?cache ?obs ?deadline:(resolve_deadline config) ?supervisor
    ~cap:config.Api.Config.cap ~kernel:config.Api.Config.kernel pool t

let analyze_all ?cache ?obs ?supervisor ~(config : Api.Config.t) pool types =
  let cache = match cache with Some c -> c | None -> Cache.create ?obs () in
  let deadline = resolve_deadline config in
  List.map
    (analyze_abs ~cache ?obs ?deadline ?supervisor ~cap:config.Api.Config.cap
       ~kernel:config.Api.Config.kernel pool)
    types

(* Truncated levels of one census table, replaying against the shared
   schedule sets.  Matches [Census.levels] (the same [Decide.search] on the
   same schedules), without caching per-type outcomes: census tables are
   pairwise distinct, so an outcome memo would only grow. *)
let census_levels ?obs cache ~kernel ~cap ty =
  let level condition =
    let rec loop n =
      if n > cap then cap
      else
        let found =
          match kernel with
          | Kernel.Reference ->
              let scheds = Cache.scheds cache ~n in
              Decide.search ~scheds ~mode:Kernel.Reference condition ty ~n
          | mode -> Decide.search ?obs ~mode condition ty ~n
        in
        match found with Some _ -> loop (n + 1) | None -> n - 1
    in
    loop 2
  in
  (level Decide.Discerning, level Decide.Recording)

type census_run = {
  entries : Census.entry list;
  total : int;
  completed : int;
  resumed : int;
  complete : bool;
  storage_error : string option;
}

(* Census checkpoints: a header line pinning the space, cap and size, then
   one "index discerning recording crc32hex" line per decided table.
   Lines are appended chunk-wise under a mutex and flushed, so a process
   killed mid-run leaves at most one torn trailing line, which the
   loader drops (and the writer truncates before resuming appends).

   v2 added the per-line CRC, so replay distinguishes the torn tail
   (truncate) from a complete line that is malformed or fails its CRC —
   that is mid-file corruption, and the loader raises [Fsio.Corrupt]
   with the offset instead of silently skipping decided work.  A v1
   checkpoint fails the header comparison and is rejected like any
   other census mismatch. *)
module Checkpoint = struct
  let header ~space ~cap ~total =
    Printf.sprintf "rcn-census-checkpoint v2 values=%d rws=%d responses=%d cap=%d total=%d"
      space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap total

  (* A symmetry-reduced census records canonical-class ranks, not table
     indices — the suffix makes its checkpoints reject cross-mode resume
     in both directions. *)
  let header_sym ~space ~cap ~total ~classes =
    Printf.sprintf "%s sym=1 classes=%d" (header ~space ~cap ~total) classes

  let line i d r =
    let body = Printf.sprintf "%d %d %d" i d r in
    Printf.sprintf "%s %s\n" body (Fsio.Crc32.to_hex (Fsio.Crc32.string body))

  (* Parse the whole file: [(entries, good)] where [good] is the offset
     just past the last complete valid line (what a resuming writer
     truncates to).  A torn (unterminated) last line is dropped; a
     {e terminated} line that is malformed or fails its CRC raises
     [Fsio.Corrupt] — it was acknowledged whole, so it can only be
     corruption, never a crash artifact. *)
  let parse ~path ~expected contents =
    let n = String.length contents in
    match String.index_opt contents '\n' with
    | None -> ([], 0) (* torn (or empty) header: nothing recoverable *)
    | Some hnl ->
        let h = String.sub contents 0 hnl in
        if String.trim h <> expected then
          invalid_arg
            (Printf.sprintf
               "Engine.census: checkpoint %s belongs to a different census\n  found:    %s\n  expected: %s"
               path (String.trim h) expected);
        let acc = ref [] in
        let good = ref (hnl + 1) in
        let pos = ref (hnl + 1) in
        (try
           while !pos < n do
             match String.index_from_opt contents !pos '\n' with
             | None -> raise Exit (* torn last line: drop *)
             | Some nl ->
                 let line = String.sub contents !pos (nl - !pos) in
                 (match String.split_on_char ' ' (String.trim line) with
                 | [ a; b; c; crc ] -> (
                     match
                       ( int_of_string_opt a,
                         int_of_string_opt b,
                         int_of_string_opt c )
                     with
                     | Some i, Some d, Some r ->
                         let body = Printf.sprintf "%d %d %d" i d r in
                         if
                           crc
                           <> Fsio.Crc32.to_hex (Fsio.Crc32.string body)
                         then
                           raise
                             (Fsio.Corrupt
                                {
                                  path;
                                  offset = !pos;
                                  reason = "checkpoint line CRC mismatch";
                                });
                         acc := (i, (d, r)) :: !acc
                     | _ ->
                         raise
                           (Fsio.Corrupt
                              {
                                path;
                                offset = !pos;
                                reason = "malformed checkpoint line";
                              }))
                 | _ ->
                     raise
                       (Fsio.Corrupt
                          {
                            path;
                            offset = !pos;
                            reason = "malformed checkpoint line";
                          }));
                 pos := nl + 1;
                 good := !pos
           done
         with Exit -> ());
        (List.rev !acc, !good)

  (* Entries come back in file order, so a consumer that keeps the first
     occurrence of an index (as [census ~resume] does) resolves duplicate
     lines in favor of the earliest append.  Torn trailing lines are
     dropped; out-of-range indices are the consumer's concern (the
     header already pins [total]).  @raise Fsio.Corrupt *)
  let load path ~expected =
    if not (Sys.file_exists path) then []
    else
      let contents = In_channel.with_open_bin path In_channel.input_all in
      fst (parse ~path ~expected contents)
end

let census ?cache ?obs ?supervisor ?checkpoint ?(resume = false) ?(durable = false)
    ?injector ~(config : Api.Config.t) pool space =
  let cap = config.Api.Config.cap in
  let kernel = config.Api.Config.kernel in
  let deadline = resolve_deadline config in
  Obs.with_span ?obs "engine.census" @@ fun () ->
  let cache = match cache with Some c -> c | None -> Cache.create ?obs () in
  let size = Census.space_size space in
  let c_tables = Option.map (fun o -> Obs.counter o "census.tables") obs in
  let c_flushes = Option.map (fun o -> Obs.counter o "census.checkpoint_flushes") obs in
  let c_skips = Option.map (fun o -> Obs.counter o "census.resume_skips") obs in
  (* Symmetry reduction: enumerate the canonical representative of every
     isomorphism class once, decide only those, and let each verdict
     count [orbit] tables in the histogram.  The scan is sequential and
     deterministic, so every process that performs it (this engine, the
     distributed coordinator, each worker) derives the identical
     rank space. *)
  let sym_classes =
    if config.Api.Config.sym then begin
      let t0 = Obs.Clock.now () in
      let s =
        Sym.make ~values:space.Synth.num_values ~ops:space.Synth.num_rws
          ~responses:space.Synth.num_responses
      in
      let reps, orbits = Sym.classes s in
      (match obs with
      | None -> ()
      | Some o ->
          Obs.Metrics.Counter.add (Obs.counter o "sym.classes") (Array.length reps);
          Obs.Metrics.Counter.add (Obs.counter o "sym.orbit_max")
            (Array.fold_left max 0 orbits);
          Obs.Metrics.Counter.add (Obs.counter o "sym.canon_ns")
            (int_of_float ((Obs.Clock.now () -. t0) *. 1e9)));
      Some (reps, orbits)
    end
    else None
  in
  (* The sweep below runs over "ranks": table indices normally, class
     ranks under [--sym].  [resumed]/[completed]/the histogram stay in
     table units either way, so summaries are mode-independent. *)
  let ranks = match sym_classes with Some (reps, _) -> Array.length reps | None -> size in
  let index_of_rank i = match sym_classes with Some (reps, _) -> reps.(i) | None -> i in
  let weight i = match sym_classes with Some (_, orbits) -> orbits.(i) | None -> 1 in
  (* Warm the shared per-[n] structures (schedule memo / compiled tries)
     on the submitting domain so workers only read. *)
  for n = 2 to cap do
    match kernel with
    | Kernel.Reference -> ignore (Cache.scheds cache ~n)
    | Kernel.Tables | Kernel.Trie -> Kernel.warm_trie ?obs ~nprocs:n ()
  done;
  let levels = Array.make ranks (0, 0) in
  let finished = Array.make ranks false in
  let resumed = ref 0 in
  let expected =
    match sym_classes with
    | Some _ -> Checkpoint.header_sym ~space ~cap ~total:size ~classes:ranks
    | None -> Checkpoint.header ~space ~cap ~total:size
  in
  (match checkpoint with
  | Some path when resume ->
      List.iter
        (fun (i, lv) ->
          if i >= 0 && i < ranks && not finished.(i) then begin
            levels.(i) <- lv;
            finished.(i) <- true;
            resumed := !resumed + weight i
          end)
        (Checkpoint.load path ~expected)
  | _ -> ());
  count_checked c_skips !resumed;
  (* The checkpoint writer appends through Fsio: whole-chunk appends,
     fsync'd when [durable].  A failed append flips the run into a
     sticky storage-degraded mode — the census finishes in memory and
     reports [storage_error], which callers surface exactly like a
     quarantined chunk (honest At_least / PARTIAL), never a crash and
     never a silent success. *)
  let storage_error = ref None in
  let writer =
    match checkpoint with
    | None -> None
    | Some path ->
        let log = Fsio.open_log ?injector path in
        (match
           let contents = Fsio.contents log in
           if resume then begin
             let _, good = Checkpoint.parse ~path ~expected contents in
             (* Truncate the torn tail {e before} appending: the v1
                writer reopened in append mode, so its first fresh line
                could glue onto a torn half-line and lose both. *)
             if good < String.length contents then Fsio.truncate log good;
             good
           end
           else begin
             if String.length contents > 0 then Fsio.truncate log 0;
             0
           end
         with
        | exception e ->
            (try Fsio.close log with Fsio.Io_error _ -> ());
            raise e
        | 0 ->
            Fsio.append log (expected ^ "\n");
            if durable then Fsio.fsync log
        | _ -> ());
        Some (log, Mutex.create ())
  in
  let completed = Atomic.make !resumed in
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun (log, _) -> try Fsio.close log with Fsio.Io_error _ -> ())
        writer)
    (fun () ->
      with_watchdog ?supervisor ~chunk:32 @@ fun ~chunk ~wd_stop ->
      ignore
        (Pool.parallel_for_until pool ~chunk ?supervisor ~label:"census"
           ~should_stop:(fun () -> expired deadline || wd_stop ())
           ranks
           (fun lo hi ->
             let fresh = ref [] in
             let i = ref lo in
             while !i < hi && not (expired deadline) do
               if not finished.(!i) then begin
                 let ty =
                   Synth.to_objtype (Census.genome_of_index space (index_of_rank !i))
                 in
                 levels.(!i) <- census_levels ?obs cache ~kernel ~cap ty;
                 finished.(!i) <- true;
                 fresh := !i :: !fresh
               end;
               incr i
             done;
             let fresh = List.rev !fresh in
             let n_fresh = List.length fresh in
             ignore
               (Atomic.fetch_and_add completed
                  (List.fold_left (fun acc i -> acc + weight i) 0 fresh));
             count_checked c_tables n_fresh;
             match writer with
             | None -> ()
             | Some (log, m) ->
                 if fresh <> [] then
                   Mutex.protect m (fun () ->
                       if !storage_error = None then
                         match
                           let buf = Buffer.create 64 in
                           List.iter
                             (fun i ->
                               let d, r = levels.(i) in
                               Buffer.add_string buf (Checkpoint.line i d r))
                             fresh;
                           Fsio.append log (Buffer.contents buf);
                           if durable then Fsio.fsync log
                         with
                         | () ->
                             Option.iter Obs.Metrics.Counter.incr c_flushes
                         | exception (Fsio.Io_error _ as e) ->
                             storage_error := Fsio.error_message e))));
  let histogram = Hashtbl.create 64 in
  Array.iteri
    (fun i key ->
      if finished.(i) then
        Hashtbl.replace histogram key
          (weight i + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    levels;
  let completed = Atomic.get completed in
  {
    entries = Census.of_histogram histogram;
    total = size;
    completed;
    resumed = !resumed;
    complete = completed = size;
    storage_error = !storage_error;
  }

let synth_portfolio ?(seed = 0) ?max_iterations ?restart_every ?obs ?supervisor
    ~(config : Api.Config.t) ~portfolio pool ~target space =
  if portfolio < 1 then
    invalid_arg "Engine.synth_portfolio: portfolio must be positive";
  let deadline = resolve_deadline config in
  Obs.with_span ?obs "engine.synth" @@ fun () ->
  let c_climbs = Option.map (fun o -> Obs.counter o "synth.climbs") obs in
  let c_successes = Option.map (fun o -> Obs.counter o "synth.successes") obs in
  let results = Array.make portfolio None in
  let best = Atomic.make max_int in
  ignore
    (Pool.parallel_for_until pool ~chunk:1 ?supervisor ~label:"synth"
       ~should_stop:(fun () -> expired deadline)
       portfolio
       (fun lo hi ->
         for k = lo to hi - 1 do
           (* Skip only seeds above an already-successful one: every seed
              below the final minimum runs to completion, so the portfolio
              returns the first success in seed order.  An expired deadline
              skips the climb entirely (climbs are the cancellation
              granularity — [Synth.search] itself is not interruptible). *)
           if k < Atomic.get best && not (expired deadline) then begin
             Option.iter Obs.Metrics.Counter.incr c_climbs;
             match
               Synth.search ~seed:(seed + k) ?max_iterations ?restart_every
                 ~incremental:config.Api.Config.incremental ?obs ~target space
             with
             | Some w ->
                 Option.iter Obs.Metrics.Counter.incr c_successes;
                 results.(k) <- Some w;
                 let rec lower () =
                   let b = Atomic.get best in
                   if k < b && not (Atomic.compare_and_set best b k) then lower ()
                 in
                 lower ()
             | None -> ()
           end
         done));
  match Atomic.get best with b when b = max_int -> None | b -> results.(b)
