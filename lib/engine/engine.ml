let default_jobs () =
  match Sys.getenv_opt "RCN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "RCN_JOBS=%S: expected a positive integer" s))
  | None -> min 8 (Domain.recommended_domain_count ())

module Cache = struct
  type stats = { sched_hits : int; sched_misses : int; hits : int; misses : int }

  type t = {
    mutex : Mutex.t;
    scheds : (int, Sched.proc list list) Hashtbl.t;
    outcomes : (string * Decide.condition * int, Certificate.t option) Hashtbl.t;
    mutable stats : stats;
  }

  let create () =
    {
      mutex = Mutex.create ();
      scheds = Hashtbl.create 8;
      outcomes = Hashtbl.create 64;
      stats = { sched_hits = 0; sched_misses = 0; hits = 0; misses = 0 };
    }

  let stats t = Mutex.protect t.mutex (fun () -> t.stats)

  let scheds t ~n =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.scheds n with
        | Some s ->
            t.stats <- { t.stats with sched_hits = t.stats.sched_hits + 1 };
            s
        | None ->
            let s = Sched.at_most_once ~nprocs:n in
            Hashtbl.add t.scheds n s;
            t.stats <- { t.stats with sched_misses = t.stats.sched_misses + 1 };
            s)

  (* The outcome is computed outside the lock; a racing duplicate computes
     the same (deterministic) value, so whichever publishes first wins. *)
  let find_or_add t ~key ~compute =
    let cached =
      Mutex.protect t.mutex (fun () ->
          match Hashtbl.find_opt t.outcomes key with
          | Some outcome ->
              t.stats <- { t.stats with hits = t.stats.hits + 1 };
              Some outcome
          | None -> None)
    in
    match cached with
    | Some outcome -> outcome
    | None ->
        let outcome = compute () in
        Mutex.protect t.mutex (fun () ->
            if not (Hashtbl.mem t.outcomes key) then Hashtbl.add t.outcomes key outcome;
            t.stats <- { t.stats with misses = t.stats.misses + 1 });
        outcome
end

(* Deterministic parallel first-witness search: domains claim ranges of the
   materialized candidate array and race to lower [best], the minimal
   witnessing index found so far.  A range starting at or past [best] is
   pruned.  Every index below the final minimum has been checked and
   refuted, so the minimum is the sequential first witness. *)
let search_fanout pool scheds condition t ~n =
  let cands = Array.of_seq (Decide.candidates t ~n) in
  let total = Array.length cands in
  let best = Atomic.make max_int in
  Pool.parallel_for pool total (fun lo hi ->
      let i = ref lo in
      while !i < hi && !i < Atomic.get best do
        let u, team, ops = cands.(!i) in
        if Decide.check condition t scheds ~u ~team ~ops then begin
          let rec lower () =
            let b = Atomic.get best in
            if !i < b && not (Atomic.compare_and_set best b !i) then lower ()
          in
          lower ();
          i := hi
        end
        else incr i
      done);
  match Atomic.get best with
  | b when b = max_int -> None
  | b ->
      let u, team, ops = cands.(b) in
      Some (Certificate.make ~objtype:t ~initial:u ~team ~ops)

let search_uncached ?scheds pool condition t ~n =
  let scheds =
    match scheds with Some s -> s | None -> Sched.at_most_once ~nprocs:n
  in
  if Pool.jobs pool = 1 then Decide.search ~scheds condition t ~n
  else search_fanout pool scheds condition t ~n

let search ?cache pool condition t ~n =
  match cache with
  | None -> search_uncached pool condition t ~n
  | Some c ->
      Cache.find_or_add c
        ~key:(Objtype.to_spec_string t, condition, n)
        ~compute:(fun () ->
          search_uncached ~scheds:(Cache.scheds c ~n) pool condition t ~n)

let scan ?cache ?(cap = Numbers.default_cap) pool condition t =
  if cap < 2 then invalid_arg "Engine: cap must be at least 2";
  let rec loop n best =
    if n > cap then
      { Analysis.value = cap; status = Analysis.At_least; certificate = best }
    else
      match search ?cache pool condition t ~n with
      | Some c -> loop (n + 1) (Some c)
      | None -> { Analysis.value = n - 1; status = Analysis.Exact; certificate = best }
  in
  loop 2 None

let max_discerning ?cache ?cap pool t = scan ?cache ?cap pool Decide.Discerning t
let max_recording ?cache ?cap pool t = scan ?cache ?cap pool Decide.Recording t

let analyze ?cache ?cap pool t =
  let started = Unix.gettimeofday () in
  let discerning = max_discerning ?cache ?cap pool t in
  let recording = max_recording ?cache ?cap pool t in
  {
    Analysis.type_name = t.Objtype.name;
    readable = Objtype.is_readable t;
    discerning;
    recording;
    elapsed = Unix.gettimeofday () -. started;
  }

let analyze_all ?cache ?cap pool types =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  List.map (analyze ~cache ?cap pool) types

(* Truncated levels of one census table, replaying against the shared
   schedule sets.  Matches [Census.levels] (the same [Decide.search] on the
   same schedules), without caching per-type outcomes: census tables are
   pairwise distinct, so an outcome memo would only grow. *)
let census_levels cache ~cap ty =
  let level condition =
    let rec loop n =
      if n > cap then cap
      else
        let scheds = Cache.scheds cache ~n in
        match Decide.search ~scheds condition ty ~n with
        | Some _ -> loop (n + 1)
        | None -> n - 1
    in
    loop 2
  in
  (level Decide.Discerning, level Decide.Recording)

let census ?cache ?(cap = 4) pool space =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let size = Census.space_size space in
  (* Warm the schedule memo on the submitting domain so workers only read. *)
  for n = 2 to cap do
    ignore (Cache.scheds cache ~n)
  done;
  let levels = Array.make size (0, 0) in
  Pool.parallel_for pool ~chunk:32 size (fun lo hi ->
      for i = lo to hi - 1 do
        let ty = Synth.to_objtype (Census.genome_of_index space i) in
        levels.(i) <- census_levels cache ~cap ty
      done);
  let histogram = Hashtbl.create 64 in
  Array.iter
    (fun key ->
      Hashtbl.replace histogram key
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    levels;
  Census.of_histogram histogram

let synth_portfolio ?(seed = 0) ?max_iterations ?restart_every ~portfolio pool
    ~target space =
  if portfolio < 1 then
    invalid_arg "Engine.synth_portfolio: portfolio must be positive";
  let results = Array.make portfolio None in
  let best = Atomic.make max_int in
  Pool.parallel_for pool ~chunk:1 portfolio (fun lo hi ->
      for k = lo to hi - 1 do
        (* Skip only seeds above an already-successful one: every seed
           below the final minimum runs to completion, so the portfolio
           returns the first success in seed order. *)
        if k < Atomic.get best then
          match
            Synth.search ~seed:(seed + k) ?max_iterations ?restart_every
              ~target space
          with
          | Some w ->
              results.(k) <- Some w;
              let rec lower () =
                let b = Atomic.get best in
                if k < b && not (Atomic.compare_and_set best b k) then lower ()
              in
              lower ()
          | None -> ()
      done);
  match Atomic.get best with b when b = max_int -> None | b -> results.(b)
