let default_jobs () =
  match Sys.getenv_opt "RCN_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "RCN_JOBS=%S: expected a positive integer" s))
  | None -> min 8 (Domain.recommended_domain_count ())

let expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

module Cache = struct
  type stats = { sched_hits : int; sched_misses : int; hits : int; misses : int }

  type t = {
    mutex : Mutex.t;
    scheds : (int, Sched.proc list list) Hashtbl.t;
    outcomes : (string * Decide.condition * int, Certificate.t option) Hashtbl.t;
    mutable stats : stats;
  }

  let create () =
    {
      mutex = Mutex.create ();
      scheds = Hashtbl.create 8;
      outcomes = Hashtbl.create 64;
      stats = { sched_hits = 0; sched_misses = 0; hits = 0; misses = 0 };
    }

  let stats t = Mutex.protect t.mutex (fun () -> t.stats)

  let scheds t ~n =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.scheds n with
        | Some s ->
            t.stats <- { t.stats with sched_hits = t.stats.sched_hits + 1 };
            s
        | None ->
            let s = Sched.at_most_once ~nprocs:n in
            Hashtbl.add t.scheds n s;
            t.stats <- { t.stats with sched_misses = t.stats.sched_misses + 1 };
            s)

  let probe t ~key =
    Mutex.protect t.mutex (fun () ->
        match Hashtbl.find_opt t.outcomes key with
        | Some outcome ->
            t.stats <- { t.stats with hits = t.stats.hits + 1 };
            Some outcome
        | None -> None)

  let publish t ~key outcome =
    Mutex.protect t.mutex (fun () ->
        if not (Hashtbl.mem t.outcomes key) then Hashtbl.add t.outcomes key outcome;
        t.stats <- { t.stats with misses = t.stats.misses + 1 })

end

type search_outcome =
  | Found of Certificate.t
  | Refuted
  | Expired

(* Deterministic parallel first-witness search: domains claim ranges of the
   materialized candidate array and race to lower [best], the minimal
   witnessing index found so far.  A range starting at or past [best] is
   pruned.  Every index below the final minimum has been checked and
   refuted, so the minimum is the sequential first witness.  With a
   [deadline], every worker also polls the clock per candidate and abandons
   the sweep on expiry — a found witness is still genuine, but an expired
   sweep with no witness proves nothing and reports [Expired]. *)
let search_fanout ?deadline pool scheds condition t ~n =
  let cands = Array.of_seq (Decide.candidates t ~n) in
  let total = Array.length cands in
  let best = Atomic.make max_int in
  let timed_out = Atomic.make false in
  let completed =
    Pool.parallel_for_until pool
      ~should_stop:(fun () -> Atomic.get timed_out)
      total
      (fun lo hi ->
        let i = ref lo in
        while !i < hi && !i < Atomic.get best && not (Atomic.get timed_out) do
          if expired deadline then begin
            Atomic.set timed_out true;
            i := hi
          end
          else begin
            let u, team, ops = cands.(!i) in
            if Decide.check condition t scheds ~u ~team ~ops then begin
              let rec lower () =
                let b = Atomic.get best in
                if !i < b && not (Atomic.compare_and_set best b !i) then lower ()
              in
              lower ();
              i := hi
            end
            else incr i
          end
        done)
  in
  match Atomic.get best with
  | b when b = max_int ->
      if Atomic.get timed_out || not completed then Expired else Refuted
  | b ->
      let u, team, ops = cands.(b) in
      Found (Certificate.make ~objtype:t ~initial:u ~team ~ops)

(* Sequential sweep with per-candidate deadline polls; identical
   enumeration order to [Decide.search]. *)
let search_sequential ~deadline scheds condition t ~n =
  let rec loop seq =
    match seq () with
    | Seq.Nil -> Refuted
    | Seq.Cons ((u, team, ops), rest) ->
        if expired deadline then Expired
        else if Decide.check condition t scheds ~u ~team ~ops then
          Found (Certificate.make ~objtype:t ~initial:u ~team ~ops)
        else loop rest
  in
  loop (Decide.candidates t ~n)

let search_uncached ?scheds ?deadline pool condition t ~n =
  let scheds =
    match scheds with Some s -> s | None -> Sched.at_most_once ~nprocs:n
  in
  if expired deadline then Expired
  else if Pool.jobs pool = 1 then
    match deadline with
    | None -> (
        match Decide.search ~scheds condition t ~n with
        | Some c -> Found c
        | None -> Refuted)
    | Some _ -> search_sequential ~deadline scheds condition t ~n
  else search_fanout ?deadline pool scheds condition t ~n

let outcome_of_option = function Some c -> Found c | None -> Refuted

(* Expired sweeps are never published to the cache: they are interrupted
   computations, not results. *)
let search_within ?cache ?deadline pool condition t ~n =
  match cache with
  | None -> search_uncached ?deadline pool condition t ~n
  | Some c -> (
      let key = (Objtype.to_spec_string t, condition, n) in
      match Cache.probe c ~key with
      | Some outcome -> outcome_of_option outcome
      | None -> (
          match
            search_uncached ~scheds:(Cache.scheds c ~n) ?deadline pool condition t ~n
          with
          | Found cert ->
              Cache.publish c ~key (Some cert);
              Found cert
          | Refuted ->
              Cache.publish c ~key None;
              Refuted
          | Expired -> Expired))

let search ?cache pool condition t ~n =
  match search_within ?cache pool condition t ~n with
  | Found c -> Some c
  | Refuted -> None
  | Expired -> assert false (* no deadline was given *)

let scan ?cache ?(cap = Numbers.default_cap) ?deadline pool condition t =
  if cap < 2 then invalid_arg "Engine: cap must be at least 2";
  let rec loop n best =
    if n > cap then
      { Analysis.value = cap; status = Analysis.At_least; certificate = best }
    else
      match search_within ?cache ?deadline pool condition t ~n with
      | Found c -> loop (n + 1) (Some c)
      | Refuted -> { Analysis.value = n - 1; status = Analysis.Exact; certificate = best }
      | Expired ->
          (* The deadline cut the scan short: every level up to [n - 1] was
             established, level [n] was not refuted — an honest lower
             bound, never a fabricated [Exact]. *)
          { Analysis.value = n - 1; status = Analysis.At_least; certificate = best }
  in
  loop 2 None

let max_discerning ?cache ?cap ?deadline pool t =
  scan ?cache ?cap ?deadline pool Decide.Discerning t

let max_recording ?cache ?cap ?deadline pool t =
  scan ?cache ?cap ?deadline pool Decide.Recording t

let analyze ?cache ?cap ?deadline pool t =
  let started = Unix.gettimeofday () in
  let discerning = max_discerning ?cache ?cap ?deadline pool t in
  let recording = max_recording ?cache ?cap ?deadline pool t in
  {
    Analysis.type_name = t.Objtype.name;
    readable = Objtype.is_readable t;
    discerning;
    recording;
    elapsed = Unix.gettimeofday () -. started;
  }

let analyze_all ?cache ?cap ?deadline pool types =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  List.map (analyze ~cache ?cap ?deadline pool) types

(* Truncated levels of one census table, replaying against the shared
   schedule sets.  Matches [Census.levels] (the same [Decide.search] on the
   same schedules), without caching per-type outcomes: census tables are
   pairwise distinct, so an outcome memo would only grow. *)
let census_levels cache ~cap ty =
  let level condition =
    let rec loop n =
      if n > cap then cap
      else
        let scheds = Cache.scheds cache ~n in
        match Decide.search ~scheds condition ty ~n with
        | Some _ -> loop (n + 1)
        | None -> n - 1
    in
    loop 2
  in
  (level Decide.Discerning, level Decide.Recording)

type census_run = {
  entries : Census.entry list;
  total : int;
  completed : int;
  resumed : int;
  complete : bool;
}

(* Census checkpoints: a header line pinning the space, cap and size, then
   one "index discerning recording" line per decided table.  Lines are
   appended chunk-wise under a mutex and flushed, so a process killed
   mid-run leaves at most one torn trailing line, which the loader drops. *)
module Checkpoint = struct
  let header ~space ~cap ~total =
    Printf.sprintf "rcn-census-checkpoint v1 values=%d rws=%d responses=%d cap=%d total=%d"
      space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap total

  let load path ~expected =
    if not (Sys.file_exists path) then []
    else
      In_channel.with_open_text path (fun ic ->
          match In_channel.input_line ic with
          | None -> []
          | Some h when String.trim h <> expected ->
              invalid_arg
                (Printf.sprintf
                   "Engine.census: checkpoint %s belongs to a different census\n  found:    %s\n  expected: %s"
                   path (String.trim h) expected)
          | Some _ ->
              let rec loop acc =
                match In_channel.input_line ic with
                | None -> acc
                | Some line -> (
                    match String.split_on_char ' ' (String.trim line) with
                    | [ a; b; c ] -> (
                        match
                          (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c)
                        with
                        | Some i, Some d, Some r -> loop ((i, (d, r)) :: acc)
                        | _ -> acc)
                    | _ -> acc)
              in
              loop [])
end

let census ?cache ?(cap = 4) ?deadline ?checkpoint ?(resume = false) pool space =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  let size = Census.space_size space in
  (* Warm the schedule memo on the submitting domain so workers only read. *)
  for n = 2 to cap do
    ignore (Cache.scheds cache ~n)
  done;
  let levels = Array.make size (0, 0) in
  let finished = Array.make size false in
  let resumed = ref 0 in
  let expected = Checkpoint.header ~space ~cap ~total:size in
  (match checkpoint with
  | Some path when resume ->
      List.iter
        (fun (i, lv) ->
          if i >= 0 && i < size && not finished.(i) then begin
            levels.(i) <- lv;
            finished.(i) <- true;
            incr resumed
          end)
        (Checkpoint.load path ~expected)
  | _ -> ());
  let writer =
    match checkpoint with
    | None -> None
    | Some path ->
        let appending = resume && Sys.file_exists path in
        let oc =
          open_out_gen
            (if appending then [ Open_wronly; Open_append ]
             else [ Open_wronly; Open_creat; Open_trunc ])
            0o644 path
        in
        if not appending then begin
          output_string oc (expected ^ "\n");
          flush oc
        end;
        Some (oc, Mutex.create ())
  in
  let completed = Atomic.make !resumed in
  Fun.protect
    ~finally:(fun () -> Option.iter (fun (oc, _) -> close_out oc) writer)
    (fun () ->
      ignore
        (Pool.parallel_for_until pool ~chunk:32
           ~should_stop:(fun () -> expired deadline)
           size
           (fun lo hi ->
             let fresh = ref [] in
             let i = ref lo in
             while !i < hi && not (expired deadline) do
               if not finished.(!i) then begin
                 let ty = Synth.to_objtype (Census.genome_of_index space !i) in
                 levels.(!i) <- census_levels cache ~cap ty;
                 finished.(!i) <- true;
                 fresh := !i :: !fresh
               end;
               incr i
             done;
             let fresh = List.rev !fresh in
             ignore (Atomic.fetch_and_add completed (List.length fresh));
             match writer with
             | None -> ()
             | Some (oc, m) ->
                 Mutex.protect m (fun () ->
                     List.iter
                       (fun i ->
                         let d, r = levels.(i) in
                         Printf.fprintf oc "%d %d %d\n" i d r)
                       fresh;
                     flush oc))));
  let histogram = Hashtbl.create 64 in
  Array.iteri
    (fun i key ->
      if finished.(i) then
        Hashtbl.replace histogram key
          (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    levels;
  let completed = Atomic.get completed in
  {
    entries = Census.of_histogram histogram;
    total = size;
    completed;
    resumed = !resumed;
    complete = completed = size;
  }

let synth_portfolio ?(seed = 0) ?max_iterations ?restart_every ?deadline ~portfolio
    pool ~target space =
  if portfolio < 1 then
    invalid_arg "Engine.synth_portfolio: portfolio must be positive";
  let results = Array.make portfolio None in
  let best = Atomic.make max_int in
  ignore
    (Pool.parallel_for_until pool ~chunk:1
       ~should_stop:(fun () -> expired deadline)
       portfolio
       (fun lo hi ->
         for k = lo to hi - 1 do
           (* Skip only seeds above an already-successful one: every seed
              below the final minimum runs to completion, so the portfolio
              returns the first success in seed order.  An expired deadline
              skips the climb entirely (climbs are the cancellation
              granularity — [Synth.search] itself is not interruptible). *)
           if k < Atomic.get best && not (expired deadline) then
             match
               Synth.search ~seed:(seed + k) ?max_iterations ?restart_every
                 ~target space
             with
             | Some w ->
                 results.(k) <- Some w;
                 let rec lower () =
                   let b = Atomic.get best in
                   if k < b && not (Atomic.compare_and_set best b k) then lower ()
                 in
                 lower ()
             | None -> ()
         done));
  match Atomic.get best with b when b = max_int -> None | b -> results.(b)
