type task = {
  run : int -> int -> unit;
  total : int;
  chunk : int;
  next : int Atomic.t;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable task : task option;
  mutable active : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  error : exn option Atomic.t;
}

let jobs t = t.jobs

let drain pool task =
  let continue = ref true in
  while !continue do
    let lo = Atomic.fetch_and_add task.next task.chunk in
    if lo >= task.total then continue := false
    else begin
      let hi = min task.total (lo + task.chunk) in
      try task.run lo hi
      with e ->
        ignore (Atomic.compare_and_set pool.error None (Some e));
        (* Abandon the remaining ranges: in-flight claims finish, nobody
           claims more. *)
        Atomic.set task.next task.total
    end
  done

(* Workers park on [has_work] until the epoch moves (every worker runs
   every task — the submitter waits for [active = 0] before the next
   submission, so no worker can still be draining a previous epoch) or
   [stop] is raised at shutdown. *)
let worker pool () =
  let my_epoch = ref 0 in
  Mutex.lock pool.mutex;
  let running = ref true in
  while !running do
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else if pool.epoch > !my_epoch then begin
      my_epoch := pool.epoch;
      let task = Option.get pool.task in
      Mutex.unlock pool.mutex;
      drain pool task;
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.finished
    end
    else Condition.wait pool.has_work pool.mutex
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be positive";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      task = None;
      active = 0;
      stop = false;
      workers = [];
      error = Atomic.make None;
    }
  in
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let parallel_for pool ?chunk total f =
  if total > 0 then
    if pool.jobs = 1 then f 0 total
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Pool.parallel_for: chunk must be positive"
        | None -> max 1 (total / (8 * pool.jobs))
      in
      Atomic.set pool.error None;
      let task = { run = f; total; chunk; next = Atomic.make 0 } in
      Mutex.lock pool.mutex;
      pool.task <- Some task;
      pool.active <- pool.jobs;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.has_work;
      Mutex.unlock pool.mutex;
      drain pool task;
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.finished
      else
        while pool.active > 0 do
          Condition.wait pool.finished pool.mutex
        done;
      pool.task <- None;
      Mutex.unlock pool.mutex;
      match Atomic.get pool.error with Some e -> raise e | None -> ()
    end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
