type task = {
  run : int -> int -> unit;
  total : int;
  chunk : int;
  next : int Atomic.t;
  should_stop : unit -> bool;
  stopped : bool Atomic.t;
  supervisor : Supervise.t option;
  label : string;
}

exception
  Task_error of { lo : int; hi : int; worker : int; error : exn }

let () =
  Printexc.register_printer (function
    | Task_error { lo; hi; worker; error } ->
        Some
          (Printf.sprintf "Pool.Task_error { chunk = [%d,%d); worker = %d; error = %s }" lo hi
             worker (Printexc.to_string error))
    | _ -> None)

(* Pre-resolved metric handles, so the hot path never touches the registry. *)
type obs_handles = {
  tasks : Obs.Metrics.Counter.t;
  chunks : Obs.Metrics.Counter.t;
  abandons : Obs.Metrics.Counter.t;
  chunk_time : Obs.Metrics.Histogram.t;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;
  finished : Condition.t;
  mutable epoch : int;
  mutable task : task option;
  mutable active : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  error : exn option Atomic.t;
  obs : obs_handles option;
}

let jobs t = t.jobs

(* Abandon the ranges nobody has claimed yet; in-flight claims finish.
   [stopped] records that unclaimed work actually existed at that moment,
   distinguishing cooperative cancellation from normal exhaustion. *)
let abandon obs task =
  let next = Atomic.exchange task.next task.total in
  if next < task.total then begin
    Atomic.set task.stopped true;
    Option.iter (fun h -> Obs.Metrics.Counter.incr h.abandons) obs
  end

(* Run one claimed chunk, counting it and timing it when instrumented.
   Worker utilization is [sum pool.chunk_s / (jobs * wall time)]. *)
let run_chunk obs (f : int -> int -> unit) lo hi =
  match obs with
  | None -> f lo hi
  | Some h ->
      Obs.Metrics.Counter.incr h.chunks;
      let t0 = Obs.Clock.now () in
      Fun.protect
        ~finally:(fun () -> Obs.Metrics.Histogram.observe h.chunk_time (Obs.Clock.now () -. t0))
        (fun () -> f lo hi)

(* One claimed range.  Unsupervised, the first exception is recorded and
   the task abandoned (the historical abort-on-first-exception contract).
   Supervised, the chunk is retried under the supervisor's policy and —
   past [max_attempts] — quarantined and skipped: the task itself never
   aborts, and the caller learns about the hole from the supervisor's
   ledger. *)
let run_supervised obs sup ~label ~worker f lo hi =
  let run lo hi = run_chunk obs f lo hi in
  match Supervise.watchdog sup with
  | None -> ignore (Supervise.run_chunk sup ~context:label ~run ~lo ~hi ())
  | Some wd ->
      ignore
        (Supervise.run_chunk sup
           ~heartbeat:(fun () -> Supervise.Watchdog.beat wd ~worker)
           ~context:label ~run ~lo ~hi ());
      Supervise.Watchdog.clear wd ~worker

let run_claimed pool task ~worker lo hi =
  match task.supervisor with
  | None -> (
      try run_chunk pool.obs task.run lo hi
      with e ->
        ignore
          (Atomic.compare_and_set pool.error None
             (Some (Task_error { lo; hi; worker; error = e })));
        abandon pool.obs task)
  | Some sup -> run_supervised pool.obs sup ~label:task.label ~worker task.run lo hi

let drain pool task ~worker =
  let continue = ref true in
  while !continue do
    if task.should_stop () then begin
      abandon pool.obs task;
      continue := false
    end
    else
      let lo = Atomic.fetch_and_add task.next task.chunk in
      if lo >= task.total then continue := false
      else run_claimed pool task ~worker lo (min task.total (lo + task.chunk))
  done

(* Workers park on [has_work] until the epoch moves (every worker runs
   every task — the submitter waits for [active = 0] before the next
   submission, so no worker can still be draining a previous epoch) or
   [stop] is raised at shutdown. *)
let worker pool ~worker:id () =
  let my_epoch = ref 0 in
  Mutex.lock pool.mutex;
  let running = ref true in
  while !running do
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else if pool.epoch > !my_epoch then begin
      my_epoch := pool.epoch;
      let task = Option.get pool.task in
      Mutex.unlock pool.mutex;
      drain pool task ~worker:id;
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.finished
    end
    else Condition.wait pool.has_work pool.mutex
  done

let create ?obs ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be positive";
  let obs =
    Option.map
      (fun o ->
        {
          tasks = Obs.counter o "pool.tasks";
          chunks = Obs.counter o "pool.chunks";
          abandons = Obs.counter o "pool.abandons";
          chunk_time = Obs.histogram o "pool.chunk_s";
        })
      obs
  in
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      task = None;
      active = 0;
      stop = false;
      workers = [];
      error = Atomic.make None;
      obs;
    }
  in
  (* Worker [i] identifies itself as [i + 1]; the submitting domain is 0. *)
  pool.workers <- List.init (jobs - 1) (fun i -> Domain.spawn (worker pool ~worker:(i + 1)));
  pool

let never_stop () = false

let resolve_chunk pool total = function
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Pool.parallel_for: chunk must be positive"
  | None -> max 1 (total / (8 * pool.jobs))

(* Sequential fallback: chunked so [should_stop] is still polled between
   ranges, and failures carry the same chunk context as the parallel path
   — including supervised retry and quarantine, so [jobs = 1] runs heal
   exactly like parallel ones. *)
let sequential_drain obs chunk ?supervisor ~label ~should_stop total f =
  let lo = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !lo < total do
    if should_stop () then begin
      stopped := true;
      Option.iter (fun h -> Obs.Metrics.Counter.incr h.abandons) obs
    end
    else begin
      let hi = min total (!lo + chunk) in
      (match supervisor with
      | None -> (
          try run_chunk obs f !lo hi
          with e -> raise (Task_error { lo = !lo; hi; worker = 0; error = e }))
      | Some sup -> run_supervised obs sup ~label ~worker:0 f !lo hi);
      lo := hi
    end
  done;
  not !stopped

let submit pool ?chunk ?supervisor ?(label = "pool.task") ~should_stop total f =
  if total <= 0 then true
  else begin
    Option.iter (fun h -> Obs.Metrics.Counter.incr h.tasks) pool.obs;
    if pool.jobs = 1 then
      sequential_drain pool.obs (resolve_chunk pool total chunk) ?supervisor ~label
        ~should_stop total f
    else begin
      let chunk = resolve_chunk pool total chunk in
      Atomic.set pool.error None;
      let task =
        {
          run = f;
          total;
          chunk;
          next = Atomic.make 0;
          should_stop;
          stopped = Atomic.make false;
          supervisor;
          label;
        }
      in
      Mutex.lock pool.mutex;
      pool.task <- Some task;
      pool.active <- pool.jobs;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.has_work;
      Mutex.unlock pool.mutex;
      drain pool task ~worker:0;
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.finished
      else
        while pool.active > 0 do
          Condition.wait pool.finished pool.mutex
        done;
      pool.task <- None;
      Mutex.unlock pool.mutex;
      match Atomic.get pool.error with
      | Some e -> raise e
      | None -> not (Atomic.get task.stopped)
    end
  end

let parallel_for pool ?chunk ?supervisor ?label total f =
  ignore (submit pool ?chunk ?supervisor ?label ~should_stop:never_stop total f)

let parallel_for_until pool ?chunk ?supervisor ?label ~should_stop total f =
  submit pool ?chunk ?supervisor ?label ~should_stop total f

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.has_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?obs ~jobs f =
  let pool = create ?obs ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
