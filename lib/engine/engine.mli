(** The parallel decision engine: the deciders of [Rcn_hierarchy] fanned
    out over a {!Pool} of domains, with a shared transition-closure cache,
    producing the same unified {!Analysis} records — bit for bit — as the
    sequential entry points.

    Determinism is by construction, not by luck:

    - {!search} materializes [Decide.candidates] (the sequential
      enumeration order) into an array and the domains race to *lower* a
      shared minimal witnessing index, pruning ranges past the current
      minimum.  Every index below the final minimum has been checked and
      refuted, so the returned certificate is exactly the sequential
      first witness.
    - {!census} writes each table's (discerning, recording) levels into
      its own slot of a preallocated array — disjoint writes, no merge
      order — and tallies sequentially, so the histogram is identical at
      every job count.
    - {!synth_portfolio} runs independently-seeded climbs and returns the
      first success in seed order; later seeds are only skipped once an
      earlier one has succeeded.

    The parity test suite pins all three against their sequential
    counterparts at jobs 1, 2 and 4.

    {2 The configuration record}

    Every entry point takes an [Api.Config.t] — the one serializable
    record that replaced the [?jobs ?deadline ?kernel ?retries ?chaos_*
    ?heartbeat] optional-argument sprawl.  The engine reads three fields:

    - [cap]: how far the level scans go;
    - [kernel]: which decider implementation fans out;
    - [deadline]: a wall-clock budget in {e relative} seconds.  Each
      entry point resolves it against [Obs.Clock] exactly once, on
      entry ({!analyze_all} once for the whole batch), into the absolute
      monotonic deadline the sweeps poll.  An expired deadline makes the
      search degrade, never lie: scans report the levels they actually
      established with [Analysis.At_least] status, a census reports
      exactly which tables it decided, and the synthesis portfolio stops
      launching climbs.  Deadline-cut runs are the one place results may
      depend on timing — a certificate found under a deadline is always
      genuine, but *which* partial result is returned depends on how far
      the sweep got.  Runs without a deadline are bit-identical to the
      sequential deciders, as before.

    The config's supervision fields ([retries]/[heartbeat]/[chaos_*])
    are {e not} read here: a [Supervise.t] is runtime state, so callers
    build it with [Api.Config.supervisor] and pass it as [?supervisor].
    Supervised, a chunk of the fan-out that raises is retried under the
    supervisor's backoff policy instead of aborting the whole sweep, and
    a chunk that keeps failing is quarantined: recorded in the
    supervisor's ledger and skipped.  A sweep with quarantined holes
    degrades exactly like a deadline expiry — the search reports
    [Expired], scans fall back to honest [Analysis.At_least] floors, a
    census leaves the affected tables undecided — and is never published
    to the cache.  A witness found by a supervised sweep is always
    genuine.  When the supervisor carries a {!Supervise.Watchdog}, the
    engine also reacts to stalls: a sweep whose workers stop
    heartbeating past the watchdog interval is cancelled cooperatively
    and retried with a halved chunk size (up to two watchdogged retries;
    the final round runs unwatchdogged so a merely-slow workload still
    completes).  Supervised runs with a transient-failure schedule that
    eventually succeeds everywhere are bit-identical to unsupervised
    ones (pinned at jobs 1/2/4).

    Likewise [config.jobs] is not read here — the pool argument {e is}
    the resolved parallelism; map the config field through
    {!resolve_jobs} when building the pool.

    {2 Observability}

    Every entry point also accepts [?obs:Obs.t].  With it, the engine
    emits spans ([engine.analyze], [engine.level], [engine.census],
    [engine.synth]) to the context's trace sink and feeds its metrics
    registry: [engine.candidates] (candidates checked),
    [engine.cache.*] (see {!Cache.stats}), [census.tables],
    [census.checkpoint_flushes], [census.resume_skips], [synth.climbs]
    and [synth.successes].  Without it, the uninstrumented fast paths are
    unchanged. *)

val default_jobs : unit -> int
(** The [RCN_JOBS] environment variable when set (a positive integer),
    otherwise the host's recommended domain count, capped at 8.  The CLI
    maps [--jobs 0] here.
    @raise Invalid_argument when [RCN_JOBS] is set but unusable. *)

val resolve_jobs : int -> int
(** [Api.Config.jobs] to a pool size: [0] means {!default_jobs}.
    @raise Invalid_argument on a negative count. *)

(** A memo shared across decider queries: at-most-once schedule sets
    [S(P)] keyed by process count — the expensive closure every replay
    walks — and search outcomes keyed by (type specification, condition,
    [n]).  Safe to share across the pool's domains (entries are immutable
    once published; the table is mutex-protected).  Deadline-expired
    sweeps are never published: the cache only ever holds completed
    outcomes. *)
module Cache : sig
  type t

  type stats = {
    sched_hits : int;  (** schedule sets served from the memo *)
    sched_misses : int;  (** schedule sets computed *)
    probes : int;  (** outcome lookups issued *)
    hits : int;
        (** probes answered from the memo, including late hits — sweeps
            whose result another worker published first *)
    misses : int;
        (** outcomes computed and published; equals the number of
            distinct keys decided, at any job count *)
    expired : int;  (** probes whose sweep the deadline cut short *)
  }
  (** Once no search is in flight, [hits + misses + expired = probes] —
      every probe is accounted to exactly one bucket (pinned by a
      concurrent test). *)

  val create : ?obs:Obs.t -> unit -> t
  (** With [obs], the cache's counters live in that context's registry
      under [engine.cache.*], so they appear in the CLI [--stats]
      export; otherwise a private registry backs {!stats}. *)

  val scheds : t -> n:int -> Sched.proc list list
  (** [Sched.at_most_once ~nprocs:n], computed once per [n]. *)

  val stats : t -> stats
end

type search_outcome =
  | Found of Certificate.t  (** a genuine witness (even under a deadline) *)
  | Refuted  (** the whole candidate space was checked; no witness *)
  | Expired  (** the deadline cut the sweep short; nothing is known *)

val search_within :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  config:Api.Config.t ->
  Pool.t ->
  Decide.condition ->
  Objtype.t ->
  n:int ->
  search_outcome
(** Deadline-aware witness search.  Without [config.deadline] this is
    exactly {!search} (and never returns [Expired]); with one, every
    domain polls the clock per candidate and the sweep returns [Expired]
    as soon as it fires without having found a witness.  With
    [supervisor], failing chunks are retried and eventually quarantined;
    a no-witness sweep with quarantine holes also returns [Expired] (the
    unchecked ranges mean "no witness" cannot honestly be claimed).

    [config.kernel] selects the decider implementation (see
    {!Kernel.mode}).  The kernel modes fan the compiled kernel's dense
    rank space out over the pool — no candidate materialization — and
    return bit-identical certificates to the reference at any job count
    (pinned by parity tests at jobs 1/2/4). *)

val search :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  config:Api.Config.t ->
  Pool.t ->
  Decide.condition ->
  Objtype.t ->
  n:int ->
  Certificate.t option
(** Exactly [Decide.search condition t ~n] — the least witnessing
    certificate in enumeration order, or [None] — computed across the
    pool's domains, with schedules (and, when [cache] is given, whole
    outcomes) served from the cache.  Reads only [config.kernel]:
    deadlines and supervision cannot apply to an entry point whose
    result promises completeness. *)

val max_discerning :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  config:Api.Config.t ->
  Pool.t ->
  Objtype.t ->
  Analysis.level

val max_recording :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  config:Api.Config.t ->
  Pool.t ->
  Objtype.t ->
  Analysis.level
(** The upward scans of [Numbers], driven by {!search_within}, up to
    [config.cap].  A scan cut by the deadline — or degraded by
    quarantined chunks under a [supervisor] — returns the highest level
    it fully established with [Analysis.At_least] status (never a
    fabricated [Exact]); with an already-expired deadline that is level
    1, the unconditional floor. *)

val analyze :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  config:Api.Config.t ->
  Pool.t ->
  Objtype.t ->
  Analysis.t
(** [Numbers.analyze ~cap:config.cap t], parallelized within each
    decider query.  Equal (under [Analysis.equal]) to the sequential
    result, with the same certificates; [Analysis.elapsed] is measured
    on [Obs.Clock].  With a deadline (or quarantined chunks under a
    [supervisor]), both level scans degrade to honest [At_least] lower
    bounds. *)

val analyze_all :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  config:Api.Config.t ->
  Pool.t ->
  Objtype.t list ->
  Analysis.t list
(** {!analyze} over a batch (e.g. the gallery), sharing one cache so
    repeated types and schedule sets are computed once.  The deadline is
    resolved once for the whole batch; a mid-batch expiry yields quick
    [At_least] records for the remaining types rather than abandoning
    them. *)

val census_levels :
  ?obs:Obs.t -> Cache.t -> kernel:Kernel.mode -> cap:int -> Objtype.t -> int * int
(** One census table's truncated [(discerning, recording)] levels — the
    same [Decide.search] sweep on the same shared schedule sets that
    {!census} runs per table, exposed so a distributed-census worker
    process ([lib/dist]) decides its leased rank range exactly like the
    in-process sweep decides a chunk.  Deliberately uncached per type:
    census tables are pairwise distinct, so an outcome memo would only
    grow. *)

type census_run = {
  entries : Census.entry list;  (** histogram over the *decided* tables *)
  total : int;  (** tables in the space *)
  completed : int;  (** tables decided, including resumed ones *)
  resumed : int;  (** tables loaded from the checkpoint file *)
  complete : bool;  (** [completed = total] *)
  storage_error : string option;
      (** the checkpoint writer's sticky append failure, if any: decided
          tables past the failure were never made durable, so callers
          must report the run degraded (like a quarantined chunk) even
          when [complete] *)
}

(** The census checkpoint file format (v2), exposed for tests and
    tooling: a header line pinning space, cap and table count, then one
    ["index discerning recording crc32hex"] line per decided table.  The
    per-line CRC lets the loader tell a torn trailing line (a killed
    writer — dropped, and truncated by a resuming writer) from a
    complete line that is malformed or fails its CRC (mid-file
    corruption — a hard [Fsio.Corrupt] with the offset, never silently
    skipped).  A v1 checkpoint fails the header comparison and is
    rejected like any other census mismatch. *)
module Checkpoint : sig
  val header : space:Synth.space -> cap:int -> total:int -> string
  (** The exact first line a checkpoint for this census must carry. *)

  val line : int -> int -> int -> string
  (** The exact bytes the writer appends for one decided table
      (newline-terminated) — exposed so tests can compute torn-tail
      boundaries and corrupt lines precisely. *)

  val parse :
    path:string -> expected:string -> string -> (int * (int * int)) list * int
  (** Parse checkpoint file [contents]: the decided entries in file
      order plus the offset just past the last complete valid line (what
      a resuming writer truncates to).  [path] only labels errors.
      @raise Fsio.Corrupt on a complete line failing its CRC or shape.
      @raise Invalid_argument when the header differs from [expected]. *)

  val load : string -> expected:string -> (int * (int * int)) list
  (** Decided [(index, (discerning, recording))] entries, in file order —
      so a first-occurrence-wins consumer resolves duplicated indices in
      favor of the earliest append.  A missing file is empty; a torn
      trailing line from a killed writer is dropped.
      @raise Fsio.Corrupt on mid-file corruption.
      @raise Invalid_argument when the header differs from [expected]. *)
end

val census :
  ?cache:Cache.t ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?durable:bool ->
  ?injector:Fsio.Injector.t ->
  config:Api.Config.t ->
  Pool.t ->
  Synth.space ->
  census_run
(** [Census.exhaustive ~cap:config.cap space] with table indices
    partitioned across the domains and [S(P)] shared through the cache;
    when [complete], the histogram is identical to the sequential census
    at any job count.

    [checkpoint] appends every decided table's levels to the given file
    (chunk-wise, flushed, safe against [kill -9]; the header pins space,
    cap and size so a stale file from a different census is rejected).
    [resume] (with [checkpoint]) first loads previously decided tables
    from that file and skips them — an interrupted census restarted with
    the same parameters recomputes only the missing tail and produces the
    identical histogram.  [durable] (default [false]) additionally
    [fsync]s the checkpoint after every append, extending the crash-safety
    guarantee from process death to machine death at the cost of one disk
    round trip per flushed chunk.  [config.deadline] stops the sweep
    cooperatively; the returned record says exactly how far it got.
    [supervisor] heals failing chunks as in {!search_within}; tables in a
    quarantined chunk stay undecided, so [complete] is honestly [false].

    Checkpoint I/O goes through {!Fsio} ([injector] routes it through a
    fault plan for the crashtest harness).  A checkpoint append that
    fails does {e not} abort the sweep: the writer goes sticky-degraded,
    the census finishes in memory, and [storage_error] reports the
    failure so callers degrade the run to honest At_least/PARTIAL
    exactly like a quarantined chunk. *)

val synth_portfolio :
  ?seed:int ->
  ?max_iterations:int ->
  ?restart_every:int ->
  ?obs:Obs.t ->
  ?supervisor:Supervise.t ->
  config:Api.Config.t ->
  portfolio:int ->
  Pool.t ->
  target:int ->
  Synth.space ->
  Synth.witness option
(** Run [portfolio] hill climbs, seeded [seed, seed + 1, ...], across the
    pool, returning the witness of the lowest-seeded successful climb
    (the same one a sequential first-success scan over the seeds would
    return).  [portfolio = 1] is exactly [Synth.search ?seed].  An
    expired [config.deadline] skips climbs that have not started (whole
    climbs are the cancellation granularity), so [None] may then mean
    "ran out of time" rather than "search space exhausted".  Reads
    [deadline] and [incremental] from the config (the latter selects
    [Synth.search]'s warm-start vs from-scratch mode — same results
    either way); the climb parameters stay keywords because they are
    synthesis-specific, not engine-wide.  [obs] additionally feeds each
    climb's [synth.evals] / [synth.sym_skips] and kernel patch counters. *)
