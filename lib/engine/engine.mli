(** The parallel decision engine: the deciders of [Rcn_hierarchy] fanned
    out over a {!Pool} of domains, with a shared transition-closure cache,
    producing the same unified {!Analysis} records — bit for bit — as the
    sequential entry points.

    Determinism is by construction, not by luck:

    - {!search} materializes [Decide.candidates] (the sequential
      enumeration order) into an array and the domains race to *lower* a
      shared minimal witnessing index, pruning ranges past the current
      minimum.  Every index below the final minimum has been checked and
      refuted, so the returned certificate is exactly the sequential
      first witness.
    - {!census} writes each table's (discerning, recording) levels into
      its own slot of a preallocated array — disjoint writes, no merge
      order — and tallies sequentially, so the histogram is identical at
      every job count.
    - {!synth_portfolio} runs independently-seeded climbs and returns the
      first success in seed order; later seeds are only skipped once an
      earlier one has succeeded.

    The parity test suite pins all three against their sequential
    counterparts at jobs 1, 2 and 4. *)

val default_jobs : unit -> int
(** The [RCN_JOBS] environment variable when set (a positive integer),
    otherwise the host's recommended domain count, capped at 8.  The CLI
    maps [--jobs 0] here.
    @raise Invalid_argument when [RCN_JOBS] is set but unusable. *)

(** A memo shared across decider queries: at-most-once schedule sets
    [S(P)] keyed by process count — the expensive closure every replay
    walks — and search outcomes keyed by (type specification, condition,
    [n]).  Safe to share across the pool's domains (entries are immutable
    once published; the table is mutex-protected). *)
module Cache : sig
  type t

  type stats = {
    sched_hits : int;
    sched_misses : int;
    hits : int;  (** search outcomes served from the memo *)
    misses : int;  (** search outcomes computed *)
  }

  val create : unit -> t

  val scheds : t -> n:int -> Sched.proc list list
  (** [Sched.at_most_once ~nprocs:n], computed once per [n]. *)

  val stats : t -> stats
end

val search :
  ?cache:Cache.t ->
  Pool.t ->
  Decide.condition ->
  Objtype.t ->
  n:int ->
  Certificate.t option
(** Exactly [Decide.search condition t ~n] — the least witnessing
    certificate in enumeration order, or [None] — computed across the
    pool's domains, with schedules (and, when [cache] is given, whole
    outcomes) served from the cache. *)

val max_discerning : ?cache:Cache.t -> ?cap:int -> Pool.t -> Objtype.t -> Analysis.level
val max_recording : ?cache:Cache.t -> ?cap:int -> Pool.t -> Objtype.t -> Analysis.level
(** The upward scans of [Numbers], driven by {!search}. *)

val analyze : ?cache:Cache.t -> ?cap:int -> Pool.t -> Objtype.t -> Analysis.t
(** [Numbers.analyze ?cap t], parallelized within each decider query.
    Equal (under [Analysis.equal]) to the sequential result, with the
    same certificates. *)

val analyze_all : ?cache:Cache.t -> ?cap:int -> Pool.t -> Objtype.t list -> Analysis.t list
(** {!analyze} over a batch (e.g. the gallery), sharing one cache so
    repeated types and schedule sets are computed once. *)

val census : ?cache:Cache.t -> ?cap:int -> Pool.t -> Synth.space -> Census.entry list
(** [Census.exhaustive ?cap space] with table indices partitioned across
    the domains and [S(P)] shared through the cache; the histogram is
    identical to the sequential census at any job count.  Default [cap]
    is 4, matching [Census.exhaustive]. *)

val synth_portfolio :
  ?seed:int ->
  ?max_iterations:int ->
  ?restart_every:int ->
  portfolio:int ->
  Pool.t ->
  target:int ->
  Synth.space ->
  Synth.witness option
(** Run [portfolio] hill climbs, seeded [seed, seed + 1, ...], across the
    pool, returning the witness of the lowest-seeded successful climb
    (the same one a sequential first-success scan over the seeds would
    return).  [portfolio = 1] is exactly [Synth.search ?seed]. *)
