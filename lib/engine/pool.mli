(** A small fork-join work pool over OCaml domains.

    The pool owns [jobs - 1] worker domains; the caller's domain is the
    remaining worker, so [jobs = 1] degenerates to plain sequential
    execution with no domains spawned and no synchronization at all.
    Work is handed out as index ranges of a dense [0 .. total - 1]
    iteration space, claimed chunk by chunk from a shared atomic cursor —
    the deterministic chunked fan-out the engine's searches are built on.

    The pool is *not* reentrant: only one [parallel_for] may be in flight
    at a time, and the body must not itself call into the same pool.
    Submissions are expected from a single owning domain (the one that
    called {!create}). *)

type t

val create : jobs:int -> t
(** Spawn [jobs - 1] worker domains (none when [jobs = 1]).
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val parallel_for : t -> ?chunk:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for pool total f] applies [f lo hi] over disjoint ranges
    covering [0 .. total - 1] ([hi] exclusive), concurrently across the
    pool's domains, and returns when all of [total] has been processed.
    [chunk] bounds the range size handed out per claim (default:
    [total / (8 * jobs)], at least 1).  With [jobs = 1] this is exactly
    [f 0 total] on the calling domain.  If any application raises, one of
    the exceptions is re-raised in the caller after remaining work is
    abandoned. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exception). *)
