(** A small fork-join work pool over OCaml domains.

    The pool owns [jobs - 1] worker domains; the caller's domain is the
    remaining worker, so [jobs = 1] degenerates to plain sequential
    execution with no domains spawned and no synchronization at all.
    Work is handed out as index ranges of a dense [0 .. total - 1]
    iteration space, claimed chunk by chunk from a shared atomic cursor —
    the deterministic chunked fan-out the engine's searches are built on.

    The pool is *not* reentrant: only one [parallel_for] may be in flight
    at a time, and the body must not itself call into the same pool.
    Submissions are expected from a single owning domain (the one that
    called {!create}). *)

type t

exception
  Task_error of { lo : int; hi : int; worker : int; error : exn }
(** A task body raised [error] while processing the chunk [\[lo, hi)].
    [worker] identifies the domain that hit it: [0] is the submitting
    domain, [1 .. jobs - 1] are the pool's workers.  This is what
    {!parallel_for} / {!parallel_for_until} re-raise, so callers can
    report exactly which slice of the iteration space failed. *)

val create : ?obs:Obs.t -> jobs:int -> unit -> t
(** Spawn [jobs - 1] worker domains (none when [jobs = 1]).

    With [obs], the pool feeds the context's metrics: [pool.tasks]
    (submissions), [pool.chunks] (ranges claimed), [pool.abandons]
    (cooperative cancellations and error bailouts that actually dropped
    unclaimed work), and the histogram [pool.chunk_s] (per-chunk busy
    time — worker utilization is its sum over [jobs] times the wall
    clock).  Handles are resolved once at creation; an uninstrumented
    pool pays one [option] match per chunk.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val parallel_for :
  t ->
  ?chunk:int ->
  ?supervisor:Supervise.t ->
  ?label:string ->
  int ->
  (int -> int -> unit) ->
  unit
(** [parallel_for pool total f] applies [f lo hi] over disjoint ranges
    covering [0 .. total - 1] ([hi] exclusive), concurrently across the
    pool's domains, and returns when all of [total] has been processed.
    [chunk] bounds the range size handed out per claim (default:
    [total / (8 * jobs)], at least 1).  With [jobs = 1] the range is
    still walked chunk by chunk on the calling domain.  If any
    application raises, remaining (unclaimed) work is abandoned and the
    failure is re-raised in the caller as {!Task_error}, carrying the
    failing chunk range and worker id.  A recorded error is cleared on
    the *next* submission, not when the failing run returns — the pool
    stays reusable after a failed task (pinned by the test suite).

    With [supervisor], the abort-on-first-exception contract is replaced
    by self-healing: a chunk that raises is retried under the
    supervisor's backoff policy, each attempt re-timed as a chunk, and a
    chunk that exhausts its attempts is {e quarantined} — recorded in the
    supervisor's ledger (with [label] as the context) and skipped, never
    raising {!Task_error} and never abandoning the rest of the range.
    The return value still only reports claim-completeness; callers must
    consult [Supervise.quarantine_count] deltas to learn whether every
    claimed chunk was actually processed.  Chunk bodies must be safe to
    re-run (the engine's are: atomic minimum races and per-index
    [finished] guards are idempotent).  When the supervisor carries a
    watchdog, every worker heartbeats it per attempt and clears it when
    idle; the pool only feeds the watchdog — reacting to a stall (via
    [should_stop]) is the caller's business. *)

val parallel_for_until :
  t ->
  ?chunk:int ->
  ?supervisor:Supervise.t ->
  ?label:string ->
  should_stop:(unit -> bool) ->
  int ->
  (int -> int -> unit) ->
  bool
(** Cooperatively cancellable {!parallel_for}: every domain polls
    [should_stop] before claiming each chunk, and a [true] answer makes
    the whole pool abandon the unclaimed remainder of the range
    (chunks already in flight still finish — the body itself decides how
    promptly to react within a chunk).  Returns [true] when the full
    range was claimed and processed, [false] when the stop signal fired
    while unclaimed work remained — in that case an unspecified tail of
    the iteration space has not been processed, and the caller must
    track per-index completion itself if it needs to know which part
    ran.  [should_stop] is called concurrently from every domain and
    must be thread-safe (a wall-clock deadline or an [Atomic.t] flag).
    Exceptions behave as in {!parallel_for}. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool must not be
    used afterwards. *)

val with_pool : ?obs:Obs.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, and [shutdown] (also on exception). *)
