(** Generic delta debugging (Zeller–Hildebrandt ddmin) over lists.

    Used by {!Inject} to minimize violating schedules, but deliberately
    agnostic: elements are opaque and the caller supplies the interesting
    predicate.  All entry points require [pred] to hold on the input and
    guarantee it holds on the output; {!minimize} additionally guarantees
    the result is {e 1-minimal} — removing any single element breaks the
    predicate.

    The predicate is called many times (O(k²) in the worst case for a
    k-element input); callers that care count invocations themselves by
    wrapping [pred]. *)

val ddmin : pred:('a list -> bool) -> 'a list -> 'a list
(** Classic ddmin: repeatedly try chunks and chunk-complements at
    increasing granularity, restarting whenever a smaller failing input is
    found.  Fast at carving away large irrelevant regions, but the result
    is only guaranteed minimal with respect to the chunkings tried.
    @raise Invalid_argument when [pred] does not hold on the input. *)

val one_minimal : pred:('a list -> bool) -> 'a list -> 'a list
(** Remove single elements until none can be removed: the fixpoint is
    1-minimal.  Quadratic; run it after {!ddmin} has done the bulk work.
    @raise Invalid_argument when [pred] does not hold on the input. *)

val minimize : pred:('a list -> bool) -> 'a list -> 'a list
(** [one_minimal ~pred (ddmin ~pred xs)] — the full pipeline: coarse
    delta-debugging followed by the exhaustive single-element pass, so the
    result both is small and provably cannot lose any one element.
    @raise Invalid_argument when [pred] does not hold on the input. *)
