(** Fault-injection campaigns: deterministic seeded adversary sweeps over
    executable protocols, with automatic counterexample minimization.

    The paper's subject is computation that survives adversarial crash
    schedules; this module turns that adversary into a test harness.  A
    {e campaign} drives each target protocol through a grid of seeded
    adversaries ({!Adversary.random} / {!Adversary.crash_storm} /
    {!Adversary.random_simultaneous} parameterizations × seeds), collects
    {!Checker.consensus} verdicts into a per-protocol matrix, and — on any
    violation — {e shrinks} the recorded schedule to a minimal
    counterexample by delta-debugging over the event list ({!Shrink}),
    revalidating every candidate through {!Adversary.replay} from the same
    initial configuration.

    Everything is deterministic given the grid: the same seeds reproduce
    the same runs, and every reported schedule replays to its reported
    violation. *)

type target = Target : 'st Program.t -> target
(** A protocol with its state type packed away — campaigns only need the
    uniform run/replay/check surface. *)

type adversary_spec =
  | Random of { crash_prob : float }
  | Crash_storm of { period : int }
  | Random_simultaneous of { crash_prob : float; max_crashes : int }
      (** One point of the adversary grid; each is instantiated per seed
          and per process count. *)

val adversary_name : adversary_spec -> string
(** Compact label, e.g. ["random(p=0.30)"] — the key used in report
    cells and findings. *)

type grid = {
  adversaries : adversary_spec list;
  seeds : int list;
  z : int;  (** crash-budget parameter of [E_z^*] *)
  fuel : int;  (** event cap per run *)
  shrink_per_cell : int;
      (** how many violations per (protocol, adversary) cell to shrink
          into findings; further violations are only counted *)
}

val default_grid : ?z:int -> ?fuel:int -> ?shrink_per_cell:int -> seeds:int -> unit -> grid
(** Five adversary parameterizations (two random crash rates, two storm
    periods, one simultaneous), seeds [1 .. seeds], [z = 1],
    [fuel = 2000], one shrunk finding per cell. *)

type finding = {
  protocol : string;
  adversary : string;
  seed : int;
  inputs : int array;
  violation : string;  (** the checker message, e.g. agreement breakage *)
  raw : Sched.t;  (** the executed schedule the adversary produced *)
  shrunk : Sched.t;  (** minimized; replays to the same [violation] *)
  replays : int;  (** replay validations spent shrinking *)
}

type cell = {
  adversary : string;
  runs : int;
  ok : int;
  violations : int;
  incomplete : int;  (** fuel exhausted with no violation *)
}

type protocol_report = {
  name : string;
  nprocs : int;
  cells : cell list;  (** one per adversary spec, in grid order *)
  findings : finding list;
}

type report = protocol_report list

val replay_verdict :
  target -> inputs:int array -> z:int -> fuel:int -> Sched.t -> Sched.t * Checker.verdict
(** Replay a schedule from the initial configuration for [inputs] through
    {!Adversary.replay} under a fresh [E_z^*] budget: returns the schedule
    that actually executed (budget-ineligible crashes are skipped, the run
    stops once everyone has decided) and the consensus verdict of the
    final configuration — the validation primitive shrinking is built on. *)

val shrink :
  target ->
  inputs:int array ->
  z:int ->
  fuel:int ->
  violation:string ->
  Sched.t ->
  Sched.t * int
(** Minimize a violating schedule: {!Shrink.minimize} over the event list
    with "replays to the same checker violation" as the predicate, then
    normalization to executed form.  The result replays to exactly
    [violation] and is 1-minimal — removing any single event loses it.
    Also returns the number of replays spent.
    @raise Invalid_argument when the input schedule does not replay to
    [violation]. *)

val run :
  ?inputs_list:int array list ->
  ?obs:Obs.t ->
  grid:grid ->
  (string * target) list ->
  report
(** Run the whole campaign.  [inputs_list] defaults to all binary input
    vectors for each protocol's process count.  Violations are detected on
    every run's final configuration (also mid-fuel ones: disagreement among
    a decided subset counts), and the first [shrink_per_cell] per cell are
    shrunk into findings.

    With [obs], the campaign emits an [inject.protocol] span per target
    and counts [inject.runs], [inject.violations], [inject.incomplete],
    [inject.findings] and [inject.replays] (shrinking replays, the
    dominant cost) into the context's registry. *)

val total_violations : report -> int
val findings : report -> finding list

val pp_report : Format.formatter -> report -> unit
(** The structured campaign report: per-protocol verdict matrix, then each
    finding with raw and minimal schedules and the seed to reproduce. *)

val report_to_string : report -> string
