type target = Target : 'st Program.t -> target

type adversary_spec =
  | Random of { crash_prob : float }
  | Crash_storm of { period : int }
  | Random_simultaneous of { crash_prob : float; max_crashes : int }

let adversary_name = function
  | Random { crash_prob } -> Printf.sprintf "random(p=%.2f)" crash_prob
  | Crash_storm { period } -> Printf.sprintf "crash-storm(period=%d)" period
  | Random_simultaneous { crash_prob; max_crashes } ->
      Printf.sprintf "simultaneous(p=%.2f,max=%d)" crash_prob max_crashes

let instantiate spec ~seed ~nprocs =
  match spec with
  | Random { crash_prob } -> Adversary.random ~crash_prob ~seed ~nprocs
  | Crash_storm { period } -> Adversary.crash_storm ~period ~seed ~nprocs
  | Random_simultaneous { crash_prob; max_crashes } ->
      Adversary.random_simultaneous ~crash_prob ~max_crashes ~seed ~nprocs

type grid = {
  adversaries : adversary_spec list;
  seeds : int list;
  z : int;
  fuel : int;
  shrink_per_cell : int;
}

let default_grid ?(z = 1) ?(fuel = 2000) ?(shrink_per_cell = 1) ~seeds () =
  {
    adversaries =
      [
        Random { crash_prob = 0.15 };
        Random { crash_prob = 0.3 };
        Crash_storm { period = 2 };
        Crash_storm { period = 3 };
        Random_simultaneous { crash_prob = 0.15; max_crashes = 2 };
      ];
    seeds = List.init seeds (fun i -> i + 1);
    z;
    fuel;
    shrink_per_cell;
  }

type finding = {
  protocol : string;
  adversary : string;
  seed : int;
  inputs : int array;
  violation : string;
  raw : Sched.t;
  shrunk : Sched.t;
  replays : int;
}

type cell = {
  adversary : string;
  runs : int;
  ok : int;
  violations : int;
  incomplete : int;
}

type protocol_report = {
  name : string;
  nprocs : int;
  cells : cell list;
  findings : finding list;
}

type report = protocol_report list

(* Runs the adversary and immediately collapses the existential: callers
   only ever see the verdict, the executed schedule and the outcome. *)
let run_one (Target p) ~pick ~z ~fuel ~inputs =
  let c0 = Config.initial p ~inputs in
  let budget = Budget.counter ~z ~nprocs:p.Program.nprocs in
  let final, executed, out =
    Exec.run_adversary p c0 ~pick:(fun ~decided b -> pick ~decided b) ~budget ~fuel ()
  in
  (Checker.consensus p final, executed, out)

let replay_verdict tgt ~inputs ~z ~fuel sched =
  let adv = Adversary.replay sched in
  let verdict, executed, _ = run_one tgt ~pick:adv ~z ~fuel ~inputs in
  (executed, verdict)

(* Replay is idempotent on executed schedules: every event of an executed
   schedule was applied in order from the same initial configuration, so
   replaying it reproduces the same configurations, the same budget states
   (no skips) and the same early stop.  Shrinking therefore works in the
   executed-schedule space: normalize first, minimize, and the 1-minimal
   result needs no further normalization (an event that would be skipped
   or never reached on replay could be removed without changing the
   verdict, contradicting 1-minimality) — the trailing [normalize] is a
   cheap invariant check, not a second search. *)
let shrink tgt ~inputs ~z ~fuel ~violation sched =
  let replays = ref 0 in
  let verdict_of s =
    incr replays;
    replay_verdict tgt ~inputs ~z ~fuel s
  in
  let pred s = Checker.message (snd (verdict_of s)) = Some violation in
  let normalize s = fst (verdict_of s) in
  if not (pred sched) then
    invalid_arg "Inject.shrink: schedule does not replay to the given violation";
  let rec fix s =
    let s' = Shrink.minimize ~pred s in
    let executed = normalize s' in
    if Sched.length executed < Sched.length s' then fix executed else s'
  in
  let minimal = fix (normalize sched) in
  (minimal, !replays)

let binary_inputs n =
  List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

(* Campaign metrics, resolved once per [run]: inject.runs / violations /
   incomplete / findings count campaign cells, inject.replays counts
   shrinking replays (the dominant cost), and each protocol's sweep gets
   an [inject.protocol] span. *)
type obs_handles = {
  h_runs : Obs.Metrics.Counter.t;
  h_violations : Obs.Metrics.Counter.t;
  h_incomplete : Obs.Metrics.Counter.t;
  h_findings : Obs.Metrics.Counter.t;
  h_replays : Obs.Metrics.Counter.t;
}

let run ?inputs_list ?obs ~grid targets =
  let handles =
    Option.map
      (fun o ->
        {
          h_runs = Obs.counter o "inject.runs";
          h_violations = Obs.counter o "inject.violations";
          h_incomplete = Obs.counter o "inject.incomplete";
          h_findings = Obs.counter o "inject.findings";
          h_replays = Obs.counter o "inject.replays";
        })
      obs
  in
  let count f = Option.iter (fun h -> Obs.Metrics.Counter.incr (f h)) handles in
  List.map
    (fun (name, (Target p as tgt)) ->
      Obs.with_span ?obs "inject.protocol" ~attrs:[ ("protocol", name) ]
      @@ fun () ->
      let nprocs = p.Program.nprocs in
      let inputs_list =
        match inputs_list with Some l -> l | None -> binary_inputs nprocs
      in
      let findings = ref [] in
      let cells =
        List.map
          (fun spec ->
            let adversary = adversary_name spec in
            let runs = ref 0 and ok = ref 0 and violations = ref 0 in
            let incomplete = ref 0 in
            let shrunk_here = ref 0 in
            List.iter
              (fun seed ->
                List.iter
                  (fun inputs ->
                    incr runs;
                    count (fun h -> h.h_runs);
                    let adv = instantiate spec ~seed ~nprocs in
                    let verdict, executed, out =
                      run_one tgt ~pick:adv ~z:grid.z ~fuel:grid.fuel ~inputs
                    in
                    match verdict with
                    | Checker.Violation violation ->
                        incr violations;
                        count (fun h -> h.h_violations);
                        if !shrunk_here < grid.shrink_per_cell then begin
                          incr shrunk_here;
                          let shrunk, replays =
                            shrink tgt ~inputs ~z:grid.z ~fuel:grid.fuel ~violation
                              executed
                          in
                          count (fun h -> h.h_findings);
                          Option.iter
                            (fun h -> Obs.Metrics.Counter.add h.h_replays replays)
                            handles;
                          findings :=
                            {
                              protocol = name;
                              adversary;
                              seed;
                              inputs;
                              violation;
                              raw = executed;
                              shrunk;
                              replays;
                            }
                            :: !findings
                        end
                    | Checker.Ok ->
                        if out.Exec.all_decided then incr ok
                        else begin
                          incr incomplete;
                          count (fun h -> h.h_incomplete)
                        end)
                  inputs_list)
              grid.seeds;
            {
              adversary;
              runs = !runs;
              ok = !ok;
              violations = !violations;
              incomplete = !incomplete;
            })
          grid.adversaries
      in
      { name; nprocs; cells; findings = List.rev !findings })
    targets

let total_violations report =
  List.fold_left
    (fun acc p -> List.fold_left (fun acc c -> acc + c.violations) acc p.cells)
    0 report

let findings report = List.concat_map (fun p -> p.findings) report

let pp_inputs ppf inputs =
  Array.iter (fun i -> Format.pp_print_int ppf i) inputs

let pp_finding ppf f =
  Format.fprintf ppf
    "@[<v 2>finding: %s under %s, seed %d, inputs %a@,\
     violation: %s@,\
     raw schedule  (%2d events): %s@,\
     minimal       (%2d events): %s@,\
     shrinking replays: %d@]"
    f.protocol f.adversary f.seed pp_inputs f.inputs f.violation
    (Sched.length f.raw) (Sched.to_string f.raw)
    (Sched.length f.shrunk) (Sched.to_string f.shrunk) f.replays

let pp_report ppf report =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun p ->
      Format.fprintf ppf "== %s (%d processes) ==@," p.name p.nprocs;
      Format.fprintf ppf "  %-28s %6s %6s %6s %11s@," "adversary" "runs" "ok"
        "viol" "incomplete";
      List.iter
        (fun c ->
          Format.fprintf ppf "  %-28s %6d %6d %6d %11d@," c.adversary c.runs c.ok
            c.violations c.incomplete)
        p.cells;
      List.iter (fun f -> Format.fprintf ppf "  %a@," pp_finding f) p.findings;
      Format.fprintf ppf "@,")
    report;
  Format.pp_close_box ppf ()

let report_to_string report = Format.asprintf "%a" pp_report report
