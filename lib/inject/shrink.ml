(* Delta debugging over plain lists; see shrink.mli for the contract. *)

let require_pred ~who ~pred xs =
  if not (pred xs) then
    invalid_arg (Printf.sprintf "Shrink.%s: predicate does not hold on the input" who)

(* Split into [n] contiguous chunks of near-equal size (the first
   [len mod n] chunks get the extra element).  [n <= len]. *)
let chunks n xs =
  let len = List.length xs in
  let base = len / n and extra = len mod n in
  let rec take k xs =
    if k = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let taken, left = take (k - 1) rest in
          (x :: taken, left)
  in
  let rec go i xs =
    if i >= n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size xs in
      chunk :: go (i + 1) rest
  in
  go 0 xs

let complements parts =
  List.mapi (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) parts)) parts

let ddmin ~pred xs =
  require_pred ~who:"ddmin" ~pred xs;
  let rec go xs n =
    let len = List.length xs in
    if len <= 1 then xs
    else
      let n = min n len in
      let parts = chunks n xs in
      match List.find_opt pred parts with
      | Some smaller -> go smaller 2
      | None -> (
          match if n > 2 then List.find_opt pred (complements parts) else None with
          | Some smaller -> go smaller (max 2 (n - 1))
          | None -> if n < len then go xs (min len (2 * n)) else xs)
  in
  go xs 2

let one_minimal ~pred xs =
  require_pred ~who:"one_minimal" ~pred xs;
  let rec pass xs =
    let len = List.length xs in
    let rec try_remove i =
      if i >= len then None
      else
        let candidate = List.filteri (fun j _ -> j <> i) xs in
        if pred candidate then Some candidate else try_remove (i + 1)
    in
    match try_remove 0 with Some smaller -> pass smaller | None -> xs
  in
  pass xs

let minimize ~pred xs = one_minimal ~pred (ddmin ~pred xs)
