(* Supervision: retry with capped, deterministically jittered backoff;
   poison quarantine; heartbeat watchdog; seeded chaos injection.  All
   randomness is a pure function of (seed, chunk key, attempt) through a
   fresh [Random.State] — the same discipline as the adversary RNG — so
   supervised runs replay bit-identically. *)

(* [Random.State.make [| seed; key; ... |]] is deterministic but
   expensive enough to matter only off the hot path: it is touched on
   failures and backoffs, never on healthy chunks. *)
let uniform ~salt ~seed ~key ~attempt =
  Random.State.float (Random.State.make [| salt; seed; key; attempt |]) 1.0

module Policy = struct
  type t = {
    max_attempts : int;
    base_backoff : float;
    max_backoff : float;
    jitter : float;
    seed : int;
  }

  let validate t =
    if t.max_attempts < 1 then invalid_arg "Supervise.Policy: max_attempts must be >= 1";
    if t.base_backoff < 0.0 || t.max_backoff < 0.0 then
      invalid_arg "Supervise.Policy: backoffs must be nonnegative";
    if t.jitter < 0.0 || t.jitter > 1.0 then
      invalid_arg "Supervise.Policy: jitter must be in [0, 1]";
    t

  let default =
    { max_attempts = 3; base_backoff = 0.01; max_backoff = 0.25; jitter = 0.5; seed = 0 }

  let v ?(max_attempts = default.max_attempts) ?(base_backoff = default.base_backoff)
      ?(max_backoff = default.max_backoff) ?(jitter = default.jitter)
      ?(seed = default.seed) () =
    validate { max_attempts; base_backoff; max_backoff; jitter; seed }

  let backoff t ~key ~attempt =
    let doubled = t.base_backoff *. (2.0 ** float_of_int (attempt - 1)) in
    let capped = Float.min t.max_backoff doubled in
    if t.jitter = 0.0 then capped
    else
      let u = uniform ~salt:0x6a17 ~seed:t.seed ~key ~attempt in
      capped *. (1.0 -. (t.jitter *. u))
end

module Chaos = struct
  type t = { rate : float; seed : int; attempts : int }

  exception Injected of { key : int; attempt : int }

  let () =
    Printexc.register_printer (function
      | Injected { key; attempt } ->
          Some (Printf.sprintf "Supervise.Chaos.Injected { key = %d; attempt = %d }" key attempt)
      | _ -> None)

  let create ?(attempts = 1) ~rate ~seed () =
    if rate < 0.0 || rate > 1.0 then invalid_arg "Supervise.Chaos: rate must be in [0, 1]";
    if attempts < 1 then invalid_arg "Supervise.Chaos: attempts must be >= 1";
    { rate; seed; attempts }

  (* The draw depends only on the chunk key, so a chunk picked as a
     victim fails on every one of its first [attempts] attempts — the
     deterministic "fail attempts 1..k-1, succeed on k" schedule the
     retry tests pin. *)
  let fires t ~key ~attempt =
    attempt <= t.attempts && uniform ~salt:0xc405 ~seed:t.seed ~key ~attempt:0 < t.rate
end

module Watchdog = struct
  type t = {
    interval : float;
    now : unit -> float;
    (* [last.(w) >= 0.] means worker [w] is busy since that beat; [-1.]
       is idle.  Atomic floats keep cross-domain reads well-defined. *)
    last : float Atomic.t array;
    c_trips : Obs.Metrics.Counter.t;
  }

  let create ?obs ?(now = Obs.Clock.now) ~interval ~jobs () =
    if interval <= 0.0 then invalid_arg "Supervise.Watchdog: interval must be positive";
    if jobs < 1 then invalid_arg "Supervise.Watchdog: jobs must be >= 1";
    let m = match obs with Some o -> Obs.metrics o | None -> Obs.Metrics.create () in
    {
      interval;
      now;
      last = Array.init jobs (fun _ -> Atomic.make (-1.0));
      c_trips = Obs.Metrics.counter m "supervise.watchdog_trips";
    }

  let interval t = t.interval

  let beat t ~worker =
    if worker >= 0 && worker < Array.length t.last then
      Atomic.set t.last.(worker) (t.now ())

  let clear t ~worker =
    if worker >= 0 && worker < Array.length t.last then Atomic.set t.last.(worker) (-1.0)

  let stalled t =
    let horizon = t.now () -. t.interval in
    Array.exists
      (fun a ->
        let b = Atomic.get a in
        b >= 0.0 && b < horizon)
      t.last

  let trip t =
    Obs.Metrics.Counter.incr t.c_trips;
    Array.iter (fun a -> Atomic.set a (-1.0)) t.last

  let trips t = Obs.Metrics.Counter.value t.c_trips
end

type quarantine = {
  q_context : string;
  q_lo : int;
  q_hi : int;
  q_attempts : int;
  q_error : string;
}

type t = {
  policy : Policy.t;
  chaos : Chaos.t option;
  wd : Watchdog.t option;
  mutex : Mutex.t;
  mutable records : quarantine list;  (* newest first *)
  c_retries : Obs.Metrics.Counter.t;
  c_quarantined : Obs.Metrics.Counter.t;
}

let create ?(policy = Policy.default) ?chaos ?watchdog ?obs () =
  ignore (Policy.validate policy);
  let m = match obs with Some o -> Obs.metrics o | None -> Obs.Metrics.create () in
  {
    policy;
    chaos;
    wd = watchdog;
    mutex = Mutex.create ();
    records = [];
    c_retries = Obs.Metrics.counter m "supervise.retries";
    c_quarantined = Obs.Metrics.counter m "supervise.quarantined";
  }

let policy t = t.policy
let watchdog t = t.wd
let retries t = Obs.Metrics.Counter.value t.c_retries
let quarantine_count t = Obs.Metrics.Counter.value t.c_quarantined
let quarantined t = Mutex.protect t.mutex (fun () -> List.rev t.records)

let no_heartbeat () = ()

let run_chunk t ?(heartbeat = no_heartbeat) ~context ~run ~lo ~hi () =
  let rec attempt k =
    heartbeat ();
    match
      (match t.chaos with
      | Some c when Chaos.fires c ~key:lo ~attempt:k ->
          raise (Chaos.Injected { key = lo; attempt = k })
      | _ -> ());
      run lo hi
    with
    | () -> true
    | exception e ->
        if k >= t.policy.Policy.max_attempts then begin
          let record =
            {
              q_context = context;
              q_lo = lo;
              q_hi = hi;
              q_attempts = k;
              q_error = Printexc.to_string e;
            }
          in
          Mutex.protect t.mutex (fun () -> t.records <- record :: t.records);
          Obs.Metrics.Counter.incr t.c_quarantined;
          false
        end
        else begin
          Obs.Metrics.Counter.incr t.c_retries;
          Obs.Clock.sleep (Policy.backoff t.policy ~key:lo ~attempt:k);
          attempt (k + 1)
        end
  in
  attempt 1

(* ------------------------------------------------------------------ *)
(* Quarantine report *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let report_json t =
  let wd_trips = match t.wd with Some wd -> Watchdog.trips wd | None -> 0 in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"rcn_quarantine\":1,\"retries\":%d,\"watchdog_trips\":%d,\"quarantined\":["
       (retries t) wd_trips);
  List.iteri
    (fun i q ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"context\":\"%s\",\"lo\":%d,\"hi\":%d,\"attempts\":%d,\"error\":\"%s\"}"
           (json_escape q.q_context) q.q_lo q.q_hi q.q_attempts (json_escape q.q_error)))
    (quarantined t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_report t path =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (report_json t))
