(** Self-healing supervision for the engine's fan-out: per-chunk retries
    with capped exponential backoff and deterministic jitter, a poison
    quarantine for ranges that keep failing, a heartbeat watchdog for
    stalled workers, and a seeded chaos injector to exercise all of it.

    The paper's subject is computation that survives individual
    crash-recovery; this module gives the deciders the same discipline: a
    worker exception no longer aborts a whole census — the chunk is
    retried, and a chunk that fails [max_attempts] times is {e
    quarantined} (recorded and skipped) so the run completes with an
    honestly degraded result instead of dying.  Everything is
    deterministic given the seeds: backoff jitter and injected failures
    are pure functions of (seed, chunk, attempt), never of wall-clock or
    scheduling races, so supervised runs stay reproducible.

    A {!t} is shared by every sweep of an engine run (it is
    mutex-protected and may be hammered from all of a pool's domains);
    its ledger — retry and quarantine counts, quarantine records, watchdog
    trips — accumulates across sweeps and is what [--stats] and
    [--quarantine-report] render. *)

(** Retry policy: how often to retry a failing chunk, and how long to wait
    between attempts. *)
module Policy : sig
  type t = {
    max_attempts : int;
        (** total attempts per chunk before quarantine (>= 1; 1 means
            never retry) *)
    base_backoff : float;  (** seconds before the second attempt *)
    max_backoff : float;  (** cap on the uncapped doubling *)
    jitter : float;
        (** fraction of the delay randomized away: the actual pause is
            [delay * f] with [f] drawn deterministically from
            [\[1 - jitter, 1\]]; [0] disables jitter *)
    seed : int;  (** jitter seed *)
  }

  val default : t
  (** 3 attempts, 10 ms base, 250 ms cap, jitter 0.5, seed 0. *)

  val v :
    ?max_attempts:int ->
    ?base_backoff:float ->
    ?max_backoff:float ->
    ?jitter:float ->
    ?seed:int ->
    unit ->
    t
  (** {!default} with fields overridden.
      @raise Invalid_argument on [max_attempts < 1], negative backoffs,
      or jitter outside [\[0, 1\]]. *)

  val backoff : t -> key:int -> attempt:int -> float
  (** The pause after the [attempt]-th failure of the chunk starting at
      [key]: [base_backoff * 2^(attempt - 1)], capped at [max_backoff],
      then jittered.  A pure function of [(seed, key, attempt)] — two runs
      of the same supervised workload sleep identically. *)
end

(** Deterministic failure injection, for tests, smokes and benches: a
    seeded predicate deciding which (chunk, attempt) pairs to fail.  The
    injected exception is raised {e before} the chunk body runs, so a
    recovered run's results are bit-identical to a failure-free one. *)
module Chaos : sig
  type t

  exception Injected of { key : int; attempt : int }

  val create : ?attempts:int -> rate:float -> seed:int -> unit -> t
  (** Fail each chunk independently with probability [rate], on its first
      [attempts] attempts (default 1 — fail once, then recover; set
      [attempts >= Policy.max_attempts] to force quarantine).  The
      per-chunk draw reuses the seeded-[Random.State] discipline of the
      adversary RNG: a pure function of [(seed, key)].
      @raise Invalid_argument on a rate outside [\[0, 1\]] or
      [attempts < 1]. *)

  val fires : t -> key:int -> attempt:int -> bool
end

(** Stalled-worker detection on [Obs.Clock]: every worker heartbeats as it
    claims work; a worker that is busy but has not beaten for longer than
    [interval] marks the watchdog stalled, and the engine reacts by
    cancelling the level and retrying with a smaller chunk size. *)
module Watchdog : sig
  type t

  val create :
    ?obs:Obs.t -> ?now:(unit -> float) -> interval:float -> jobs:int -> unit -> t
  (** [jobs] is the pool size the watchdog tracks (worker ids
      [0 .. jobs - 1]).  [now] defaults to [Obs.Clock.now] ([tests inject
      a fake clock]).  With [obs], trips are counted in that registry
      under [supervise.watchdog_trips].  The interval should comfortably
      exceed both the expected chunk time and [Policy.max_backoff],
      otherwise healthy slow chunks look stalled.
      @raise Invalid_argument on [interval <= 0] or [jobs < 1]. *)

  val interval : t -> float

  val beat : t -> worker:int -> unit
  (** The worker is alive and starting (an attempt of) a chunk. *)

  val clear : t -> worker:int -> unit
  (** The worker finished its chunk and is idle; idle workers never count
      as stalled. *)

  val stalled : t -> bool
  (** Some worker is busy and last beat more than [interval] ago. *)

  val trip : t -> unit
  (** Record a confirmed stall (counts [supervise.watchdog_trips]) and
      reset every worker to idle, so the retried sweep starts from a
      clean slate instead of instantly re-tripping. *)

  val trips : t -> int
end

type quarantine = {
  q_context : string;  (** which sweep the chunk belonged to *)
  q_lo : int;
  q_hi : int;  (** the poisoned candidate-rank range [\[lo, hi)] *)
  q_attempts : int;  (** attempts spent before giving up *)
  q_error : string;  (** printed form of the last exception *)
}

type t

val create :
  ?policy:Policy.t ->
  ?chaos:Chaos.t ->
  ?watchdog:Watchdog.t ->
  ?obs:Obs.t ->
  unit ->
  t
(** A fresh supervisor.  With [obs], its ledger counters live in that
    registry ([supervise.retries], [supervise.quarantined]) and so appear
    in the CLI [--stats] export; otherwise a private registry backs the
    accessors. *)

val policy : t -> Policy.t
val watchdog : t -> Watchdog.t option

val run_chunk :
  t ->
  ?heartbeat:(unit -> unit) ->
  context:string ->
  run:(int -> int -> unit) ->
  lo:int ->
  hi:int ->
  unit ->
  bool
(** Run [run lo hi] under the retry policy: on an exception (including
    injected chaos), wait out the backoff and retry, up to
    [policy.max_attempts] total attempts; after the last failure the range
    is quarantined (recorded, counted, and skipped) and the call returns
    [false].  [true] means the chunk eventually succeeded.  [heartbeat]
    (default no-op) is invoked at the start of every attempt — the pool
    wires it to {!Watchdog.beat}.  Thread-safe; the retry sleep blocks
    only the calling domain.  Chunk bodies must therefore be safe to
    re-run: engine sweeps are (atomic minimum races and
    per-index [finished] guards are idempotent), but throughput counters
    may count retried work twice. *)

val retries : t -> int
(** Total retried attempts (the [supervise.retries] counter). *)

val quarantine_count : t -> int
(** Ranges quarantined so far — cheap, for before/after delta checks
    around one sweep. *)

val quarantined : t -> quarantine list
(** Quarantine records, in the order they were recorded. *)

val report_json : t -> string
(** The machine-readable quarantine report: one line
    [{"rcn_quarantine":1,"retries":..,"watchdog_trips":..,
    "quarantined":[{"context":..,"lo":..,"hi":..,"attempts":..,
    "error":..},...]}] with a trailing newline. *)

val write_report : t -> string -> unit
(** Write {!report_json} to a file (truncating). *)
