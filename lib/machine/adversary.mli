(** Adversaries: event pickers for {!Exec.run_adversary}.

    An adversary is consulted with the current decision vector and the
    crash-budget counter; it must only propose crashes the counter allows
    (use {!Budget.may_crash}). *)

type t = decided:bool array -> Budget.counter -> Sched.event option

val round_robin : nprocs:int -> t
(** Steps undecided processes cyclically; never crashes anyone.  Returns
    [None] when everyone has decided. *)

val replay : Sched.t -> t
(** Replays a fixed schedule, then stops.  Budget-violating crashes in the
    schedule are skipped. *)

val random : ?crash_prob:float -> seed:int -> nprocs:int -> t
(** Seeded random adversary: each turn picks a uniformly random undecided
    process to step, or — with probability [crash_prob] (default 0.2),
    when the budget allows — crashes a random crash-eligible process
    (decided processes included: crashing a decided process is legal in
    the model and resets it). *)

val crash_storm : ?period:int -> seed:int -> nprocs:int -> t
(** Round-robin stepping, but every [period] (default 3) events attempts to
    crash the process with the most budget headroom — a stress adversary for
    recoverable protocols.

    [p_0] is never crashed.  The asymmetry is the paper's, not an
    implementation accident: in the [E_z^*] crash budget the highest-priority
    process is crash-free by definition ([Budget.crash_headroom] is always
    [0] for [p_0], since a process's headroom is financed by the steps of
    {e strictly higher-priority} processes, and nothing ranks above [p_0]).
    The headroom scan here starts at [p = 1] purely as an optimization —
    starting at [p = 0] would be behaviorally identical.  Pinned by the
    test suite. *)

val random_simultaneous :
  ?crash_prob:float -> max_crashes:int -> seed:int -> nprocs:int -> t
(** Adversary for the simultaneous-crash model: random steps, and — with
    probability [crash_prob] (default 0.15), at most [max_crashes] times —
    a [Sched.Crash_all] event resetting every process.  Never issues
    individual crashes, so it ignores the [E_z^*] budget entirely. *)
