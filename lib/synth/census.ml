type entry = { discerning : int; recording : int; count : int }

let space_size (space : Synth.space) =
  let base = space.Synth.num_responses * space.Synth.num_values in
  let cells = space.Synth.num_values * space.Synth.num_rws in
  let rec power acc i =
    if i = 0 then acc
    else if acc > max_int / base then invalid_arg "Census.space_size: overflow"
    else power (acc * base) (i - 1)
  in
  power 1 cells

let genome_of_index (space : Synth.space) index =
  let base = space.Synth.num_responses * space.Synth.num_values in
  let cells = space.Synth.num_values * space.Synth.num_rws in
  let table = Array.make cells (0, 0) in
  let rec fill i rem =
    if i < cells then begin
      let digit = rem mod base in
      table.(i) <- (digit / space.Synth.num_values, digit mod space.Synth.num_values);
      fill (i + 1) (rem / base)
    end
  in
  fill 0 index;
  Synth.of_table space table

let levels ~cap ty =
  (Analysis.level_value (Numbers.max_discerning ~cap ty),
   Analysis.level_value (Numbers.max_recording ~cap ty))

let of_histogram histogram =
  Hashtbl.fold (fun (d, r) count acc -> { discerning = d; recording = r; count } :: acc)
    histogram []
  |> List.sort (fun a b -> compare (a.discerning, a.recording) (b.discerning, b.recording))

let tally ~cap genomes =
  let histogram = Hashtbl.create 64 in
  Seq.iter
    (fun genome ->
      let key = levels ~cap (Synth.to_objtype genome) in
      Hashtbl.replace histogram key (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    genomes;
  of_histogram histogram

let exhaustive ?(cap = 4) space =
  let size = space_size space in
  tally ~cap (Seq.init size (genome_of_index space))

let sample ?(cap = 4) ~seed ~count space =
  let rng = Random.State.make [| seed; count |] in
  tally ~cap (Seq.init count (fun _ -> Synth.random_genome rng space))

let gap_share entries ~levels =
  let total = List.fold_left (fun acc e -> acc + e.count) 0 entries in
  let hit =
    List.fold_left
      (fun acc e -> if (e.discerning, e.recording) = levels then acc + e.count else acc)
      0 entries
  in
  if total = 0 then 0.0 else float_of_int hit /. float_of_int total

let pp ppf entries =
  let total = List.fold_left (fun acc e -> acc + e.count) 0 entries in
  Format.fprintf ppf "@[<v>%-6s %-6s %10s %8s@," "disc" "rec" "count" "share";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-6d %-6d %10d %7.3f%%@," e.discerning e.recording e.count
        (100.0 *. float_of_int e.count /. float_of_int total))
    entries;
  Format.fprintf ppf "total: %d types@]" total
