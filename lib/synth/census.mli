(** A census of the recoverable consensus hierarchy over *all* small
    readable deterministic types: for every transition table in a
    {!Synth.space} (or a random sample of a larger space), determine
    max-discerning and max-recording and histogram the pairs.

    This answers a question the paper provokes but cannot ask without a
    decider: how are consensus numbers and recoverable consensus numbers
    *distributed*, and how rare are gap types?  (Experiment E11.) *)

type entry = {
  discerning : int;  (** level, with the cap standing in for "at least cap" *)
  recording : int;
  count : int;
}

val space_size : Synth.space -> int
(** Number of tables in the space: [(responses * values) ^ (values * rws)].
    @raise Invalid_argument on overflow past [max_int]. *)

val genome_of_index : Synth.space -> int -> Synth.genome
(** The [index]-th table of the space in mixed-radix order — the
    enumeration {!exhaustive} walks, exposed so the engine's parallel
    census can partition indices across domains deterministically. *)

val levels : cap:int -> Objtype.t -> int * int
(** [(max_discerning, max_recording)] truncated at [cap] — the pair
    {!tally} histograms for one type. *)

val of_histogram : (int * int, int) Hashtbl.t -> entry list
(** Sort a [(discerning, recording) -> count] table into entries, the
    shared back end of {!tally} and the engine's parallel census. *)

val exhaustive : ?cap:int -> Synth.space -> entry list
(** Decide every table in the space (use only when {!space_size} is small);
    entries are sorted by (discerning, recording).  Default [cap] is 4. *)

val sample : ?cap:int -> seed:int -> count:int -> Synth.space -> entry list
(** Decide [count] uniformly random tables. *)

val gap_share : entry list -> levels:(int * int) -> float
(** Fraction of the census at the given (discerning, recording) pair. *)

val pp : Format.formatter -> entry list -> unit
