type space = { num_values : int; num_rws : int; num_responses : int }

type genome = { space : space; table : (Objtype.response * Objtype.value) array }

let space_of g = g.space

let check_space space =
  if space.num_values < 2 then invalid_arg "Synth: need at least 2 values";
  if space.num_rws < 2 then invalid_arg "Synth: need at least 2 RMW operations";
  if space.num_responses < 2 then invalid_arg "Synth: need at least 2 responses"

let of_table space table =
  check_space space;
  if Array.length table <> space.num_values * space.num_rws then
    invalid_arg "Synth.of_table: wrong table size";
  Array.iter
    (fun (r, v) ->
      if r < 0 || r >= space.num_responses || v < 0 || v >= space.num_values then
        invalid_arg "Synth.of_table: entry out of range")
    table;
  { space; table = Array.copy table }

let table g = Array.copy g.table

let to_objtype ?(name = "synthesized") g =
  let { num_values; num_rws; num_responses } = g.space in
  (* Ops 0 .. num_rws-1 are the RMW operations; op num_rws is Read, whose
     responses are offset past the RMW responses so the type is readable by
     construction. *)
  Objtype.make ~name ~num_values ~num_ops:(num_rws + 1)
    ~num_responses:(num_responses + num_values)
    ~response_name:(fun r ->
      if r < num_responses then Printf.sprintf "r%d" r
      else Printf.sprintf "=v%d" (r - num_responses))
    ~op_name:(fun o -> if o = num_rws then "read" else Printf.sprintf "rmw%d" o)
    (fun v o ->
      if o = num_rws then (num_responses + v, v) else g.table.((v * num_rws) + o))

let random_genome rng space =
  check_space space;
  {
    space;
    table =
      Array.init (space.num_values * space.num_rws) (fun _ ->
          (Random.State.int rng space.num_responses, Random.State.int rng space.num_values));
  }

let mutate rng g =
  let table = Array.copy g.table in
  let i = Random.State.int rng (Array.length table) in
  table.(i) <-
    (Random.State.int rng g.space.num_responses, Random.State.int rng g.space.num_values);
  { g with table }

let seed_ladder space =
  check_space space;
  (* Embed the team-ladder structure: value 0 = s, 1 = bot, then A-rungs and
     B-rungs split the remaining values.  The first half of the RMW ops act
     as op_0, the rest as op_1; responses 0/1 encode the chain's team. *)
  let v = space.num_values in
  let rungs = max 1 ((v - 2) / 2) in
  let a i = 2 + i and b i = 2 + rungs + i in
  let table = Array.make (v * space.num_rws) (0, min 1 (v - 1)) in
  let set value op entry = table.((value * space.num_rws) + op) <- entry in
  let bot = min 1 (v - 1) in
  for op = 0 to space.num_rws - 1 do
    let team = if op < space.num_rws / 2 then 0 else 1 in
    if v > 2 then
      set 0 op (team, if team = 0 then a 0 else if v > 2 + rungs then b 0 else a 0);
    set bot op (0, bot);
    for i = 0 to rungs - 1 do
      if a i < v then set (a i) op (0, if i + 1 < rungs && a (i + 1) < v then a (i + 1) else bot);
      if b i < v then set (b i) op (1, if i + 1 < rungs && b (i + 1) < v then b (i + 1) else bot)
    done
  done;
  { space; table }

let seed_crossing space =
  check_space space;
  if space.num_values < 5 || space.num_rws < 4 || space.num_responses < 5 then
    invalid_arg "Synth.seed_crossing: need at least 5 values, 4 RMW ops, 5 responses";
  (* Values 0 = u, 1 = A1, 2 = A1c, 3 = B1, 4 = B1c; the first half of the
     RMW ops are A-side, the rest B-side; same-side ops are idle on rungs,
     cross-side ops climb, and a second cross restores u.  Responses encode
     the old value.  Extra values behave like u; see Gallery.x4_witness. *)
  let v = space.num_values in
  let table = Array.make (v * space.num_rws) (0, 0) in
  let set value op entry = table.((value * space.num_rws) + op) <- entry in
  for op = 0 to space.num_rws - 1 do
    let a_side = op < space.num_rws / 2 in
    for value = 0 to v - 1 do
      let next =
        match (min value 4, a_side) with
        | 0, true -> 1
        | 0, false -> 3
        | 1, true -> 1
        | 1, false -> 2
        | 2, true -> 1
        | 2, false -> 0
        | 3, false -> 3
        | 3, true -> 4
        | 4, false -> 3
        | _, _ -> 0
      in
      set value op (min value (space.num_responses - 1), next)
    done
  done;
  { space; table }

let weights = [| 1; 2; 2; 4 |]
let max_fitness = Array.fold_left ( + ) 0 weights

let fitness ~target g =
  if target < 4 then invalid_arg "Synth.fitness: target must be at least 4";
  let ty = to_objtype g in
  let score = ref 0 in
  let pass w cond = if cond then score := !score + w in
  let rec_lo = Decide.is_recording ty ~n:(target - 2) in
  pass weights.(0) rec_lo;
  (* Only pay for the more expensive checks when the cheap ones pass. *)
  if rec_lo then begin
    let rec_hi = Decide.is_recording ty ~n:(target - 1) in
    pass weights.(1) (not rec_hi);
    if not rec_hi then begin
      let disc_lo = Decide.is_discerning ty ~n:(target - 1) in
      pass weights.(2) disc_lo;
      if disc_lo then pass weights.(3) (Decide.is_discerning ty ~n:target)
    end
  end;
  !score

type witness = {
  objtype : Objtype.t;
  discerning_level : int;
  recording_level : int;
  iterations : int;
}

let verify_witness ~target ty =
  Objtype.is_readable ty
  &&
  let disc = Numbers.max_discerning ~cap:(target + 1) ty in
  let record = Numbers.max_recording ~cap:(target + 1) ty in
  Numbers.equal_bound (Numbers.bound_of_level disc) (Numbers.Exact target)
  && Numbers.equal_bound (Numbers.bound_of_level record) (Numbers.Exact (target - 2))

let search ?(seed = 0) ?(max_iterations = 50_000) ?(restart_every = 2_000) ~target space =
  check_space space;
  let rng =
    Random.State.make [| seed; space.num_values; space.num_rws; space.num_responses; target |]
  in
  let evaluations = ref 0 in
  let eval g =
    incr evaluations;
    fitness ~target g
  in
  let seeds =
    ref
      (List.filter_map
         (fun mk -> try Some (mk space) with Invalid_argument _ -> None)
         [ seed_crossing; seed_ladder ])
  in
  let rec climb current current_score stale =
    if !evaluations >= max_iterations then None
    else if current_score = max_fitness then begin
      let ty = to_objtype ~name:(Printf.sprintf "x%d-witness" target) current in
      if verify_witness ~target ty then
        Some
          {
            objtype = ty;
            discerning_level = target;
            recording_level = target - 2;
            iterations = !evaluations;
          }
      else restart ()
    end
    else if stale >= restart_every then restart ()
    else
      let candidate = mutate rng current in
      let s = eval candidate in
      if s > current_score then climb candidate s 0
      else if s = current_score && Random.State.bool rng then climb candidate s (stale + 1)
      else climb current current_score (stale + 1)
  and restart () =
    if !evaluations >= max_iterations then None
    else
      match !seeds with
      | g :: rest ->
          seeds := rest;
          climb g (eval g) 0
      | [] ->
          let g = random_genome rng space in
          climb g (eval g) 0
  in
  restart ()
