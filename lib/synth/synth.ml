type space = { num_values : int; num_rws : int; num_responses : int }

type genome = { space : space; table : (Objtype.response * Objtype.value) array }

let space_of g = g.space

let check_space space =
  if space.num_values < 2 then invalid_arg "Synth: need at least 2 values";
  if space.num_rws < 2 then invalid_arg "Synth: need at least 2 RMW operations";
  if space.num_responses < 2 then invalid_arg "Synth: need at least 2 responses"

let of_table space table =
  check_space space;
  if Array.length table <> space.num_values * space.num_rws then
    invalid_arg "Synth.of_table: wrong table size";
  Array.iter
    (fun (r, v) ->
      if r < 0 || r >= space.num_responses || v < 0 || v >= space.num_values then
        invalid_arg "Synth.of_table: entry out of range")
    table;
  { space; table = Array.copy table }

let table g = Array.copy g.table

let to_objtype ?(name = "synthesized") g =
  let { num_values; num_rws; num_responses } = g.space in
  (* Ops 0 .. num_rws-1 are the RMW operations; op num_rws is Read, whose
     responses are offset past the RMW responses so the type is readable by
     construction. *)
  Objtype.make ~name ~num_values ~num_ops:(num_rws + 1)
    ~num_responses:(num_responses + num_values)
    ~response_name:(fun r ->
      if r < num_responses then Printf.sprintf "r%d" r
      else Printf.sprintf "=v%d" (r - num_responses))
    ~op_name:(fun o -> if o = num_rws then "read" else Printf.sprintf "rmw%d" o)
    (fun v o ->
      if o = num_rws then (num_responses + v, v) else g.table.((v * num_rws) + o))

let random_genome rng space =
  check_space space;
  {
    space;
    table =
      Array.init (space.num_values * space.num_rws) (fun _ ->
          (Random.State.int rng space.num_responses, Random.State.int rng space.num_values));
  }

(* One mutation draw: a table index and a *different* entry for it.
   Rerolling until the entry changes never burns a fitness evaluation on
   an identical genome (a space has at least 2 values and 2 responses,
   so at least 3 other entries always exist). *)
let mutate_draw rng g =
  let i = Random.State.int rng (Array.length g.table) in
  let prev = g.table.(i) in
  let rec draw () =
    let e =
      (Random.State.int rng g.space.num_responses, Random.State.int rng g.space.num_values)
    in
    if e = prev then draw () else e
  in
  (i, draw ())

let mutate rng g =
  let i, e = mutate_draw rng g in
  let table = Array.copy g.table in
  table.(i) <- e;
  { g with table }

(* Orbit-invariant fingerprint of an RMW table: a cheap O(cells) hash
   that is equal on every member of an isomorphism class under
   S_values x S_rws x S_responses.  Per cell it keeps only relabeling-
   invariant features — self-loop flag, the global occurrence count of
   the cell's response, the global in-degree of the cell's successor —
   sorts them within each row (coarser than the one global op
   permutation, hence still invariant), tags rows with their
   within-row distinct-response/successor counts, and hashes the sorted
   multiset of row codes.  Soundness needs invariance only: unequal
   fingerprints prove non-isomorphic, equal fingerprints fall through
   to the exact canonical-digest comparison.  The point is cost: the
   symmetry memo's common case is a *fresh* candidate, and this filter
   decides freshness without running the canonizer (~2us vs ~70-130us
   per Sym.digest on 9..13-value spaces — the dominant cost of the
   whole incremental search loop before the filter existed). *)
let fingerprint space (tbl : (int * int) array) =
  let v = space.num_values and o = space.num_rws in
  let resp_count = Array.make space.num_responses 0 in
  let indeg = Array.make v 0 in
  Array.iter
    (fun (r, y) ->
      resp_count.(r) <- resp_count.(r) + 1;
      indeg.(y) <- indeg.(y) + 1)
    tbl;
  let mix h c = (h * 1000003) + c in
  let cell_codes = Array.make o 0 in
  let row_codes = Array.make v 0 in
  for x = 0 to v - 1 do
    let base = x * o in
    let ndr = ref 0 and ndy = ref 0 in
    for op = 0 to o - 1 do
      let r, y = tbl.(base + op) in
      let fresh_r = ref true and fresh_y = ref true in
      for op' = 0 to op - 1 do
        let r', y' = tbl.(base + op') in
        if r' = r then fresh_r := false;
        if y' = y then fresh_y := false
      done;
      if !fresh_r then incr ndr;
      if !fresh_y then incr ndy;
      cell_codes.(op) <-
        (((Bool.to_int (y = x) * (v * o)) + resp_count.(r)) * ((v * o) + 1)) + indeg.(y)
    done;
    Array.sort compare cell_codes;
    let h = ref (mix !ndr !ndy) in
    Array.iter (fun c -> h := mix !h c) cell_codes;
    row_codes.(x) <- !h
  done;
  Array.sort compare row_codes;
  Array.fold_left mix 0 row_codes

let seed_ladder space =
  check_space space;
  (* Embed the team-ladder structure: value 0 = s, 1 = bot, then A-rungs and
     B-rungs split the remaining values.  The first half of the RMW ops act
     as op_0, the rest as op_1; responses 0/1 encode the chain's team. *)
  let v = space.num_values in
  let rungs = max 1 ((v - 2) / 2) in
  let a i = 2 + i and b i = 2 + rungs + i in
  let table = Array.make (v * space.num_rws) (0, min 1 (v - 1)) in
  let set value op entry = table.((value * space.num_rws) + op) <- entry in
  let bot = min 1 (v - 1) in
  for op = 0 to space.num_rws - 1 do
    let team = if op < space.num_rws / 2 then 0 else 1 in
    if v > 2 then
      set 0 op (team, if team = 0 then a 0 else if v > 2 + rungs then b 0 else a 0);
    set bot op (0, bot);
    for i = 0 to rungs - 1 do
      if a i < v then set (a i) op (0, if i + 1 < rungs && a (i + 1) < v then a (i + 1) else bot);
      if b i < v then set (b i) op (1, if i + 1 < rungs && b (i + 1) < v then b (i + 1) else bot)
    done
  done;
  { space; table }

let seed_crossing space =
  check_space space;
  if space.num_values < 5 || space.num_rws < 4 || space.num_responses < 5 then
    invalid_arg "Synth.seed_crossing: need at least 5 values, 4 RMW ops, 5 responses";
  (* Values 0 = u, 1 = A1, 2 = A1c, 3 = B1, 4 = B1c; the first half of the
     RMW ops are A-side, the rest B-side; same-side ops are idle on rungs,
     cross-side ops climb, and a second cross restores u.  Responses encode
     the old value.  Extra values behave like u; see Gallery.x4_witness. *)
  let v = space.num_values in
  let table = Array.make (v * space.num_rws) (0, 0) in
  let set value op entry = table.((value * space.num_rws) + op) <- entry in
  for op = 0 to space.num_rws - 1 do
    let a_side = op < space.num_rws / 2 in
    for value = 0 to v - 1 do
      let next =
        match (min value 4, a_side) with
        | 0, true -> 1
        | 0, false -> 3
        | 1, true -> 1
        | 1, false -> 2
        | 2, true -> 1
        | 2, false -> 0
        | 3, false -> 3
        | 3, true -> 4
        | 4, false -> 3
        | _, _ -> 0
      in
      set value op (min value (space.num_responses - 1), next)
    done
  done;
  { space; table }

let weights = [| 1; 2; 2; 4 |]
let max_fitness = Array.fold_left ( + ) 0 weights

let fitness ~target g =
  if target < 4 then invalid_arg "Synth.fitness: target must be at least 4";
  let ty = to_objtype g in
  let score = ref 0 in
  let pass w cond = if cond then score := !score + w in
  let rec_lo = Decide.is_recording ty ~n:(target - 2) in
  pass weights.(0) rec_lo;
  (* Only pay for the more expensive checks when the cheap ones pass. *)
  if rec_lo then begin
    let rec_hi = Decide.is_recording ty ~n:(target - 1) in
    pass weights.(1) (not rec_hi);
    if not rec_hi then begin
      let disc_lo = Decide.is_discerning ty ~n:(target - 1) in
      pass weights.(2) disc_lo;
      if disc_lo then pass weights.(3) (Decide.is_discerning ty ~n:target)
    end
  end;
  !score

type witness = {
  objtype : Objtype.t;
  discerning_level : int;
  recording_level : int;
  iterations : int;
}

let verify_witness ~target ty =
  Objtype.is_readable ty
  &&
  let disc = Numbers.max_discerning ~cap:(target + 1) ty in
  let record = Numbers.max_recording ~cap:(target + 1) ty in
  Numbers.equal_bound (Numbers.bound_of_level disc) (Numbers.Exact target)
  && Numbers.equal_bound (Numbers.bound_of_level record) (Numbers.Exact (target - 2))

let default_max_iterations = 50_000
let default_restart_every = 2_000

(* One long-lived kernel + scratch per fitness level, held across the
   whole search.  The climb mutates all levels with [Kernel.patch]
   (cell [i] of the genome table is transition-table cell
   [(i / num_rws, i mod num_rws)] — the Read column is never edited),
   reverts rejected candidates with [Kernel.unpatch], and restarts
   re-seed by bulk-patching the table diff; [table] mirrors what the
   kernels currently encode. *)
type level = { lk : Kernel.t; ls : Kernel.scratch }
type warm = { levels : level array; table : (int * int) array }

let search ?(seed = 0) ?(max_iterations = default_max_iterations)
    ?(restart_every = default_restart_every) ?(incremental = true) ?obs ?on_score
    ~target space =
  check_space space;
  if target < 4 then invalid_arg "Synth.search: target must be at least 4";
  let rng =
    Random.State.make [| seed; space.num_values; space.num_rws; space.num_responses; target |]
  in
  let c_evals = Option.map (fun o -> Obs.counter o "synth.evals") obs in
  let c_skips = Option.map (fun o -> Obs.counter o "synth.sym_skips") obs in
  let bump = function Some c -> Obs.Metrics.Counter.incr c | None -> () in
  (* The per-search symmetry memo: the fitness components quantify over
     every initial value, operation assignment, team and response
     relabeling, so they are orbit invariants of the RMW table under
     S_values x S_rws x S_responses (a table isomorphism extends to the
     induced readable type: the Read column transforms covariantly).
     Candidates whose canonical digest was already scored skip the
     evaluation — in both modes, so trajectories stay aligned. *)
  let symc =
    Sym.make ~values:space.num_values ~ops:space.num_rws ~responses:space.num_responses
  in
  (* Memo buckets keyed by the cheap {!fingerprint}; within a bucket,
     candidates are distinguished by exact canonical digest (computed
     lazily, at most once per evaluated candidate — a fresh candidate
     landing in an empty bucket never pays the canonizer at all).
     Genome tables are never mutated after construction, so bucket
     entries alias them. *)
  let buckets : (int, (string option ref * (int * int) array * int) list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  let digest_of (dg, tbl, _) =
    match !dg with
    | Some d -> d
    | None ->
        let d = Sym.digest symc tbl in
        dg := Some d;
        d
  in
  (* Candidate scorings, evaluated or skipped — the budget [iterations]
     counts both, so a run's cost is bounded either way. *)
  let considered = ref 0 in
  let warm = ref None in
  let cell_of i = (i / space.num_rws, i mod space.num_rws) in
  (* Align the warm kernels with [g] — first call compiles them, later
     calls (restarts) patch the diff. *)
  let sync (g : genome) =
    if incremental then
      match !warm with
      | None ->
          let ty = to_objtype g in
          let levels =
            Array.map
              (fun n ->
                let lk = Kernel.compile ?obs ty ~n in
                { lk; ls = Kernel.scratch lk })
              [| target - 2; target - 1; target |]
          in
          warm := Some { levels; table = Array.copy g.table }
      | Some w ->
          Array.iteri
            (fun i e ->
              if w.table.(i) <> e then begin
                Array.iter
                  (fun l -> ignore (Kernel.patch l.lk l.ls ~cell:(cell_of i) ~entry:e))
                  w.levels;
                w.table.(i) <- e
              end)
            g.table
  in
  (* The fitness cascade of [fitness], decided against the warm kernels.
     [ensure l] brings level [l] up to the candidate being scored —
     levels are patched lazily, at their first consultation, so a
     cascade that short-circuits (or a symmetry skip) never pays the
     patch/unpatch bookkeeping of the levels it does not read. *)
  let fitness_warm ensure =
    let w = match !warm with Some w -> w | None -> assert false in
    let holds i cond =
      ensure i;
      Decide.holds w.levels.(i).lk w.levels.(i).ls cond
    in
    let score = ref 0 in
    let pass w cond = if cond then score := !score + w in
    let rec_lo = holds 0 Kernel.Recording in
    pass weights.(0) rec_lo;
    if rec_lo then begin
      let rec_hi = holds 1 Kernel.Recording in
      pass weights.(1) (not rec_hi);
      if not rec_hi then begin
        let disc_lo = holds 1 Kernel.Discerning in
        pass weights.(2) disc_lo;
        if disc_lo then pass weights.(3) (holds 2 Kernel.Discerning)
      end
    end;
    !score
  in
  let no_ensure (_ : int) = () in
  let score ?(ensure = no_ensure) (g : genome) =
    incr considered;
    let eval () =
      bump c_evals;
      if incremental then fitness_warm ensure else fitness ~target g
    in
    let sc =
      let fp = fingerprint space g.table in
      match Hashtbl.find_opt buckets fp with
      | None ->
          let sc = eval () in
          Hashtbl.add buckets fp (ref [ (ref None, g.table, sc) ]);
          sc
      | Some lst -> (
          let dg = Sym.digest symc g.table in
          match List.find_opt (fun e -> String.equal (digest_of e) dg) !lst with
          | Some (_, _, sc) ->
              bump c_skips;
              sc
          | None ->
              let sc = eval () in
              lst := (ref (Some dg), g.table, sc) :: !lst;
              sc)
    in
    (match on_score with Some f -> f sc | None -> ());
    sc
  in
  let seeds =
    ref
      (List.filter_map
         (fun mk -> try Some (mk space) with Invalid_argument _ -> None)
         [ seed_crossing; seed_ladder ])
  in
  let rec climb (current : genome) current_score stale =
    if !considered >= max_iterations then None
    else if current_score = max_fitness then begin
      let ty = to_objtype ~name:(Printf.sprintf "x%d-witness" target) current in
      if verify_witness ~target ty then
        Some
          {
            objtype = ty;
            discerning_level = target;
            recording_level = target - 2;
            iterations = !considered;
          }
      else restart ()
    end
    else if stale >= restart_every then restart ()
    else begin
      let i, entry = mutate_draw rng current in
      let table = Array.copy current.table in
      table.(i) <- entry;
      let candidate = { current with table } in
      (* Invariant at candidate boundaries: every level encodes
         [w.table] (the accepted genome).  During scoring, level [l]
         additionally carries the candidate's cell edit iff
         [toks.(l) <> None]. *)
      let toks = [| None; None; None |] in
      let ensure l =
        match !warm with
        | Some w when toks.(l) = None ->
            toks.(l) <-
              Some (Kernel.patch w.levels.(l).lk w.levels.(l).ls ~cell:(cell_of i) ~entry)
        | _ -> ()
      in
      let s =
        if incremental then score ~ensure candidate else score candidate
      in
      let accept () =
        if incremental then
          match !warm with
          | Some w ->
              Array.iteri (fun l _ -> ensure l) w.levels;
              w.table.(i) <- entry
          | None -> ()
      in
      let reject () =
        if incremental then
          match !warm with
          | Some w ->
              Array.iteri
                (fun l tok ->
                  match tok with
                  | Some t -> Kernel.unpatch w.levels.(l).lk w.levels.(l).ls t
                  | None -> ())
                toks
          | None -> ()
      in
      if s > current_score then begin
        accept ();
        climb candidate s 0
      end
      else if s = current_score && Random.State.bool rng then begin
        accept ();
        climb candidate s (stale + 1)
      end
      else begin
        reject ();
        climb current current_score (stale + 1)
      end
    end
  and restart () =
    if !considered >= max_iterations then None
    else begin
      let g =
        match !seeds with
        | g :: rest ->
            seeds := rest;
            g
        | [] -> random_genome rng space
      in
      sync g;
      climb g (score g) 0
    end
  in
  restart ()
