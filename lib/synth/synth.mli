(** Synthesis of gap witnesses: readable deterministic types with consensus
    number [n] and recoverable consensus number [n - 2].

    The paper's corollary to Theorem 13 shows DFFR's type [X_n] has exactly
    this gap for every [n >= 4].  The definition of [X_n] lives in DFFR
    (PODC 2022); rather than transcribing it, this module *searches* for a
    witness using the deciders as an oracle: any readable deterministic type
    whose max-discerning level is exactly [n] and max-recording level is
    exactly [n - 2] witnesses the same theorem statement (by Ruppert's
    characterization and by DFFR Theorem 8 + this paper's Theorem 13).

    The search is hill climbing with random restarts over transition tables
    of a fixed shape: [num_values] values, [num_rws] read-modify-write
    operations plus a fixed Read, [num_responses] responses for the RMW
    operations.
    Fitness rewards, in increasing weight: being [(n-2)]-recording, not
    being [(n-1)]-recording, being [(n-1)]-discerning and being
    [n]-discerning.  A candidate scoring full marks is then verified with
    {!verify_witness}.  (Note that a full-marks candidate cannot be
    [(n+1)]-discerning: by DFFR's Theorem "readable with consensus number
    [m] implies [(m-2)]-recording", [(n+1)]-discerning together with not
    [(n-1)]-recording would be contradictory.) *)

type space = {
  num_values : int;  (** at least 2 *)
  num_rws : int;  (** read-modify-write operations; at least 2 *)
  num_responses : int;  (** responses of the RMW operations; at least 2 *)
}

type genome
(** A candidate transition table in a given {!space}. *)

val space_of : genome -> space

val to_objtype : ?name:string -> genome -> Objtype.t
(** The represented type: operations [0 .. num_rws - 1] are the RMW
    operations, operation [num_rws] is Read (responses of Read are offset
    beyond [num_responses] and decode injectively, so the result is
    readable by construction). *)

val of_table : space -> (Objtype.response * Objtype.value) array -> genome
(** Table in row-major order: entry [v * num_rws + op] gives (response,
    value) of RMW operation [op] on value [v].
    @raise Invalid_argument on dimension or range errors. *)

val table : genome -> (Objtype.response * Objtype.value) array

val random_genome : Random.State.t -> space -> genome
val mutate : Random.State.t -> genome -> genome
(** One random table entry replaced with a random {e different}
    (response, value) — the draw rerolls until the entry changes, so a
    mutation never reproduces its argument. *)

val seed_ladder : space -> genome
(** A deterministic seed: the team-ladder transition structure embedded in
    the space (gap 1 — a good starting point for the climb to gap 2). *)

val seed_crossing : space -> genome
(** A deterministic seed embedding the two-sided idle/cross/restore pattern
    of the verified [Gallery.x4_witness] (requires [num_values >= 5] and
    [num_rws >= 4]); from this seed the search succeeds immediately at
    target 4, demonstrating the space is not empty.
    @raise Invalid_argument if the space is too small. *)

val fitness : target:int -> genome -> int
(** The weighted score described above; {!max_fitness} when all four
    components hold. *)

val max_fitness : int

type witness = {
  objtype : Objtype.t;
  discerning_level : int;
  recording_level : int;
  iterations : int;  (** fitness evaluations spent *)
}

val default_max_iterations : int
(** 50_000 — {!search}'s default candidate budget. *)

val default_restart_every : int
(** 2_000 — {!search}'s default stale-step restart threshold. *)

val search :
  ?seed:int ->
  ?max_iterations:int ->
  ?restart_every:int ->
  ?incremental:bool ->
  ?obs:Obs.t ->
  ?on_score:(int -> unit) ->
  target:int ->
  space ->
  witness option
(** Hill-climb until a verified witness is found or [max_iterations]
    (default {!default_max_iterations}) candidates have been scored.
    [restart_every] (default {!default_restart_every}) non-improving
    steps trigger a restart from a fresh random genome (the deterministic
    seeds are used for the first climbs).

    With [incremental] (the default), the search is a warm-start
    neighborhood search: one long-lived [Kernel.t] + scratch per fitness
    level ([target - 2 .. target]) is held across the whole run, each
    mutation is applied as a [Kernel.patch] (and a rejected one reverted
    with [Kernel.unpatch]), restarts re-seed by bulk patch, and the
    delta-invalidated evaluation memos carry over between candidates.
    [~incremental:false] recompiles kernels per fitness call — the
    ablation baseline.  Both modes draw identically from the RNG and
    score identical candidate sequences, so at a fixed seed the fitness
    trajectory (observable via [on_score], called with every candidate's
    score in order) and the result are bit-identical — enforced by bench
    e22 and the test suite.

    Candidates whose RMW table is isomorphic (under value/op/response
    relabeling, [Sym]) to one already scored in this search skip the
    evaluation and replay the memoized score — sound because both
    fitness components are orbit invariants.  [obs] resolves the
    counters [synth.evals] (fitness evaluations actually run),
    [synth.sym_skips] (candidates served by the symmetry memo) and the
    kernel's [kernel.patches] / [kernel.masks_invalidated] /
    [kernel.masks_reused].

    @raise Invalid_argument when [target < 4] or the space is degenerate. *)

val verify_witness : target:int -> Objtype.t -> bool
(** Readable, max-discerning exactly [target], max-recording exactly
    [target - 2] — checked with {!Numbers} at cap [target + 1]. *)
