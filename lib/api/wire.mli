(** A tiny JSON value type with a {e canonical} printer and a strict
    parser — the whole wire format of the serve protocol, hand-rolled on
    purpose: the repo vendors no JSON library, and the protocol needs a
    printer whose output is a pure function of the value (no whitespace,
    fields in the order the codec emits them, floats printed with enough
    digits to round-trip bit-exactly).  Canonicality is what makes the
    content-addressed store's byte-identical-replay guarantee checkable:
    [to_string (of_string s |> Result.get_ok) = s] for every string this
    module printed (pinned by the codec round-trip property tests). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** field order is significant: the printer emits fields exactly as
          given, and the codecs always build objects in their pinned wire
          order *)

val to_string : t -> string
(** Canonical rendering: no whitespace; strings escaped minimally
    (the double quote, the backslash, and control characters as
    [\b \t \n \f \r] or [\u00XX]);
    floats via [%.17g] with [".0"] appended when the result would read
    back as an integer, so [Float] round-trips as [Float]; [Int] as a
    plain decimal.  Non-finite floats raise [Invalid_argument] — JSON
    cannot carry them and the protocol never needs to. *)

val of_string : string -> (t, string) result
(** Strict parser for RFC 8259 JSON texts (whitespace between tokens is
    accepted, so hand-written requests work too).  Numbers containing
    [.], [e] or [E] parse as [Float]; the rest as [Int] (falling back to
    [Float] past [max_int]).  Trailing garbage after the value is an
    error. *)

(** {2 Accessors} — total, result-returning, for decoding objects. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** Accepts both [Float] and [Int] (a canonical float that happens to be
    integral still decodes where a float is expected). *)

val to_bool : t -> (bool, string) result
val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result

val field : t -> string -> (t, string) result
(** [member], with a "missing field" error naming the key. *)

val opt_field : t -> string -> (t -> ('a, string) result) -> ('a option, string) result
(** [Null] and absent both decode to [None]. *)
