(* The serializable Request/Response API.  Field orders below are the
   wire format — pinned by golden files in the test suite — so codecs
   always build their objects explicitly, never by patching. *)

let ( let* ) = Result.bind

let opt_json encode = function None -> Wire.Null | Some v -> encode v

(* ------------------------------------------------------------------ *)

module Config = struct
  type t = {
    jobs : int;
    cap : int;
    deadline : float option;
    kernel : Kernel.mode;
    retries : int option;
    heartbeat : float option;
    chaos_rate : float option;
    chaos_seed : int;
    chaos_attempts : int;
    sym : bool;
    incremental : bool;
  }

  let default =
    {
      jobs = 1;
      cap = 5;
      deadline = None;
      kernel = Kernel.Trie;
      retries = None;
      heartbeat = None;
      chaos_rate = None;
      chaos_seed = 0;
      chaos_attempts = 1;
      sym = false;
      incremental = true;
    }

  let v ?(jobs = 1) ?(cap = 5) ?deadline ?(kernel = Kernel.Trie) ?retries ?heartbeat
      ?chaos_rate ?(chaos_seed = 0) ?(chaos_attempts = 1) ?(sym = false)
      ?(incremental = true) () =
    { jobs; cap; deadline; kernel; retries; heartbeat; chaos_rate; chaos_seed;
      chaos_attempts; sym; incremental }

  let validate t =
    if t.jobs < 0 then Error "jobs must be nonnegative"
    else if t.cap < 2 then Error "cap must be at least 2"
    else if (match t.retries with Some k -> k < 1 | None -> false) then
      Error "retries must be at least 1"
    else if (match t.heartbeat with Some s -> s <= 0.0 | None -> false) then
      Error "heartbeat must be positive"
    else if (match t.chaos_rate with Some p -> p < 0.0 || p > 1.0 | None -> false)
    then Error "chaos_rate must be within [0, 1]"
    else if t.chaos_attempts < 1 then Error "chaos_attempts must be at least 1"
    else Ok ()

  let wants_supervision t =
    t.retries <> None || t.heartbeat <> None || t.chaos_rate <> None

  let supervisor t ~obs ~jobs =
    if not (wants_supervision t) then None
    else
      let policy =
        match t.retries with
        | None -> Supervise.Policy.default
        | Some k -> Supervise.Policy.v ~max_attempts:k ()
      in
      let chaos =
        Option.map
          (fun rate ->
            Supervise.Chaos.create ~attempts:t.chaos_attempts ~rate ~seed:t.chaos_seed
              ())
          t.chaos_rate
      in
      let watchdog =
        Option.map
          (fun interval -> Supervise.Watchdog.create ?obs ~interval ~jobs ())
          t.heartbeat
      in
      Some (Supervise.create ~policy ?chaos ?watchdog ?obs ())

  let to_json t =
    Wire.Obj
      [
        ("jobs", Wire.Int t.jobs);
        ("cap", Wire.Int t.cap);
        ("deadline", opt_json (fun s -> Wire.Float s) t.deadline);
        ("kernel", Wire.String (Kernel.mode_to_string t.kernel));
        ("retries", opt_json (fun k -> Wire.Int k) t.retries);
        ("heartbeat", opt_json (fun s -> Wire.Float s) t.heartbeat);
        ("chaos_rate", opt_json (fun p -> Wire.Float p) t.chaos_rate);
        ("chaos_seed", Wire.Int t.chaos_seed);
        ("chaos_attempts", Wire.Int t.chaos_attempts);
        ("sym", Wire.Bool t.sym);
        ("incremental", Wire.Bool t.incremental);
      ]

  let of_json j =
    let* jobs = Result.bind (Wire.field j "jobs") Wire.to_int in
    let* cap = Result.bind (Wire.field j "cap") Wire.to_int in
    let* deadline = Wire.opt_field j "deadline" Wire.to_float in
    let* kernel_s = Result.bind (Wire.field j "kernel") Wire.to_str in
    let* kernel =
      match Kernel.mode_of_string kernel_s with
      | Ok m -> Ok m
      | Error (`Msg m) -> Error m
    in
    let* retries = Wire.opt_field j "retries" Wire.to_int in
    let* heartbeat = Wire.opt_field j "heartbeat" Wire.to_float in
    let* chaos_rate = Wire.opt_field j "chaos_rate" Wire.to_float in
    let* chaos_seed = Result.bind (Wire.field j "chaos_seed") Wire.to_int in
    let* chaos_attempts = Result.bind (Wire.field j "chaos_attempts") Wire.to_int in
    (* [sym] postdates the v1 config wire format: absent means off, so
       configs encoded by older builds still decode. *)
    let* sym =
      match Wire.field j "sym" with Error _ -> Ok false | Ok b -> Wire.to_bool b
    in
    (* [incremental] likewise postdates the wire format, but defaults
       *on*: the warm-start search is the standard path, and a config
       encoded before the flag existed should decode to the same
       behavior it would get today. *)
    let* incremental =
      match Wire.field j "incremental" with
      | Error _ -> Ok true
      | Ok b -> Wire.to_bool b
    in
    Ok
      { jobs; cap; deadline; kernel; retries; heartbeat; chaos_rate; chaos_seed;
        chaos_attempts; sym; incremental }
end

(* ------------------------------------------------------------------ *)
(* shared sub-codecs *)

let space_fields (space : Synth.space) =
  [
    ("values", Wire.Int space.Synth.num_values);
    ("rws", Wire.Int space.Synth.num_rws);
    ("responses", Wire.Int space.Synth.num_responses);
  ]

let space_of_json j =
  let* num_values = Result.bind (Wire.field j "values") Wire.to_int in
  let* num_rws = Result.bind (Wire.field j "rws") Wire.to_int in
  let* num_responses = Result.bind (Wire.field j "responses") Wire.to_int in
  Ok { Synth.num_values; num_rws; num_responses }

let objtype_of_spec spec =
  match Objtype.of_spec_string spec with
  | t -> Ok t
  | exception Objtype.Ill_formed m -> Error (Printf.sprintf "bad type spec: %s" m)

let certificate_to_json (c : Certificate.t) =
  Wire.Obj
    [
      ("spec", Wire.String (Objtype.to_spec_string c.Certificate.objtype));
      ("initial", Wire.Int c.Certificate.initial);
      ( "team",
        Wire.List (Array.to_list (Array.map (fun b -> Wire.Bool b) c.Certificate.team))
      );
      ( "ops",
        Wire.List (Array.to_list (Array.map (fun o -> Wire.Int o) c.Certificate.ops)) );
    ]

let certificate_of_json j =
  let* spec = Result.bind (Wire.field j "spec") Wire.to_str in
  let* objtype = objtype_of_spec spec in
  let* initial = Result.bind (Wire.field j "initial") Wire.to_int in
  let* team_l = Result.bind (Wire.field j "team") Wire.to_list in
  let* ops_l = Result.bind (Wire.field j "ops") Wire.to_list in
  let* team =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        let* b = Wire.to_bool b in
        Ok (b :: acc))
      (Ok []) team_l
  in
  let* ops =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* o = Wire.to_int o in
        Ok (o :: acc))
      (Ok []) ops_l
  in
  let team = Array.of_list (List.rev team) in
  let ops = Array.of_list (List.rev ops) in
  match Certificate.make ~objtype ~initial ~team ~ops with
  | c -> Ok c
  | exception Invalid_argument m -> Error (Printf.sprintf "bad certificate: %s" m)

let status_to_json = function
  | Analysis.Exact -> Wire.String "exact"
  | Analysis.At_least -> Wire.String "at_least"

let status_of_json j =
  let* s = Wire.to_str j in
  match s with
  | "exact" -> Ok Analysis.Exact
  | "at_least" -> Ok Analysis.At_least
  | other -> Error (Printf.sprintf "unknown status %S" other)

let level_to_json (l : Analysis.level) =
  Wire.Obj
    [
      ("value", Wire.Int l.Analysis.value);
      ("status", status_to_json l.Analysis.status);
      ("certificate", opt_json certificate_to_json l.Analysis.certificate);
    ]

let level_of_json j =
  let* value = Result.bind (Wire.field j "value") Wire.to_int in
  let* status = Result.bind (Wire.field j "status") status_of_json in
  let* certificate = Wire.opt_field j "certificate" certificate_of_json in
  Ok { Analysis.value; status; certificate }

let analysis_to_json (a : Analysis.t) =
  Wire.Obj
    [
      ("type_name", Wire.String a.Analysis.type_name);
      ("readable", Wire.Bool a.Analysis.readable);
      ("discerning", level_to_json a.Analysis.discerning);
      ("recording", level_to_json a.Analysis.recording);
      ("elapsed", Wire.Float a.Analysis.elapsed);
    ]

let analysis_of_json j =
  let* type_name = Result.bind (Wire.field j "type_name") Wire.to_str in
  let* readable = Result.bind (Wire.field j "readable") Wire.to_bool in
  let* discerning = Result.bind (Wire.field j "discerning") level_of_json in
  let* recording = Result.bind (Wire.field j "recording") level_of_json in
  let* elapsed = Result.bind (Wire.field j "elapsed") Wire.to_float in
  Ok { Analysis.type_name; readable; discerning; recording; elapsed }

let entry_to_json (e : Census.entry) =
  Wire.Obj
    [
      ("discerning", Wire.Int e.Census.discerning);
      ("recording", Wire.Int e.Census.recording);
      ("count", Wire.Int e.Census.count);
    ]

let entry_of_json j =
  let* discerning = Result.bind (Wire.field j "discerning") Wire.to_int in
  let* recording = Result.bind (Wire.field j "recording") Wire.to_int in
  let* count = Result.bind (Wire.field j "count") Wire.to_int in
  Ok { Census.discerning; recording; count }

let entries_of_json l =
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* e = entry_of_json e in
        Ok (e :: acc))
      (Ok []) l
  in
  Ok (List.rev entries)

let query_digest ty ~cap =
  Digest.to_hex
    (Digest.string (Printf.sprintf "rcn-analyze v1 cap=%d\n%s" cap
                      (Objtype.to_spec_string ty)))

(* The symmetry-aware content address: the key material is the
   *canonical form* of the type's transition table under the
   value/op/response permutation group, with the name and labels
   dropped, so isomorphic queries collide on purpose (their levels are
   equal by orbit invariance; the certificates a hit replays embed the
   stored representative's own spec and replay-validate on their own
   terms).  The default initial value is excluded too: the deciders
   quantify over every initial value, so levels cannot depend on it.  A
   distinct version tag keeps the keyspace disjoint from the exact
   [query_digest]. *)
let query_digest_canonical ty ~cap =
  let v = ty.Objtype.num_values
  and o = ty.Objtype.num_ops
  and r = ty.Objtype.num_responses in
  let s = Sym.make ~values:v ~ops:o ~responses:r in
  let tbl = Array.init (v * o) (fun i -> ty.Objtype.delta (i / o) (i mod o)) in
  Digest.to_hex
    (Digest.string (Printf.sprintf "rcn-analyze v2 cap=%d\n%s" cap (Sym.digest s tbl)))

(* Census and synth content addresses.  Like [query_digest], only the
   parameters a result actually depends on are part of the key —
   jobs/kernel/worker-count are excluded by the engine's (and the
   distributed merge's) determinism guarantees; sampling and synthesis
   are deterministic in their seeds, so seed and budget are included. *)
let census_digest (space : Synth.space) ~cap ~sample ~seed =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "rcn-census v1 values=%d rws=%d responses=%d cap=%d sample=%s seed=%d"
          space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap
          (match sample with None -> "none" | Some n -> string_of_int n)
          seed))

(* v2: the reroll-until-different mutation draw and the per-search
   symmetry memo changed the deterministic trajectory a given seed
   produces, so v1 records describe a search this build no longer
   runs — the bump retires them instead of replaying stale results. *)
let synth_digest (space : Synth.space) ~target ~seed ~iterations ~restart_every
    ~portfolio =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "rcn-synth v2 values=%d rws=%d responses=%d target=%d seed=%d iterations=%d restart_every=%s portfolio=%d"
          space.Synth.num_values space.Synth.num_rws space.Synth.num_responses target
          seed iterations
          (match restart_every with None -> "none" | Some n -> string_of_int n)
          portfolio))

(* The canonical synth store key ([query_digest_canonical]'s sibling).
   A synth request carries no transition table — its space is three
   dimensions — so the orbit quotient that canonizes analyze keys is
   trivial here; what the canonical key collapses is *spellings of the
   same run*: [restart_every = None] and
   [restart_every = Some Synth.default_restart_every] execute
   identically, so they share a record.  A distinct version tag keeps
   the keyspace disjoint from the exact [synth_digest]. *)
let synth_digest_canonical (space : Synth.space) ~target ~seed ~iterations
    ~restart_every ~portfolio =
  let restart_every =
    Some (Option.value restart_every ~default:Synth.default_restart_every)
  in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "rcn-synth v3 values=%d rws=%d responses=%d target=%d seed=%d iterations=%d restart_every=%s portfolio=%d"
          space.Synth.num_values space.Synth.num_rws space.Synth.num_responses target
          seed iterations
          (match restart_every with None -> "none" | Some n -> string_of_int n)
          portfolio))

(* ------------------------------------------------------------------ *)

module Request = struct
  type t =
    | Analyze of { spec : string; config : Config.t }
    | Census of {
        space : Synth.space;
        sample : int option;
        seed : int;
        checkpoint : string option;
        resume : bool;
        durable : bool;
        config : Config.t;
      }
    | Synth of {
        space : Synth.space;
        target : int;
        seed : int;
        iterations : int;
        restart_every : int option;
        portfolio : int;
        config : Config.t;
      }
    | Metrics
    | Ping

  let config = function
    | Analyze { config; _ } | Census { config; _ } | Synth { config; _ } -> Some config
    | Metrics | Ping -> None

  let envelope kind fields =
    Wire.Obj ((("rcn_request", Wire.Int 1) :: ("kind", Wire.String kind) :: fields))

  let to_json = function
    | Analyze { spec; config } ->
        envelope "analyze"
          [ ("spec", Wire.String spec); ("config", Config.to_json config) ]
    | Census { space; sample; seed; checkpoint; resume; durable; config } ->
        envelope "census"
          (space_fields space
          @ [
              ("sample", opt_json (fun n -> Wire.Int n) sample);
              ("seed", Wire.Int seed);
              ("checkpoint", opt_json (fun p -> Wire.String p) checkpoint);
              ("resume", Wire.Bool resume);
              ("durable", Wire.Bool durable);
              ("config", Config.to_json config);
            ])
    | Synth { space; target; seed; iterations; restart_every; portfolio; config } ->
        envelope "synth"
          (space_fields space
          @ [
              ("target", Wire.Int target);
              ("seed", Wire.Int seed);
              ("iterations", Wire.Int iterations);
              ("restart_every", opt_json (fun n -> Wire.Int n) restart_every);
              ("portfolio", Wire.Int portfolio);
              ("config", Config.to_json config);
            ])
    | Metrics -> envelope "metrics" []
    | Ping -> envelope "ping" []

  let of_json j =
    let* tag = Result.bind (Wire.field j "rcn_request") Wire.to_int in
    if tag <> 1 then Error (Printf.sprintf "unsupported rcn_request version %d" tag)
    else
      let* kind = Result.bind (Wire.field j "kind") Wire.to_str in
      match kind with
      | "analyze" ->
          let* spec = Result.bind (Wire.field j "spec") Wire.to_str in
          let* config = Result.bind (Wire.field j "config") Config.of_json in
          Ok (Analyze { spec; config })
      | "census" ->
          let* space = space_of_json j in
          let* sample = Wire.opt_field j "sample" Wire.to_int in
          let* seed = Result.bind (Wire.field j "seed") Wire.to_int in
          let* checkpoint = Wire.opt_field j "checkpoint" Wire.to_str in
          let* resume = Result.bind (Wire.field j "resume") Wire.to_bool in
          let* durable = Result.bind (Wire.field j "durable") Wire.to_bool in
          let* config = Result.bind (Wire.field j "config") Config.of_json in
          Ok (Census { space; sample; seed; checkpoint; resume; durable; config })
      | "synth" ->
          let* space = space_of_json j in
          let* target = Result.bind (Wire.field j "target") Wire.to_int in
          let* seed = Result.bind (Wire.field j "seed") Wire.to_int in
          let* iterations = Result.bind (Wire.field j "iterations") Wire.to_int in
          let* restart_every = Wire.opt_field j "restart_every" Wire.to_int in
          let* portfolio = Result.bind (Wire.field j "portfolio") Wire.to_int in
          let* config = Result.bind (Wire.field j "config") Config.of_json in
          Ok (Synth { space; target; seed; iterations; restart_every; portfolio; config })
      | "metrics" -> Ok Metrics
      | "ping" -> Ok Ping
      | other -> Error (Printf.sprintf "unknown request kind %S" other)

  let to_string t = Wire.to_string (to_json t)
  let of_string s = Result.bind (Wire.of_string s) of_json
end

(* ------------------------------------------------------------------ *)

(* The distributed-census wire protocol: what a worker process exchanges
   with its coordinator over the socketpair (length-prefixed by
   [Serve.Frame]).  Strictly one [reply] per [msg] — the worker always
   writes first, then blocks on the answer — so neither side ever has to
   disambiguate pipelined frames. *)
module Worker = struct
  type msg =
    | Hello of { pid : int }
    | Progress of { lease : int; at : int }
    | Result of { lease : int; lo : int; hi : int; entries : Census.entry list }

  type reply =
    | Assign of { lease : int; lo : int; hi : int; budget : float option }
    | Continue
    | Truncate of { hi : int }
    | Shutdown

  let msg_envelope kind fields =
    Wire.Obj (("rcn_worker", Wire.Int 1) :: ("kind", Wire.String kind) :: fields)

  let msg_to_json = function
    | Hello { pid } -> msg_envelope "hello" [ ("pid", Wire.Int pid) ]
    | Progress { lease; at } ->
        msg_envelope "progress" [ ("lease", Wire.Int lease); ("at", Wire.Int at) ]
    | Result { lease; lo; hi; entries } ->
        msg_envelope "result"
          [
            ("lease", Wire.Int lease);
            ("lo", Wire.Int lo);
            ("hi", Wire.Int hi);
            ("entries", Wire.List (List.map entry_to_json entries));
          ]

  let msg_of_json j =
    let* tag = Result.bind (Wire.field j "rcn_worker") Wire.to_int in
    if tag <> 1 then Error (Printf.sprintf "unsupported rcn_worker version %d" tag)
    else
      let* kind = Result.bind (Wire.field j "kind") Wire.to_str in
      match kind with
      | "hello" ->
          let* pid = Result.bind (Wire.field j "pid") Wire.to_int in
          Ok (Hello { pid })
      | "progress" ->
          let* lease = Result.bind (Wire.field j "lease") Wire.to_int in
          let* at = Result.bind (Wire.field j "at") Wire.to_int in
          Ok (Progress { lease; at })
      | "result" ->
          let* lease = Result.bind (Wire.field j "lease") Wire.to_int in
          let* lo = Result.bind (Wire.field j "lo") Wire.to_int in
          let* hi = Result.bind (Wire.field j "hi") Wire.to_int in
          let* entries_l = Result.bind (Wire.field j "entries") Wire.to_list in
          let* entries = entries_of_json entries_l in
          Ok (Result { lease; lo; hi; entries })
      | other -> Error (Printf.sprintf "unknown worker message kind %S" other)

  let reply_envelope kind fields =
    Wire.Obj (("rcn_worker_reply", Wire.Int 1) :: ("kind", Wire.String kind) :: fields)

  let reply_to_json = function
    | Assign { lease; lo; hi; budget } ->
        (* [budget] postdates the v1 frame format and is encoded only
           when present, so budget-free assignments keep their pinned
           bytes. *)
        reply_envelope "assign"
          ([ ("lease", Wire.Int lease); ("lo", Wire.Int lo); ("hi", Wire.Int hi) ]
          @ match budget with None -> [] | Some s -> [ ("budget", Wire.Float s) ])
    | Continue -> reply_envelope "continue" []
    | Truncate { hi } -> reply_envelope "truncate" [ ("hi", Wire.Int hi) ]
    | Shutdown -> reply_envelope "shutdown" []

  let reply_of_json j =
    let* tag = Result.bind (Wire.field j "rcn_worker_reply") Wire.to_int in
    if tag <> 1 then
      Error (Printf.sprintf "unsupported rcn_worker_reply version %d" tag)
    else
      let* kind = Result.bind (Wire.field j "kind") Wire.to_str in
      match kind with
      | "assign" ->
          let* lease = Result.bind (Wire.field j "lease") Wire.to_int in
          let* lo = Result.bind (Wire.field j "lo") Wire.to_int in
          let* hi = Result.bind (Wire.field j "hi") Wire.to_int in
          let* budget = Wire.opt_field j "budget" Wire.to_float in
          Ok (Assign { lease; lo; hi; budget })
      | "continue" -> Ok Continue
      | "truncate" ->
          let* hi = Result.bind (Wire.field j "hi") Wire.to_int in
          Ok (Truncate { hi })
      | "shutdown" -> Ok Shutdown
      | other -> Error (Printf.sprintf "unknown worker reply kind %S" other)

  let msg_to_string t = Wire.to_string (msg_to_json t)
  let msg_of_string s = Result.bind (Wire.of_string s) msg_of_json
  let reply_to_string t = Wire.to_string (reply_to_json t)
  let reply_of_string s = Result.bind (Wire.of_string s) reply_of_json
end

(* ------------------------------------------------------------------ *)

module Response = struct
  type census_summary = {
    entries : Census.entry list;
    total : int;
    completed : int;
    resumed : int;
    complete : bool;
  }

  type body =
    | Analysis of { analysis : Analysis.t; from_store : bool }
    | Census of census_summary
    | Synth of { witness : Synth.witness option }
    | Metrics of Wire.t
    | Pong
    | Error of { code : int; message : string }

  type t = {
    body : body;
    retries : int;
    watchdog_trips : int;
    quarantined : Supervise.quarantine list;
  }

  let make ?(retries = 0) ?(watchdog_trips = 0) ?(quarantined = []) body =
    { body; retries; watchdog_trips; quarantined }

  let err_invalid = 2
  let err_internal = 70
  let err_storage = 74
  let err_busy = 75

  let error ?(code = err_invalid) message = make (Error { code; message })

  let exit_code t =
    match t.body with
    | Error { code; _ } -> code
    | Synth { witness = None } -> 1
    | Census { complete = false; _ } -> 3
    | _ -> if t.quarantined <> [] then 3 else 0

  (* The census-summary fields double as the store payload for memoized
     census queries ([census_summary_to_json]); keeping one field list
     guarantees a warm store replay is byte-identical to the cold
     response. *)
  let census_fields (c : census_summary) =
    [
      ("entries", Wire.List (List.map entry_to_json c.entries));
      ("total", Wire.Int c.total);
      ("completed", Wire.Int c.completed);
      ("resumed", Wire.Int c.resumed);
      ("complete", Wire.Bool c.complete);
    ]

  let census_summary_to_json c = Wire.Obj (census_fields c)

  let census_summary_of_json j =
    let* entries_l = Result.bind (Wire.field j "entries") Wire.to_list in
    let* entries = entries_of_json entries_l in
    let* total = Result.bind (Wire.field j "total") Wire.to_int in
    let* completed = Result.bind (Wire.field j "completed") Wire.to_int in
    let* resumed = Result.bind (Wire.field j "resumed") Wire.to_int in
    let* complete = Result.bind (Wire.field j "complete") Wire.to_bool in
    Ok { entries; total; completed; resumed; complete }

  let witness_to_json (w : Synth.witness) =
    Wire.Obj
      [
        ("spec", Wire.String (Objtype.to_spec_string w.Synth.objtype));
        ("discerning", Wire.Int w.Synth.discerning_level);
        ("recording", Wire.Int w.Synth.recording_level);
        ("iterations", Wire.Int w.Synth.iterations);
      ]

  let witness_of_json j =
    let* spec = Result.bind (Wire.field j "spec") Wire.to_str in
    let* objtype = objtype_of_spec spec in
    let* discerning_level = Result.bind (Wire.field j "discerning") Wire.to_int in
    let* recording_level = Result.bind (Wire.field j "recording") Wire.to_int in
    let* iterations = Result.bind (Wire.field j "iterations") Wire.to_int in
    Ok { Synth.objtype; discerning_level; recording_level; iterations }

  (* The store payload for memoized synth queries: a no-witness outcome
     is cached too (re-searching cannot find what is not there). *)
  let witness_opt_to_json w = opt_json witness_to_json w

  let witness_opt_of_json = function
    | Wire.Null -> Ok None
    | j -> Result.map Option.some (witness_of_json j)

  let quarantine_to_json (q : Supervise.quarantine) =
    Wire.Obj
      [
        ("context", Wire.String q.Supervise.q_context);
        ("lo", Wire.Int q.Supervise.q_lo);
        ("hi", Wire.Int q.Supervise.q_hi);
        ("attempts", Wire.Int q.Supervise.q_attempts);
        ("error", Wire.String q.Supervise.q_error);
      ]

  let quarantine_of_json j =
    let* q_context = Result.bind (Wire.field j "context") Wire.to_str in
    let* q_lo = Result.bind (Wire.field j "lo") Wire.to_int in
    let* q_hi = Result.bind (Wire.field j "hi") Wire.to_int in
    let* q_attempts = Result.bind (Wire.field j "attempts") Wire.to_int in
    let* q_error = Result.bind (Wire.field j "error") Wire.to_str in
    Ok { Supervise.q_context; q_lo; q_hi; q_attempts; q_error }

  let envelope kind fields t =
    Wire.Obj
      (("rcn_response", Wire.Int 1) :: ("kind", Wire.String kind)
      :: fields
      @ [
          ("retries", Wire.Int t.retries);
          ("watchdog_trips", Wire.Int t.watchdog_trips);
          ("quarantined", Wire.List (List.map quarantine_to_json t.quarantined));
        ])

  let to_json t =
    match t.body with
    | Analysis { analysis; from_store } ->
        envelope "analysis"
          [
            ("from_store", Wire.Bool from_store);
            ("analysis", analysis_to_json analysis);
          ]
          t
    | Census c -> envelope "census" (census_fields c) t
    | Synth { witness } ->
        envelope "synth" [ ("witness", opt_json witness_to_json witness) ] t
    | Metrics stats -> envelope "metrics" [ ("stats", stats) ] t
    | Pong -> envelope "pong" [] t
    | Error { code; message } ->
        envelope "error" [ ("code", Wire.Int code); ("message", Wire.String message) ] t

  let of_json j =
    let* tag = Result.bind (Wire.field j "rcn_response") Wire.to_int in
    if tag <> 1 then Error (Printf.sprintf "unsupported rcn_response version %d" tag)
    else
      let* kind = Result.bind (Wire.field j "kind") Wire.to_str in
      let* retries = Result.bind (Wire.field j "retries") Wire.to_int in
      let* watchdog_trips = Result.bind (Wire.field j "watchdog_trips") Wire.to_int in
      let* quarantined_l = Result.bind (Wire.field j "quarantined") Wire.to_list in
      let* quarantined =
        List.fold_left
          (fun acc q ->
            let* acc = acc in
            let* q = quarantine_of_json q in
            Ok (q :: acc))
          (Ok []) quarantined_l
      in
      let quarantined = List.rev quarantined in
      let* body =
        match kind with
        | "analysis" ->
            let* from_store = Result.bind (Wire.field j "from_store") Wire.to_bool in
            let* analysis = Result.bind (Wire.field j "analysis") analysis_of_json in
            Ok (Analysis { analysis; from_store })
        | "census" ->
            let* c = census_summary_of_json j in
            Ok (Census c)
        | "synth" ->
            let* witness = Wire.opt_field j "witness" witness_of_json in
            Ok (Synth { witness })
        | "metrics" ->
            let* stats = Wire.field j "stats" in
            Ok (Metrics stats)
        | "pong" -> Ok Pong
        | "error" ->
            let* code = Result.bind (Wire.field j "code") Wire.to_int in
            let* message = Result.bind (Wire.field j "message") Wire.to_str in
            Ok (Error { code; message })
        | other -> Error (Printf.sprintf "unknown response kind %S" other)
      in
      Ok { body; retries; watchdog_trips; quarantined }

  let to_string t = Wire.to_string (to_json t)
  let of_string s = Result.bind (Wire.of_string s) of_json

  let quarantine_report t =
    Wire.to_string
      (Wire.Obj
         [
           ("rcn_quarantine", Wire.Int 1);
           ("retries", Wire.Int t.retries);
           ("watchdog_trips", Wire.Int t.watchdog_trips);
           ("quarantined", Wire.List (List.map quarantine_to_json t.quarantined));
         ])
    ^ "\n"
end
