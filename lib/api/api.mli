(** The unified, serializable Request/Response API of the toolkit.

    One {!Config.t} record replaces the optional-argument sprawl
    ([?jobs ?deadline ?kernel ?retries ?chaos_* ?heartbeat]) that used to
    be threaded through [Engine.analyze]/[census]/[synth_portfolio]; a
    {!Request.t} packages a query (analyze / census / synth / metrics /
    ping) together with its config; a {!Response.t} packages the result,
    the per-request supervision ledger, and the exit-code semantics.  The
    CLI subcommands and the [rcn serve] daemon speak exactly these values
    — a query behaves identically whether it runs in-process or over a
    socket, including its exit code.

    Every type here has a {e canonical} JSON codec on {!Wire}: encoding
    is a pure function of the value (pinned field order, no whitespace,
    bit-exact floats), and [of_* (to_* x)] is the identity.  That
    canonicality is load-bearing: the serve daemon's content-addressed
    store keeps encoded [Analysis.t] bytes, and a store hit must replay
    a byte-identical result.

    Runtime-only values (an [Obs.t] context, a domain pool, an engine
    cache, a prebuilt supervisor) are deliberately {e not} in the config:
    they cannot cross a socket.  They remain ordinary arguments of the
    engine entry points. *)

module Config : sig
  type t = {
    jobs : int;
        (** worker domains; [0] means automatic ([RCN_JOBS] / the host).
            A daemon serves every request from its own pool and ignores
            this field. *)
    cap : int;  (** scan levels up to [cap] (>= 2) *)
    deadline : float option;
        (** wall-clock budget in {e relative} seconds (a wire value has
            no clock origin); each engine entry point resolves it to an
            absolute monotonic deadline once, on entry.  Nonpositive
            means already expired. *)
    kernel : Kernel.mode;
    retries : int option;  (** attempts per chunk before quarantine *)
    heartbeat : float option;  (** watchdog stall interval, seconds *)
    chaos_rate : float option;  (** injected failure probability *)
    chaos_seed : int;
    chaos_attempts : int;
    sym : bool;
        (** symmetry reduction: decide one canonical representative per
            isomorphism class and weight it by its orbit size.  Absent
            on the wire means [false], so v1 configs still decode. *)
    incremental : bool;
        (** warm-start synthesis: hold one kernel + scratch per fitness
            level across the whole climb and apply mutations with
            [Kernel.patch] instead of recompiling per candidate.  The
            fitness trajectory and result are bit-identical either way
            (enforced by bench e22), so this is a pure performance
            switch — [false] is the ablation baseline.  Absent on the
            wire means [true]: configs encoded before the flag existed
            decode to today's standard path. *)
  }

  val default : t
  (** jobs 1, cap 5, no deadline, [Kernel.Trie], no supervision. *)

  val v :
    ?jobs:int ->
    ?cap:int ->
    ?deadline:float ->
    ?kernel:Kernel.mode ->
    ?retries:int ->
    ?heartbeat:float ->
    ?chaos_rate:float ->
    ?chaos_seed:int ->
    ?chaos_attempts:int ->
    ?sym:bool ->
    ?incremental:bool ->
    unit ->
    t
  (** {!default} with fields overridden — the one place optional
      arguments survive, so call sites read like the old signatures. *)

  val validate : t -> (unit, string) result
  (** Range checks a decoded wire config before it reaches the engine:
      [jobs >= 0], [cap >= 2], positive heartbeat, chaos rate in
      [\[0, 1\]], [retries >= 1], [chaos_attempts >= 1]. *)

  val wants_supervision : t -> bool
  (** Any of [retries]/[heartbeat]/[chaos_rate] present. *)

  val supervisor : t -> obs:Obs.t option -> jobs:int -> Supervise.t option
  (** The self-healing layer this config asks for, or [None] when
      {!wants_supervision} is [false].  [jobs] is the resolved pool size
      (the watchdog tracks that many workers).  With [obs = Some _] the
      supervisor's ledger counters land in that registry (the CLI path,
      where one request owns the stats export); [None] gives the
      supervisor a private registry, which is what the daemon wants —
      per-request ledgers that other requests cannot inflate.
      @raise Invalid_argument on out-of-range supervision fields (call
      {!validate} first on untrusted input). *)

  val to_json : t -> Wire.t
  val of_json : Wire.t -> (t, string) result
end

(** {2 Queries} *)

module Request : sig
  type t =
    | Analyze of { spec : string; config : Config.t }
        (** [spec] is a full [Objtype.to_spec_string] serialization —
            self-contained on the wire; the CLI resolves gallery names
            before building the request *)
    | Census of {
        space : Synth.space;
        sample : int option;  (** sample N random tables instead of exhausting *)
        seed : int;  (** sampling seed *)
        checkpoint : string option;
        resume : bool;
        durable : bool;
        config : Config.t;
      }
    | Synth of {
        space : Synth.space;
        target : int;
        seed : int;
        iterations : int;
        restart_every : int option;
        portfolio : int;
        config : Config.t;
      }
    | Metrics  (** the server's [--stats json] block, as a reply *)
    | Ping

  val config : t -> Config.t option
  val to_json : t -> Wire.t
  val of_json : Wire.t -> (t, string) result

  val to_string : t -> string
  (** Canonical single-line JSON, e.g.
      [{"rcn_request":1,"kind":"ping"}]. *)

  val of_string : string -> (t, string) result
end

(** {2 Distributed-census worker protocol}

    The wire messages [lib/dist] exchanges between a census coordinator
    and its worker processes, over a socketpair carrying [Serve.Frame]
    length-prefixed frames.  The protocol is strictly half-duplex from
    the worker's side: the worker writes one {!Worker.msg} and blocks
    until it reads exactly one {!Worker.reply}, so neither side ever has
    to disambiguate pipelined frames, and a worker whose coordinator
    dies sees [EOF]/[EPIPE] at its next exchange and exits.

    Like every codec here, encodings are canonical: pinned field order,
    no whitespace, [of_* (to_* x) = Ok x]. *)

module Worker : sig
  type msg =
    | Hello of { pid : int }  (** the worker's first frame after spawn *)
    | Progress of { lease : int; at : int }
        (** heartbeat: every rank of the lease below [at] is decided;
            renews the lease and gives the coordinator a steal point *)
    | Result of { lease : int; lo : int; hi : int; entries : Census.entry list }
        (** the lease's histogram over exactly [\[lo, hi)] — [hi]
            reflects any {!reply.Truncate} the worker obeyed *)

  type reply =
    | Assign of { lease : int; lo : int; hi : int; budget : float option }
        (** decide ranks [\[lo, hi)] under the given lease id.
            [budget] is the wall-clock seconds remaining in the whole
            census at grant time, resolved once by the coordinator —
            never by the worker, whose (re)spawn time must not restart
            the user's deadline.  Encoded only when present, so
            budget-free assignments keep their pinned v1 bytes. *)
    | Continue  (** heartbeat acknowledged; keep going *)
    | Truncate of { hi : int }
        (** work stealing: stop at [hi] (never below the reported [at]);
            the tail of the range has been re-leased elsewhere *)
    | Shutdown  (** no work left; exit 0 *)

  val msg_to_json : msg -> Wire.t
  val msg_of_json : Wire.t -> (msg, string) result
  val msg_to_string : msg -> string
  val msg_of_string : string -> (msg, string) result
  val reply_to_json : reply -> Wire.t
  val reply_of_json : Wire.t -> (reply, string) result
  val reply_to_string : reply -> string
  val reply_of_string : string -> (reply, string) result
end

(** {2 Results} *)

module Response : sig
  type census_summary = {
    entries : Census.entry list;
    total : int;
    completed : int;
    resumed : int;
    complete : bool;
  }

  type body =
    | Analysis of { analysis : Analysis.t; from_store : bool }
    | Census of census_summary
    | Synth of { witness : Synth.witness option }
    | Metrics of Wire.t  (** the embedded [rcn_stats] object *)
    | Pong
    | Error of { code : int; message : string }

  type t = {
    body : body;
    retries : int;  (** chunk retries healed while serving this request *)
    watchdog_trips : int;
    quarantined : Supervise.quarantine list;
        (** this request's quarantine ledger — what degraded, and why *)
  }

  val make : ?retries:int -> ?watchdog_trips:int -> ?quarantined:Supervise.quarantine list -> body -> t

  val error : ?code:int -> string -> t
  (** An error response; [code] defaults to {!err_invalid}. *)

  val err_invalid : int
  (** [2] — malformed or out-of-range request (the CLI usage-error code). *)

  val err_internal : int
  (** [70] — the engine raised while serving the request. *)

  val err_storage : int
  (** [74] — durable storage failed or is corrupt ([EX_IOERR]): the
      store/ledger/checkpoint raised [Fsio.Io_error] or [Fsio.Corrupt].
      The daemon answers this instead of crashing; the store flips to
      read-only degraded mode and keeps serving unmemoized. *)

  val err_busy : int
  (** [75] — admission control rejected the request (queue full). *)

  val exit_code : t -> int
  (** The one exit-code policy, shared by CLI and daemon clients:
      [Error] carries its own code; a synthesis that found no witness is
      [1]; an incomplete census or any quarantined work is PARTIAL [3];
      everything else is [0]. *)

  val to_json : t -> Wire.t
  val of_json : Wire.t -> (t, string) result
  val to_string : t -> string
  val of_string : string -> (t, string) result

  val quarantine_report : t -> string
  (** The machine-readable per-request quarantine report, in the same
      [{"rcn_quarantine":1,...}] single-line-plus-newline shape as
      [Supervise.report_json] — what [--quarantine-report] writes. *)

  (** {3 Store payloads}

      The canonical bytes the serve store keeps for memoized census and
      synth queries.  [census_summary_to_json] reuses the exact field
      list of the census response envelope, so a warm store replay is
      byte-identical to the cold response. *)

  val census_summary_to_json : census_summary -> Wire.t
  val census_summary_of_json : Wire.t -> (census_summary, string) result

  val witness_opt_to_json : Synth.witness option -> Wire.t
  (** [None] (an exhausted search) encodes as [null] and is cached like
      any other outcome. *)

  val witness_opt_of_json : Wire.t -> (Synth.witness option, string) result
end

(** {2 Analysis codec and content addressing} *)

val analysis_to_json : Analysis.t -> Wire.t
(** Levels with their certificates; a certificate embeds its own type
    specification so it decodes back to a replayable [Certificate.t]. *)

val analysis_of_json : Wire.t -> (Analysis.t, string) result

val query_digest : Objtype.t -> cap:int -> string
(** The content address of an analyze query: the hex digest of the
    type's canonical specification ([Objtype.to_spec_string] — counts,
    initial value, names, transition table) together with the scan cap.
    Results are independent of [jobs]/[kernel]/deadline by the engine's
    determinism guarantees, so (type, cap) is the whole key. *)

val query_digest_canonical : Objtype.t -> cap:int -> string
(** The symmetry-aware content address ([--sym on]): keyed by the
    {e canonical form} of the transition table under the
    value/op/response permutation group ([Sym.digest]), names, labels
    and the default initial value dropped — all isomorphic queries at a
    cap share one address, and their levels are equal by orbit
    invariance.  A store hit replays the first-seen representative's
    analysis: its certificates embed that representative's own spec and
    replay-validate against it.  Version-tagged disjoint from
    {!query_digest}. *)

val census_digest : Synth.space -> cap:int -> sample:int option -> seed:int -> string
(** The content address of a census query.  [jobs], [kernel] and the
    worker count are excluded: exhaustive censuses are bit-identical
    across all of them, and a sampling census is deterministic in
    ([sample], [seed]), which are part of the key.  Checkpoint/resume
    runs are never memoized, so those fields do not appear. *)

val synth_digest :
  Synth.space ->
  target:int ->
  seed:int ->
  iterations:int ->
  restart_every:int option ->
  portfolio:int ->
  string
(** The content address of a synth query: every parameter the portfolio
    search's outcome is a deterministic function of.  [incremental] and
    [kernel] are excluded — the warm-start and from-scratch searches
    produce bit-identical results (the bench-e22 invariant).  v2: the
    reroll mutation draw and the symmetry memo changed the trajectory
    of every seed, retiring v1 records. *)

val synth_digest_canonical :
  Synth.space ->
  target:int ->
  seed:int ->
  iterations:int ->
  restart_every:int option ->
  portfolio:int ->
  string
(** The canonical synth store key ([--sym on], {!query_digest_canonical}'s
    sibling).  A synth request carries no transition table, so the orbit
    quotient is trivial; what this key collapses is spellings of the
    same run: [restart_every = None] and
    [restart_every = Some Synth.default_restart_every] execute
    identically and share a record.  Version-tagged disjoint from
    {!synth_digest}. *)
