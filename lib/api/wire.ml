(* Canonical JSON for the serve protocol.  See wire.mli for the contract;
   the printer is deliberately boring — the parser is the only part with
   any subtlety (escapes, number classification, strictness). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printer *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\012' -> Buffer.add_string buf "\\f"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* [%.17g] round-trips every finite double; appending ".0" when the
   rendering contains no '.', 'e' or 'n' (nan never reaches here) keeps
   the Float/Int distinction stable across a parse. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Wire.to_string: non-finite float";
  let s = Printf.sprintf "%.17g" f in
  if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s then s
  else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parser: plain recursive descent over a string with a mutable cursor;
   errors abort through an exception carrying the offset. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> error "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then error "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' -> Buffer.add_char buf '"'; loop ()
            | '\\' -> Buffer.add_char buf '\\'; loop ()
            | '/' -> Buffer.add_char buf '/'; loop ()
            | 'b' -> Buffer.add_char buf '\b'; loop ()
            | 'f' -> Buffer.add_char buf '\012'; loop ()
            | 'n' -> Buffer.add_char buf '\n'; loop ()
            | 'r' -> Buffer.add_char buf '\r'; loop ()
            | 't' -> Buffer.add_char buf '\t'; loop ()
            | 'u' ->
                if !pos + 4 > n then error "truncated \\u escape";
                let code =
                  (hex_digit s.[!pos] lsl 12)
                  lor (hex_digit s.[!pos + 1] lsl 8)
                  lor (hex_digit s.[!pos + 2] lsl 4)
                  lor hex_digit s.[!pos + 3]
                in
                pos := !pos + 4;
                (* The protocol only escapes control characters; encode the
                   code point as UTF-8 so any valid escape still parses. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end;
                loop ()
            | _ -> error "unknown escape")
        | c when Char.code c < 0x20 -> error "unescaped control character in string"
        | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> error "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> error "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (off, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" off msg)

(* ------------------------------------------------------------------ *)
(* accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "list"
  | Obj _ -> "object"

let to_int = function
  | Int i -> Ok i
  | v -> Error (Printf.sprintf "expected int, got %s" (type_name v))

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error (Printf.sprintf "expected float, got %s" (type_name v))

let to_bool = function
  | Bool b -> Ok b
  | v -> Error (Printf.sprintf "expected bool, got %s" (type_name v))

let to_str = function
  | String s -> Ok s
  | v -> Error (Printf.sprintf "expected string, got %s" (type_name v))

let to_list = function
  | List l -> Ok l
  | v -> Error (Printf.sprintf "expected list, got %s" (type_name v))

let field v key =
  match member key v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing field %S" key)

let opt_field v key decode =
  match member key v with
  | None | Some Null -> Ok None
  | Some f -> ( match decode f with Ok x -> Ok (Some x) | Error e -> Error e)
