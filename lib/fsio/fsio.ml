(* Durable-I/O layer: whole-record appends over raw file descriptors,
   with an optional deterministic fault injector sharing the same code
   path.  See fsio.mli for the model; the invariants that matter:

   - append is all-or-nothing as far as the file is concerned: the
     record is written by one retry loop from one buffer, and any
     failure rolls the file back to the pre-append offset;
   - a failed handle is sticky: later appends/fsyncs report EROFS
     without touching the file, so a half-written record can never be
     followed by more bytes (the mid-log interleaving bug buffered
     channels had);
   - every blocking syscall retries EINTR;
   - the injector is consulted before the real operation, by global
     operation index, so fault schedules are exact and reproducible. *)

exception Crashed
exception Io_error of { op : string; path : string; error : Unix.error }
exception Corrupt of { path : string; offset : int; reason : string }

let error_message = function
  | Io_error { op; path; error } ->
      Some (Printf.sprintf "%s: %s failed: %s" path op (Unix.error_message error))
  | Corrupt { path; offset; reason } ->
      Some (Printf.sprintf "%s: corrupt record at offset %d: %s" path offset reason)
  | Crashed -> Some "simulated crash"
  | _ -> None

type fault =
  | Crash of { lose_volatile : bool }
  | Err of Unix.error
  | Short_write of { bytes : int; error : Unix.error }
  | Torn_write of { bytes : int }
  | Fsync_lie

module Retry = struct
  let rec eintr f =
    try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr f
end

type t = {
  h_path : string;
  mutable fd : Unix.file_descr option;
  injector : injector option;
  mutable offset : int;
  mutable durable_bytes : int;
  mutable failure : (string * Unix.error) option;
}

and injector = {
  mutable count : int;
  plan : (int, fault) Hashtbl.t;
  mutable handles : t list;
  mutable i_trace : (int * string) list;  (* reverse order *)
  mutable lies : int;
}

module Injector = struct
  type t = injector

  let of_plan l =
    let plan = Hashtbl.create 16 in
    List.iter (fun (i, f) -> Hashtbl.replace plan i f) l;
    { count = 0; plan; handles = []; i_trace = []; lies = 0 }

  (* A pinned 32-bit LCG (Numerical Recipes constants): the plan derived
     from a seed must never depend on the OCaml stdlib's Random
     algorithm. *)
  let lcg s = ((s * 1664525) + 1013904223) land 0xffffffff

  let seeded ~seed ~rate ~horizon =
    if rate < 0.0 || rate > 1.0 then invalid_arg "Fsio.Injector.seeded: rate";
    let s = ref (lcg (lcg (seed land 0xffffffff))) in
    let next () =
      s := lcg !s;
      (* high bits only: the low bits of an LCG cycle fast *)
      !s lsr 8
    in
    let plan = ref [] in
    for i = 0 to horizon - 1 do
      let draw = float_of_int (next ()) /. 16777216.0 in
      if draw < rate then begin
        let fault =
          match next () mod 6 with
          | 0 -> Crash { lose_volatile = false }
          | 1 -> Crash { lose_volatile = true }
          | 2 -> Err (if next () land 1 = 0 then Unix.ENOSPC else Unix.EIO)
          | 3 -> Short_write { bytes = 1 + (next () mod 16); error = Unix.ENOSPC }
          | 4 -> Torn_write { bytes = 1 + (next () mod 16) }
          | _ -> Fsync_lie
        in
        plan := (i, fault) :: !plan
      end
    done;
    of_plan !plan

  let ops t = t.count
  let trace t = List.rev t.i_trace
  let lie_count t = t.lies
end

let path t = t.h_path
let size t = t.offset
let durable t = t.durable_bytes
let failed t = t.failure

let io_error ~op ~path error = raise (Io_error { op; path; error })

(* The simulated process dies: close every registered handle, dropping
   un-fsync'd bytes first when the crash loses the volatile cache. *)
let crash_now inj ~lose_volatile =
  List.iter
    (fun h ->
      (match h.fd with
      | Some fd ->
          if lose_volatile && h.durable_bytes < h.offset then
            (try Retry.eintr (fun () -> Unix.ftruncate fd h.durable_bytes)
             with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      h.fd <- None;
      h.failure <- Some ("crash", Unix.EIO))
    inj.handles;
  raise Crashed

(* What [inject] hands back for the caller to apply itself; crashes are
   applied inside [inject] (they concern every handle, not just the one
   performing the operation). *)
type applied =
  | A_err of Unix.error
  | A_short of { bytes : int; error : Unix.error }
  | A_torn of { bytes : int }
  | A_lie

let inject injector ~op =
  match injector with
  | None -> None
  | Some inj -> (
      let i = inj.count in
      inj.count <- i + 1;
      inj.i_trace <- (i, op) :: inj.i_trace;
      match Hashtbl.find_opt inj.plan i with
      | Some (Crash { lose_volatile }) -> crash_now inj ~lose_volatile
      | Some (Err e) -> Some (A_err e)
      | Some (Short_write { bytes; error }) -> Some (A_short { bytes; error })
      | Some (Torn_write { bytes }) -> Some (A_torn { bytes })
      | Some Fsync_lie -> Some A_lie
      | None -> None)

let register injector h =
  match injector with None -> () | Some inj -> inj.handles <- h :: inj.handles

let deregister injector h =
  match injector with
  | None -> ()
  | Some inj -> inj.handles <- List.filter (fun x -> x != h) inj.handles

let open_log ?injector path =
  (match inject injector ~op:"open" with
  | Some (A_err e) -> io_error ~op:"open" ~path e
  | Some (A_short _ | A_torn _ | A_lie) | None -> ());
  match
    Retry.eintr (fun () -> Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644)
  with
  | exception Unix.Unix_error (e, _, _) -> io_error ~op:"open" ~path e
  | fd ->
      Unix.set_close_on_exec fd;
      let size = (Unix.fstat fd).Unix.st_size in
      ignore (Unix.lseek fd size Unix.SEEK_SET);
      let t =
        {
          h_path = path;
          fd = Some fd;
          injector;
          offset = size;
          durable_bytes = size;
          failure = None;
        }
      in
      register injector t;
      t

let live t ~op =
  match t.fd with
  | Some fd -> fd
  | None -> io_error ~op ~path:t.h_path Unix.EBADF

let sticky t ~op =
  match t.failure with
  | Some _ -> io_error ~op ~path:t.h_path Unix.EROFS
  | None -> ()

let contents t =
  let fd = live t ~op:"read" in
  (match inject t.injector ~op:"read" with
  | Some (A_err e) -> io_error ~op:"read" ~path:t.h_path e
  | Some (A_short _ | A_torn _ | A_lie) | None -> ());
  match
    let size = (Unix.fstat fd).Unix.st_size in
    let buf = Bytes.create size in
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let off = ref 0 in
    while !off < size do
      match Retry.eintr (fun () -> Unix.read fd buf !off (size - !off)) with
      | 0 -> raise (Unix.Unix_error (Unix.EIO, "read", t.h_path))
      | k -> off := !off + k
    done;
    ignore (Unix.lseek fd t.offset Unix.SEEK_SET);
    Bytes.unsafe_to_string buf
  with
  | s -> s
  | exception Unix.Unix_error (e, _, _) -> io_error ~op:"read" ~path:t.h_path e

let truncate t n =
  sticky t ~op:"truncate";
  let fd = live t ~op:"truncate" in
  (match inject t.injector ~op:"truncate" with
  | Some (A_err e) -> io_error ~op:"truncate" ~path:t.h_path e
  | Some (A_short _ | A_torn _ | A_lie) | None -> ());
  match
    Retry.eintr (fun () ->
        Unix.ftruncate fd n;
        ignore (Unix.lseek fd n Unix.SEEK_SET))
  with
  | () ->
      t.offset <- n;
      if t.durable_bytes > n then t.durable_bytes <- n
  | exception Unix.Unix_error (e, _, _) -> io_error ~op:"truncate" ~path:t.h_path e

(* One buffer, one retry loop.  [limit] caps the bytes that actually
   reach the file (the short/torn-write injections); the loop still
   fails afterwards, so a limit below the record length can never be
   mistaken for success. *)
let write_all fd s ~limit =
  let len = min limit (String.length s) in
  let off = ref 0 in
  while !off < len do
    match Retry.eintr (fun () -> Unix.write_substring fd s !off (len - !off)) with
    | 0 -> raise (Unix.Unix_error (Unix.EIO, "write", ""))
    | k -> off := !off + k
  done;
  !off

let append t s =
  sticky t ~op:"append";
  let fd = live t ~op:"append" in
  let start = t.offset in
  let rollback () =
    try
      Retry.eintr (fun () ->
          Unix.ftruncate fd start;
          ignore (Unix.lseek fd start Unix.SEEK_SET))
    with Unix.Unix_error _ -> ()
    (* rollback itself failed: the partial record stays, but the sticky
       failure below guarantees nothing is ever appended after it — the
       file ends in a torn tail, which replay truncates *)
  in
  let fail error =
    rollback ();
    t.offset <- start;
    t.failure <- Some ("append", error);
    io_error ~op:"append" ~path:t.h_path error
  in
  match inject t.injector ~op:"append" with
  | Some (A_err e) -> fail e
  | Some (A_short { bytes; error }) ->
      (try ignore (write_all fd s ~limit:bytes) with Unix.Unix_error _ -> ());
      fail error
  | Some (A_torn { bytes }) -> (
      (try ignore (write_all fd s ~limit:bytes) with Unix.Unix_error _ -> ());
      t.offset <- start + min bytes (String.length s);
      (* mid-write death: no rollback — this is the torn-tail shape *)
      match t.injector with
      | Some inj -> crash_now inj ~lose_volatile:false
      | None -> assert false)
  | Some A_lie | None -> (
      match write_all fd s ~limit:max_int with
      | n -> t.offset <- start + n
      | exception Unix.Unix_error (e, _, _) -> fail e)

let flush _t = ()

let fsync t =
  sticky t ~op:"fsync";
  let fd = live t ~op:"fsync" in
  match inject t.injector ~op:"fsync" with
  | Some (A_err e) ->
      (* fsyncgate: after a failed fsync the dirty pages are gone — model
         the loss immediately so replay sees what a crash would see, and
         poison the handle: durability can no longer be promised. *)
      (try
         Retry.eintr (fun () ->
             Unix.ftruncate fd t.durable_bytes;
             ignore (Unix.lseek fd t.durable_bytes Unix.SEEK_SET))
       with Unix.Unix_error _ -> ());
      t.offset <- t.durable_bytes;
      t.failure <- Some ("fsync", e);
      io_error ~op:"fsync" ~path:t.h_path e
  | Some A_lie -> (
      match t.injector with
      | Some inj -> inj.lies <- inj.lies + 1 (* acknowledged, not durable *)
      | None -> assert false)
  | Some (A_short _ | A_torn _) | None -> (
      match Retry.eintr (fun () -> Unix.fsync fd) with
      | () -> t.durable_bytes <- t.offset
      | exception Unix.Unix_error (e, _, _) ->
          t.failure <- Some ("fsync", e);
          io_error ~op:"fsync" ~path:t.h_path e)

let close t =
  match t.fd with
  | None -> ()
  | Some fd -> (
      deregister t.injector t;
      t.fd <- None;
      (match inject t.injector ~op:"close" with
      | Some (A_err e) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          io_error ~op:"close" ~path:t.h_path e
      | Some (A_short _ | A_torn _ | A_lie) | None -> ());
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) -> io_error ~op:"close" ~path:t.h_path e)

let rename ?injector ~src dst =
  (match inject injector ~op:"rename" with
  | Some (A_err e) -> io_error ~op:"rename" ~path:dst e
  | Some (A_short _ | A_torn _ | A_lie) | None -> ());
  try Retry.eintr (fun () -> Unix.rename src dst)
  with Unix.Unix_error (e, _, _) -> io_error ~op:"rename" ~path:dst e

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Retry.eintr (fun () -> Unix.fsync fd) with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

module Crc32 = struct
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let string s =
    let table = Lazy.force table in
    let crc = ref 0xffffffff in
    String.iter
      (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
      s;
    !crc lxor 0xffffffff

  let to_hex v = Printf.sprintf "%08x" (v land 0xffffffff)
end

module Record = struct
  let crc ~tag payload = Crc32.string (tag ^ "\n" ^ payload)

  let encode ~magic ~tag payload =
    if String.exists (fun c -> c = ' ' || c = '\n') tag then
      invalid_arg "Fsio.Record.encode: tag contains a space or newline";
    Printf.sprintf "%s %s %d %s\n%s\n" magic tag (String.length payload)
      (Crc32.to_hex (crc ~tag payload))
      payload

  type verdict =
    | Complete
    | Torn of { offset : int }
    | Corrupt_at of { offset : int; reason : string }

  let is_hex8 s =
    String.length s = 8
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         s

  let scan ~magic contents =
    let n = String.length contents in
    let out = ref [] in
    let good = ref 0 in
    let verdict = ref Complete in
    let pos = ref 0 in
    (try
       while !pos < n do
         match String.index_from_opt contents !pos '\n' with
         | None ->
             (* header cut short at EOF: a crash mid-append *)
             verdict := Torn { offset = !pos };
             raise Exit
         | Some nl -> (
             let header = String.sub contents !pos (nl - !pos) in
             match String.split_on_char ' ' header with
             | m :: rest when m = magic -> (
                 match rest with
                 | [ tag; len; crc_hex ] -> (
                     match int_of_string_opt len with
                     | Some len when len >= 0 && is_hex8 crc_hex ->
                         let payload_start = nl + 1 in
                         if payload_start + len + 1 > n then begin
                           (* the record extends past EOF: torn tail *)
                           verdict := Torn { offset = !pos };
                           raise Exit
                         end
                         else if contents.[payload_start + len] <> '\n' then begin
                           verdict :=
                             Corrupt_at
                               { offset = !pos; reason = "record terminator missing" };
                           raise Exit
                         end
                         else begin
                           let payload = String.sub contents payload_start len in
                           let expect = Crc32.to_hex (crc ~tag payload) in
                           if expect <> crc_hex then begin
                             verdict :=
                               Corrupt_at
                                 {
                                   offset = !pos;
                                   reason =
                                     Printf.sprintf "crc mismatch (stored %s, computed %s)"
                                       crc_hex expect;
                                 };
                             raise Exit
                           end;
                           out := (tag, payload) :: !out;
                           pos := payload_start + len + 1;
                           good := !pos
                         end
                     | _ ->
                         verdict :=
                           Corrupt_at { offset = !pos; reason = "malformed record header" };
                         raise Exit)
                 | _ ->
                     verdict :=
                       Corrupt_at { offset = !pos; reason = "malformed record header" };
                     raise Exit)
             | _ ->
                 (* alien magic: an older format generation (or garbage) —
                    dropped wholesale, like a torn tail *)
                 verdict := Torn { offset = !pos };
                 raise Exit)
       done
     with Exit -> ());
    (List.rev !out, !good, !verdict)
end
