(** The durable-I/O layer every on-disk artifact (serve store, dist
    ledger, census checkpoints) appends through — and the seeded fault
    injector that lets `rcn crashtest` drive those artifacts through
    every crash, error and fsync-loss shape the recovery code claims to
    survive.

    Two backends share one code path: {e Real} (no injector) performs
    plain Unix I/O; {e Faulty} (a handle opened with [?injector]) runs
    the same syscalls against the same file but consults a deterministic
    fault plan before each operation, so a planned ENOSPC, short write,
    lying fsync or whole-process crash happens at an exact, reproducible
    operation boundary.  Determinism is the contract: the same plan
    against the same workload yields byte-identical post-crash file
    images.

    Appends are {e whole-record}: one buffer, one [Unix.write] retry
    loop — never a buffered [out_channel], whose post-error state is
    undefined and whose next flush can interleave a partial record into
    the middle of a log.  An append either writes every byte or (via a
    rollback [ftruncate] to the pre-append offset) leaves the file
    byte-identical, and a failed handle is {e sticky}: every later
    append fails immediately with [EROFS] instead of touching the
    file. *)

exception Crashed
(** A planned [Crash] (or [Torn_write]) fired: the simulated process is
    dead.  Every handle registered with the injector has been closed
    (and, for a power-loss crash, truncated to its durable prefix).
    Never raised by the Real backend — a crash-test driver catches it,
    reopens the artifact and checks the recovery invariants. *)

exception Io_error of { op : string; path : string; error : Unix.error }
(** An operation failed — really, or by injection.  [op] is the
    operation name ([open]/[read]/[append]/[fsync]/[truncate]/[rename]/
    [close]); a sticky-failed handle reports [EROFS]. *)

exception Corrupt of { path : string; offset : int; reason : string }
(** Replay found a record that is structurally complete but wrong —
    a CRC mismatch, a malformed header with the right magic, a missing
    terminator.  Unlike a torn tail this is {e never} silently
    truncated: data after the corruption would be lost without anyone
    noticing.  [offset] is the byte position of the bad record. *)

val error_message : exn -> string option
(** A printable one-line form of the three exceptions above; [None] for
    anything else. *)

(** {2 Fault injection} *)

type fault =
  | Crash of { lose_volatile : bool }
      (** die at this operation boundary (before the op runs).
          [lose_volatile = false] is [kill -9]: everything written
          survives.  [lose_volatile = true] is power loss: every byte
          not covered by a successful, non-lying fsync is gone. *)
  | Err of Unix.error  (** the operation fails with this errno *)
  | Short_write of { bytes : int; error : Unix.error }
      (** an append persists only a prefix, then fails (the handle rolls
          back and goes sticky-failed, like any append error) *)
  | Torn_write of { bytes : int }
      (** the process dies {e mid-write}: a prefix of the record reaches
          the file and [Crashed] is raised with no rollback — the shape
          that leaves a torn tail for replay to truncate *)
  | Fsync_lie
      (** fsync returns success without making anything durable — the
          "fsyncgate" write-back-loss shape.  A later power-loss crash
          drops the bytes this fsync pretended to persist. *)

module Injector : sig
  type t

  val of_plan : (int * fault) list -> t
  (** Faults keyed by global operation index (0-based, counted across
      every handle and module-level operation using this injector).
      Duplicate indices keep the last binding. *)

  val seeded : seed:int -> rate:float -> horizon:int -> t
  (** A deterministic plan derived from [seed] by a pinned LCG: each of
      the first [horizon] operation slots independently draws a fault
      with probability [rate].  Same seed, same plan — always. *)

  val ops : t -> int
  (** Operations executed (or intercepted) so far. *)

  val trace : t -> (int * string) list
  (** The [(index, op name)] trace of every operation seen so far, in
      execution order — how a crash-test driver learns which indices are
      appends or fsyncs before enumerating plans. *)

  val lie_count : t -> int
  (** Fsync lies told so far — a workload brackets an append+fsync with
      this to learn whether its acknowledgment was honest. *)
end

(** {2 Handles} *)

type t

val open_log : ?injector:Injector.t -> string -> t
(** Open (creating if missing) an append-only log for reading and
    appending, positioned at its current end.  Pre-existing bytes count
    as durable.  @raise Io_error when opening fails. *)

val path : t -> string

val size : t -> int
(** The logical size — the current append offset. *)

val durable : t -> int
(** Bytes guaranteed to survive power loss: advanced by every honest
    {!fsync}.  (Maintained for Real handles too; meaningful for tests.) *)

val contents : t -> string
(** The whole current file, offset preserved. *)

val append : t -> string -> unit
(** Whole-record append: one buffer, one write loop.  On any failure the
    file is rolled back ([ftruncate]) to the pre-append offset and the
    handle goes sticky-failed; later appends raise [EROFS] without
    touching the file.  @raise Io_error *)

val flush : t -> unit
(** A no-op — the layer is unbuffered by construction; kept so callers
    written against buffered channels port without dropping a step. *)

val fsync : t -> unit
(** Persist appended bytes.  On failure ("fsyncgate") the un-fsync'd
    volatile bytes must be presumed lost: the file is truncated back to
    the durable prefix and the handle goes sticky-failed.
    @raise Io_error *)

val truncate : t -> int -> unit
(** Truncate to [n] bytes (dropping a torn tail during replay) and
    position the append offset there.  @raise Io_error *)

val close : t -> unit
(** Close the handle (idempotent).  Errors on the final close are
    reported, not swallowed.  @raise Io_error *)

val failed : t -> (string * Unix.error) option
(** The sticky failure, if the handle is degraded: [(op, errno)] of the
    first error. *)

val rename : ?injector:Injector.t -> src:string -> string -> unit
(** Atomic replace, the compaction commit point.  @raise Io_error *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory (persisting a rename); errors are
    swallowed — not every filesystem supports it. *)

(** {2 EINTR discipline} *)

module Retry : sig
  val eintr : (unit -> 'a) -> 'a
  (** Re-run [f] for as long as it raises [Unix_error (EINTR, _, _)] —
      the wrapper every blocking syscall in this layer (and the waitpid
      call sites in [lib/dist] / [bin/rcn]) goes through. *)
end

(** {2 Record framing} *)

module Crc32 : sig
  val string : string -> int
  (** CRC-32 (polynomial 0xEDB88320) of the whole string, as a
      non-negative int. *)

  val to_hex : int -> string
  (** Fixed-width lowercase 8-digit hex. *)
end

(** The one record discipline the store and the ledger share:

    {[<magic> <tag> <payload_bytes> <crc32hex>\n<payload>\n]}

    where the CRC covers [tag ^ "\n" ^ payload] — so a bit flip in the
    key/kind or the payload is caught, and a flipped length field either
    breaks the terminator or breaks the CRC.  Replay distinguishes two
    failure shapes: a record cut short {e at end of file} is a torn tail
    (a crash mid-append — truncate and carry on), while a structurally
    complete record that fails validation is corruption (hard error,
    with the offset).  A complete header line whose magic is not
    [magic] ends the scan like a torn tail: that is how a log from an
    older format generation is dropped wholesale rather than
    misparsed. *)
module Record : sig
  val encode : magic:string -> tag:string -> string -> string
  (** [tag] must contain no space or newline.  @raise Invalid_argument *)

  type verdict =
    | Complete  (** the file ends exactly at a record boundary *)
    | Torn of { offset : int }
        (** a record is cut short at EOF (or an alien magic was hit):
            the replayable prefix ends at [offset] — truncate there *)
    | Corrupt_at of { offset : int; reason : string }
        (** a complete record failed validation at [offset] — the caller
            must raise {!Corrupt}, never truncate *)

  val scan : magic:string -> string -> (string * string) list * int * verdict
  (** [(records, good, verdict)]: the [(tag, payload)] records of the
      longest valid prefix, in file order, and the offset just past the
      last good record. *)
end
