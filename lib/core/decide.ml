type condition = Kernel.condition = Discerning | Recording

(* ------------------------------------------------------------------ *)
(* Certificate enumeration *)

let range lo hi = Seq.init (max 0 (hi - lo)) (fun i -> lo + i)

(* Nondecreasing sequences of length [k] over [lowest .. m-1]:
   representatives of operation multisets for one team. *)
let rec sorted_assignments m k lowest =
  if k = 0 then Seq.return []
  else
    Seq.concat_map
      (fun o -> Seq.map (fun rest -> o :: rest) (sorted_assignments m (k - 1) o))
      (range lowest m)

let rec all_assignments m k =
  if k = 0 then Seq.return []
  else
    Seq.concat_map
      (fun o -> Seq.map (fun rest -> o :: rest) (all_assignments m (k - 1)))
      (range 0 m)

(* Partitions of [0 .. n-1] into (T_0, T_1) with process 0 in T_0 and T_1
   nonempty, encoded as the membership array of T_1. *)
let partitions n =
  Seq.map
    (fun mask -> Array.init n (fun i -> i > 0 && (mask lsr (i - 1)) land 1 = 1))
    (range 1 (1 lsl (n - 1)))

(* Operation assignments for a fixed team partition: within-team multisets
   (sorted representatives) by default, the full function space when
   [naive]. *)
let ops_for_team ?(naive = false) (t : Objtype.t) team =
  let n = Array.length team in
  let members x =
    Array.to_list (Array.mapi (fun i b -> (i, b)) team)
    |> List.filter_map (fun (i, b) -> if b = x then Some i else None)
  in
  let t0 = members false and t1 = members true in
  let assignments k =
    if naive then all_assignments t.Objtype.num_ops k
    else sorted_assignments t.Objtype.num_ops k 0
  in
  Seq.concat_map
    (fun ops0 ->
      Seq.map
        (fun ops1 ->
          let ops = Array.make n 0 in
          List.iter2 (fun i o -> ops.(i) <- o) t0 ops0;
          List.iter2 (fun i o -> ops.(i) <- o) t1 ops1;
          ops)
        (assignments (List.length t1)))
    (assignments (List.length t0))

let candidates ?(naive = false) (t : Objtype.t) ~n =
  if n < 2 then invalid_arg "Decide: need n >= 2";
  let ops_for team = ops_for_team ~naive t team in
  Seq.concat_map
    (fun u ->
      Seq.concat_map
        (fun team -> Seq.map (fun ops -> (u, team, ops)) (ops_for team))
        (partitions n))
    (range 0 t.Objtype.num_values)

(* Closed form (no enumeration); pinned against a [candidates] fold for
   small types in the test suite. *)
let count_candidates ?(naive = false) (t : Objtype.t) ~n =
  if n < 2 then invalid_arg "Decide: need n >= 2";
  if naive then Kernel.count_naive t ~n else Kernel.count t ~n

(* ------------------------------------------------------------------ *)
(* Fast condition checks over precomputed schedules *)

let check_recording_fast (t : Objtype.t) scheds ~u ~team ~ops =
  (* team_of : final value -> team of the schedule's first process; a clash
     means U_0 and U_1 intersect. *)
  let team_of = Hashtbl.create 32 in
  let u_hit = [| false; false |] in
  let ok = ref true in
  let rec check = function
    | [] -> ()
    | procs :: rest ->
        (match procs with
        | [] -> ()
        | first :: _ ->
            let x = team.(first) in
            let final =
              List.fold_left (fun v p -> snd (t.Objtype.delta v ops.(p))) u procs
            in
            if final = u then u_hit.(Bool.to_int x) <- true;
            (match Hashtbl.find_opt team_of final with
            | None -> Hashtbl.add team_of final x
            | Some x' -> if x' <> x then ok := false));
        if !ok then check rest
  in
  check scheds;
  !ok
  &&
  let size x = Array.fold_left (fun acc b -> if b = x then acc + 1 else acc) 0 team in
  ((not u_hit.(0)) || size true = 1) && ((not u_hit.(1)) || size false = 1)

let check_discerning_fast (t : Objtype.t) scheds ~u ~team ~ops =
  let n = Array.length team in
  let seen = Hashtbl.create 64 in
  let responses = Array.make n (-1) in
  let ok = ref true in
  let rec check = function
    | [] -> ()
    | procs :: rest ->
        (match procs with
        | [] -> ()
        | first :: _ ->
            let x = team.(first) in
            let final =
              List.fold_left
                (fun v p ->
                  let r, v' = t.Objtype.delta v ops.(p) in
                  responses.(p) <- r;
                  v')
                u procs
            in
            List.iter
              (fun j ->
                let key = (j, responses.(j), final) in
                match Hashtbl.find_opt seen key with
                | None -> Hashtbl.add seen key x
                | Some x' -> if x' <> x then ok := false)
              procs);
        if !ok then check rest
  in
  check scheds;
  !ok

(* ------------------------------------------------------------------ *)

let checker = function
  | Discerning -> check_discerning_fast
  | Recording -> check_recording_fast

let check condition t scheds ~u ~team ~ops = (checker condition) t scheds ~u ~team ~ops

let certificates ?naive ?scheds condition t ~n =
  let scheds =
    match scheds with Some s -> s | None -> Sched.at_most_once ~nprocs:n
  in
  let check = checker condition in
  candidates ?naive t ~n
  |> Seq.filter_map (fun (u, team, ops) ->
         if check t scheds ~u ~team ~ops then
           Some (Certificate.make ~objtype:t ~initial:u ~team ~ops)
         else None)

(* The reference search: force the head of the lazy witness sequence. *)
let search_reference ?naive ?scheds condition t ~n =
  match (certificates ?naive ?scheds condition t ~n) () with
  | Seq.Nil -> None
  | Seq.Cons (c, _) -> Some c

let search ?(naive = false) ?scheds ?obs ?(mode = Kernel.Trie) condition t ~n =
  if naive || mode = Kernel.Reference then
    search_reference ~naive ?scheds condition t ~n
  else begin
    if n < 2 then invalid_arg "Decide: need n >= 2";
    let k = Kernel.compile ?obs t ~n in
    let s = Kernel.scratch k in
    match
      Kernel.search_range ~mode k s condition ~lo:0 ~hi:(Kernel.total k)
        ~stop:(fun _ -> false)
    with
    | Some rank, _ ->
        let u, team, ops = Kernel.candidate k rank in
        Some (Certificate.make ~objtype:t ~initial:u ~team ~ops)
    | None, _ -> None
  end

let is_discerning t ~n = Option.is_some (search Discerning t ~n)
let is_recording t ~n = Option.is_some (search Recording t ~n)

(* The kernel-reuse decision point: same verdict as [is_discerning] /
   [is_recording] on the kernel's current tables, but against a caller-owned
   long-lived kernel + scratch — the synthesizer holds one per fitness level
   across a whole climb and mutates it with [Kernel.patch] between calls. *)
let holds ?(mode = Kernel.Trie) k s condition = Kernel.exists ~mode k s condition

let search_partitioned ?(clean = false) ?(mode = Kernel.Trie) condition t ~team =
  let n = Array.length team in
  if n < 2 then invalid_arg "Decide.search_partitioned: need n >= 2";
  if not (Array.exists Fun.id team && Array.exists not team) then
    invalid_arg "Decide.search_partitioned: both teams must be nonempty";
  let check_one =
    match mode with
    | Kernel.Reference ->
        let scheds = Sched.at_most_once ~nprocs:n in
        let check = checker condition in
        fun u ops -> check t scheds ~u ~team ~ops
    | mode ->
        let k = Kernel.compile t ~n in
        let s = Kernel.scratch k in
        fun u ops -> Kernel.check ~mode k s condition ~u ~team ~ops
  in
  Seq.concat_map
    (fun u -> Seq.map (fun ops -> (u, ops)) (ops_for_team t team))
    (range 0 t.Objtype.num_values)
  |> Seq.filter_map (fun (u, ops) ->
         if check_one u ops then
           let cert = Certificate.make ~objtype:t ~initial:u ~team ~ops in
           if (not clean) || Certificate.is_clean cert then Some cert else None
         else None)
  |> fun seq -> (match seq () with Seq.Nil -> None | Seq.Cons (c, _) -> Some c)

(* Deterministic minimal-witness search.  The candidate order puts the
   initial value [u] in the outer loop, so the sequential first witness
   is the first (team, ops) witness of the *smallest* witnessing [u].
   Each domain owns the values congruent to its id mod [domains],
   records at most one witness per owned [u] into that value's private
   slot (disjoint writes), and races to lower [best]; values at or above
   the current minimum are pruned.  Every [u] below the final minimum
   was fully swept and refuted, so the returned certificate is exactly
   [search]'s — at any domain count. *)
let search_parallel ?domains ?(mode = Kernel.Trie) condition t ~n =
  if n < 2 then invalid_arg "Decide: need n >= 2";
  let domains =
    match domains with
    | Some d when d >= 1 -> d
    | Some _ -> invalid_arg "Decide.search_parallel: domains must be positive"
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  if domains = 1 || t.Objtype.num_values = 1 then search ~mode condition t ~n
  else begin
    match mode with
    | Kernel.Reference ->
        let scheds = Sched.at_most_once ~nprocs:n in
        let check = checker condition in
        let witnesses : (bool array * int array) option array =
          Array.make t.Objtype.num_values None
        in
        let best = Atomic.make t.Objtype.num_values in
        let exception Witnessed in
        let worker k () =
          let u = ref k in
          while !u < Atomic.get best do
            (try
               Seq.iter
                 (fun (team, ops) ->
                   if check t scheds ~u:!u ~team ~ops then begin
                     witnesses.(!u) <- Some (team, ops);
                     let rec lower () =
                       let b = Atomic.get best in
                       if !u < b && not (Atomic.compare_and_set best b !u) then
                         lower ()
                     in
                     lower ();
                     raise Witnessed
                   end)
                 (Seq.concat_map
                    (fun team ->
                      Seq.map (fun ops -> (team, ops)) (ops_for_team t team))
                    (partitions n))
             with Witnessed -> ());
            u := !u + domains
          done
        in
        let handles =
          List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
        in
        worker 0 ();
        List.iter Domain.join handles;
        (match Atomic.get best with
        | b when b = t.Objtype.num_values -> None
        | b ->
            let team, ops = Option.get witnesses.(b) in
            Some (Certificate.make ~objtype:t ~initial:b ~team ~ops))
    | mode ->
        (* Kernelized variant of the same protocol: a [u]'s candidates are
           one contiguous rank block, and the minimal witnessing *rank*
           within a block is what [Kernel.search_range] returns. *)
        let k = Kernel.compile t ~n in
        let per_u = Kernel.total k / t.Objtype.num_values in
        let witnesses = Array.make t.Objtype.num_values (-1) in
        let best = Atomic.make t.Objtype.num_values in
        let worker kid () =
          let s = Kernel.scratch k in
          let u = ref kid in
          while !u < Atomic.get best do
            (match
               Kernel.search_range ~mode k s condition ~lo:(!u * per_u)
                 ~hi:((!u + 1) * per_u)
                 ~stop:(fun _ -> false)
             with
            | Some rank, _ ->
                witnesses.(!u) <- rank;
                let rec lower () =
                  let b = Atomic.get best in
                  if !u < b && not (Atomic.compare_and_set best b !u) then
                    lower ()
                in
                lower ()
            | None, _ -> ());
            u := !u + domains
          done
        in
        let handles =
          List.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
        in
        worker 0 ();
        List.iter Domain.join handles;
        (match Atomic.get best with
        | b when b = t.Objtype.num_values -> None
        | b ->
            let u, team, ops = Kernel.candidate k witnesses.(b) in
            Some (Certificate.make ~objtype:t ~initial:u ~team ~ops))
  end
