(** Robustness of the recoverable consensus hierarchy (Theorems 13–14).

    Theorem 13: if recoverable wait-free consensus for [n] processes is
    solvable from objects of deterministic types [T_0, T_1, ...] plus
    registers, then some [T_i] is [n]-recording.  Hence the best level
    achievable by *any combination* of readable deterministic types equals
    the best level achievable by the single strongest type in the set —
    combining objects cannot help. *)

type report = {
  per_type : (string * Analysis.level) list;
      (** max-recording level of each type in the set *)
  combined : Numbers.bound;
      (** recoverable consensus level of the whole set: by Theorem 13 +
          DFFR Theorem 8 (readable types), the maximum of the individual
          levels *)
  strongest : string;  (** name of a type attaining [combined] *)
  witness : Certificate.t option;
}

val analyze : ?cap:int -> Objtype.t list -> report
(** @raise Invalid_argument on the empty list or when some type in the list
    is not readable (Theorem 14 is stated for readable deterministic
    types). *)

val pp_report : Format.formatter -> report -> unit

type product_report = {
  left : string;
  right : string;
  left_level : Numbers.bound;
  right_level : Numbers.bound;
  product_level : Numbers.bound;
  robust : bool;
      (** the product's max-recording does not exceed the components' max —
          robustness observed on the combined object itself *)
}

val check_product : ?cap:int -> Objtype.t -> Objtype.t -> product_report
(** Run the recording decider on the (readable) product of the two types
    and compare with the component levels — Theorem 14 tested on one
    combined object rather than via per-type maxima.
    @raise Invalid_argument if either type is not readable. *)

val pp_product_report : Format.formatter -> product_report -> unit
