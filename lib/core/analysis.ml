type status = Exact | At_least

type level = { value : int; status : status; certificate : Certificate.t option }

type t = {
  type_name : string;
  readable : bool;
  discerning : level;
  recording : level;
  elapsed : float;
}

let level_value l = l.value
let is_exact l = l.status = Exact

let equal_level a b = a.value = b.value && a.status = b.status

let equal a b =
  a.type_name = b.type_name && a.readable = b.readable
  && equal_level a.discerning b.discerning
  && equal_level a.recording b.recording

let consensus_number a = if a.readable then Some a.discerning else None
let recoverable_consensus_number a = if a.readable then Some a.recording else None

let pp_level ppf l =
  match l.status with
  | Exact -> Format.pp_print_int ppf l.value
  | At_least -> Format.fprintf ppf ">=%d" l.value

let level_to_string l = Format.asprintf "%a" pp_level l

let pp ppf a =
  let opt = function None -> "n/a" | Some l -> level_to_string l in
  Format.fprintf ppf "%-18s %-9s disc=%-4s rec=%-4s cons=%-4s rcons=%-4s" a.type_name
    (if a.readable then "readable" else "opaque")
    (level_to_string a.discerning) (level_to_string a.recording)
    (opt (consensus_number a))
    (opt (recoverable_consensus_number a))
