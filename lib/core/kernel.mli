(** The compiled decision kernel: the hot path of the determining
    procedure, reduced to integer array reads.

    Deciding the [n]-discerning / [n]-recording conditions replays every
    at-most-once schedule against every candidate certificate
    [(u, team, ops)].  The reference checkers in {!Decide} refold each
    schedule through the memoized [Objtype.delta] closure and classify
    outcomes through per-candidate [Hashtbl]s.  This module compiles the
    same decision into three layers of precomputation:

    - {b Flat transition tables.}  [delta] becomes two [int array]s
      ([next] and [resp], indexed [v * num_ops + op]), so the inner loop
      is two array reads with no closure call and no tuple allocation.
    - {b Schedule-prefix trie.}  [Sched.at_most_once] is prefix-closed,
      so it compiles into a {!Sched.Trie}: one forward pass over the
      parent-before-child node arrays folds {e all} schedules for a given
      [(u, ops)], visiting each shared prefix once instead of refolding
      every schedule end to end.  Tries are memoized per process count
      (thread-safely) and shared across every type decided at that [n] —
      the census sweep's best case.
    - {b Team-independent evaluation.}  The folded final values and
      responses depend only on [(u, ops)], not on the team partition, so
      evaluation results are cached per [(u, ops)] within a scratch and
      each partition is then classified by a cheap pass over flat arrays
      keyed by final value (bounded by [num_values]) — no [Hashtbl]s in
      the per-candidate loop.

    Candidates are {e ranked}: the kernel numbers the sequential
    enumeration order of [Decide.candidates] (initial value major, then
    team partition, then per-team sorted operation assignments) as a
    dense [0 .. total - 1] index space, so parallel searches distribute
    chunked index ranges and keep the deterministic minimum-index
    (= sequential first) witness guarantee.

    Everything in a compiled {!t} is immutable and safe to share across
    domains; each worker needs its own {!scratch}.  The one exception is
    the {e patched} kernel: {!patch} / {!unpatch} mutate the flat tables
    in place for the synthesizer's warm-start neighborhood search.  A
    kernel that has been patched is paired with the single scratch the
    patches were applied through and must stay confined to one domain —
    never share it, and never use a second scratch on it (the other
    scratch's memo would silently describe the pre-patch tables). *)

type condition = Discerning | Recording
(** Re-exported by [Decide]; defined here so the kernel does not depend
    on it. *)

(** Which implementation decides a query.  [Trie] (the default
    everywhere) is the full kernel; [Tables] uses the flat transition
    tables but refolds every schedule end to end per candidate — the
    ablation point isolating the trie's contribution; [Reference] is the
    original closure-and-[Hashtbl] checker in [Decide], kept as the
    differential-testing oracle.  All three return bit-identical
    certificates. *)
type mode = Reference | Tables | Trie

val mode_of_string : string -> (mode, [ `Msg of string ]) result
(** ["on"] / ["trie"] is [Trie], ["tables"] is [Tables], ["off"] /
    ["reference"] is [Reference] — the CLI's [--kernel] values. *)

val mode_to_string : mode -> string

type t
(** A kernel compiled for one [(Objtype.t, n)] pair. *)

type scratch
(** Per-worker mutable evaluation state: node value/response buffers,
    the flat classification arrays, and the per-[(u, ops)] evaluation
    memo.  Never share a scratch between domains or between concurrent
    searches. *)

val compile : ?obs:Obs.t -> Objtype.t -> n:int -> t
(** Build the flat tables, fetch the memoized trie for [n], and rank the
    candidate space.  With [obs], resolves the kernel counters
    [decide.trie_nodes] (nodes of freshly built tries),
    [decide.kernel_evals] (per-[(u, ops)] schedule evaluations) and
    [decide.partitions_pruned] (candidates classified from a memoized
    evaluation, skipping schedule replay entirely) in that context's
    registry.  @raise Invalid_argument when [n < 2]. *)

val warm_trie : ?obs:Obs.t -> nprocs:int -> unit -> unit
(** Force the shared trie for [nprocs] into the memo (e.g. before a
    parallel sweep, so workers only read). *)

val total : t -> int
(** Number of candidates — [num_values] equal consecutive blocks, one
    per initial value [u], each of [total / num_values] ranks. *)

val candidate : t -> int -> Objtype.value * bool array * Objtype.op array
(** Unrank: the candidate at the given index of the sequential
    enumeration order, with fresh [team] and [ops] arrays (safe to hand
    to [Certificate.make]).  @raise Invalid_argument out of range. *)

val scratch : t -> scratch

val search_range :
  ?mode:mode ->
  t ->
  scratch ->
  condition ->
  lo:int ->
  hi:int ->
  stop:(int -> bool) ->
  int option * int
(** [search_range k s cond ~lo ~hi ~stop] scans candidate ranks
    [lo .. hi - 1] in order and returns [(witness, checked)]: the first
    witnessing rank (if any) and the number of candidates actually
    checked.  [stop] is polled with the current rank before each
    candidate; answering [true] abandons the scan (returning [None] for
    the witness) — the hook parallel workers use for deadline polls and
    minimum-rank pruning.  [mode] must be [Tables] or [Trie]; the
    reference path lives in [Decide].
    @raise Invalid_argument on [mode = Reference]. *)

val exists : ?mode:mode -> t -> scratch -> condition -> bool
(** Does {e any} candidate witness the condition?  Same verdict as
    [search_range ~lo:0 ~hi:(total k)] being [Some _], but free to
    short-circuit: the scratch remembers the last witnessing rank per
    condition and re-verifies it first (through the verdict cache), so
    on a patched kernel whose witness survived the edit this costs one
    probe instead of a scan of the prefix below the witness.  The hot
    decision point of the incremental synthesizer ([Decide.holds]).
    [mode] must be [Tables] or [Trie].
    @raise Invalid_argument on [mode = Reference]. *)

val check :
  ?mode:mode ->
  t ->
  scratch ->
  condition ->
  u:Objtype.value ->
  team:bool array ->
  ops:Objtype.op array ->
  bool
(** Decide one explicit candidate (used by the fixed-partition search).
    Equivalent to [Decide.check cond t (Sched.at_most_once ~nprocs:n)]
    on the same candidate.  @raise Invalid_argument on
    [mode = Reference]. *)

(** {2 Incremental patching}

    The synthesizer's hill climb moves between transition tables that
    differ in one cell.  Instead of recompiling a kernel per candidate,
    {!patch} edits one cell of the live tables and {e delta-invalidates}
    the scratch's evaluation memo: every memoized per-[(u, ops)] mask
    records (as a small bitset, while tracking is on) which table cells
    its trie fold read, and a patch flips off exactly the entries
    watching the edited cell — [O(invalidated entries)], not a memo
    reset.  A rank-indexed verdict cache making re-scans O(1) per
    untouched candidate rides on the same validity bits.  {!unpatch}
    restores the previous entry from the returned token, so a rejected
    mutation costs two cell writes plus the invalidations.  The
    snapshot-reviving fast path applies when nothing else was patched
    between a token's creation and its unpatch (the synthesizer's
    reject cycle); any intervening patch/unpatch — nested tokens,
    out-of-LIFO-order release — degrades that token to plain
    invalidation, still correct, just re-evaluating on demand.

    The first patch on a scratch invalidates its whole memo once (cells
    were not yet being tracked) and switches tracking on.

    Correctness contract, pinned by the qcheck differential suite: after
    {e any} sequence of patch/unpatch, the kernel answers {!search_range}
    and {!check} byte-identically to a fresh {!compile} of the mutated
    type ({!to_objtype}). *)

type patch
(** Undo token: the previous contents of a patched cell. *)

val patch :
  t -> scratch -> cell:Objtype.value * Objtype.op -> entry:Objtype.response * Objtype.value -> patch
(** [patch k s ~cell:(v, op) ~entry:(r, v')] makes [delta v op = (r, v')]
    in the compiled tables and invalidates the affected evaluations in
    [s]'s memo.  With [obs] (at {!compile}) counts [kernel.patches] and
    [kernel.masks_invalidated]; memo hits that survive a patch count as
    [kernel.masks_reused].  @raise Invalid_argument out of range. *)

val unpatch : t -> scratch -> patch -> unit
(** Restore the cell a {!patch} call rewrote (same invalidation cost). *)

val to_objtype : ?name:string -> t -> Objtype.t
(** The type the kernel's {e current} tables decide — after patches, the
    mutated type (the [ty] passed to {!compile} is stale then).  Default
    [name] is the compiled type's. *)

val count : Objtype.t -> n:int -> int
(** Closed-form size of the pruned candidate space:
    [num_values * sum over team splits of products of multiset
    coefficients] — no enumeration.  Equals [total] of a compiled
    kernel.  @raise Invalid_argument when [n < 2]. *)

val count_naive : Objtype.t -> n:int -> int
(** Closed form for the unpruned space ([~naive:true] enumeration):
    [num_values * (2^(n-1) - 1) * num_ops^n]. *)
