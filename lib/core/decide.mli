(** Deciders for the [n]-discerning and [n]-recording conditions.

    For a finite deterministic type both conditions are decidable by
    exhaustive search over certificates (initial value, team partition,
    per-process operations) and replay of the at-most-once schedules
    [S(P)].  The searches below exploit two symmetries:

    - team labels can be swapped, so process 0 is fixed on team [T_0];
    - processes on the same team are interchangeable, so operation
      assignments are enumerated sorted within each team ([~naive:true]
      disables this, for the E9 ablation).

    Any certificate returned validates under the independent
    {!Certificate.check_discerning} / {!Certificate.check_recording}
    replays. *)

type condition = Kernel.condition = Discerning | Recording
(** Defined in {!Kernel} (the compiled decision kernel) and re-exported
    here; use either name. *)

val search :
  ?naive:bool ->
  ?scheds:Sched.proc list list ->
  ?obs:Obs.t ->
  ?mode:Kernel.mode ->
  condition ->
  Objtype.t ->
  n:int ->
  Certificate.t option
(** The least certificate (in enumeration order) witnessing the condition
    for [n] processes, or [None] if the type does not satisfy it.
    Requires [n >= 2].

    [mode] selects the implementation (default [Kernel.Trie], the
    compiled kernel; see {!Kernel.mode}) — all modes return bit-identical
    results, pinned by the differential test suite.  [~naive:true]
    implies the reference path (the unpruned space exists only there).
    [?scheds] supplies a precomputed [Sched.at_most_once ~nprocs:n] (it
    must be exactly that set) and only affects the reference path; the
    kernel shares compiled tries per [n] internally.  [?obs] feeds the
    kernel counters [decide.trie_nodes] / [decide.kernel_evals] /
    [decide.partitions_pruned]. *)

val is_discerning : Objtype.t -> n:int -> bool
val is_recording : Objtype.t -> n:int -> bool

val holds : ?mode:Kernel.mode -> Kernel.t -> Kernel.scratch -> condition -> bool
(** Decide the condition against a caller-owned kernel and scratch —
    [is_discerning] / [is_recording] without the per-call compile.  The
    verdict is for the kernel's {e current} tables, so this is the
    decision point for incremental synthesis: hold one kernel + scratch
    per fitness level across a climb, mutate candidates with
    [Kernel.patch] / [Kernel.unpatch] between calls, and the scratch's
    delta-invalidated memo carries over.  [mode] must be [Tables] or
    [Trie] ([Kernel.search_range]'s restriction).
    @raise Invalid_argument on [mode = Reference]. *)

val certificates :
  ?naive:bool ->
  ?scheds:Sched.proc list list ->
  condition ->
  Objtype.t ->
  n:int ->
  Certificate.t Seq.t
(** All witnessing certificates, lazily. *)

val candidates :
  ?naive:bool ->
  Objtype.t ->
  n:int ->
  (Objtype.value * bool array * Objtype.op array) Seq.t
(** The candidate certificates [(u, team, ops)] that {!search} enumerates,
    in search order — the raw material for the engine's deterministic
    chunked fan-out (a parallel search that returns the least witnessing
    index returns exactly {!search}'s certificate).  Each yielded [ops]
    array is fresh; [team] arrays are shared between candidates of the same
    partition and must not be mutated. *)

val check :
  condition ->
  Objtype.t ->
  Sched.proc list list ->
  u:Objtype.value ->
  team:bool array ->
  ops:Objtype.op array ->
  bool
(** Replay the given at-most-once schedules against one candidate and test
    the condition — the per-candidate kernel of {!search}, exposed so
    parallel workers can share one schedule enumeration. *)

val count_candidates : ?naive:bool -> Objtype.t -> n:int -> int
(** Number of candidate certificates the search would enumerate (for the
    E9 scaling experiment).  Computed in closed form
    ({!Kernel.count} / {!Kernel.count_naive}), not by enumeration;
    pinned against a {!candidates} fold for small types in the tests. *)

val search_partitioned :
  ?clean:bool ->
  ?mode:Kernel.mode ->
  condition ->
  Objtype.t ->
  team:bool array ->
  Certificate.t option
(** Like {!search}, but with the team partition fixed to [team] (searching
    only over initial values and operation assignments).  With
    [clean:true] (default [false]) only certificates satisfying
    {!Certificate.is_clean} are returned — the variant needed by the
    tournament construction in [Rcn_protocols]. *)

val search_parallel :
  ?domains:int ->
  ?mode:Kernel.mode ->
  condition ->
  Objtype.t ->
  n:int ->
  Certificate.t option
(** Multicore variant of {!search}: candidate certificates are partitioned
    by initial value across [domains] worker domains (default: the host's
    recommended domain count, capped at 8).  Returns exactly {!search}'s
    certificate at any domain count: each domain keeps at most the first
    witness per owned initial value and the domains race to *lower* the
    minimal witnessing value, so the result is the first witness of the
    smallest witnessing [u] — the sequential enumeration's first hit
    (pinned by a 1-vs-4-domain parity test).  The big win is on
    *refutations* — proving a type is not [n]-discerning/-recording scans
    the whole space, which parallelizes almost linearly. *)
