(** Consensus numbers and recoverable consensus numbers of finite
    deterministic types — the paper's "determining" procedure.

    For readable deterministic types:
    - Ruppert (2000): consensus number [>= n] iff [n]-discerning, so the
      consensus number equals the largest [n] for which the type is
      [n]-discerning;
    - DFFR (2022) + this paper's Theorem 13: recoverable consensus number
      [>= n] iff [n]-recording, so the recoverable consensus number equals
      the largest [n] for which the type is [n]-recording.

    Both conditions are downward closed in [n] (drop a process from a team
    of size at least two), so a linear upward scan is exact; the test suite
    checks downward closure explicitly on the gallery.  Because some types
    (CAS, sticky bits) satisfy the conditions for every [n], the scan is
    bounded by a [cap] and the result distinguishes exact answers from
    lower bounds.

    Every entry point returns the unified {!Analysis} shapes; the derived
    consensus-number views live there ({!Analysis.consensus_number},
    {!Analysis.recoverable_consensus_number}).  The standalone
    [consensus_number] / [recoverable_consensus_number] accessors and the
    ad-hoc [analysis] record of earlier revisions are gone.  For parallel
    or cached analysis of many types, use [Engine.analyze_all] from
    [rcn_engine], which returns the same {!Analysis.t} bit for bit. *)

type bound = Exact of int | At_least of int
(** A scan outcome summarized as a number: kept for callers (robustness
    reports, tests) that compare levels without certificates. *)

val equal_bound : bound -> bound -> bool
val pp_bound : Format.formatter -> bound -> unit
val bound_to_string : bound -> string

val bound_of_level : Analysis.level -> bound
(** Forget the certificate: [Exact v] or [At_least v]. *)

val default_cap : int

val max_discerning : ?cap:int -> Objtype.t -> Analysis.level
(** Largest [n <= cap] (default cap 5) such that the type is
    [n]-discerning; exactly 1 if not even 2-discerning, [At_least cap] when
    still discerning at the cap. *)

val max_recording : ?cap:int -> Objtype.t -> Analysis.level
(** Same, for the [n]-recording condition. *)

val analyze : ?cap:int -> Objtype.t -> Analysis.t
(** Both scans in one {!Analysis.t} record, for tables (experiment E5). *)
