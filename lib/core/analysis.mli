(** The unified result record of the determining procedure.

    One analysis collapses everything a decider run can say about a finite
    deterministic type: its name, readability, the max-discerning and
    max-recording levels (each either exact or a lower bound when the scan
    hit its cap, with the witnessing certificate at the highest level
    reached), and the wall-clock time the deciders spent.

    Both {!Numbers.analyze} and the parallel [Engine.analyze_all] return
    this record; the consensus-number views are derived accessors rather
    than stored fields, so there is exactly one result shape. *)

type status =
  | Exact  (** the scan found the precise level *)
  | At_least  (** the scan stopped at its cap; the level is a lower bound *)

type level = {
  value : int;
  status : status;
  certificate : Certificate.t option;
      (** a witness at the highest level reached; [None] when the level is
          exactly 1 (the condition is vacuous for one process) *)
}

type t = {
  type_name : string;
  readable : bool;
  discerning : level;  (** largest [n <= cap] such that the type is [n]-discerning *)
  recording : level;  (** same, for the [n]-recording condition *)
  elapsed : float;  (** seconds of wall-clock time spent by the deciders *)
}

val level_value : level -> int
val is_exact : level -> bool

val equal_level : level -> level -> bool
(** Equality of (value, status); certificates are witnesses, not results. *)

val equal : t -> t -> bool
(** Equality of everything except [elapsed] (and modulo certificates, as in
    {!equal_level}) — what parity between sequential and parallel runs
    means.  The engine's parity tests additionally compare certificates
    field by field. *)

val consensus_number : t -> level option
(** [Some] of the discerning level for readable types, where Ruppert's
    characterization makes the consensus number exactly max-discerning;
    [None] for non-readable types, whose consensus number is not determined
    by discerning alone (the paper's [T_{n,n'}] is the canonical example). *)

val recoverable_consensus_number : t -> level option
(** [Some] of the recording level for readable types — exact by DFFR
    Theorem 8 plus the paper's Theorem 13; [None] for non-readable types
    (for [T_{n,n'}], max-recording is [n-1] while the true recoverable
    consensus number is [n']). *)

val pp_level : Format.formatter -> level -> unit
(** ["3"] for exact levels, [">=3"] for lower bounds. *)

val level_to_string : level -> string

val pp : Format.formatter -> t -> unit
(** The E5 table row: name, readability, levels and derived numbers. *)
