type bound = Exact of int | At_least of int

let equal_bound a b =
  match (a, b) with
  | Exact x, Exact y | At_least x, At_least y -> x = y
  | Exact _, At_least _ | At_least _, Exact _ -> false

let pp_bound ppf = function
  | Exact n -> Format.pp_print_int ppf n
  | At_least n -> Format.fprintf ppf ">=%d" n

let bound_to_string b = Format.asprintf "%a" pp_bound b

let bound_of_level (l : Analysis.level) =
  match l.Analysis.status with
  | Analysis.Exact -> Exact l.Analysis.value
  | Analysis.At_least -> At_least l.Analysis.value

let default_cap = 5

let scan condition ?(cap = default_cap) t =
  if cap < 2 then invalid_arg "Numbers: cap must be at least 2";
  let rec loop n best =
    if n > cap then
      { Analysis.value = cap; status = Analysis.At_least; certificate = best }
    else
      match Decide.search condition t ~n with
      | Some c -> loop (n + 1) (Some c)
      | None -> { Analysis.value = n - 1; status = Analysis.Exact; certificate = best }
  in
  loop 2 None

let max_discerning ?cap t = scan Decide.Discerning ?cap t
let max_recording ?cap t = scan Decide.Recording ?cap t

let analyze ?cap t =
  let started = Obs.Clock.now () in
  let discerning = max_discerning ?cap t in
  let recording = max_recording ?cap t in
  {
    Analysis.type_name = t.Objtype.name;
    readable = Objtype.is_readable t;
    discerning;
    recording;
    elapsed = Obs.Clock.now () -. started;
  }
