type report = {
  per_type : (string * Analysis.level) list;
  combined : Numbers.bound;
  strongest : string;
  witness : Certificate.t option;
}

let level_key (b : Numbers.bound) =
  (* Order bounds: At_least k dominates Exact k (it may be larger). *)
  match b with Numbers.Exact n -> (n, 0) | Numbers.At_least n -> (n, 1)

let key_of_level l = level_key (Numbers.bound_of_level l)

let analyze ?cap types =
  if types = [] then invalid_arg "Robustness.analyze: empty type set";
  List.iter
    (fun t ->
      if not (Objtype.is_readable t) then
        invalid_arg
          (Printf.sprintf "Robustness.analyze: %s is not readable" t.Objtype.name))
    types;
  let per_type =
    List.map (fun t -> (t.Objtype.name, Numbers.max_recording ?cap t)) types
  in
  let strongest, best =
    List.fold_left
      (fun ((_, best) as acc) ((_, level) as entry) ->
        if key_of_level level > key_of_level best then entry else acc)
      (List.hd per_type) (List.tl per_type)
  in
  {
    per_type;
    combined = Numbers.bound_of_level best;
    strongest;
    witness = best.Analysis.certificate;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, (level : Analysis.level)) ->
      Format.fprintf ppf "%-18s max-recording %a@," name Analysis.pp_level level)
    r.per_type;
  Format.fprintf ppf "combined (robustness): %a, attained by %s@]" Numbers.pp_bound r.combined
    r.strongest

type product_report = {
  left : string;
  right : string;
  left_level : Numbers.bound;
  right_level : Numbers.bound;
  product_level : Numbers.bound;
  robust : bool;
}

let check_product ?cap t1 t2 =
  List.iter
    (fun (t : Objtype.t) ->
      if not (Objtype.is_readable t) then
        invalid_arg (Printf.sprintf "Robustness.check_product: %s is not readable" t.Objtype.name))
    [ t1; t2 ];
  let level t = Numbers.bound_of_level (Numbers.max_recording ?cap t) in
  let left_level = level t1 and right_level = level t2 in
  let product_level = level (Objtype.product t1 t2) in
  let robust =
    fst (level_key product_level) <= max (fst (level_key left_level)) (fst (level_key right_level))
  in
  {
    left = t1.Objtype.name;
    right = t2.Objtype.name;
    left_level;
    right_level;
    product_level;
    robust;
  }

let pp_product_report ppf r =
  Format.fprintf ppf "%s (rec %a) x %s (rec %a): product rec %a — %s" r.left Numbers.pp_bound
    r.left_level r.right Numbers.pp_bound r.right_level Numbers.pp_bound r.product_level
    (if r.robust then "robust" else "NOT ROBUST (would contradict Theorem 14)")
