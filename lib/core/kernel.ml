(* The compiled decision kernel.  See kernel.mli for the design overview;
   the invariants that matter for correctness are spelled out inline. *)

type condition = Discerning | Recording
type mode = Reference | Tables | Trie

let mode_of_string = function
  | "on" | "trie" -> Ok Trie
  | "tables" -> Ok Tables
  | "off" | "reference" -> Ok Reference
  | s -> Error (`Msg (Printf.sprintf "unknown kernel mode %S (expected on|tables|off|reference)" s))

let mode_to_string = function Reference -> "reference" | Tables -> "tables" | Trie -> "trie"

(* ------------------------------------------------------------------ *)
(* Sorted-multiset combinatorics.  A team of k processes in nondecreasing
   process order receives a nondecreasing (lex-sorted) sequence of k ops
   drawn from [0 .. m-1]; there are C(m+k-1, k) of them and the reference
   enumeration ([Decide.sorted_assignments]) emits them in lex order. *)

(* C(m+k-1, k) via the incremental product C(m-1+i, i) — each partial
   product is itself a binomial, so the division is exact. *)
let multiset_count m k =
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (m - 1 + i) / i
  done;
  !acc

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

(* Fill [buf.(0 .. k-1)] with the [rank]-th (0-based) nondecreasing
   sequence over [0 .. m-1] in lex order.  Sequences with first element
   [o] at a given position number C((m-o)+rest-1, rest), so lex unranking
   is a cumulative scan per position. *)
let unrank_sorted ~m ~k rank buf =
  let rank = ref rank and lowest = ref 0 in
  for pos = 0 to k - 1 do
    let o = ref !lowest in
    let placed = ref false in
    while not !placed do
      let below = multiset_count (m - !o) (k - pos - 1) in
      if !rank < below then placed := true
      else begin
        rank := !rank - below;
        incr o
      end
    done;
    buf.(pos) <- !o;
    lowest := !o
  done

(* Step [buf.(0 .. k-1)] to its lex successor in place; [false] on wrap
   (the last sequence, all [m-1]).  Successor: bump the rightmost slot
   below [m-1] and level everything to its right at the new value. *)
let next_sorted buf k m =
  let j = ref (k - 1) in
  while !j >= 0 && buf.(!j) = m - 1 do
    decr j
  done;
  if !j < 0 then false
  else begin
    let v = buf.(!j) + 1 in
    for i = !j to k - 1 do
      buf.(i) <- v
    done;
    true
  end

(* ------------------------------------------------------------------ *)
(* Closed-form candidate counts (satellite: count_candidates without
   enumeration).  The pruned space fixes p_0 on team T_0 and, within a
   team, only sorted op assignments survive the symmetry quotient. *)

let count (ty : Objtype.t) ~n =
  if n < 2 then invalid_arg "Kernel.count: need n >= 2";
  let m = ty.Objtype.num_ops in
  let per_u = ref 0 in
  for size1 = 1 to n - 1 do
    (* C(n-1, size1) partitions put [size1] of processes 1..n-1 on T_1. *)
    per_u := !per_u + (binomial (n - 1) size1 * multiset_count m (n - size1) * multiset_count m size1)
  done;
  ty.Objtype.num_values * !per_u

let count_naive (ty : Objtype.t) ~n =
  if n < 2 then invalid_arg "Kernel.count_naive: need n >= 2";
  let pow = ref 1 in
  for _ = 1 to n do
    pow := !pow * ty.Objtype.num_ops
  done;
  ty.Objtype.num_values * ((1 lsl (n - 1)) - 1) * !pow

(* ------------------------------------------------------------------ *)
(* Shared trie memo.  Tries depend only on the process count, so every
   type decided at the same [n] — the census case — shares one.  Reads
   after [warm_trie] are lock-free from the caller's point of view
   (the table is only mutated under the lock and lookups take it too,
   but the hit path holds it for a hash probe only). *)

let trie_lock = Mutex.create ()
let tries : (int, Sched.Trie.t) Hashtbl.t = Hashtbl.create 8

let shared_trie ?obs ~nprocs () =
  let fresh, trie =
    Mutex.protect trie_lock (fun () ->
        match Hashtbl.find_opt tries nprocs with
        | Some trie -> (false, trie)
        | None ->
            let trie = Sched.Trie.of_nprocs ~nprocs in
            Hashtbl.add tries nprocs trie;
            (true, trie))
  in
  (match obs with
  | Some obs ->
      let c = Obs.counter obs "decide.trie_nodes" in
      if fresh then Obs.Metrics.Counter.add c (Sched.Trie.num_nodes trie)
  | None -> ());
  trie

let warm_trie ?obs ~nprocs () = ignore (shared_trie ?obs ~nprocs ())

(* ------------------------------------------------------------------ *)
(* Compilation. *)

(* One team partition, precompiled.  [team.(i)] follows the reference
   convention (true = T_1, process 0 always T_0); [t0bits]/[t1bits] are
   the same split as first-process bitmasks.  [procs0]/[procs1] list each
   team's members in increasing order — the order the sorted op
   assignments bind to.  [count0 * count1 = block] candidates live at
   ranks [start .. start + block - 1] within each initial-value block,
   T_0's assignment major (the reference nesting: ops0 outer). *)
type part = {
  team : bool array;
  t0bits : int;
  t1bits : int;
  size0 : int;
  size1 : int;
  procs0 : int array;
  procs1 : int array;
  count1 : int;
  block : int;
  start : int;
}

type t = {
  ty : Objtype.t;
  n : int;
  nv : int;
  no : int;
  nr : int;
  next : int array;
  resp : int array;
  (* trie arrays, denormalized out of Sched.Trie for the inner loops *)
  t_nodes : int;
  t_parent : int array;
  t_proc : int array;
  t_first : int array;
  t_depth : int array;
  parts : part array;
  per_u : int;
  total : int;
  c_evals : Obs.Metrics.Counter.t option;
  c_pruned : Obs.Metrics.Counter.t option;
}

let compile ?obs (ty : Objtype.t) ~n =
  if n < 2 then invalid_arg "Kernel.compile: need n >= 2";
  let nv = ty.Objtype.num_values and no = ty.Objtype.num_ops and nr = ty.Objtype.num_responses in
  let next = Array.make (nv * no) 0 and resp = Array.make (nv * no) 0 in
  for v = 0 to nv - 1 do
    for o = 0 to no - 1 do
      let r, v' = ty.Objtype.delta v o in
      next.((v * no) + o) <- v';
      resp.((v * no) + o) <- r
    done
  done;
  let trie = shared_trie ?obs ~nprocs:n () in
  let nparts = (1 lsl (n - 1)) - 1 in
  let start = ref 0 in
  let parts =
    Array.init nparts (fun idx ->
        let mask = idx + 1 in
        let team = Array.init n (fun i -> i > 0 && (mask lsr (i - 1)) land 1 = 1) in
        let t0 = ref [] and t1 = ref [] in
        for i = n - 1 downto 0 do
          if team.(i) then t1 := i :: !t1 else t0 := i :: !t0
        done;
        let procs0 = Array.of_list !t0 and procs1 = Array.of_list !t1 in
        let size0 = Array.length procs0 and size1 = Array.length procs1 in
        let bits a = Array.fold_left (fun acc i -> acc lor (1 lsl i)) 0 a in
        let count0 = multiset_count no size0 and count1 = multiset_count no size1 in
        let block = count0 * count1 in
        let p =
          {
            team;
            t0bits = bits procs0;
            t1bits = bits procs1;
            size0;
            size1;
            procs0;
            procs1;
            count1;
            block;
            start = !start;
          }
        in
        start := !start + block;
        p)
  in
  let per_u = !start in
  {
    ty;
    n;
    nv;
    no;
    nr;
    next;
    resp;
    t_nodes = Sched.Trie.num_nodes trie;
    t_parent = Sched.Trie.parent trie;
    t_proc = Sched.Trie.proc trie;
    t_first = Sched.Trie.first trie;
    t_depth = Sched.Trie.depth trie;
    parts;
    per_u;
    total = nv * per_u;
    c_evals = Option.map (fun o -> Obs.counter o "decide.kernel_evals") obs;
    c_pruned = Option.map (fun o -> Obs.counter o "decide.partitions_pruned") obs;
  }

let total k = k.total

(* ------------------------------------------------------------------ *)
(* Scratch. *)

type scratch = {
  value : int array; (* per trie node: folded final value; value.(0) = u *)
  resp_at : int array; (* per trie node: response of the node's last step *)
  rec_mask : int array; (* per final value: bitmask of first-processes *)
  key_mask : int array; (* per (proc, resp, final) key: same bitmask *)
  touched : int array; (* stack of keys with a nonzero mask *)
  path : int array; (* Tables mode: one schedule's processes, root first *)
  ops : int array; (* current candidate's op per process *)
  ops0 : int array; (* T_0's sorted assignment (first size0 slots used) *)
  ops1 : int array; (* T_1's sorted assignment *)
  proc_resp : int array; (* Tables mode: last response per process *)
  memo : (int, int array) Hashtbl.t; (* (ops, condition) -> masks *)
  mutable memo_u : int; (* initial value the memo is valid for *)
}

let scratch k =
  {
    value = Array.make k.t_nodes 0;
    resp_at = Array.make k.t_nodes 0;
    rec_mask = Array.make k.nv 0;
    key_mask = Array.make (k.n * k.nr * k.nv) 0;
    touched = Array.make (k.n * k.nr * k.nv) 0;
    path = Array.make k.n 0;
    ops = Array.make k.n 0;
    ops0 = Array.make k.n 0;
    ops1 = Array.make k.n 0;
    proc_resp = Array.make k.n 0;
    memo = Hashtbl.create 1024;
    memo_u = -1;
  }

(* Memo key: the ops array as a base-[no] number, tagged with the
   condition (one scratch may serve both in [check]). *)
let ops_code k (s : scratch) cond =
  let c = ref (match cond with Recording -> 0 | Discerning -> 1) in
  for i = k.n - 1 downto 0 do
    c := (!c * k.no) + s.ops.(i)
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Evaluation: fold every schedule for the current (u, s.ops).

   Trie mode: node values extend their parent's by one transition, so the
   whole set costs one transition per node.  Tables mode deliberately
   refolds each schedule end to end (rebuilding its process path by
   walking parents) — same flat tables, no prefix sharing — to isolate
   the trie's contribution in the e18 ablation. *)

let eval_rec_trie k s ~u =
  Array.fill s.rec_mask 0 k.nv 0;
  s.value.(0) <- u;
  for i = 1 to k.t_nodes - 1 do
    let v = k.next.((s.value.(k.t_parent.(i)) * k.no) + s.ops.(k.t_proc.(i))) in
    s.value.(i) <- v;
    s.rec_mask.(v) <- s.rec_mask.(v) lor (1 lsl k.t_first.(i))
  done

let eval_rec_tables k s ~u =
  Array.fill s.rec_mask 0 k.nv 0;
  for node = 1 to k.t_nodes - 1 do
    let d = k.t_depth.(node) in
    let a = ref node in
    for j = d - 1 downto 0 do
      s.path.(j) <- k.t_proc.(!a);
      a := k.t_parent.(!a)
    done;
    let v = ref u in
    for j = 0 to d - 1 do
      v := k.next.((!v * k.no) + s.ops.(s.path.(j)))
    done;
    s.rec_mask.(!v) <- s.rec_mask.(!v) lor (1 lsl k.t_first.(node))
  done

(* Discerning needs, per schedule, the set of (process, its response,
   final value) triples.  In the trie each node's schedule is its root
   path, and each ancestor contributes its own last step's response, so
   we walk ancestors per node; total cost is one transition per node
   plus one ancestor walk per node (= total_steps key updates, the same
   count the reference pays, but each is an array or-in, not a Hashtbl
   probe).  Returns the number of touched keys. *)
let eval_disc_trie k s ~u =
  s.value.(0) <- u;
  for i = 1 to k.t_nodes - 1 do
    let idx = (s.value.(k.t_parent.(i)) * k.no) + s.ops.(k.t_proc.(i)) in
    s.value.(i) <- k.next.(idx);
    s.resp_at.(i) <- k.resp.(idx)
  done;
  let nt = ref 0 in
  for i = 1 to k.t_nodes - 1 do
    let fbit = 1 lsl k.t_first.(i) and f = s.value.(i) in
    let a = ref i in
    while !a > 0 do
      let key = (((k.t_proc.(!a) * k.nr) + s.resp_at.(!a)) * k.nv) + f in
      if s.key_mask.(key) = 0 then begin
        s.touched.(!nt) <- key;
        incr nt
      end;
      s.key_mask.(key) <- s.key_mask.(key) lor fbit;
      a := k.t_parent.(!a)
    done
  done;
  !nt

let eval_disc_tables k s ~u =
  let nt = ref 0 in
  for node = 1 to k.t_nodes - 1 do
    let d = k.t_depth.(node) in
    let a = ref node in
    for j = d - 1 downto 0 do
      s.path.(j) <- k.t_proc.(!a);
      a := k.t_parent.(!a)
    done;
    let v = ref u in
    for j = 0 to d - 1 do
      let p = s.path.(j) in
      let idx = (!v * k.no) + s.ops.(p) in
      s.proc_resp.(p) <- k.resp.(idx);
      v := k.next.(idx)
    done;
    let fbit = 1 lsl k.t_first.(node) and f = !v in
    for j = 0 to d - 1 do
      let p = s.path.(j) in
      let key = (((p * k.nr) + s.proc_resp.(p)) * k.nv) + f in
      if s.key_mask.(key) = 0 then begin
        s.touched.(!nt) <- key;
        incr nt
      end;
      s.key_mask.(key) <- s.key_mask.(key) lor fbit
    done
  done;
  !nt

let reset_keys s nt =
  for i = 0 to nt - 1 do
    s.key_mask.(s.touched.(i)) <- 0
  done

(* ------------------------------------------------------------------ *)
(* Classification: one evaluation's masks against one partition.

   Recording (reference [check_recording_fast]): every final value must
   be reached only by first-processes of a single team, and if a
   nonempty schedule ends at the initial value [u], the *other* team
   must be a singleton. *)

let classify_rec k (masks : int array) part ~u =
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < k.nv do
    let m = masks.(!v) in
    if m land part.t0bits <> 0 && m land part.t1bits <> 0 then ok := false;
    incr v
  done;
  !ok
  && (masks.(u) land part.t0bits = 0 || part.size1 = 1)
  && (masks.(u) land part.t1bits = 0 || part.size0 = 1)

(* Discerning (reference [check_discerning_fast]): every
   (process, response, final value) triple must be produced only by
   schedules whose first process is on a single team. *)
let classify_disc_scratch s nt part =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < nt do
    let m = s.key_mask.(s.touched.(!i)) in
    if m land part.t0bits <> 0 && m land part.t1bits <> 0 then ok := false;
    incr i
  done;
  !ok

let classify_disc_masks (masks : int array) part =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < Array.length masks do
    let m = masks.(!i) in
    if m land part.t0bits <> 0 && m land part.t1bits <> 0 then ok := false;
    incr i
  done;
  !ok

let count_opt = function Some c -> Obs.Metrics.Counter.incr c | None -> ()

(* Decide the candidate currently materialized in [s.ops] against
   [part], evaluating or reusing the (u, ops) memo as the mode allows. *)
let check_current ~mode k s cond ~u part =
  match mode with
  | Reference -> invalid_arg "Kernel: mode Reference has no compiled path (use Decide)"
  | Tables -> (
      count_opt k.c_evals;
      match cond with
      | Recording ->
          eval_rec_tables k s ~u;
          classify_rec k s.rec_mask part ~u
      | Discerning ->
          let nt = eval_disc_tables k s ~u in
          let ok = classify_disc_scratch s nt part in
          reset_keys s nt;
          ok)
  | Trie -> (
      if s.memo_u <> u then begin
        Hashtbl.reset s.memo;
        s.memo_u <- u
      end;
      let code = ops_code k s cond in
      match Hashtbl.find_opt s.memo code with
      | Some masks -> (
          count_opt k.c_pruned;
          match cond with
          | Recording -> classify_rec k masks part ~u
          | Discerning -> classify_disc_masks masks part)
      | None -> (
          count_opt k.c_evals;
          match cond with
          | Recording ->
              eval_rec_trie k s ~u;
              let masks = Array.sub s.rec_mask 0 k.nv in
              Hashtbl.add s.memo code masks;
              classify_rec k masks part ~u
          | Discerning ->
              let nt = eval_disc_trie k s ~u in
              let masks = Array.init nt (fun i -> s.key_mask.(s.touched.(i))) in
              reset_keys s nt;
              Hashtbl.add s.memo code masks;
              classify_disc_masks masks part))

(* ------------------------------------------------------------------ *)
(* Ranked enumeration.  Rank order matches the reference
   [Decide.candidates] exactly: initial value major, then partitions in
   mask order, then T_0's sorted assignment, then T_1's. *)

let fill_ops s part =
  for j = 0 to part.size0 - 1 do
    s.ops.(part.procs0.(j)) <- s.ops0.(j)
  done;
  for j = 0 to part.size1 - 1 do
    s.ops.(part.procs1.(j)) <- s.ops1.(j)
  done

let fill_ops1 s part =
  for j = 0 to part.size1 - 1 do
    s.ops.(part.procs1.(j)) <- s.ops1.(j)
  done

let candidate k rank =
  if rank < 0 || rank >= k.total then invalid_arg "Kernel.candidate: rank out of range";
  let u = rank / k.per_u and rem = rank mod k.per_u in
  let pi = ref 0 in
  while k.parts.(!pi).start + k.parts.(!pi).block <= rem do
    incr pi
  done;
  let part = k.parts.(!pi) in
  let i = rem - part.start in
  let ops0 = Array.make (max part.size0 1) 0 and ops1 = Array.make (max part.size1 1) 0 in
  unrank_sorted ~m:k.no ~k:part.size0 (i / part.count1) ops0;
  unrank_sorted ~m:k.no ~k:part.size1 (i mod part.count1) ops1;
  let ops = Array.make k.n 0 in
  for j = 0 to part.size0 - 1 do
    ops.(part.procs0.(j)) <- ops0.(j)
  done;
  for j = 0 to part.size1 - 1 do
    ops.(part.procs1.(j)) <- ops1.(j)
  done;
  (u, Array.copy part.team, ops)

exception Stopped

let search_range ?(mode = Trie) k s cond ~lo ~hi ~stop =
  (match mode with
  | Reference -> invalid_arg "Kernel.search_range: mode Reference has no compiled path"
  | Tables | Trie -> ());
  let hi = min hi k.total and lo = max lo 0 in
  if lo >= hi then (None, 0)
  else begin
    let nparts = Array.length k.parts in
    let checked = ref 0 and witness = ref None in
    let rank = ref lo in
    let u = ref (lo / k.per_u) in
    let rem = ref (lo mod k.per_u) in
    (try
       while !witness = None && !rank < hi do
         (* locate the partition block containing [rem] *)
         let pi = ref 0 in
         while k.parts.(!pi).start + k.parts.(!pi).block <= !rem do
           incr pi
         done;
         while !witness = None && !rank < hi && !pi < nparts do
           let part = k.parts.(!pi) in
           let i = !rem - part.start in
           unrank_sorted ~m:k.no ~k:part.size0 (i / part.count1) s.ops0;
           unrank_sorted ~m:k.no ~k:part.size1 (i mod part.count1) s.ops1;
           fill_ops s part;
           let more = ref true in
           while !witness = None && !rank < hi && !more do
             if stop !rank then raise Stopped;
             incr checked;
             if check_current ~mode k s cond ~u:!u part then witness := Some !rank
             else begin
               incr rank;
               if next_sorted s.ops1 part.size1 k.no then fill_ops1 s part
               else if next_sorted s.ops0 part.size0 k.no then begin
                 Array.fill s.ops1 0 part.size1 0;
                 fill_ops s part
               end
               else more := false
             end
           done;
           if !witness = None then begin
             rem := part.start + part.block;
             incr pi
           end
         done;
         if !witness = None then begin
           incr u;
           rem := 0
         end
       done
     with Stopped -> ());
    (!witness, !checked)
  end

(* ------------------------------------------------------------------ *)
(* Single-candidate check, for the fixed-partition search.  Builds a
   throwaway partition record (rank fields unused) and reuses the
   scratch memo across calls. *)

let check ?(mode = Trie) k s cond ~u ~team ~ops =
  (match mode with
  | Reference -> invalid_arg "Kernel.check: mode Reference has no compiled path"
  | Tables | Trie -> ());
  if Array.length team <> k.n || Array.length ops <> k.n then
    invalid_arg "Kernel.check: team/ops arity mismatch";
  Array.blit ops 0 s.ops 0 k.n;
  let t0bits = ref 0 and t1bits = ref 0 and size0 = ref 0 and size1 = ref 0 in
  for i = 0 to k.n - 1 do
    if team.(i) then begin
      t1bits := !t1bits lor (1 lsl i);
      incr size1
    end
    else begin
      t0bits := !t0bits lor (1 lsl i);
      incr size0
    end
  done;
  let part =
    {
      team;
      t0bits = !t0bits;
      t1bits = !t1bits;
      size0 = !size0;
      size1 = !size1;
      procs0 = [||];
      procs1 = [||];
      count1 = 0;
      block = 0;
      start = 0;
    }
  in
  check_current ~mode k s cond ~u part
