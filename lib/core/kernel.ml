(* The compiled decision kernel.  See kernel.mli for the design overview;
   the invariants that matter for correctness are spelled out inline. *)

type condition = Discerning | Recording
type mode = Reference | Tables | Trie

let mode_of_string = function
  | "on" | "trie" -> Ok Trie
  | "tables" -> Ok Tables
  | "off" | "reference" -> Ok Reference
  | s -> Error (`Msg (Printf.sprintf "unknown kernel mode %S (expected on|tables|off|reference)" s))

let mode_to_string = function Reference -> "reference" | Tables -> "tables" | Trie -> "trie"

(* ------------------------------------------------------------------ *)
(* Sorted-multiset combinatorics.  A team of k processes in nondecreasing
   process order receives a nondecreasing (lex-sorted) sequence of k ops
   drawn from [0 .. m-1]; there are C(m+k-1, k) of them and the reference
   enumeration ([Decide.sorted_assignments]) emits them in lex order. *)

(* C(m+k-1, k) via the incremental product C(m-1+i, i) — each partial
   product is itself a binomial, so the division is exact. *)
let multiset_count m k =
  let acc = ref 1 in
  for i = 1 to k do
    acc := !acc * (m - 1 + i) / i
  done;
  !acc

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

(* Fill [buf.(0 .. k-1)] with the [rank]-th (0-based) nondecreasing
   sequence over [0 .. m-1] in lex order.  Sequences with first element
   [o] at a given position number C((m-o)+rest-1, rest), so lex unranking
   is a cumulative scan per position. *)
let unrank_sorted ~m ~k rank buf =
  let rank = ref rank and lowest = ref 0 in
  for pos = 0 to k - 1 do
    let o = ref !lowest in
    let placed = ref false in
    while not !placed do
      let below = multiset_count (m - !o) (k - pos - 1) in
      if !rank < below then placed := true
      else begin
        rank := !rank - below;
        incr o
      end
    done;
    buf.(pos) <- !o;
    lowest := !o
  done

(* Step [buf.(0 .. k-1)] to its lex successor in place; [false] on wrap
   (the last sequence, all [m-1]).  Successor: bump the rightmost slot
   below [m-1] and level everything to its right at the new value. *)
let next_sorted buf k m =
  let j = ref (k - 1) in
  while !j >= 0 && buf.(!j) = m - 1 do
    decr j
  done;
  if !j < 0 then false
  else begin
    let v = buf.(!j) + 1 in
    for i = !j to k - 1 do
      buf.(i) <- v
    done;
    true
  end

(* ------------------------------------------------------------------ *)
(* Closed-form candidate counts (satellite: count_candidates without
   enumeration).  The pruned space fixes p_0 on team T_0 and, within a
   team, only sorted op assignments survive the symmetry quotient. *)

let count (ty : Objtype.t) ~n =
  if n < 2 then invalid_arg "Kernel.count: need n >= 2";
  let m = ty.Objtype.num_ops in
  let per_u = ref 0 in
  for size1 = 1 to n - 1 do
    (* C(n-1, size1) partitions put [size1] of processes 1..n-1 on T_1. *)
    per_u := !per_u + (binomial (n - 1) size1 * multiset_count m (n - size1) * multiset_count m size1)
  done;
  ty.Objtype.num_values * !per_u

let count_naive (ty : Objtype.t) ~n =
  if n < 2 then invalid_arg "Kernel.count_naive: need n >= 2";
  let pow = ref 1 in
  for _ = 1 to n do
    pow := !pow * ty.Objtype.num_ops
  done;
  ty.Objtype.num_values * ((1 lsl (n - 1)) - 1) * !pow

(* ------------------------------------------------------------------ *)
(* Shared trie memo.  Tries depend only on the process count, so every
   type decided at the same [n] — the census case — shares one.  Reads
   after [warm_trie] are lock-free from the caller's point of view
   (the table is only mutated under the lock and lookups take it too,
   but the hit path holds it for a hash probe only). *)

let trie_lock = Mutex.create ()
let tries : (int, Sched.Trie.t) Hashtbl.t = Hashtbl.create 8

let shared_trie ?obs ~nprocs () =
  let fresh, trie =
    Mutex.protect trie_lock (fun () ->
        match Hashtbl.find_opt tries nprocs with
        | Some trie -> (false, trie)
        | None ->
            let trie = Sched.Trie.of_nprocs ~nprocs in
            Hashtbl.add tries nprocs trie;
            (true, trie))
  in
  (match obs with
  | Some obs ->
      let c = Obs.counter obs "decide.trie_nodes" in
      if fresh then Obs.Metrics.Counter.add c (Sched.Trie.num_nodes trie)
  | None -> ());
  trie

let warm_trie ?obs ~nprocs () = ignore (shared_trie ?obs ~nprocs ())

(* ------------------------------------------------------------------ *)
(* Compilation. *)

(* One team partition, precompiled.  [team.(i)] follows the reference
   convention (true = T_1, process 0 always T_0); [t0bits]/[t1bits] are
   the same split as first-process bitmasks.  [procs0]/[procs1] list each
   team's members in increasing order — the order the sorted op
   assignments bind to.  [count0 * count1 = block] candidates live at
   ranks [start .. start + block - 1] within each initial-value block,
   T_0's assignment major (the reference nesting: ops0 outer). *)
type part = {
  team : bool array;
  t0bits : int;
  t1bits : int;
  size0 : int;
  size1 : int;
  procs0 : int array;
  procs1 : int array;
  count1 : int;
  block : int;
  start : int;
}

type t = {
  ty : Objtype.t;
  n : int;
  nv : int;
  no : int;
  nr : int;
  next : int array;
  resp : int array;
  (* trie arrays, denormalized out of Sched.Trie for the inner loops *)
  t_nodes : int;
  t_parent : int array;
  t_proc : int array;
  t_first : int array;
  t_depth : int array;
  parts : part array;
  per_u : int;
  total : int;
  c_evals : Obs.Metrics.Counter.t option;
  c_pruned : Obs.Metrics.Counter.t option;
  c_patches : Obs.Metrics.Counter.t option;
  c_invalidated : Obs.Metrics.Counter.t option;
  c_reused : Obs.Metrics.Counter.t option;
}

let compile ?obs (ty : Objtype.t) ~n =
  if n < 2 then invalid_arg "Kernel.compile: need n >= 2";
  let nv = ty.Objtype.num_values and no = ty.Objtype.num_ops and nr = ty.Objtype.num_responses in
  let next = Array.make (nv * no) 0 and resp = Array.make (nv * no) 0 in
  for v = 0 to nv - 1 do
    for o = 0 to no - 1 do
      let r, v' = ty.Objtype.delta v o in
      next.((v * no) + o) <- v';
      resp.((v * no) + o) <- r
    done
  done;
  let trie = shared_trie ?obs ~nprocs:n () in
  let nparts = (1 lsl (n - 1)) - 1 in
  let start = ref 0 in
  let parts =
    Array.init nparts (fun idx ->
        let mask = idx + 1 in
        let team = Array.init n (fun i -> i > 0 && (mask lsr (i - 1)) land 1 = 1) in
        let t0 = ref [] and t1 = ref [] in
        for i = n - 1 downto 0 do
          if team.(i) then t1 := i :: !t1 else t0 := i :: !t0
        done;
        let procs0 = Array.of_list !t0 and procs1 = Array.of_list !t1 in
        let size0 = Array.length procs0 and size1 = Array.length procs1 in
        let bits a = Array.fold_left (fun acc i -> acc lor (1 lsl i)) 0 a in
        let count0 = multiset_count no size0 and count1 = multiset_count no size1 in
        let block = count0 * count1 in
        let p =
          {
            team;
            t0bits = bits procs0;
            t1bits = bits procs1;
            size0;
            size1;
            procs0;
            procs1;
            count1;
            block;
            start = !start;
          }
        in
        start := !start + block;
        p)
  in
  let per_u = !start in
  {
    ty;
    n;
    nv;
    no;
    nr;
    next;
    resp;
    t_nodes = Sched.Trie.num_nodes trie;
    t_parent = Sched.Trie.parent trie;
    t_proc = Sched.Trie.proc trie;
    t_first = Sched.Trie.first trie;
    t_depth = Sched.Trie.depth trie;
    parts;
    per_u;
    total = nv * per_u;
    c_evals = Option.map (fun o -> Obs.counter o "decide.kernel_evals") obs;
    c_pruned = Option.map (fun o -> Obs.counter o "decide.partitions_pruned") obs;
    c_patches = Option.map (fun o -> Obs.counter o "kernel.patches") obs;
    c_invalidated = Option.map (fun o -> Obs.counter o "kernel.masks_invalidated") obs;
    c_reused = Option.map (fun o -> Obs.counter o "kernel.masks_reused") obs;
  }

let total k = k.total

(* ------------------------------------------------------------------ *)
(* Scratch. *)

(* One memoized evaluation: the final-value (or discerning-key) masks of
   a given [(u, ops, condition)], plus the delta-invalidation metadata —
   [cells] is a bitset over the [nv * no] transition-table cells the trie
   fold read to produce [masks], recorded while [track] is on.  [patch]
   flips [valid] off for every entry watching the edited cell; [version]
   distinguishes successive recomputations of the same slot so the
   rank-indexed verdict cache below can tell a revalidated entry from
   the one it cached. *)
type entry = {
  mutable masks : int array;
  mutable cells : int array; (* bitset: cell [c] at word [c lsr 5], bit [c land 31] *)
  mutable valid : bool;
  mutable version : int;
}

let dummy_entry = { masks = [||]; cells = [||]; valid = false; version = -1 }

type scratch = {
  value : int array; (* per trie node: folded final value; value.(0) = u *)
  resp_at : int array; (* per trie node: response of the node's last step *)
  rec_mask : int array; (* per final value: bitmask of first-processes *)
  key_mask : int array; (* per (proc, resp, final) key: same bitmask *)
  touched : int array; (* stack of keys with a nonzero mask *)
  path : int array; (* Tables mode: one schedule's processes, root first *)
  ops : int array; (* current candidate's op per process *)
  ops0 : int array; (* T_0's sorted assignment (first size0 slots used) *)
  ops1 : int array; (* T_1's sorted assignment *)
  proc_resp : int array; (* Tables mode: last response per process *)
  memo : (int, entry) Hashtbl.t; (* (u, ops, condition) -> entry *)
  watch : entry list array; (* per cell: entries whose masks read it *)
  cur_cells : int array; (* bitset buffer for the eval in progress *)
  cell_words : int; (* length of [cur_cells] *)
  mutable track : bool; (* record cells / maintain [watch]? on after the first patch *)
  mutable patches_seen : int;
  mutable patch_events : int;
      (* bumped by every bucket-clearing event (patch, unpatch) and
         never rolled back — the guard telling an unpatch whether its
         window was quiet enough to restore snapshots (see [unpatch]) *)
  mutable vclock : int; (* issues entry versions; never reissued, so a
                           rolled-back version can't collide with a later
                           re-evaluation's in the verdict cache *)
  mutable last : entry; (* entry behind the most recent Trie classification *)
  (* Rank-indexed verdict cache, allocated at the first patch: slot
     [cond * total + rank] remembers which entry (at which version)
     classified that candidate and what it answered, so a re-scan after
     a patch costs one validity check per untouched candidate. *)
  mutable v_entry : entry array;
  mutable v_version : int array;
  mutable v_bool : Bytes.t;
  hint : int array;
      (* [exists]'s last witnessing rank per condition (Recording at 0,
         Discerning at 1), -1 when the last scan refuted.  Always
         re-verified before being trusted, so staleness is harmless. *)
}

let scratch k =
  {
    value = Array.make k.t_nodes 0;
    resp_at = Array.make k.t_nodes 0;
    rec_mask = Array.make k.nv 0;
    key_mask = Array.make (k.n * k.nr * k.nv) 0;
    touched = Array.make (k.n * k.nr * k.nv) 0;
    path = Array.make k.n 0;
    ops = Array.make k.n 0;
    ops0 = Array.make k.n 0;
    ops1 = Array.make k.n 0;
    proc_resp = Array.make k.n 0;
    memo = Hashtbl.create 1024;
    watch = Array.make (k.nv * k.no) [];
    cur_cells = Array.make (((k.nv * k.no) + 31) / 32) 0;
    cell_words = ((k.nv * k.no) + 31) / 32;
    track = false;
    patches_seen = 0;
    patch_events = 0;
    vclock = 0;
    last = dummy_entry;
    v_entry = [||];
    v_version = [||];
    v_bool = Bytes.empty;
    hint = [| -1; -1 |];
  }

(* Memo key: the ops array as a base-[no] number, tagged with the
   condition (one scratch may serve both in [check]) and the initial
   value — entries for every [u] coexist, so a patched scratch never
   throws evaluations away wholesale. *)
let memo_code k (s : scratch) cond ~u =
  let c = ref (match cond with Recording -> 0 | Discerning -> 1) in
  for i = k.n - 1 downto 0 do
    c := (!c * k.no) + s.ops.(i)
  done;
  (!c * k.nv) + u

(* ------------------------------------------------------------------ *)
(* Evaluation: fold every schedule for the current (u, s.ops).

   Trie mode: node values extend their parent's by one transition, so the
   whole set costs one transition per node.  Tables mode deliberately
   refolds each schedule end to end (rebuilding its process path by
   walking parents) — same flat tables, no prefix sharing — to isolate
   the trie's contribution in the e18 ablation. *)

let eval_rec_trie k s ~u =
  Array.fill s.rec_mask 0 k.nv 0;
  s.value.(0) <- u;
  if s.track then
    for i = 1 to k.t_nodes - 1 do
      let idx = (s.value.(k.t_parent.(i)) * k.no) + s.ops.(k.t_proc.(i)) in
      s.cur_cells.(idx lsr 5) <- s.cur_cells.(idx lsr 5) lor (1 lsl (idx land 31));
      let v = k.next.(idx) in
      s.value.(i) <- v;
      s.rec_mask.(v) <- s.rec_mask.(v) lor (1 lsl k.t_first.(i))
    done
  else
    for i = 1 to k.t_nodes - 1 do
      let v = k.next.((s.value.(k.t_parent.(i)) * k.no) + s.ops.(k.t_proc.(i))) in
      s.value.(i) <- v;
      s.rec_mask.(v) <- s.rec_mask.(v) lor (1 lsl k.t_first.(i))
    done

let eval_rec_tables k s ~u =
  Array.fill s.rec_mask 0 k.nv 0;
  for node = 1 to k.t_nodes - 1 do
    let d = k.t_depth.(node) in
    let a = ref node in
    for j = d - 1 downto 0 do
      s.path.(j) <- k.t_proc.(!a);
      a := k.t_parent.(!a)
    done;
    let v = ref u in
    for j = 0 to d - 1 do
      v := k.next.((!v * k.no) + s.ops.(s.path.(j)))
    done;
    s.rec_mask.(!v) <- s.rec_mask.(!v) lor (1 lsl k.t_first.(node))
  done

(* Discerning needs, per schedule, the set of (process, its response,
   final value) triples.  In the trie each node's schedule is its root
   path, and each ancestor contributes its own last step's response, so
   we walk ancestors per node; total cost is one transition per node
   plus one ancestor walk per node (= total_steps key updates, the same
   count the reference pays, but each is an array or-in, not a Hashtbl
   probe).  Returns the number of touched keys. *)
let eval_disc_trie k s ~u =
  s.value.(0) <- u;
  if s.track then
    for i = 1 to k.t_nodes - 1 do
      let idx = (s.value.(k.t_parent.(i)) * k.no) + s.ops.(k.t_proc.(i)) in
      s.cur_cells.(idx lsr 5) <- s.cur_cells.(idx lsr 5) lor (1 lsl (idx land 31));
      s.value.(i) <- k.next.(idx);
      s.resp_at.(i) <- k.resp.(idx)
    done
  else
    for i = 1 to k.t_nodes - 1 do
      let idx = (s.value.(k.t_parent.(i)) * k.no) + s.ops.(k.t_proc.(i)) in
      s.value.(i) <- k.next.(idx);
      s.resp_at.(i) <- k.resp.(idx)
    done;
  let nt = ref 0 in
  for i = 1 to k.t_nodes - 1 do
    let fbit = 1 lsl k.t_first.(i) and f = s.value.(i) in
    let a = ref i in
    while !a > 0 do
      let key = (((k.t_proc.(!a) * k.nr) + s.resp_at.(!a)) * k.nv) + f in
      if s.key_mask.(key) = 0 then begin
        s.touched.(!nt) <- key;
        incr nt
      end;
      s.key_mask.(key) <- s.key_mask.(key) lor fbit;
      a := k.t_parent.(!a)
    done
  done;
  !nt

let eval_disc_tables k s ~u =
  let nt = ref 0 in
  for node = 1 to k.t_nodes - 1 do
    let d = k.t_depth.(node) in
    let a = ref node in
    for j = d - 1 downto 0 do
      s.path.(j) <- k.t_proc.(!a);
      a := k.t_parent.(!a)
    done;
    let v = ref u in
    for j = 0 to d - 1 do
      let p = s.path.(j) in
      let idx = (!v * k.no) + s.ops.(p) in
      s.proc_resp.(p) <- k.resp.(idx);
      v := k.next.(idx)
    done;
    let fbit = 1 lsl k.t_first.(node) and f = !v in
    for j = 0 to d - 1 do
      let p = s.path.(j) in
      let key = (((p * k.nr) + s.proc_resp.(p)) * k.nv) + f in
      if s.key_mask.(key) = 0 then begin
        s.touched.(!nt) <- key;
        incr nt
      end;
      s.key_mask.(key) <- s.key_mask.(key) lor fbit
    done
  done;
  !nt

let reset_keys s nt =
  for i = 0 to nt - 1 do
    s.key_mask.(s.touched.(i)) <- 0
  done

(* ------------------------------------------------------------------ *)
(* Classification: one evaluation's masks against one partition.

   Recording (reference [check_recording_fast]): every final value must
   be reached only by first-processes of a single team, and if a
   nonempty schedule ends at the initial value [u], the *other* team
   must be a singleton. *)

let classify_rec k (masks : int array) part ~u =
  let ok = ref true in
  let v = ref 0 in
  while !ok && !v < k.nv do
    let m = masks.(!v) in
    if m land part.t0bits <> 0 && m land part.t1bits <> 0 then ok := false;
    incr v
  done;
  !ok
  && (masks.(u) land part.t0bits = 0 || part.size1 = 1)
  && (masks.(u) land part.t1bits = 0 || part.size0 = 1)

(* Discerning (reference [check_discerning_fast]): every
   (process, response, final value) triple must be produced only by
   schedules whose first process is on a single team. *)
let classify_disc_scratch s nt part =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < nt do
    let m = s.key_mask.(s.touched.(!i)) in
    if m land part.t0bits <> 0 && m land part.t1bits <> 0 then ok := false;
    incr i
  done;
  !ok

let classify_disc_masks (masks : int array) part =
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < Array.length masks do
    let m = masks.(!i) in
    if m land part.t0bits <> 0 && m land part.t1bits <> 0 then ok := false;
    incr i
  done;
  !ok

let count_opt = function Some c -> Obs.Metrics.Counter.incr c | None -> ()
let add_opt c n = match c with Some c -> Obs.Metrics.Counter.add c n | None -> ()

(* Register [e] in the watch buckets of every cell its last evaluation
   read.  Buckets are cleared when their cell is patched; an entry may
   linger in a bucket for a cell it no longer reads (it was invalidated
   and re-evaluated down a different path) — invalidation is idempotent
   and conservative, so stale registrations only cost a spurious
   re-evaluation, never a wrong answer. *)
let register_watch k (s : scratch) (e : entry) =
  let cells = k.nv * k.no in
  for c = 0 to cells - 1 do
    if e.cells.(c lsr 5) land (1 lsl (c land 31)) <> 0 then
      s.watch.(c) <- e :: s.watch.(c)
  done

(* Decide the candidate currently materialized in [s.ops] against
   [part], evaluating or reusing the (u, ops) memo as the mode allows. *)
let check_current ~mode k s cond ~u part =
  match mode with
  | Reference -> invalid_arg "Kernel: mode Reference has no compiled path (use Decide)"
  | Tables -> (
      count_opt k.c_evals;
      match cond with
      | Recording ->
          eval_rec_tables k s ~u;
          classify_rec k s.rec_mask part ~u
      | Discerning ->
          let nt = eval_disc_tables k s ~u in
          let ok = classify_disc_scratch s nt part in
          reset_keys s nt;
          ok)
  | Trie -> (
      let code = memo_code k s cond ~u in
      match Hashtbl.find_opt s.memo code with
      | Some e when e.valid -> (
          count_opt k.c_pruned;
          if s.patches_seen > 0 then count_opt k.c_reused;
          s.last <- e;
          match cond with
          | Recording -> classify_rec k e.masks part ~u
          | Discerning -> classify_disc_masks e.masks part)
      | stale ->
          count_opt k.c_evals;
          if s.track then Array.fill s.cur_cells 0 s.cell_words 0;
          let masks =
            match cond with
            | Recording ->
                eval_rec_trie k s ~u;
                Array.sub s.rec_mask 0 k.nv
            | Discerning ->
                let nt = eval_disc_trie k s ~u in
                let m = Array.init nt (fun i -> s.key_mask.(s.touched.(i))) in
                reset_keys s nt;
                m
          in
          let cells = if s.track then Array.copy s.cur_cells else [||] in
          let e =
            match stale with
            | Some e when e.masks = masks ->
                (* The edit did not change this evaluation's masks, so
                   every verdict derived from them stands: revalidate at
                   the *old* version and the rank verdict cache serves
                   all covering candidates again without
                   re-classification.  (Verdicts depend only on the
                   masks; the read-cell set may still differ.) *)
                e.cells <- cells;
                e.valid <- true;
                e
            | stale ->
                s.vclock <- s.vclock + 1;
                (match stale with
                | Some e ->
                    e.masks <- masks;
                    e.cells <- cells;
                    e.valid <- true;
                    e.version <- s.vclock;
                    e
                | None ->
                    let e = { masks; cells; valid = true; version = s.vclock } in
                    Hashtbl.add s.memo code e;
                    e)
          in
          if s.track then register_watch k s e;
          s.last <- e;
          (match cond with
          | Recording -> classify_rec k e.masks part ~u
          | Discerning -> classify_disc_masks e.masks part))

(* ------------------------------------------------------------------ *)
(* Patching.  A patch rewrites one transition-table cell in place and
   invalidates exactly the memoized evaluations registered as watching
   that cell.  The very first patch on a scratch has no cell metadata to
   consult (tracking was off), so it invalidates the whole memo once and
   switches tracking on; every later patch is O(watchers of the cell).

   Each entry a patch invalidates is first snapshotted (masks, read-cell
   bitset and version) into the patch token, which also records the
   patch-event counter at creation.  [unpatch] with a *quiet window* —
   no bucket-clearing event since the token's own patch — restores the
   table to exactly the state the snapshots were computed under, so it
   (a) invalidates the *window* entries, the ones evaluated under the
   mutant that read [c] (precisely the current watchers of [c]: the
   patch emptied that bucket, so everything in it registered during the
   window; a window evaluation that did not read [c] folds identically
   on both tables and stays valid), then (b) swaps every snapshot back
   in, valid, at its original version — a rejected mutation costs zero
   re-evaluations on the way back, and restoring the version revives
   the per-rank verdict cache.  Snapshots live in the token, not the
   entry, so nested live tokens saving the same entry cannot clobber
   one another, and versions come off a never-reissued scratch clock so
   a rolled-back version cannot collide with a later re-evaluation's in
   the verdict cache.

   The quiet-window guard is what keeps restoration sound: a valid
   entry is registered in the watch bucket of every cell it reads, and
   an inner patch on another cell [c'] clears that bucket — dropping
   any entry this token snapshotted (it is invalid at that point, so
   the inner token does not save it).  Restoring such an entry to valid
   would leave it unwatched on [c'], immune to later invalidation, and
   silently stale.  So any intervening event — an inner patch/unpatch
   pair, an out-of-LIFO-order unpatch — makes the token fall back to
   plain invalidation of [c]'s current watchers: the snapshots are
   discarded and the affected evaluations simply rerun on demand
   (correct, just slower).  Either way the kernel answers as a fresh
   compile of the restored table — the differential property pins
   this. *)

type patch = {
  p_cell : int;
  p_resp : int;
  p_next : int;
  p_stamp : int;
  p_events : int;
  p_saved : (entry * int array * int array * int) list;
      (* (entry, masks, cells, version) at patch time *)
}

(* Snapshot and invalidate every valid watcher of [c]; returns the
   snapshots.  First patch on a scratch: whole-memo invalidation (no
   snapshots — nothing would restore them) + tracking on. *)
let invalidate k s c =
  let n = ref 0 in
  let saved = ref [] in
  if not s.track then begin
    s.track <- true;
    Hashtbl.iter
      (fun _ e ->
        if e.valid then begin
          e.valid <- false;
          incr n
        end)
      s.memo;
    s.v_entry <- Array.make (2 * k.total) dummy_entry;
    s.v_version <- Array.make (2 * k.total) (-1);
    s.v_bool <- Bytes.make (2 * k.total) '\000'
  end
  else begin
    List.iter
      (fun e ->
        if e.valid then begin
          saved := (e, e.masks, e.cells, e.version) :: !saved;
          e.valid <- false;
          incr n
        end)
      s.watch.(c);
    s.watch.(c) <- []
  end;
  s.patches_seen <- s.patches_seen + 1;
  s.patch_events <- s.patch_events + 1;
  count_opt k.c_patches;
  add_opt k.c_invalidated !n;
  !saved

let patch k s ~cell:(v, o) ~entry:(r, v') =
  if v < 0 || v >= k.nv || o < 0 || o >= k.no then
    invalid_arg "Kernel.patch: cell out of range";
  if r < 0 || r >= k.nr || v' < 0 || v' >= k.nv then
    invalid_arg "Kernel.patch: entry out of range";
  let c = (v * k.no) + o in
  let p_resp = k.resp.(c) and p_next = k.next.(c) in
  let p_stamp = s.patches_seen in
  let p_events = s.patch_events in
  k.resp.(c) <- r;
  k.next.(c) <- v';
  let p_saved = invalidate k s c in
  { p_cell = c; p_resp; p_next; p_stamp; p_events; p_saved }

let unpatch k s { p_cell = c; p_resp; p_next; p_stamp; p_events; p_saved } =
  k.resp.(c) <- p_resp;
  k.next.(c) <- p_next;
  if s.track && s.patch_events = p_events + 1 then begin
    (* Quiet-window fast path (see the comment above): the only event
       since the token's creation is its own patch, so no watch bucket
       lost a snapshotted entry and restoration is sound.  Window
       entries first, then the snapshots; the patch clock rolls back so
       the hot reject cycle reads as zero net patches.  Restored
       entries still watch [c] — re-register them, since the patch
       cleared that bucket. *)
    let n = ref 0 in
    List.iter
      (fun e ->
        if e.valid then begin
          e.valid <- false;
          incr n
        end)
      s.watch.(c);
    s.watch.(c) <- [];
    List.iter
      (fun (e, masks, cells, version) ->
        e.masks <- masks;
        e.cells <- cells;
        e.version <- version;
        e.valid <- true;
        s.watch.(c) <- e :: s.watch.(c))
      p_saved;
    s.patches_seen <- p_stamp;
    s.patch_events <- s.patch_events + 1;
    count_opt k.c_patches;
    add_opt k.c_invalidated !n;
    add_opt k.c_reused (List.length p_saved)
  end
  else ignore (invalidate k s c)

let to_objtype ?name k =
  let name = match name with Some n -> n | None -> k.ty.Objtype.name in
  let next = Array.copy k.next and resp = Array.copy k.resp in
  Objtype.make ~name ~num_values:k.nv ~num_ops:k.no ~num_responses:k.nr (fun v o ->
      (resp.((v * k.no) + o), next.((v * k.no) + o)))

(* ------------------------------------------------------------------ *)
(* Ranked enumeration.  Rank order matches the reference
   [Decide.candidates] exactly: initial value major, then partitions in
   mask order, then T_0's sorted assignment, then T_1's. *)

let fill_ops s part =
  for j = 0 to part.size0 - 1 do
    s.ops.(part.procs0.(j)) <- s.ops0.(j)
  done;
  for j = 0 to part.size1 - 1 do
    s.ops.(part.procs1.(j)) <- s.ops1.(j)
  done

let fill_ops1 s part =
  for j = 0 to part.size1 - 1 do
    s.ops.(part.procs1.(j)) <- s.ops1.(j)
  done

let candidate k rank =
  if rank < 0 || rank >= k.total then invalid_arg "Kernel.candidate: rank out of range";
  let u = rank / k.per_u and rem = rank mod k.per_u in
  let pi = ref 0 in
  while k.parts.(!pi).start + k.parts.(!pi).block <= rem do
    incr pi
  done;
  let part = k.parts.(!pi) in
  let i = rem - part.start in
  let ops0 = Array.make (max part.size0 1) 0 and ops1 = Array.make (max part.size1 1) 0 in
  unrank_sorted ~m:k.no ~k:part.size0 (i / part.count1) ops0;
  unrank_sorted ~m:k.no ~k:part.size1 (i mod part.count1) ops1;
  let ops = Array.make k.n 0 in
  for j = 0 to part.size0 - 1 do
    ops.(part.procs0.(j)) <- ops0.(j)
  done;
  for j = 0 to part.size1 - 1 do
    ops.(part.procs1.(j)) <- ops1.(j)
  done;
  (u, Array.copy part.team, ops)

exception Stopped

let search_range ?(mode = Trie) k s cond ~lo ~hi ~stop =
  (match mode with
  | Reference -> invalid_arg "Kernel.search_range: mode Reference has no compiled path"
  | Tables | Trie -> ());
  let hi = min hi k.total and lo = max lo 0 in
  if lo >= hi then (None, 0)
  else begin
    let nparts = Array.length k.parts in
    let checked = ref 0 and witness = ref None in
    let rank = ref lo in
    let u = ref (lo / k.per_u) in
    let rem = ref (lo mod k.per_u) in
    (* The rank-indexed verdict cache (live once the scratch has been
       patched, Trie mode only): a candidate whose entry survived the
       patches since it was classified is answered by one validity
       check, no memo probe and no re-classification.  Counter traffic
       on this path is tallied locally and flushed once per scan. *)
    let vact = mode = Trie && s.v_version <> [||] in
    let vbase = (match cond with Recording -> 0 | Discerning -> 1) * k.total in
    let fast_hits = ref 0 in
    (try
       while !witness = None && !rank < hi do
         (* locate the partition block containing [rem] *)
         let pi = ref 0 in
         while k.parts.(!pi).start + k.parts.(!pi).block <= !rem do
           incr pi
         done;
         while !witness = None && !rank < hi && !pi < nparts do
           let part = k.parts.(!pi) in
           let i = !rem - part.start in
           unrank_sorted ~m:k.no ~k:part.size0 (i / part.count1) s.ops0;
           unrank_sorted ~m:k.no ~k:part.size1 (i mod part.count1) s.ops1;
           fill_ops s part;
           let more = ref true in
           while !witness = None && !rank < hi && !more do
             if stop !rank then raise Stopped;
             incr checked;
             let verdict =
               if vact then begin
                 let vi = vbase + !rank in
                 let e = s.v_entry.(vi) in
                 if e.valid && s.v_version.(vi) = e.version then begin
                   incr fast_hits;
                   Bytes.unsafe_get s.v_bool vi = '\001'
                 end
                 else begin
                   let ok = check_current ~mode k s cond ~u:!u part in
                   let e = s.last in
                   s.v_entry.(vi) <- e;
                   s.v_version.(vi) <- e.version;
                   Bytes.set s.v_bool vi (if ok then '\001' else '\000');
                   ok
                 end
               end
               else check_current ~mode k s cond ~u:!u part
             in
             if verdict then witness := Some !rank
             else begin
               incr rank;
               if next_sorted s.ops1 part.size1 k.no then fill_ops1 s part
               else if next_sorted s.ops0 part.size0 k.no then begin
                 Array.fill s.ops1 0 part.size1 0;
                 fill_ops s part
               end
               else more := false
             end
           done;
           if !witness = None then begin
             rem := part.start + part.block;
             incr pi
           end
         done;
         if !witness = None then begin
           incr u;
           rem := 0
         end
       done
     with Stopped -> ());
    add_opt k.c_pruned !fast_hits;
    add_opt k.c_reused !fast_hits;
    (!witness, !checked)
  end

(* Re-verify one rank (through the verdict cache when it is live). *)
let check_rank ~mode k s cond rank =
  let u = rank / k.per_u and rem = rank mod k.per_u in
  let pi = ref 0 in
  while k.parts.(!pi).start + k.parts.(!pi).block <= rem do
    incr pi
  done;
  let part = k.parts.(!pi) in
  let vact = mode = Trie && s.v_version <> [||] in
  let vi = ((match cond with Recording -> 0 | Discerning -> 1) * k.total) + rank in
  if
    vact
    &&
    let e = s.v_entry.(vi) in
    e.valid && s.v_version.(vi) = e.version
  then begin
    add_opt k.c_pruned 1;
    add_opt k.c_reused 1;
    Bytes.unsafe_get s.v_bool vi = '\001'
  end
  else begin
    let i = rem - part.start in
    unrank_sorted ~m:k.no ~k:part.size0 (i / part.count1) s.ops0;
    unrank_sorted ~m:k.no ~k:part.size1 (i mod part.count1) s.ops1;
    fill_ops s part;
    let ok = check_current ~mode k s cond ~u part in
    if vact then begin
      let e = s.last in
      s.v_entry.(vi) <- e;
      s.v_version.(vi) <- e.version;
      Bytes.set s.v_bool vi (if ok then '\001' else '\000')
    end;
    ok
  end

(* Existence of a witness, any rank.  Unlike [search_range] (which the
   minimal-certificate searches need), existence is free to check the
   previous scan's witness first: a patch rarely breaks it, so the
   common case is one verdict-cache probe (or one re-evaluation)
   instead of a scan of the whole prefix below the witness — the
   decision point [Decide.holds] sits on the synthesizer's hot path. *)
let exists ?(mode = Trie) k s cond =
  (match mode with
  | Reference -> invalid_arg "Kernel.exists: mode Reference has no compiled path"
  | Tables | Trie -> ());
  let slot = match cond with Recording -> 0 | Discerning -> 1 in
  let h = s.hint.(slot) in
  if h >= 0 && check_rank ~mode k s cond h then true
  else
    match search_range ~mode k s cond ~lo:0 ~hi:k.total ~stop:(fun _ -> false) with
    | Some r, _ ->
        s.hint.(slot) <- r;
        true
    | None, _ ->
        s.hint.(slot) <- -1;
        false

(* ------------------------------------------------------------------ *)
(* Single-candidate check, for the fixed-partition search.  Builds a
   throwaway partition record (rank fields unused) and reuses the
   scratch memo across calls. *)

let check ?(mode = Trie) k s cond ~u ~team ~ops =
  (match mode with
  | Reference -> invalid_arg "Kernel.check: mode Reference has no compiled path"
  | Tables | Trie -> ());
  if Array.length team <> k.n || Array.length ops <> k.n then
    invalid_arg "Kernel.check: team/ops arity mismatch";
  Array.blit ops 0 s.ops 0 k.n;
  let t0bits = ref 0 and t1bits = ref 0 and size0 = ref 0 and size1 = ref 0 in
  for i = 0 to k.n - 1 do
    if team.(i) then begin
      t1bits := !t1bits lor (1 lsl i);
      incr size1
    end
    else begin
      t0bits := !t0bits lor (1 lsl i);
      incr size0
    end
  done;
  let part =
    {
      team;
      t0bits = !t0bits;
      t1bits = !t1bits;
      size0 = !size0;
      size1 = !size1;
      procs0 = [||];
      procs1 = [||];
      count1 = 0;
      block = 0;
      start = 0;
    }
  in
  check_current ~mode k s cond ~u part
