.PHONY: all build test check bench bench-e18 inject-smoke stats-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# What CI runs: full build, the whole test suite (including the engine
# parity properties), a parallel-engine smoke through the CLI, the
# fault-injection smoke, and the stats-export smoke.
check: build test inject-smoke stats-smoke
	dune exec bin/rcn.exe -- analyze test-and-set --cap 3 --jobs 2

# Stats-export smoke: run an instrumented analyze on a gallery type, keep
# the full mixed output for CI to archive, and validate the JSON stats
# block's shape — in particular the cache accounting invariant
# hits + misses + expired = probes — with the dependency-free checker.
# The built binaries are invoked directly: two `dune exec` in one pipeline
# contend for the _build lock.
stats-smoke: build
	./_build/default/bin/rcn.exe analyze x4-witness --cap 4 --jobs 2 --stats json \
	  | tee stats-smoke.out \
	  | ./_build/default/tools/stats_check.exe --require engine.candidates --require pool.tasks \
	      --require-nonzero decide.trie_nodes --require-nonzero decide.kernel_evals \
	      --require decide.partitions_pruned

# Fixed-seed fault-injection campaign over the known-broken protocols
# (register race, test-and-set under crashes, and T_{3,1}'s recoverable
# protocol overloaded by one process).  Seeds 1..40 are enough to reach
# the overloaded protocol's crash window; --require-violation makes the
# run fail if the harness ever stops finding them.  The report lands in
# inject-report.txt for CI to archive.
inject-smoke: build
	dune exec bin/rcn.exe -- inject -n 3 --nprime 1 --seeds 40 \
	  --report inject-report.txt --require-violation

bench:
	dune exec bench/main.exe

# E18 kernel ablation (reference vs tables vs tables+trie on the E9/E11
# workloads); writes BENCH_e18.json for CI to archive and exits nonzero
# if the modes disagree or the census speedup drops below the 3x floor.
bench-e18: build
	./_build/default/bench/e18.exe

clean:
	dune clean
	rm -f inject-report.txt stats-smoke.out BENCH_e18.json
