.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# What CI runs: full build, the whole test suite (including the engine
# parity properties), and a parallel-engine smoke through the CLI.
check: build test
	dune exec bin/rcn.exe -- analyze test-and-set --cap 3 --jobs 2

bench:
	dune exec bench/main.exe

clean:
	dune clean
