.PHONY: all build test check bench bench-e18 bench-e19 bench-e20 bench-e21 bench-e22 inject-smoke stats-smoke soak-smoke serve-smoke dist-smoke synth-smoke crash-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# Smoke artifacts are scratch output: they land under $(SMOKE_DIR),
# are removed when the smoke passes, and are kept (and archived by CI,
# if: failure()) when it does not.  A green `make check` leaves nothing
# in the repo root.
SMOKE_DIR := _build/smoke

# What CI runs: full build, the whole test suite (including the engine
# parity properties), a parallel-engine smoke through the CLI, the
# fault-injection smoke, the stats-export smoke, and the kill(-9) soak.
check: build test inject-smoke stats-smoke soak-smoke serve-smoke dist-smoke crash-smoke
	dune exec bin/rcn.exe -- analyze test-and-set --cap 3 --jobs 2

# Stats-export smoke: run an instrumented analyze on a gallery type, keep
# the full mixed output for CI to archive on failure, and validate the
# JSON stats block's shape — in particular the cache accounting invariant
# hits + misses + expired = probes — with the dependency-free checker.
# The built binaries are invoked directly: two `dune exec` in one pipeline
# contend for the _build lock.
stats-smoke: build
	mkdir -p $(SMOKE_DIR)
	./_build/default/bin/rcn.exe analyze x4-witness --cap 4 --jobs 2 --stats json \
	  | tee $(SMOKE_DIR)/stats-smoke.out \
	  | ./_build/default/tools/stats_check.exe --require engine.candidates --require pool.tasks \
	      --require-nonzero decide.trie_nodes --require-nonzero decide.kernel_evals \
	      --require decide.partitions_pruned
	rm -f $(SMOKE_DIR)/stats-smoke.out

# Fixed-seed fault-injection campaign over the known-broken protocols
# (register race, test-and-set under crashes, and T_{3,1}'s recoverable
# protocol overloaded by one process).  Seeds 1..40 are enough to reach
# the overloaded protocol's crash window; --require-violation makes the
# run fail if the harness ever stops finding them.  The report is kept
# for CI to archive only when the smoke fails.
inject-smoke: build
	mkdir -p $(SMOKE_DIR)
	dune exec bin/rcn.exe -- inject -n 3 --nprime 1 --seeds 40 \
	  --report $(SMOKE_DIR)/inject-report.txt --require-violation
	rm -f $(SMOKE_DIR)/inject-report.txt

# Crash-recovery smoke: the bounded crashtest sweep over all three
# durable artifacts (store log, lease ledger, census checkpoint) — a
# crash / I/O error / torn write / lying fsync injected at every
# operation boundary, recovery re-run and audited after each plan.
# Gated twice: the sweep's own exit code, and the stats block showing a
# nonzero plan count with exactly zero invariant violations.  Violating
# plans leave their artifacts under $(SMOKE_DIR)/crashtest for CI to
# archive; a green sweep removes them.
crash-smoke: build
	mkdir -p $(SMOKE_DIR)
	./_build/default/bin/rcn.exe crashtest --dir $(SMOKE_DIR)/crashtest --stats json \
	  | tee $(SMOKE_DIR)/crash-smoke.out \
	  | ./_build/default/tools/stats_check.exe \
	      --require-nonzero crashtest.plans --require-zero crashtest.violations
	rm -f $(SMOKE_DIR)/crash-smoke.out

# Daemon smoke: start `rcn serve` on a Unix socket, talk to it with the
# dependency-free protocol client, and assert the three serve guarantees
# through the shipped binaries — repeat queries served byte-identically
# from the persistent store (gated on nonzero store.hits in the metrics
# reply), SIGKILL mid-workload recovered by a restart on the same store,
# and SIGTERM shutting down cleanly (exit 0, socket unlinked).  The
# daemon's --stats json block and every response land in
# $(SMOKE_DIR)/serve, removed on success.
serve-smoke: build
	SMOKE_DIR=$(SMOKE_DIR) bash tools/serve_smoke.sh

# Distributed-census smoke: a 3-worker census with a SIGKILLed worker
# and a throttled straggler (respawn and work stealing gated by the
# dist.* counters, histogram gated bit-identical to the single-process
# run), the symmetry-reduced census (single and over workers, gated on
# nonzero sym.classes and the bit-identical histogram), then the full
# `rcn soak --dist` — seeded worker kill(-9)s plus a coordinator
# kill+resume over the {3,2,2} cap-4 census.  Artifacts land in
# $(SMOKE_DIR)/dist, removed on success.
dist-smoke: build
	SMOKE_DIR=$(SMOKE_DIR) bash tools/dist_smoke.sh

bench:
	dune exec bench/main.exe

# E18 kernel ablation (reference vs tables vs tables+trie on the E9/E11
# workloads); writes BENCH_e18.json for CI to archive and exits nonzero
# if the modes disagree or the census speedup drops below the 3x floor.
bench-e18: build
	./_build/default/bench/e18.exe

# E19 supervision overhead (unsupervised vs supervised vs 1% chunk
# chaos); writes BENCH_e19.json for CI to archive and exits nonzero if
# the failure-free retry layer costs more than 2%, a histogram diverges,
# or the chaos run heals no retries.
bench-e19: build
	./_build/default/bench/e19.exe

# E20 distributed census (single process vs 2 crash-prone workers vs a
# faulted run with an injected crash and steal); writes BENCH_e20.json
# for CI to archive and exits nonzero if any histogram diverges, or —
# on machines with >= 8 cores — if the clean distributed run is slower
# than 1.5x the single-process trie census.
bench-e20: build
	./_build/default/bench/e20.exe

# E21 symmetry reduction (unreduced vs canonical-labeling census on the
# {3,2,2} cap-4 workload); writes BENCH_e21.json for CI to archive and
# exits nonzero if the reduced histogram is not bit-identical, the
# canonizer fails to shrink the space, or the speedup drops below the
# 3x floor (enforced unconditionally — both runs share one pool size).
bench-e21: build
	./_build/default/bench/e21.exe

# E22 incremental decision kernel (warm-start vs from-scratch synthesis
# on the E6 target-4 workload); writes BENCH_e22.json for CI to archive
# and exits nonzero if the fitness trajectories diverge between the two
# modes (the patched-kernel exactness contract), if the incremental run
# never exercised the patch path, or if the speedup drops below the 3x
# floor.
bench-e22: build
	./_build/default/bench/e22.exe

# Synthesis smoke: a small climb whose candidate stream must actually
# exercise the incremental machinery — nonzero fitness evaluations,
# symmetry-memo skips, kernel patches and surviving (reused) memo
# entries.  The search legitimately may or may not find a witness at
# this budget; only a crash or a dead counter fails the smoke.
synth-smoke: build
	mkdir -p $(SMOKE_DIR)
	./_build/default/bin/rcn.exe synth --target 4 --values 3 --rws 2 --responses 2 \
	  --iterations 600 --seed 1 --stats json \
	  | tee $(SMOKE_DIR)/synth-smoke.out \
	  | ./_build/default/tools/stats_check.exe \
	      --require-nonzero synth.evals --require-nonzero synth.sym_skips \
	      --require-nonzero kernel.patches --require-nonzero kernel.masks_reused \
	      --require-nonzero kernel.masks_invalidated
	rm -f $(SMOKE_DIR)/synth-smoke.out

# Self-healing smoke, two halves (binaries invoked directly — see the
# stats-smoke note on the _build lock):
#  1. retry injection: a census where half the chunks fail their first
#     attempt must still complete, and the stats checker gates on the
#     retry counter actually moving (the quarantine ledger is kept for
#     CI only on failure);
#  2. the kill(-9) soak: `rcn soak` SIGKILLs a real checkpointing census
#     child at 5 seeded progress points, resumes it to completion, and
#     asserts the recovered histogram is bit-identical to an
#     uninterrupted reference.
soak-smoke: build
	mkdir -p $(SMOKE_DIR)
	./_build/default/bin/rcn.exe census --values 2 --rws 2 --responses 2 --cap 3 \
	  --jobs 2 --retries 3 --chaos-rate 0.5 --chaos-seed 7 \
	  --quarantine-report $(SMOKE_DIR)/retry-quarantine.json --stats json \
	  | tee $(SMOKE_DIR)/soak-smoke.out \
	  | ./_build/default/tools/stats_check.exe --require-nonzero supervise.retries \
	      --require supervise.quarantined --require census.tables
	./_build/default/bin/rcn.exe soak --values 3 --rws 2 --responses 2 --cap 3 \
	  --kills 5 --seed 1 --jobs 2 --checkpoint $(SMOKE_DIR)/soak-census.ckpt
	rm -f $(SMOKE_DIR)/retry-quarantine.json $(SMOKE_DIR)/soak-smoke.out \
	  $(SMOKE_DIR)/soak-census.ckpt

clean:
	dune clean
	rm -f BENCH_e18.json BENCH_e19.json BENCH_e20.json BENCH_e21.json BENCH_e22.json
