.PHONY: all build test check bench inject-smoke stats-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# What CI runs: full build, the whole test suite (including the engine
# parity properties), a parallel-engine smoke through the CLI, the
# fault-injection smoke, and the stats-export smoke.
check: build test inject-smoke stats-smoke
	dune exec bin/rcn.exe -- analyze test-and-set --cap 3 --jobs 2

# Stats-export smoke: run an instrumented analyze on a gallery type, keep
# the full mixed output for CI to archive, and validate the JSON stats
# block's shape — in particular the cache accounting invariant
# hits + misses + expired = probes — with the dependency-free checker.
# The built binaries are invoked directly: two `dune exec` in one pipeline
# contend for the _build lock.
stats-smoke: build
	./_build/default/bin/rcn.exe analyze x4-witness --cap 4 --jobs 2 --stats json \
	  | tee stats-smoke.out \
	  | ./_build/default/tools/stats_check.exe --require engine.candidates --require pool.tasks

# Fixed-seed fault-injection campaign over the known-broken protocols
# (register race, test-and-set under crashes, and T_{3,1}'s recoverable
# protocol overloaded by one process).  Seeds 1..40 are enough to reach
# the overloaded protocol's crash window; --require-violation makes the
# run fail if the harness ever stops finding them.  The report lands in
# inject-report.txt for CI to archive.
inject-smoke: build
	dune exec bin/rcn.exe -- inject -n 3 --nprime 1 --seeds 40 \
	  --report inject-report.txt --require-violation

bench:
	dune exec bench/main.exe

clean:
	dune clean
	rm -f inject-report.txt stats-smoke.out
