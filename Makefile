.PHONY: all build test check bench inject-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# What CI runs: full build, the whole test suite (including the engine
# parity properties), a parallel-engine smoke through the CLI, and the
# fault-injection smoke.
check: build test inject-smoke
	dune exec bin/rcn.exe -- analyze test-and-set --cap 3 --jobs 2

# Fixed-seed fault-injection campaign over the known-broken protocols
# (register race, test-and-set under crashes, and T_{3,1}'s recoverable
# protocol overloaded by one process).  Seeds 1..40 are enough to reach
# the overloaded protocol's crash window; --require-violation makes the
# run fail if the harness ever stops finding them.  The report lands in
# inject-report.txt for CI to archive.
inject-smoke: build
	dune exec bin/rcn.exe -- inject -n 3 --nprime 1 --seeds 40 \
	  --report inject-report.txt --require-violation

bench:
	dune exec bench/main.exe

clean:
	dune clean
	rm -f inject-report.txt
