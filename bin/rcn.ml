(* rcn — command-line interface to the recoverable-consensus-numbers
   toolkit: deciders, state-machine rendering, protocol simulation,
   exhaustive certification and witness synthesis. *)

let type_arg_doc =
  "Gallery type name (see `rcn gallery`), e.g. 'test-and-set', 'T_{5,2}', \
   'x4-witness', 'team-ladder-2' — or a path to a specification file \
   produced by `rcn synth --save` / Objtype.to_spec_string."

let objtype_conv =
  Cmdliner.Arg.conv ((fun s -> Gallery.resolve s), fun ppf t -> Objtype.pp ppf t)

let kernel_conv =
  Cmdliner.Arg.conv
    (Kernel.mode_of_string, fun ppf m -> Format.pp_print_string ppf (Kernel.mode_to_string m))

(* [--jobs 0] resolves to RCN_JOBS / the host's domain count. *)
let resolve_jobs j =
  try Engine.resolve_jobs j
  with Invalid_argument msg ->
    prerr_endline
      (if j < 0 then "--jobs must be nonnegative" else msg);
    exit 2

(* Observability plumbing shared by the long-running commands: build the
   context ([--trace FILE] selects the JSONL sink), run the command body
   (which returns its exit code instead of calling [exit], so the stats
   block still prints on failure paths like a PARTIAL census), render
   [--stats] to stdout, close the sink, then exit.

   SIGINT and SIGTERM are caught for the duration of the body: telemetry
   is flushed — the [--stats] block prints what was counted so far and
   the JSONL sink is closed so no trace line is lost to stdio buffering —
   and the process exits with the conventional [128 + signal] code.
   Handlers run at OCaml safe points on the main domain, so the flush
   never tears a trace line that a worker was emitting. *)
let with_obs ~command trace stats f =
  let sink =
    match trace with Some path -> Obs.Trace.jsonl path | None -> Obs.Trace.null
  in
  let obs = Obs.create ~sink () in
  let flushed = Atomic.make false in
  let flush_telemetry () =
    if Atomic.compare_and_set flushed false true then begin
      Option.iter (fun fmt -> print_string (Obs.Stats.render ~command obs fmt)) stats;
      flush stdout;
      Obs.Trace.close sink
    end
  in
  let handle code _signum =
    flush_telemetry ();
    exit code
  in
  let restore =
    List.filter_map
      (fun (signal, code) ->
        try
          let prev = Sys.signal signal (Sys.Signal_handle (handle code)) in
          Some (signal, prev)
        with Sys_error _ | Invalid_argument _ -> None)
      [ (Sys.sigint, 130); (Sys.sigterm, 143) ]
  in
  let code =
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (signal, prev) -> Sys.set_signal signal prev) restore;
        flush_telemetry ())
      (fun () -> f obs)
  in
  if code <> 0 then exit code

(* ------------------------------------------------------------------ *)
(* the Request/Response code path.  Every engine subcommand builds an
   [Api.Request.t], hands it to [Dispatch] — in-process by default, over
   a daemon's socket with [--connect] — and derives its printing and its
   exit code from the [Api.Response.t].  CLI and daemon cannot drift:
   they run the same requests through the same handler. *)

type supervise_opts = {
  retries : int option;  (* --retries: attempts per chunk before quarantine *)
  quarantine_report : string option;  (* --quarantine-report FILE *)
  heartbeat : float option;  (* --heartbeat: watchdog stall interval, seconds *)
  chaos_rate : float option;  (* --chaos-rate: injected failure probability *)
  chaos_seed : int;
  chaos_attempts : int;
}

(* Flags to the one serializable config record.  [--quarantine-report]
   stays CLI-only (where to write a file is not part of the query). *)
let build_config ~cap ~jobs ~kernel ~deadline ?(sym = false) sup =
  (match deadline with
  | Some s when s <= 0.0 ->
      prerr_endline "--deadline must be positive";
      exit 2
  | _ -> ());
  let config =
    Api.Config.v ~jobs ~cap ?deadline ~kernel ?retries:sup.retries
      ?heartbeat:sup.heartbeat ?chaos_rate:sup.chaos_rate ~chaos_seed:sup.chaos_seed
      ~chaos_attempts:sup.chaos_attempts ~sym ()
  in
  match Api.Config.validate config with
  | Ok () -> config
  | Error msg ->
      prerr_endline msg;
      exit 2

(* In-process dispatch: a private pool sized by the request's config,
   the CLI's own [obs] backing the supervisor ledger — exactly what the
   daemon does per request, minus the store. *)
let run_local ~obs ~command req =
  let jobs =
    resolve_jobs
      (match Api.Request.config req with
      | Some c -> c.Api.Config.jobs
      | None -> 1)
  in
  Pool.with_pool ~obs ~jobs @@ fun pool ->
  let env = Dispatch.env ~supervision_obs:obs ~obs ~command pool in
  Dispatch.handle env req

let dispatch ~connect ~obs ~command req =
  match connect with
  | None -> run_local ~obs ~command req
  | Some socket -> (
      match Client.one_shot ~socket req with
      | Ok resp -> resp
      | Error msg ->
          Api.Response.error ~code:Api.Response.err_internal
            (Printf.sprintf "daemon at %s: %s" socket msg))

(* Shared response epilogue: error reporting, the quarantine ledger, the
   degradation banner, and the one exit-code policy
   ([Api.Response.exit_code]) — identical CLI or daemon. *)
let finish ?quarantine_report (resp : Api.Response.t) on_body =
  (match resp.Api.Response.body with
  | Api.Response.Error { code = _; message } -> Printf.eprintf "rcn: %s\n" message
  | body -> on_body body);
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (Api.Response.quarantine_report resp));
      Printf.printf "quarantine report written to %s\n" path)
    quarantine_report;
  (let q = List.length resp.Api.Response.quarantined in
   if q > 0 then
     Printf.printf "SUPERVISED: %d chunk%s quarantined (results degraded, not lost)\n" q
       (if q = 1 then "" else "s"));
  Api.Response.exit_code resp

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze ty cap certs jobs kernel deadline sym sup_opts connect trace stats =
  with_obs ~command:"analyze" trace stats @@ fun obs ->
  let config = build_config ~cap ~jobs ~kernel ~deadline ~sym sup_opts in
  let req =
    Api.Request.Analyze { spec = Objtype.to_spec_string ty; config }
  in
  let resp = dispatch ~connect ~obs ~command:"analyze" req in
  finish ?quarantine_report:sup_opts.quarantine_report resp (function
    | Api.Response.Analysis { analysis = a; from_store } ->
        Format.printf "%a@." Analysis.pp a;
        if from_store then Printf.printf "(served from the result store)\n";
        if certs then begin
          (match a.Analysis.discerning.Analysis.certificate with
          | Some c -> Format.printf "@.discerning witness:@.%a@." Certificate.pp c
          | None -> ());
          match a.Analysis.recording.Analysis.certificate with
          | Some c ->
              Format.printf "@.recording witness:@.%a@.clean: %b@." Certificate.pp c
                (Certificate.is_clean c)
          | None -> ()
        end
    | _ -> prerr_endline "rcn: unexpected response kind")

(* ------------------------------------------------------------------ *)
(* gallery *)

let gallery cap jobs kernel =
  let config = Api.Config.v ~cap ~kernel () in
  Pool.with_pool ~jobs:(resolve_jobs jobs) @@ fun pool ->
  Format.printf "%-18s %-9s %-9s %-9s %-9s %-9s@." "type" "readable" "disc" "rec" "cons"
    "rcons";
  List.iter
    (fun a -> Format.printf "%a@." Analysis.pp a)
    (Engine.analyze_all ~config pool (List.map snd (Gallery.all ())))

(* ------------------------------------------------------------------ *)
(* statemachine (Figure 3) *)

let statemachine ty dot all_values =
  let reachable_only = not all_values in
  if dot then print_string (Dot.to_dot ~reachable_only ty)
  else print_string (Dot.to_ascii ~reachable_only ty)

(* ------------------------------------------------------------------ *)
(* simulate / certify *)

type packed = Packed : 'st Program.t -> packed

let protocols =
  [
    ("tnn-waitfree", "wait-free n-consensus on T_{n,n'} (paper Section 4)");
    ("tnn-recoverable", "recoverable n'-consensus on T_{n,n'} (paper Section 4)");
    ("tnn-overloaded", "the recoverable protocol run by n'+1 processes (breaks)");
    ("cas", "n-process consensus from compare-and-swap");
    ("sticky", "n-process consensus from a sticky bit");
    ("tas2", "2-process consensus from test-and-set (breaks under crashes)");
    ("race", "register-only negative control (breaks even crash-free)");
    ("election2", "recoverable consensus from a clean 2-recording certificate");
    ("discerning2", "crash-free consensus from a 2-discerning certificate (Ruppert)");
    ("tournament", "n-process recoverable consensus via a certificate tournament (use -n)");
  ]

let build_protocol name ~n ~n' =
  match name with
  | "tnn-waitfree" -> Ok (Packed (Tnn_protocol.wait_free ~n ~n'), n)
  | "tnn-recoverable" -> Ok (Packed (Tnn_protocol.recoverable ~n ~n'), n')
  | "tnn-overloaded" ->
      Ok (Packed (Tnn_protocol.recoverable_overloaded ~procs:(n' + 1) ~n ~n'), n' + 1)
  | "cas" -> Ok (Packed (Classic.cas_consensus ~nprocs:n), n)
  | "sticky" -> Ok (Packed (Classic.sticky_consensus ~nprocs:n), n)
  | "tas2" -> Ok (Packed Classic.tas_consensus_2, 2)
  | "race" -> Ok (Packed (Classic.register_race ~nprocs:2), 2)
  | "election2" -> (
      match Decide.search Decide.Recording (Gallery.team_ladder ~cap:2) ~n:2 with
      | Some cert -> Ok (Packed (Election.consensus_2 cert), 2)
      | None -> Error (`Msg "no 2-recording certificate for team-ladder-2 (unexpected)"))
  | "discerning2" -> (
      match Decide.search Decide.Discerning Gallery.test_and_set ~n:2 with
      | Some cert -> Ok (Packed (Election.discerning_consensus_2 cert), 2)
      | None -> Error (`Msg "no 2-discerning certificate for test-and-set (unexpected)"))
  | "tournament" -> (
      match Tournament.plan (Gallery.team_ladder ~cap:n) ~nprocs:n with
      | Ok plan -> Ok (Packed (Tournament.consensus plan), n)
      | Error m -> Error (`Msg ("tournament planning failed: " ^ m)))
  | other ->
      Error
        (`Msg
          (Printf.sprintf "unknown protocol %S; available: %s" other
             (String.concat ", " (List.map fst protocols))))

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

let simulate name n n' seeds crash_prob z =
  match build_protocol name ~n ~n' with
  | Error (`Msg m) -> prerr_endline m; exit 2
  | Ok (Packed p, procs) ->
      let inputs_list = binary_inputs procs in
      let violations = ref 0 and undecided = ref 0 and runs = ref 0 in
      List.iter
        (fun inputs ->
          for seed = 1 to seeds do
            incr runs;
            let adv = Adversary.random ~crash_prob ~seed ~nprocs:procs in
            let c0 = Config.initial p ~inputs in
            let budget = Budget.counter ~z ~nprocs:procs in
            let final, _, out =
              Exec.run_adversary p c0
                ~pick:(fun ~decided b -> adv ~decided b)
                ~budget ~fuel:5000 ()
            in
            if not out.Exec.all_decided then incr undecided
            else if not (Checker.is_ok (Checker.consensus p final)) then incr violations
          done)
        inputs_list;
      Printf.printf "%s: %d runs, %d agreement/validity violations, %d incomplete\n"
        p.Program.name !runs !violations !undecided;
      if !violations > 0 then exit 1

let certify name n n' z max_events =
  match build_protocol name ~n ~n' with
  | Error (`Msg m) -> prerr_endline m; exit 2
  | Ok (Packed p, procs) -> (
      let inputs_list = binary_inputs procs in
      match Counterexample.certify ~max_events ~z ~inputs_list p with
      | Ok (), truncated ->
          Printf.printf "%s: certified, no violation in E_%d^* executions%s\n" p.Program.name z
            (if truncated then " (TRUNCATED — result is partial)" else " (exhaustive)")
      | Error r, _ ->
          Printf.printf "%s: VIOLATION with inputs [%s]:\n  schedule: %s\n" p.Program.name
            (String.concat "; " (Array.to_list (Array.map string_of_int r.Counterexample.inputs)))
            (Sched.to_string r.Counterexample.schedule);
          exit 1)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace name n n' schedule_text inputs_text =
  match build_protocol name ~n ~n' with
  | Error (`Msg m) -> prerr_endline m; exit 2
  | Ok (Packed p, procs) -> (
      match Sched.of_string schedule_text with
      | Error m -> prerr_endline ("bad schedule: " ^ m); exit 2
      | Ok sched ->
          let inputs =
            match inputs_text with
            | None -> Array.init procs (fun i -> i mod 2)
            | Some text ->
                let digits = List.init (String.length text) (String.get text) in
                Array.of_list (List.map (fun c -> Char.code c - Char.code '0') digits)
          in
          if Array.length inputs <> procs then begin
            Printf.eprintf "expected %d inputs\n" procs;
            exit 2
          end;
          let c0 = Config.initial p ~inputs in
          let final, events = Exec.run_schedule p c0 sched in
          Format.printf "%a" (Exec.pp_trace p) events;
          Array.iteri
            (fun i d ->
              match d with
              | Some v -> Format.printf "p%d decided %d@." i v
              | None -> Format.printf "p%d undecided@." i)
            (Config.decisions p final);
          Format.printf "verdict: %a@." Checker.pp_verdict (Checker.consensus p final))

(* ------------------------------------------------------------------ *)
(* synth *)

let synth target values rws responses seed iters incremental save portfolio jobs
    deadline sup_opts connect trace stats =
  with_obs ~command:"synth" trace stats @@ fun obs ->
  let space = { Synth.num_values = values; num_rws = rws; num_responses = responses } in
  let config = build_config ~cap:5 ~jobs ~kernel:Kernel.Trie ~deadline sup_opts in
  let config = { config with Api.Config.incremental } in
  let req =
    Api.Request.Synth
      { space; target; seed; iterations = iters; restart_every = None; portfolio; config }
  in
  let resp = dispatch ~connect ~obs ~command:"synth" req in
  finish ?quarantine_report:sup_opts.quarantine_report resp (function
    | Api.Response.Synth { witness = Some w } ->
        Printf.printf "witness found after %d evaluations:\n" w.Synth.iterations;
        Format.printf "%a@." Objtype.pp_table w.Synth.objtype;
        Printf.printf "consensus number %d, recoverable consensus number %d\n"
          w.Synth.discerning_level w.Synth.recording_level;
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Objtype.to_spec_string w.Synth.objtype));
            Printf.printf "saved to %s (re-analyze with `rcn analyze %s`)\n" path path)
          save
    | Api.Response.Synth { witness = None } ->
        Printf.printf "no witness found within %d evaluations\n" iters
    | _ -> prerr_endline "rcn: unexpected response kind")

(* ------------------------------------------------------------------ *)
(* chain (Theorem 13's construction) *)

let chain name n n' z max_events inputs_text =
  match build_protocol name ~n ~n' with
  | Error (`Msg m) -> prerr_endline m; exit 2
  | Ok (Packed p, procs) ->
      let inputs =
        match inputs_text with
        | None -> Array.init procs (fun i -> i mod 2)
        | Some text -> Array.init (String.length text) (fun i -> Char.code text.[i] - Char.code '0')
      in
      if Array.length inputs <> procs then begin
        Printf.eprintf "expected %d inputs\n" procs;
        exit 2
      end;
      let ctx = Explore.create ~z ~max_events p in
      let steps, outcome = Explore.theorem13_chain ctx (Explore.root ctx ~inputs) in
      List.iteri
        (fun i (s : Explore.chain_step) ->
          Format.printf "round %d: critical [%s]@." i (Sched.to_string s.Explore.schedule);
          List.iter
            (fun (p, v) -> Format.printf "  p%d on team %d@." p v)
            s.Explore.step_teams;
          Format.printf "  classification: %s@."
            (match s.Explore.step_classification with
            | Explore.N_recording -> "n-recording"
            | Explore.Hiding v -> Printf.sprintf "%d-hiding" v
            | Explore.Neither -> "neither"))
        steps;
      (match outcome with
      | Explore.Reached_recording ->
          Format.printf "chain ended at an n-recording configuration (Theorem 13)@."
      | Explore.Exhausted i -> Format.printf "chain exhausted after %d rounds@." i
      | Explore.Stuck m -> Format.printf "chain stuck: %s@." m)

(* ------------------------------------------------------------------ *)
(* census *)

(* "SLOT:N,SLOT:N" fault-injection specs for the distributed census. *)
let parse_slot_spec ~flag text =
  match text with
  | None -> []
  | Some text ->
      List.map
        (fun part ->
          match String.split_on_char ':' part with
          | [ slot; n ] -> (
              match (int_of_string_opt slot, int_of_string_opt n) with
              | Some slot, Some n when slot >= 0 && n > 0 -> (slot, n)
              | _ ->
                  Printf.eprintf "%s: bad entry %S (want SLOT:N)\n" flag part;
                  exit 2)
          | _ ->
              Printf.eprintf "%s: bad entry %S (want SLOT:N)\n" flag part;
              exit 2)
        (String.split_on_char ',' text)

(* The distributed path: Dist.census over worker processes, folded back
   into the same Api.Response shape so printing, the quarantine banner
   and the exit-code policy are exactly the single-process ones. *)
let census_dist ~obs ~space ~config ~workers ~ledger ~resume ~lease_ttl ~chunk
    ~stride ~crash ~throttle sup_opts =
  if resume && ledger = None then begin
    prerr_endline "--resume with --workers needs --ledger FILE to resume from";
    exit 2
  end;
  let resp =
    match
      Dist.census ~obs ?ledger ~resume ?lease_ttl ?chunk ?stride
        ?range_attempts:config.Api.Config.retries ~crash ~throttle ~workers
        ~config space
    with
    | outcome ->
        Api.Response.make ~quarantined:outcome.Dist.quarantined
          (Api.Response.Census
             {
               Api.Response.entries = outcome.Dist.entries;
               total = outcome.Dist.total;
               completed = outcome.Dist.completed;
               resumed = outcome.Dist.resumed;
               complete = outcome.Dist.complete;
             })
    | exception Invalid_argument msg -> Api.Response.error msg
    | exception Unix.Unix_error (e, fn, _) ->
        Api.Response.error ~code:Api.Response.err_internal
          (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  in
  finish ?quarantine_report:sup_opts.quarantine_report resp (function
    | Api.Response.Census run ->
        Format.printf "%a@." Census.pp run.Api.Response.entries;
        if run.Api.Response.resumed > 0 then
          Printf.printf "resumed %d previously decided tables from the ledger\n"
            run.Api.Response.resumed;
        if not run.Api.Response.complete then
          Printf.printf "PARTIAL: %d of %d tables decided%s\n"
            run.Api.Response.completed run.Api.Response.total
            (match ledger with
            | Some path ->
                Printf.sprintf " (re-run with --ledger %s --resume to finish)" path
            | None -> "")
    | _ -> prerr_endline "rcn: unexpected response kind")

let census values rws responses cap sample_count seed jobs kernel deadline sym
    checkpoint resume durable workers ledger lease_ttl dist_chunk dist_stride
    dist_crash dist_throttle sup_opts connect trace stats =
  with_obs ~command:"census" trace stats @@ fun obs ->
  let space = { Synth.num_values = values; num_rws = rws; num_responses = responses } in
  if workers < 0 then begin
    prerr_endline "--workers must be nonnegative";
    exit 2
  end;
  if workers > 0 then begin
    (* the distributed coordinator owns sharding and durability; the
       single-process conveniences don't compose with it *)
    List.iter
      (fun (set, flag) ->
        if set then begin
          Printf.eprintf "%s cannot be combined with --workers\n" flag;
          exit 2
        end)
      [
        (connect <> None, "--connect");
        (sample_count <> None, "--sample");
        (checkpoint <> None, "--checkpoint (use --ledger)");
        (durable, "--durable (the ledger is always fsync'd)");
      ];
    let config = build_config ~cap ~jobs ~kernel ~deadline ~sym sup_opts in
    census_dist ~obs ~space ~config ~workers ~ledger ~resume ~lease_ttl
      ~chunk:dist_chunk ~stride:dist_stride
      ~crash:(parse_slot_spec ~flag:"--dist-crash" dist_crash)
      ~throttle:(parse_slot_spec ~flag:"--dist-throttle" dist_throttle)
      sup_opts
  end
  else begin
    if resume && checkpoint = None then begin
      prerr_endline "--resume needs --checkpoint FILE to resume from";
      exit 2
    end;
    if durable && checkpoint = None then begin
      prerr_endline "--durable needs --checkpoint FILE to make durable";
      exit 2
    end;
    let config = build_config ~cap ~jobs ~kernel ~deadline ~sym sup_opts in
    let req =
      Api.Request.Census
        { space; sample = sample_count; seed; checkpoint; resume; durable; config }
    in
    let resp = dispatch ~connect ~obs ~command:"census" req in
    finish ?quarantine_report:sup_opts.quarantine_report resp (function
      | Api.Response.Census run ->
          Format.printf "%a@." Census.pp run.Api.Response.entries;
          if run.Api.Response.resumed > 0 then
            Printf.printf "resumed %d previously decided tables from checkpoint\n"
              run.Api.Response.resumed;
          if not run.Api.Response.complete then
            Printf.printf "PARTIAL: %d of %d tables decided%s\n" run.Api.Response.completed
              run.Api.Response.total
              (match checkpoint with
              | Some path ->
                  Printf.sprintf " (re-run with --checkpoint %s --resume to finish)" path
              | None -> "")
      | _ -> prerr_endline "rcn: unexpected response kind")
  end

(* ------------------------------------------------------------------ *)
(* worker: the child process half of `rcn census --workers N`.  Speaks
   the Api.Worker frame protocol on stdin (the coordinator's socketpair
   end); never meant to be run by hand. *)

let worker config_json values rws responses stride throttle_us crash_after =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Sys_error _ | Invalid_argument _ -> ());
  let space = { Synth.num_values = values; num_rws = rws; num_responses = responses } in
  match Result.bind (Wire.of_string config_json) Api.Config.of_json with
  | Error msg ->
      Printf.eprintf "rcn worker: bad --config: %s\n" msg;
      exit 2
  | Ok config ->
      exit (Dist_worker.run ~stride ~throttle_us ~crash_after ~config ~space
              ~fd:Unix.stdin ())

(* ------------------------------------------------------------------ *)
(* soak: the kill(-9) chaos harness.  Spawns a real [rcn census
   --checkpoint --resume] child, SIGKILLs it at seeded progress points,
   resumes it until it completes, and asserts the recovered histogram is
   bit-identical to an uninterrupted in-process reference. *)

(* Completed checkpoint records = complete lines minus the header; a
   torn trailing line (no newline yet) is not counted, matching what the
   loader will accept. *)
let count_records path =
  if not (Sys.file_exists path) then 0
  else
    In_channel.with_open_bin path (fun ic ->
        let n = ref 0 in
        let rec loop () =
          match In_channel.input_char ic with
          | Some '\n' ->
              incr n;
              loop ()
          | Some _ -> loop ()
          | None -> ()
        in
        loop ();
        max 0 (!n - 1))

(* Completed lease-ledger results: lines that are "rcndist1 done" record
   headers.  Payload lines are single-line JSON (or the header string),
   so the prefix cannot occur mid-record. *)
let count_done_records path =
  if not (Sys.file_exists path) then 0
  else
    In_channel.with_open_bin path (fun ic ->
        let n = ref 0 in
        let rec loop () =
          match In_channel.input_line ic with
          | Some line ->
              if String.length line >= 14 && String.sub line 0 14 = "rcndist2 done "
              then incr n;
              loop ()
          | None -> ()
        in
        loop ();
        !n)

(* Spawn one process and watch a progress counter: SIGKILL it when the
   counter reaches [target] ([max_int] = let it finish), fail the cycle
   past [timeout] seconds of wall clock. *)
let watch_child ~argv ~count ~target ~timeout =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid = Unix.create_process argv.(0) argv devnull devnull Unix.stderr in
  Unix.close devnull;
  let t0 = Obs.Clock.now () in
  let kill_and_reap () =
    Unix.kill pid Sys.sigkill;
    ignore (Fsio.Retry.eintr (fun () -> Unix.waitpid [] pid))
  in
  let rec watch () =
    match Fsio.Retry.eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] pid) with
    | 0, _ ->
        if count () >= target then begin
          kill_and_reap ();
          `Killed (count ())
        end
        else if Obs.Clock.now () -. t0 > timeout then begin
          kill_and_reap ();
          `Timeout
        end
        else begin
          Obs.Clock.sleep 0.005;
          watch ()
        end
    | _, Unix.WEXITED 0 -> `Completed
    | _, status -> `Failed status
  in
  watch ()

(* soak --dist: the kill(-9) soak generalized to whole processes.  Every
   coordinator incarnation injects one seeded self-SIGKILL per worker
   slot; the coordinator itself is SIGKILLed at seeded ledger-progress
   points and resumed from the ledger.  The final audit replays the
   ledger the way a recovering coordinator would (Dist.plan_of_ledger)
   and insists on full disjoint coverage with a histogram bit-identical
   to the uninterrupted in-process census. *)
let soak_dist ~obs ~space ~values ~rws ~responses ~cap ~kills ~coordinator_kills
    ~seed ~jobs ~kernel ~ledger ~timeout ~workers =
  if workers < 1 then begin
    prerr_endline "--workers must be >= 1 with --dist";
    exit 2
  end;
  if coordinator_kills < 1 then begin
    prerr_endline "--coordinator-kills must be >= 1";
    exit 2
  end;
  let config = Api.Config.v ~cap ~kernel ~jobs () in
  let reference =
    Pool.with_pool ~obs ~jobs @@ fun pool -> Engine.census ~obs ~config pool space
  in
  let total = reference.Engine.total in
  let path, temp =
    match ledger with
    | Some p -> (p, false)
    | None -> (Filename.temp_file "rcn_soak_dist" ".ledger", true)
  in
  if Sys.file_exists path then Sys.remove path;
  let chunk = max 32 (1 + ((total - 1) / max 1 (4 * workers))) in
  let chunks = (total + chunk - 1) / chunk in
  Printf.printf
    "soak --dist: %d tables in %d chunks, %d workers (1 seeded crash each per \
     incarnation), %d coordinator kill(s), seed %d\n%!"
    total chunks workers coordinator_kills seed;
  let rng = Random.State.make [| 0xd157; seed; kills; coordinator_kills |] in
  (* early enough to fire inside the first lease even in small spaces *)
  let crash_bound = max 2 (min 200 (chunk / 2)) in
  let crash_spec () =
    List.init workers (fun i ->
        Printf.sprintf "%d:%d" i (1 + Random.State.int rng crash_bound))
    |> String.concat ","
  in
  let targets =
    List.init coordinator_kills (fun _ ->
        1 + Random.State.int rng (max 1 (chunks - 1)))
    |> List.sort compare
  in
  let child_argv () =
    [|
      Sys.executable_name; "census";
      "--values"; string_of_int values;
      "--rws"; string_of_int rws;
      "--responses"; string_of_int responses;
      "--cap"; string_of_int cap;
      "--jobs"; string_of_int jobs;
      "--kernel"; Kernel.mode_to_string kernel;
      "--workers"; string_of_int workers;
      "--ledger"; path;
      "--resume";
      "--retries"; "6";
      "--dist-chunk"; string_of_int chunk;
      "--dist-stride"; "16";
      "--dist-crash"; crash_spec ();
    |]
  in
  let count () = count_done_records path in
  let coord_kills_done = ref 0 in
  let failed = ref false in
  List.iteri
    (fun i target ->
      if not !failed then
        match watch_child ~argv:(child_argv ()) ~count ~target ~timeout with
        | `Killed at ->
            incr coord_kills_done;
            Printf.printf "cycle %d: coordinator killed at %d/%d ledger results\n%!"
              (i + 1) at chunks
        | `Completed ->
            Printf.printf "cycle %d: census completed before kill point %d\n%!"
              (i + 1) target
        | `Timeout ->
            Printf.printf "cycle %d: TIMEOUT after %.0fs\n%!" (i + 1) timeout;
            failed := true
        | `Failed _ ->
            Printf.printf "cycle %d: coordinator failed\n%!" (i + 1);
            failed := true)
    targets;
  if !failed then 1
  else
    match watch_child ~argv:(child_argv ()) ~count ~target:max_int ~timeout with
    | `Timeout ->
        Printf.printf "final run: TIMEOUT after %.0fs\n%!" timeout;
        1
    | `Killed _ -> 1
    | `Failed _ ->
        Printf.printf "final run: coordinator failed\n%!";
        1
    | `Completed ->
        let expected = Dist_ledger.header ~space ~cap ~total () in
        let plan = Dist.plan_of_ledger ~expected ~total path in
        let identical = plan.Dist.plan_entries = reference.Engine.entries in
        let covered = plan.Dist.plan_covered = total && plan.Dist.plan_gaps = [] in
        if covered && identical && plan.Dist.plan_deaths >= kills then begin
          Printf.printf
            "soak --dist: OK — survived %d worker death(s) and %d coordinator \
             kill(-9)s; ledger-merged histogram bit-identical to the \
             single-process census (%d tables)\n"
            plan.Dist.plan_deaths !coord_kills_done total;
          if temp then Sys.remove path;
          0
        end
        else begin
          Printf.printf
            "soak --dist: FAIL — covered=%b identical=%b deaths=%d (wanted >= %d); \
             ledger kept at %s\n"
            covered identical plan.Dist.plan_deaths kills path;
          1
        end

let soak values rws responses cap kills seed jobs kernel checkpoint timeout dist
    workers coordinator_kills ledger trace stats =
  with_obs ~command:"soak" trace stats @@ fun obs ->
  let jobs = resolve_jobs jobs in
  if kills < 1 then begin
    prerr_endline "--kills must be >= 1";
    exit 2
  end;
  if timeout <= 0.0 then begin
    prerr_endline "--timeout must be positive";
    exit 2
  end;
  let space = { Synth.num_values = values; num_rws = rws; num_responses = responses } in
  if dist then
    soak_dist ~obs ~space ~values ~rws ~responses ~cap ~kills ~coordinator_kills
      ~seed ~jobs ~kernel ~ledger ~timeout ~workers
  else begin
  let path, temp =
    match checkpoint with
    | Some p -> (p, false)
    | None -> (Filename.temp_file "rcn_soak" ".ckpt", true)
  in
  if Sys.file_exists path then Sys.remove path;
  let config = Api.Config.v ~cap ~kernel () in
  (* The uninterrupted truth the recovered run must reproduce. *)
  let reference =
    Pool.with_pool ~obs ~jobs @@ fun pool -> Engine.census ~obs ~config pool space
  in
  let total = reference.Engine.total in
  Printf.printf "soak: %d tables (%d values, %d rws, %d responses), %d kill cycles, seed %d\n%!"
    total values rws responses kills seed;
  (* Seeded ascending kill points over the record count, so each cycle
     makes progress before dying; identical seeds kill at identical
     progress, making failures replayable. *)
  let targets =
    let rng = Random.State.make [| 0x50a4; seed; kills |] in
    List.init kills (fun _ ->
        max 1 (int_of_float (float_of_int total *. (0.05 +. Random.State.float rng 0.85))))
    |> List.sort compare
  in
  let child_argv =
    [|
      Sys.executable_name; "census";
      "--values"; string_of_int values;
      "--rws"; string_of_int rws;
      "--responses"; string_of_int responses;
      "--cap"; string_of_int cap;
      "--jobs"; string_of_int jobs;
      "--kernel"; Kernel.mode_to_string kernel;
      "--checkpoint"; path;
      "--resume"; "--durable";
    |]
  in
  (* Run one child; kill it once the checkpoint reaches [target] records
     ([max_int] = let it finish).  Progress-based kill points are robust
     across machine speeds, unlike sleeps. *)
  let run_cycle ~target =
    let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let pid =
      Unix.create_process Sys.executable_name child_argv devnull devnull Unix.stderr
    in
    Unix.close devnull;
    let t0 = Obs.Clock.now () in
    let kill_and_reap () =
      Unix.kill pid Sys.sigkill;
      ignore (Fsio.Retry.eintr (fun () -> Unix.waitpid [] pid))
    in
    let rec watch () =
      match Fsio.Retry.eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] pid) with
      | 0, _ ->
          if count_records path >= target then begin
            kill_and_reap ();
            `Killed (count_records path)
          end
          else if Obs.Clock.now () -. t0 > timeout then begin
            kill_and_reap ();
            `Timeout
          end
          else begin
            Obs.Clock.sleep 0.005;
            watch ()
          end
      | _, Unix.WEXITED 0 -> `Completed
      | _, status -> `Failed status
    in
    watch ()
  in
  let killed = ref 0 in
  let failed = ref false in
  List.iteri
    (fun i target ->
      if not !failed then
        match run_cycle ~target with
        | `Killed at ->
            incr killed;
            Printf.printf "cycle %d: killed at %d/%d records\n%!" (i + 1) at total
        | `Completed ->
            Printf.printf "cycle %d: census completed before kill point %d\n%!" (i + 1)
              target
        | `Timeout ->
            Printf.printf "cycle %d: TIMEOUT after %.0fs\n%!" (i + 1) timeout;
            failed := true
        | `Failed _ ->
            Printf.printf "cycle %d: child failed\n%!" (i + 1);
            failed := true)
    targets;
  let code =
    if !failed then 1
    else
      match run_cycle ~target:max_int with
      | `Timeout ->
          Printf.printf "final run: TIMEOUT after %.0fs\n%!" timeout;
          1
      | `Killed _ ->
          (* unreachable: max_int records never accumulate *)
          1
      | `Failed _ ->
          Printf.printf "final run: child failed\n%!";
          1
      | `Completed ->
          (* Resume the finished checkpoint in-process: every table must
             come from the file, and the histogram must be bit-identical
             to the uninterrupted reference. *)
          let final =
            Pool.with_pool ~obs ~jobs @@ fun pool ->
            Engine.census ~obs ~checkpoint:path ~resume:true ~config pool space
          in
          if
            final.Engine.complete
            && final.Engine.resumed = total
            && final.Engine.entries = reference.Engine.entries
          then begin
            Printf.printf
              "soak: OK — survived %d kill(-9)s; recovered histogram bit-identical to \
               reference (%d tables)\n"
              !killed total;
            if temp then Sys.remove path;
            0
          end
          else begin
            Printf.printf
              "soak: FAIL — recovered run differs from reference (complete=%b resumed=%d/%d \
               entries_match=%b); checkpoint kept at %s\n"
              final.Engine.complete final.Engine.resumed total
              (final.Engine.entries = reference.Engine.entries)
              path;
            1
          end
  in
  code
  end

(* ------------------------------------------------------------------ *)
(* store maintenance *)

(* ------------------------------------------------------------------ *)
(* crashtest: enumerate seeded fault plans against every durable
   artifact — the serve store log, the distributed lease ledger, and the
   census checkpoint — re-open after each plan, and assert the recovery
   invariants:

   - recovery never raises on torn input (a crash can only tear the
     tail, and replay truncates it);
   - no record acknowledged by an honest append+fsync is ever lost
     (records acknowledged across a lying fsync are exempt: losing them
     to a power-loss crash is the fsyncgate outcome the model exists to
     expose);
   - injected mid-log corruption is always detected and reported
     ([Fsio.Corrupt]), never silently truncated.

   Deterministic by construction: plans fire by global operation index
   and the seeded plans derive from [--seed] via the pinned Fsio LCG,
   so a failing plan label reproduces the failure exactly. *)

type crashtest_workload = {
  ct_attempted : (string * string) list;
      (* (id, exact bytes) of every record the workload tried to append,
         in order — recovery must find a per-record-equal prefix *)
  ct_honest : (string * string) list;
      (* the honestly-acknowledged subset: append + fsync returned and
         the fsync did not lie — recovery must reproduce every one *)
}

type crashtest_artifact = {
  ct_name : string;
  ct_workload : path:string -> Fsio.Injector.t option -> crashtest_workload;
  ct_recover : path:string -> (string * string) list;
      (* replay the artifact; raises are the driver's to judge *)
  ct_prefix : bool;  (* recovery yields a prefix of the append order *)
  ct_flip : string -> int;
      (* given the clean file bytes, the offset of a byte whose flip
         must be detected as corruption *)
}

let ct_lie injector =
  match injector with Some i -> Fsio.Injector.lie_count i | None -> 0

(* Ack bookkeeping shared by the workloads: an append lands in the
   volatile set; the next non-lying fsync promotes the whole volatile
   set (an honest fsync persists every byte before it, including bytes
   an earlier fsync lied about). *)
let ct_tracker injector =
  let attempted = ref [] and honest = ref [] and vol = ref [] in
  let attempt id bytes = attempted := (id, bytes) :: !attempted in
  let appended id bytes ~lie_before =
    vol := (id, bytes) :: !vol;
    if ct_lie injector = lie_before then begin
      honest := !vol @ !honest;
      vol := []
    end
  in
  let result () =
    { ct_attempted = List.rev !attempted; ct_honest = List.rev !honest }
  in
  (attempt, appended, result)

(* --- store ------------------------------------------------------- *)

let ct_store_items =
  List.init 6 (fun k ->
      ( Printf.sprintf "k%d" k,
        Printf.sprintf "payload-%d-%s" k (String.make (8 + (3 * k)) 'x') ))

let ct_store_workload ~path injector =
  let attempt, appended, result = ct_tracker injector in
  (try
     let store = Store.open_store ?injector ~fsync:true path in
     List.iter
       (fun (k, v) ->
         let lie_before = ct_lie injector in
         attempt k v;
         match Store.put store ~key:k v with
         | () ->
             (* a degraded store drops the put without raising — no ack *)
             if not (Store.readonly store) then appended k v ~lie_before
         | exception Fsio.Io_error _ -> ())
       ct_store_items;
     Store.close store
   with Fsio.Crashed | Fsio.Io_error _ -> ());
  result ()

let ct_store_recover ~path =
  let store = Store.open_store path in
  Fun.protect
    ~finally:(fun () -> try Store.close store with Fsio.Io_error _ -> ())
    (fun () ->
      List.filter_map
        (fun (k, _) -> Option.map (fun v -> (k, v)) (Store.find store k))
        ct_store_items)

(* flip the first payload byte of the first record: mid-log (more
   records follow), past the magic, and covered by the CRC *)
let ct_record_flip contents =
  match String.index_opt contents '\n' with
  | Some nl when nl + 1 < String.length contents -> nl + 1
  | _ -> invalid_arg "crashtest: clean artifact too short to corrupt"

(* --- dist ledger -------------------------------------------------- *)

let ct_space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 }
let ct_expected_ledger = Dist_ledger.header ~space:ct_space ~cap:2 ~total:16 ()

let ct_ledger_records =
  [
    Dist_ledger.Grant { lease = 1; lo = 0; hi = 8; worker = 0 };
    Dist_ledger.Done { lo = 0; hi = 8; entries = [ (1, 1, 4); (2, 1, 4) ] };
    Dist_ledger.Grant { lease = 2; lo = 8; hi = 16; worker = 1 };
    Dist_ledger.Expire { lease = 2; lo = 8; hi = 16; worker = 1 };
    Dist_ledger.Death { worker = 1; pid = 4242 };
    Dist_ledger.Quarantine { lo = 8; hi = 16; attempts = 3; error = "chaos" };
  ]

let ct_ledger_workload ~path injector =
  let attempt, appended, result = ct_tracker injector in
  (try
     let header_bytes = Dist_ledger.encode (Dist_ledger.Header ct_expected_ledger) in
     let lie_before = ct_lie injector in
     attempt "header" header_bytes;
     let led, _ =
       Dist_ledger.open_ledger ?injector ~fsync:true ~expected:ct_expected_ledger
         ~resume:true path
     in
     if Dist_ledger.degraded led = None then
       appended "header" header_bytes ~lie_before;
     List.iteri
       (fun i r ->
         (* once degraded, appends drop — nothing further is attempted *)
         if Dist_ledger.degraded led = None then begin
           let lie_before = ct_lie injector in
           let id = Printf.sprintf "r%d" i in
           attempt id (Dist_ledger.encode r);
           Dist_ledger.append led r;
           if Dist_ledger.degraded led = None then
             appended id (Dist_ledger.encode r) ~lie_before
         end)
       ct_ledger_records;
     Dist_ledger.close led
   with Fsio.Crashed | Fsio.Io_error _ -> ());
  result ()

let ct_ledger_recover ~path =
  let records, _torn = Dist_ledger.load path ~expected:ct_expected_ledger in
  List.map (fun r -> ("", Dist_ledger.encode r)) records

(* --- census checkpoint -------------------------------------------- *)

let ct_expected_ckpt = Engine.Checkpoint.header ~space:ct_space ~cap:2 ~total:16

let ct_ckpt_lines =
  List.init 6 (fun i -> (Printf.sprintf "l%d" i, Engine.Checkpoint.line i 2 (1 + (i mod 2))))

let ct_ckpt_workload ~path injector =
  let attempt, appended, result = ct_tracker injector in
  (try
     let log = Fsio.open_log ?injector path in
     (try
        (* the census writer's open discipline: parse, truncate the torn
           tail, append the header if none survives *)
        let contents = Fsio.contents log in
        let _, good =
          Engine.Checkpoint.parse ~path ~expected:ct_expected_ckpt contents
        in
        if good < String.length contents then Fsio.truncate log good;
        if good = 0 then begin
          let lie_before = ct_lie injector in
          attempt "header" (ct_expected_ckpt ^ "\n");
          Fsio.append log (ct_expected_ckpt ^ "\n");
          Fsio.fsync log;
          appended "header" (ct_expected_ckpt ^ "\n") ~lie_before
        end;
        List.iter
          (fun (id, line) ->
            let lie_before = ct_lie injector in
            attempt id line;
            Fsio.append log line;
            Fsio.fsync log;
            appended id line ~lie_before)
          ct_ckpt_lines;
        Fsio.close log
      with e ->
        (try Fsio.close log with Fsio.Io_error _ -> ());
        raise e)
   with Fsio.Crashed | Fsio.Io_error _ -> ());
  result ()

let ct_ckpt_recover ~path =
  if not (Sys.file_exists path) then []
  else begin
    let contents = In_channel.with_open_bin path In_channel.input_all in
    let entries, good =
      Engine.Checkpoint.parse ~path ~expected:ct_expected_ckpt contents
    in
    let header = if good = 0 then [] else [ ("header", ct_expected_ckpt ^ "\n") ] in
    header
    @ List.map
        (fun (i, (d, r)) -> (Printf.sprintf "l%d" i, Engine.Checkpoint.line i d r))
        entries
  end

(* flip the first byte of the first entry line (index digit): complete,
   CRC-covered, mid-file once more lines follow *)
let ct_ckpt_flip contents =
  match String.index_opt contents '\n' with
  | Some nl when nl + 1 < String.length contents -> nl + 1
  | _ -> invalid_arg "crashtest: clean checkpoint too short to corrupt"

let ct_artifacts =
  [
    {
      ct_name = "store";
      ct_workload = ct_store_workload;
      ct_recover = ct_store_recover;
      ct_prefix = false;  (* the store is a map; order is not observable *)
      ct_flip = ct_record_flip;
    };
    {
      ct_name = "ledger";
      ct_workload = ct_ledger_workload;
      ct_recover = ct_ledger_recover;
      ct_prefix = true;
      ct_flip = ct_record_flip;
    };
    {
      ct_name = "checkpoint";
      ct_workload = ct_ckpt_workload;
      ct_recover = ct_ckpt_recover;
      ct_prefix = true;
      ct_flip = ct_ckpt_flip;
    };
  ]

(* --- the driver --------------------------------------------------- *)

let ct_rm_rf dir =
  let rec go path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> go (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  go dir

let ct_check_recovery out ~artifact ~label (w : crashtest_workload) recovered =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr out;
        Printf.eprintf "crashtest: VIOLATION [%s/%s] %s\n" artifact label msg)
      fmt
  in
  (* no acknowledged record is ever lost *)
  List.iter
    (fun (id, bytes) ->
      match List.find_opt (fun (_, b) -> b = bytes) recovered with
      | Some _ -> ()
      | None -> fail "acknowledged record %s lost after recovery" id)
    w.ct_honest;
  (* nothing recovered that was never written *)
  List.iter
    (fun (_, bytes) ->
      if not (List.exists (fun (_, b) -> b = bytes) w.ct_attempted) then
        fail "recovery produced bytes that were never appended")
    recovered

let ct_check_prefix out ~artifact ~label (w : crashtest_workload) recovered =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr out;
        Printf.eprintf "crashtest: VIOLATION [%s/%s] %s\n" artifact label msg)
      fmt
  in
  let rec go i att rec_ =
    match (att, rec_) with
    | _, [] -> ()
    | [], _ :: _ -> fail "recovery has more records than were appended"
    | (_, ab) :: att', (_, rb) :: rec_' ->
        if ab <> rb then fail "recovered record %d differs from append order" i
        else go (i + 1) att' rec_'
  in
  go 0 w.ct_attempted recovered

let crashtest artifact_names seed dir keep trace stats =
  with_obs ~command:"crashtest" trace stats @@ fun obs ->
  let c_plans = Obs.counter obs "crashtest.plans" in
  let c_violations = Obs.counter obs "crashtest.violations" in
  let artifacts =
    match artifact_names with
    | [] -> ct_artifacts
    | names ->
        List.map
          (fun n ->
            match List.find_opt (fun a -> a.ct_name = n) ct_artifacts with
            | Some a -> a
            | None ->
                Printf.eprintf
                  "rcn crashtest: unknown artifact %S (store|ledger|checkpoint)\n" n;
                exit 2)
          names
  in
  let base =
    match dir with
    | Some d -> d
    | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "rcn-crashtest-%d" (Unix.getpid ()))
  in
  ct_rm_rf base;
  Unix.mkdir base 0o755;
  let violations = ref 0 in
  let run_plan artifact ~label injector =
    let dir = Filename.concat base (artifact.ct_name ^ "-" ^ label) in
    Unix.mkdir dir 0o755;
    let path = Filename.concat dir "artifact.log" in
    let w =
      try artifact.ct_workload ~path injector
      with e ->
        incr violations;
        Printf.eprintf
          "crashtest: VIOLATION [%s/%s] workload leaked an exception: %s\n"
          artifact.ct_name label (Printexc.to_string e);
        { ct_attempted = []; ct_honest = [] }
    in
    Obs.Metrics.Counter.incr c_plans;
    let before = !violations in
    (match artifact.ct_recover ~path with
    | recovered ->
        ct_check_recovery violations ~artifact:artifact.ct_name ~label w recovered;
        if artifact.ct_prefix then
          ct_check_prefix violations ~artifact:artifact.ct_name ~label w recovered
    | exception e ->
        incr violations;
        Printf.eprintf "crashtest: VIOLATION [%s/%s] recovery raised: %s\n"
          artifact.ct_name label (Printexc.to_string e));
    if !violations = before then ct_rm_rf dir
  in
  List.iter
    (fun artifact ->
      (* probe: fault-free run learns the operation count *)
      let probe = Fsio.Injector.of_plan [] in
      run_plan artifact ~label:"probe" (Some probe);
      let ops = Fsio.Injector.ops probe in
      (* every point fault at every operation boundary *)
      for i = 0 to ops - 1 do
        List.iter
          (fun (label, plan) -> run_plan artifact ~label (Some (Fsio.Injector.of_plan plan)))
          [
            (Printf.sprintf "kill@%d" i, [ (i, Fsio.Crash { lose_volatile = false }) ]);
            (Printf.sprintf "powerloss@%d" i,
             [ (i, Fsio.Crash { lose_volatile = true }) ]);
            (Printf.sprintf "enospc@%d" i, [ (i, Fsio.Err Unix.ENOSPC) ]);
            (Printf.sprintf "eio@%d" i, [ (i, Fsio.Err Unix.EIO) ]);
            (Printf.sprintf "torn@%d" i, [ (i, Fsio.Torn_write { bytes = 3 }) ]);
            (Printf.sprintf "fsyncgate@%d" i,
             [ (i, Fsio.Fsync_lie); (i + 2, Fsio.Crash { lose_volatile = true }) ]);
          ]
      done;
      (* seeded combined plans *)
      for k = 0 to 7 do
        run_plan artifact
          ~label:(Printf.sprintf "seeded@%d" k)
          (Some (Fsio.Injector.seeded ~seed:(seed + (1000 * k)) ~rate:0.2 ~horizon:ops))
      done;
      (* corruption corpus: flip one CRC-covered mid-log byte of a clean
         artifact and insist the flip is detected, not eaten *)
      let dir = Filename.concat base (artifact.ct_name ^ "-corrupt") in
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "artifact.log" in
      ignore (artifact.ct_workload ~path None);
      let contents = In_channel.with_open_bin path In_channel.input_all in
      let off = artifact.ct_flip contents in
      let bytes = Bytes.of_string contents in
      Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 1));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc bytes);
      Obs.Metrics.Counter.incr c_plans;
      let before = !violations in
      (match artifact.ct_recover ~path with
      | _ ->
          incr violations;
          Printf.eprintf
            "crashtest: VIOLATION [%s/corrupt] flipped byte at offset %d was \
             silently accepted\n"
            artifact.ct_name off
      | exception Fsio.Corrupt _ -> ()
      | exception e ->
          incr violations;
          Printf.eprintf
            "crashtest: VIOLATION [%s/corrupt] flip detected but misreported: %s\n"
            artifact.ct_name (Printexc.to_string e));
      if !violations = before then ct_rm_rf dir)
    artifacts;
  Obs.Metrics.Counter.add c_violations !violations;
  let plans = Obs.Metrics.Counter.value c_plans in
  if !violations = 0 then begin
    if not keep then ct_rm_rf base;
    Printf.printf "crashtest: %d plans across %s: all recovery invariants hold\n"
      plans
      (String.concat ", " (List.map (fun a -> a.ct_name) artifacts));
    0
  end
  else begin
    Printf.printf
      "crashtest: %d violations in %d plans (artifacts kept under %s)\n"
      !violations plans base;
    1
  end

let store_compact file max_bytes trace stats =
  with_obs ~command:"store-compact" trace stats @@ fun obs ->
  (match max_bytes with
  | Some n when n < 0 ->
      prerr_endline "--max-bytes must be nonnegative";
      exit 2
  | _ -> ());
  match Store.compact ~obs ?max_bytes file with
  | kept, dropped ->
      Printf.printf "compacted %s: %d records kept, %d bytes dropped\n" file
        kept dropped;
      0
  | exception Sys_error msg ->
      Printf.eprintf "rcn store compact: %s\n" msg;
      1
  | exception ((Fsio.Io_error _ | Fsio.Corrupt _) as e) ->
      Printf.eprintf "rcn store compact: %s\n"
        (Option.value ~default:(Printexc.to_string e) (Fsio.error_message e));
      Api.Response.err_storage
  | exception Unix.Unix_error (e, fn, _) ->
      Printf.eprintf "rcn store compact: %s: %s\n" fn (Unix.error_message e);
      1

(* ------------------------------------------------------------------ *)
(* inject *)

let inject proto_names n n' seeds z fuel shrink_per_cell report_file require_violation
    trace stats =
  with_obs ~command:"inject" trace stats @@ fun obs ->
  let targets =
    List.map
      (fun name ->
        match build_protocol name ~n ~n' with
        | Error (`Msg m) -> prerr_endline m; exit 2
        | Ok (Packed p, _) -> (name, Inject.Target p))
      proto_names
  in
  let grid = Inject.default_grid ~z ~fuel ~shrink_per_cell ~seeds () in
  let report = Inject.run ~obs ~grid targets in
  let text = Inject.report_to_string report in
  print_string text;
  Option.iter
    (fun path ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
      Printf.printf "report written to %s\n" path)
    report_file;
  let violations = Inject.total_violations report in
  if require_violation && violations = 0 then begin
    prerr_endline "inject: expected at least one violation, found none";
    1
  end
  else if (not require_violation) && violations > 0 then 1
  else 0

(* ------------------------------------------------------------------ *)
(* robustness *)

let robustness names cap =
  let types =
    List.map
      (fun name ->
        match Gallery.resolve name with Ok t -> t | Error (`Msg m) -> prerr_endline m; exit 2)
      names
  in
  Format.printf "%a@." Robustness.pp_report (Robustness.analyze ~cap types)

(* ------------------------------------------------------------------ *)
(* serve: the analysis-as-a-service daemon.  Signal handling differs
   from [with_obs]: SIGINT/SIGTERM request a graceful stop (drain the
   queue, persist the store, exit 0) instead of exiting 130/143 — a
   daemon asked to stop and stopping cleanly has succeeded. *)

let serve socket store jobs queue_limit fsync trace stats =
  let sink =
    match trace with Some path -> Obs.Trace.jsonl path | None -> Obs.Trace.null
  in
  let obs = Obs.create ~sink () in
  let jobs = resolve_jobs jobs in
  let daemon =
    try Serve.create ~jobs ~queue_limit ~fsync ~obs ~socket ~store ()
    with
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "rcn serve: cannot listen on %s: %s\n" socket
          (Unix.error_message e);
        exit 2
    | Sys_error msg ->
        Printf.eprintf "rcn serve: cannot open store %s: %s\n" store msg;
        exit 2
    | (Fsio.Io_error _ | Fsio.Corrupt _) as e ->
        Printf.eprintf "rcn serve: store %s: %s\n" store
          (Option.value ~default:(Printexc.to_string e) (Fsio.error_message e));
        exit Api.Response.err_storage
  in
  List.iter
    (fun signal ->
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> Serve.stop daemon))
      with Sys_error _ | Invalid_argument _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  Printf.printf "rcn serve: listening on %s (store %s, %d jobs)\n%!" socket store jobs;
  Serve.run daemon;
  Option.iter (fun fmt -> print_string (Obs.Stats.render ~command:"serve" obs fmt)) stats;
  flush stdout;
  Obs.Trace.close sink

(* ------------------------------------------------------------------ *)
(* request: print the canonical wire form of a query — what [--connect]
   would send — for scripting against a daemon with any socket tool. *)

let request kind ty_opt cap values rws responses sample seed target iters portfolio
    jobs kernel deadline sup_opts =
  let config () = build_config ~cap ~jobs ~kernel ~deadline sup_opts in
  let space () =
    { Synth.num_values = values; num_rws = rws; num_responses = responses }
  in
  let req =
    match kind with
    | "ping" -> Api.Request.Ping
    | "metrics" -> Api.Request.Metrics
    | "analyze" -> (
        match ty_opt with
        | Some ty ->
            Api.Request.Analyze { spec = Objtype.to_spec_string ty; config = config () }
        | None ->
            prerr_endline "rcn request analyze needs a TYPE argument";
            exit 2)
    | "census" ->
        Api.Request.Census
          {
            space = space ();
            sample;
            seed;
            checkpoint = None;
            resume = false;
            durable = false;
            config = config ();
          }
    | "synth" ->
        Api.Request.Synth
          {
            space = space ();
            target;
            seed;
            iterations = iters;
            restart_every = None;
            portfolio;
            config = config ();
          }
    | other ->
        Printf.eprintf
          "rcn request: unknown kind %S (expected analyze, census, synth, metrics or \
           ping)\n"
          other;
        exit 2
  in
  print_endline (Api.Request.to_string req)

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing *)

open Cmdliner

let cap_t =
  Arg.(value & opt int 5 & info [ "cap" ] ~docv:"N" ~doc:"Scan levels up to $(docv).")

let jobs_t =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"J"
        ~doc:
          "Worker domains for the decision engine (results are identical at \
           every job count).  0 means automatic: $(b,RCN_JOBS) when set, \
           otherwise the host's recommended domain count.")

let kernel_t =
  Arg.(
    value & opt kernel_conv Kernel.Trie
    & info [ "kernel" ] ~docv:"MODE"
        ~doc:
          "Decision kernel: $(b,on) (default; compiled transition tables \
           plus the schedule-prefix trie), $(b,tables) (compiled tables \
           without the trie — the ablation point), or $(b,off) / \
           $(b,reference) (the direct reference checkers).  All modes \
           return bit-identical results at every job count; the escape \
           hatch exists for benchmarking and for differential debugging.")

let deadline_t =
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"S"
        ~doc:
          "Wall-clock budget in seconds.  When it expires the engine \
           degrades instead of lying: level scans report honest \
           $(b,at-least) lower bounds and a census reports exactly the \
           tables it decided.")

let sym_t =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) false
    & info [ "sym" ] ~docv:"MODE"
        ~doc:
          "Symmetry reduction: $(b,on) canonizes transition tables under \
           the value/operation/response relabeling group and decides one \
           representative per isomorphism class, weighting each verdict by \
           its orbit size.  The census histogram is bit-identical to \
           $(b,off) (the default) while deciding far fewer tables; an \
           analyze query served from the store may hit a cached isomorphic \
           type.")

let connect_t =
  Arg.(
    value & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Send the query to a running $(b,rcn serve) daemon over its \
           Unix-domain socket instead of computing in-process.  Output, \
           PARTIAL/quarantine semantics and the exit code are identical \
           either way — both paths run the same Request/Response handler.")

let trace_t =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSONL trace (one span/event object per line, flushed as \
           emitted) to $(docv).")

let stats_t =
  Arg.(
    value
    & opt (some (enum [ ("text", Obs.Stats.Text); ("json", Obs.Stats.Json) ])) None
    & info [ "stats" ] ~docv:"FORMAT"
        ~doc:
          "Print a machine-readable metrics block (counters and histograms) to \
           stdout after the command: $(b,text) is one line per metric, \
           $(b,json) a single greppable object tagged $(b,rcn_stats).")

let supervise_t =
  let retries =
    Arg.(
      value & opt (some int) None
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Self-heal: retry a failing chunk of the fan-out up to $(docv) \
             attempts (capped exponential backoff with deterministic jitter) \
             before quarantining it.  Quarantined work degrades the result \
             honestly — $(b,at-least) floors, a PARTIAL census — instead of \
             aborting the run.  Any supervision flag enables the layer; \
             without them the engine aborts on the first failure, as before.")
  in
  let quarantine_report =
    Arg.(
      value & opt (some string) None
      & info [ "quarantine-report" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable quarantine ledger (JSON: context, \
             rank range, attempts, exception per quarantined chunk, plus \
             retry and watchdog-trip totals) to $(docv).")
  in
  let heartbeat =
    Arg.(
      value & opt (some float) None
      & info [ "heartbeat" ] ~docv:"S"
          ~doc:
            "Watchdog: workers heartbeat per chunk attempt; a worker silent \
             for more than $(docv) seconds trips the watchdog, which cancels \
             the sweep cooperatively and retries it with a halved chunk size \
             (the final round runs unwatchdogged, so slow work still \
             completes).")
  in
  let chaos_rate =
    Arg.(
      value & opt (some float) None
      & info [ "chaos-rate" ] ~docv:"P"
          ~doc:
            "Fault injection: make each chunk fail with probability $(docv) \
             (deterministic in $(b,--chaos-seed)), $(i,before) any real work \
             runs, so recovered results stay bit-identical.  For exercising \
             the retry path; see also $(b,--chaos-attempts).")
  in
  let chaos_seed =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"S" ~doc:"Seed for $(b,--chaos-rate) draws.")
  in
  let chaos_attempts =
    Arg.(
      value & opt int 1
      & info [ "chaos-attempts" ] ~docv:"A"
          ~doc:
            "A chunk picked by $(b,--chaos-rate) fails its first $(docv) \
             attempts, then succeeds — set it at or above $(b,--retries) to \
             force quarantine.")
  in
  Term.(
    const (fun retries quarantine_report heartbeat chaos_rate chaos_seed chaos_attempts ->
        { retries; quarantine_report; heartbeat; chaos_rate; chaos_seed; chaos_attempts })
    $ retries $ quarantine_report $ heartbeat $ chaos_rate $ chaos_seed $ chaos_attempts)

let ty_t = Arg.(required & pos 0 (some objtype_conv) None & info [] ~docv:"TYPE" ~doc:type_arg_doc)

let n_t = Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Parameter n of T_{n,n'} / process count.")
let n'_t = Arg.(value & opt int 2 & info [ "nprime" ] ~docv:"N'" ~doc:"Parameter n' of T_{n,n'}.")
let z_t = Arg.(value & opt int 1 & info [ "z" ] ~docv:"Z" ~doc:"Crash budget parameter z of E_z^*.")

let analyze_cmd =
  let certs =
    Arg.(value & flag & info [ "certificates" ] ~doc:"Also print witnessing certificates.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Determine (recoverable) consensus numbers of a gallery type")
    Term.(
      const analyze $ ty_t $ cap_t $ certs $ jobs_t $ kernel_t $ deadline_t $ sym_t
      $ supervise_t $ connect_t $ trace_t $ stats_t)

let gallery_cmd =
  Cmd.v
    (Cmd.info "gallery" ~doc:"Analyze every gallery type (experiment E5)")
    Term.(const gallery $ cap_t $ jobs_t $ kernel_t)

let statemachine_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz dot instead of ASCII.") in
  let all_values =
    Arg.(value & flag & info [ "all-values" ] ~doc:"Include values unreachable from the initial value.")
  in
  Cmd.v
    (Cmd.info "statemachine"
       ~doc:"Render a type's state-machine diagram (paper Figure 3 is 'T_{5,2}')")
    Term.(const statemachine $ ty_t $ dot $ all_values)

let proto_t =
  let doc =
    Printf.sprintf "Protocol: %s."
      (String.concat "; " (List.map (fun (n, d) -> Printf.sprintf "%s (%s)" n d) protocols))
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROTOCOL" ~doc)

let simulate_cmd =
  let seeds = Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"K" ~doc:"Random adversaries per input vector.") in
  let crash_prob =
    Arg.(value & opt float 0.2 & info [ "crash-prob" ] ~docv:"P" ~doc:"Crash probability per turn.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a protocol under random crash adversaries")
    Term.(const simulate $ proto_t $ n_t $ n'_t $ seeds $ crash_prob $ z_t)

let certify_cmd =
  let max_events =
    Arg.(value & opt int 60 & info [ "max-events" ] ~docv:"D" ~doc:"Execution length cap.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Exhaustively model-check a protocol over bounded-crash executions")
    Term.(const certify $ proto_t $ n_t $ n'_t $ z_t $ max_events)

let synth_cmd =
  let target = Arg.(value & opt int 4 & info [ "target" ] ~docv:"N" ~doc:"Witness consensus number.") in
  let values = Arg.(value & opt int 5 & info [ "values" ] ~docv:"V" ~doc:"Values in the search space.") in
  let rws = Arg.(value & opt int 4 & info [ "rws" ] ~docv:"R" ~doc:"RMW operations in the search space.") in
  let responses = Arg.(value & opt int 5 & info [ "responses" ] ~docv:"K" ~doc:"RMW responses.") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.") in
  let iters = Arg.(value & opt int 20000 & info [ "iterations" ] ~docv:"I" ~doc:"Fitness evaluation budget.") in
  let incremental =
    Arg.(
      value
      & opt (enum [ ("on", true); ("off", false) ]) true
      & info [ "incremental" ] ~docv:"MODE"
          ~doc:
            "Warm-start neighborhood search: $(b,on) (the default) holds one \
             compiled decision kernel per fitness level across the whole climb \
             and applies each mutation as a one-cell table patch with delta \
             invalidation; $(b,off) recompiles kernels on every candidate — \
             the ablation baseline.  The fitness trajectory and the witness \
             are bit-identical in both modes at a fixed seed.")
  in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc:"Write the witness's specification to $(docv).")
  in
  let portfolio =
    Arg.(value & opt int 1 & info [ "portfolio" ] ~docv:"P"
           ~doc:"Independently seeded climbs run across the worker domains; \
                 the lowest-seeded success wins.")
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Search for a consensus-number gap witness (experiment E6)")
    Term.(
      const synth $ target $ values $ rws $ responses $ seed $ iters $ incremental
      $ save $ portfolio $ jobs_t $ deadline_t $ supervise_t $ connect_t $ trace_t
      $ stats_t)

let trace_cmd =
  let schedule =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCHEDULE"
           ~doc:"Schedule in the paper's notation, e.g. 'p0 p1 c1 p1'.")
  in
  let inputs =
    Arg.(value & opt (some string) None & info [ "inputs" ] ~docv:"BITS"
           ~doc:"Binary inputs, one digit per process (default alternating).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Replay a schedule on a protocol and print the annotated trace")
    Term.(const trace $ proto_t $ n_t $ n'_t $ schedule $ inputs)

let chain_cmd =
  let max_events =
    Arg.(value & opt int 120 & info [ "max-events" ] ~docv:"D" ~doc:"Execution length cap.")
  in
  let inputs =
    Arg.(value & opt (some string) None & info [ "inputs" ] ~docv:"BITS"
           ~doc:"Binary inputs, one digit per process (default alternating).")
  in
  Cmd.v
    (Cmd.info "chain"
       ~doc:"Walk Theorem 13's chain construction (Figures 1-2) on a protocol")
    Term.(const chain $ proto_t $ n_t $ n'_t $ z_t $ max_events $ inputs)

let census_cmd =
  let values = Arg.(value & opt int 3 & info [ "values" ] ~docv:"V" ~doc:"Values per type.") in
  let rws = Arg.(value & opt int 2 & info [ "rws" ] ~docv:"R" ~doc:"RMW operations per type.") in
  let responses = Arg.(value & opt int 2 & info [ "responses" ] ~docv:"K" ~doc:"RMW responses per type.") in
  let sample_count =
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N"
           ~doc:"Sample $(docv) random types instead of exhausting the space.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Sampling seed.") in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Append every decided table's levels to $(docv), flushed as the \
                 sweep goes, so an interrupted census loses no finished work.")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Load previously decided tables from the $(b,--checkpoint) file \
                 and recompute only the missing ones.")
  in
  let durable =
    Arg.(value & flag & info [ "durable" ]
           ~doc:"fsync the $(b,--checkpoint) file after every append, extending \
                 crash safety from process death ($(b,kill -9)) to machine \
                 death, at the cost of one disk round trip per flushed chunk.")
  in
  let workers =
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N"
           ~doc:"Distribute the census over $(docv) crash-prone worker \
                 $(i,processes) (each running its own $(b,--jobs) domain \
                 pool), coordinated through a crash-safe lease ledger with \
                 heartbeat leases, work stealing and automatic respawn.  The \
                 merged histogram is bit-identical to the single-process \
                 census.  0 (the default) computes in-process.")
  in
  let ledger =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Lease ledger path for $(b,--workers) (default: a temporary \
                 file).  Every grant, result, expiry, steal and death is \
                 appended fsync'd; $(b,--resume) replays completed ranges \
                 from it, so killing the coordinator loses no finished work.")
  in
  let lease_ttl =
    Arg.(value & opt (some float) None & info [ "lease-ttl" ] ~docv:"S"
           ~doc:"Heartbeat budget per lease (default 30): a worker silent \
                 past $(docv) seconds is SIGKILLed and its range re-leased.")
  in
  let dist_chunk =
    Arg.(value & opt (some int) None & info [ "dist-chunk" ] ~docv:"N"
           ~doc:"Ranks per lease (default: the space over 4x the workers).")
  in
  let dist_stride =
    Arg.(value & opt (some int) None & info [ "dist-stride" ] ~docv:"N"
           ~doc:"Worker batch-and-heartbeat granularity in ranks (default 32).")
  in
  let dist_crash =
    Arg.(value & opt (some string) None & info [ "dist-crash" ] ~docv:"SPEC"
           ~doc:"Fault injection: $(b,SLOT:K,...) SIGKILLs slot SLOT's \
                 first-generation worker after K tables (respawned workers \
                 run clean) — the soak and smoke harness hook.")
  in
  let dist_throttle =
    Arg.(value & opt (some string) None & info [ "dist-throttle" ] ~docv:"SPEC"
           ~doc:"Straggler injection: $(b,SLOT:US,...) delays slot SLOT's \
                 first-generation worker by US microseconds per table, \
                 exercising the work-stealing path.")
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:"Histogram (discerning, recording) levels over a whole space of small types")
    Term.(
      const census $ values $ rws $ responses $ cap_t $ sample_count $ seed $ jobs_t
      $ kernel_t $ deadline_t $ sym_t $ checkpoint $ resume $ durable $ workers
      $ ledger $ lease_ttl $ dist_chunk $ dist_stride $ dist_crash $ dist_throttle
      $ supervise_t $ connect_t $ trace_t $ stats_t)

let worker_cmd =
  let config =
    Arg.(required & opt (some string) None & info [ "config" ] ~docv:"JSON"
           ~doc:"The Api.Config record, in its canonical wire form.")
  in
  let values = Arg.(value & opt int 3 & info [ "values" ] ~docv:"V" ~doc:"Values per type.") in
  let rws = Arg.(value & opt int 2 & info [ "rws" ] ~docv:"R" ~doc:"RMW operations per type.") in
  let responses = Arg.(value & opt int 2 & info [ "responses" ] ~docv:"K" ~doc:"RMW responses per type.") in
  let stride =
    Arg.(value & opt int 32 & info [ "stride" ] ~docv:"N"
           ~doc:"Tables decided between Progress heartbeats.")
  in
  let throttle_us =
    Arg.(value & opt int 0 & info [ "throttle-us" ] ~docv:"US"
           ~doc:"Sleep $(docv) microseconds per table (straggler injection).")
  in
  let crash_after =
    Arg.(value & opt int 0 & info [ "crash-after" ] ~docv:"K"
           ~doc:"SIGKILL this process after $(docv) tables (crash injection).")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Distributed-census worker process: speaks the Api.Worker frame \
          protocol on stdin.  Spawned by $(b,rcn census --workers); not \
          meant to be run by hand.")
    Term.(
      const worker $ config $ values $ rws $ responses $ stride $ throttle_us
      $ crash_after)

let store_cmd =
  let compact =
    let file =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
             ~doc:"The store log to compact in place.")
    in
    let max_bytes =
      Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"N"
             ~doc:"Eviction budget: after deduplication, evict records \
                   oldest-first-seen until the rewritten log fits in $(docv) \
                   bytes.  Idempotent, and covered by the same \
                   rename-atomicity crash argument as plain compaction.")
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite a result-store log, dropping superseded duplicate records \
            and any torn tail.  Crash-safe: the new log is fully written and \
            fsync'd to a sibling temp file, then renamed over the original — \
            a kill at any point leaves a valid log.  Run it on a store no \
            daemon has open.")
      Term.(const store_compact $ file $ max_bytes $ trace_t $ stats_t)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"Maintain the persistent result store")
    [ compact ]

let soak_cmd =
  let values = Arg.(value & opt int 3 & info [ "values" ] ~docv:"V" ~doc:"Values per type.") in
  let rws = Arg.(value & opt int 2 & info [ "rws" ] ~docv:"R" ~doc:"RMW operations per type.") in
  let responses = Arg.(value & opt int 2 & info [ "responses" ] ~docv:"K" ~doc:"RMW responses per type.") in
  let kills =
    Arg.(value & opt int 5 & info [ "kills" ] ~docv:"N"
           ~doc:"SIGKILL the census child at $(docv) seeded progress points \
                 before letting it finish.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Seed for the kill points; identical seeds kill at identical \
                 checkpoint progress.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Checkpoint file handed to the census child (default: a fresh \
                 temporary file, removed on success, kept on failure).")
  in
  let timeout =
    Arg.(value & opt float 300.0 & info [ "timeout" ] ~docv:"S"
           ~doc:"Per-cycle hang guard: a child silent past $(docv) seconds \
                 fails the soak.")
  in
  let dist =
    Arg.(value & flag & info [ "dist" ]
           ~doc:"Soak the $(i,distributed) census instead: every coordinator \
                 incarnation gets one seeded worker SIGKILL per slot, the \
                 coordinator itself is killed at seeded lease-ledger progress \
                 points and resumed, and the final ledger replay must cover \
                 the space disjointly with a histogram bit-identical to the \
                 single-process census.  $(b,--kills) becomes the minimum \
                 worker-death count the audit requires.")
  in
  let workers =
    Arg.(value & opt int 3 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker processes per coordinator incarnation (with $(b,--dist)).")
  in
  let coordinator_kills =
    Arg.(value & opt int 1 & info [ "coordinator-kills" ] ~docv:"N"
           ~doc:"Coordinator kill(-9)+resume cycles (with $(b,--dist)).")
  in
  let ledger =
    Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE"
           ~doc:"Lease ledger handed to the coordinator (with $(b,--dist); \
                 default: a fresh temporary file, removed on success, kept on \
                 failure).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos-soak the crash-recovery paths: repeatedly $(b,kill -9) a real \
          census child at seeded progress points, resume it to completion, and \
          verify the recovered histogram is bit-identical to an uninterrupted \
          reference.  Plain form kills a $(b,census --checkpoint --resume \
          --durable) child; $(b,--dist) kills whole worker processes $(i,and) \
          the distributed-census coordinator.")
    Term.(
      const soak $ values $ rws $ responses $ cap_t $ kills $ seed $ jobs_t $ kernel_t
      $ checkpoint $ timeout $ dist $ workers $ coordinator_kills $ ledger $ trace_t
      $ stats_t)

let inject_cmd =
  let protocols_t =
    Arg.(value & opt (list string) [ "race"; "tas2"; "tnn-overloaded" ]
           & info [ "protocols" ] ~docv:"NAMES"
               ~doc:"Comma-separated protocol names (see `rcn simulate --help`); \
                     the default trio is known-broken, exercising the shrinker.")
  in
  let seeds =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"K"
           ~doc:"Seeds per adversary parameterization (campaign uses 1..$(docv)).")
  in
  let fuel =
    Arg.(value & opt int 2000 & info [ "fuel" ] ~docv:"F" ~doc:"Event cap per run.")
  in
  let shrink_per_cell =
    Arg.(value & opt int 1 & info [ "shrink-per-cell" ] ~docv:"M"
           ~doc:"Violations per (protocol, adversary) cell to shrink into findings.")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE"
           ~doc:"Also write the campaign report to $(docv).")
  in
  let require_violation =
    Arg.(value & flag & info [ "require-violation" ]
           ~doc:"Invert the exit convention: fail (exit 1) when the campaign \
                 finds $(i,no) violation — for smoke-testing the harness \
                 against known-broken protocols.")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Fault-injection campaign: sweep seeded crash adversaries over \
          protocols, shrink every violation to a minimal replayable schedule")
    Term.(
      const inject $ protocols_t $ n_t $ n'_t $ seeds $ z_t $ fuel $ shrink_per_cell
      $ report $ require_violation $ trace_t $ stats_t)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt string "rcn.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path to listen on.")
  in
  let store =
    Arg.(
      value
      & opt string "rcn.store"
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Persistent content-addressed result store (append log).  Repeat \
             analyze queries are answered from it byte-identically, across \
             restarts and crashes.")
  in
  let queue_limit =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission control: refuse engine requests (exit code 75 at the \
             client) once $(docv) are already queued.  Pings, metrics scrapes \
             and store hits are always answered.")
  in
  let fsync =
    Arg.(
      value & flag
      & info [ "fsync" ]
          ~doc:
            "fsync the store after every append, like $(b,census --durable): \
             crash safety against machine death, one disk round trip per new \
             result.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: accept analyze/census/synth requests over a \
          Unix-domain socket, one engine request at a time on a shared domain \
          pool, answering repeat analyze queries from the persistent result \
          store.  SIGTERM stops it cleanly (drain, persist, exit 0).")
    Term.(const serve $ socket $ store $ jobs_t $ queue_limit $ fsync $ trace_t $ stats_t)

let request_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"KIND" ~doc:"analyze, census, synth, metrics or ping.")
  in
  let ty_opt = Arg.(value & pos 1 (some objtype_conv) None & info [] ~docv:"TYPE" ~doc:type_arg_doc) in
  let values = Arg.(value & opt int 3 & info [ "values" ] ~docv:"V" ~doc:"Values per type (census/synth).") in
  let rws = Arg.(value & opt int 2 & info [ "rws" ] ~docv:"R" ~doc:"RMW operations (census/synth).") in
  let responses = Arg.(value & opt int 2 & info [ "responses" ] ~docv:"K" ~doc:"RMW responses (census/synth).") in
  let sample =
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N" ~doc:"Census sampling count.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.") in
  let target = Arg.(value & opt int 4 & info [ "target" ] ~docv:"N" ~doc:"Synth witness consensus number.") in
  let iters = Arg.(value & opt int 20000 & info [ "iterations" ] ~docv:"I" ~doc:"Synth evaluation budget.") in
  let portfolio = Arg.(value & opt int 1 & info [ "portfolio" ] ~docv:"P" ~doc:"Synth portfolio size.") in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Print the canonical serve-protocol request (single-line JSON) for a \
          query — what $(b,--connect) would send — for scripting against a \
          daemon with any socket tool.")
    Term.(
      const request $ kind $ ty_opt $ cap_t $ values $ rws $ responses $ sample $ seed
      $ target $ iters $ portfolio $ jobs_t $ kernel_t $ deadline_t $ supervise_t)

let robustness_cmd =
  let tys = Arg.(non_empty & pos_all string [] & info [] ~docv:"TYPE" ~doc:type_arg_doc) in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:"Combined recoverable-consensus power of a set of readable types (Theorem 14)")
    Term.(const robustness $ tys $ cap_t)

let crashtest_cmd =
  let artifacts =
    Arg.(value & opt (list string) [] & info [ "artifact" ] ~docv:"NAMES"
           ~doc:"Comma-separated subset of store, ledger, checkpoint \
                 (default: all three).")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S"
           ~doc:"Seed for the combined (multi-fault) plans; the exhaustive \
                 single-fault sweep is seed-independent.")
  in
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
           ~doc:"Scratch directory for the per-plan artifacts (default: a \
                 fresh temporary directory).  Plans that pass are removed as \
                 they go; violating plans are kept for inspection.")
  in
  let keep =
    Arg.(value & flag & info [ "keep" ]
           ~doc:"Keep the scratch directory even when every plan passes.")
  in
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:
         "Fault-plan sweep over every durable artifact: run each artifact's \
          workload under a crash, I/O-error, torn-write or lying-fsync fault \
          injected at every operation boundary (plus seeded multi-fault \
          plans), re-open after each plan, and assert the recovery \
          invariants — replay never raises on torn input, no record \
          acknowledged by an honest fsync is ever lost, and injected \
          mid-log corruption is reported, never silently eaten.  Exit 0 \
          when every plan holds, 1 on any violation.")
    Term.(const crashtest $ artifacts $ seed $ dir $ keep $ trace_t $ stats_t)

let main =
  Cmd.group
    (Cmd.info "rcn" ~version:"1.0.0"
       ~doc:"Determining recoverable consensus numbers (PODC 2024 reproduction)")
    [
      analyze_cmd; gallery_cmd; statemachine_cmd; simulate_cmd; certify_cmd; trace_cmd;
      chain_cmd; synth_cmd; robustness_cmd; census_cmd; worker_cmd; soak_cmd; inject_cmd;
      serve_cmd; request_cmd; store_cmd; crashtest_cmd;
    ]

let () = exit (Cmd.eval main)
