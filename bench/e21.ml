(* E21: symmetry-reduced census (make bench-e21).

   Two runs of the same census — {3,2,2} at cap 4, 46656 tables, trie
   kernel, the E18/E20 workload:

     unreduced  Engine.census with sym off — every table decided
                (the E18 kernel baseline);
     reduced    Engine.census with sym on — one representative per
                canonical-labeling class, verdicts weighted by orbit
                size.

   Writes BENCH_e21.json and exits nonzero if the reduced histogram is
   not bit-identical to the unreduced one (exactness is the contract,
   never waived), if the canonizer fails to shrink the space (classes
   must be strictly below the table count), or if the reduced run is
   not at least [speedup_floor] times faster.  Unlike E20's distributed
   floor, this one is enforced unconditionally: both runs share the
   same pool size, so the ratio measures the reduction itself, not the
   host's core count. *)

let speedup_floor = 3.0

let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 }
let cap = 4
let jobs = 4

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let entries_json entries =
  Wire.List
    (List.map
       (fun (e : Census.entry) ->
         Wire.List
           [ Wire.Int e.Census.discerning; Wire.Int e.Census.recording; Wire.Int e.Census.count ])
       entries)

let run ~sym =
  let config = Api.Config.v ~cap ~jobs ~kernel:Kernel.Trie ~sym () in
  let obs = Obs.create () in
  let r, s =
    time (fun () ->
        let pool = Pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> Engine.census ~obs ~config pool space))
  in
  (r, s, obs)

let counter_value obs name =
  match List.assoc_opt name (Obs.Metrics.snapshot (Obs.metrics obs)) with
  | Some (Obs.Metrics.Count n) -> n
  | _ -> 0

let () =
  let total = Census.space_size space in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "e21: census {%d,%d,%d} cap %d — %d tables, %d core(s)\n%!"
    space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap total
    cores;

  let unreduced, unreduced_s, _ = run ~sym:false in
  Printf.printf "e21: unreduced (jobs=%d)  %6.2f s\n%!" jobs unreduced_s;

  let reduced, reduced_s, obs = run ~sym:true in
  let classes = counter_value obs "sym.classes" in
  let orbit_max = counter_value obs "sym.orbit_max" in
  Printf.printf "e21: reduced   (jobs=%d)  %6.2f s — %d classes, orbit_max %d\n%!"
    jobs reduced_s classes orbit_max;

  let identical =
    unreduced.Engine.complete && reduced.Engine.complete
    && reduced.Engine.entries = unreduced.Engine.entries
  in
  let shrunk = classes > 0 && classes < total in
  let speedup = unreduced_s /. reduced_s in
  let json =
    Wire.Obj
      [
        ("bench", Wire.String "e21");
        ( "space",
          Wire.List
            [
              Wire.Int space.Synth.num_values;
              Wire.Int space.Synth.num_rws;
              Wire.Int space.Synth.num_responses;
            ] );
        ("cap", Wire.Int cap);
        ("total", Wire.Int total);
        ("classes", Wire.Int classes);
        ("orbit_max", Wire.Int orbit_max);
        ("cores", Wire.Int cores);
        ("jobs", Wire.Int jobs);
        ("unreduced_s", Wire.Float unreduced_s);
        ("reduced_s", Wire.Float reduced_s);
        ("speedup", Wire.Float speedup);
        ("speedup_floor", Wire.Float speedup_floor);
        ("identical", Wire.Bool identical);
        ("entries", entries_json unreduced.Engine.entries);
      ]
  in
  Out_channel.with_open_bin "BENCH_e21.json" (fun oc ->
      Out_channel.output_string oc (Wire.to_string json);
      Out_channel.output_char oc '\n');
  Printf.printf
    "e21: %d tables → %d classes, speedup %.2fx (floor %.1fx), identical=%b → BENCH_e21.json\n%!"
    total classes speedup speedup_floor identical;
  if not identical then begin
    Printf.eprintf "e21: the symmetry-reduced histogram diverged from the unreduced census\n";
    exit 1
  end;
  if not shrunk then begin
    Printf.eprintf "e21: canonizer decided %d classes of %d tables — no reduction\n"
      classes total;
    exit 1
  end;
  if speedup < speedup_floor then begin
    Printf.eprintf "e21: reduced speedup %.2fx below the %.1fx floor\n" speedup
      speedup_floor;
    exit 1
  end
