(* E22: incremental decision kernel (make bench-e22).

   Two runs of the same E6 witness search — the target-4 (X_4-class)
   synthesis climb, space {11,3,11}, fixed seed, fixed candidate
   budget:

     incremental  Synth.search ~incremental:true — one long-lived
                  kernel + scratch per fitness level held across the
                  whole climb, each mutation applied as a one-cell
                  Kernel.patch with delta invalidation of the per-(u,
                  ops) evaluation memo, rejected candidates reverted
                  with Kernel.unpatch;
     from-scratch Synth.search ~incremental:false — kernels recompiled
                  and memos rebuilt on every candidate (the baseline
                  the pre-incremental synthesizer always paid).

   Both modes draw identically from the RNG and score identical
   candidate sequences, so the fitness trajectory (every candidate's
   score, in order) and the final outcome must be bit-identical — any
   divergence means the patched kernels answered a query differently
   from a fresh compile, and the bench fails hard on it (exactness is
   the contract, never waived).  Writes BENCH_e22.json and exits
   nonzero on divergence, on a speedup below [speedup_floor], or if
   the incremental run did not actually exercise the patch path.

   The workload is the search's warm-start regime and says so: one
   ladder-seeded climb (the candidate budget stays below the restart
   threshold), where the fitness cascade short-circuits early and a
   candidate costs a few delta-driven kernel evaluations against a
   recompile-plus-fresh-sweep — measured ~4-5x here.  Once a climb
   parks on the not-(target-1)-recording plateau, every candidate pays
   a discerning refutation sweep whose incremental cost is bounded
   below by the invalidation fraction (the share of memo entries whose
   folds read a random edited cell, ~0.3-0.45 on these spaces), so the
   deep-budget ratio is structurally ~1/f ≈ 2-3x — EXPERIMENTS.md E6
   reports the full budget/space table for both regimes.  Each mode is
   timed as the minimum over [reps] runs: the workload is fast by
   design, and min-of-n is the stable estimator under scheduler
   noise. *)

let speedup_floor = 3.0

let space = { Synth.num_values = 11; num_rws = 3; num_responses = 11 }
let target = 4
let seed = 1
let iterations = 2_000
let reps = 5

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let counter_value obs name =
  match List.assoc_opt name (Obs.Metrics.snapshot (Obs.metrics obs)) with
  | Some (Obs.Metrics.Count n) -> n
  | _ -> 0

(* One timed run; [reps] of these per mode, keeping the fastest time.
   Every repetition's trajectory is compared — a divergence in any run
   fails the bench, not just the fastest one. *)
let run ~incremental =
  let obs = Obs.create () in
  let trajectory = ref [] in
  let w, s =
    time (fun () ->
        Synth.search ~seed ~max_iterations:iterations ~incremental ~obs
          ~on_score:(fun sc -> trajectory := sc :: !trajectory)
          ~target space)
  in
  (w, s, List.rev !trajectory, obs)

let best ~incremental =
  let w, s, traj, obs = run ~incremental in
  let s = ref s and w = ref w and traj = ref traj and obs = ref obs in
  let consistent = ref true in
  for _ = 2 to reps do
    let w', s', traj', obs' = run ~incremental in
    if traj' <> !traj then consistent := false;
    if s' < !s then begin
      s := s';
      w := w';
      obs := obs'
    end
  done;
  (!w, !s, !traj, !obs, !consistent)

let () =
  Printf.printf "e22: synth {%d,%d,%d} target %d seed %d, %d candidates\n%!"
    space.Synth.num_values space.Synth.num_rws space.Synth.num_responses target seed
    iterations;
  (* The schedule tries for n = 2 .. target are process-count-global and
     memoized; warm them so neither timed run pays the one-time build. *)
  for n = 2 to target do
    Kernel.warm_trie ~nprocs:n ()
  done;

  let w_inc, inc_s, traj_inc, obs_inc, rep_inc = best ~incremental:true in
  let evals = counter_value obs_inc "synth.evals" in
  let skips = counter_value obs_inc "synth.sym_skips" in
  let patches = counter_value obs_inc "kernel.patches" in
  let invalidated = counter_value obs_inc "kernel.masks_invalidated" in
  let reused = counter_value obs_inc "kernel.masks_reused" in
  Printf.printf
    "e22: incremental  %6.2f s — %d evals, %d sym skips, %d patches, %d masks invalidated, %d reused\n%!"
    inc_s evals skips patches invalidated reused;

  let w_scr, scr_s, traj_scr, obs_scr, rep_scr = best ~incremental:false in
  let evals_scr = counter_value obs_scr "synth.evals" in
  Printf.printf "e22: from-scratch %6.2f s — %d evals\n%!" scr_s evals_scr;

  let witness_spec = function
    | None -> "none"
    | Some w -> Objtype.to_spec_string w.Synth.objtype
  in
  let trajectory_identical = traj_inc = traj_scr && rep_inc && rep_scr in
  let witness_identical =
    evals = evals_scr && String.equal (witness_spec w_inc) (witness_spec w_scr)
  in
  let patched = patches > 0 && reused > 0 in
  let speedup = scr_s /. inc_s in
  let evals_per_s s = float_of_int evals /. s in
  let json =
    Wire.Obj
      [
        ("bench", Wire.String "e22");
        ( "space",
          Wire.List
            [
              Wire.Int space.Synth.num_values;
              Wire.Int space.Synth.num_rws;
              Wire.Int space.Synth.num_responses;
            ] );
        ("target", Wire.Int target);
        ("seed", Wire.Int seed);
        ("iterations", Wire.Int iterations);
        ("reps", Wire.Int reps);
        ("evals", Wire.Int evals);
        ("sym_skips", Wire.Int skips);
        ("patches", Wire.Int patches);
        ("masks_invalidated", Wire.Int invalidated);
        ("masks_reused", Wire.Int reused);
        ("incremental_s", Wire.Float inc_s);
        ("scratch_s", Wire.Float scr_s);
        ("incremental_evals_per_s", Wire.Float (evals_per_s inc_s));
        ("scratch_evals_per_s", Wire.Float (evals_per_s scr_s));
        ("speedup", Wire.Float speedup);
        ("speedup_floor", Wire.Float speedup_floor);
        ("trajectory_identical", Wire.Bool trajectory_identical);
        ("witness_identical", Wire.Bool witness_identical);
      ]
  in
  Out_channel.with_open_bin "BENCH_e22.json" (fun oc ->
      Out_channel.output_string oc (Wire.to_string json);
      Out_channel.output_char oc '\n');
  Printf.printf
    "e22: %.0f vs %.0f evals/s, speedup %.2fx (floor %.1fx), trajectory_identical=%b → BENCH_e22.json\n%!"
    (evals_per_s inc_s) (evals_per_s scr_s) speedup speedup_floor
    trajectory_identical;
  if not trajectory_identical then begin
    Printf.eprintf "e22: fitness trajectories diverged between incremental and from-scratch\n";
    exit 1
  end;
  if not witness_identical then begin
    Printf.eprintf "e22: search outcomes diverged between incremental and from-scratch\n";
    exit 1
  end;
  if not patched then begin
    Printf.eprintf "e22: incremental run never exercised the patch path (patches=%d reused=%d)\n"
      patches reused;
    exit 1
  end;
  if speedup < speedup_floor then begin
    Printf.eprintf "e22: incremental speedup %.2fx below the %.1fx floor\n" speedup
      speedup_floor;
    exit 1
  end
