(* Standalone entry point for the E18 kernel ablation (make bench-e18):
   runs the ablation, writes BENCH_e18.json, and fails loudly if any mode
   disagrees or the headline census speedup regresses below the 3x
   acceptance floor. *)

let () =
  let rows = Kernel_ablation.run () in
  List.iter
    (fun (row : Kernel_ablation.row) ->
      if not row.Kernel_ablation.identical then begin
        Printf.eprintf "e18: modes disagree on %s (jobs=%d)\n" row.Kernel_ablation.name
          row.Kernel_ablation.jobs;
        exit 1
      end)
    rows;
  match
    List.find_opt
      (fun (r : Kernel_ablation.row) ->
        r.Kernel_ablation.name = "e11-census-v3-rw2-resp2-cap4")
      rows
  with
  | Some census when Kernel_ablation.speedup census < 3.0 ->
      Printf.eprintf "e18: census speedup %.2fx is below the 3x floor\n"
        (Kernel_ablation.speedup census);
      exit 1
  | _ -> ()
