(* E19 — the self-healing tax: what does running every chunk through the
   supervision layer cost when nothing fails, and what does recovery cost
   when 1% of chunks do?  Emits machine-readable BENCH_e19.json (the CI
   artifact recording the trajectory) alongside the printed section.

   Methodology: each configuration is timed [runs] times and the minimum
   is kept — the standard floor estimator, robust against scheduler noise
   that a mean would smear into false regressions.  The failure-free gate
   is an overhead ceiling; the chaos row is gated on *honesty* (complete,
   bit-identical histogram, retries actually exercised) with a loose time
   ceiling, since its cost is dominated by the injected failures, not by
   the layer. *)

let time f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  (r, Obs.Clock.now () -. t0)

let min_of_runs ~runs f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to runs do
    let r, t = time f in
    if t < !best then best := t;
    result := Some r
  done;
  (Option.get !result, !best)

type row = {
  name : string;
  jobs : int;
  baseline_s : float;  (* unsupervised *)
  supervised_s : float;  (* supervised, failure-free *)
  chaos_s : float;  (* supervised, 1% of chunks fail once *)
  overhead : float;  (* (supervised - baseline) / baseline *)
  chaos_overhead : float;  (* (chaos - baseline) / baseline *)
  retries : int;  (* retries healed during the chaos run *)
  identical : bool;  (* all three runs produced the same histogram *)
}

(* Sub-millisecond backoffs: the bench measures the layer, not the sleep. *)
let bench_policy = Supervise.Policy.v ~max_attempts:3 ~base_backoff:1e-4 ~max_backoff:1e-3 ()

let census_workload ~runs ~jobs =
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let census ?supervisor () =
    Pool.with_pool ~jobs @@ fun pool ->
    Engine.census ?supervisor ~config:(Api.Config.v ~cap:3 ()) pool space
  in
  let base, baseline_s = min_of_runs ~runs (fun () -> census ()) in
  Printf.printf "  census {3,2,2} cap 3 unsupervised   jobs=%d: %8.3fs\n%!" jobs baseline_s;
  let sup, supervised_s =
    min_of_runs ~runs (fun () ->
        census ~supervisor:(Supervise.create ~policy:bench_policy ()) ())
  in
  Printf.printf "  census {3,2,2} cap 3 supervised     jobs=%d: %8.3fs\n%!" jobs supervised_s;
  (* 1% of chunks fail their first attempt; every failure heals on retry. *)
  let chaos_sup = ref None in
  let chaos, chaos_s =
    min_of_runs ~runs (fun () ->
        let chaos = Supervise.Chaos.create ~attempts:1 ~rate:0.01 ~seed:19 () in
        let s = Supervise.create ~policy:bench_policy ~chaos () in
        chaos_sup := Some s;
        census ~supervisor:s ())
  in
  let retries = Supervise.retries (Option.get !chaos_sup) in
  Printf.printf "  census {3,2,2} cap 3 1%% chunk chaos jobs=%d: %8.3fs (%d retries healed)\n%!"
    jobs chaos_s retries;
  {
    name = "e19-census-v3-rw2-resp2-cap3";
    jobs;
    baseline_s;
    supervised_s;
    chaos_s;
    overhead = (supervised_s -. baseline_s) /. baseline_s;
    chaos_overhead = (chaos_s -. baseline_s) /. baseline_s;
    retries;
    identical =
      base.Engine.entries = sup.Engine.entries
      && base.Engine.entries = chaos.Engine.entries
      && base.Engine.complete && sup.Engine.complete && chaos.Engine.complete;
  }

let json_of_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"bench\":\"e19\",\"schema\":1,\"workloads\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%S,\"jobs\":%d,\"baseline_s\":%.6f,\"supervised_s\":%.6f,\"chaos_s\":%.6f,\"overhead\":%.4f,\"chaos_overhead\":%.4f,\"retries\":%d,\"identical\":%b}"
           row.name row.jobs row.baseline_s row.supervised_s row.chaos_s row.overhead
           row.chaos_overhead row.retries row.identical))
    rows;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let run ?(path = "BENCH_e19.json") ?(runs = 3) () =
  let title = "E19 — supervision overhead: unsupervised vs supervised vs 1% chunk chaos" in
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  let jobs1 = census_workload ~runs ~jobs:1 in
  let jobs4 = census_workload ~runs ~jobs:4 in
  let rows = [ jobs1; jobs4 ] in
  List.iter
    (fun row ->
      Printf.printf
        "%-30s jobs=%d: overhead %+.2f%%, chaos recovery %+.2f%% (%d retries, identical: %b)\n"
        row.name row.jobs (100.0 *. row.overhead)
        (100.0 *. row.chaos_overhead)
        row.retries row.identical)
    rows;
  Out_channel.with_open_text path (fun oc -> output_string oc (json_of_rows rows));
  Printf.printf "wrote %s\n" path;
  rows
