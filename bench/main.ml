(* Benchmark harness: regenerates every experiment artifact (the paper has
   no empirical tables — its "results" are theorem statements about
   concrete objects; see DESIGN.md / EXPERIMENTS.md for the mapping) and
   times the machinery with bechamel, one Test.make per experiment plus the
   DESIGN.md ablations.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

(* All wall timings below are on the monotonic clock: an NTP step during a
   bench run must not produce negative or inflated durations. *)
let time f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  (r, Obs.Clock.now () -. t0)


(* ================================================================== *)
(* Part 1 — regenerate the experiment artifacts                        *)
(* ================================================================== *)

let e1_figure3 () =
  section "E1 — Figure 3: state machine of T_{5,2}";
  let t = Gallery.tnn ~n:5 ~n':2 in
  print_string (Dot.to_ascii t);
  Printf.printf "values: %d (paper: 2n = 10), merged edges: %d\n" t.Objtype.num_values
    (Dot.edge_count t)

let e2_wait_free () =
  section "E2 — wait-free n-consensus on T_{n,n'} (Lemma 15 lower bound)";
  List.iter
    (fun (n, n') ->
      let p = Tnn_protocol.wait_free ~n ~n' in
      let runs = ref 0 and bad = ref 0 in
      List.iter
        (fun inputs ->
          List.iter
            (fun sched ->
              incr runs;
              let final, _ = Exec.run_schedule p (Config.initial p ~inputs) sched in
              if not (Checker.is_ok (Checker.consensus p final)) then incr bad)
            (Sched.interleavings ~nprocs:n ~steps_per_proc:1))
        (binary_inputs n);
      Printf.printf "T_{%d,%d}: %5d exhaustive runs, %d violations\n" n n' !runs !bad)
    [ (2, 1); (3, 1); (4, 2); (5, 2) ]

let e3_recoverable () =
  section "E3 — recoverable n'-consensus on T_{n,n'} (Lemma 16 lower bound)";
  List.iter
    (fun (n, n') ->
      let p = Tnn_protocol.recoverable ~n ~n' in
      match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs n') p with
      | Ok (), truncated ->
          Printf.printf "T_{%d,%d}: certified over E_1^* executions (exhaustive: %b)\n" n n'
            (not truncated)
      | Error r, _ ->
          Printf.printf "T_{%d,%d}: VIOLATION %s\n" n n' (Sched.to_string r.Counterexample.schedule))
    [ (2, 1); (3, 1); (4, 2); (3, 2) ]

let e4_overload () =
  section "E4 — the recoverable protocol breaks at n' + 1 processes (Lemma 16 upper bound)";
  List.iter
    (fun (n, n') ->
      let p = Tnn_protocol.recoverable_overloaded ~procs:(n' + 1) ~n ~n' in
      match Counterexample.search ~z:1 ~inputs_list:(binary_inputs (n' + 1)) p with
      | Some r ->
          Printf.printf "T_{%d,%d} with %d procs: violation, schedule [%s], inputs %s\n" n n'
            (n' + 1)
            (Sched.to_string r.Counterexample.schedule)
            (String.concat "" (List.map string_of_int (Array.to_list r.Counterexample.inputs)))
      | None -> Printf.printf "T_{%d,%d}: no violation found (UNEXPECTED)\n" n n')
    [ (3, 1); (4, 2) ]

let e5_gallery () =
  section "E5 — the hierarchy table: consensus vs recoverable consensus numbers";
  Printf.printf "%-18s %-9s %-6s %-6s %-6s %-6s\n" "type" "readable" "disc" "rec" "cons" "rcons";
  Pool.with_pool ~jobs:(Engine.default_jobs ()) @@ fun pool ->
  List.iter
    (fun a -> Format.printf "%a@." Analysis.pp a)
    (Engine.analyze_all ~config:(Api.Config.v ~cap:5 ()) pool
       (List.map snd (Gallery.all ())))

let e6_witness () =
  section "E6 — the X_4 gap witness (corollary to Theorem 13)";
  let space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 } in
  (match Synth.search ~seed:1 ~max_iterations:2_000 ~target:4 space with
  | Some w ->
      Printf.printf "search found a witness after %d evaluations\n" w.Synth.iterations
  | None -> Printf.printf "search failed (UNEXPECTED)\n");
  Printf.printf "gallery witness verified: %b (cn 4, rcn 2; paper: X_4 has cn 4, rcn 2)\n"
    (Synth.verify_witness ~target:4 Gallery.x4_witness);
  (* The generalized crossing family: explicit witnesses for every n >= 4. *)
  List.iter
    (fun n ->
      let ty = Gallery.crossing_witness ~n in
      Printf.printf "crossing-x%d (%d values): verified cn %d / rcn %d: %b\n" n
        ty.Objtype.num_values n (n - 2)
        (Synth.verify_witness ~target:n ty))
    [ 4; 5; 6; 7 ]

let e7_robustness () =
  section "E7 — robustness of the recoverable hierarchy (Theorem 14)";
  let r =
    Robustness.analyze ~cap:4
      [ Gallery.test_and_set; Gallery.team_ladder ~cap:2; Gallery.x4_witness; Gallery.register 2 ]
  in
  Format.printf "%a@." Robustness.pp_report r;
  (* Theorem 14 on combined objects: decide the product type directly. *)
  List.iter
    (fun (a, b) ->
      Format.printf "%a@." Robustness.pp_product_report (Robustness.check_product ~cap:4 a b))
    [
      (Gallery.test_and_set, Gallery.test_and_set);
      (Gallery.test_and_set, Gallery.team_ladder ~cap:2);
      (Gallery.register 2, Gallery.team_ladder ~cap:2);
    ]

let e11_census () =
  section "E11 — census of the small-type landscape";
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  Printf.printf "all %d readable types with 3 values, 2 RMW ops, 2 responses (cap 4):\n"
    (Census.space_size space);
  let run jobs =
    Pool.with_pool ~jobs @@ fun pool ->
    time (fun () -> Engine.census ~config:(Api.Config.v ~cap:4 ()) pool space)
  in
  let run1, t1 = run 1 in
  let run4, t4 = run 4 in
  let entries = run1.Engine.entries and entries4 = run4.Engine.entries in
  Format.printf "%a@." Census.pp entries;
  Printf.printf "gap-1 share at level 3 (disc 3, rec 2): %.3f%%\n"
    (100.0 *. Census.gap_share entries ~levels:(3, 2));
  assert (run1.Engine.complete && run4.Engine.complete);
  assert (entries = entries4);
  Printf.printf
    "engine census: jobs=1 %.2fs, jobs=4 %.2fs (speedup %.2fx on %d cores), histograms identical: %b\n"
    t1 t4 (t1 /. t4)
    (Domain.recommended_domain_count ())
    (entries = entries4)

let e8_valency () =
  section "E8 — valency machinery on a live protocol (Lemmas 6-9, Obs. 11)";
  let p = Classic.sticky_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  let root = Explore.root ctx ~inputs:[| 0; 1 |] in
  (match Explore.find_critical ctx root with
  | Some crit ->
      Printf.printf "critical execution: [%s]\n" (Sched.to_string (Explore.schedule_to crit));
      List.iter (fun (p, v) -> Printf.printf "  p%d on team %d\n" p v) (Explore.teams ctx crit);
      Printf.printf "  classification: %s\n"
        (match Explore.classify ctx crit with
        | Explore.N_recording -> "n-recording"
        | Explore.Hiding v -> Printf.sprintf "%d-hiding" v
        | Explore.Neither -> "neither")
  | None -> Printf.printf "no critical execution (UNEXPECTED)\n");
  let nodes, truncated = Explore.count_nodes ctx root ~max_nodes:1_000_000 in
  Printf.printf "explored E_1^* nodes: %d (truncated: %b)\n" nodes truncated;
  (* Theorem 13's chain on the paper's own protocol: the critical execution
     passes through crashes before reaching an n-recording configuration. *)
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let ctx = Explore.create ~z:1 ~max_events:80 p in
  (match Explore.theorem13_chain ctx (Explore.root ctx ~inputs:[| 1; 0 |]) with
  | steps, Explore.Reached_recording ->
      List.iter
        (fun (s : Explore.chain_step) ->
          Printf.printf "T_{4,2} chain: critical [%s] -> %s\n"
            (Sched.to_string s.Explore.schedule)
            (match s.Explore.step_classification with
            | Explore.N_recording -> "n-recording"
            | Explore.Hiding v -> Printf.sprintf "%d-hiding" v
            | Explore.Neither -> "neither"))
        steps
  | _, Explore.Exhausted i -> Printf.printf "T_{4,2} chain exhausted at %d\n" i
  | _, Explore.Stuck m -> Printf.printf "T_{4,2} chain stuck: %s\n" m)

let e9_decider_scaling () =
  section "E9 — cost of the determining procedure";
  Printf.printf "%-18s %3s %12s %12s\n" "type" "n" "candidates" "naive";
  List.iter
    (fun (name, ty, n) ->
      Printf.printf "%-18s %3d %12d %12d\n" name n
        (Decide.count_candidates ty ~n)
        (Decide.count_candidates ~naive:true ty ~n))
    [
      ("test-and-set", Gallery.test_and_set, 3);
      ("team-ladder-2", Gallery.team_ladder ~cap:2, 3);
      ("team-ladder-2", Gallery.team_ladder ~cap:2, 4);
      ("x4-witness", Gallery.x4_witness, 4);
      ("T_{4,2}", Gallery.tnn ~n:4 ~n':2, 4);
    ];
  (* Engine ablations: domain fan-out and the shared closure cache.  The
     refutation of 5-recording on x4-witness scans the whole candidate
     space — the engine's best case. *)
  let x4 = Gallery.x4_witness in
  let jobs_hi = max 2 (Engine.default_jobs ()) in
  let run jobs =
    Pool.with_pool ~jobs @@ fun pool ->
    time (fun () -> Engine.search ~config:Api.Config.default pool Decide.Recording x4 ~n:5)
  in
  let r1, t1 = run 1 in
  let rn, tn = run jobs_hi in
  Printf.printf
    "engine refute 5-recording(x4): jobs=1 %.3fs, jobs=%d %.3fs (speedup %.2fx, same outcome: %b)\n"
    t1 jobs_hi tn (t1 /. tn)
    (Option.is_none r1 = Option.is_none rn);
  let cache = Engine.Cache.create () in
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let cap4 = Api.Config.v ~cap:4 () in
  let _, cold = time (fun () -> Engine.analyze ~cache ~config:cap4 pool x4) in
  let _, warm = time (fun () -> Engine.analyze ~cache ~config:cap4 pool x4) in
  let stats = Engine.Cache.stats cache in
  Printf.printf
    "engine closure cache analyze(x4, cap 4): cold %.3fs, warm %.6fs; outcome probes %d = hits %d + misses %d + expired %d, schedule hits %d, misses %d\n"
    cold warm stats.Engine.Cache.probes stats.Engine.Cache.hits
    stats.Engine.Cache.misses stats.Engine.Cache.expired
    stats.Engine.Cache.sched_hits stats.Engine.Cache.sched_misses

let e10_universal () =
  section "E10 — universality: a crash-recoverable linearizable queue";
  let base = Gallery.bounded_queue () in
  let workload = [| [ 0; 2; 1 ]; [ 1; 2 ]; [ 2; 2; 0 ] |] in
  let p = Universal.build ~base ~base_initial:0 workload in
  let total = ref 0 and ok = ref 0 in
  for seed = 1 to 300 do
    incr total;
    let adv = Adversary.random ~crash_prob:0.3 ~seed ~nprocs:3 in
    let c0 = Config.initial p ~inputs:[| 0; 0; 0 |] in
    let final, _, out =
      Exec.run_adversary p c0
        ~pick:(fun ~decided b -> adv ~decided b)
        ~budget:(Budget.counter ~z:1 ~nprocs:3)
        ~fuel:3000 ()
    in
    let report = Universal.check_linearizable p ~base ~base_initial:0 workload final in
    if out.Exec.all_decided && report.Universal.ok then incr ok
  done;
  Printf.printf "crashing adversaries: %d/%d runs complete and linearizable\n" !ok !total

let e14_open_question_probe () =
  section "E14 — probe of the paper's open question (robustness for all deterministic types)";
  print_endline
    "The paper leaves open whether the recoverable hierarchy is robust for\n\
     non-readable deterministic types.  The necessary condition (recording\n\
     levels) can be measured on products of non-readable types — data, not\n\
     a resolution: recording is not sufficient without readability.";
  let level name ty =
    let d = Numbers.max_discerning ~cap:4 ty in
    let r = Numbers.max_recording ~cap:4 ty in
    Printf.printf "%-30s disc=%s rec=%s\n" name
      (Analysis.level_to_string d) (Analysis.level_to_string r)
  in
  let t31 = Gallery.tnn ~n:3 ~n':1 in
  level "T_{3,1}" t31;
  level "T_{3,1} x test-and-set" (Objtype.product ~joint_read:false t31 Gallery.test_and_set);
  level "T_{3,1} x T_{3,1}" (Objtype.product ~joint_read:false t31 t31);
  print_endline "no boost observed at these instances."

let e15_tournament () =
  section "E15 — n-process recoverable consensus via certificate tournaments";
  List.iter
    (fun (cap, n) ->
      match Tournament.plan (Gallery.team_ladder ~cap) ~nprocs:n with
      | Error m -> Printf.printf "n=%d on team-ladder-%d: plan failed (%s)\n" n cap m
      | Ok plan ->
          let p = Tournament.consensus plan in
          let bad = ref 0 and incomplete = ref 0 and runs = ref 0 in
          for seed = 1 to 40 do
            let inputs = Array.init n (fun i -> (seed + i) mod 2) in
            incr runs;
            let adv = Adversary.random ~crash_prob:0.25 ~seed ~nprocs:n in
            let c0 = Config.initial p ~inputs in
            let final, _, out =
              Exec.run_adversary p c0
                ~pick:(fun ~decided b -> adv ~decided b)
                ~budget:(Budget.counter ~z:1 ~nprocs:n)
                ~fuel:4000 ()
            in
            if not out.Exec.all_decided then incr incomplete
            else if not (Checker.is_ok (Checker.consensus p final)) then incr bad
          done;
          Printf.printf
            "n=%d on team-ladder-%d: %d nodes, %d crash-storm runs, %d violations, %d incomplete\n"
            n cap (Tournament.node_count plan) !runs !bad !incomplete)
    [ (3, 3); (4, 4); (5, 5) ];
  (match Tournament.plan (Gallery.team_ladder ~cap:4) ~nprocs:5 with
  | Error m -> Printf.printf "n=5 on team-ladder-4 (rcn 4): correctly unplannable (%s)\n" m
  | Ok _ -> Printf.printf "n=5 on team-ladder-4: UNEXPECTEDLY plannable\n")

let e16_inject () =
  section "E16 — fault injection: shrinking cost and deadline-cutoff fidelity";
  (* Shrinking cost over the known-broken trio: raw vs minimal schedule
     lengths and the replay validations spent getting there. *)
  let targets =
    [
      ("race", Inject.Target (Classic.register_race ~nprocs:2));
      ("tas2", Inject.Target Classic.tas_consensus_2);
      ( "tnn-overloaded",
        Inject.Target (Tnn_protocol.recoverable_overloaded ~procs:2 ~n:3 ~n':1) );
    ]
  in
  let grid = Inject.default_grid ~seeds:3 () in
  let report, campaign_time = time (fun () -> Inject.run ~grid targets) in
  let fs = Inject.findings report in
  Printf.printf "campaign: %d violations, %d shrunk findings, %.2fs total\n"
    (Inject.total_violations report)
    (List.length fs) campaign_time;
  List.iter
    (fun (f : Inject.finding) ->
      Printf.printf "  %-15s %-22s seed %d: %3d -> %2d events, %4d replays\n"
        f.Inject.protocol f.Inject.adversary f.Inject.seed
        (Sched.length f.Inject.raw) (Sched.length f.Inject.shrunk) f.Inject.replays)
    fs;
  (* Deadline-cutoff fidelity: a cut analysis never reports more than the
     uncut one established, and always flags itself as a lower bound. *)
  Pool.with_pool ~jobs:(Engine.default_jobs ()) @@ fun pool ->
  let x4 = Gallery.x4_witness in
  let full = Engine.analyze ~config:(Api.Config.v ~cap:4 ()) pool x4 in
  let honest (tag : string) (a : Analysis.t) =
    let sub (cut : Analysis.level) (ref_ : Analysis.level) =
      cut.Analysis.value <= ref_.Analysis.value
      && (cut.Analysis.status = Analysis.Exact || cut.Analysis.value < ref_.Analysis.value
          || cut.Analysis.status = Analysis.At_least)
    in
    Printf.printf
      "deadline %s: disc %s, rec %s — within the uncut result: %b\n" tag
      (Analysis.level_to_string a.Analysis.discerning)
      (Analysis.level_to_string a.Analysis.recording)
      (sub a.Analysis.discerning full.Analysis.discerning
      && sub a.Analysis.recording full.Analysis.recording)
  in
  honest "expired"
    (Engine.analyze ~config:(Api.Config.v ~cap:4 ~deadline:(-1.0) ()) pool x4);
  honest "50ms" (Engine.analyze ~config:(Api.Config.v ~cap:4 ~deadline:0.05 ()) pool x4);
  (* Census cut by a deadline, checkpointed, resumed: the stitched-together
     histogram must equal the uninterrupted sequential one. *)
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let ckpt = Filename.temp_file "rcn-census" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt)
    (fun () ->
      let cap3 = Api.Config.v ~cap:3 () in
      let cut =
        Engine.census ~checkpoint:ckpt
          ~config:(Api.Config.v ~cap:3 ~deadline:0.1 ())
          pool space
      in
      let resumed = Engine.census ~checkpoint:ckpt ~resume:true ~config:cap3 pool space in
      let seq = Pool.with_pool ~jobs:1 @@ fun p1 -> Engine.census ~config:cap3 p1 space in
      Printf.printf
        "census cut at 100ms: %d/%d decided; resume recomputed %d; stitched \
         histogram identical to uninterrupted jobs=1: %b\n"
        cut.Engine.completed cut.Engine.total
        (resumed.Engine.completed - resumed.Engine.resumed)
        (resumed.Engine.complete && resumed.Engine.entries = seq.Engine.entries))

let e17_obs_overhead () =
  section "E17 — observability overhead on the E9 workload (null-sink budget: < 5%)";
  (* The E9 ablation workload: refute 5-recording on x4-witness, a full
     candidate sweep through the fan-out path.  Instrumented = a live
     [Obs.t] with the null sink (metrics accumulate, nothing is emitted) —
     the mode a production run with [--stats] but no [--trace] pays for.
     Best-of-3 each to damp scheduler noise. *)
  let x4 = Gallery.x4_witness in
  let jobs = max 2 (Engine.default_jobs ()) in
  let sweep ?obs () =
    Pool.with_pool ?obs ~jobs @@ fun pool ->
    ignore (Engine.search ?obs ~config:Api.Config.default pool Decide.Recording x4 ~n:5)
  in
  let best_of k f =
    sweep ?obs:None () |> ignore;
    (* warm-up: page in schedules *)
    let best = ref infinity in
    for _ = 1 to k do
      let (), t = time f in
      if t < !best then best := t
    done;
    !best
  in
  let bare = best_of 3 (fun () -> sweep ()) in
  let obs = Obs.create () in
  let instrumented = best_of 3 (fun () -> sweep ~obs ()) in
  let overhead = 100.0 *. ((instrumented -. bare) /. bare) in
  Printf.printf
    "refute 5-recording(x4) at jobs=%d: bare %.3fs, null-sink obs %.3fs, overhead %+.2f%% (budget 5%%)\n"
    jobs bare instrumented overhead;
  let candidates =
    Obs.Metrics.Counter.value (Obs.counter obs "engine.candidates")
  in
  Printf.printf "candidates counted: %d across %d instrumented sweeps\n" candidates 3

let reproduce () =
  e1_figure3 ();
  e2_wait_free ();
  e3_recoverable ();
  e4_overload ();
  e5_gallery ();
  e6_witness ();
  e7_robustness ();
  e8_valency ();
  e9_decider_scaling ();
  e10_universal ();
  e11_census ();
  e14_open_question_probe ();
  e15_tournament ();
  e16_inject ();
  e17_obs_overhead ();
  ignore (Kernel_ablation.run ())

(* ================================================================== *)
(* Part 2 — bechamel timings, one test per experiment + ablations      *)
(* ================================================================== *)

let bench_tests () =
  let t52 = Gallery.tnn ~n:5 ~n':2 in
  let ladder2 = Gallery.team_ladder ~cap:2 in
  let x4 = Gallery.x4_witness in
  let e1 = Test.make ~name:"e1/fig3-render" (Staged.stage (fun () -> Dot.to_dot t52)) in
  let e2 =
    let p = Tnn_protocol.wait_free ~n:4 ~n':2 in
    let scheds = Sched.interleavings ~nprocs:4 ~steps_per_proc:1 in
    let inputs = [| 0; 1; 0; 1 |] in
    Test.make ~name:"e2/tnn-waitfree"
      (Staged.stage (fun () ->
           List.iter
             (fun s -> ignore (Exec.run_schedule p (Config.initial p ~inputs) s))
             scheds))
  in
  let e3 =
    let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
    Test.make ~name:"e3/tnn-recoverable-certify"
      (Staged.stage (fun () ->
           ignore (Counterexample.certify ~z:1 ~inputs_list:[ [| 0; 1 |] ] p)))
  in
  let e4 =
    let p = Tnn_protocol.recoverable_overloaded ~procs:2 ~n:3 ~n':1 in
    Test.make ~name:"e4/tnn-break-search"
      (Staged.stage (fun () ->
           ignore (Counterexample.search ~z:1 ~inputs_list:[ [| 0; 1 |] ] p)))
  in
  let e5 =
    Test.make ~name:"e5/analyze-tas" (Staged.stage (fun () -> Numbers.analyze ~cap:4 Gallery.test_and_set))
  in
  let e6 =
    Test.make ~name:"e6/witness-fitness"
      (Staged.stage
         (let g = Synth.seed_crossing { Synth.num_values = 5; num_rws = 4; num_responses = 5 } in
          fun () -> Synth.fitness ~target:4 g))
  in
  let e7 =
    Test.make ~name:"e7/robustness-3types"
      (Staged.stage (fun () ->
           Robustness.analyze ~cap:3 [ Gallery.test_and_set; ladder2; Gallery.register 2 ]))
  in
  let e8 =
    let p = Classic.sticky_consensus ~nprocs:2 in
    Test.make ~name:"e8/critical-search"
      (Staged.stage (fun () ->
           let ctx = Explore.create ~z:1 p in
           Explore.find_critical ctx (Explore.root ctx ~inputs:[| 0; 1 |])))
  in
  let e9_pruned =
    Test.make ~name:"e9/recording-x4-n4"
      (Staged.stage (fun () -> Decide.search Decide.Recording x4 ~n:4))
  in
  let e9_naive =
    Test.make ~name:"e9/recording-x4-n4-naive"
      (Staged.stage (fun () -> Decide.search ~naive:true Decide.Recording x4 ~n:4))
  in
  let e9_disc =
    Test.make ~name:"e9/discerning-x4-n4"
      (Staged.stage (fun () -> Decide.search Decide.Discerning x4 ~n:4))
  in
  let e10 =
    let base = Gallery.bounded_queue () in
    let workload = [| [ 0; 2 ]; [ 1; 2 ] |] in
    let p = Universal.build ~base ~base_initial:0 workload in
    Test.make ~name:"e10/universal-queue-run"
      (Staged.stage (fun () ->
           let adv = Adversary.round_robin ~nprocs:2 in
           Exec.run_adversary p
             (Config.initial p ~inputs:[| 0; 0 |])
             ~pick:(fun ~decided b -> adv ~decided b)
             ~budget:(Budget.counter ~z:1 ~nprocs:2)
             ~fuel:200 ()))
  in
  let e11 =
    Test.make ~name:"e11/census-sample-100"
      (Staged.stage (fun () ->
           Census.sample ~cap:3 ~seed:5 ~count:100
             { Synth.num_values = 3; num_rws = 2; num_responses = 2 }))
  in
  let e7_product =
    Test.make ~name:"e7/product-decider"
      (Staged.stage (fun () ->
           Robustness.check_product ~cap:3 Gallery.test_and_set ladder2))
  in
  let e12_sim =
    let p = Classic.cas_consensus ~nprocs:2 in
    Test.make ~name:"e12/simultaneous-certify"
      (Staged.stage (fun () ->
           Simultaneous.certify ~max_crashes:2 ~inputs_list:[ [| 0; 1 |] ] p))
  in
  let e10_helping =
    let base = Gallery.bounded_queue () in
    let workload = [| [ 0; 2 ]; [ 1; 2 ] |] in
    let p = Universal.build_helping ~base ~base_initial:0 workload in
    Test.make ~name:"e10/universal-helping-run"
      (Staged.stage (fun () ->
           let adv = Adversary.round_robin ~nprocs:2 in
           Exec.run_adversary p
             (Config.initial p ~inputs:[| 0; 0 |])
             ~pick:(fun ~decided b -> adv ~decided b)
             ~budget:(Budget.counter ~z:1 ~nprocs:2)
             ~fuel:400 ()))
  in
  let e15 =
    Test.make ~name:"e15/tournament-plan-3"
      (Staged.stage (fun () -> Tournament.plan (Gallery.team_ladder ~cap:3) ~nprocs:3))
  in
  let e16_shrink =
    (* One campaign at staging time pins a concrete violating schedule; the
       benchmark then times the shrink alone. *)
    let tgt = Inject.Target Classic.tas_consensus_2 in
    let report = Inject.run ~grid:(Inject.default_grid ~seeds:3 ()) [ ("tas2", tgt) ] in
    match Inject.findings report with
    | f :: _ ->
        Test.make ~name:"e16/shrink-tas2"
          (Staged.stage (fun () ->
               Inject.shrink tgt ~inputs:f.Inject.inputs ~z:1 ~fuel:2000
                 ~violation:f.Inject.violation f.Inject.raw))
    | [] -> Test.make ~name:"e16/shrink-tas2" (Staged.stage (fun () -> (([] : Sched.t), 0)))
  in
  let ablation_schedules =
    Test.make ~name:"ablation/s5-enumeration"
      (Staged.stage (fun () -> Sched.at_most_once ~nprocs:5))
  in
  let ablation_frontier_ez_star =
    let p = Tnn_protocol.recoverable ~n:3 ~n':1 in
    Test.make ~name:"ablation/frontier-z1"
      (Staged.stage (fun () ->
           let ctx = Explore.create ~z:1 p in
           Explore.count_nodes ctx (Explore.root ctx ~inputs:[| 0 |]) ~max_nodes:100_000))
  in
  Test.make_grouped ~name:"rcn"
    [
      e1; e2; e3; e4; e5; e6; e7; e7_product; e8; e9_pruned; e9_naive; e9_disc; e10;
      e10_helping; e11; e12_sim; e15; e16_shrink; ablation_schedules;
      ablation_frontier_ez_star;
    ]

let run_benchmarks () =
  section "Timings (bechamel, monotonic clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (bench_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-34s %16s %8s\n" "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
      Printf.printf "%-34s %16.1f %8.4f\n" name estimate r2)
    rows

let () =
  reproduce ();
  run_benchmarks ()
