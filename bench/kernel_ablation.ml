(* E18 — kernel ablation: reference checkers vs flat transition tables
   vs tables + schedule-prefix trie, on the E9 refutation workload and
   the E11 census workload.  Emits machine-readable BENCH_e18.json (the
   CI artifact recording the perf trajectory) alongside the printed
   section.

   The three modes decide identically — the census rows also assert the
   histograms match — so every ratio below is pure implementation cost.
   Note the honest wrinkle: tables-only *loses* to the reference on
   refutation sweeps, because the reference checker early-exits a
   candidate at the first clashing schedule while the table evaluator
   folds the whole set before classifying.  The trie + per-(u, ops) memo
   is what turns full evaluation into a win. *)

let time f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  (r, Obs.Clock.now () -. t0)

let modes =
  [ ("reference", Kernel.Reference); ("tables", Kernel.Tables); ("trie", Kernel.Trie) ]

type row = {
  name : string;
  jobs : int;
  seconds : (string * float) list;  (* per mode label, same order as [modes] *)
  identical : bool;  (* all modes produced the same result *)
}

let speedup row =
  match (List.assoc_opt "reference" row.seconds, List.assoc_opt "trie" row.seconds) with
  | Some r, Some t when t > 0.0 -> r /. t
  | _ -> nan

(* The E9 engine workload: refuting 5-recording on the X_4 gap witness
   scans the entire candidate space — the decider's worst case and the
   fan-out's best case. *)
let refute_workload ~jobs =
  let x4 = Gallery.x4_witness in
  let results, seconds =
    List.fold_left
      (fun (results, seconds) (label, mode) ->
        Pool.with_pool ~jobs @@ fun pool ->
        let r, t =
          time (fun () ->
              Engine.search ~config:(Api.Config.v ~kernel:mode ()) pool Decide.Recording
                x4 ~n:5)
        in
        Printf.printf "  refute 5-recording(x4) %-9s jobs=%d: %8.3fs\n%!" label jobs t;
        (Option.is_none r :: results, (label, t) :: seconds))
      ([], []) modes
  in
  {
    name = "e9-refute-5recording-x4";
    jobs;
    seconds = List.rev seconds;
    identical = List.for_all (fun refuted -> refuted) results;
  }

(* The E11 workload: the full census of readable 3-value / 2-RMW /
   2-response tables at cap 4 — the sweep the kernel exists for. *)
let census_workload ~jobs =
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let entries, seconds =
    List.fold_left
      (fun (entries, seconds) (label, mode) ->
        Pool.with_pool ~jobs @@ fun pool ->
        let r, t =
          time (fun () ->
              Engine.census ~config:(Api.Config.v ~cap:4 ~kernel:mode ()) pool space)
        in
        Printf.printf "  census {3,2,2} cap 4 %-9s jobs=%d: %8.3fs (%d tables)\n%!"
          label jobs t r.Engine.completed;
        (r.Engine.entries :: entries, (label, t) :: seconds))
      ([], []) modes
  in
  let identical =
    match entries with [ a; b; c ] -> a = b && b = c | _ -> false
  in
  { name = "e11-census-v3-rw2-resp2-cap4"; jobs; seconds = List.rev seconds; identical }

let json_of_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"bench\":\"e18\",\"schema\":1,\"workloads\":[";
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":%S,\"jobs\":%d,\"seconds\":{" row.name row.jobs);
      List.iteri
        (fun j (label, t) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%S:%.6f" label t))
        row.seconds;
      Buffer.add_string b
        (Printf.sprintf "},\"speedup_trie_vs_reference\":%.3f,\"identical\":%b}"
           (speedup row) row.identical))
    rows;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let run ?(path = "BENCH_e18.json") () =
  let title = "E18 — kernel ablation: reference vs tables vs tables+trie" in
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  let rows = [ refute_workload ~jobs:1; refute_workload ~jobs:4; census_workload ~jobs:4 ] in
  List.iter
    (fun row ->
      Printf.printf "%-30s jobs=%d: trie is %.2fx the reference (identical results: %b)\n"
        row.name row.jobs (speedup row) row.identical)
    rows;
  Out_channel.with_open_text path (fun oc -> output_string oc (json_of_rows rows));
  Printf.printf "wrote %s\n" path;
  rows
