(* Standalone entry point for the E19 supervision-overhead bench
   (make bench-e19): runs the comparison, writes BENCH_e19.json, and
   fails loudly if the failure-free retry layer costs more than the 2%
   acceptance ceiling, if a run's histogram diverges, or if the chaos
   run fails to exercise (and heal) any retries. *)

let overhead_ceiling = 0.02
let chaos_ceiling = 0.50

let () =
  let rows = Supervise_overhead.run () in
  List.iter
    (fun (row : Supervise_overhead.row) ->
      if not row.Supervise_overhead.identical then begin
        Printf.eprintf "e19: %s (jobs=%d) histograms diverge or run incomplete\n"
          row.Supervise_overhead.name row.Supervise_overhead.jobs;
        exit 1
      end;
      if row.Supervise_overhead.overhead > overhead_ceiling then begin
        Printf.eprintf "e19: %s (jobs=%d) failure-free overhead %.2f%% exceeds the %.0f%% ceiling\n"
          row.Supervise_overhead.name row.Supervise_overhead.jobs
          (100.0 *. row.Supervise_overhead.overhead)
          (100.0 *. overhead_ceiling);
        exit 1
      end;
      if row.Supervise_overhead.retries = 0 then begin
        Printf.eprintf "e19: %s (jobs=%d) chaos run healed no retries — injection dead?\n"
          row.Supervise_overhead.name row.Supervise_overhead.jobs;
        exit 1
      end;
      if row.Supervise_overhead.chaos_overhead > chaos_ceiling then begin
        Printf.eprintf "e19: %s (jobs=%d) 1%%-chaos recovery cost %.2f%% exceeds the %.0f%% ceiling\n"
          row.Supervise_overhead.name row.Supervise_overhead.jobs
          (100.0 *. row.Supervise_overhead.chaos_overhead)
          (100.0 *. chaos_ceiling);
        exit 1
      end)
    rows
