(* E20: distributed census throughput and fault recovery
   (make bench-e20).

   Three runs of the same census — {3,2,2} at cap 4, 46656 tables, trie
   kernel everywhere:

     single   one process, a domain pool of [jobs] workers
              (Engine.census, the E18 baseline);
     dist     the coordinator over [workers] freshly spawned
              [rcn worker] processes, [jobs] domains each;
     faulted  the same distributed run with a worker crashed mid-range
              and a throttled straggler, forcing the respawn + steal
              machinery through its paces.

   Writes BENCH_e20.json and exits nonzero if any mode's histogram
   differs from the single-process one (bit-identity is the contract,
   never waived), or — on machines with enough cores for parallelism to
   be physical — if the clean distributed run is not at least
   [speedup_floor] times faster than single.  On a small machine the
   floor is recorded but not enforced: distributed workers time-slice
   the same cores, so the ratio measures the scheduler, not the
   architecture.  [RCN_BIN] overrides the worker binary. *)

let speedup_floor = 1.5
let floor_core_gate = 8

let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 }
let cap = 4
let workers = 2
let jobs = 4

let rcn_bin =
  match Sys.getenv_opt "RCN_BIN" with
  | Some p -> p
  | None -> Filename.concat (Filename.dirname Sys.executable_name) "../bin/rcn.exe"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let entries_json entries =
  Wire.List
    (List.map
       (fun (e : Census.entry) ->
         Wire.List
           [ Wire.Int e.Census.discerning; Wire.Int e.Census.recording; Wire.Int e.Census.count ])
       entries)

let () =
  if not (Sys.file_exists rcn_bin) then begin
    Printf.eprintf "e20: worker binary %s not found (set RCN_BIN)\n" rcn_bin;
    exit 1
  end;
  let total = Census.space_size space in
  let cores = Domain.recommended_domain_count () in
  let config = Api.Config.v ~cap ~jobs ~kernel:Kernel.Trie () in
  Printf.printf "e20: census {%d,%d,%d} cap %d — %d tables, %d core(s)\n%!"
    space.Synth.num_values space.Synth.num_rws space.Synth.num_responses cap total
    cores;

  let single, single_s =
    time (fun () ->
        let pool = Pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> Engine.census ~config pool space))
  in
  Printf.printf "e20: single   (jobs=%d)            %6.2f s\n%!" jobs single_s;

  let dist, dist_s =
    time (fun () -> Dist.census ~rcn:rcn_bin ~workers ~config space)
  in
  Printf.printf "e20: dist     (workers=%d, jobs=%d) %6.2f s\n%!" workers jobs dist_s;

  (* Faulted run: slot 1's first process self-SIGKILLs after 2000
     tables; slot 0 is a mild straggler (200 us per table) so the
     respawned slot 1 has something to steal.  Deterministic, and the
     histogram must not care. *)
  let faulted, faulted_s =
    time (fun () ->
        Dist.census ~rcn:rcn_bin ~chunk:(total / 4) ~stride:64
          ~crash:[ (1, 2000) ] ~throttle:[ (0, 200) ] ~workers ~config space)
  in
  Printf.printf "e20: faulted  (crash+steal)        %6.2f s (%d death(s))\n%!"
    faulted_s faulted.Dist.deaths;

  let identical =
    single.Engine.complete && dist.Dist.complete && faulted.Dist.complete
    && dist.Dist.entries = single.Engine.entries
    && faulted.Dist.entries = single.Engine.entries
  in
  let speedup = single_s /. dist_s in
  let floor_enforced = cores >= floor_core_gate in
  let json =
    Wire.Obj
      [
        ("bench", Wire.String "e20");
        ( "space",
          Wire.List
            [
              Wire.Int space.Synth.num_values;
              Wire.Int space.Synth.num_rws;
              Wire.Int space.Synth.num_responses;
            ] );
        ("cap", Wire.Int cap);
        ("total", Wire.Int total);
        ("cores", Wire.Int cores);
        ("jobs", Wire.Int jobs);
        ("workers", Wire.Int workers);
        ("single_s", Wire.Float single_s);
        ("dist_s", Wire.Float dist_s);
        ("faulted_s", Wire.Float faulted_s);
        ("speedup", Wire.Float speedup);
        ("speedup_floor", Wire.Float speedup_floor);
        ("floor_enforced", Wire.Bool floor_enforced);
        ("identical", Wire.Bool identical);
        ("faulted_deaths", Wire.Int faulted.Dist.deaths);
        ("entries", entries_json single.Engine.entries);
      ]
  in
  Out_channel.with_open_bin "BENCH_e20.json" (fun oc ->
      Out_channel.output_string oc (Wire.to_string json);
      Out_channel.output_char oc '\n');
  Printf.printf "e20: speedup %.2fx (floor %.1fx %s), identical=%b → BENCH_e20.json\n%!"
    speedup speedup_floor
    (if floor_enforced then "enforced" else
       Printf.sprintf "waived below %d cores" floor_core_gate)
    identical;
  if not identical then begin
    Printf.eprintf "e20: a distributed histogram diverged from the single-process census\n";
    exit 1
  end;
  if floor_enforced && speedup < speedup_floor then begin
    Printf.eprintf "e20: distributed speedup %.2fx below the %.1fx floor on %d cores\n"
      speedup speedup_floor cores;
    exit 1
  end
