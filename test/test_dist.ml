(* The distributed census: worker wire protocol, the crash-safe lease
   ledger (truncation at every byte offset — the kill -9 / power-cut
   shapes), and the coordinator end to end over real [rcn worker]
   processes — clean runs, injected crashes, steals, lease expiry,
   quarantine, and coordinator kill + resume.  The invariant under test
   everywhere: the merged histogram is bit-identical to the
   single-process census whatever the worker count, crash schedule or
   steal order. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Tests run from _build/default/test; the coordinator spawns the real
   binary, declared as a dune dep. *)
let rcn_bin =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/rcn.exe"

let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 }
let cap = 3
let total = Census.space_size space
let reference = lazy (Census.exhaustive ~cap space)
let config = Api.Config.v ~cap ~jobs:1 ()

let with_ledger_file f =
  let path = Filename.temp_file "rcn-test-dist" ".ledger" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let counter obs name = Obs.Metrics.Counter.value (Obs.counter obs name)

let check_identical label (o : Dist.outcome) =
  check_bool (label ^ ": complete") true o.Dist.complete;
  check_int (label ^ ": every table decided") total o.Dist.completed;
  check_bool (label ^ ": histogram bit-identical to Census.exhaustive") true
    (o.Dist.entries = Lazy.force reference)

(* ---------------------------------------------------------------- *)
(* Worker wire protocol. *)

let test_worker_codec () =
  let roundtrip_msg m =
    match Api.Worker.msg_of_string (Api.Worker.msg_to_string m) with
    | Ok m' -> check_bool "msg round-trips" true (m = m')
    | Error e -> Alcotest.failf "msg failed to decode: %s" e
  in
  let roundtrip_reply r =
    match Api.Worker.reply_of_string (Api.Worker.reply_to_string r) with
    | Ok r' -> check_bool "reply round-trips" true (r = r')
    | Error e -> Alcotest.failf "reply failed to decode: %s" e
  in
  let entries = [ { Census.discerning = 1; recording = 1; count = 2 } ] in
  List.iter roundtrip_msg
    [
      Api.Worker.Hello { pid = 42 };
      Api.Worker.Progress { lease = 3; at = 17 };
      Api.Worker.Result { lease = 3; lo = 0; hi = 2; entries };
    ];
  List.iter roundtrip_reply
    [
      Api.Worker.Assign { lease = 3; lo = 0; hi = 2; budget = None };
      Api.Worker.Assign { lease = 4; lo = 2; hi = 9; budget = Some 1.5 };
      Api.Worker.Continue;
      Api.Worker.Truncate { hi = 5 };
      Api.Worker.Shutdown;
    ];
  (* The bytes are the protocol: coordinator and worker live in
     different processes, possibly from different builds during a
     rolling upgrade, so the encoding is pinned. *)
  check_string "hello bytes"
    {|{"rcn_worker":1,"kind":"hello","pid":42}|}
    (Api.Worker.msg_to_string (Api.Worker.Hello { pid = 42 }));
  check_string "progress bytes"
    {|{"rcn_worker":1,"kind":"progress","lease":3,"at":17}|}
    (Api.Worker.msg_to_string (Api.Worker.Progress { lease = 3; at = 17 }));
  check_string "result bytes"
    {|{"rcn_worker":1,"kind":"result","lease":3,"lo":0,"hi":2,"entries":[{"discerning":1,"recording":1,"count":2}]}|}
    (Api.Worker.msg_to_string (Api.Worker.Result { lease = 3; lo = 0; hi = 2; entries }));
  check_string "assign bytes"
    {|{"rcn_worker_reply":1,"kind":"assign","lease":3,"lo":0,"hi":2}|}
    (Api.Worker.reply_to_string
       (Api.Worker.Assign { lease = 3; lo = 0; hi = 2; budget = None }));
  check_string "continue bytes" {|{"rcn_worker_reply":1,"kind":"continue"}|}
    (Api.Worker.reply_to_string Api.Worker.Continue);
  check_string "truncate bytes" {|{"rcn_worker_reply":1,"kind":"truncate","hi":5}|}
    (Api.Worker.reply_to_string (Api.Worker.Truncate { hi = 5 }));
  check_string "shutdown bytes" {|{"rcn_worker_reply":1,"kind":"shutdown"}|}
    (Api.Worker.reply_to_string Api.Worker.Shutdown);
  (* Garbage is an error, not an exception. *)
  check_bool "junk msg rejected" true
    (Result.is_error (Api.Worker.msg_of_string "{}"));
  check_bool "wrong version rejected" true
    (Result.is_error
       (Api.Worker.msg_of_string {|{"rcn_worker":2,"kind":"hello","pid":1}|}));
  check_bool "msg is not a reply" true
    (Result.is_error
       (Api.Worker.reply_of_string
          (Api.Worker.msg_to_string (Api.Worker.Hello { pid = 1 }))))

(* ---------------------------------------------------------------- *)
(* Ledger header discipline. *)

let test_ledger_header () =
  with_ledger_file @@ fun path ->
  let h = Dist_ledger.header ~space ~cap ~total () in
  let t, replayed = Dist_ledger.open_ledger ~expected:h ~resume:false path in
  check_bool "fresh ledger replays nothing" true (replayed = []);
  Dist_ledger.append t (Dist_ledger.Grant { lease = 1; lo = 0; hi = 64; worker = 0 });
  Dist_ledger.close t;
  (match Dist_ledger.load path ~expected:h with
  | [ Dist_ledger.Header h'; Dist_ledger.Grant { lease = 1; lo = 0; hi = 64; worker = 0 } ], 0
    ->
      check_string "header bytes round-trip" h h'
  | records, torn ->
      Alcotest.failf "unexpected replay: %d records, %d torn bytes"
        (List.length records) torn);
  (* A ledger from a different census is rejected, not merged. *)
  let foreign =
    Dist_ledger.header ~space:{ space with Synth.num_values = 3 } ~cap ~total ()
  in
  check_bool "load rejects a foreign ledger" true
    (try
       ignore (Dist_ledger.load path ~expected:foreign);
       false
     with Invalid_argument _ -> true);
  check_bool "open_ledger ~resume:true rejects a foreign ledger" true
    (try
       ignore (Dist_ledger.open_ledger ~expected:foreign ~resume:true path);
       false
     with Invalid_argument _ -> true);
  check_bool "plan_of_ledger rejects a foreign ledger" true
    (try
       ignore (Dist.plan_of_ledger ~expected:foreign ~total path);
       false
     with Invalid_argument _ -> true);
  (* A missing file is an empty ledger. *)
  check_bool "missing ledger is empty" true
    (Dist_ledger.load (path ^ ".does-not-exist") ~expected:h = ([], 0));
  (* resume:false starts over: the grant is gone, the header is back. *)
  let t2, replayed2 = Dist_ledger.open_ledger ~expected:h ~resume:false path in
  check_bool "non-resume open truncates" true (replayed2 = []);
  Dist_ledger.close t2;
  match Dist_ledger.load path ~expected:h with
  | [ Dist_ledger.Header _ ], 0 -> ()
  | records, _ ->
      Alcotest.failf "truncated ledger kept %d records" (List.length records)

(* ---------------------------------------------------------------- *)
(* The recovery pin (satellite of the soak): a coordinator killed at
   *any* byte of the ledger loses no decided rank and double-counts
   none.  Produce a real ledger — injected crash included, so Grant,
   Done, Expire/Death and respawn records are all present — then replay
   a copy truncated at every byte offset and audit the recovered plan;
   at three representative cuts, run the resumed census to completion
   and require the bit-identical histogram. *)

let test_ledger_truncate_every_offset () =
  with_ledger_file @@ fun path ->
  let h = Dist_ledger.header ~space ~cap ~total () in
  let obs = Obs.create () in
  let outcome =
    Dist.census ~obs ~rcn:rcn_bin ~ledger:path ~fsync:false ~chunk:64
      ~stride:16 ~crash:[ (0, 30) ] ~workers:1 ~config space
  in
  check_identical "ledger-producing run" outcome;
  check_bool "the injected crash was observed" true (outcome.Dist.deaths >= 1);
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let size = String.length bytes in
  (* Record boundaries from the pinned on-disk encoding. *)
  let records, torn = Dist_ledger.load path ~expected:h in
  check_int "clean ledger has no torn tail" 0 torn;
  let boundaries =
    let ends, _ =
      List.fold_left
        (fun (ends, off) r ->
          let off = off + String.length (Dist_ledger.encode r) in
          (off :: ends, off))
        ([ 0 ], 0) records
    in
    List.rev ends
  in
  check_int "encode boundaries span the file exactly" size
    (List.nth boundaries (List.length records));
  let done_width = function
    | Dist_ledger.Done { lo; hi; _ } -> hi - lo
    | _ -> 0
  in
  let death = function Dist_ledger.Death _ -> true | _ -> false in
  with_ledger_file @@ fun cut_path ->
  for cut = 0 to size do
    Out_channel.with_open_bin cut_path (fun oc ->
        Out_channel.output_string oc (String.sub bytes 0 cut));
    (* The records wholly before the cut — exactly what recovery must
       trust, no more (no double count), no less (no lost rank). *)
    let kept =
      List.filteri
        (fun i _ -> List.nth boundaries (i + 1) <= cut)
        records
    in
    let plan = Dist.plan_of_ledger ~expected:h ~total cut_path in
    check_int (Printf.sprintf "cut at %d: total" cut) total plan.Dist.plan_total;
    check_int
      (Printf.sprintf "cut at %d: covered = sum of surviving Done widths" cut)
      (List.fold_left (fun a r -> a + done_width r) 0 kept)
      plan.Dist.plan_covered;
    check_int
      (Printf.sprintf "cut at %d: histogram counts sum to covered" cut)
      plan.Dist.plan_covered
      (List.fold_left (fun a e -> a + e.Census.count) 0 plan.Dist.plan_entries);
    check_int
      (Printf.sprintf "cut at %d: gaps complement the coverage" cut)
      (total - plan.Dist.plan_covered)
      (List.fold_left (fun a (lo, hi) -> a + (hi - lo)) 0 plan.Dist.plan_gaps);
    check_int
      (Printf.sprintf "cut at %d: deaths counted from surviving records" cut)
      (List.length (List.filter death kept))
      plan.Dist.plan_deaths
  done;
  (* Resume from three crash shapes: nothing survived, a mid-run prefix,
     and a torn final record.  Each must finish the census with the
     bit-identical histogram, recomputing only the gaps. *)
  let mid =
    (* the boundary right after the first Done record *)
    let rec go rs bs =
      match (rs, bs) with
      | Dist_ledger.Done _ :: _, b :: _ -> b
      | _ :: rs, _ :: bs -> go rs bs
      | _ -> Alcotest.fail "ledger has no Done record"
    in
    go records (List.tl boundaries)
  in
  List.iter
    (fun cut ->
      with_ledger_file @@ fun resume_path ->
      Out_channel.with_open_bin resume_path (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 cut));
      let before = Dist.plan_of_ledger ~expected:h ~total resume_path in
      let obs = Obs.create () in
      let o =
        Dist.census ~obs ~rcn:rcn_bin ~ledger:resume_path ~resume:true
          ~fsync:false ~chunk:64 ~stride:16 ~workers:1 ~config space
      in
      check_identical (Printf.sprintf "resume from cut %d" cut) o;
      check_int
        (Printf.sprintf "resume from cut %d replays the covered ranks" cut)
        before.Dist.plan_covered o.Dist.resumed;
      check_int
        (Printf.sprintf "resume from cut %d counts resumed ranks" cut)
        before.Dist.plan_covered
        (counter obs "dist.ranks_resumed");
      let after = Dist.plan_of_ledger ~expected:h ~total resume_path in
      check_int (Printf.sprintf "resume from cut %d: ledger fully covered" cut)
        total after.Dist.plan_covered;
      check_bool (Printf.sprintf "resume from cut %d: no gaps left" cut) true
        (after.Dist.plan_gaps = []))
    [ 0; mid; size - 1 ]

(* ---------------------------------------------------------------- *)
(* End-to-end coordination over real worker processes. *)

let test_census_bit_identical () =
  let obs = Obs.create () in
  let o = Dist.census ~obs ~rcn:rcn_bin ~workers:2 ~config space in
  check_identical "two clean workers" o;
  check_int "no deaths on a clean run" 0 o.Dist.deaths;
  check_int "nothing resumed on a fresh run" 0 o.Dist.resumed;
  check_bool "nothing quarantined" true (o.Dist.quarantined = []);
  check_int "both slots spawned" 2 (counter obs "dist.workers_spawned");
  check_int "no worker killed" 0 (counter obs "dist.workers_killed");
  check_int "no lease expired" 0 (counter obs "dist.leases_expired")

let test_crash_steal_respawn () =
  (* Slot 0 is a straggler (20 ms per table, one big lease); slot 1 is
     crashed after 20 tables.  The coordinator must reap the death,
     respawn slot 1, and let it steal the straggler's tail — and the
     histogram must not care. *)
  let obs = Obs.create () in
  let o =
    Dist.census ~obs ~rcn:rcn_bin ~chunk:128 ~stride:16
      ~throttle:[ (0, 20_000) ] ~crash:[ (1, 20) ] ~workers:2 ~config space
  in
  check_identical "crash + steal + respawn" o;
  check_bool "the crash was observed as a death" true (o.Dist.deaths >= 1);
  check_bool "the dead slot respawned" true
    (counter obs "dist.workers_respawned" >= 1);
  check_bool "the straggler was robbed" true
    (counter obs "dist.leases_stolen" >= 1);
  check_bool "nothing quarantined" true (o.Dist.quarantined = [])

let test_lease_expiry () =
  (* One worker, throttled so hard its first heartbeat lands after the
     TTL: the lease must expire, the worker be killed, and the respawned
     (unthrottled) successor finish the job. *)
  let obs = Obs.create () in
  let o =
    Dist.census ~obs ~rcn:rcn_bin ~lease_ttl:0.5 ~chunk:64 ~stride:64
      ~throttle:[ (0, 30_000) ] ~workers:1 ~config space
  in
  check_identical "lease expiry" o;
  check_bool "the lease expired" true (counter obs "dist.leases_expired" >= 1);
  check_bool "the silent worker was killed" true
    (counter obs "dist.workers_killed" >= 1);
  check_bool "a successor was respawned" true
    (counter obs "dist.workers_respawned" >= 1)

let test_quarantine_partial () =
  (* range_attempts = 1: the range the injected crash takes down gets no
     second grant — it must be quarantined and the census reported
     honestly incomplete, the exact PARTIAL discipline of a
     deadline-cut Engine.census. *)
  let obs = Obs.create () in
  let o =
    Dist.census ~obs ~rcn:rcn_bin ~chunk:64 ~stride:16 ~range_attempts:1
      ~crash:[ (0, 10) ] ~workers:1 ~config space
  in
  check_bool "census is honestly incomplete" false o.Dist.complete;
  (match o.Dist.quarantined with
  | [ q ] ->
      check_string "quarantine context" "dist.census" q.Supervise.q_context;
      check_int "quarantined width is the lost lease"
        (total - o.Dist.completed)
        (q.Supervise.q_hi - q.Supervise.q_lo);
      check_int "one attempt was spent" 1 q.Supervise.q_attempts
  | qs -> Alcotest.failf "expected one quarantined range, got %d" (List.length qs));
  check_int "quarantine counted" 1 (counter obs "dist.ranges_quarantined");
  (* The decided part is still the exact sub-histogram: completed ranks
     sum and every entry count is <= the reference count. *)
  check_int "completed + quarantined = total" total
    (o.Dist.completed
    + List.fold_left
        (fun a q -> a + (q.Supervise.q_hi - q.Supervise.q_lo))
        0 o.Dist.quarantined);
  check_int "histogram sums to completed" o.Dist.completed
    (List.fold_left (fun a e -> a + e.Census.count) 0 o.Dist.entries);
  List.iter
    (fun (e : Census.entry) ->
      let r =
        List.find_opt
          (fun (r : Census.entry) ->
            r.Census.discerning = e.Census.discerning
            && r.Census.recording = e.Census.recording)
          (Lazy.force reference)
      in
      check_bool "partial histogram is a sub-histogram of the reference" true
        (match r with Some r -> e.Census.count <= r.Census.count | None -> false))
    o.Dist.entries

(* ---------------------------------------------------------------- *)
(* Symmetry reduction across processes: the coordinator shards
   canonical-class ranks, workers decide one representative per class
   and weight by orbit size — and the merged histogram must still be
   bit-identical, crash or no crash. *)

let test_sym_census_bit_identical () =
  let obs = Obs.create () in
  let sym_config = Api.Config.v ~cap ~jobs:1 ~sym:true () in
  let o =
    Dist.census ~obs ~rcn:rcn_bin ~stride:4 ~crash:[ (0, 3) ] ~workers:2
      ~config:sym_config space
  in
  check_identical "sym census over two workers" o;
  check_bool "the injected crash was observed" true (o.Dist.deaths >= 1);
  let classes = counter obs "sym.classes" in
  check_bool "sym.classes nonzero" true (classes > 0);
  check_bool "strictly fewer classes than tables" true (classes < total)

(* ---------------------------------------------------------------- *)
(* The deadline regression (once a bug): the wall-clock budget is
   resolved once at the coordinator and shipped as remaining seconds in
   each Assign, so a worker death + respawn mid-run must not extend the
   run.  Two throttled stragglers (50 ms per table — the full census
   would take ~6.4 s), slot 1 killed early; its clean respawn finishes
   slot 1's range, then the deadline cuts slot 0 mid-lease.  The census
   must come back honestly PARTIAL, with everything decided before the
   cut, well inside the budget plus shutdown slack. *)

let test_deadline_survives_respawn () =
  let deadline = 1.2 in
  let obs = Obs.create () in
  let dl_config = Api.Config.v ~cap ~jobs:1 ~deadline () in
  let t0 = Unix.gettimeofday () in
  let o =
    Dist.census ~obs ~rcn:rcn_bin ~chunk:128 ~stride:8 ~steal_min:10_000
      ~throttle:[ (0, 50_000); (1, 50_000) ]
      ~crash:[ (1, 8) ] ~workers:2 ~config:dl_config space
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check_bool "census is honestly incomplete" false o.Dist.complete;
  check_bool "something was decided" true (o.Dist.completed > 0);
  check_bool "not everything was decided" true (o.Dist.completed < total);
  check_int "histogram sums to completed" o.Dist.completed
    (List.fold_left (fun a e -> a + e.Census.count) 0 o.Dist.entries);
  check_bool "the kill was observed as a death" true (o.Dist.deaths >= 1);
  check_bool "the dead slot respawned" true
    (counter obs "dist.workers_respawned" >= 1);
  check_bool "the deadline cut a lease" true
    (counter obs "dist.deadline_truncations" >= 1);
  check_bool "an out-of-time range is a gap, not a quarantine" true
    (o.Dist.quarantined = []);
  (* The teeth of the regression: with a per-respawn budget the run
     would stretch toward the 6.4 s unthrottled-range time; resolved
     once, it ends within the budget plus batch + shutdown slack. *)
  check_bool
    (Printf.sprintf "finished within budget (%.2f s elapsed)" elapsed)
    true
    (elapsed < deadline +. 2.8)

let test_bad_parameters () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "workers = 0 rejected" true
    (raises (fun () -> Dist.census ~rcn:rcn_bin ~workers:0 ~config space));
  check_bool "resume without a ledger rejected" true
    (raises (fun () -> Dist.census ~rcn:rcn_bin ~resume:true ~workers:1 ~config space));
  check_bool "negative chunk rejected" true
    (raises (fun () -> Dist.census ~rcn:rcn_bin ~chunk:0 ~workers:1 ~config space))

let suite =
  [
    Alcotest.test_case "worker wire codec: round-trips and pinned bytes" `Quick
      test_worker_codec;
    Alcotest.test_case "ledger: header pins the census" `Quick test_ledger_header;
    Alcotest.test_case "ledger survives truncation at every byte offset" `Slow
      test_ledger_truncate_every_offset;
    Alcotest.test_case "distributed census is bit-identical" `Slow
      test_census_bit_identical;
    Alcotest.test_case "crash, steal, respawn: histogram unchanged" `Slow
      test_crash_steal_respawn;
    Alcotest.test_case "missed heartbeats expire the lease" `Slow test_lease_expiry;
    Alcotest.test_case "a doomed range is quarantined, honestly" `Slow
      test_quarantine_partial;
    Alcotest.test_case "sym census over workers is bit-identical" `Slow
      test_sym_census_bit_identical;
    Alcotest.test_case "deadline survives a worker respawn" `Slow
      test_deadline_survives_respawn;
    Alcotest.test_case "nonsensical parameters are rejected" `Quick
      test_bad_parameters;
  ]
