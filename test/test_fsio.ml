(* The Fsio durable-I/O layer: whole-record append atomicity, the
   seeded deterministic fault injector, CRC-backed corruption detection,
   and the EINTR retry discipline under a signal storm. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_tmpdir f =
  let dir = Filename.temp_file "rcn-test-fsio" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let magic = "fsiotest1"

let records =
  [
    ("alpha", "corpus payload zero");
    ("beta", "second payload, a bit longer than the first");
    ("gamma", "third\nwith a newline and bytes \x00\x01\x02");
  ]

(* --- record scan basics ------------------------------------------- *)

let test_encode_scan_roundtrip () =
  let log =
    String.concat ""
      (List.map (fun (t, p) -> Fsio.Record.encode ~magic ~tag:t p) records)
  in
  let out, good, verdict = Fsio.Record.scan ~magic log in
  check_bool "round-trip preserves every record" true (out = records);
  check_int "good covers the whole log" (String.length log) good;
  check_bool "clean log is Complete" true (verdict = Fsio.Record.Complete)

let test_scan_every_prefix_is_torn () =
  (* A crash can only tear the tail: every proper prefix must scan to the
     complete leading records plus a Torn (never Corrupt) verdict. *)
  let log =
    String.concat ""
      (List.map (fun (t, p) -> Fsio.Record.encode ~magic ~tag:t p) records)
  in
  let n = String.length log in
  for cut = 0 to n - 1 do
    let out, good, verdict = Fsio.Record.scan ~magic (String.sub log 0 cut) in
    check_bool
      (Printf.sprintf "prefix %d: records are a prefix of the full list" cut)
      true
      (out = List.filteri (fun i _ -> i < List.length out) records);
    check_bool (Printf.sprintf "prefix %d: good <= cut" cut) true (good <= cut);
    check_bool (Printf.sprintf "prefix %d: never Corrupt" cut) true
      (match verdict with Fsio.Record.Corrupt_at _ -> false | _ -> true)
  done

(* --- CRC bit-flip corpus ------------------------------------------ *)

(* Flip every CRC-covered byte of the *first* record of a three-record
   log, one at a time, and insist the scan reports Corrupt_at offset 0 —
   a complete record failing validation is corruption, never a torn
   tail, and never silently dropped.  (CRC32 detects every single-bit
   error, so none of these flips can collide.)

   Deliberately out of scope: flips to the magic (an alien magic is a
   format-generation bump, dropped wholesale like a torn tail by policy)
   and flips that grow the length field (a record then extends past EOF
   and is indistinguishable from a torn tail — the documented detection
   gap; see DESIGN.md "Durability model"). *)
let test_bitflip_corpus () =
  let tag, payload = List.hd records in
  let r0 = Fsio.Record.encode ~magic ~tag payload in
  let rest =
    String.concat ""
      (List.map (fun (t, p) -> Fsio.Record.encode ~magic ~tag:t p) (List.tl records))
  in
  (* r0 layout: "<magic> <tag> <len> <crc8>\n<payload>\n" *)
  let tag_start = String.length magic + 1 in
  let len_start = tag_start + String.length tag + 1 in
  let len_digits = String.length (string_of_int (String.length payload)) in
  let crc_start = len_start + len_digits + 1 in
  let payload_start = String.index r0 '\n' + 1 in
  let spans =
    [
      ("tag", tag_start, String.length tag);
      ("crc", crc_start, 8);
      ("payload", payload_start, String.length payload);
    ]
  in
  let flips = ref 0 in
  List.iter
    (fun (span, start, len) ->
      for i = start to start + len - 1 do
        let b = Bytes.of_string (r0 ^ rest) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
        incr flips;
        match Fsio.Record.scan ~magic (Bytes.unsafe_to_string b) with
        | _, 0, Fsio.Record.Corrupt_at { offset = 0; _ } -> ()
        | _, _, verdict ->
            Alcotest.failf "%s flip at byte %d: expected Corrupt_at 0, got %s" span
              i
              (match verdict with
              | Fsio.Record.Complete -> "Complete"
              | Fsio.Record.Torn { offset } -> Printf.sprintf "Torn %d" offset
              | Fsio.Record.Corrupt_at { offset; _ } ->
                  Printf.sprintf "Corrupt_at %d" offset)
      done)
    spans;
  check_bool "corpus exercised every CRC-covered byte" true (!flips > 30);
  (* Shrinking the length field moves the terminator check onto a
     payload byte: also Corrupt, same offset. *)
  let b = Bytes.of_string (r0 ^ rest) in
  Bytes.set b (len_start + len_digits - 1)
    (match Bytes.get b (len_start + len_digits - 1) with
    | '0' -> '1' (* keep it a digit, just wrong *)
    | c -> Char.chr (Char.code c - 1));
  (match Fsio.Record.scan ~magic (Bytes.unsafe_to_string b) with
  | _, 0, Fsio.Record.Corrupt_at { offset = 0; _ } -> ()
  | _ -> Alcotest.fail "shrunken length field not reported as corruption")

(* --- append atomicity under injected faults ----------------------- *)

let test_append_error_leaves_log_identical () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log" in
  (* Two clean appends, then ENOSPC on the third (op 0 is the open). *)
  let injector = Fsio.Injector.of_plan [ (3, Fsio.Err Unix.ENOSPC) ] in
  let log = Fsio.open_log ~injector path in
  Fsio.append log (Fsio.Record.encode ~magic ~tag:"a" "one");
  Fsio.append log (Fsio.Record.encode ~magic ~tag:"b" "two");
  let clean =
    Fsio.Record.encode ~magic ~tag:"a" "one"
    ^ Fsio.Record.encode ~magic ~tag:"b" "two"
  in
  check_bool "doomed append raises Io_error ENOSPC" true
    (try
       Fsio.append log (Fsio.Record.encode ~magic ~tag:"c" "three");
       false
     with Fsio.Io_error { error = Unix.ENOSPC; _ } -> true);
  check_bool "failed handle is sticky" true (Fsio.failed log <> None);
  check_bool "later ops raise too" true
    (try
       Fsio.append log "more";
       false
     with Fsio.Io_error _ -> true);
  let on_disk = In_channel.with_open_bin path In_channel.input_all in
  check_bool "failed append left the log byte-identical" true (on_disk = clean);
  let out, _, verdict = Fsio.Record.scan ~magic on_disk in
  check_bool "both acknowledged records replay" true
    (out = [ ("a", "one"); ("b", "two") ]);
  check_bool "log is Complete, not torn" true (verdict = Fsio.Record.Complete)

let test_short_write_rolls_back () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let injector =
    Fsio.Injector.of_plan [ (2, Fsio.Short_write { bytes = 5; error = Unix.EIO }) ]
  in
  let log = Fsio.open_log ~injector path in
  Fsio.append log (Fsio.Record.encode ~magic ~tag:"a" "one");
  check_bool "short write surfaces the error" true
    (try
       Fsio.append log (Fsio.Record.encode ~magic ~tag:"b" "partial victim");
       false
     with Fsio.Io_error { error = Unix.EIO; _ } -> true);
  let on_disk = In_channel.with_open_bin path In_channel.input_all in
  check_bool "the partial write was rolled back" true
    (on_disk = Fsio.Record.encode ~magic ~tag:"a" "one")

let test_torn_write_then_crash_leaves_torn_tail () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let injector = Fsio.Injector.of_plan [ (2, Fsio.Torn_write { bytes = 7 }) ] in
  let log = Fsio.open_log ~injector path in
  let r0 = Fsio.Record.encode ~magic ~tag:"a" "one" in
  Fsio.append log r0;
  check_bool "torn write crashes the process model" true
    (try
       Fsio.append log (Fsio.Record.encode ~magic ~tag:"b" "two");
       false
     with Fsio.Crashed -> true);
  let on_disk = In_channel.with_open_bin path In_channel.input_all in
  check_bool "exactly 7 bytes of the second record landed" true
    (String.length on_disk = String.length r0 + 7);
  let out, good, verdict = Fsio.Record.scan ~magic on_disk in
  check_bool "replay keeps the first record" true (out = [ ("a", "one") ]);
  check_int "good stops at the record boundary" (String.length r0) good;
  check_bool "the tail is Torn, not Corrupt" true
    (match verdict with Fsio.Record.Torn _ -> true | _ -> false)

let test_powerloss_loses_unsynced_bytes () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let r t p = Fsio.Record.encode ~magic ~tag:t p in
  (* append a (1), fsync (2), append b (3), crash with volatile loss (4) *)
  let injector =
    Fsio.Injector.of_plan [ (4, Fsio.Crash { lose_volatile = true }) ]
  in
  let log = Fsio.open_log ~injector path in
  Fsio.append log (r "a" "synced");
  Fsio.fsync log;
  Fsio.append log (r "b" "volatile");
  check_bool "the crash fires on the next op" true
    (try
       Fsio.fsync log;
       false
     with Fsio.Crashed -> true);
  let on_disk = In_channel.with_open_bin path In_channel.input_all in
  check_bool "power loss kept exactly the fsync'd bytes" true
    (on_disk = r "a" "synced")

let test_fsync_lie_then_powerloss () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let r t p = Fsio.Record.encode ~magic ~tag:t p in
  (* append a (1), LYING fsync (2), crash with volatile loss (3): the
     "acknowledged" record evaporates — the fsyncgate shape the injector
     exists to model. *)
  let injector =
    Fsio.Injector.of_plan
      [ (2, Fsio.Fsync_lie); (3, Fsio.Crash { lose_volatile = true }) ]
  in
  let log = Fsio.open_log ~injector path in
  Fsio.append log (r "a" "acknowledged but not durable");
  Fsio.fsync log;
  check_int "the lie was recorded" 1 (Fsio.Injector.lie_count injector);
  check_bool "crash" true
    (try
       Fsio.append log (r "b" "never");
       false
     with Fsio.Crashed -> true);
  check_bool "the lied-about record is gone" true
    (In_channel.with_open_bin path In_channel.input_all = "")

(* --- injector determinism (qcheck) -------------------------------- *)

(* One fixed workload, run under an injector: returns the post-crash
   file image and whatever state a recovery scan would reconstruct. *)
let faulty_workload ~dir ~injector =
  let path = Filename.concat dir "log" in
  (try
     let log = Fsio.open_log ~injector path in
     List.iteri
       (fun i (t, p) ->
         Fsio.append log (Fsio.Record.encode ~magic ~tag:t p);
         if i mod 2 = 0 then Fsio.fsync log)
       (records @ List.map (fun (t, p) -> (t ^ "2", p ^ " again")) records);
     Fsio.close log
   with Fsio.Crashed | Fsio.Io_error _ -> ());
  let image =
    if Sys.file_exists path then
      In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  let recovered, _, _ = Fsio.Record.scan ~magic image in
  (image, recovered)

let prop_faulty_deterministic =
  QCheck.Test.make ~name:"same seed + plan => identical post-crash image"
    ~count:60
    QCheck.(pair small_nat (float_range 0.0 0.6))
    (fun (seed, rate) ->
      let run () =
        with_tmpdir @@ fun dir ->
        let injector = Fsio.Injector.seeded ~seed ~rate ~horizon:20 in
        let image, recovered = faulty_workload ~dir ~injector in
        (image, recovered, Fsio.Injector.trace injector)
      in
      let a = run () and b = run () in
      a = b)

let prop_scan_never_corrupt_on_faulty_output =
  (* Whatever a seeded fault plan does to the log — crashes, short
     writes, torn writes, lost volatile bytes — recovery must read it as
     complete records plus at most a torn tail.  Corruption verdicts are
     reserved for bit rot, which the injector cannot produce. *)
  QCheck.Test.make ~name:"faulty images scan as torn at worst" ~count:60
    QCheck.(pair small_nat (float_range 0.0 0.6))
    (fun (seed, rate) ->
      with_tmpdir @@ fun dir ->
      let injector = Fsio.Injector.seeded ~seed ~rate ~horizon:20 in
      let image, _ = faulty_workload ~dir ~injector in
      match Fsio.Record.scan ~magic image with
      | _, _, Fsio.Record.Corrupt_at _ -> false
      | _ -> true)

(* --- EINTR under a signal storm ----------------------------------- *)

(* Pin the retry loops (Fsio appends, Frame reads and writes over a
   socketpair) against a real interval-timer signal storm: an OCaml
   signal handler installed without SA_RESTART makes every blocking
   syscall eligible for EINTR, so at this frequency unprotected I/O
   fails within a few operations. *)
let test_signal_storm_eintr () =
  let storms = ref 0 in
  let old_handler =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr storms))
  in
  let old_timer =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_interval = 0.0004; it_value = 0.0004 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
      Sys.set_signal Sys.sigalrm old_handler)
  @@ fun () ->
  (* Frame I/O: a writer thread pushes large frames through a socketpair
     (forcing partial writes) while the main thread reads them back. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let n_frames = 40 in
  let payload i = String.make (96 * 1024) (Char.chr (Char.code 'a' + (i mod 26))) in
  let writer =
    Thread.create
      (fun () ->
        for i = 0 to n_frames - 1 do
          Frame.write a (payload i)
        done;
        Unix.close a)
      ()
  in
  for i = 0 to n_frames - 1 do
    match Frame.read b with
    | Frame.Frame p ->
        if p <> payload i then Alcotest.failf "frame %d corrupted in transit" i
    | Frame.Eof -> Alcotest.failf "early eof at frame %d" i
    | Frame.Bad msg -> Alcotest.failf "frame %d rejected: %s" i msg
  done;
  check_bool "stream ends cleanly" true (Frame.read b = Frame.Eof);
  Thread.join writer;
  Unix.close b;
  (* Fsio appends survive the same storm. *)
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "log" in
  let log = Fsio.open_log path in
  let big = String.make (64 * 1024) 'x' in
  for i = 0 to 9 do
    Fsio.append log (Fsio.Record.encode ~magic ~tag:(Printf.sprintf "k%d" i) big);
    Fsio.fsync log
  done;
  Fsio.close log;
  let out, _, verdict =
    Fsio.Record.scan ~magic (In_channel.with_open_bin path In_channel.input_all)
  in
  check_int "every record survived the storm" 10 (List.length out);
  check_bool "log complete" true (verdict = Fsio.Record.Complete);
  (* Retry.eintr itself: a waitpid over a child outliving many timer
     ticks must return exactly once, never surface EINTR. *)
  let pid =
    Unix.create_process "/bin/sleep"
      [| "sleep"; "0.1" |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let _, status = Fsio.Retry.eintr (fun () -> Unix.waitpid [] pid) in
  check_bool "waitpid survives the storm" true (status = Unix.WEXITED 0);
  check_bool "the storm actually stormed" true (!storms > 10)

let suite =
  [
    Alcotest.test_case "encode / scan round-trip" `Quick test_encode_scan_roundtrip;
    Alcotest.test_case "every prefix scans as torn, never corrupt" `Quick
      test_scan_every_prefix_is_torn;
    Alcotest.test_case "bit-flip corpus: corruption reported at the offset" `Quick
      test_bitflip_corpus;
    Alcotest.test_case "append error leaves the log byte-identical" `Quick
      test_append_error_leaves_log_identical;
    Alcotest.test_case "short write rolls back" `Quick test_short_write_rolls_back;
    Alcotest.test_case "torn write + crash leaves a torn tail" `Quick
      test_torn_write_then_crash_leaves_torn_tail;
    Alcotest.test_case "power loss keeps exactly the fsync'd bytes" `Quick
      test_powerloss_loses_unsynced_bytes;
    Alcotest.test_case "lying fsync + power loss loses the ack'd record" `Quick
      test_fsync_lie_then_powerloss;
    QCheck_alcotest.to_alcotest prop_faulty_deterministic;
    QCheck_alcotest.to_alcotest prop_scan_never_corrupt_on_faulty_output;
    Alcotest.test_case "EINTR retry loops survive a signal storm" `Slow
      test_signal_storm_eintr;
  ]
