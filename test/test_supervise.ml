(* Tests for the self-healing layer: deterministic backoff and chaos
   draws, supervised pool retry semantics (bit-identical results at
   several job counts), poison quarantine degrading analyses to honest
   floors, and the watchdog's stall-detect / cancel / retry cycle. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let job_counts = [ 1; 2; 4 ]

(* A policy with sub-millisecond backoffs so retry-heavy tests stay fast. *)
let fast_policy ?(max_attempts = 3) () =
  Supervise.Policy.v ~max_attempts ~base_backoff:1e-5 ~max_backoff:1e-4 ()

(* ------------------------------------------------------------------ *)
(* Policy: backoff determinism, doubling, cap, jitter bounds *)

let test_backoff () =
  let p =
    Supervise.Policy.v ~max_attempts:5 ~base_backoff:0.01 ~max_backoff:0.05 ~jitter:0.0
      ~seed:3 ()
  in
  let b k = Supervise.Policy.backoff p ~key:42 ~attempt:k in
  check_bool "deterministic" true (b 2 = b 2);
  check_bool "attempt 1 is the base" true (b 1 = 0.01);
  check_bool "attempt 2 doubles" true (b 2 = 0.02);
  check_bool "attempt 3 doubles again" true (b 3 = 0.04);
  check_bool "attempt 4 hits the cap" true (b 4 = 0.05);
  check_bool "attempt 9 still capped" true (b 9 = 0.05);
  let j =
    Supervise.Policy.v ~max_attempts:5 ~base_backoff:0.01 ~max_backoff:0.05 ~jitter:0.5
      ~seed:3 ()
  in
  for key = 0 to 20 do
    for attempt = 1 to 5 do
      let jb = Supervise.Policy.backoff j ~key ~attempt in
      let cap = Float.min 0.05 (0.01 *. (2.0 ** float_of_int (attempt - 1))) in
      check_bool
        (Printf.sprintf "jitter bounds key=%d attempt=%d" key attempt)
        true
        (jb <= cap && jb >= cap *. 0.5);
      check_bool "jittered draw is deterministic" true
        (jb = Supervise.Policy.backoff j ~key ~attempt)
    done
  done;
  check_bool "invalid max_attempts rejected" true
    (try
       ignore (Supervise.Policy.v ~max_attempts:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "invalid jitter rejected" true
    (try
       ignore (Supervise.Policy.v ~jitter:1.5 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Chaos: deterministic, rate-faithful, attempt-windowed *)

let test_chaos () =
  let c = Supervise.Chaos.create ~attempts:2 ~rate:0.5 ~seed:11 () in
  for key = 0 to 50 do
    let f1 = Supervise.Chaos.fires c ~key ~attempt:1 in
    check_bool "repeat draw identical" true (f1 = Supervise.Chaos.fires c ~key ~attempt:1);
    (* The draw depends only on the chunk, so a victim fails every attempt
       in its window — the schedule the retry tests rely on. *)
    check_bool "attempt 2 matches attempt 1" true
      (f1 = Supervise.Chaos.fires c ~key ~attempt:2);
    check_bool "past the window never fires" false
      (Supervise.Chaos.fires c ~key ~attempt:3)
  done;
  let never = Supervise.Chaos.create ~rate:0.0 ~seed:11 () in
  let always = Supervise.Chaos.create ~rate:1.0 ~seed:11 () in
  for key = 0 to 50 do
    check_bool "rate 0 never fires" false (Supervise.Chaos.fires never ~key ~attempt:1);
    check_bool "rate 1 always fires" true (Supervise.Chaos.fires always ~key ~attempt:1)
  done;
  let hits = ref 0 in
  for key = 0 to 999 do
    if Supervise.Chaos.fires c ~key ~attempt:1 then incr hits
  done;
  check_bool "rate 0.5 fires roughly half the time" true (!hits > 350 && !hits < 650);
  check_bool "invalid rate rejected" true
    (try
       ignore (Supervise.Chaos.create ~rate:1.5 ~seed:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pool retry semantics *)

(* Chaos fails victim chunks on their first two attempts; with three
   attempts allowed, every chunk eventually runs exactly once, so the
   supervised sweep covers the range exactly like an unsupervised one. *)
let test_pool_retry_covers_range () =
  List.iter
    (fun jobs ->
      let chaos = Supervise.Chaos.create ~attempts:2 ~rate:0.4 ~seed:5 () in
      let sup = Supervise.create ~policy:(fast_policy ()) ~chaos () in
      Pool.with_pool ~jobs @@ fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool ~chunk:7 ~supervisor:sup n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      check_bool
        (Printf.sprintf "jobs=%d: every index exactly once despite failures" jobs)
        true
        (Array.for_all (fun c -> c = 1) hits);
      check_bool (Printf.sprintf "jobs=%d: retries were exercised" jobs) true
        (Supervise.retries sup > 0);
      check_int (Printf.sprintf "jobs=%d: nothing quarantined" jobs) 0
        (Supervise.quarantine_count sup))
    job_counts

(* Real exceptions from the body (not just injected ones) retry too, and
   a supervised pool never raises Task_error. *)
let test_pool_retry_real_exception () =
  List.iter
    (fun jobs ->
      let sup = Supervise.create ~policy:(fast_policy ()) () in
      Pool.with_pool ~jobs @@ fun pool ->
      let attempts = Array.make 100 0 in
      let m = Mutex.create () in
      Pool.parallel_for pool ~chunk:10 ~supervisor:sup 100 (fun lo hi ->
          let k =
            Mutex.protect m (fun () ->
                attempts.(lo) <- attempts.(lo) + 1;
                attempts.(lo))
          in
          if lo = 30 && k <= 2 then failwith "flaky";
          ignore hi);
      check_int (Printf.sprintf "jobs=%d: flaky chunk ran three times" jobs) 3
        attempts.(30);
      check_int (Printf.sprintf "jobs=%d: two retries recorded" jobs) 2
        (Supervise.retries sup);
      check_int (Printf.sprintf "jobs=%d: no quarantine" jobs) 0
        (Supervise.quarantine_count sup))
    job_counts

let test_pool_quarantine () =
  List.iter
    (fun jobs ->
      let sup = Supervise.create ~policy:(fast_policy ~max_attempts:2 ()) () in
      Pool.with_pool ~jobs @@ fun pool ->
      let done_ = Atomic.make 0 in
      (* One poison chunk fails every attempt; the rest of the range must
         still be processed — no abort, no Task_error. *)
      Pool.parallel_for pool ~chunk:10 ~supervisor:sup 100 (fun lo hi ->
          if lo = 50 then failwith "poison";
          ignore (Atomic.fetch_and_add done_ (hi - lo)));
      check_int (Printf.sprintf "jobs=%d: everything else processed" jobs) 90
        (Atomic.get done_);
      check_int (Printf.sprintf "jobs=%d: one quarantine" jobs) 1
        (Supervise.quarantine_count sup);
      match Supervise.quarantined sup with
      | [ q ] ->
          check_int "quarantined lo" 50 q.Supervise.q_lo;
          check_int "quarantined hi" 60 q.Supervise.q_hi;
          check_int "attempts exhausted" 2 q.Supervise.q_attempts;
          check_bool "error captured" true
            (String.length q.Supervise.q_error > 0)
      | l -> Alcotest.failf "expected one quarantine record, got %d" (List.length l))
    job_counts

(* ------------------------------------------------------------------ *)
(* Engine: transient failures heal to bit-identical analyses;
   exhausted failures degrade to honest floors. *)

let test_engine_retry_parity () =
  let seq = Numbers.analyze ~cap:4 Gallery.test_and_set in
  List.iter
    (fun jobs ->
      let chaos = Supervise.Chaos.create ~attempts:2 ~rate:0.5 ~seed:9 () in
      let sup = Supervise.create ~policy:(fast_policy ()) ~chaos () in
      Pool.with_pool ~jobs @@ fun pool ->
      let a =
        Engine.analyze ~supervisor:sup ~config:(Api.Config.v ~cap:4 ()) pool
          Gallery.test_and_set
      in
      check_bool
        (Printf.sprintf "jobs=%d: healed analysis equals the sequential one" jobs)
        true (Analysis.equal a seq);
      check_int (Printf.sprintf "jobs=%d: nothing quarantined" jobs) 0
        (Supervise.quarantine_count sup))
    job_counts

let test_engine_quarantine_degrades () =
  List.iter
    (fun jobs ->
      (* Every chunk fails more often than the policy tolerates: all work
         is quarantined, and the analysis must fall back to the same
         honest At_least floor an expired deadline produces. *)
      let chaos = Supervise.Chaos.create ~attempts:10 ~rate:1.0 ~seed:1 () in
      let sup = Supervise.create ~policy:(fast_policy ~max_attempts:2 ()) ~chaos () in
      Pool.with_pool ~jobs @@ fun pool ->
      let a =
        Engine.analyze ~supervisor:sup ~config:(Api.Config.v ~cap:4 ()) pool
          Gallery.test_and_set
      in
      let check_level name (l : Analysis.level) =
        check_int (Printf.sprintf "jobs=%d: %s floor" jobs name) 1 l.Analysis.value;
        check_bool
          (Printf.sprintf "jobs=%d: %s is a lower bound" jobs name)
          true
          (l.Analysis.status = Analysis.At_least)
      in
      check_level "discerning" a.Analysis.discerning;
      check_level "recording" a.Analysis.recording;
      check_bool (Printf.sprintf "jobs=%d: quarantines recorded" jobs) true
        (Supervise.quarantine_count sup > 0))
    job_counts

let test_quarantined_sweep_not_cached () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let cache = Engine.Cache.create () in
  let chaos = Supervise.Chaos.create ~attempts:10 ~rate:1.0 ~seed:1 () in
  let sup = Supervise.create ~policy:(fast_policy ~max_attempts:2 ()) ~chaos () in
  (match
     Engine.search_within ~cache ~supervisor:sup ~config:Api.Config.default pool
       Decide.Discerning Gallery.test_and_set ~n:2
   with
  | Engine.Expired -> ()
  | _ -> Alcotest.fail "fully quarantined sweep should report Expired");
  (* The degraded outcome must not poison the cache: the same query
     without chaos computes the true answer. *)
  (match
     Engine.search_within ~cache ~config:Api.Config.default pool Decide.Discerning
       Gallery.test_and_set ~n:2
   with
  | Engine.Found _ -> ()
  | _ -> Alcotest.fail "clean retry should find the witness");
  let stats = Engine.Cache.stats cache in
  check_bool "degraded probe accounted as expired" true (stats.Engine.Cache.expired >= 1);
  check_bool "clean probe was a miss, not a poisoned hit" true
    (stats.Engine.Cache.misses >= 1)

let test_census_quarantine_holes () =
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let chaos = Supervise.Chaos.create ~attempts:10 ~rate:0.3 ~seed:4 () in
  let sup = Supervise.create ~policy:(fast_policy ~max_attempts:2 ()) ~chaos () in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let run = Engine.census ~supervisor:sup ~config:(Api.Config.v ~cap:3 ()) pool space in
  check_bool "census with quarantined chunks is honestly incomplete" false
    run.Engine.complete;
  check_bool "undecided tables match the quarantine ledger" true
    (run.Engine.total - run.Engine.completed
    = List.fold_left
        (fun acc q -> acc + (q.Supervise.q_hi - q.Supervise.q_lo))
        0
        (Supervise.quarantined sup))

(* ------------------------------------------------------------------ *)
(* Watchdog *)

let test_watchdog_unit () =
  let t = ref 0.0 in
  let wd = Supervise.Watchdog.create ~now:(fun () -> !t) ~interval:1.0 ~jobs:2 () in
  check_bool "idle pool is not stalled" false (Supervise.Watchdog.stalled wd);
  Supervise.Watchdog.beat wd ~worker:0;
  t := 0.5;
  check_bool "recent beat is not a stall" false (Supervise.Watchdog.stalled wd);
  t := 1.5;
  check_bool "beat older than the interval is a stall" true
    (Supervise.Watchdog.stalled wd);
  Supervise.Watchdog.clear wd ~worker:0;
  check_bool "cleared worker is idle again" false (Supervise.Watchdog.stalled wd);
  Supervise.Watchdog.beat wd ~worker:1;
  t := 3.0;
  check_bool "other worker stalls too" true (Supervise.Watchdog.stalled wd);
  Supervise.Watchdog.trip wd;
  check_int "trip recorded" 1 (Supervise.Watchdog.trips wd);
  check_bool "trip resets every slot" false (Supervise.Watchdog.stalled wd);
  check_bool "out-of-range worker ids are ignored" true
    (Supervise.Watchdog.beat wd ~worker:99;
     Supervise.Watchdog.clear wd ~worker:(-1);
     true);
  check_bool "invalid interval rejected" true
    (try
       ignore (Supervise.Watchdog.create ~interval:0.0 ~jobs:1 ());
       false
     with Invalid_argument _ -> true)

(* A pre-stalled watchdog (a beaten slot nothing ever clears) makes the
   engine cancel the sweep and retry it; the trip resets the slots, so
   the retry completes and the result is still exactly right. *)
let test_engine_watchdog_recovers () =
  List.iter
    (fun jobs ->
      let wd = Supervise.Watchdog.create ~interval:0.001 ~jobs:8 () in
      Supervise.Watchdog.beat wd ~worker:7;
      Obs.Clock.sleep 0.005;
      let sup = Supervise.create ~policy:(fast_policy ()) ~watchdog:wd () in
      Pool.with_pool ~jobs @@ fun pool ->
      let a =
        Engine.analyze ~supervisor:sup ~config:(Api.Config.v ~cap:4 ()) pool
          Gallery.test_and_set
      in
      check_bool
        (Printf.sprintf "jobs=%d: analysis correct after watchdog trips" jobs)
        true
        (Analysis.equal a (Numbers.analyze ~cap:4 Gallery.test_and_set));
      check_bool (Printf.sprintf "jobs=%d: the watchdog actually tripped" jobs) true
        (Supervise.Watchdog.trips wd >= 1))
    job_counts

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_json () =
  let sup = Supervise.create ~policy:(fast_policy ~max_attempts:1 ()) () in
  Pool.with_pool ~jobs:1 @@ fun pool ->
  Pool.parallel_for pool ~chunk:10 ~supervisor:sup 20 (fun lo _ ->
      if lo = 10 then failwith "bad \"quote\"");
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let json = Supervise.report_json sup in
  check_bool "report is tagged" true (contains ~sub:"{\"rcn_quarantine\":1" json);
  (* Printexc already backslash-escapes the quote; the JSON escaper then
     escapes both characters again, so the report carries
     backslash-backslash-backslash-quote. *)
  check_bool "exception text is escaped" true
    (contains ~sub:"bad \\\\\\\"quote" json);
  let path = Filename.temp_file "rcn-test-quarantine" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Supervise.write_report sup path;
  check_bool "written report round-trips" true
    (In_channel.with_open_text path In_channel.input_all = json)

let suite =
  [
    Alcotest.test_case "backoff: deterministic, doubling, capped, jitter-bounded" `Quick
      test_backoff;
    Alcotest.test_case "chaos: deterministic seeded failure schedules" `Quick test_chaos;
    Alcotest.test_case "supervised pool covers the range despite failures" `Quick
      test_pool_retry_covers_range;
    Alcotest.test_case "real exceptions retry and heal" `Quick
      test_pool_retry_real_exception;
    Alcotest.test_case "poison chunks quarantine without aborting" `Quick
      test_pool_quarantine;
    Alcotest.test_case "healed analyses are bit-identical at jobs 1/2/4" `Slow
      test_engine_retry_parity;
    Alcotest.test_case "quarantine degrades to honest floors" `Quick
      test_engine_quarantine_degrades;
    Alcotest.test_case "quarantined sweeps are not cached" `Quick
      test_quarantined_sweep_not_cached;
    Alcotest.test_case "census leaves honest holes for quarantined chunks" `Slow
      test_census_quarantine_holes;
    Alcotest.test_case "watchdog stall detection unit" `Quick test_watchdog_unit;
    Alcotest.test_case "engine recovers from a watchdog trip" `Slow
      test_engine_watchdog_recovers;
    Alcotest.test_case "quarantine report JSON" `Quick test_report_json;
  ]
