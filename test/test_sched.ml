(* Tests for schedules and the S(P') enumeration. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_counting_helpers () =
  let sched = Sched.[ step 0; crash 1; step 1; step 0; crash 1 ] in
  check_int "steps p0" 2 (Sched.steps_of sched 0);
  check_int "steps p1" 1 (Sched.steps_of sched 1);
  check_int "crashes p1" 2 (Sched.crashes_of sched 1);
  check_int "crashes p0" 0 (Sched.crashes_of sched 0);
  Alcotest.(check (list int)) "stepping procs" [ 0; 1 ] (Sched.procs_stepping sched);
  check_bool "not crash free" false (Sched.crash_free sched);
  check_bool "crash free" true (Sched.crash_free (Sched.of_procs [ 0; 1; 0 ]))

let test_to_string () =
  Alcotest.(check string)
    "paper rendering" "p0 p1 c1 p1"
    (Sched.to_string Sched.[ step 0; step 1; crash 1; step 1 ])

let test_at_most_once_small () =
  (* The paper's example: S({p_0, p_2}) = { <>, p0, p2, p0 p2, p2 p0 }. *)
  let s = Sched.at_most_once_of [ 0; 2 ] in
  Alcotest.(check (list (list int)))
    "paper example"
    [ []; [ 0 ]; [ 2 ]; [ 0; 2 ]; [ 2; 0 ] ]
    s

let test_at_most_once_counts () =
  List.iter
    (fun n ->
      check_int
        (Printf.sprintf "closed form matches enumeration, n=%d" n)
        (Sched.at_most_once_count n)
        (List.length (Sched.at_most_once ~nprocs:n)))
    [ 1; 2; 3; 4; 5 ];
  check_int "n=3 count" 16 (Sched.at_most_once_count 3);
  check_int "n=5 count" 326 (Sched.at_most_once_count 5)

let test_at_most_once_distinct () =
  let all = Sched.at_most_once ~nprocs:4 in
  List.iter
    (fun s ->
      check_int "no repeats" (List.length s) (List.length (List.sort_uniq compare s)))
    all;
  check_int "no duplicate schedules" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_nonempty_starting_with () =
  let s = Sched.nonempty_starting_with ~nprocs:3 ~first:[ 1 ] in
  check_bool "all start with 1" true (List.for_all (function 1 :: _ -> true | _ -> false) s);
  (* 1, then any at-most-once arrangement of {0,2}: 5 of them. *)
  check_int "count" 5 (List.length s)

let test_permutations () =
  check_int "3! permutations" 6 (List.length (Sched.permutations [ 0; 1; 2 ]));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Sched.permutations [])

let test_interleavings () =
  (* multinomial: (2+2)! / (2! 2!) = 6 *)
  check_int "2 procs x 2 steps" 6 (List.length (Sched.interleavings ~nprocs:2 ~steps_per_proc:2));
  (* 3 procs x 1 step = 3! = 6 *)
  check_int "3 procs x 1 step" 6 (List.length (Sched.interleavings ~nprocs:3 ~steps_per_proc:1));
  List.iter
    (fun s ->
      check_int "each proc steps twice" 2 (Sched.steps_of s 0);
      check_bool "crash free" true (Sched.crash_free s))
    (Sched.interleavings ~nprocs:2 ~steps_per_proc:2)

let test_of_string () =
  let roundtrip sched =
    Alcotest.(check string)
      "roundtrip" (Sched.to_string sched)
      (match Sched.of_string (Sched.to_string sched) with
      | Ok s -> Sched.to_string s
      | Error m -> "ERROR " ^ m)
  in
  roundtrip Sched.[ step 0; crash 1; step 1; crash_all; step 0 ];
  roundtrip [];
  Alcotest.(check bool) "rejects garbage" true (Result.is_error (Sched.of_string "p0 x9"));
  Alcotest.(check bool) "rejects bare word" true (Result.is_error (Sched.of_string "hello"));
  Alcotest.(check bool) "parses crash-all" true
    (Sched.of_string "C*" = Ok [ Sched.crash_all ])

let test_trie_pins () =
  (* The compiled prefix trie is just S(P) in disguise: same schedules in
     node order, one node per schedule, parents strictly before children,
     and the depth/first/proc arrays agree with the rebuilt schedules. *)
  List.iter
    (fun nprocs ->
      let trie = Sched.Trie.of_nprocs ~nprocs in
      check_int
        (Printf.sprintf "nprocs=%d node count" nprocs)
        (Sched.at_most_once_count nprocs)
        (Sched.Trie.num_nodes trie);
      Alcotest.(check (list (list int)))
        (Printf.sprintf "nprocs=%d schedules" nprocs)
        (Sched.at_most_once ~nprocs)
        (Sched.Trie.schedules trie);
      let parent = Sched.Trie.parent trie
      and proc = Sched.Trie.proc trie
      and first = Sched.Trie.first trie
      and depth = Sched.Trie.depth trie in
      let steps = ref 0 in
      for i = 0 to Sched.Trie.num_nodes trie - 1 do
        check_bool (Printf.sprintf "nprocs=%d node %d parent precedes" nprocs i) true
          (parent.(i) < i);
        let sched = Sched.Trie.schedule trie i in
        steps := !steps + List.length sched;
        check_int (Printf.sprintf "nprocs=%d node %d depth" nprocs i)
          (List.length sched) depth.(i);
        match sched with
        | [] ->
            check_int "root has no first" (-1) first.(i);
            check_int "root has no proc" (-1) proc.(i)
        | hd :: _ ->
            check_int (Printf.sprintf "nprocs=%d node %d first" nprocs i) hd first.(i);
            check_int
              (Printf.sprintf "nprocs=%d node %d last step" nprocs i)
              (List.nth sched (List.length sched - 1))
              proc.(i)
      done;
      check_int (Printf.sprintf "nprocs=%d total steps" nprocs) !steps
        (Sched.Trie.total_steps trie))
    [ 1; 2; 3; 4 ]

let prop_at_most_once_of_ignores_duplicates =
  QCheck.Test.make ~name:"at_most_once_of deduplicates its input" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_bound 5) (int_bound 3))
    (fun procs ->
      Sched.at_most_once_of procs = Sched.at_most_once_of (List.sort_uniq compare procs))

let suite =
  [
    Alcotest.test_case "event counting helpers" `Quick test_counting_helpers;
    Alcotest.test_case "schedule rendering" `Quick test_to_string;
    Alcotest.test_case "S(P') matches the paper's example" `Quick test_at_most_once_small;
    Alcotest.test_case "S(P) cardinality closed form" `Quick test_at_most_once_counts;
    Alcotest.test_case "S(P) schedules are distinct" `Quick test_at_most_once_distinct;
    Alcotest.test_case "schedules starting with a team" `Quick test_nonempty_starting_with;
    Alcotest.test_case "permutations" `Quick test_permutations;
    Alcotest.test_case "exhaustive interleavings" `Quick test_interleavings;
    Alcotest.test_case "schedule parsing" `Quick test_of_string;
    Alcotest.test_case "prefix trie mirrors S(P)" `Quick test_trie_pins;
    QCheck_alcotest.to_alcotest prop_at_most_once_of_ignores_duplicates;
  ]
