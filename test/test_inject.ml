(* Tests for the fault-injection campaign runner: the generic delta
   debugger, the shrinking pipeline's replay/minimality guarantees, and
   fixed-seed campaigns over the known-broken protocols. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Shrink: delta debugging on plain lists *)

let test_ddmin_finds_singleton () =
  (* Predicate "contains 7": ddmin must carve 1000 elements down to [7]. *)
  let pred xs = List.mem 7 xs in
  let input = List.init 1000 Fun.id in
  check_bool "ddmin isolates the one relevant element" true
    (Shrink.ddmin ~pred input = [ 7 ]);
  check_bool "one_minimal agrees" true (Shrink.one_minimal ~pred input = [ 7 ]);
  check_bool "minimize agrees" true (Shrink.minimize ~pred input = [ 7 ])

let test_ddmin_scattered_pair () =
  (* Two far-apart relevant elements: the classic case where complements
     matter.  The result must keep both, in order, and nothing else. *)
  let pred xs = List.mem 3 xs && List.mem 96 xs in
  let input = List.init 100 Fun.id in
  check_bool "minimal scattered pair" true (Shrink.minimize ~pred input = [ 3; 96 ])

let test_minimize_is_one_minimal () =
  (* "Sum of survivors >= 50" over 1..20: whatever minimize returns,
     dropping any single element must break the predicate. *)
  let pred xs = List.fold_left ( + ) 0 xs >= 50 in
  let input = List.init 20 (fun i -> i + 1) in
  let out = Shrink.minimize ~pred input in
  check_bool "predicate holds on result" true (pred out);
  List.iteri
    (fun i _ ->
      check_bool
        (Printf.sprintf "dropping element %d breaks it" i)
        false
        (pred (List.filteri (fun j _ -> j <> i) out)))
    out

let test_shrink_rejects_bad_input () =
  let pred xs = List.mem 99 xs in
  List.iter
    (fun (who, f) ->
      check_bool (who ^ " raises on a non-failing input") true
        (try
           ignore (f ~pred [ 1; 2; 3 ]);
           false
         with Invalid_argument _ -> true))
    [ ("ddmin", Shrink.ddmin); ("one_minimal", Shrink.one_minimal);
      ("minimize", Shrink.minimize) ]

(* ------------------------------------------------------------------ *)
(* Campaigns on the known-broken protocols, fixed seeds *)

let broken_targets () =
  [
    ("race", Inject.Target (Classic.register_race ~nprocs:2));
    ("tas2", Inject.Target Classic.tas_consensus_2);
    ( "tnn-overloaded",
      (* T_{3,1}'s recoverable protocol run by one process too many. *)
      Inject.Target (Tnn_protocol.recoverable_overloaded ~procs:2 ~n:3 ~n':1) );
  ]

(* Seeds 1..40 reach the overloaded protocol's rare crash window (first
   hit near seed 26) while keeping the campaign fast. *)
let smoke_grid = Inject.default_grid ~seeds:40 ()

let smoke_report = lazy (Inject.run ~grid:smoke_grid (broken_targets ()))

let test_campaign_finds_all_three () =
  let report = Lazy.force smoke_report in
  List.iter
    (fun (p : Inject.protocol_report) ->
      check_bool (p.Inject.name ^ " violated") true
        (List.exists (fun (c : Inject.cell) -> c.Inject.violations > 0) p.Inject.cells);
      check_bool (p.Inject.name ^ " produced a shrunk finding") true
        (p.Inject.findings <> []))
    report;
  check_int "one protocol_report per target" 3 (List.length report)

let test_findings_replay_and_shrink () =
  let findings = Inject.findings (Lazy.force smoke_report) in
  check_bool "campaign produced findings" true (findings <> []);
  List.iter
    (fun (f : Inject.finding) ->
      let tgt = List.assoc f.Inject.protocol (broken_targets ()) in
      let label what =
        Printf.sprintf "%s/%s seed %d: %s" f.Inject.protocol f.Inject.adversary
          f.Inject.seed what
      in
      (* Shrinking never grows the schedule, and the raw tas2 schedules are
         long enough that at least one finding shrinks strictly. *)
      check_bool (label "shrunk not longer than raw") true
        (Sched.length f.Inject.shrunk <= Sched.length f.Inject.raw);
      (* The minimal schedule replays to the very same checker violation. *)
      let executed, verdict =
        Inject.replay_verdict tgt ~inputs:f.Inject.inputs ~z:smoke_grid.Inject.z
          ~fuel:smoke_grid.Inject.fuel f.Inject.shrunk
      in
      check_bool (label "replay reproduces the violation") true
        (Checker.message verdict = Some f.Inject.violation);
      check_bool (label "minimal schedule replays in full") true
        (executed = f.Inject.shrunk);
      (* 1-minimality: removing any single event loses the violation. *)
      List.iteri
        (fun i _ ->
          let _, verdict' =
            Inject.replay_verdict tgt ~inputs:f.Inject.inputs
              ~z:smoke_grid.Inject.z ~fuel:smoke_grid.Inject.fuel
              (Sched.remove_at f.Inject.shrunk i)
          in
          check_bool
            (label (Printf.sprintf "dropping event %d loses the violation" i))
            false
            (Checker.message verdict' = Some f.Inject.violation))
        f.Inject.shrunk)
    findings

let test_some_finding_shrinks_strictly () =
  (* The acceptance bar: a broken protocol yields a minimized
     counterexample strictly shorter than the raw schedule (tas2's crash
     loops guarantee slack in the raw runs). *)
  check_bool "at least one finding is strictly shorter than raw" true
    (List.exists
       (fun (f : Inject.finding) ->
         Sched.length f.Inject.shrunk < Sched.length f.Inject.raw)
       (Inject.findings (Lazy.force smoke_report)))

let test_campaign_deterministic () =
  (* Same grid, same targets: bit-identical report. *)
  let r1 = Inject.run ~grid:(Inject.default_grid ~seeds:3 ()) (broken_targets ()) in
  let r2 = Inject.run ~grid:(Inject.default_grid ~seeds:3 ()) (broken_targets ()) in
  check_bool "campaigns are deterministic" true (r1 = r2)

let test_healthy_protocol_clean () =
  let grid = Inject.default_grid ~seeds:5 () in
  let report =
    Inject.run ~grid
      [
        ("cas", Inject.Target (Classic.cas_consensus ~nprocs:2));
        ("sticky", Inject.Target (Classic.sticky_consensus ~nprocs:2));
      ]
  in
  check_int "no violations on consensus-correct protocols" 0
    (Inject.total_violations report);
  check_bool "no findings either" true (Inject.findings report = [])

let test_shrink_rejects_non_violating_schedule () =
  let tgt = Inject.Target Classic.tas_consensus_2 in
  check_bool "shrink refuses a schedule that does not violate" true
    (try
       ignore
         (Inject.shrink tgt ~inputs:[| 0; 1 |] ~z:1 ~fuel:100
            ~violation:"agreement: distinct decisions {0, 1}"
            Sched.[ step 0; step 1 ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* qcheck: minimized counterexamples replay to the same violation and
   are locally minimal, across random seeds *)

let prop_minimized_counterexamples =
  QCheck.Test.make ~name:"every minimized counterexample replays and is 1-minimal"
    ~count:30
    QCheck.(make Gen.(int_range 1 10_000))
    (fun seed ->
      let tgt = Inject.Target Classic.tas_consensus_2 in
      let inputs = [| 0; 1 |] in
      let adv = Adversary.random ~crash_prob:0.35 ~seed ~nprocs:2 in
      let p = Classic.tas_consensus_2 in
      let c0 = Config.initial p ~inputs in
      let final, executed, _ =
        Exec.run_adversary p c0
          ~pick:(fun ~decided b -> adv ~decided b)
          ~budget:(Budget.counter ~z:1 ~nprocs:2)
          ~fuel:500 ()
      in
      match Checker.message (Checker.consensus p final) with
      | None -> true (* this seed found nothing to shrink *)
      | Some violation ->
          let shrunk, _replays =
            Inject.shrink tgt ~inputs ~z:1 ~fuel:500 ~violation executed
          in
          let same_violation s =
            let _, v = Inject.replay_verdict tgt ~inputs ~z:1 ~fuel:500 s in
            Checker.message v = Some violation
          in
          same_violation shrunk
          && Sched.length shrunk <= Sched.length executed
          && List.for_all
               (fun i -> not (same_violation (Sched.remove_at shrunk i)))
               (List.init (Sched.length shrunk) Fun.id))

let suite =
  [
    Alcotest.test_case "ddmin isolates a singleton" `Quick test_ddmin_finds_singleton;
    Alcotest.test_case "ddmin keeps a scattered pair" `Quick test_ddmin_scattered_pair;
    Alcotest.test_case "minimize is 1-minimal" `Quick test_minimize_is_one_minimal;
    Alcotest.test_case "shrinkers reject non-failing inputs" `Quick
      test_shrink_rejects_bad_input;
    Alcotest.test_case "campaign breaks all three broken protocols" `Quick
      test_campaign_finds_all_three;
    Alcotest.test_case "findings replay and are 1-minimal" `Quick
      test_findings_replay_and_shrink;
    Alcotest.test_case "some finding shrinks strictly" `Quick
      test_some_finding_shrinks_strictly;
    Alcotest.test_case "campaigns are deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "healthy protocols stay clean" `Quick test_healthy_protocol_clean;
    Alcotest.test_case "shrink validates its input" `Quick
      test_shrink_rejects_non_violating_schedule;
    QCheck_alcotest.to_alcotest prop_minimized_counterexamples;
  ]
