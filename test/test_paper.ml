(* Integration tests indexed by the paper's claims — one test per headline
   statement, mirroring EXPERIMENTS.md. *)

let check_bool = Alcotest.(check bool)
let bound = Alcotest.testable Numbers.pp_bound Numbers.equal_bound

let binary_inputs n = List.init (1 lsl n) (fun mask -> Array.init n (fun i -> (mask lsr i) land 1))

(* Lemma 15 (lower bound): wait-free consensus among n processes using a
   single object of T_{n,n'}. *)
let test_lemma_15_lower () =
  let n = 4 and n' = 2 in
  let p = Tnn_protocol.wait_free ~n ~n' in
  let bad = ref 0 in
  List.iter
    (fun inputs ->
      List.iter
        (fun sched ->
          let final, _ = Exec.run_schedule p (Config.initial p ~inputs) sched in
          if
            not
              (Checker.is_ok (Checker.consensus p final)
              && Checker.is_ok (Checker.all_decided p final))
          then incr bad)
        (Sched.interleavings ~nprocs:n ~steps_per_proc:1))
    (binary_inputs n);
  Alcotest.(check int) "no violations over all interleavings" 0 !bad

(* Lemma 15 (upper bound, via Ruppert's characterization applied to the
   discerning level): T_{n,n'} is n-discerning but not (n+1)-discerning. *)
let test_lemma_15_upper_via_discerning () =
  let ty = Gallery.tnn ~n:4 ~n':2 in
  check_bool "4-discerning" true (Decide.is_discerning ty ~n:4);
  check_bool "not 5-discerning" false (Decide.is_discerning ty ~n:5)

(* Lemma 16 (lower bound): recoverable wait-free consensus among n'
   processes using a single object of T_{n,n'}. *)
let test_lemma_16_lower () =
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs 2) p with
  | Ok (), truncated -> check_bool "exhaustive certification" false truncated
  | Error r, _ ->
      Alcotest.failf "violation: %s" (Sched.to_string r.Counterexample.schedule)

(* Lemma 16 (upper bound): with n' + 1 processes the protocol's structure
   collapses — the model checker exhibits a crash schedule violating
   agreement, matching the paper's valency argument. *)
let test_lemma_16_upper () =
  let p = Tnn_protocol.recoverable_overloaded ~procs:3 ~n:4 ~n':2 in
  match Counterexample.search ~z:1 ~inputs_list:(binary_inputs 3) p with
  | Some r ->
      check_bool "crash involved" true
        (List.exists
           (function Sched.Crash _ -> true | Sched.Step _ | Sched.Crash_all -> false)
           r.Counterexample.schedule)
  | None -> Alcotest.fail "expected a violation at n' + 1 processes"

(* Theorem 13 corollary: a readable type with consensus number 4 and
   recoverable consensus number 2 exists (X_4). *)
let test_x4_gap () =
  let a = Numbers.analyze ~cap:5 Gallery.x4_witness in
  Alcotest.check bound "consensus number 4"
    (Numbers.Exact 4)
    (Numbers.bound_of_level (Option.get (Analysis.consensus_number a)));
  Alcotest.check bound "recoverable consensus number 2"
    (Numbers.Exact 2)
    (Numbers.bound_of_level (Option.get (Analysis.recoverable_consensus_number a)))

(* Theorem 14 (robustness): combining readable deterministic types never
   beats the strongest individual type. *)
let test_theorem_14_robustness () =
  let sets =
    [
      [ Gallery.register 2; Gallery.test_and_set ];
      [ Gallery.test_and_set; Gallery.swap 3; Gallery.fetch_and_add 3 ];
      [ Gallery.team_ladder ~cap:2; Gallery.x4_witness; Gallery.test_and_set ];
    ]
  in
  List.iter
    (fun types ->
      let r = Robustness.analyze ~cap:4 types in
      let individual_max =
        List.fold_left
          (fun acc (_, (l : Analysis.level)) -> max acc (Analysis.level_value l))
          0 r.Robustness.per_type
      in
      let combined =
        match r.Robustness.combined with Numbers.Exact n | Numbers.At_least n -> n
      in
      Alcotest.(check int) "combined equals individual max" individual_max combined)
    sets

(* Golab 2020, reproved by the framework end to end: TAS has recoverable
   consensus number 1 — by the decider, and by a concrete failing
   execution of the classical protocol. *)
let test_golab_tas () =
  Alcotest.check bound "decider: rcn 1" (Numbers.Exact 1)
    (Numbers.bound_of_level (Numbers.max_recording ~cap:3 Gallery.test_and_set));
  check_bool "protocol fails under crashes" true
    (Counterexample.search ~z:1 ~inputs_list:(binary_inputs 2) Classic.tas_consensus_2 <> None)

(* FLP-style control: registers alone cannot solve consensus — our naive
   register protocol violates agreement crash-free. *)
let test_registers_insufficient () =
  let r =
    Counterexample.search ~z:1 ~inputs_list:(binary_inputs 2) (Classic.register_race ~nprocs:2)
  in
  match r with
  | Some r -> check_bool "crash-free violation" true (Sched.crash_free r.Counterexample.schedule)
  | None -> Alcotest.fail "register race must fail"

(* DFFR Theorem 8 direction, executable: a 2-recording readable certificate
   yields working 2-process recoverable consensus (via Election). *)
let test_dffr_theorem_8_executable () =
  List.iter
    (fun ty ->
      match Decide.search Decide.Recording ty ~n:2 with
      | None -> Alcotest.failf "%s should be 2-recording" ty.Objtype.name
      | Some cert ->
          if Certificate.is_clean cert then begin
            let p = Election.consensus_2 cert in
            match Counterexample.certify ~z:1 ~inputs_list:(binary_inputs 2) p with
            | Ok (), _ -> ()
            | Error r, _ ->
                Alcotest.failf "%s consensus violated: %s" ty.Objtype.name
                  (Sched.to_string r.Counterexample.schedule)
          end)
    [ Gallery.team_ladder ~cap:2; Gallery.team_ladder ~cap:3; Gallery.x4_witness; Gallery.sticky_bit ]

(* The paper's observation that consensus numbers never increase under
   recovery: max-recording <= max-discerning on every gallery type. *)
let test_rcn_at_most_cn () =
  List.iter
    (fun (name, ty) ->
      let d = Numbers.max_discerning ~cap:4 ty in
      let r = Numbers.max_recording ~cap:4 ty in
      check_bool (name ^ ": rec <= disc") true
        (Analysis.level_value r <= Analysis.level_value d))
    (Gallery.all ())

(* Observation 1 on the simulator: every protocol in the repository has a
   bivalent mixed-input initial configuration. *)
let test_observation_1_across_protocols () =
  let check_bivalent name ctx root =
    match Explore.valency ctx root with
    | Explore.Bivalent -> ()
    | Explore.Univalent _ | Explore.Unknown -> Alcotest.failf "%s root not bivalent" name
  in
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  check_bivalent "cas" ctx (Explore.root ctx ~inputs:[| 0; 1 |]);
  let p = Classic.sticky_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  check_bivalent "sticky" ctx (Explore.root ctx ~inputs:[| 0; 1 |]);
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let ctx = Explore.create ~z:1 ~max_events:60 p in
  check_bivalent "tnn" ctx (Explore.root ctx ~inputs:[| 0; 1 |])

let suite =
  [
    Alcotest.test_case "Lemma 15 lower bound (E2)" `Slow test_lemma_15_lower;
    Alcotest.test_case "Lemma 15 upper bound via discerning" `Slow test_lemma_15_upper_via_discerning;
    Alcotest.test_case "Lemma 16 lower bound (E3)" `Quick test_lemma_16_lower;
    Alcotest.test_case "Lemma 16 upper bound (E4)" `Slow test_lemma_16_upper;
    Alcotest.test_case "X_4 gap: cn 4, rcn 2 (corollary)" `Quick test_x4_gap;
    Alcotest.test_case "Theorem 14: robustness (E7)" `Slow test_theorem_14_robustness;
    Alcotest.test_case "Golab: TAS not recoverable" `Quick test_golab_tas;
    Alcotest.test_case "registers cannot solve consensus" `Quick test_registers_insufficient;
    Alcotest.test_case "DFFR Theorem 8, executable" `Slow test_dffr_theorem_8_executable;
    Alcotest.test_case "recoverable never exceeds plain consensus" `Slow test_rcn_at_most_cn;
    Alcotest.test_case "Observation 1 across protocols (E8)" `Quick test_observation_1_across_protocols;
  ]
