(* Coverage sweep: smaller behaviours not exercised by the focused suites —
   printers, option variants, degenerate parameters, determinism. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_dot_all_values () =
  (* With reachable_only:false, unreachable values appear too. *)
  let t = Gallery.test_and_set in
  let from_set = Dot.to_dot ~reachable_only:false t in
  check_bool "includes unset" true (contains ~needle:"unset" from_set);
  check_int "edge counts differ" 3 (Dot.edge_count ~reachable_only:false t);
  check_int "reachable-only keeps both values of tas" 3 (Dot.edge_count t)

let test_numbers_cap_validation () =
  check_bool "cap < 2 rejected" true
    (try
       ignore (Numbers.max_discerning ~cap:1 Gallery.test_and_set);
       false
     with Invalid_argument _ -> true)

let test_bound_printing () =
  Alcotest.(check string) "exact" "3" (Numbers.bound_to_string (Numbers.Exact 3));
  Alcotest.(check string) "at least" ">=5" (Numbers.bound_to_string (Numbers.At_least 5));
  check_bool "equal bounds" true (Numbers.equal_bound (Numbers.Exact 2) (Numbers.Exact 2));
  check_bool "exact <> at-least" false (Numbers.equal_bound (Numbers.Exact 2) (Numbers.At_least 2))

let test_analysis_pretty_printer () =
  let a = Numbers.analyze ~cap:3 Gallery.test_and_set in
  let s = Format.asprintf "%a" Analysis.pp a in
  check_bool "names the type" true (contains ~needle:"test-and-set" s);
  check_bool "shows readability" true (contains ~needle:"readable" s);
  Alcotest.(check string) "exact level" "2" (Analysis.level_to_string a.Analysis.discerning);
  check_bool "exact status" true (Analysis.is_exact a.Analysis.discerning);
  check_int "level value" 2 (Analysis.level_value a.Analysis.discerning);
  check_bool "equal to itself" true (Analysis.equal a a);
  check_bool "timing recorded" true (a.Analysis.elapsed >= 0.0)

let test_certificate_pretty_printer () =
  let cert =
    Certificate.make ~objtype:Gallery.test_and_set ~initial:0 ~team:[| false; true |]
      ~ops:[| 0; 1 |]
  in
  let s = Format.asprintf "%a" Certificate.pp cert in
  check_bool "shows teams" true (contains ~needle:"T_0" s);
  check_bool "shows ops" true (contains ~needle:"tas" s)

let test_config_pretty_printer () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let c = Config.initial p ~inputs:[| 0; 1 |] in
  let s =
    Format.asprintf "%a" (Config.pp ~pp_state:(fun ppf _ -> Format.pp_print_string ppf "_") p) c
  in
  check_bool "mentions objects" true (contains ~needle:"cas-3" s);
  check_bool "mentions poise" true (contains ~needle:"poised" s)

let test_trace_pretty_printer () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let c = Config.initial p ~inputs:[| 0; 1 |] in
  (* p0 decides on its first step, so its second step is a no-op; the
     simultaneous crash afterwards resets everyone. *)
  let _, trace = Exec.run_schedule p c Sched.[ step 0; step 0; crash 1; crash_all ] in
  let s = Format.asprintf "%a" (Exec.pp_trace p) trace in
  check_bool "step narrated" true (contains ~needle:"applies" s);
  check_bool "crash narrated" true (contains ~needle:"crashes" s);
  check_bool "simultaneous narrated" true (contains ~needle:"simultaneous" s);
  check_bool "no-op narrated" true (contains ~needle:"no-op" s)

let test_exec_determinism () =
  (* The model is deterministic: replaying a schedule yields the same
     configuration every time. *)
  let p = Tnn_protocol.recoverable ~n:4 ~n':2 in
  let sched = Sched.[ step 0; step 1; crash 1; step 1; step 0; step 1 ] in
  let run () = fst (Exec.run_schedule p (Config.initial p ~inputs:[| 1; 0 |]) sched) in
  check_bool "equal configs" true (Config.equal (run ()) (run ()));
  check_bool "equal hashes" true (Config.hash (run ()) = Config.hash (run ()))

let test_crash_idempotence () =
  let p = Classic.cas_consensus ~nprocs:2 in
  let c = Config.initial p ~inputs:[| 0; 1 |] in
  let c1 = Exec.apply_step p c ~proc:0 in
  let once = Exec.apply_crash c1 p ~proc:0 in
  let twice = Exec.apply_crash once p ~proc:0 in
  check_bool "crashing twice = once" true (Config.equal once twice);
  (* crash-all on an initial configuration is the identity *)
  check_bool "crash-all at start is identity" true
    (Config.equal c (Exec.apply_crash_all c p))

let test_crash_storm_budget () =
  (* The crash-storm adversary never exceeds the budget. *)
  let p = Tnn_protocol.recoverable ~n:5 ~n':2 in
  for seed = 1 to 10 do
    let adv = Adversary.crash_storm ~period:2 ~seed ~nprocs:2 in
    let c0 = Config.initial p ~inputs:[| 0; 1 |] in
    let _, sched, _ =
      Exec.run_adversary p c0
        ~pick:(fun ~decided b -> adv ~decided b)
        ~budget:(Budget.counter ~z:1 ~nprocs:2)
        ~fuel:100 ()
    in
    check_bool "within E_1^*" true (Budget.within_e_z_star ~z:1 ~nprocs:2 sched)
  done

let test_simultaneous_truncation_flag () =
  (* With a tiny event cap, certification must report truncation instead of
     silently claiming exhaustiveness. *)
  let p = Classic.cas_consensus ~nprocs:2 in
  match Simultaneous.certify ~max_events:1 ~max_crashes:1 ~inputs_list:[ [| 0; 1 |] ] p with
  | Ok (), truncated -> check_bool "truncation reported" true truncated
  | Error _, _ -> Alcotest.fail "no violation expected in one event"

let test_counterexample_truncation_flag () =
  let p = Classic.cas_consensus ~nprocs:2 in
  match Counterexample.certify ~max_events:1 ~z:1 ~inputs_list:[ [| 0; 1 |] ] p with
  | Ok (), truncated -> check_bool "truncation reported" true truncated
  | Error _, _ -> Alcotest.fail "no violation expected in one event"

let test_chain_on_univalent_root () =
  (* The chain walk reports (not guesses) when the start is univalent. *)
  let p = Classic.cas_consensus ~nprocs:2 in
  let ctx = Explore.create ~z:1 p in
  match Explore.theorem13_chain ctx (Explore.root ctx ~inputs:[| 1; 1 |]) with
  | [], Explore.Stuck _ -> ()
  | _ -> Alcotest.fail "expected Stuck on a univalent root"

let test_gallery_argument_validation () =
  let rejects f = check_bool "rejected" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  rejects (fun () -> Gallery.register 1);
  rejects (fun () -> Gallery.swap 1);
  rejects (fun () -> Gallery.fetch_and_add 1);
  rejects (fun () -> Gallery.compare_and_swap 1);
  rejects (fun () -> Gallery.consensus_object 1);
  rejects (fun () -> Gallery.tnn ~n:2 ~n':2);
  rejects (fun () -> Gallery.tnn ~n:1 ~n':0);
  rejects (fun () -> Gallery.team_ladder ~cap:0);
  rejects (fun () -> Gallery.max_register 1);
  rejects (fun () -> Gallery.write_once 1);
  rejects (fun () -> Gallery.opaque_counter 1)

let test_program_validate () =
  let bad : unit Program.t =
    {
      Program.name = "bad-heap";
      nprocs = 1;
      heap = [| (Gallery.register 2, 7) |];
      init = (fun ~proc:_ ~input:_ -> ());
      view = (fun ~proc:_ () -> Program.Decided 0);
    }
  in
  check_bool "heap initial out of range" true
    (try
       Program.validate bad;
       false
     with Invalid_argument _ -> true)

let test_census_space_size_overflow () =
  check_bool "overflow detected" true
    (try
       ignore (Census.space_size { Synth.num_values = 50; num_rws = 50; num_responses = 50 });
       false
     with Invalid_argument _ -> true)

let test_product_value_roundtrip () =
  let a = Gallery.test_and_set and b = Gallery.register 3 in
  let p = Objtype.product a b in
  for v1 = 0 to 1 do
    for v2 = 0 to 2 do
      let v = Objtype.product_value a b (v1, v2) in
      check_bool "in range" true (v >= 0 && v < p.Objtype.num_values)
    done
  done;
  (* joint read decodes the pair *)
  match Objtype.read_decoder p with
  | None -> Alcotest.fail "product with joint read must be readable"
  | Some (op, decode) ->
      let v = Objtype.product_value a b (1, 2) in
      let r, _ = Objtype.apply p v op in
      check_int "joint read round trip" v (decode r)

let suite =
  [
    Alcotest.test_case "dot with unreachable values" `Quick test_dot_all_values;
    Alcotest.test_case "numbers cap validation" `Quick test_numbers_cap_validation;
    Alcotest.test_case "bound printing and equality" `Quick test_bound_printing;
    Alcotest.test_case "analysis pretty printer" `Quick test_analysis_pretty_printer;
    Alcotest.test_case "certificate pretty printer" `Quick test_certificate_pretty_printer;
    Alcotest.test_case "configuration pretty printer" `Quick test_config_pretty_printer;
    Alcotest.test_case "trace pretty printer" `Quick test_trace_pretty_printer;
    Alcotest.test_case "execution determinism" `Quick test_exec_determinism;
    Alcotest.test_case "crash idempotence" `Quick test_crash_idempotence;
    Alcotest.test_case "crash storm respects budget" `Quick test_crash_storm_budget;
    Alcotest.test_case "simultaneous certify reports truncation" `Quick test_simultaneous_truncation_flag;
    Alcotest.test_case "counterexample certify reports truncation" `Quick test_counterexample_truncation_flag;
    Alcotest.test_case "chain walk on univalent root" `Quick test_chain_on_univalent_root;
    Alcotest.test_case "gallery argument validation" `Quick test_gallery_argument_validation;
    Alcotest.test_case "program heap validation" `Quick test_program_validate;
    Alcotest.test_case "census space-size overflow guard" `Quick test_census_space_size_overflow;
    Alcotest.test_case "product value encoding" `Quick test_product_value_roundtrip;
  ]
