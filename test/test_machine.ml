(* Tests for the simulator: configurations, execution semantics, crash
   resets, adversaries and checkers. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A tiny two-phase protocol used throughout: write own input to a
   register, then read it back and decide what is read (the register-race
   negative control from Classic, for 2 processes). *)
let race = Classic.register_race ~nprocs:2
let cas2 = Classic.cas_consensus ~nprocs:2

let test_initial_config () =
  let c = Config.initial race ~inputs:[| 0; 1 |] in
  check_int "register initial" 0 c.Config.values.(0);
  check_bool "nobody decided" true (Config.decisions race c |> Array.for_all (( = ) None));
  Alcotest.check_raises "input arity"
    (Invalid_argument "Config.initial: wrong number of inputs") (fun () ->
      ignore (Config.initial race ~inputs:[| 0 |]))

let test_step_applies_operation () =
  let c = Config.initial race ~inputs:[| 1; 0 |] in
  let c1 = Exec.apply_step race c ~proc:0 in
  (* p0 wrote 1 (encoded 1 + 1 = register value 2) *)
  check_int "register holds announced 1" 2 c1.Config.values.(0);
  let c2 = Exec.apply_step race c1 ~proc:0 in
  (match Config.decided race c2 ~proc:0 with
  | Some v -> check_int "p0 reads own write" 1 v
  | None -> Alcotest.fail "p0 should have decided")

let test_crash_resets_local_state_only () =
  let c = Config.initial race ~inputs:[| 1; 0 |] in
  let c1 = Exec.apply_step race c ~proc:0 in
  let c2 = Exec.apply_crash c1 race ~proc:0 in
  check_int "object value survives crash (NVM)" 2 c2.Config.values.(0);
  check_bool "local state reset to initial" true (c2.Config.locals.(0) = c.Config.locals.(0));
  check_bool "other process untouched" true (c2.Config.locals.(1) = c1.Config.locals.(1))

let test_decided_steps_are_noops () =
  let c = Config.initial race ~inputs:[| 1; 0 |] in
  let c1 = Exec.run_procs race c [ 0; 0 ] in
  check_bool "p0 decided" true (Config.decided race c1 ~proc:0 <> None);
  let c2, trace = Exec.run_schedule race c1 [ Sched.step 0 ] in
  check_bool "config unchanged" true (Config.equal c1 c2);
  (match trace with
  | [ Exec.Stepped { no_op; _ } ] -> check_bool "trace marks no-op" true no_op
  | _ -> Alcotest.fail "expected one step event")

let test_trace_records_responses () =
  let c = Config.initial cas2 ~inputs:[| 0; 1 |] in
  let _, trace = Exec.run_schedule cas2 c Sched.[ step 0; step 1 ] in
  match trace with
  | [ Exec.Stepped s0; Exec.Stepped s1 ] ->
      check_int "p0 saw bot" 0 s0.Exec.response;
      check_int "p1 saw p0's value" 1 s1.Exec.response
  | _ -> Alcotest.fail "expected two step events"

let test_solo_terminate () =
  let c = Config.initial cas2 ~inputs:[| 0; 1 |] in
  let c', steps = Exec.solo_terminate cas2 c ~proc:1 in
  check_int "one step suffices" 1 steps;
  check_bool "decided own input" true (Config.decided cas2 c' ~proc:1 = Some 1);
  (* solo-terminating twice is idempotent *)
  let _, steps' = Exec.solo_terminate cas2 c' ~proc:1 in
  check_int "already decided" 0 steps'

let test_solo_terminate_fuel () =
  (* A program that never decides must trip the fuel guard. *)
  let spin : unit Program.t =
    {
      Program.name = "spin";
      nprocs = 1;
      heap = [| (Gallery.register 2, 0) |];
      init = (fun ~proc:_ ~input:_ -> ());
      view = (fun ~proc:_ () -> Program.Poised { obj = 0; op = 0; next = (fun _ -> ()) });
    }
  in
  let c = Config.initial spin ~inputs:[| 0 |] in
  check_bool "raises" true
    (try
       ignore (Exec.solo_terminate ~fuel:10 spin c ~proc:0);
       false
     with Failure _ -> true)

let test_indistinguishable () =
  let c = Config.initial race ~inputs:[| 1; 0 |] in
  let c0 = Exec.apply_step race c ~proc:0 in
  check_bool "p1 cannot distinguish" true (Config.indistinguishable ~procs:[ 1 ] c c0);
  check_bool "p0 can distinguish" false (Config.indistinguishable ~procs:[ 0 ] c c0);
  check_bool "values differ" false (Config.same_values c c0)

let test_round_robin_adversary () =
  let c = Config.initial cas2 ~inputs:[| 0; 1 |] in
  let adv = Adversary.round_robin ~nprocs:2 in
  let final, sched, out =
    Exec.run_adversary cas2 c
      ~pick:(fun ~decided b -> adv ~decided b)
      ~budget:(Budget.counter ~z:1 ~nprocs:2)
      ~fuel:100 ()
  in
  check_bool "completes" true out.Exec.all_decided;
  check_bool "crash free" true (Sched.crash_free sched);
  check_bool "consensus" true (Checker.is_ok (Checker.consensus cas2 final))

let test_random_adversary_respects_budget () =
  let c = Config.initial cas2 ~inputs:[| 0; 1 |] in
  for seed = 1 to 20 do
    let adv = Adversary.random ~crash_prob:0.5 ~seed ~nprocs:2 in
    let _, sched, _ =
      Exec.run_adversary cas2 c
        ~pick:(fun ~decided b -> adv ~decided b)
        ~budget:(Budget.counter ~z:1 ~nprocs:2)
        ~fuel:200 ()
    in
    check_bool
      (Printf.sprintf "schedule within E_1^* (seed %d)" seed)
      true
      (Budget.within_e_z_star ~z:1 ~nprocs:2 sched)
  done

let test_replay_adversary () =
  let c = Config.initial cas2 ~inputs:[| 0; 1 |] in
  let sched = Sched.[ step 1; step 0 ] in
  let adv = Adversary.replay sched in
  let final, sched', out =
    Exec.run_adversary cas2 c
      ~pick:(fun ~decided b -> adv ~decided b)
      ~budget:(Budget.counter ~z:1 ~nprocs:2)
      ~fuel:100 ()
  in
  check_bool "replayed exactly" true (sched = sched');
  check_bool "all decided" true out.Exec.all_decided;
  check_bool "p1 won" true (Config.decided cas2 final ~proc:0 = Some 1)

let test_crash_storm_never_crashes_p0 () =
  (* The asymmetry documented in adversary.mli: p0 is crash-free by the
     E_z^* budget itself (its headroom is financed by strictly
     higher-priority steps, and nothing ranks above p0), so crash_storm's
     headroom scan starting at p = 1 is an optimization, not a policy. *)
  check_int "p0 headroom is identically zero" 0
    (Budget.crash_headroom (Budget.counter ~z:3 ~nprocs:4) 0);
  List.iter
    (fun (nprocs, period) ->
      let p = Classic.cas_consensus ~nprocs in
      let c = Config.initial p ~inputs:(Array.init nprocs (fun i -> i mod 2)) in
      for seed = 1 to 10 do
        let adv = Adversary.crash_storm ~period ~seed ~nprocs in
        let _, sched, _ =
          Exec.run_adversary p c
            ~pick:(fun ~decided b -> adv ~decided b)
            ~budget:(Budget.counter ~z:2 ~nprocs)
            ~fuel:300 ()
        in
        check_int
          (Printf.sprintf "nprocs=%d period=%d seed=%d: p0 never crashed" nprocs
             period seed)
          0
          (Sched.crashes_of sched 0);
        check_bool
          (Printf.sprintf "nprocs=%d period=%d seed=%d: within E_2^*" nprocs period
             seed)
          true
          (Budget.within_e_z_star ~z:2 ~nprocs sched)
      done)
    [ (2, 2); (3, 2); (4, 3) ]

let test_rwf_accounting () =
  (* The spin program exceeds any recoverable wait-freedom bound. *)
  let spin : unit Program.t =
    {
      Program.name = "spin1";
      nprocs = 1;
      heap = [| (Gallery.register 2, 0) |];
      init = (fun ~proc:_ ~input:_ -> ());
      view = (fun ~proc:_ () -> Program.Poised { obj = 0; op = 0; next = (fun _ -> ()) });
    }
  in
  let c = Config.initial spin ~inputs:[| 0 |] in
  let adv = Adversary.round_robin ~nprocs:1 in
  let _, _, out =
    Exec.run_adversary spin c
      ~pick:(fun ~decided b -> adv ~decided b)
      ~budget:(Budget.counter ~z:1 ~nprocs:1)
      ~rwf_bound:5 ~fuel:50 ()
  in
  match out.Exec.rwf_violation with
  | Some (0, steps) -> check_bool "exceeded bound" true (steps > 5)
  | _ -> Alcotest.fail "expected a recoverable wait-freedom violation"

let test_checkers () =
  let c = Config.initial race ~inputs:[| 1; 0 |] in
  (* The race: both read their own write -> disagreement. *)
  let final = Exec.run_procs race c [ 0; 0; 1; 1 ] in
  check_bool "agreement violated" false (Checker.is_ok (Checker.agreement race final));
  check_bool "validity fine" true (Checker.is_ok (Checker.validity race final));
  check_bool "all decided" true (Checker.is_ok (Checker.all_decided race final));
  check_bool "message present" true (Checker.message (Checker.agreement race final) <> None);
  (* first mover *)
  check_bool "first mover" true (Checker.first_mover Sched.[ crash 1; step 1; step 0 ] = Some 1);
  check_bool "no mover" true (Checker.first_mover [ Sched.crash 1 ] = None)

let test_election_checker () =
  (* A fake 2-process program whose processes decide fixed teams. *)
  let fixed : int Program.t =
    {
      Program.name = "fixed";
      nprocs = 2;
      heap = [| (Gallery.register 2, 0) |];
      init = (fun ~proc ~input:_ -> proc);
      view = (fun ~proc:_ team -> Program.Decided team);
    }
  in
  let c = Config.initial fixed ~inputs:[| 0; 0 |] in
  check_bool "winner team 0 flags p1" false
    (Checker.is_ok (Checker.election ~winner_team:0 fixed c));
  let uniform = { fixed with Program.init = (fun ~proc:_ ~input:_ -> 1) } in
  let c = Config.initial uniform ~inputs:[| 0; 0 |] in
  check_bool "all team 1 ok" true (Checker.is_ok (Checker.election ~winner_team:1 uniform c))

let test_register_heap_helper () =
  let heap = Program.register_heap ~registers:2 ~register_values:3 (Gallery.test_and_set, 0) in
  check_int "three objects" 3 (Array.length heap);
  check_bool "main first" true ((fst heap.(0)).Objtype.name = "test-and-set");
  check_bool "registers after" true ((fst heap.(1)).Objtype.name = "register-3")

let suite =
  [
    Alcotest.test_case "initial configurations" `Quick test_initial_config;
    Alcotest.test_case "steps apply operations" `Quick test_step_applies_operation;
    Alcotest.test_case "crashes reset local state, keep objects" `Quick test_crash_resets_local_state_only;
    Alcotest.test_case "steps of decided processes are no-ops" `Quick test_decided_steps_are_noops;
    Alcotest.test_case "traces record responses" `Quick test_trace_records_responses;
    Alcotest.test_case "solo-terminating executions" `Quick test_solo_terminate;
    Alcotest.test_case "solo termination fuel guard" `Quick test_solo_terminate_fuel;
    Alcotest.test_case "indistinguishability" `Quick test_indistinguishable;
    Alcotest.test_case "round-robin adversary" `Quick test_round_robin_adversary;
    Alcotest.test_case "random adversary respects E_z^*" `Quick test_random_adversary_respects_budget;
    Alcotest.test_case "replay adversary" `Quick test_replay_adversary;
    Alcotest.test_case "crash storm never crashes p0" `Quick
      test_crash_storm_never_crashes_p0;
    Alcotest.test_case "recoverable wait-freedom accounting" `Quick test_rwf_accounting;
    Alcotest.test_case "consensus checkers" `Quick test_checkers;
    Alcotest.test_case "election checker" `Quick test_election_checker;
    Alcotest.test_case "register heap helper" `Quick test_register_heap_helper;
  ]
