(* Tests for the gallery of canned types, in particular the paper's
   T_{n,n'} (Section 4) whose state machine is the paper's Figure 3. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let apply = Objtype.apply

let test_all_well_formed () =
  (* Gallery.all only returns values constructed through Objtype.make, so
     existence is enough; additionally check names are unique and lookup
     works. *)
  let entries = Gallery.all () in
  let names = List.map fst entries in
  check_int "unique names" (List.length names) (List.length (List.sort_uniq compare names));
  List.iter
    (fun (name, ty) ->
      match Gallery.find name with
      | Some ty' -> check_bool name true (Objtype.equal_behaviour ty ty')
      | None -> Alcotest.failf "lookup of %s failed" name)
    entries;
  check_bool "unknown lookup" true (Gallery.find "no-such-type" = None)

let test_resolve () =
  let contains ~needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    n = 0 || scan 0
  in
  (match Gallery.resolve "test-and-set" with
  | Ok ty -> check_bool "gallery name" true (Objtype.equal_behaviour ty Gallery.test_and_set)
  | Error (`Msg m) -> Alcotest.failf "gallery name failed: %s" m);
  (match Gallery.resolve "no-such-type" with
  | Error (`Msg m) -> check_bool "error lists available names" true (contains ~needle:"test-and-set" m)
  | Ok _ -> Alcotest.fail "unknown name resolved");
  (* a specification file written by `rcn synth --save` round-trips *)
  let path = Filename.temp_file "rcn-gallery" ".spec" in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Objtype.to_spec_string Gallery.test_and_set));
  (match Gallery.resolve path with
  | Ok ty -> check_bool "spec file" true (Objtype.equal_behaviour ty Gallery.test_and_set)
  | Error (`Msg m) -> Alcotest.failf "spec file failed: %s" m);
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc "not a spec");
  (match Gallery.resolve path with
  | Error (`Msg m) -> check_bool "parse error names the file" true (contains ~needle:path m)
  | Ok _ -> Alcotest.fail "garbage resolved");
  Sys.remove path

let test_register () =
  let r = Gallery.register 3 in
  (* write then read *)
  let _, v = apply r 0 (1 + 2) in
  check_int "written" 2 v;
  let resp, v' = apply r 2 0 in
  check_int "read resp encodes value" 3 resp;
  check_int "read preserves" 2 v'

let test_test_and_set () =
  let t = Gallery.test_and_set in
  let r1, v1 = apply t 0 0 in
  check_int "first tas wins" 0 r1;
  check_int "bit set" 1 v1;
  let r2, v2 = apply t 1 0 in
  check_int "second tas loses" 1 r2;
  check_int "bit stays" 1 v2

let test_swap_and_faa () =
  let s = Gallery.swap 3 in
  let r, v = apply s 1 (1 + 2) in
  check_int "swap returns old" 1 r;
  check_int "swap installs" 2 v;
  let f = Gallery.fetch_and_add 4 in
  let r, v = apply f 3 1 in
  check_int "faa returns old" 3 r;
  check_int "faa wraps" 0 v

let test_cas () =
  let c = Gallery.compare_and_swap 3 in
  let cas a b = (a * 3) + b in
  let r, v = apply c 0 (cas 0 2) in
  check_int "cas success returns old" 0 r;
  check_int "cas success installs" 2 v;
  let r, v = apply c 2 (cas 0 1) in
  check_int "cas failure returns old" 2 r;
  check_int "cas failure preserves" 2 v

let test_sticky_bit () =
  let s = Gallery.sticky_bit in
  let r, v = apply s 0 1 in
  check_int "first set sticks 1" 1 r;
  check_int "stuck value" 2 v;
  let r, v' = apply s 2 0 in
  check_int "later set returns stuck" 1 r;
  check_int "value unchanged" 2 v'

let test_write_once_and_max_register () =
  let w = Gallery.write_once 2 in
  let r, v = apply w 0 1 in
  check_int "first write sticks" 1 r;
  check_int "stuck value" 2 v;
  let r, v' = apply w 2 0 in
  check_int "later writes report sticky" 1 r;
  check_int "unchanged" 2 v';
  let m = Gallery.max_register 3 in
  let _, v = apply m 2 (1 + 1) in
  check_int "write below max is absorbed" 2 v;
  let _, v = apply m 1 (1 + 2) in
  check_int "write above max wins" 2 v

let test_queue_fifo () =
  let q = Gallery.bounded_queue () in
  let _, v = apply q 0 0 in
  let _, v = apply q v 1 in
  (* queue now [0;1]; enqueue on full *)
  let r, v' = apply q v 0 in
  check_int "full response" 1 r;
  check_int "full preserves" v v';
  let r, v = apply q v 2 in
  check_int "deq head" 3 r;
  let r, v = apply q v 2 in
  check_int "deq second" 4 r;
  let r, _ = apply q v 2 in
  check_int "deq empty" 2 r

(* ------------------------------------------------------------------ *)
(* T_{n,n'}: the paper's Section 4 definition, transition by transition. *)

let test_tnn_structure () =
  let n = 5 and n' = 2 in
  let t = Gallery.tnn ~n ~n' in
  check_int "2n values (paper)" (2 * n) t.Objtype.num_values;
  check_int "three operations" 3 t.Objtype.num_ops;
  check_bool "not readable" false (Objtype.is_readable t)

let test_tnn_op_x () =
  let n = 5 and n' = 2 in
  let t = Gallery.tnn ~n ~n' in
  let op0 = Gallery.tnn_op `Op0 and op1 = Gallery.tnn_op `Op1 in
  (* "Applying op_0 to an object with value s returns 0 and changes its
     value to s_{0,1}" *)
  let r, v = apply t Gallery.tnn_s op0 in
  check_int "op_0 on s returns 0" 0 r;
  check_int "moves to s_{0,1}" (Gallery.tnn_value ~n ~x:0 ~i:1) v;
  let r, v = apply t Gallery.tnn_s op1 in
  check_int "op_1 on s returns 1" 1 r;
  check_int "moves to s_{1,1}" (Gallery.tnn_value ~n ~x:1 ~i:1) v;
  (* "Applying either op_0 or op_1 to an object with value s_{x,i}, i < n-1,
     returns x and changes its value to s_{x,i+1}" *)
  for x = 0 to 1 do
    for i = 1 to n - 2 do
      List.iter
        (fun op ->
          let r, v = apply t (Gallery.tnn_value ~n ~x ~i) op in
          check_int "returns x" x r;
          check_int "increments i" (Gallery.tnn_value ~n ~x ~i:(i + 1)) v)
        [ op0; op1 ]
    done;
    (* "Applying either op_0 or op_1 to s_{x,n-1} returns x and changes the
       value to s_bot" *)
    let r, v = apply t (Gallery.tnn_value ~n ~x ~i:(n - 1)) op0 in
    check_int "cap returns x" x r;
    check_int "cap moves to bot" Gallery.tnn_bot v
  done;
  (* "When the object has value s_bot, applying any operation returns bot" *)
  List.iter
    (fun op ->
      let r, v = apply t Gallery.tnn_bot op in
      check_bool "bot response" true (Gallery.tnn_response ~n r = `Bot);
      check_int "stays bot" Gallery.tnn_bot v)
    [ op0; op1; Gallery.tnn_op `OpR ]

let test_tnn_op_r () =
  let n = 5 and n' = 2 in
  let t = Gallery.tnn ~n ~n' in
  let opr = Gallery.tnn_op `OpR in
  (* "when an object has value s, applying op_R returns s and does not
     change the value" *)
  let r, v = apply t Gallery.tnn_s opr in
  check_bool "reads s" true (Gallery.tnn_response ~n r = `Value Gallery.tnn_s);
  check_int "s unchanged" Gallery.tnn_s v;
  (* "Applying op_R when the object has value s_{x,i} where i <= n' returns
     s_{x,i} and does not change the value" *)
  for x = 0 to 1 do
    for i = 1 to n' do
      let w = Gallery.tnn_value ~n ~x ~i in
      let r, v = apply t w opr in
      check_bool "reads s_{x,i}" true (Gallery.tnn_response ~n r = `Value w);
      check_int "unchanged" w v
    done;
    (* "If i > n', applying op_R ... returns bot and changes its value to
       s_bot" — the destructive case making the type non-readable. *)
    for i = n' + 1 to n - 1 do
      let w = Gallery.tnn_value ~n ~x ~i in
      let r, v = apply t w opr in
      check_bool "destroyed" true (Gallery.tnn_response ~n r = `Bot);
      check_int "to bot" Gallery.tnn_bot v
    done
  done

let test_tnn_team_decode () =
  let n = 5 in
  check_bool "s has no team" true (Gallery.tnn_team_of_value ~n Gallery.tnn_s = None);
  check_bool "bot has no team" true (Gallery.tnn_team_of_value ~n Gallery.tnn_bot = None);
  for x = 0 to 1 do
    for i = 1 to n - 1 do
      check_bool "team decoded" true
        (Gallery.tnn_team_of_value ~n (Gallery.tnn_value ~n ~x ~i) = Some x)
    done
  done

let test_tnn_figure3_edges () =
  (* Figure 3 draws T_{5,2} restricted to values reachable from s: all 10
     values are reachable, and merged edges per distinct (src, dst) pair. *)
  let t = Gallery.tnn ~n:5 ~n':2 in
  check_int "all values reachable" 10 (List.length (Objtype.reachable_values t ~from:0));
  (* per value: s: s->s (op_R) and s->s01, s->s11 = 3 edges; bot: 1 self
     edge; s_{x,1}, s_{x,2}: self (op_R) + advance = 2 each; s_{x,3}:
     advance + to-bot(op_R) = 2; s_{x,4}: to-bot (both op_x and op_R merge)
     = 1.  Total 3 + 1 + 2*(2+2+2+1) = 18. *)
  check_int "figure 3 edge count" 18 (Dot.edge_count t)

let test_team_ladder () =
  let t = Gallery.team_ladder ~cap:2 in
  check_bool "readable" true (Objtype.is_readable t);
  check_int "values" 6 t.Objtype.num_values;
  (* chains carry the team of the first op *)
  let responses, final = Objtype.apply_schedule t 0 [ 0; 1; 1 ] in
  Alcotest.(check (list int)) "all respond team 0" [ 0; 0; 0 ] responses;
  check_int "capped to bot" 1 final

let test_x4_witness_table () =
  let t = Gallery.x4_witness in
  check_bool "readable" true (Objtype.is_readable t);
  check_int "five values" 5 t.Objtype.num_values;
  (* the hiding pattern: one op then two crosses restores u *)
  let _, v = Objtype.apply_schedule t 0 [ 0; 2; 3 ] in
  check_int "a1 b1 b2 restores u" 0 v;
  let _, v = Objtype.apply_schedule t 0 [ 2; 0; 1 ] in
  check_int "b1 a1 a2 restores u" 0 v;
  (* same-side ops are idle on rungs *)
  let _, v = Objtype.apply_schedule t 0 [ 0; 1; 1 ] in
  check_int "a-chain idles at A1" 1 v

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_dot_output () =
  let dot = Dot.to_dot Gallery.test_and_set in
  check_bool "digraph present" true (contains ~needle:"digraph" dot);
  check_bool "mentions tas" true (contains ~needle:"tas" dot);
  check_bool "initial value double circled" true (contains ~needle:"doublecircle" dot);
  let ascii = Dot.to_ascii Gallery.test_and_set in
  check_bool "ascii mentions unset" true (contains ~needle:"unset" ascii)

let suite =
  [
    Alcotest.test_case "gallery is well formed with unique names" `Quick test_all_well_formed;
    Alcotest.test_case "resolve: names, spec files, errors" `Quick test_resolve;
    Alcotest.test_case "register semantics" `Quick test_register;
    Alcotest.test_case "test-and-set semantics" `Quick test_test_and_set;
    Alcotest.test_case "swap and fetch-and-add semantics" `Quick test_swap_and_faa;
    Alcotest.test_case "compare-and-swap semantics" `Quick test_cas;
    Alcotest.test_case "sticky bit semantics" `Quick test_sticky_bit;
    Alcotest.test_case "write-once and max-register semantics" `Quick test_write_once_and_max_register;
    Alcotest.test_case "bounded queue is FIFO" `Quick test_queue_fifo;
    Alcotest.test_case "T_{n,n'} structure (paper Section 4)" `Quick test_tnn_structure;
    Alcotest.test_case "T_{n,n'} op_0/op_1 transitions" `Quick test_tnn_op_x;
    Alcotest.test_case "T_{n,n'} op_R transitions" `Quick test_tnn_op_r;
    Alcotest.test_case "T_{n,n'} team decoding" `Quick test_tnn_team_decode;
    Alcotest.test_case "Figure 3 state machine of T_{5,2}" `Quick test_tnn_figure3_edges;
    Alcotest.test_case "team ladder" `Quick test_team_ladder;
    Alcotest.test_case "x4 witness transition table" `Quick test_x4_witness_table;
    Alcotest.test_case "dot rendering" `Quick test_dot_output;
  ]
