(* The daemon end to end, in process: a real Unix-socket listener, real
   connection threads, the scheduler-owned pool, and the persistent
   store underneath.

   The contracts exercised here are the serve tentpole's acceptance
   criteria: concurrent clients with mixed requests all get correct
   answers; a repeat analyze query is served from the store with bytes
   identical to the cold run; the store log survives a torn tail (the
   kill -9 shape) and a restarted daemon keeps serving the pinned
   results; a stopped daemon refuses new work and exits cleanly. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let with_tmpdir f =
  let dir = Filename.temp_file "rcn-serve" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with _ -> ()) (Sys.readdir dir);
      try Unix.rmdir dir with _ -> ())
    (fun () -> f dir)

(* Start a daemon, run [f socket], stop the daemon and join its thread.
   Returns [f]'s result after a clean shutdown. *)
let with_daemon ?queue_limit ~dir f =
  let socket = Filename.concat dir "rcn.sock" in
  let store = Filename.concat dir "rcn.store" in
  let obs = Obs.create () in
  let daemon = Serve.create ?queue_limit ~jobs:2 ~obs ~socket ~store () in
  let runner = Thread.create Serve.run daemon in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Serve.stop daemon;
        Thread.join runner)
      (fun () -> f ~obs ~socket)
  in
  check_bool "socket removed on shutdown" false (Sys.file_exists socket);
  result

let analyze_request ?(cap = 3) ty =
  Api.Request.Analyze
    { spec = Objtype.to_spec_string ty; config = Api.Config.v ~cap () }

let call socket req =
  match Client.one_shot ~socket req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "transport failure: %s" e

let analysis_bytes = function
  | { Api.Response.body = Api.Response.Analysis { analysis; from_store }; _ } ->
      (Wire.to_string (Api.analysis_to_json analysis), from_store)
  | r -> Alcotest.failf "not an analysis response: %s" (Api.Response.to_string r)

let test_single_client_basics () =
  with_tmpdir @@ fun dir ->
  with_daemon ~dir @@ fun ~obs:_ ~socket ->
  (match call socket Api.Request.Ping with
  | { Api.Response.body = Api.Response.Pong; _ } -> ()
  | r -> Alcotest.failf "ping got %s" (Api.Response.to_string r));
  (* Cold analyze computes; the repeat is a store hit, byte-identical. *)
  let cold = call socket (analyze_request Gallery.test_and_set) in
  let cold_bytes, cold_from_store = analysis_bytes cold in
  check_bool "cold run is not a store hit" false cold_from_store;
  let warm = call socket (analyze_request Gallery.test_and_set) in
  let warm_bytes, warm_from_store = analysis_bytes warm in
  check_bool "repeat query is served from the store" true warm_from_store;
  check_string "store replay is byte-identical" cold_bytes warm_bytes;
  (* A different cap is a different content address: computed, not hit. *)
  let other = call socket (analyze_request ~cap:2 Gallery.test_and_set) in
  check_bool "different cap misses the store" false (snd (analysis_bytes other));
  (* Metrics arrive as an embedded rcn_stats object counting the hit. *)
  (match call socket Api.Request.Metrics with
  | { Api.Response.body = Api.Response.Metrics json; _ } -> (
      check_bool "stats tag present" true
        (match Wire.member "rcn_stats" json with Some (Wire.Int 1) -> true | _ -> false);
      match Wire.member "counters" json with
      | Some (Wire.Obj counters) ->
          check_bool "store.hits counter is nonzero" true
            (match List.assoc_opt "store.hits" counters with
            | Some (Wire.Int n) -> n > 0
            | _ -> false)
      | _ -> Alcotest.fail "metrics reply has no counters object")
  | r -> Alcotest.failf "metrics got %s" (Api.Response.to_string r));
  (* An invalid config is refused with the CLI's usage exit code. *)
  let bad =
    call socket
      (Api.Request.Analyze
         {
           spec = Objtype.to_spec_string Gallery.test_and_set;
           config = { Api.Config.default with cap = 1 };
         })
  in
  check_int "invalid config is exit 2" 2 (Api.Response.exit_code bad);
  (* A malformed spec is an error response, not a dead connection. *)
  let broken =
    call socket (Api.Request.Analyze { spec = "nonsense"; config = Api.Config.default })
  in
  check_bool "malformed spec is an error response" true
    (match broken.Api.Response.body with Api.Response.Error _ -> true | _ -> false)

let test_mixed_requests_run () =
  with_tmpdir @@ fun dir ->
  with_daemon ~dir @@ fun ~obs:_ ~socket ->
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  (match
     call socket
       (Api.Request.Census
          {
            space;
            sample = None;
            seed = 0;
            checkpoint = None;
            resume = false;
            durable = false;
            config = Api.Config.v ~cap:3 ();
          })
   with
  | { Api.Response.body = Api.Response.Census summary; _ } as r ->
      check_bool "census complete" true summary.Api.Response.complete;
      check_int "census covers the space" (Census.space_size space)
        summary.Api.Response.completed;
      check_int "complete census exits 0" 0 (Api.Response.exit_code r);
      check_bool "histogram matches the sequential census" true
        (summary.Api.Response.entries = Census.exhaustive ~cap:3 space)
  | r -> Alcotest.failf "census got %s" (Api.Response.to_string r));
  (* Sampled census: bounded work on a daemon, deterministic for a seed. *)
  (match
     call socket
       (Api.Request.Census
          {
            space;
            sample = Some 16;
            seed = 5;
            checkpoint = None;
            resume = false;
            durable = false;
            config = Api.Config.v ~cap:3 ();
          })
   with
  | { Api.Response.body = Api.Response.Census summary; _ } ->
      check_int "sampled census counts its sample" 16 summary.Api.Response.completed;
      check_bool "sampled census is complete" true summary.Api.Response.complete
  | r -> Alcotest.failf "sampled census got %s" (Api.Response.to_string r));
  match
    call socket
      (Api.Request.Synth
         {
           space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 };
           target = 4;
           seed = 1;
           iterations = 2000;
           restart_every = None;
           portfolio = 2;
           config = Api.Config.default;
         })
  with
  | { Api.Response.body = Api.Response.Synth { witness = Some w }; _ } ->
      check_bool "synth witness verifies" true
        (Synth.verify_witness ~target:4 w.Synth.objtype)
  | r -> Alcotest.failf "synth got %s" (Api.Response.to_string r)

let test_concurrent_clients () =
  (* N threads hammer the daemon with interleaved pings, analyzes and
     repeats.  Every thread must see the same analysis bytes for the
     same query, and by the end the repeats are store hits. *)
  with_tmpdir @@ fun dir ->
  let types = [ Gallery.test_and_set; Gallery.team_ladder ~cap:2; Gallery.register 2 ] in
  let reference = List.map (Numbers.analyze ~cap:3) types in
  with_daemon ~dir @@ fun ~obs ~socket ->
  let n_threads = 6 and rounds = 3 in
  let failures = Atomic.make 0 in
  let fail_once () = Atomic.incr failures in
  (* Every response's canonical bytes, per type, across all threads:
     the store replay contract says each type has exactly one byte
     string, whoever asks and whenever.  ([elapsed] is wall-clock, so
     equality against an out-of-daemon encoding is *not* expected —
     [Analysis.equal] covers the semantics, the byte sets the replay.) *)
  let seen = Array.make (List.length types) [] in
  let seen_m = Mutex.create () in
  let record j bytes =
    Mutex.protect seen_m (fun () ->
        if not (List.mem bytes seen.(j)) then seen.(j) <- bytes :: seen.(j))
  in
  let worker i () =
    Client.with_client socket @@ fun client ->
    for round = 1 to rounds do
      (match Client.call client Api.Request.Ping with
      | Ok { Api.Response.body = Api.Response.Pong; _ } -> ()
      | _ -> fail_once ());
      let indexed = List.mapi (fun j ty -> (j, ty)) types in
      List.iter
        (fun (j, ty) ->
          match Client.call client (analyze_request ty) with
          | Ok
              ({ Api.Response.body = Api.Response.Analysis { analysis; _ }; _ } as r)
            ->
              record j (fst (analysis_bytes r));
              if not (Analysis.equal analysis (List.nth reference j)) then fail_once ()
          | _ -> fail_once ())
        (if (i + round) mod 2 = 0 then indexed else List.rev indexed)
    done
  in
  let threads = List.init n_threads (fun i -> Thread.create (worker i) ()) in
  List.iter Thread.join threads;
  check_int "every concurrent response matched the sequential reference" 0
    (Atomic.get failures);
  Array.iteri
    (fun j bytes ->
      check_int
        (Printf.sprintf "type %d: one byte string across every client" j)
        1 (List.length bytes))
    seen;
  let hits = Obs.Metrics.Counter.value (Obs.counter obs "store.hits") in
  check_bool
    (Printf.sprintf "repeat queries hit the store (%d hits)" hits)
    true
    (hits >= (n_threads * rounds * List.length types) - List.length types);
  check_int "the store holds one record per distinct query" (List.length types)
    (Obs.Metrics.Counter.value (Obs.counter obs "store.puts"))

let test_store_survives_restart_and_torn_tail () =
  with_tmpdir @@ fun dir ->
  let store_path = Filename.concat dir "rcn.store" in
  (* First daemon: compute and persist. *)
  let cold_bytes =
    with_daemon ~dir @@ fun ~obs:_ ~socket ->
    fst (analysis_bytes (call socket (analyze_request Gallery.x4_witness)))
  in
  (* Crash shape: a torn half-record appended to the log, as a daemon
     killed mid-put leaves. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 store_path in
  output_string oc "rcnstore3 deadbeef 999 00000000\ntorn";
  close_out oc;
  (* Second daemon: recovery must drop the tail, keep the record, and
     serve the repeat from the store byte-identically. *)
  with_daemon ~dir @@ fun ~obs ~socket ->
  let warm = call socket (analyze_request Gallery.x4_witness) in
  let warm_bytes, from_store = analysis_bytes warm in
  check_bool "restarted daemon serves from the recovered store" true from_store;
  check_string "bytes identical across restart and crash" cold_bytes warm_bytes;
  check_bool "the torn tail was counted" true
    (Obs.Metrics.Counter.value (Obs.counter obs "store.torn_bytes") > 0)

let test_stopped_daemon_refuses_engine_work () =
  with_tmpdir @@ fun dir ->
  let socket = Filename.concat dir "rcn.sock" in
  let store = Filename.concat dir "rcn.store" in
  let daemon = Serve.create ~jobs:1 ~socket ~store () in
  let runner = Thread.create Serve.run daemon in
  (match call socket Api.Request.Ping with
  | { Api.Response.body = Api.Response.Pong; _ } -> ()
  | r -> Alcotest.failf "ping got %s" (Api.Response.to_string r));
  Serve.stop daemon;
  Thread.join runner;
  (* The socket is gone: connecting now fails at the transport. *)
  check_bool "stopped daemon is unreachable" true
    (match Client.one_shot ~socket Api.Request.Ping with
    | Error _ -> true
    | Ok _ -> false
    | exception Unix.Unix_error _ -> true)

let test_raw_frame_protocol () =
  (* Drive the wire by hand (what tools/serve_client.ml does): a frame
     is the ASCII payload length, a newline, and the payload. *)
  with_tmpdir @@ fun dir ->
  with_daemon ~dir @@ fun ~obs:_ ~socket ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let payload = Api.Request.to_string Api.Request.Ping in
  let frame = Printf.sprintf "%d\n%s" (String.length payload) payload in
  ignore (Unix.write_substring fd frame 0 (String.length frame));
  (match Frame.read fd with
  | Frame.Frame reply ->
      check_string "raw pong reply" reply
        (Api.Response.to_string (Api.Response.make Api.Response.Pong))
  | _ -> Alcotest.fail "no framed reply");
  (* Garbage payloads get a framed error, not a hangup. *)
  let junk = "12\nthis-is-junk" in
  ignore (Unix.write_substring fd junk 0 (String.length junk));
  match Frame.read fd with
  | Frame.Frame reply -> (
      match Api.Response.of_string reply with
      | Ok { Api.Response.body = Api.Response.Error _; _ } -> ()
      | _ -> Alcotest.fail "junk should produce an error response")
  | _ -> Alcotest.fail "no framed error reply"

(* Census and synth results are memoized like analyses: the cold run
   publishes its canonical body bytes to the store, the warm repeat
   replays them byte-identically, and a deadline-bearing query (whose
   result is timing-dependent) never touches the store. *)
let test_census_synth_memoized () =
  with_tmpdir @@ fun dir ->
  with_daemon ~dir @@ fun ~obs ~socket ->
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let census_req ?deadline () =
    Api.Request.Census
      {
        space;
        sample = None;
        seed = 0;
        checkpoint = None;
        resume = false;
        durable = false;
        config = Api.Config.v ~cap:3 ?deadline ();
      }
  in
  let census_bytes = function
    | { Api.Response.body = Api.Response.Census c; _ } ->
        Wire.to_string (Api.Response.census_summary_to_json c)
    | r -> Alcotest.failf "not a census response: %s" (Api.Response.to_string r)
  in
  let puts () = Obs.Metrics.Counter.value (Obs.counter obs "store.puts") in
  let cold = census_bytes (call socket (census_req ())) in
  check_int "cold census published one record" 1 (puts ());
  let warm = census_bytes (call socket (census_req ())) in
  check_string "warm census replays the cold bytes" cold warm;
  check_int "warm census published nothing" 1 (puts ());
  (* A sampled run is its own query — and is memoized too, being
     deterministic in (sample, seed). *)
  let sampled seed =
    census_bytes
      (call socket
         (Api.Request.Census
            {
              space;
              sample = Some 16;
              seed;
              checkpoint = None;
              resume = false;
              durable = false;
              config = Api.Config.v ~cap:3 ();
            }))
  in
  let s_cold = sampled 7 in
  check_int "sampled census published its own record" 2 (puts ());
  check_string "sampled census replays byte-identically" s_cold (sampled 7);
  check_int "sampled replay published nothing" 2 (puts ());
  (* A deadline-bearing census bypasses the store entirely: no new
     record even though it completed. *)
  let deadline = census_bytes (call socket (census_req ~deadline:60.0 ())) in
  check_int "deadline census is never published" 2 (puts ());
  check_bool "deadline census still computes" true (String.length deadline > 0);
  (* Synth: cold computes and publishes; warm replays the witness
     byte-identically (including its schedule trace). *)
  let synth_req () =
    Api.Request.Synth
      {
        space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 };
        target = 4;
        seed = 1;
        iterations = 2000;
        restart_every = None;
        portfolio = 2;
        config = Api.Config.default;
      }
  in
  let synth_bytes = function
    | { Api.Response.body = Api.Response.Synth { witness }; _ } ->
        Wire.to_string (Api.Response.witness_opt_to_json witness)
    | r -> Alcotest.failf "not a synth response: %s" (Api.Response.to_string r)
  in
  let synth_cold = synth_bytes (call socket (synth_req ())) in
  check_int "cold synth published one record" 3 (puts ());
  check_string "warm synth replays the cold bytes" synth_cold
    (synth_bytes (call socket (synth_req ())));
  check_int "warm synth published nothing" 3 (puts ())

(* Satellite: the daemon must survive arbitrary bytes on the wire — a
   fuzzing client can never crash it, hang it, or wedge the listener.
   Every adversarial connection is drained to EOF under a timeout, and
   the daemon must still answer a well-formed ping afterwards. *)
let test_frame_robustness () =
  with_tmpdir @@ fun dir ->
  with_daemon ~dir @@ fun ~obs ~socket ->
  (* Write [bytes], half-close, and drain whatever the daemon replies.
     Returns true iff the daemon closed the connection (no hang). *)
  let poke bytes =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
    @@ fun () ->
    Unix.connect fd (Unix.ADDR_UNIX socket);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
    (try ignore (Unix.write_substring fd bytes 0 (String.length bytes))
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND
     with Unix.Unix_error _ -> ());
    let buf = Bytes.create 4096 in
    let rec drain () =
      match Unix.read fd buf 0 4096 with
      | 0 -> true
      | _ -> drain ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          false (* timeout: the daemon is hanging on to a dead client *)
    in
    drain ()
  in
  let alive label =
    match Client.one_shot ~socket Api.Request.Ping with
    | Ok { Api.Response.body = Api.Response.Pong; _ } -> ()
    | _ -> Alcotest.failf "daemon unresponsive after %s" label
  in
  (* The known adversarial shapes, each followed by a liveness probe. *)
  List.iter
    (fun (label, bytes) ->
      check_bool (label ^ " is drained to EOF") true (poke bytes);
      alive label)
    [
      ("an immediate EOF", "");
      ("header garbage", "this is not a frame at all");
      ("a binary blob", "\x00\xff\x7f\x01\n\x00garbage");
      ("a truncated payload", "100\nonly a few bytes");
      ("a negative length", "-5\nxx");
      ("an oversized length", "999999999\n");
      ("a non-numeric length", "twelve\npayload");
      ("an overlong header", String.make 64 '1' ^ "\n");
      ("junk JSON in a valid frame", "13\nthis-is-junk!");
      ( "a valid ping then garbage",
        (let p = Api.Request.to_string Api.Request.Ping in
         Printf.sprintf "%d\n%s@@broken@@" (String.length p) p) );
    ];
  check_bool "bad frames were counted" true
    (Obs.Metrics.Counter.value (Obs.counter obs "serve.bad_frames") > 0);
  (* And the property at large: random byte strings, with newlines and
     digits frequent enough to explore the framing state machine. *)
  let gen =
    QCheck.Gen.(
      string_size ~gen:(frequency [ (8, char); (2, oneofl [ '\n'; '0'; '1'; '9' ]) ])
        (0 -- 128))
  in
  let prop s =
    if not (poke s) then QCheck.Test.fail_reportf "daemon hung on %S" s;
    (match Client.one_shot ~socket Api.Request.Ping with
    | Ok { Api.Response.body = Api.Response.Pong; _ } -> ()
    | _ -> QCheck.Test.fail_reportf "daemon died after %S" s);
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:60 ~name:"random bytes never wedge the daemon"
       (QCheck.make gen) prop)

let suite =
  [
    Alcotest.test_case "single client: store hit is byte-identical" `Quick
      test_single_client_basics;
    Alcotest.test_case "census and synth over the socket" `Slow test_mixed_requests_run;
    Alcotest.test_case "concurrent clients, shared store" `Slow test_concurrent_clients;
    Alcotest.test_case "store survives restart with a torn tail" `Quick
      test_store_survives_restart_and_torn_tail;
    Alcotest.test_case "stopped daemon refuses work" `Quick
      test_stopped_daemon_refuses_engine_work;
    Alcotest.test_case "raw frame protocol" `Quick test_raw_frame_protocol;
    Alcotest.test_case "census and synth replay from the store" `Slow
      test_census_synth_memoized;
    Alcotest.test_case "arbitrary bytes never wedge the daemon" `Slow
      test_frame_robustness;
  ]
