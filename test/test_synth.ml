(* Tests for the witness synthesizer (experiment E6). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 }

let test_space_validation () =
  let bad f = check_bool "rejected" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  bad (fun () -> Synth.seed_ladder { Synth.num_values = 1; num_rws = 2; num_responses = 2 });
  bad (fun () -> Synth.seed_ladder { Synth.num_values = 4; num_rws = 1; num_responses = 2 });
  bad (fun () -> Synth.seed_crossing { Synth.num_values = 4; num_rws = 4; num_responses = 5 });
  bad (fun () -> Synth.of_table space [| (0, 0) |]);
  bad (fun () -> Synth.of_table { space with Synth.num_values = 2 } (Array.make 8 (9, 0)))

let test_to_objtype_readable () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let ty = Synth.to_objtype (Synth.random_genome rng space) in
    check_bool "readable by construction" true (Objtype.is_readable ty);
    check_int "ops = rws + read" (space.Synth.num_rws + 1) ty.Objtype.num_ops
  done

let test_table_roundtrip () =
  let rng = Random.State.make [| 3 |] in
  let g = Synth.random_genome rng space in
  let g' = Synth.of_table space (Synth.table g) in
  check_bool "same type" true
    (Objtype.equal_behaviour (Synth.to_objtype g) (Synth.to_objtype g'));
  check_bool "space preserved" true (Synth.space_of g' = space)

let test_mutate_stays_in_space () =
  let rng = Random.State.make [| 11 |] in
  let g = ref (Synth.seed_crossing space) in
  for _ = 1 to 100 do
    g := Synth.mutate rng !g;
    (* of_table re-validates all entries *)
    ignore (Synth.of_table space (Synth.table !g))
  done

let test_mutate_never_noop () =
  (* The climb relies on this: a mutation that reproduced its argument
     would burn an iteration re-scoring the same table (and, with the
     symmetry memo, always replay as a skip).  Every draw must change
     exactly one cell, to a different entry. *)
  let rng = Random.State.make [| 23 |] in
  let g = ref (Synth.random_genome rng space) in
  for _ = 1 to 500 do
    let g' = Synth.mutate rng !g in
    let t = Synth.table !g and t' = Synth.table g' in
    let diffs = ref 0 in
    Array.iteri (fun i e -> if e <> t.(i) then incr diffs) t';
    check_int "exactly one cell changed" 1 !diffs;
    g := g'
  done

let small = { Synth.num_values = 5; num_rws = 3; num_responses = 5 }

let run_search ~incremental ?obs () =
  let trajectory = ref [] in
  let w =
    Synth.search ~seed:3 ~max_iterations:300 ~incremental ?obs
      ~on_score:(fun sc -> trajectory := sc :: !trajectory)
      ~target:4 small
  in
  (w, List.rev !trajectory)

let witness_spec = function
  | None -> "none"
  | Some w -> Objtype.to_spec_string w.Synth.objtype

let test_search_seeded_determinism () =
  (* Same seed, same space, same budget: the candidate stream, every
     score, and the outcome replay bit-identically across runs.  This is
     what lets the store memoize synth results by digest. *)
  let w1, t1 = run_search ~incremental:true () in
  let w2, t2 = run_search ~incremental:true () in
  check_bool "trajectories identical" true (t1 = t2);
  Alcotest.(check string) "outcomes identical" (witness_spec w1) (witness_spec w2)

let counter obs name =
  match List.assoc_opt name (Obs.Metrics.snapshot (Obs.metrics obs)) with
  | Some (Obs.Metrics.Count n) -> n
  | _ -> 0

let test_incremental_scratch_parity () =
  (* The e22 exactness contract, in-suite: warm-start patched kernels
     and per-candidate recompilation draw identically from the RNG and
     must score every candidate identically — any divergence means a
     patched kernel answered a query differently from a fresh compile.
     The incremental run must also actually exercise the machinery:
     evaluations, kernel patches, surviving memo entries and symmetry
     skips all nonzero. *)
  let obs = Obs.create () in
  let w_inc, t_inc = run_search ~incremental:true ~obs () in
  let w_scr, t_scr = run_search ~incremental:false () in
  check_bool "trajectories identical" true (t_inc = t_scr);
  Alcotest.(check string) "outcomes identical" (witness_spec w_scr) (witness_spec w_inc);
  check_bool "evals counted" true (counter obs "synth.evals" > 0);
  check_bool "patches applied" true (counter obs "kernel.patches" > 0);
  check_bool "memo entries survived patches" true (counter obs "kernel.masks_reused" > 0);
  check_bool "masks invalidated" true (counter obs "kernel.masks_invalidated" > 0);
  check_bool "symmetry memo hit" true (counter obs "synth.sym_skips" > 0)

let test_fitness_orbit_invariant () =
  (* The soundness condition behind the symmetry memo's score replay:
     fitness is an orbit invariant — relabeling values, RMW operations
     and responses cannot change any is-discerning / is-recording
     verdict (Read stays the fixed extra operation; its responses
     relabel with the values). *)
  let sp = { Synth.num_values = 4; num_rws = 2; num_responses = 3 } in
  let rng = Random.State.make [| 31 |] in
  let permutation n =
    let p = Array.init n Fun.id in
    for i = n - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- t
    done;
    p
  in
  for _trial = 1 to 8 do
    let g = Synth.random_genome rng sp in
    let t = Synth.table g in
    let pv = permutation sp.Synth.num_values in
    let po = permutation sp.Synth.num_rws in
    let pr = permutation sp.Synth.num_responses in
    let t' = Array.make (Array.length t) (0, 0) in
    Array.iteri
      (fun i (r, v') ->
        let v = i / sp.Synth.num_rws and op = i mod sp.Synth.num_rws in
        t'.((pv.(v) * sp.Synth.num_rws) + po.(op)) <- (pr.(r), pv.(v')))
      t;
    let g' = Synth.of_table sp t' in
    check_int "fitness invariant under relabeling"
      (Synth.fitness ~target:4 g)
      (Synth.fitness ~target:4 g')
  done

let test_crossing_seed_is_witness () =
  (* The crossing seed embeds the verified x4 witness: full fitness. *)
  let g = Synth.seed_crossing space in
  check_int "full fitness" Synth.max_fitness (Synth.fitness ~target:4 g);
  check_bool "verifies" true (Synth.verify_witness ~target:4 (Synth.to_objtype g))

let test_ladder_seed_partial_fitness () =
  (* The ladder seed is a gap-1 type: it must score below max. *)
  let g = Synth.seed_ladder { Synth.num_values = 6; num_rws = 2; num_responses = 2 } in
  let f = Synth.fitness ~target:4 g in
  check_bool "partial" true (f < Synth.max_fitness)

let test_search_finds_witness () =
  match Synth.search ~seed:1 ~max_iterations:2_000 ~target:4 space with
  | Some w ->
      check_int "level 4" 4 w.Synth.discerning_level;
      check_int "level 2" 2 w.Synth.recording_level;
      check_bool "verified" true (Synth.verify_witness ~target:4 w.Synth.objtype)
  | None -> Alcotest.fail "seeded search must find the witness"

let test_verify_witness_rejects () =
  check_bool "ladder is not a gap-2 witness" false
    (Synth.verify_witness ~target:4 (Gallery.team_ladder ~cap:3));
  check_bool "non-readable rejected" false
    (Synth.verify_witness ~target:4 (Gallery.tnn ~n:4 ~n':2));
  check_bool "x4 gallery entry verifies" true (Synth.verify_witness ~target:4 Gallery.x4_witness)

let test_gallery_matches_crossing_seed () =
  (* The hard-coded gallery witness and the synthesizer's seed agree on the
     transition structure (value successor function); responses differ only
     in naming conventions. *)
  let seed_ty = Synth.to_objtype (Synth.seed_crossing space) in
  let gallery_ty = Gallery.x4_witness in
  for v = 0 to 4 do
    for op = 0 to 3 do
      check_int
        (Printf.sprintf "successor of v%d under op%d" v op)
        (snd (Objtype.apply gallery_ty v op))
        (snd (Objtype.apply seed_ty v op))
    done
  done

let test_fitness_requires_target_4 () =
  check_bool "target 3 rejected" true
    (try
       ignore (Synth.fitness ~target:3 (Synth.seed_crossing space));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "space and table validation" `Quick test_space_validation;
    Alcotest.test_case "synthesized types are readable" `Quick test_to_objtype_readable;
    Alcotest.test_case "table round trip" `Quick test_table_roundtrip;
    Alcotest.test_case "mutation stays in the space" `Quick test_mutate_stays_in_space;
    Alcotest.test_case "mutation never reproduces its argument" `Quick test_mutate_never_noop;
    Alcotest.test_case "seeded search is deterministic" `Slow test_search_seeded_determinism;
    Alcotest.test_case "incremental and from-scratch search agree" `Slow
      test_incremental_scratch_parity;
    Alcotest.test_case "fitness is an orbit invariant" `Slow test_fitness_orbit_invariant;
    Alcotest.test_case "crossing seed is a full-fitness witness" `Quick test_crossing_seed_is_witness;
    Alcotest.test_case "ladder seed scores partial fitness" `Quick test_ladder_seed_partial_fitness;
    Alcotest.test_case "search finds a verified witness (E6)" `Slow test_search_finds_witness;
    Alcotest.test_case "verify_witness rejects non-witnesses" `Quick test_verify_witness_rejects;
    Alcotest.test_case "gallery witness matches the seed structure" `Quick test_gallery_matches_crossing_seed;
    Alcotest.test_case "fitness target validation" `Quick test_fitness_requires_target_4;
  ]
