(* Test runner: one alcotest suite per subsystem. *)

let () =
  Alcotest.run "rcn"
    [
      ("obs", Test_obs.suite);
      ("fsio", Test_fsio.suite);
      ("objtype", Test_objtype.suite);
      ("gallery", Test_gallery.suite);
      ("sched", Test_sched.suite);
      ("budget", Test_budget.suite);
      ("machine", Test_machine.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("engine", Test_engine.suite);
      ("supervise", Test_supervise.suite);
      ("api", Test_api.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("dist", Test_dist.suite);
      ("sym", Test_sym.suite);
      ("explore", Test_explore.suite);
      ("simultaneous", Test_simultaneous.suite);
      ("protocols", Test_protocols.suite);
      ("tournament", Test_tournament.suite);
      ("synth", Test_synth.suite);
      ("universal", Test_universal.suite);
      ("inject", Test_inject.suite);
      ("misc", Test_misc.suite);
      ("paper", Test_paper.suite);
    ]
