(* Tests for the deciders and the consensus-number computations — the
   paper's "determining" procedure, validated against every anchor the
   literature provides. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let bound = Alcotest.testable Numbers.pp_bound Numbers.equal_bound

let disc ?cap t = Numbers.bound_of_level (Numbers.max_discerning ?cap t)
let record ?cap t = Numbers.bound_of_level (Numbers.max_recording ?cap t)

(* ------------------------------------------------------------------ *)
(* Certificates *)

let ladder_cert () =
  match Decide.search Decide.Recording (Gallery.team_ladder ~cap:2) ~n:2 with
  | Some c -> c
  | None -> Alcotest.fail "team-ladder-2 must be 2-recording"

let test_certificate_validation () =
  let ty = Gallery.test_and_set in
  let mk team ops = Certificate.make ~objtype:ty ~initial:0 ~team ~ops in
  Alcotest.check_raises "empty team"
    (Invalid_argument "Certificate.make: both teams must be nonempty") (fun () ->
      ignore (mk [| false; false |] [| 0; 0 |]));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Certificate.make: team and ops lengths differ") (fun () ->
      ignore (mk [| false; true |] [| 0 |]));
  Alcotest.check_raises "op out of range"
    (Invalid_argument "Certificate.make: operation out of range") (fun () ->
      ignore (mk [| false; true |] [| 0; 9 |]));
  Alcotest.check_raises "initial out of range"
    (Invalid_argument "Certificate.make: initial value out of range") (fun () ->
      ignore (Certificate.make ~objtype:ty ~initial:7 ~team:[| false; true |] ~ops:[| 0; 0 |]))

let test_certificate_replay () =
  let c = ladder_cert () in
  let responses, final = Certificate.replay c [ 0; 1 ] in
  check_bool "responses present" true (responses <> None);
  (* first op is team 0's op_0 -> chain stays on side 0 *)
  check_bool "final on side 0" true (Certificate.first_team_of_value c final = Some false);
  let _, final_empty = Certificate.replay c [] in
  check_int "empty replay is initial" c.Certificate.initial final_empty

let test_tas_2_discerning_certificate () =
  (* The classical TAS certificate: u = unset, both processes apply TAS. *)
  let cert =
    Certificate.make ~objtype:Gallery.test_and_set ~initial:0 ~team:[| false; true |]
      ~ops:[| 0; 0 |]
  in
  check_bool "tas is 2-discerning via tas/tas" true (Certificate.check_discerning cert);
  check_bool "but not 2-recording via tas/tas" false (Certificate.check_recording cert)

let test_search_results_validate () =
  (* Every certificate the search returns must replay-validate with the
     independent checker. *)
  List.iter
    (fun (name, ty) ->
      (match Decide.search Decide.Discerning ty ~n:2 with
      | Some c -> check_bool (name ^ " discerning validates") true (Certificate.check_discerning c)
      | None -> ());
      match Decide.search Decide.Recording ty ~n:2 with
      | Some c -> check_bool (name ^ " recording validates") true (Certificate.check_recording c)
      | None -> ())
    (Gallery.all ())

let test_u_sets () =
  let c = ladder_cert () in
  let u0 = Certificate.u_set c ~first_team:false in
  let u1 = Certificate.u_set c ~first_team:true in
  check_bool "disjoint" true (List.for_all (fun v -> not (List.mem v u1)) u0);
  check_bool "u not reachable" true (Certificate.is_clean c);
  check_bool "u has no team" true
    (Certificate.first_team_of_value c c.Certificate.initial = None)

(* ------------------------------------------------------------------ *)
(* Known anchors from the literature (experiment E5's table). *)

let test_register_level_1 () =
  Alcotest.check bound "register cn 1" (Numbers.Exact 1) (disc (Gallery.register 2));
  Alcotest.check bound "register rcn 1" (Numbers.Exact 1) (record (Gallery.register 2))

let test_herlihy_level_2_types () =
  List.iter
    (fun ty ->
      Alcotest.check bound (ty.Objtype.name ^ " cn 2") (Numbers.Exact 2) (disc ty))
    [ Gallery.test_and_set; Gallery.swap 3; Gallery.fetch_and_add 3 ]

let test_golab_tas_rcn_1 () =
  (* Golab (2020): test-and-set cannot solve 2-process recoverable
     consensus. *)
  Alcotest.check bound "tas rcn 1" (Numbers.Exact 1) (record Gallery.test_and_set)

let test_interfering_rmw_rcn_1 () =
  List.iter
    (fun ty ->
      Alcotest.check bound (ty.Objtype.name ^ " rcn 1") (Numbers.Exact 1) (record ty))
    [ Gallery.swap 3; Gallery.fetch_and_add 3 ]

let test_unbounded_types () =
  List.iter
    (fun ty ->
      Alcotest.check bound (ty.Objtype.name ^ " disc unbounded") (Numbers.At_least 5) (disc ty);
      Alcotest.check bound (ty.Objtype.name ^ " rec unbounded") (Numbers.At_least 5) (record ty))
    [ Gallery.sticky_bit; Gallery.consensus_object 2; Gallery.compare_and_swap 3 ]

let test_new_gallery_anchors () =
  (* max-register: commuting writes, level 1/1 like a register. *)
  Alcotest.check bound "max-register cn 1" (Numbers.Exact 1) (disc ~cap:3 (Gallery.max_register 3));
  Alcotest.check bound "max-register rcn 1" (Numbers.Exact 1) (record ~cap:3 (Gallery.max_register 3));
  (* write-once register: sticky, unbounded in both hierarchies. *)
  Alcotest.check bound "write-once disc" (Numbers.At_least 4) (disc ~cap:4 (Gallery.write_once 2));
  Alcotest.check bound "write-once rec" (Numbers.At_least 4) (record ~cap:4 (Gallery.write_once 2));
  (* opaque counter: ack-only responses, no reads: level 1. *)
  Alcotest.check bound "opaque counter disc" (Numbers.Exact 1) (disc ~cap:3 (Gallery.opaque_counter 3));
  check_bool "opaque counter is not readable" false (Objtype.is_readable (Gallery.opaque_counter 3))

let test_binary_cas_is_level_2 () =
  (* CAS over a 2-value domain cannot hold a proposal and a bottom: its
     consensus number is 2, unlike the 3-value CAS. *)
  Alcotest.check bound "cas-2 cn 2" (Numbers.Exact 2) (disc (Gallery.compare_and_swap 2))

let test_team_ladder_levels () =
  List.iter
    (fun cap ->
      let ty = Gallery.team_ladder ~cap in
      Alcotest.check bound
        (Printf.sprintf "ladder-%d cn %d" cap (cap + 1))
        (Numbers.Exact (cap + 1))
        (disc ~cap:(cap + 2) ty);
      Alcotest.check bound
        (Printf.sprintf "ladder-%d rcn %d" cap cap)
        (Numbers.Exact cap)
        (record ~cap:(cap + 2) ty))
    [ 1; 2; 3 ]

let test_tnn_levels () =
  (* For T_{n,n'}: max-discerning = n; max-recording = n-1 (recording is
     necessary but NOT sufficient for non-readable types: true rcn is n'). *)
  List.iter
    (fun (n, n') ->
      let ty = Gallery.tnn ~n ~n' in
      Alcotest.check bound
        (Printf.sprintf "T_{%d,%d} discerning" n n')
        (Numbers.Exact n)
        (disc ~cap:(n + 1) ty);
      Alcotest.check bound
        (Printf.sprintf "T_{%d,%d} recording" n n')
        (Numbers.Exact (n - 1))
        (record ~cap:(n + 1) ty);
      let a = Numbers.analyze ~cap:2 ty in
      check_bool "non-readable: numbers not claimed" true
        (Analysis.consensus_number a = None
        && Analysis.recoverable_consensus_number a = None))
    [ (3, 1); (4, 2); (4, 1); (5, 2) ]

let test_crossing_family_levels () =
  (* The generalized witness family: consensus number n, recoverable
     consensus number n-2, for every n — checked exactly for n = 4..6
     (n = 7 runs in the bench harness). *)
  List.iter
    (fun n ->
      let ty = Gallery.crossing_witness ~n in
      Alcotest.check bound
        (Printf.sprintf "crossing-x%d cn" n)
        (Numbers.Exact n)
        (disc ~cap:(n + 1) ty);
      Alcotest.check bound
        (Printf.sprintf "crossing-x%d rcn" n)
        (Numbers.Exact (n - 2))
        (record ~cap:(n + 1) ty))
    [ 4; 5; 6 ];
  check_bool "n < 4 rejected" true
    (try
       ignore (Gallery.crossing_witness ~n:3);
       false
     with Invalid_argument _ -> true)

let test_x4_witness_levels () =
  (* The paper's corollary instantiated: consensus number 4, recoverable
     consensus number 2. *)
  let ty = Gallery.x4_witness in
  Alcotest.check bound "x4 cn 4" (Numbers.Exact 4) (disc ty);
  Alcotest.check bound "x4 rcn 2" (Numbers.Exact 2) (record ty);
  let a = Numbers.analyze ~cap:5 ty in
  check_bool "claimed as numbers (readable)" true
    (match (Analysis.consensus_number a, Analysis.recoverable_consensus_number a) with
    | Some cn, Some rcn ->
        Numbers.equal_bound (Numbers.bound_of_level cn) (Numbers.Exact 4)
        && Numbers.equal_bound (Numbers.bound_of_level rcn) (Numbers.Exact 2)
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Structural properties of the conditions *)

let test_downward_closure () =
  (* n-discerning implies (n-1)-discerning; same for recording.  Checked on
     representative types at every level below the cap. *)
  List.iter
    (fun ty ->
      List.iter
        (fun n ->
          if Decide.is_discerning ty ~n then
            check_bool
              (Printf.sprintf "%s: %d-discerning implies %d" ty.Objtype.name n (n - 1))
              true
              (n = 2 || Decide.is_discerning ty ~n:(n - 1));
          if Decide.is_recording ty ~n then
            check_bool
              (Printf.sprintf "%s: %d-recording implies %d" ty.Objtype.name n (n - 1))
              true
              (n = 2 || Decide.is_recording ty ~n:(n - 1)))
        [ 2; 3; 4; 5 ])
    [ Gallery.team_ladder ~cap:3; Gallery.tnn ~n:4 ~n':2; Gallery.x4_witness; Gallery.sticky_bit ]

let test_naive_vs_pruned_search () =
  (* The within-team sorting prune must not change decidability. *)
  List.iter
    (fun ty ->
      List.iter
        (fun n ->
          let pruned = Decide.search Decide.Recording ty ~n <> None in
          let naive = Decide.search ~naive:true Decide.Recording ty ~n <> None in
          check_bool (Printf.sprintf "%s recording n=%d" ty.Objtype.name n) pruned naive;
          let pruned = Decide.search Decide.Discerning ty ~n <> None in
          let naive = Decide.search ~naive:true Decide.Discerning ty ~n <> None in
          check_bool (Printf.sprintf "%s discerning n=%d" ty.Objtype.name n) pruned naive)
        [ 2; 3 ])
    [ Gallery.test_and_set; Gallery.team_ladder ~cap:2; Gallery.register 2 ]

let test_candidate_counts () =
  (* Pruning strictly reduces the candidate space. *)
  let ty = Gallery.team_ladder ~cap:2 in
  let pruned = Decide.count_candidates ty ~n:3 in
  let naive = Decide.count_candidates ~naive:true ty ~n:3 in
  check_bool "prune reduces" true (pruned < naive);
  (* naive count is values * partitions * ops^n = 6 * 3 * 27 *)
  check_int "naive closed form" (6 * 3 * 27) naive

let test_count_closed_form () =
  (* count_candidates is computed in closed form (binomial products); pin
     it against an actual fold over the enumeration, pruned and naive, on
     types spanning value/op/n shapes. *)
  let len s = Seq.fold_left (fun acc _ -> acc + 1) 0 s in
  List.iter
    (fun (ty, n) ->
      check_int
        (Printf.sprintf "%s n=%d pruned count" ty.Objtype.name n)
        (len (Decide.candidates ty ~n))
        (Decide.count_candidates ty ~n);
      check_int
        (Printf.sprintf "%s n=%d naive count" ty.Objtype.name n)
        (len (Decide.candidates ~naive:true ty ~n))
        (Decide.count_candidates ~naive:true ty ~n))
    [
      (Gallery.test_and_set, 2);
      (Gallery.test_and_set, 3);
      (Gallery.test_and_set, 4);
      (Gallery.register 2, 3);
      (Gallery.team_ladder ~cap:2, 3);
      (Gallery.team_ladder ~cap:2, 4);
    ]

let test_kernel_rank_enumeration () =
  (* The kernel's rank/unrank must walk exactly the reference enumeration:
     same total, and candidate i = the i-th element of Decide.candidates.
     This is the invariant the deterministic chunked fan-out rests on. *)
  List.iter
    (fun (ty, n) ->
      let k = Kernel.compile ty ~n in
      check_int
        (Printf.sprintf "%s n=%d total = closed form" ty.Objtype.name n)
        (Decide.count_candidates ty ~n) (Kernel.total k);
      let last =
        Seq.fold_left
          (fun i (u, team, ops) ->
            let u', team', ops' = Kernel.candidate k i in
            check_bool
              (Printf.sprintf "%s n=%d rank %d matches" ty.Objtype.name n i)
              true
              (u = u' && team = team' && ops = ops');
            i + 1)
          0 (Decide.candidates ty ~n)
      in
      check_int "enumeration exhausts the rank space" (Kernel.total k) last)
    [ (Gallery.test_and_set, 3); (Gallery.team_ladder ~cap:2, 3); (Gallery.register 2, 4) ]

let test_decider_rejects_small_n () =
  check_bool "n=1 rejected" true
    (try
       ignore (Decide.search Decide.Recording Gallery.test_and_set ~n:1);
       false
     with Invalid_argument _ -> true)

let test_parallel_search_agrees () =
  (* The domain-parallel decider must agree with the serial one on both
     positive and negative instances (forced onto the multi-domain code
     path even on single-core hosts). *)
  List.iter
    (fun (ty, n) ->
      List.iter
        (fun condition ->
          let serial = Decide.search condition ty ~n in
          let par = Decide.search_parallel ~domains:3 condition ty ~n in
          check_bool
            (Printf.sprintf "%s n=%d agree" ty.Objtype.name n)
            (Option.is_some serial) (Option.is_some par);
          (* any parallel witness must replay-validate *)
          match (condition, par) with
          | Decide.Recording, Some c -> check_bool "valid" true (Certificate.check_recording c)
          | Decide.Discerning, Some c -> check_bool "valid" true (Certificate.check_discerning c)
          | _, None -> ())
        [ Decide.Discerning; Decide.Recording ])
    [
      (Gallery.test_and_set, 2);
      (Gallery.test_and_set, 3);
      (Gallery.team_ladder ~cap:2, 3);
      (Gallery.team_ladder ~cap:2, 4);
      (Gallery.x4_witness, 3);
    ];
  check_bool "bad domain count rejected" true
    (try
       ignore (Decide.search_parallel ~domains:0 Decide.Recording Gallery.test_and_set ~n:2);
       false
     with Invalid_argument _ -> true)

let test_parallel_search_deterministic () =
  (* Not just *a* witness: the parallel decider must return *the*
     sequential first witness, at every domain count.  The types below
     have several witnessing certificates (so a first-CAS-wins race would
     be visible), and repetition gives interleavings a chance to differ. *)
  let cert_equal (a : Certificate.t) (b : Certificate.t) =
    a.Certificate.initial = b.Certificate.initial
    && a.Certificate.team = b.Certificate.team
    && a.Certificate.ops = b.Certificate.ops
  in
  List.iter
    (fun (ty, n) ->
      List.iter
        (fun condition ->
          match Decide.search condition ty ~n with
          | None -> ()
          | Some serial ->
              List.iter
                (fun domains ->
                  for round = 1 to 5 do
                    match Decide.search_parallel ~domains condition ty ~n with
                    | None ->
                        Alcotest.failf "%s n=%d domains=%d: witness lost"
                          ty.Objtype.name n domains
                    | Some par ->
                        check_bool
                          (Printf.sprintf
                             "%s n=%d domains=%d round=%d: sequential first witness"
                             ty.Objtype.name n domains round)
                          true (cert_equal serial par)
                  done)
                [ 1; 4 ])
        [ Decide.Discerning; Decide.Recording ])
    [
      (Gallery.test_and_set, 2);
      (Gallery.team_ladder ~cap:2, 2);
      (Gallery.team_ladder ~cap:3, 3);
      (Gallery.x4_witness, 2);
      (Gallery.x4_witness, 3);
    ]

let test_certificates_seq () =
  (* All certificates stream lazily; the first equals the search result. *)
  let ty = Gallery.team_ladder ~cap:2 in
  let first_search = Option.get (Decide.search Decide.Recording ty ~n:2) in
  match (Decide.certificates Decide.Recording ty ~n:2) () with
  | Seq.Cons (c, _) ->
      check_bool "same first certificate" true
        (c.Certificate.initial = first_search.Certificate.initial
        && c.Certificate.team = first_search.Certificate.team
        && c.Certificate.ops = first_search.Certificate.ops)
  | Seq.Nil -> Alcotest.fail "expected certificates"

(* ------------------------------------------------------------------ *)
(* Robustness (Theorem 14) *)

let test_robustness_report () =
  let r =
    Robustness.analyze ~cap:4
      [ Gallery.test_and_set; Gallery.team_ladder ~cap:2; Gallery.register 2 ]
  in
  Alcotest.check bound "combined = strongest individual" (Numbers.Exact 2) r.Robustness.combined;
  check_bool "strongest named" true (r.Robustness.strongest = "team-ladder-2");
  check_int "all types reported" 3 (List.length r.Robustness.per_type);
  check_bool "witness validates" true
    (match r.Robustness.witness with
    | Some c -> Certificate.check_recording c
    | None -> false)

let test_robustness_rejects_non_readable () =
  Alcotest.check_raises "non-readable rejected"
    (Invalid_argument "Robustness.analyze: T_{4,2} is not readable") (fun () ->
      ignore (Robustness.analyze [ Gallery.tnn ~n:4 ~n':2 ]));
  Alcotest.check_raises "empty set rejected"
    (Invalid_argument "Robustness.analyze: empty type set") (fun () ->
      ignore (Robustness.analyze []))

let test_product_robustness () =
  (* Theorem 14 checked on the combined object itself: the recording level
     of a readable product never exceeds the strongest component. *)
  let pairs =
    [
      (Gallery.test_and_set, Gallery.test_and_set);
      (Gallery.test_and_set, Gallery.register 2);
      (Gallery.test_and_set, Gallery.team_ladder ~cap:2);
      (Gallery.register 2, Gallery.team_ladder ~cap:2);
    ]
  in
  List.iter
    (fun (a, b) ->
      let r = Robustness.check_product ~cap:4 a b in
      check_bool
        (Printf.sprintf "%s x %s robust" r.Robustness.left r.Robustness.right)
        true r.Robustness.robust)
    pairs;
  (* And the exact level: tas x ladder2 has recording level exactly 2. *)
  let r = Robustness.check_product ~cap:4 Gallery.test_and_set (Gallery.team_ladder ~cap:2) in
  check_bool "product level = max component" true
    (Numbers.equal_bound r.Robustness.product_level (Numbers.Exact 2))

let test_product_structure () =
  let p = Objtype.product Gallery.test_and_set (Gallery.register 2) in
  check_int "values multiply" 4 p.Objtype.num_values;
  check_bool "readable via joint read" true (Objtype.is_readable p);
  (* Left TAS acts on the left component only. *)
  let r, v = Objtype.apply p (Objtype.product_value Gallery.test_and_set (Gallery.register 2) (0, 1)) 0 in
  check_int "left tas response" 0 r;
  check_int "left component set, right untouched"
    (Objtype.product_value Gallery.test_and_set (Gallery.register 2) (1, 1))
    v;
  let bare = Objtype.product ~joint_read:false Gallery.test_and_set (Gallery.bounded_queue ()) in
  check_bool "no joint read: not readable" false (Objtype.is_readable bare);
  check_bool "non-readable product rejected by check_product" true
    (try
       ignore (Robustness.check_product Gallery.test_and_set (Gallery.bounded_queue ()));
       false
     with Invalid_argument _ -> true)

let test_nonreadable_product_probe () =
  (* The paper's open question (robustness for all deterministic types)
     cannot be settled by the deciders, but the necessary-condition levels
     of non-readable products are measurable: at these instances, products
     do not exceed the strongest component. *)
  let t31 = Gallery.tnn ~n:3 ~n':1 in
  let level ty = Numbers.bound_of_level (Numbers.max_recording ~cap:4 ty) in
  let v = function Numbers.Exact n | Numbers.At_least n -> n in
  List.iter
    (fun (a, b) ->
      let combined = v (level (Objtype.product ~joint_read:false a b)) in
      check_bool "no recording boost" true (combined <= max (v (level a)) (v (level b))))
    [ (t31, Gallery.test_and_set); (t31, t31); (Gallery.bounded_queue (), Gallery.test_and_set) ]

let test_census_sample_properties () =
  (* On a random sample of the small-type landscape: recording never
     exceeds discerning, and the DFFR gap bound holds everywhere. *)
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let entries = Census.sample ~cap:4 ~seed:42 ~count:500 space in
  List.iter
    (fun (e : Census.entry) ->
      check_bool "rec <= disc" true (e.Census.recording <= e.Census.discerning);
      check_bool "disc - rec <= 2" true (e.Census.discerning - e.Census.recording <= 2))
    entries;
  check_int "census covers the sample" 500
    (List.fold_left (fun acc (e : Census.entry) -> acc + e.Census.count) 0 entries);
  check_bool "space size" true (Census.space_size space = 46656)

(* ------------------------------------------------------------------ *)
(* Cross-theorem properties on the whole gallery *)

let level_value = function Numbers.Exact n -> n | Numbers.At_least n -> n

let test_recording_at_most_discerning () =
  (* rcn <= cn, so for the deciders: max-recording <= max-discerning.
     This holds for all deterministic types (both conditions are about the
     same certificates, recording being stronger on values). *)
  List.iter
    (fun (name, ty) ->
      check_bool (name ^ ": recording <= discerning") true
        (level_value (record ty) <= level_value (disc ty)))
    (Gallery.all ())

let test_dffr_gap_at_most_2 () =
  (* DFFR (2022): a readable deterministic type with consensus number
     n >= 4 is (n-2)-recording.  Hence max-recording >= max-discerning - 2
     for readable gallery types (their Theorem 5 also covers n = 2, 3 with
     n - 1 >= ... we check the conservative -2 bound). *)
  List.iter
    (fun (name, ty) ->
      if Objtype.is_readable ty then
        check_bool (name ^ ": discerning - recording <= 2") true
          (level_value (disc ty) - level_value (record ty) <= 2))
    (Gallery.all ())

let prop_decider_certificates_replay =
  (* On random small types: whatever the search returns must validate under
     the independent replay checker, for both conditions, at n = 2 and 3. *)
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let arbitrary =
    QCheck.make
      ~print:(fun g -> Format.asprintf "%a" Objtype.pp_table (Synth.to_objtype g))
      (QCheck.Gen.map
         (fun seed -> Synth.random_genome (Random.State.make [| seed |]) space)
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"decider certificates always replay-validate" ~count:150 arbitrary
    (fun g ->
      let ty = Synth.to_objtype g in
      List.for_all
        (fun n ->
          (match Decide.search Decide.Recording ty ~n with
          | Some c -> Certificate.check_recording c
          | None -> true)
          &&
          match Decide.search Decide.Discerning ty ~n with
          | Some c -> Certificate.check_discerning c
          | None -> true)
        [ 2; 3 ])

let prop_kernel_matches_reference =
  (* The differential pin for the compiled kernel: on random small types
     (up to 4 values, 3 RMW operations) all three modes agree with the
     reference checkers on is_discerning / is_recording at n = 2 and 3,
     and when a witness exists the certificates are byte-identical. *)
  let space = { Synth.num_values = 4; num_rws = 3; num_responses = 3 } in
  let arbitrary =
    QCheck.make
      ~print:(fun g -> Format.asprintf "%a" Objtype.pp_table (Synth.to_objtype g))
      (QCheck.Gen.map
         (fun seed -> Synth.random_genome (Random.State.make [| seed |]) space)
         QCheck.Gen.int)
  in
  let cert_equal (a : Certificate.t option) (b : Certificate.t option) =
    match (a, b) with
    | None, None -> true
    | Some a, Some b ->
        a.Certificate.initial = b.Certificate.initial
        && a.Certificate.team = b.Certificate.team
        && a.Certificate.ops = b.Certificate.ops
    | _ -> false
  in
  QCheck.Test.make ~name:"kernel modes match the reference decider" ~count:60 arbitrary
    (fun g ->
      let ty = Synth.to_objtype g in
      List.for_all
        (fun n ->
          List.for_all
            (fun condition ->
              let reference = Decide.search ~mode:Kernel.Reference condition ty ~n in
              let tables = Decide.search ~mode:Kernel.Tables condition ty ~n in
              let trie = Decide.search ~mode:Kernel.Trie condition ty ~n in
              cert_equal reference tables && cert_equal reference trie)
            [ Decide.Discerning; Decide.Recording ])
        [ 2; 3 ])

let prop_patched_kernel_matches_fresh_compile =
  (* The incremental-patching contract (the synthesizer's warm-start
     search leans on it): after any LIFO patch/unpatch sequence, the
     patched kernel answers every query byte-identically to a fresh
     compile of the mutated type — both conditions, Tables and Trie, at
     n = 2 and 3.  The shadow table tracks what the kernel's cells must
     currently hold; interrogations mid-sequence exercise memo churn
     (entries invalidated by one edit, revalidated by its revert). *)
  let arbitrary = QCheck.make ~print:string_of_int QCheck.Gen.int in
  QCheck.Test.make ~name:"patched kernel matches a fresh compile" ~count:40 arbitrary
    (fun case_seed ->
      let rng = Random.State.make [| case_seed; 0xe22 |] in
      let nv = 2 + Random.State.int rng 3 in
      let no = 2 + Random.State.int rng 2 in
      let nr = 2 + Random.State.int rng 2 in
      let tbl =
        Array.init (nv * no) (fun _ ->
            (Random.State.int rng nr, Random.State.int rng nv))
      in
      let mk t =
        Objtype.make ~name:"patched" ~num_values:nv ~num_ops:no ~num_responses:nr
          (fun v o -> t.((v * no) + o))
      in
      List.for_all
        (fun n ->
          let k = Kernel.compile (mk tbl) ~n in
          let s = Kernel.scratch k in
          (* Populate the memo before the first patch so delta
             invalidation has live entries to hit. *)
          ignore (Kernel.exists k s Kernel.Discerning);
          ignore (Kernel.exists k s Kernel.Recording);
          let shadow = Array.copy tbl in
          let stack = ref [] in
          let agrees () =
            let mutated = mk (Array.copy shadow) in
            Objtype.equal_behaviour (Kernel.to_objtype k) mutated
            &&
            let fresh = Kernel.compile mutated ~n in
            let fs = Kernel.scratch fresh in
            List.for_all
              (fun cond ->
                Kernel.exists k s cond = Kernel.exists fresh fs cond
                && List.for_all
                     (fun mode ->
                       let stop _ = false in
                       Kernel.search_range ~mode k s cond ~lo:0
                         ~hi:(Kernel.total k) ~stop
                       = Kernel.search_range ~mode fresh fs cond ~lo:0
                           ~hi:(Kernel.total fresh) ~stop)
                     [ Kernel.Tables; Kernel.Trie ])
              [ Kernel.Discerning; Kernel.Recording ]
          in
          let ok = ref true in
          for _step = 0 to 31 do
            (if !stack = [] || Random.State.int rng 3 > 0 then begin
               let v = Random.State.int rng nv and o = Random.State.int rng no in
               let r = Random.State.int rng nr and v' = Random.State.int rng nv in
               let c = (v * no) + o in
               let tok = Kernel.patch k s ~cell:(v, o) ~entry:(r, v') in
               stack := (tok, c, shadow.(c)) :: !stack;
               shadow.(c) <- (r, v')
             end
             else
               match !stack with
               | (tok, c, prev) :: rest ->
                   Kernel.unpatch k s tok;
                   shadow.(c) <- prev;
                   stack := rest
               | [] -> ());
            if Random.State.int rng 4 = 0 then ok := !ok && agrees ()
          done;
          !ok && agrees ())
        [ 2; 3 ])

let suite =
  [
    Alcotest.test_case "certificate validation" `Quick test_certificate_validation;
    Alcotest.test_case "certificate replay" `Quick test_certificate_replay;
    Alcotest.test_case "classical TAS certificate" `Quick test_tas_2_discerning_certificate;
    Alcotest.test_case "search results replay-validate" `Slow test_search_results_validate;
    Alcotest.test_case "U_0/U_1 sets and cleanliness" `Quick test_u_sets;
    Alcotest.test_case "registers are level 1/1" `Quick test_register_level_1;
    Alcotest.test_case "TAS, swap, FAA have consensus number 2" `Quick test_herlihy_level_2_types;
    Alcotest.test_case "Golab: TAS has recoverable consensus number 1" `Quick test_golab_tas_rcn_1;
    Alcotest.test_case "interfering RMW types have rcn 1" `Quick test_interfering_rmw_rcn_1;
    Alcotest.test_case "sticky/CAS/consensus are unbounded" `Slow test_unbounded_types;
    Alcotest.test_case "binary CAS is level 2" `Quick test_binary_cas_is_level_2;
    Alcotest.test_case "max-register / write-once / opaque counter anchors" `Quick test_new_gallery_anchors;
    Alcotest.test_case "team ladders: cn cap+1, rcn cap" `Slow test_team_ladder_levels;
    Alcotest.test_case "T_{n,n'}: discerning n, recording n-1" `Slow test_tnn_levels;
    Alcotest.test_case "x4 witness: cn 4, rcn 2 (paper corollary)" `Quick test_x4_witness_levels;
    Alcotest.test_case "crossing family: cn n, rcn n-2 for n=4..6" `Slow test_crossing_family_levels;
    Alcotest.test_case "discerning/recording downward closure" `Slow test_downward_closure;
    Alcotest.test_case "naive and pruned search agree" `Quick test_naive_vs_pruned_search;
    Alcotest.test_case "candidate counting" `Quick test_candidate_counts;
    Alcotest.test_case "closed-form counts match enumeration" `Quick test_count_closed_form;
    Alcotest.test_case "kernel rank/unrank walks the reference enumeration" `Quick
      test_kernel_rank_enumeration;
    Alcotest.test_case "decider rejects n < 2" `Quick test_decider_rejects_small_n;
    Alcotest.test_case "lazy certificate stream" `Quick test_certificates_seq;
    Alcotest.test_case "parallel decider agrees with serial" `Slow test_parallel_search_agrees;
    Alcotest.test_case "parallel decider is deterministic (1 vs 4 domains)" `Slow
      test_parallel_search_deterministic;
    Alcotest.test_case "robustness report (Theorem 14)" `Quick test_robustness_report;
    Alcotest.test_case "robustness input validation" `Quick test_robustness_rejects_non_readable;
    Alcotest.test_case "Theorem 14 on product objects" `Slow test_product_robustness;
    Alcotest.test_case "product type structure" `Quick test_product_structure;
    Alcotest.test_case "census sample properties" `Slow test_census_sample_properties;
    Alcotest.test_case "open-question probe: non-readable products" `Slow test_nonreadable_product_probe;
    Alcotest.test_case "recording never exceeds discerning" `Slow test_recording_at_most_discerning;
    Alcotest.test_case "DFFR: readable gap at most 2" `Slow test_dffr_gap_at_most_2;
    QCheck_alcotest.to_alcotest prop_decider_certificates_replay;
    QCheck_alcotest.to_alcotest prop_kernel_matches_reference;
    QCheck_alcotest.to_alcotest prop_patched_kernel_matches_fresh_compile;
  ]
