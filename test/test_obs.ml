(* Tests for the observability layer: monotonic clock, thread-safe
   counters and histograms, span tracing with the JSONL sink, and the
   stats export the CLI and CI smoke rely on. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Clock *)

let test_clock_monotonic () =
  let prev = ref (Obs.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    check_bool "never goes backwards" true (t >= !prev);
    prev := t
  done

let test_clock_deadlines () =
  check_bool "no deadline never expires" false (Obs.Clock.expired None);
  check_bool "past deadline expired" true
    (Obs.Clock.expired (Some (Obs.Clock.now () -. 1.0)));
  check_bool "future deadline live" false (Obs.Clock.expired (Some (Obs.Clock.after 60.0)));
  let d = Obs.Clock.after 0.5 in
  let now = Obs.Clock.now () in
  check_bool "after is now + s" true (d -. now > 0.0 && d -. now <= 0.5 +. 0.01)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_counter_concurrent () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "test.hits" in
  let domains = 4 and per_domain = 10_000 in
  let worker () =
    let c' = Obs.Metrics.counter m "test.hits" in
    for _ = 1 to per_domain do
      Obs.Metrics.Counter.incr c'
    done;
    Obs.Metrics.Counter.add c' 5
  in
  let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join handles;
  check_int "no lost increments" (domains * (per_domain + 5))
    (Obs.Metrics.Counter.value c);
  check_string "name kept" "test.hits" (Obs.Metrics.Counter.name c)

let test_histogram_concurrent () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "test.lat" in
  let domains = 4 and per_domain = 5_000 in
  let worker () =
    for i = 1 to per_domain do
      Obs.Metrics.Histogram.observe h (float_of_int i)
    done
  in
  let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join handles;
  check_int "every observation counted" (domains * per_domain)
    (Obs.Metrics.Histogram.count h);
  check_bool "sum exact" true
    (Obs.Metrics.Histogram.sum h
    = float_of_int domains *. (float_of_int (per_domain * (per_domain + 1)) /. 2.0));
  check_bool "min" true (Obs.Metrics.Histogram.min h = 1.0);
  check_bool "max" true (Obs.Metrics.Histogram.max h = float_of_int per_domain)

let test_histogram_empty () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "test.empty" in
  check_int "count" 0 (Obs.Metrics.Histogram.count h);
  check_bool "sum/min/max/mean all zero" true
    (Obs.Metrics.Histogram.sum h = 0.0
    && Obs.Metrics.Histogram.min h = 0.0
    && Obs.Metrics.Histogram.max h = 0.0
    && Obs.Metrics.Histogram.mean h = 0.0)

let test_registry () =
  let m = Obs.Metrics.create () in
  let a = Obs.Metrics.counter m "x" in
  Obs.Metrics.Counter.incr a;
  (* Lookups are idempotent: the same handle comes back, not a zeroed one. *)
  check_int "same counter returned" 1
    (Obs.Metrics.Counter.value (Obs.Metrics.counter m "x"));
  check_bool "kind clash rejected" true
    (try
       ignore (Obs.Metrics.histogram m "x");
       false
     with Invalid_argument _ -> true);
  ignore (Obs.Metrics.histogram m "y");
  check_bool "clash the other way too" true
    (try
       ignore (Obs.Metrics.counter m "y");
       false
     with Invalid_argument _ -> true);
  Obs.Metrics.Histogram.observe (Obs.Metrics.histogram m "y") 2.0;
  match Obs.Metrics.snapshot m with
  | [ ("x", Obs.Metrics.Count 1); ("y", Obs.Metrics.Summary s) ] ->
      check_bool "summary fields" true (s.count = 1 && s.sum = 2.0)
  | other -> Alcotest.failf "unexpected snapshot (%d entries)" (List.length other)

(* ------------------------------------------------------------------ *)
(* Spans, events, sinks *)

let test_with_span () =
  let obs = Obs.create () in
  let r = Obs.with_span ~obs "work" (fun () -> 42) in
  check_int "result passed through" 42 r;
  let h = Obs.histogram obs "span.work" in
  check_int "span recorded" 1 (Obs.Metrics.Histogram.count h);
  check_bool "duration nonnegative" true (Obs.Metrics.Histogram.sum h >= 0.0);
  (* Also recorded when the body raises, and the exception escapes. *)
  check_bool "exception propagates" true
    (try
       Obs.with_span ~obs "work" (fun () -> failwith "boom")
     with Failure _ -> true);
  check_int "raising span still recorded" 2 (Obs.Metrics.Histogram.count h);
  (* No context: the hook is the identity. *)
  check_int "None is identity" 7 (Obs.with_span "free" (fun () -> 7))

let test_event () =
  let obs = Obs.create () in
  Obs.event ~obs "tick";
  Obs.event ~obs "tick" ~attrs:[ ("k", "v") ];
  check_int "events counted" 2
    (Obs.Metrics.Counter.value (Obs.counter obs "event.tick"));
  Obs.event "free"

let test_jsonl_sink () =
  let path = Filename.temp_file "rcn-test-obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let sink = Obs.Trace.jsonl path in
  let obs = Obs.create ~sink () in
  ignore (Obs.with_span ~obs "alpha" ~attrs:[ ("q", {|va"lue|}) ] (fun () -> ()));
  Obs.event ~obs "beta";
  Obs.Trace.close sink;
  Obs.event ~obs "gamma";
  (* emitting after close is a no-op *)
  let lines = In_channel.with_open_text path In_channel.input_lines in
  check_int "one line per record" 2 (List.length lines);
  List.iter
    (fun l ->
      check_bool "line is a JSON object" true
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines;
  check_bool "span line carries name and escaped attr" true
    (let l = List.nth lines 0 in
     let has s =
       let n = String.length s and ln = String.length l in
       let rec at i = i + n <= ln && (String.sub l i n = s || at (i + 1)) in
       at 0
     in
     has {|"name":"alpha"|} && has {|va\"lue|})

(* ------------------------------------------------------------------ *)
(* Stats export *)

let test_stats_render () =
  let obs = Obs.create () in
  Obs.Metrics.Counter.add (Obs.counter obs "b.count") 3;
  Obs.Metrics.Histogram.observe (Obs.histogram obs "a.time") 0.5;
  let text = Obs.Stats.render ~command:"demo" obs Obs.Stats.Text in
  check_bool "text mentions both metrics" true
    (let has s =
       let n = String.length s and ln = String.length text in
       let rec at i = i + n <= ln && (String.sub text i n = s || at (i + 1)) in
       at 0
     in
     has "counter b.count 3" && has "histogram a.time count=1");
  let json = Obs.Stats.render ~command:"demo" obs Obs.Stats.Json in
  check_bool "json is a single tagged line" true
    (String.length json > 0
    && json.[String.length json - 1] = '\n'
    && (not (String.contains (String.sub json 0 (String.length json - 1)) '\n'))
    && String.length json > 14
    && String.sub json 0 14 = {|{"rcn_stats":1|});
  check_bool "json carries the command and metrics" true
    (let has s =
       let n = String.length s and ln = String.length json in
       let rec at i = i + n <= ln && (String.sub json i n = s || at (i + 1)) in
       at 0
     in
     has {|"command":"demo"|} && has {|"b.count":3|} && has {|"a.time":{"count":1|})

let suite =
  [
    Alcotest.test_case "clock is monotonic" `Quick test_clock_monotonic;
    Alcotest.test_case "clock deadlines" `Quick test_clock_deadlines;
    Alcotest.test_case "counters lose no increments across domains" `Quick
      test_counter_concurrent;
    Alcotest.test_case "histograms aggregate across domains" `Quick
      test_histogram_concurrent;
    Alcotest.test_case "empty histogram reads as zero" `Quick test_histogram_empty;
    Alcotest.test_case "registry is idempotent and kind-safe" `Quick test_registry;
    Alcotest.test_case "with_span times, records, re-raises" `Quick test_with_span;
    Alcotest.test_case "events count" `Quick test_event;
    Alcotest.test_case "jsonl sink writes one object per line" `Quick test_jsonl_sink;
    Alcotest.test_case "stats render in both formats" `Quick test_stats_render;
  ]
