(* Canonical labeling: the canonizer against brute-force orbit
   enumeration on small spaces, the qcheck invariance property, and the
   closed-form partition pin (orbit sizes sum to the candidate count). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let spaces = [ (2, 2, 2); (3, 2, 2); (2, 3, 2); (2, 2, 3) ]

(* --- hand-pinned orbits ---------------------------------------------- *)

(* The constant table T(x,op) = (0,0) on {2,2,2}: its stabilizer is
   {(id, sigma, rho) | rho 0 = 0}, order 2!*1 = 2 with both responses
   used... response 1 is unused, so rho is free on it: order 2!*1! = 2
   from sigma alone times 1! for the unused response — |Aut| = 4,
   orbit = 8/4... brute: images are the 4 constant tables (r,v), so
   orbit = 4 and |Aut| = 2. *)
let test_constant_table () =
  let t = Sym.make ~values:2 ~ops:2 ~responses:2 in
  let tbl = Array.make 4 (0, 0) in
  let c = Sym.canonize t tbl in
  check_int "orbit" (Sym.orbit_brute t tbl) c.Sym.orbit;
  check_int "orbit is 4" 4 c.Sym.orbit;
  check_int "aut * orbit = group" (Sym.group_order t) (c.Sym.aut * c.Sym.orbit);
  (* the constant table is fully determined by one cell: canonical form
     must itself be constant *)
  Array.iter
    (fun (r, v) ->
      check_int "form resp" (fst c.Sym.form.(0)) r;
      check_int "form val" (snd c.Sym.form.(0)) v)
    c.Sym.form

(* A rigid table: distinct rows and columns leave no symmetry, so the
   orbit is the whole group. *)
let test_rigid_table () =
  let t = Sym.make ~values:2 ~ops:2 ~responses:2 in
  (* T(0,0)=(0,0) T(0,1)=(1,0) T(1,0)=(0,0) T(1,1)=(0,1) *)
  let tbl = [| (0, 0); (1, 0); (0, 0); (0, 1) |] in
  let c = Sym.canonize t tbl in
  check_int "orbit" (Sym.orbit_brute t tbl) c.Sym.orbit;
  check_int "orbit is the group" (Sym.group_order t) c.Sym.orbit;
  check_int "aut trivial" 1 c.Sym.aut

(* --- bijection ------------------------------------------------------- *)

let test_bijection () =
  List.iter
    (fun (v, o, r) ->
      let t = Sym.make ~values:v ~ops:o ~responses:r in
      let size = Sym.space_size t in
      check_int "space size matches census"
        (Census.space_size { Synth.num_values = v; num_rws = o; num_responses = r })
        size;
      for idx = 0 to min (size - 1) 500 do
        check_int "unrank . rank" idx (Sym.index_of_table t (Sym.table_of_index t idx))
      done;
      (* the bijection is the census genome layout *)
      for idx = 0 to min (size - 1) 200 do
        let g =
          Census.genome_of_index { Synth.num_values = v; num_rws = o; num_responses = r } idx
        in
        check_bool "same layout as genome_of_index" true
          (Sym.table_of_index t idx = Synth.table g)
      done)
    spaces

(* --- exhaustive agreement with the brute oracle on {2,2,2} ----------- *)

let test_brute_agreement () =
  let t = Sym.make ~values:2 ~ops:2 ~responses:2 in
  for idx = 0 to Sym.space_size t - 1 do
    let tbl = Sym.table_of_index t idx in
    let c = Sym.canonize t tbl in
    check_int "orbit matches brute enumeration" (Sym.orbit_brute t tbl) c.Sym.orbit;
    (* idempotence: the canonical form canonizes to itself *)
    let c' = Sym.canonize t c.Sym.form in
    check_int "canonical form is a fixpoint" c.Sym.index c'.Sym.index
  done

(* --- classes: partition of the space --------------------------------- *)

let test_classes_partition () =
  List.iter
    (fun (v, o, r) ->
      let t = Sym.make ~values:v ~ops:o ~responses:r in
      let reps, orbits = Sym.classes t in
      let n = Array.length reps in
      check_int "reps and orbits align" n (Array.length orbits);
      check_bool "strictly fewer classes than candidates" true (n < Sym.space_size t);
      check_int "orbit sizes sum to the closed-form candidate count" (Sym.space_size t)
        (Array.fold_left ( + ) 0 orbits);
      Array.iteri
        (fun i rep ->
          if i > 0 then check_bool "reps ascend" true (reps.(i - 1) < rep);
          check_bool "rep is its own canonical index" true (Sym.is_rep t rep))
        reps)
    spaces

(* Every index canonizes to a rep of its class, and class membership is
   consistent: members counted per rep equal the rep's orbit. *)
let test_classes_cover () =
  let t = Sym.make ~values:2 ~ops:2 ~responses:2 in
  let reps, orbits = Sym.classes t in
  let count = Hashtbl.create 16 in
  for idx = 0 to Sym.space_size t - 1 do
    let c = Sym.canonize_index t idx in
    Hashtbl.replace count c.Sym.index (1 + Option.value ~default:0 (Hashtbl.find_opt count c.Sym.index))
  done;
  check_int "every index lands on a rep" (Array.length reps) (Hashtbl.length count);
  Array.iteri
    (fun i rep ->
      check_int "class population = orbit size" orbits.(i)
        (Option.value ~default:0 (Hashtbl.find_opt count rep)))
    reps

(* --- qcheck: invariance under random relabelings --------------------- *)

let perm_gen n st =
  let a = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = QCheck.Gen.int_bound i st in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let prop_canonize_invariant =
  let gen st =
    let v, o, r = List.nth spaces (QCheck.Gen.int_bound (List.length spaces - 1) st) in
    let tbl =
      Array.init (v * o) (fun _ -> (QCheck.Gen.int_bound (r - 1) st, QCheck.Gen.int_bound (v - 1) st))
    in
    ((v, o, r), tbl, perm_gen v st, perm_gen o st, perm_gen r st)
  in
  let print ((v, o, r), tbl, pv, po, pr) =
    let arr a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
    Printf.sprintf "space=%d/%d/%d tbl=[%s] pv=[%s] po=[%s] pr=[%s]" v o r
      (String.concat ";" (Array.to_list (Array.map (fun (a, b) -> Printf.sprintf "%d:%d" a b) tbl)))
      (arr pv) (arr po) (arr pr)
  in
  QCheck.Test.make ~name:"permuted tables canonize to identical forms and digests" ~count:300
    (QCheck.make ~print gen)
    (fun ((v, o, r), tbl, pv, po, pr) ->
      let t = Sym.make ~values:v ~ops:o ~responses:r in
      let c = Sym.canonize t tbl in
      let c' = Sym.canonize t (Sym.apply t tbl ~pv ~po ~pr) in
      c.Sym.index = c'.Sym.index
      && c.Sym.form = c'.Sym.form
      && c.Sym.orbit = c'.Sym.orbit
      && c.Sym.aut = c'.Sym.aut
      && Sym.digest t tbl = Sym.digest t (Sym.apply t tbl ~pv ~po ~pr))

(* --- canonical digests ----------------------------------------------- *)

let test_digest () =
  let t = Sym.make ~values:2 ~ops:2 ~responses:2 in
  let a = [| (0, 0); (1, 0); (0, 0); (0, 1) |] in
  (* a with values swapped *)
  let b = Sym.apply t a ~pv:[| 1; 0 |] ~po:[| 0; 1 |] ~pr:[| 0; 1 |] in
  check_bool "isomorphic tables share a digest" true (Sym.digest t a = Sym.digest t b);
  let c = Array.make 4 (0, 0) in
  check_bool "non-isomorphic tables differ" true (Sym.digest t a <> Sym.digest t c)

(* The serve-store key under --sym: isomorphic types hash to one
   canonical digest (the exact-spec digest tells them apart), and cap
   stays part of the key. *)
let test_canonical_query_digest () =
  let t = Sym.make ~values:2 ~ops:2 ~responses:2 in
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let tbl = [| (0, 0); (1, 0); (0, 0); (0, 1) |] in
  (* the rigid table: any nontrivial relabeling yields a distinct twin *)
  let tbl' = Sym.apply t tbl ~pv:[| 1; 0 |] ~po:[| 1; 0 |] ~pr:[| 0; 1 |] in
  let ty a = Synth.to_objtype (Census.genome_of_index space (Sym.index_of_table t a)) in
  check_bool "isomorphic types share the canonical digest" true
    (Api.query_digest_canonical (ty tbl) ~cap:4
    = Api.query_digest_canonical (ty tbl') ~cap:4);
  check_bool "exact-spec digests still tell them apart" true
    (Api.query_digest (ty tbl) ~cap:4 <> Api.query_digest (ty tbl') ~cap:4);
  check_bool "cap is part of the canonical key" true
    (Api.query_digest_canonical (ty tbl) ~cap:4
    <> Api.query_digest_canonical (ty tbl) ~cap:5)

(* --- Engine.census under symmetry reduction -------------------------- *)

(* The acceptance pin: the reduced census returns the bit-identical
   histogram while deciding strictly fewer candidates.  The summary is
   in table units either way, so the two runs must agree on every
   field. *)
let census_sym_identity ~space ~cap () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let run ~sym =
    let obs = Obs.create () in
    let config = Api.Config.v ~cap ~kernel:Kernel.Trie ~sym () in
    (Engine.census ~obs ~config pool space, obs)
  in
  let off, _ = run ~sym:false in
  let on, obs = run ~sym:true in
  check_bool "both runs complete" true (off.Engine.complete && on.Engine.complete);
  check_bool "bit-identical histogram" true (on.Engine.entries = off.Engine.entries);
  check_int "totals agree (table units)" off.Engine.total on.Engine.total;
  check_int "completed covers the space (table units)" (Census.space_size space)
    on.Engine.completed;
  let classes = Obs.Metrics.Counter.value (Obs.counter obs "sym.classes") in
  check_bool "sym.classes nonzero" true (classes > 0);
  check_bool "strictly fewer decisions than candidates" true
    (classes < Census.space_size space);
  check_int "decisions = classes" classes
    (Obs.Metrics.Counter.value (Obs.counter obs "census.tables"))

let test_census_sym_small () =
  census_sym_identity ~space:{ Synth.num_values = 2; num_rws = 2; num_responses = 2 }
    ~cap:3 ()

(* {3,2,2} at cap 4 — the E21 workload, the issue's acceptance pin. *)
let test_census_sym_322 () =
  census_sym_identity ~space:{ Synth.num_values = 3; num_rws = 2; num_responses = 2 }
    ~cap:4 ()

let suite =
  [
    ("constant table orbit", `Quick, test_constant_table);
    ("rigid table orbit", `Quick, test_rigid_table);
    ("rank/unrank bijection matches census genomes", `Quick, test_bijection);
    ("canonize agrees with brute force on {2,2,2}", `Quick, test_brute_agreement);
    ("orbit sizes sum to the candidate count", `Quick, test_classes_partition);
    ("classes cover the space", `Quick, test_classes_cover);
    ("canonical digests", `Quick, test_digest);
    ("canonical analyze store keys", `Quick, test_canonical_query_digest);
    ("sym census bit-identical on {2,2,2}", `Quick, test_census_sym_small);
    ("sym census bit-identical on {3,2,2} cap 4", `Slow, test_census_sym_322);
    QCheck_alcotest.to_alcotest prop_canonize_invariant;
  ]
