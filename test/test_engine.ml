(* Tests for the parallel decision engine: the pool itself, determinism
   parity against the sequential deciders at several job counts, the shared
   closure cache, and the synthesis portfolio. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_covers_range () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool ~chunk:7 n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      check_bool
        (Printf.sprintf "jobs=%d: every index exactly once" jobs)
        true
        (Array.for_all (fun c -> c = 1) hits))
    job_counts

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  for round = 1 to 5 do
    let claimed = Atomic.make 0 in
    Pool.parallel_for pool 100 (fun lo hi ->
        ignore (Atomic.fetch_and_add claimed (hi - lo)));
    check_int (Printf.sprintf "round %d fully claimed" round) 100 (Atomic.get claimed)
  done

let test_pool_exception () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      (* The propagated exception carries the failing chunk and worker. *)
      (match Pool.parallel_for pool ~chunk:7 100 (fun _ _ -> failwith "boom") with
      | () -> Alcotest.fail "expected Task_error"
      | exception Pool.Task_error { lo; hi; worker; error } ->
          check_bool (Printf.sprintf "jobs=%d: chunk range sane" jobs) true
            (0 <= lo && lo < hi && hi <= 100);
          check_bool (Printf.sprintf "jobs=%d: worker id in range" jobs) true
            (0 <= worker && worker < jobs);
          check_bool (Printf.sprintf "jobs=%d: original error attached" jobs) true
            (error = Failure "boom"));
      (* The pool survives a failed task: the recorded error is cleared on
         the next submission, which then runs normally (pinned behavior). *)
      let claimed = Atomic.make 0 in
      Pool.parallel_for pool 10 (fun lo hi ->
          ignore (Atomic.fetch_and_add claimed (hi - lo)));
      check_int (Printf.sprintf "jobs=%d: usable after exception" jobs) 10
        (Atomic.get claimed))
    job_counts

let test_pool_until () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      (* A stop signal that never fires is plain parallel_for. *)
      let count = Atomic.make 0 in
      check_bool (Printf.sprintf "jobs=%d: no stop -> complete" jobs) true
        (Pool.parallel_for_until pool
           ~should_stop:(fun () -> false)
           500
           (fun lo hi -> ignore (Atomic.fetch_and_add count (hi - lo))));
      check_int (Printf.sprintf "jobs=%d: every index claimed" jobs) 500
        (Atomic.get count);
      (* A stop raised by the first chunk abandons the unclaimed tail. *)
      let stop = Atomic.make false in
      let seen = Atomic.make 0 in
      let completed =
        Pool.parallel_for_until pool ~chunk:1
          ~should_stop:(fun () -> Atomic.get stop)
          100_000
          (fun lo hi ->
            ignore (Atomic.fetch_and_add seen (hi - lo));
            Atomic.set stop true)
      in
      check_bool (Printf.sprintf "jobs=%d: stop -> incomplete" jobs) false completed;
      check_bool (Printf.sprintf "jobs=%d: tail abandoned" jobs) true
        (Atomic.get seen < 100_000))
    job_counts

let test_pool_validation () =
  check_bool "jobs = 0 rejected" true
    (try
       ignore (Pool.create ~jobs:0 ());
       false
     with Invalid_argument _ -> true);
  Pool.with_pool ~jobs:2 @@ fun pool ->
  check_int "jobs recorded" 2 (Pool.jobs pool);
  check_bool "chunk = 0 rejected" true
    (try
       Pool.parallel_for pool ~chunk:0 10 (fun _ _ -> ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Search parity: the engine must return the sequential first witness. *)

let cert_equal (a : Certificate.t) (b : Certificate.t) =
  a.Certificate.initial = b.Certificate.initial
  && a.Certificate.team = b.Certificate.team
  && a.Certificate.ops = b.Certificate.ops

let test_search_parity_gallery () =
  List.iter
    (fun (ty, n) ->
      List.iter
        (fun condition ->
          let seq = Decide.search condition ty ~n in
          List.iter
            (fun jobs ->
              Pool.with_pool ~jobs @@ fun pool ->
              match (seq, Engine.search ~config:Api.Config.default pool condition ty ~n) with
              | None, None -> ()
              | Some a, Some b ->
                  check_bool
                    (Printf.sprintf "%s n=%d jobs=%d same witness" ty.Objtype.name n jobs)
                    true (cert_equal a b)
              | _ ->
                  Alcotest.failf "%s n=%d jobs=%d: outcome mismatch" ty.Objtype.name n jobs)
            job_counts)
        [ Decide.Discerning; Decide.Recording ])
    [
      (Gallery.test_and_set, 2);
      (Gallery.test_and_set, 3);
      (Gallery.team_ladder ~cap:2, 3);
      (Gallery.x4_witness, 3);
      (Gallery.x4_witness, 5);
    ]

let test_kernel_mode_parity () =
  (* The acceptance pin for the compiled kernel: every mode, at every job
     count, returns a certificate bit-identical to the sequential
     reference decider's (or the same refutation). *)
  List.iter
    (fun (ty, n) ->
      List.iter
        (fun condition ->
          let reference = Decide.search ~mode:Kernel.Reference condition ty ~n in
          List.iter
            (fun mode ->
              List.iter
                (fun jobs ->
                  Pool.with_pool ~jobs @@ fun pool ->
                  match
                    ( reference,
                      Engine.search ~config:(Api.Config.v ~kernel:mode ()) pool
                        condition ty ~n )
                  with
                  | None, None -> ()
                  | Some a, Some b ->
                      check_bool
                        (Printf.sprintf "%s n=%d %s jobs=%d same witness"
                           ty.Objtype.name n (Kernel.mode_to_string mode) jobs)
                        true (cert_equal a b)
                  | _ ->
                      Alcotest.failf "%s n=%d %s jobs=%d: outcome mismatch"
                        ty.Objtype.name n (Kernel.mode_to_string mode) jobs)
                job_counts)
            [ Kernel.Reference; Kernel.Tables; Kernel.Trie ])
        [ Decide.Discerning; Decide.Recording ])
    [
      (Gallery.test_and_set, 2);
      (Gallery.test_and_set, 3);
      (Gallery.team_ladder ~cap:2, 3);
      (Gallery.x4_witness, 3);
    ]

let test_census_kernel_mode_parity () =
  (* Identical histograms from all three kernel modes on the exhaustible
     2/2/2 space, at jobs 4 (the fan-out path). *)
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let seq = Census.exhaustive ~cap:3 space in
  List.iter
    (fun mode ->
      Pool.with_pool ~jobs:4 @@ fun pool ->
      let run = Engine.census ~config:(Api.Config.v ~cap:3 ~kernel:mode ()) pool space in
      check_bool
        (Printf.sprintf "%s census complete" (Kernel.mode_to_string mode))
        true run.Engine.complete;
      check_bool
        (Printf.sprintf "%s histogram identical" (Kernel.mode_to_string mode))
        true
        (run.Engine.entries = seq))
    [ Kernel.Reference; Kernel.Tables; Kernel.Trie ]

let level_parity condition (seq : Analysis.level) (par : Analysis.level) =
  Analysis.equal_level seq par
  &&
  match (seq.Analysis.certificate, par.Analysis.certificate) with
  | None, None -> true
  | Some a, Some b ->
      cert_equal a b
      && (match condition with
         | Decide.Discerning -> Certificate.check_discerning b
         | Decide.Recording -> Certificate.check_recording b)
  | _ -> false

let prop_engine_analyze_parity =
  (* Random small readable types: the engine's analysis at jobs 1, 2, 4 has
     the same levels and the same, replay-valid, certificates as the
     sequential scan. *)
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let arbitrary =
    QCheck.make
      ~print:(fun g -> Format.asprintf "%a" Objtype.pp_table (Synth.to_objtype g))
      (QCheck.Gen.map
         (fun seed -> Synth.random_genome (Random.State.make [| seed |]) space)
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"engine analyze parity at jobs 1/2/4" ~count:60 arbitrary
    (fun g ->
      let ty = Synth.to_objtype g in
      let seq = Numbers.analyze ~cap:3 ty in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs @@ fun pool ->
          let par = Engine.analyze ~config:(Api.Config.v ~cap:3 ()) pool ty in
          Analysis.equal seq par
          && level_parity Decide.Discerning seq.Analysis.discerning par.Analysis.discerning
          && level_parity Decide.Recording seq.Analysis.recording par.Analysis.recording)
        job_counts)

let test_analyze_all_gallery_parity () =
  let types = List.map snd (Gallery.all ()) in
  let seq = List.map (Numbers.analyze ~cap:3) types in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let par = Engine.analyze_all ~config:(Api.Config.v ~cap:3 ()) pool types in
  List.iter2
    (fun (s : Analysis.t) (p : Analysis.t) ->
      check_bool (s.Analysis.type_name ^ " parity") true (Analysis.equal s p))
    seq par

let test_census_parity () =
  (* The full 2-value / 2-RMW / 2-response space (256 tables): identical
     histogram at every job count. *)
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let seq = Census.exhaustive ~cap:3 space in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let run = Engine.census ~config:(Api.Config.v ~cap:3 ()) pool space in
      check_bool (Printf.sprintf "jobs=%d run complete" jobs) true
        (run.Engine.complete && run.Engine.completed = run.Engine.total);
      check_bool
        (Printf.sprintf "jobs=%d histogram identical" jobs)
        true
        (run.Engine.entries = seq))
    job_counts

let test_census_checkpoint_resume () =
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let seq = Census.exhaustive ~cap:3 space in
  let path = Filename.temp_file "rcn-test-census" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let full = Engine.census ~checkpoint:path ~config:(Api.Config.v ~cap:3 ()) pool space in
  check_bool "checkpointed run complete" true full.Engine.complete;
  (* Simulate a kill mid-run: keep the header plus 100 decided-table lines,
     then a torn trailing line with no newline, as a dying write leaves. *)
  let lines = In_channel.with_open_text path In_channel.input_lines in
  let header = List.hd lines in
  let kept = List.filteri (fun i _ -> 1 <= i && i <= 100) lines in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) (header :: kept);
      Out_channel.output_string oc "12 3");
  let resumed =
    Engine.census ~checkpoint:path ~resume:true ~config:(Api.Config.v ~cap:3 ()) pool
      space
  in
  check_bool "resumed run complete" true resumed.Engine.complete;
  check_int "torn tail dropped, whole lines loaded" 100 resumed.Engine.resumed;
  check_int "each table decided exactly once" (Census.space_size space)
    resumed.Engine.completed;
  check_bool "stitched histogram identical to the sequential census" true
    (resumed.Engine.entries = seq);
  (* A checkpoint from different census parameters is rejected, not merged. *)
  check_bool "stale checkpoint rejected" true
    (try
       ignore
         (Engine.census ~checkpoint:path ~resume:true
            ~config:(Api.Config.v ~cap:4 ())
            pool space);
       false
     with Invalid_argument _ -> true)

let with_checkpoint_file lines_then_tail f =
  let path = Filename.temp_file "rcn-test-ckpt" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Out_channel.with_open_text path (fun oc ->
      let lines, tail = lines_then_tail in
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines;
      Option.iter (Out_channel.output_string oc) tail);
  f path

let test_checkpoint_load_edge_cases () =
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let header = Engine.Checkpoint.header ~space ~cap:3 ~total:256 in
  (* A valid entry line as the canonical writer emits it, sans the
     trailing newline ([with_checkpoint_file] adds it back). *)
  let ck i d r =
    let l = Engine.Checkpoint.line i d r in
    String.sub l 0 (String.length l - 1)
  in
  (* Duplicate index lines come back in file order, so a
     first-occurrence-wins consumer keeps the earliest append — which is
     what [census ~resume] does with its [finished] guard. *)
  with_checkpoint_file ([ header; ck 7 2 1; ck 9 3 2; ck 7 4 4 ], None) (fun path ->
      let entries = Engine.Checkpoint.load path ~expected:header in
      check_bool "file order preserved" true
        (entries = [ (7, (2, 1)); (9, (3, 2)); (7, (4, 4)) ]);
      check_bool "first duplicate wins under the resume guard" true
        (List.assoc 7 entries = (2, 1)));
  (* A torn trailing line (killed writer) followed by nothing is dropped;
     the whole lines before it all load. *)
  with_checkpoint_file ([ header; ck 3 1 1; ck 4 2 2 ], Some "250 3") (fun path ->
      check_bool "torn tail dropped" true
        (Engine.Checkpoint.load path ~expected:header
        = [ (3, (1, 1)); (4, (2, 2)) ]));
  (* A matching header whose indices exceed [total] loads as written —
     range checking is the consumer's job, and [census ~resume] skips the
     out-of-range entries rather than crashing. *)
  with_checkpoint_file ([ header; ck 300 2 2; ck 5 1 1; ck (-1) 2 2 ], None) (fun path ->
      check_bool "out-of-range indices returned as written" true
        (Engine.Checkpoint.load path ~expected:header
        = [ (300, (2, 2)); (5, (1, 1)); (-1, (2, 2)) ]));
  with_checkpoint_file ([ header; ck 300 2 2; ck (-1) 2 2 ], None) (fun path ->
      Pool.with_pool ~jobs:2 @@ fun pool ->
      let run =
        Engine.census ~checkpoint:path ~resume:true
          ~config:(Api.Config.v ~cap:3 ())
          pool space
      in
      check_int "out-of-range checkpoint entries are skipped, not resumed" 0
        run.Engine.resumed;
      check_bool "census still completes" true run.Engine.complete);
  (* A *terminated* line failing its CRC is corruption — acknowledged
     whole, so it cannot be a crash artifact — and raises with the
     offset rather than being silently dropped. *)
  with_checkpoint_file ([ header; ck 3 1 1; ck 4 2 2 ], None) (fun path ->
      let bytes =
        Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
      in
      let off = Bytes.index bytes '\n' + 1 in
      Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 1));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
      check_bool "corrupt checkpoint line raises, never silently drops" true
        (try
           ignore (Engine.Checkpoint.load path ~expected:header);
           false
         with Fsio.Corrupt { offset; _ } -> offset = off));
  (* A missing file is an empty resume, not an error. *)
  check_bool "missing checkpoint loads empty" true
    (Engine.Checkpoint.load "/nonexistent/rcn-ckpt" ~expected:header = [])

(* The durability contract, pinned byte by byte: a [kill -9] (or, with
   --durable, a power cut) can truncate the checkpoint at *any* byte
   offset inside the record being appended.  Whatever the cut point, the
   loader must keep every complete record, drop at most the torn one, and
   a resumed census must reach the identical histogram. *)
let test_checkpoint_truncate_every_offset () =
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let seq = Census.exhaustive ~cap:3 space in
  let path = Filename.temp_file "rcn-test-ckpt" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Pool.with_pool ~jobs:2 @@ fun pool ->
  (* [durable] exercises the fsync path; the file contents are the same. *)
  let full =
    Engine.census ~checkpoint:path ~durable:true
      ~config:(Api.Config.v ~cap:3 ())
      pool space
  in
  check_bool "durable checkpointed run complete" true full.Engine.complete;
  check_bool "durable run matches the sequential census" true
    (full.Engine.entries = seq);
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let header = List.hd (String.split_on_char '\n' bytes) in
  let size = String.length bytes in
  let whole = Engine.Checkpoint.load path ~expected:header in
  let n_records = List.length whole in
  (* Find where the last record starts: the byte after the second-to-last
     newline. *)
  let last_start =
    let rec back i = if bytes.[i] = '\n' then i + 1 else back (i - 1) in
    back (size - 2)
  in
  let cut_path = Filename.temp_file "rcn-test-cut" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists cut_path then Sys.remove cut_path)
  @@ fun () ->
  for cut = last_start to size do
    Out_channel.with_open_bin cut_path (fun oc ->
        Out_channel.output_string oc (String.sub bytes 0 cut));
    let loaded = Engine.Checkpoint.load cut_path ~expected:header in
    (* An unterminated last line is torn by definition — the newline is
       part of the record — so only the untouched file keeps them all.
       (v1 accepted a complete-looking unterminated line; v2 cannot,
       since a resuming writer appends after the truncation point and
       must never glue onto a half record.) *)
    let expect = if cut = size then n_records else n_records - 1 in
    check_int
      (Printf.sprintf "cut at byte %d keeps every complete record" cut)
      expect (List.length loaded);
    check_bool
      (Printf.sprintf "cut at byte %d is a prefix of the full log" cut)
      true
      (loaded = List.filteri (fun i _ -> i < expect) whole)
  done;
  (* Resume from a mid-record cut: the torn record is recomputed and the
     stitched histogram is bit-identical. *)
  Out_channel.with_open_bin cut_path (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 (last_start + 2)));
  let resumed =
    Engine.census ~checkpoint:cut_path ~resume:true
      ~config:(Api.Config.v ~cap:3 ())
      pool space
  in
  check_bool "resumed-from-torn-tail run complete" true resumed.Engine.complete;
  check_int "only whole records were resumed" (n_records - 1) resumed.Engine.resumed;
  check_bool "stitched histogram identical" true (resumed.Engine.entries = seq)

(* ------------------------------------------------------------------ *)
(* Deadlines: degrade, never lie. *)

let test_expired_deadline_analyze () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      (* A relative deadline of -5s is already expired on entry. *)
      let a =
        Engine.analyze
          ~config:(Api.Config.v ~cap:4 ~deadline:(-5.0) ())
          pool Gallery.test_and_set
      in
      let check_level name (l : Analysis.level) =
        check_int (Printf.sprintf "jobs=%d: %s floor" jobs name) 1 l.Analysis.value;
        check_bool
          (Printf.sprintf "jobs=%d: %s is a lower bound" jobs name)
          true
          (l.Analysis.status = Analysis.At_least)
      in
      check_level "discerning" a.Analysis.discerning;
      check_level "recording" a.Analysis.recording)
    job_counts

let test_deadline_honesty () =
  (* Whatever the budget, a cut analysis never claims more than the uncut
     one, and an [Exact] status is only ever the true value. *)
  let seq = Numbers.analyze ~cap:4 Gallery.x4_witness in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  List.iter
    (fun budget ->
      let a =
        Engine.analyze
          ~config:(Api.Config.v ~cap:4 ~deadline:budget ())
          pool Gallery.x4_witness
      in
      let sub name (cut : Analysis.level) (full : Analysis.level) =
        check_bool
          (Printf.sprintf "%s at %.3fs never exceeds the uncut level" name budget)
          true
          (cut.Analysis.value <= full.Analysis.value);
        if cut.Analysis.status = Analysis.Exact then
          check_int
            (Printf.sprintf "%s at %.3fs: Exact is the true value" name budget)
            full.Analysis.value cut.Analysis.value
      in
      sub "discerning" a.Analysis.discerning seq.Analysis.discerning;
      sub "recording" a.Analysis.recording seq.Analysis.recording)
    [ 0.001; 0.02; 1000.0 ]

let test_expired_outcome_not_cached () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let cache = Engine.Cache.create () in
  (match
     Engine.search_within ~cache
       ~config:(Api.Config.v ~deadline:(-1.0) ())
       pool Decide.Discerning Gallery.test_and_set ~n:2
   with
  | Engine.Expired -> ()
  | _ -> Alcotest.fail "already-expired deadline must report Expired");
  (* The expired sweep published nothing: the next query computes for real. *)
  (match
     Engine.search_within ~cache ~config:Api.Config.default pool Decide.Discerning
       Gallery.test_and_set ~n:2
   with
  | Engine.Found _ -> ()
  | _ -> Alcotest.fail "test-and-set is 2-discerning");
  let s = Engine.Cache.stats cache in
  check_int "no outcome was served from the expired sweep" 0 s.Engine.Cache.hits

let test_expired_deadline_portfolio () =
  let space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 } in
  Pool.with_pool ~jobs:2 @@ fun pool ->
  check_bool "expired deadline launches no climbs" true
    (Engine.synth_portfolio ~portfolio:3
       ~config:(Api.Config.v ~deadline:(-1.0) ())
       pool ~target:4 space
    = None)

(* ------------------------------------------------------------------ *)
(* Closure cache *)

let test_cache_second_query_is_free () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let cache = Engine.Cache.create () in
  (* The schedule memo feeds the reference decider (the kernel shares
     compiled tries internally), so this pin runs the reference path. *)
  let kernel = Kernel.Reference in
  let a1 =
    Engine.analyze ~cache ~config:(Api.Config.v ~cap:3 ~kernel ()) pool
      Gallery.test_and_set
  in
  let s1 = Engine.Cache.stats cache in
  check_bool "first analysis computes outcomes" true (s1.Engine.Cache.misses > 0);
  check_int "no outcome hits yet" 0 s1.Engine.Cache.hits;
  check_int "schedule sets enumerated once per n (n = 2, 3)" 2
    s1.Engine.Cache.sched_misses;
  let a2 =
    Engine.analyze ~cache ~config:(Api.Config.v ~cap:3 ~kernel ()) pool
      Gallery.test_and_set
  in
  let s2 = Engine.Cache.stats cache in
  check_int "second analysis recomputes nothing" s1.Engine.Cache.misses
    s2.Engine.Cache.misses;
  check_int "every query served from the memo" s1.Engine.Cache.misses
    s2.Engine.Cache.hits;
  check_int "no schedule re-enumeration" s1.Engine.Cache.sched_misses
    s2.Engine.Cache.sched_misses;
  check_bool "identical analyses" true (Analysis.equal a1 a2)

let test_cache_parity_across_jobs () =
  let seq = Numbers.analyze ~cap:4 Gallery.x4_witness in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let cache = Engine.Cache.create () in
      let cached = Engine.analyze ~cache ~config:(Api.Config.v ~cap:4 ()) pool Gallery.x4_witness in
      check_bool
        (Printf.sprintf "jobs=%d cached analysis parity" jobs)
        true (Analysis.equal seq cached))
    job_counts

let test_cache_stats_invariant_concurrent () =
  (* Many domains hammer one cache with the same handful of queries: races
     between probe and publish are guaranteed.  Once quiescent, every probe
     must be accounted to exactly one bucket — hits + misses + expired =
     probes — and misses must equal the number of distinct keys, never
     more: a publish that lost the race is a late hit, not a second miss
     (the double-count this pins against), and Expired probes land in
     their own bucket rather than vanishing. *)
  let cache = Engine.Cache.create () in
  let queries =
    [
      (Decide.Discerning, Gallery.test_and_set, 2);
      (Decide.Discerning, Gallery.test_and_set, 3);
      (Decide.Recording, Gallery.test_and_set, 2);
      (Decide.Discerning, Gallery.team_ladder ~cap:2, 2);
      (Decide.Recording, Gallery.team_ladder ~cap:2, 2);
    ]
  in
  let rounds = 20 in
  let domains = 4 in
  let worker () =
    Pool.with_pool ~jobs:1 @@ fun pool ->
    for _ = 1 to rounds do
      List.iter
        (fun (condition, ty, n) ->
          ignore
            (Engine.search_within ~cache ~config:Api.Config.default pool condition ty
               ~n))
        queries
    done
  in
  let handles = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join handles;
  let s = Engine.Cache.stats cache in
  check_int "every probe accounted"
    s.Engine.Cache.probes
    (s.Engine.Cache.hits + s.Engine.Cache.misses + s.Engine.Cache.expired);
  check_int "one probe per query" (rounds * domains * List.length queries)
    s.Engine.Cache.probes;
  check_int "one miss per distinct key, even under races"
    (List.length queries) s.Engine.Cache.misses;
  check_int "no expired probes without a deadline" 0 s.Engine.Cache.expired

let test_cache_expired_probes_accounted () =
  (* Expired probes used to be counted nowhere; now they are their own
     bucket and the invariant still sums. *)
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let cache = Engine.Cache.create () in
  for _ = 1 to 3 do
    match
      Engine.search_within ~cache
        ~config:(Api.Config.v ~deadline:(-1.0) ())
        pool Decide.Discerning Gallery.test_and_set ~n:2
    with
    | Engine.Expired -> ()
    | _ -> Alcotest.fail "already-expired deadline must report Expired"
  done;
  ignore
    (Engine.search_within ~cache ~config:Api.Config.default pool Decide.Discerning
       Gallery.test_and_set ~n:2);
  let s = Engine.Cache.stats cache in
  check_int "expired bucket counts the cut sweeps" 3 s.Engine.Cache.expired;
  check_int "completed sweep is one miss" 1 s.Engine.Cache.misses;
  check_int "invariant holds with expired probes"
    s.Engine.Cache.probes
    (s.Engine.Cache.hits + s.Engine.Cache.misses + s.Engine.Cache.expired)

(* ------------------------------------------------------------------ *)
(* Synthesis portfolio *)

let test_synth_portfolio_parity () =
  let space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 } in
  let reference = Synth.search ~seed:1 ~max_iterations:2_000 ~target:4 space in
  check_bool "reference search finds a witness" true (reference <> None);
  let reference = Option.get reference in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      match
        Engine.synth_portfolio ~seed:1 ~max_iterations:2_000 ~portfolio:3
          ~config:Api.Config.default pool ~target:4 space
      with
      | None -> Alcotest.fail "portfolio found no witness"
      | Some w ->
          check_bool
            (Printf.sprintf "jobs=%d returns the lowest-seed witness" jobs)
            true
            (Objtype.equal_behaviour w.Synth.objtype reference.Synth.objtype))
    [ 1; 2 ];
  check_bool "portfolio = 0 rejected" true
    (try
       Pool.with_pool ~jobs:1 @@ fun pool ->
       ignore
         (Engine.synth_portfolio ~portfolio:0 ~config:Api.Config.default pool ~target:4
            space);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Configuration *)

let test_default_jobs_env () =
  Unix.putenv "RCN_JOBS" "3";
  check_int "RCN_JOBS overrides" 3 (Engine.default_jobs ());
  Unix.putenv "RCN_JOBS" "zero";
  check_bool "unusable RCN_JOBS rejected" true
    (try
       ignore (Engine.default_jobs ());
       false
     with Invalid_argument _ -> true);
  Unix.putenv "RCN_JOBS" "1";
  check_int "restored" 1 (Engine.default_jobs ())

let suite =
  [
    Alcotest.test_case "pool covers the range exactly once" `Quick test_pool_covers_range;
    Alcotest.test_case "pool is reusable across tasks" `Quick test_pool_reuse;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool cooperative cancellation" `Quick test_pool_until;
    Alcotest.test_case "pool argument validation" `Quick test_pool_validation;
    Alcotest.test_case "search parity on gallery anchors" `Slow test_search_parity_gallery;
    Alcotest.test_case "kernel modes match the reference at jobs 1/2/4" `Slow
      test_kernel_mode_parity;
    Alcotest.test_case "census parity across kernel modes" `Slow
      test_census_kernel_mode_parity;
    Alcotest.test_case "analyze_all parity on the gallery" `Slow test_analyze_all_gallery_parity;
    Alcotest.test_case "census parity on the 2/2/2 space" `Slow test_census_parity;
    Alcotest.test_case "census checkpoint / resume round-trip" `Slow
      test_census_checkpoint_resume;
    Alcotest.test_case "checkpoint load edge cases" `Quick
      test_checkpoint_load_edge_cases;
    Alcotest.test_case "checkpoint survives truncation at every byte offset" `Slow
      test_checkpoint_truncate_every_offset;
    Alcotest.test_case "expired deadline degrades to honest floors" `Quick
      test_expired_deadline_analyze;
    Alcotest.test_case "deadline-cut analyses never overclaim" `Slow
      test_deadline_honesty;
    Alcotest.test_case "expired sweeps are not cached" `Quick
      test_expired_outcome_not_cached;
    Alcotest.test_case "expired deadline skips portfolio climbs" `Quick
      test_expired_deadline_portfolio;
    Alcotest.test_case "closure cache: second query is free" `Quick test_cache_second_query_is_free;
    Alcotest.test_case "cached analysis parity across jobs" `Slow test_cache_parity_across_jobs;
    Alcotest.test_case "cache stats invariant under concurrency" `Slow
      test_cache_stats_invariant_concurrent;
    Alcotest.test_case "expired probes are accounted" `Quick
      test_cache_expired_probes_accounted;
    Alcotest.test_case "synthesis portfolio parity" `Slow test_synth_portfolio_parity;
    Alcotest.test_case "RCN_JOBS handling" `Quick test_default_jobs_env;
    QCheck_alcotest.to_alcotest prop_engine_analyze_parity;
  ]
