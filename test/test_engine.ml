(* Tests for the parallel decision engine: the pool itself, determinism
   parity against the sequential deciders at several job counts, the shared
   closure cache, and the synthesis portfolio. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let job_counts = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_covers_range () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.parallel_for pool ~chunk:7 n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      check_bool
        (Printf.sprintf "jobs=%d: every index exactly once" jobs)
        true
        (Array.for_all (fun c -> c = 1) hits))
    job_counts

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  for round = 1 to 5 do
    let claimed = Atomic.make 0 in
    Pool.parallel_for pool 100 (fun lo hi ->
        ignore (Atomic.fetch_and_add claimed (hi - lo)));
    check_int (Printf.sprintf "round %d fully claimed" round) 100 (Atomic.get claimed)
  done

let test_pool_exception () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  check_bool "exception propagates to the caller" true
    (try
       Pool.parallel_for pool 100 (fun _ _ -> failwith "boom");
       false
     with Failure _ -> true);
  (* the pool survives a failed task *)
  let claimed = Atomic.make 0 in
  Pool.parallel_for pool 10 (fun lo hi -> ignore (Atomic.fetch_and_add claimed (hi - lo)));
  check_int "usable after exception" 10 (Atomic.get claimed)

let test_pool_validation () =
  check_bool "jobs = 0 rejected" true
    (try
       ignore (Pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true);
  Pool.with_pool ~jobs:2 @@ fun pool ->
  check_int "jobs recorded" 2 (Pool.jobs pool);
  check_bool "chunk = 0 rejected" true
    (try
       Pool.parallel_for pool ~chunk:0 10 (fun _ _ -> ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Search parity: the engine must return the sequential first witness. *)

let cert_equal (a : Certificate.t) (b : Certificate.t) =
  a.Certificate.initial = b.Certificate.initial
  && a.Certificate.team = b.Certificate.team
  && a.Certificate.ops = b.Certificate.ops

let test_search_parity_gallery () =
  List.iter
    (fun (ty, n) ->
      List.iter
        (fun condition ->
          let seq = Decide.search condition ty ~n in
          List.iter
            (fun jobs ->
              Pool.with_pool ~jobs @@ fun pool ->
              match (seq, Engine.search pool condition ty ~n) with
              | None, None -> ()
              | Some a, Some b ->
                  check_bool
                    (Printf.sprintf "%s n=%d jobs=%d same witness" ty.Objtype.name n jobs)
                    true (cert_equal a b)
              | _ ->
                  Alcotest.failf "%s n=%d jobs=%d: outcome mismatch" ty.Objtype.name n jobs)
            job_counts)
        [ Decide.Discerning; Decide.Recording ])
    [
      (Gallery.test_and_set, 2);
      (Gallery.test_and_set, 3);
      (Gallery.team_ladder ~cap:2, 3);
      (Gallery.x4_witness, 3);
      (Gallery.x4_witness, 5);
    ]

let level_parity condition (seq : Analysis.level) (par : Analysis.level) =
  Analysis.equal_level seq par
  &&
  match (seq.Analysis.certificate, par.Analysis.certificate) with
  | None, None -> true
  | Some a, Some b ->
      cert_equal a b
      && (match condition with
         | Decide.Discerning -> Certificate.check_discerning b
         | Decide.Recording -> Certificate.check_recording b)
  | _ -> false

let prop_engine_analyze_parity =
  (* Random small readable types: the engine's analysis at jobs 1, 2, 4 has
     the same levels and the same, replay-valid, certificates as the
     sequential scan. *)
  let space = { Synth.num_values = 3; num_rws = 2; num_responses = 2 } in
  let arbitrary =
    QCheck.make
      ~print:(fun g -> Format.asprintf "%a" Objtype.pp_table (Synth.to_objtype g))
      (QCheck.Gen.map
         (fun seed -> Synth.random_genome (Random.State.make [| seed |]) space)
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"engine analyze parity at jobs 1/2/4" ~count:60 arbitrary
    (fun g ->
      let ty = Synth.to_objtype g in
      let seq = Numbers.analyze ~cap:3 ty in
      List.for_all
        (fun jobs ->
          Pool.with_pool ~jobs @@ fun pool ->
          let par = Engine.analyze ~cap:3 pool ty in
          Analysis.equal seq par
          && level_parity Decide.Discerning seq.Analysis.discerning par.Analysis.discerning
          && level_parity Decide.Recording seq.Analysis.recording par.Analysis.recording)
        job_counts)

let test_analyze_all_gallery_parity () =
  let types = List.map snd (Gallery.all ()) in
  let seq = List.map (Numbers.analyze ~cap:3) types in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let par = Engine.analyze_all ~cap:3 pool types in
  List.iter2
    (fun (s : Analysis.t) (p : Analysis.t) ->
      check_bool (s.Analysis.type_name ^ " parity") true (Analysis.equal s p))
    seq par

let test_census_parity () =
  (* The full 2-value / 2-RMW / 2-response space (256 tables): identical
     histogram at every job count. *)
  let space = { Synth.num_values = 2; num_rws = 2; num_responses = 2 } in
  let seq = Census.exhaustive ~cap:3 space in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      check_bool
        (Printf.sprintf "jobs=%d histogram identical" jobs)
        true
        (Engine.census ~cap:3 pool space = seq))
    job_counts

(* ------------------------------------------------------------------ *)
(* Closure cache *)

let test_cache_second_query_is_free () =
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let cache = Engine.Cache.create () in
  let a1 = Engine.analyze ~cache ~cap:3 pool Gallery.test_and_set in
  let s1 = Engine.Cache.stats cache in
  check_bool "first analysis computes outcomes" true (s1.Engine.Cache.misses > 0);
  check_int "no outcome hits yet" 0 s1.Engine.Cache.hits;
  check_int "schedule sets enumerated once per n (n = 2, 3)" 2
    s1.Engine.Cache.sched_misses;
  let a2 = Engine.analyze ~cache ~cap:3 pool Gallery.test_and_set in
  let s2 = Engine.Cache.stats cache in
  check_int "second analysis recomputes nothing" s1.Engine.Cache.misses
    s2.Engine.Cache.misses;
  check_int "every query served from the memo" s1.Engine.Cache.misses
    s2.Engine.Cache.hits;
  check_int "no schedule re-enumeration" s1.Engine.Cache.sched_misses
    s2.Engine.Cache.sched_misses;
  check_bool "identical analyses" true (Analysis.equal a1 a2)

let test_cache_parity_across_jobs () =
  let seq = Numbers.analyze ~cap:4 Gallery.x4_witness in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      let cache = Engine.Cache.create () in
      let cached = Engine.analyze ~cache ~cap:4 pool Gallery.x4_witness in
      check_bool
        (Printf.sprintf "jobs=%d cached analysis parity" jobs)
        true (Analysis.equal seq cached))
    job_counts

(* ------------------------------------------------------------------ *)
(* Synthesis portfolio *)

let test_synth_portfolio_parity () =
  let space = { Synth.num_values = 5; num_rws = 4; num_responses = 5 } in
  let reference = Synth.search ~seed:1 ~max_iterations:2_000 ~target:4 space in
  check_bool "reference search finds a witness" true (reference <> None);
  let reference = Option.get reference in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun pool ->
      match
        Engine.synth_portfolio ~seed:1 ~max_iterations:2_000 ~portfolio:3 pool
          ~target:4 space
      with
      | None -> Alcotest.fail "portfolio found no witness"
      | Some w ->
          check_bool
            (Printf.sprintf "jobs=%d returns the lowest-seed witness" jobs)
            true
            (Objtype.equal_behaviour w.Synth.objtype reference.Synth.objtype))
    [ 1; 2 ];
  check_bool "portfolio = 0 rejected" true
    (try
       Pool.with_pool ~jobs:1 @@ fun pool ->
       ignore (Engine.synth_portfolio ~portfolio:0 pool ~target:4 space);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Configuration *)

let test_default_jobs_env () =
  Unix.putenv "RCN_JOBS" "3";
  check_int "RCN_JOBS overrides" 3 (Engine.default_jobs ());
  Unix.putenv "RCN_JOBS" "zero";
  check_bool "unusable RCN_JOBS rejected" true
    (try
       ignore (Engine.default_jobs ());
       false
     with Invalid_argument _ -> true);
  Unix.putenv "RCN_JOBS" "1";
  check_int "restored" 1 (Engine.default_jobs ())

let suite =
  [
    Alcotest.test_case "pool covers the range exactly once" `Quick test_pool_covers_range;
    Alcotest.test_case "pool is reusable across tasks" `Quick test_pool_reuse;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool argument validation" `Quick test_pool_validation;
    Alcotest.test_case "search parity on gallery anchors" `Slow test_search_parity_gallery;
    Alcotest.test_case "analyze_all parity on the gallery" `Slow test_analyze_all_gallery_parity;
    Alcotest.test_case "census parity on the 2/2/2 space" `Slow test_census_parity;
    Alcotest.test_case "closure cache: second query is free" `Quick test_cache_second_query_is_free;
    Alcotest.test_case "cached analysis parity across jobs" `Slow test_cache_parity_across_jobs;
    Alcotest.test_case "synthesis portfolio parity" `Slow test_synth_portfolio_parity;
    Alcotest.test_case "RCN_JOBS handling" `Quick test_default_jobs_env;
    QCheck_alcotest.to_alcotest prop_engine_analyze_parity;
  ]
