(* The persistent content-addressed result store: append-log semantics,
   first-write-wins, the observability ledger, and the crash-recovery
   contract — a log truncated at *any* byte offset (the kill -9 /
   power-cut shapes) reopens to exactly its complete records and keeps
   accepting appends. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_store_file f =
  let path = Filename.temp_file "rcn-test-store" ".log" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_put_find_roundtrip () =
  with_store_file @@ fun path ->
  let obs = Obs.create () in
  let s = Store.open_store ~obs path in
  check_bool "fresh store is empty" false (Store.mem s "k1");
  check_bool "miss on empty" true (Store.find s "k1" = None);
  Store.put s ~key:"k1" "payload one";
  Store.put s ~key:"k2" "payload two\nwith a newline\nand bytes \x00\x01";
  check_bool "k1 round-trips" true (Store.find s "k1" = Some "payload one");
  check_bool "binary payload round-trips" true
    (Store.find s "k2" = Some "payload two\nwith a newline\nand bytes \x00\x01");
  check_int "two distinct keys" 2 (Store.size s);
  (* First write wins: a racing duplicate compute can never flip bytes. *)
  Store.put s ~key:"k1" "usurper";
  check_bool "duplicate put is a no-op" true (Store.find s "k1" = Some "payload one");
  let value name =
    Obs.Metrics.Counter.value (Obs.counter obs name)
  in
  check_int "puts counted once per new key" 2 (value "store.puts");
  check_int "hits counted" 3 (value "store.hits");
  check_int "misses counted" 1 (value "store.misses");
  Store.close s;
  (* Reload: everything persisted, nothing torn. *)
  let obs2 = Obs.create () in
  let s2 = Store.open_store ~obs:obs2 path in
  check_int "reload recovers both records" 2 (Store.size s2);
  check_bool "reloaded bytes identical" true (Store.find s2 "k1" = Some "payload one");
  check_int "no torn bytes on a clean log" 0
    (Obs.Metrics.Counter.value (Obs.counter obs2 "store.torn_bytes"));
  check_int "loaded records counted" 2
    (Obs.Metrics.Counter.value (Obs.counter obs2 "store.loaded"));
  Store.close s2

let test_closed_store_rejects_puts () =
  with_store_file @@ fun path ->
  let s = Store.open_store path in
  Store.put s ~key:"k" "v";
  Store.close s;
  check_bool "put after close raises" true
    (try
       Store.put s ~key:"k2" "v2";
       false
     with Invalid_argument _ -> true);
  check_bool "find keeps answering from memory" true (Store.find s "k" = Some "v")

(* The durability pin, byte by byte: build a log of three records, then
   for every cut point from zero to the full length, truncate a copy at
   that offset and reopen it.  The loader must keep exactly the records
   whose bytes are wholly before the cut, report the torn remainder, and
   the reopened store must accept a fresh append that survives the next
   reload. *)
let test_truncate_every_offset () =
  with_store_file @@ fun path ->
  let records = [ ("alpha", "first payload"); ("beta", "2nd"); ("gamma", "cc\ncc") ] in
  let s = Store.open_store path in
  List.iter (fun (k, v) -> Store.put s ~key:k v) records;
  Store.close s;
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let size = String.length bytes in
  (* Record boundaries: offsets after which a prefix holds k complete
     records.  Recompute them from the canonical encoder, which pins the
     record shape ("rcnstore3 <key> <len> <crc32hex>\n<payload>\n"). *)
  let boundaries =
    let ends, _ =
      List.fold_left
        (fun (ends, off) (k, v) ->
          let len = String.length (Fsio.Record.encode ~magic:"rcnstore3" ~tag:k v) in
          (ends @ [ off + len ], off + len))
        ([ 0 ], 0) records
    in
    ends
  in
  check_int "boundary arithmetic matches the file" size
    (List.nth boundaries (List.length records));
  with_store_file @@ fun cut_path ->
  for cut = 0 to size do
    Out_channel.with_open_bin cut_path (fun oc ->
        Out_channel.output_string oc (String.sub bytes 0 cut));
    let expected = List.length (List.filter (fun b -> b <= cut) boundaries) - 1 in
    let obs = Obs.create () in
    let s = Store.open_store ~obs cut_path in
    check_int (Printf.sprintf "cut at %d keeps every complete record" cut)
      expected (Store.size s);
    check_int (Printf.sprintf "cut at %d loads what it keeps" cut)
      expected
      (Obs.Metrics.Counter.value (Obs.counter obs "store.loaded"));
    let torn = Obs.Metrics.Counter.value (Obs.counter obs "store.torn_bytes") in
    let last_boundary = List.fold_left (fun a b -> if b <= cut then max a b else a) 0 boundaries in
    check_int (Printf.sprintf "cut at %d truncates exactly the torn tail" cut)
      (cut - last_boundary) torn;
    List.iteri
      (fun i (k, v) ->
        if i < expected then
          check_bool
            (Printf.sprintf "cut at %d: record %d byte-identical" cut i)
            true
            (Store.find s k = Some v))
      records;
    (* The reopened store keeps working: append, close, reload. *)
    Store.put s ~key:"fresh" "post-crash append";
    Store.close s;
    let s2 = Store.open_store cut_path in
    check_bool (Printf.sprintf "cut at %d: post-crash append survives reload" cut)
      true
      (Store.find s2 "fresh" = Some "post-crash append");
    check_int (Printf.sprintf "cut at %d: reload size" cut) (expected + 1)
      (Store.size s2);
    Store.close s2
  done

let test_fsync_path () =
  (* ~fsync:true exercises the fsync branch; contents are the same. *)
  with_store_file @@ fun path ->
  let s = Store.open_store ~fsync:true path in
  Store.put s ~key:"durable" "bytes";
  Store.close s;
  let s2 = Store.open_store path in
  check_bool "fsync'd record reloads" true (Store.find s2 "durable" = Some "bytes");
  Store.close s2

let test_concurrent_puts_first_wins () =
  (* Many threads race distinct and colliding keys; the store must end
     with one record per key and the first bytes published. *)
  with_store_file @@ fun path ->
  let s = Store.open_store path in
  Store.put s ~key:"contended" "the original";
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun () ->
            for j = 0 to 24 do
              Store.put s ~key:"contended" (Printf.sprintf "usurper %d.%d" i j);
              Store.put s ~key:(Printf.sprintf "t%d-%d" i j) "x"
            done)
          ())
  in
  List.iter Thread.join threads;
  check_bool "first write still wins under contention" true
    (Store.find s "contended" = Some "the original");
  check_int "every distinct key present" (1 + (8 * 25)) (Store.size s);
  Store.close s;
  let s2 = Store.open_store path in
  check_int "log replays to the same map" (1 + (8 * 25)) (Store.size s2);
  check_bool "contended bytes stable across reload" true
    (Store.find s2 "contended" = Some "the original");
  Store.close s2

(* Raw log bytes in the store's record shape, for building logs no
   single live store would write (duplicates, torn tails). *)
let raw_record key payload = Fsio.Record.encode ~magic:"rcnstore3" ~tag:key payload

(* A genuinely torn tail: a complete header promising more payload than
   the file holds (what a crash mid-append leaves behind). *)
let torn_tail = "rcnstore3 torn 999 00000000\nhalf-writ"

let write_raw path chunks =
  Out_channel.with_open_bin path (fun oc ->
      List.iter (Out_channel.output_string oc) chunks)

let test_compact_drops_duplicates_and_torn_tail () =
  with_store_file @@ fun path ->
  (* Two appenders' worth of history: a duplicate key (replay keeps the
     last occurrence) and a torn tail (a killed writer). *)
  write_raw path
    [
      raw_record "k1" "first";
      raw_record "k2" "two";
      raw_record "k1" "override";
      torn_tail;
    ];
  let original_size = (Unix.stat path).Unix.st_size in
  let obs = Obs.create () in
  let kept, dropped = Store.compact ~obs path in
  check_int "both live keys kept" 2 kept;
  check_int "dropped = original minus compacted bytes"
    (original_size - (Unix.stat path).Unix.st_size)
    dropped;
  check_bool "something was dropped" true (dropped > 0);
  check_int "compactions counted" 1
    (Obs.Metrics.Counter.value (Obs.counter obs "store.compactions"));
  check_int "dropped bytes counted" dropped
    (Obs.Metrics.Counter.value (Obs.counter obs "store.compacted_bytes"));
  (* Replay semantics preserved exactly: same map, now with a clean log. *)
  let obs2 = Obs.create () in
  let s = Store.open_store ~obs:obs2 path in
  check_int "compacted log replays to the same size" 2 (Store.size s);
  check_bool "last duplicate still wins" true (Store.find s "k1" = Some "override");
  check_bool "untouched record intact" true (Store.find s "k2" = Some "two");
  check_int "compacted log has no torn tail" 0
    (Obs.Metrics.Counter.value (Obs.counter obs2 "store.torn_bytes"));
  Store.close s;
  (* Idempotence: a second compaction is a byte-level no-op. *)
  let before = In_channel.with_open_bin path In_channel.input_all in
  let kept2, dropped2 = Store.compact path in
  check_int "second compaction keeps the same records" 2 kept2;
  check_int "second compaction drops nothing" 0 dropped2;
  check_bool "second compaction leaves identical bytes" true
    (In_channel.with_open_bin path In_channel.input_all = before)

let test_compact_edge_cases () =
  (* A missing store is an empty compaction, not an error. *)
  with_store_file @@ fun path ->
  Sys.remove path;
  check_bool "missing store compacts to (0, 0)" true (Store.compact path = (0, 0));
  check_bool "compacting a missing store does not create it" false
    (Sys.file_exists path);
  (* A leftover temp file from a killed compaction is overwritten. *)
  write_raw path [ raw_record "k" "v"; raw_record "k" "v2" ];
  let tmp = path ^ ".compact.tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc "stale junk from a killed compaction");
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let kept, dropped = Store.compact path in
      check_int "compaction shrugs off the stale temp file" 1 kept;
      check_bool "the duplicate was dropped" true (dropped > 0);
      check_bool "the temp file was consumed by the rename" false
        (Sys.file_exists tmp);
      let s = Store.open_store path in
      check_bool "map preserved" true (Store.find s "k" = Some "v2");
      Store.close s)

(* Format versioning: a log written by the previous magic (rcnstore2 —
   before records grew the CRC field) must be ignored cleanly, exactly
   like a torn tail: nothing replayed, the old bytes truncated away on
   the first append, and the store fully usable. *)
let test_old_format_ignored () =
  with_store_file @@ fun path ->
  let old_record key payload =
    Printf.sprintf "rcnstore2 %s %d\n%s\n" key (String.length payload) payload
  in
  write_raw path [ old_record "stale" "v1 bytes"; old_record "older" "more" ];
  let obs = Obs.create () in
  let s = Store.open_store ~obs path in
  check_int "no old-format record replayed" 0 (Store.size s);
  check_bool "old-format keys invisible" true (Store.find s "stale" = None);
  check_bool "old bytes counted as torn" true
    (Obs.Metrics.Counter.value (Obs.counter obs "store.torn_bytes") > 0);
  Store.put s ~key:"fresh" "v3 bytes";
  Store.close s;
  let s2 = Store.open_store path in
  check_int "only the new record survives" 1 (Store.size s2);
  check_bool "new record replays" true (Store.find s2 "fresh" = Some "v3 bytes");
  Store.close s2;
  let contents = In_channel.with_open_bin path In_channel.input_all in
  check_bool "old bytes gone from the log" false
    (let re = "rcnstore2" in
     let n = String.length contents and m = String.length re in
     let rec probe i = i + m <= n && (String.sub contents i m = re || probe (i + 1)) in
     probe 0)

(* The crash-safety claim, against the real binary: SIGKILL [rcn store
   compact] at an arbitrary point; whatever it got to, the log must
   reopen to exactly the original map, and the next compaction must
   succeed cleanly.  (The kill may land before, during or after the
   rename — the invariant holds in every case, which is the point.) *)
let test_compact_survives_kill () =
  let rcn = Filename.concat (Filename.dirname Sys.executable_name) "../bin/rcn.exe" in
  with_store_file @@ fun path ->
  let n_keys = 500 in
  let chunks =
    List.concat_map
      (fun i ->
        let k = Printf.sprintf "key%03d" (i mod n_keys) in
        [ raw_record k (Printf.sprintf "payload %d for %s" i k) ])
      (List.init (n_keys * 4) Fun.id)
  in
  write_raw path (chunks @ [ torn_tail ]);
  let expected k =
    (* last occurrence wins: the highest i mapping to k *)
    let i = (3 * n_keys) + int_of_string (String.sub k 3 3) in
    Printf.sprintf "payload %d for %s" i k
  in
  let check_map label =
    let s = Store.open_store path in
    check_int (label ^ ": all keys present") n_keys (Store.size s);
    List.iter
      (fun i ->
        let k = Printf.sprintf "key%03d" i in
        check_bool (label ^ ": " ^ k) true (Store.find s k = Some (expected k)))
      [ 0; 1; n_keys / 2; n_keys - 1 ];
    Store.close s
  in
  check_map "before";
  let kills = ref 0 in
  for round = 0 to 4 do
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pid =
      Unix.create_process rcn
        [| rcn; "store"; "compact"; path |]
        Unix.stdin devnull Unix.stderr
    in
    Unix.close devnull;
    (* Stagger the kill across rounds to land at different phases. *)
    Unix.sleepf (0.004 *. float_of_int round);
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (match Unix.waitpid [] pid with
    | _, Unix.WSIGNALED s when s = Sys.sigkill -> incr kills
    | _ -> ());
    check_map (Printf.sprintf "after kill round %d" round)
  done;
  check_bool "at least one round actually killed the child" true (!kills > 0);
  (* The survivor state always accepts a clean compaction. *)
  let kept, _ = Store.compact path in
  check_int "final compaction keeps every key" n_keys kept;
  check_map "after final compaction";
  let tmp = path ^ ".compact.tmp" in
  if Sys.file_exists tmp then Sys.remove tmp

(* Satellite regression: append error-atomicity.  ENOSPC strikes
   mid-record; the failed put must leave the log byte-identical (whole
   record or nothing), flip the store to sticky read-only, and the
   reopened log must hold exactly the records acknowledged before the
   failure — the failed key absent, never a half record. *)
let test_enospc_mid_record_atomic () =
  with_store_file @@ fun path ->
  (* Two clean puts first, then ENOSPC on the very next write op. *)
  let s = Store.open_store path in
  Store.put s ~key:"a" "alpha payload";
  Store.put s ~key:"b" "beta payload";
  Store.close s;
  let clean = In_channel.with_open_bin path In_channel.input_all in
  (* Injected by global op index: open is 0, the replay read is 1, so
     the first append is op 2. *)
  let injector = Fsio.Injector.of_plan [ (2, Fsio.Err Unix.ENOSPC) ] in
  let obs = Obs.create () in
  let s = Store.open_store ~obs ~injector path in
  check_bool "store opens healthy" false (Store.readonly s);
  check_bool "the doomed put raises Io_error" true
    (try
       Store.put s ~key:"doomed" "this record must not survive in part";
       false
     with Fsio.Io_error { error = Unix.ENOSPC; _ } -> true);
  check_bool "first failure flips sticky read-only" true (Store.readonly s);
  check_int "readonly flip counted" 1
    (Obs.Metrics.Counter.value (Obs.counter obs "store.readonly"));
  (* Degraded mode: later puts drop silently, reads keep answering. *)
  Store.put s ~key:"late" "dropped";
  check_int "degraded puts counted as dropped" 1
    (Obs.Metrics.Counter.value (Obs.counter obs "store.dropped_puts"));
  check_bool "reads still answered from memory" true
    (Store.find s "a" = Some "alpha payload");
  Store.close s;
  check_bool "failed append left the log byte-identical" true
    (In_channel.with_open_bin path In_channel.input_all = clean);
  let obs2 = Obs.create () in
  let s2 = Store.open_store ~obs:obs2 path in
  check_int "reopen holds exactly the acknowledged records" 2 (Store.size s2);
  check_bool "failed key absent after reopen" true (Store.find s2 "doomed" = None);
  check_bool "degraded-drop key absent after reopen" true (Store.find s2 "late" = None);
  check_int "no torn bytes: the rollback was exact" 0
    (Obs.Metrics.Counter.value (Obs.counter obs2 "store.torn_bytes"));
  Store.close s2

(* Satellite: [compact --max-bytes] evicts oldest-first-seen records
   past the budget, idempotently. *)
let test_compact_eviction () =
  with_store_file @@ fun path ->
  let records =
    List.init 6 (fun i -> (Printf.sprintf "k%d" i, Printf.sprintf "payload number %d" i))
  in
  write_raw path (List.map (fun (k, v) -> raw_record k v) records);
  let encoded_len (k, v) = String.length (raw_record k v) in
  let total = List.fold_left (fun a r -> a + encoded_len r) 0 records in
  (* Budget for exactly the last four records: the two oldest go. *)
  let budget = total - encoded_len (List.nth records 0) - encoded_len (List.nth records 1) in
  let obs = Obs.create () in
  let kept, dropped = Store.compact ~obs ~max_bytes:budget path in
  check_int "four newest-first-seen records kept" 4 kept;
  check_int "evictions counted" 2
    (Obs.Metrics.Counter.value (Obs.counter obs "store.evicted"));
  check_bool "bytes dropped" true (dropped > 0);
  check_bool "rewritten log fits the budget" true
    ((Unix.stat path).Unix.st_size <= budget);
  let s = Store.open_store path in
  check_int "replay sees the survivors" 4 (Store.size s);
  check_bool "oldest evicted" true (Store.find s "k0" = None);
  check_bool "second-oldest evicted" true (Store.find s "k1" = None);
  check_bool "newest intact" true (Store.find s "k5" = Some "payload number 5");
  Store.close s;
  (* Idempotent: already within budget, a second pass changes nothing. *)
  let before = In_channel.with_open_bin path In_channel.input_all in
  let kept2, _ = Store.compact ~max_bytes:budget path in
  check_int "second pass keeps the same records" 4 kept2;
  check_bool "second pass leaves identical bytes" true
    (In_channel.with_open_bin path In_channel.input_all = before);
  (* A budget larger than the log evicts nothing. *)
  let kept3, _ = Store.compact ~max_bytes:(total * 2) path in
  check_int "roomy budget evicts nothing" 4 kept3

(* Mid-log corruption is a hard error with the offset, never a silent
   truncation: flip one payload byte of the *first* record (more records
   follow, so it cannot be mistaken for a torn tail). *)
let test_corruption_is_reported () =
  with_store_file @@ fun path ->
  write_raw path [ raw_record "k1" "first payload"; raw_record "k2" "second" ];
  let bytes = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let off = Bytes.index bytes '\n' + 1 in
  Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 1));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc bytes);
  (match Store.open_store path with
  | s ->
      Store.close s;
      Alcotest.fail "corrupt log opened silently"
  | exception Fsio.Corrupt { offset; _ } ->
      check_int "corruption reported at the corrupt record's offset" 0 offset);
  check_bool "compact refuses a corrupt log too" true
    (try
       ignore (Store.compact path);
       false
     with Fsio.Corrupt _ -> true)

let suite =
  [
    Alcotest.test_case "put / find / reload round-trip" `Quick test_put_find_roundtrip;
    Alcotest.test_case "closed store rejects puts" `Quick test_closed_store_rejects_puts;
    Alcotest.test_case "log survives truncation at every byte offset" `Slow
      test_truncate_every_offset;
    Alcotest.test_case "fsync path" `Quick test_fsync_path;
    Alcotest.test_case "concurrent puts: first write wins" `Quick
      test_concurrent_puts_first_wins;
    Alcotest.test_case "compact drops duplicates and torn tails" `Quick
      test_compact_drops_duplicates_and_torn_tail;
    Alcotest.test_case "compact edge cases" `Quick test_compact_edge_cases;
    Alcotest.test_case "previous-format log ignored cleanly" `Quick
      test_old_format_ignored;
    Alcotest.test_case "compact survives kill -9" `Slow test_compact_survives_kill;
    Alcotest.test_case "ENOSPC mid-record leaves the log byte-identical" `Quick
      test_enospc_mid_record_atomic;
    Alcotest.test_case "compact --max-bytes evicts oldest-first-seen" `Quick
      test_compact_eviction;
    Alcotest.test_case "mid-log corruption reported, not eaten" `Quick
      test_corruption_is_reported;
  ]
