type 'st t = {
  locals : 'st array;
  values : Objtype.value array;
  inputs : int array;
}

let initial (p : 'st Program.t) ~inputs =
  if Array.length inputs <> p.Program.nprocs then
    invalid_arg "Config.initial: wrong number of inputs";
  {
    locals = Array.init p.Program.nprocs (fun i -> p.Program.init ~proc:i ~input:inputs.(i));
    values = Array.map snd p.Program.heap;
    inputs = Array.copy inputs;
  }

let equal a b = a.locals = b.locals && a.values = b.values && a.inputs = b.inputs
let hash c = Hashtbl.hash (c.locals, c.values, c.inputs)

let view (p : 'st Program.t) c ~proc = p.Program.view ~proc c.locals.(proc)

let decided p c ~proc =
  match view p c ~proc with Program.Decided v -> Some v | Program.Poised _ -> None

let decisions p c = Array.init p.Program.nprocs (fun i -> decided p c ~proc:i)

let all_decided p c =
  Array.for_all Option.is_some (decisions p c)

let some_decision p c =
  let rec find i =
    if i >= p.Program.nprocs then None
    else match decided p c ~proc:i with Some v -> Some v | None -> find (i + 1)
  in
  find 0

let indistinguishable ~procs a b =
  List.for_all (fun i -> a.locals.(i) = b.locals.(i) && a.inputs.(i) = b.inputs.(i)) procs

let same_values a b = a.values = b.values

let pp ~pp_state (p : 'st Program.t) ppf c =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i st ->
      Format.fprintf ppf "p%d (input %d): %a%s@," i c.inputs.(i) pp_state st
        (match view p c ~proc:i with
        | Program.Decided v -> Printf.sprintf " [decided %d]" v
        | Program.Poised { obj; op; _ } ->
            let ty, _ = p.Program.heap.(obj) in
            Printf.sprintf " [poised: %s on obj %d]" (ty.Objtype.op_name op) obj))
    c.locals;
  Array.iteri
    (fun i v ->
      let ty, _ = p.Program.heap.(i) in
      Format.fprintf ppf "obj %d (%s) = %s@," i ty.Objtype.name
        (ty.Objtype.value_name v))
    c.values;
  Format.fprintf ppf "@]"
