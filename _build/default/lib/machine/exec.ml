type step_info = {
  proc : int;
  obj : int;
  op : Objtype.op;
  response : Objtype.response;
  no_op : bool;
}

type trace_event = Stepped of step_info | Crashed of int | Crashed_all

let apply_step (p : 'st Program.t) (c : 'st Config.t) ~proc =
  match Config.view p c ~proc with
  | Program.Decided _ -> c
  | Program.Poised { obj; op; next } ->
      let ty, _ = p.Program.heap.(obj) in
      let response, value' = Objtype.apply ty c.Config.values.(obj) op in
      let values = Array.copy c.Config.values in
      values.(obj) <- value';
      let locals = Array.copy c.Config.locals in
      locals.(proc) <- next response;
      { c with Config.values; locals }

let apply_crash (c : 'st Config.t) (p : 'st Program.t) ~proc =
  let locals = Array.copy c.Config.locals in
  locals.(proc) <- p.Program.init ~proc ~input:c.Config.inputs.(proc);
  { c with Config.locals }

let apply_crash_all (c : 'st Config.t) (p : 'st Program.t) =
  let locals =
    Array.mapi (fun proc _ -> p.Program.init ~proc ~input:c.Config.inputs.(proc)) c.Config.locals
  in
  { c with Config.locals }

let apply_event p c event =
  match event with
  | Sched.Step proc -> (
      match Config.view p c ~proc with
      | Program.Decided _ ->
          (c, Stepped { proc; obj = -1; op = -1; response = -1; no_op = true })
      | Program.Poised { obj; op; _ } ->
          let ty, _ = p.Program.heap.(obj) in
          let response, _ = Objtype.apply ty c.Config.values.(obj) op in
          (apply_step p c ~proc, Stepped { proc; obj; op; response; no_op = false }))
  | Sched.Crash proc -> (apply_crash c p ~proc, Crashed proc)
  | Sched.Crash_all -> (apply_crash_all c p, Crashed_all)

let run_schedule p c sched =
  let rec loop c acc = function
    | [] -> (c, List.rev acc)
    | e :: rest ->
        let c', ev = apply_event p c e in
        loop c' (ev :: acc) rest
  in
  loop c [] sched

let run_procs p c procs = fst (run_schedule p c (Sched.of_procs procs))

let solo_terminate ?(fuel = 10_000) p c ~proc =
  let rec loop c n =
    match Config.decided p c ~proc with
    | Some _ -> (c, n)
    | None ->
        if n >= fuel then
          failwith
            (Printf.sprintf "Exec.solo_terminate: p%d did not decide within %d steps in %s" proc
               fuel p.Program.name)
        else loop (apply_step p c ~proc) (n + 1)
  in
  loop c 0

type outcome = {
  events_used : int;
  all_decided : bool;
  rwf_violation : (int * int) option;
}

let run_adversary p c ~pick ~budget ?rwf_bound ~fuel () =
  let since_reset = Array.make p.Program.nprocs 0 in
  let violation = ref None in
  let rec loop c budget sched_rev n =
    let decided = Array.map Option.is_some (Config.decisions p c) in
    if n >= fuel || Array.for_all Fun.id decided then finish c sched_rev n
    else
      match pick ~decided budget with
      | None -> finish c sched_rev n
      | Some event ->
          let c', _ = apply_event p c event in
          let budget =
            (* Simultaneous crashes belong to the other crash model and are
               not budget-accounted. *)
            match event with Sched.Crash_all -> budget | _ -> Budget.record budget event
          in
          (match event with
          | Sched.Crash_all -> Array.fill since_reset 0 (Array.length since_reset) 0
          | Sched.Step q ->
              if not decided.(q) then begin
                since_reset.(q) <- since_reset.(q) + 1;
                match (rwf_bound, !violation) with
                | Some bound, None when since_reset.(q) > bound ->
                    violation := Some (q, since_reset.(q))
                | _ -> ()
              end
          | Sched.Crash q -> since_reset.(q) <- 0);
          loop c' budget (event :: sched_rev) (n + 1)
  and finish c sched_rev n =
    ( c,
      List.rev sched_rev,
      {
        events_used = n;
        all_decided = Config.all_decided p c;
        rwf_violation = !violation;
      } )
  in
  loop c budget [] 0

let pp_trace_event (p : 'st Program.t) ppf = function
  | Stepped { proc; no_op = true; _ } ->
      Format.fprintf ppf "p%d steps (already decided, no-op)" proc
  | Stepped { proc; obj; op; response; no_op = false } ->
      let ty, _ = p.Program.heap.(obj) in
      Format.fprintf ppf "p%d applies %s to obj%d -> %s" proc (ty.Objtype.op_name op) obj
        (ty.Objtype.response_name response)
  | Crashed proc -> Format.fprintf ppf "p%d crashes (local state reset)" proc
  | Crashed_all -> Format.fprintf ppf "simultaneous crash (every process reset)"

let pp_trace p ppf trace =
  Format.pp_open_vbox ppf 0;
  List.iter (fun e -> Format.fprintf ppf "%a@," (pp_trace_event p) e) trace;
  Format.pp_close_box ppf ()
