(** Correctness checkers for consensus and related tasks. *)

type verdict = Ok | Violation of string

val is_ok : verdict -> bool
val message : verdict -> string option
val pp_verdict : Format.formatter -> verdict -> unit

val agreement : 'st Program.t -> 'st Config.t -> verdict
(** No two decided processes hold different values. *)

val validity : 'st Program.t -> 'st Config.t -> verdict
(** Every decided value is some process's input. *)

val consensus : 'st Program.t -> 'st Config.t -> verdict
(** Agreement and validity. *)

val all_decided : 'st Program.t -> 'st Config.t -> verdict

val election : winner_team:int -> 'st Program.t -> 'st Config.t -> verdict
(** Team-election correctness: every decided process output the team
    [winner_team] (used by certificate-driven protocols, where the
    "decision" is the team of the first process to apply its certificate
    operation). *)

val first_mover : Sched.t -> int option
(** The first process to take a step in a schedule, if any. *)
