lib/machine/adversary.mli: Budget Sched
