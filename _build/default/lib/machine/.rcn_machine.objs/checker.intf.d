lib/machine/checker.mli: Config Format Program Sched
