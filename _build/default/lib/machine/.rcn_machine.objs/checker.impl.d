lib/machine/checker.ml: Array Config Format List Option Printf Sched String
