lib/machine/config.mli: Format Objtype Program
