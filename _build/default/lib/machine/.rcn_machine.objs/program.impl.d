lib/machine/program.ml: Array Gallery Objtype Printf
