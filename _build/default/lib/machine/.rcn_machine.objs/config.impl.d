lib/machine/config.ml: Array Format Hashtbl List Objtype Option Printf Program
