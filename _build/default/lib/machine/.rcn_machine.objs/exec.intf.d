lib/machine/exec.mli: Budget Config Format Objtype Program Sched
