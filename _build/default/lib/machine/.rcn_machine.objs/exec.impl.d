lib/machine/exec.ml: Array Budget Config Format Fun List Objtype Option Printf Program Sched
