lib/machine/adversary.ml: Array Budget Fun List Random Sched
