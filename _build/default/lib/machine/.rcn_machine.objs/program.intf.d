lib/machine/program.mli: Objtype
