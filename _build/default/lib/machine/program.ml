type 'st view =
  | Poised of { obj : int; op : Objtype.op; next : Objtype.response -> 'st }
  | Decided of int

type 'st t = {
  name : string;
  nprocs : int;
  heap : (Objtype.t * Objtype.value) array;
  init : proc:int -> input:int -> 'st;
  view : proc:int -> 'st -> 'st view;
}

let validate t =
  if t.nprocs <= 0 then invalid_arg (t.name ^ ": nprocs must be positive");
  Array.iteri
    (fun i ((ty : Objtype.t), v) ->
      if v < 0 || v >= ty.Objtype.num_values then
        invalid_arg
          (Printf.sprintf "%s: heap object %d initial value %d out of range for %s" t.name i v
             ty.Objtype.name))
    t.heap

let register_heap ?(registers = 0) ~register_values main =
  let reg = Gallery.register register_values in
  Array.init (1 + registers) (fun i -> if i = 0 then main else (reg, 0))
