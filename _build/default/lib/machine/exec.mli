(** Executions: applying events to configurations (paper Section 2). *)

type step_info = {
  proc : int;
  obj : int;
  op : Objtype.op;
  response : Objtype.response;
  no_op : bool;  (** the process was in an output state; nothing happened *)
}

type trace_event = Stepped of step_info | Crashed of int | Crashed_all

val apply_event : 'st Program.t -> 'st Config.t -> Sched.event -> 'st Config.t * trace_event
(** One event.  A [Step] by a decided process is a no-op that leaves the
    configuration unchanged; a [Crash] resets the process's local state to
    its initial state for its input. *)

val apply_step : 'st Program.t -> 'st Config.t -> proc:int -> 'st Config.t
val apply_crash : 'st Config.t -> 'st Program.t -> proc:int -> 'st Config.t

val apply_crash_all : 'st Config.t -> 'st Program.t -> 'st Config.t
(** Simultaneous crash: every process's local state is reset (objects keep
    their values) — the paper's alternative crash model. *)

val run_schedule :
  'st Program.t -> 'st Config.t -> Sched.t -> 'st Config.t * trace_event list
(** Apply a whole schedule; the trace is in execution order. *)

val run_procs : 'st Program.t -> 'st Config.t -> Sched.proc list -> 'st Config.t
(** Crash-free convenience wrapper over {!run_schedule}. *)

val solo_terminate :
  ?fuel:int -> 'st Program.t -> 'st Config.t -> proc:int -> 'st Config.t * int
(** The process's solo-terminating execution: step [proc] until it decides.
    Returns the final configuration and the number of steps taken.
    @raise Failure if the process does not decide within [fuel]
    (default 10_000) steps — a wait-freedom violation. *)

type outcome = {
  events_used : int;
  all_decided : bool;
  rwf_violation : (int * int) option;
      (** [(proc, steps)] — an undecided process exceeded the recoverable
          wait-freedom step bound without crashing. *)
}

val run_adversary :
  'st Program.t ->
  'st Config.t ->
  pick:(decided:bool array -> Budget.counter -> Sched.event option) ->
  budget:Budget.counter ->
  ?rwf_bound:int ->
  fuel:int ->
  unit ->
  'st Config.t * Sched.t * outcome
(** Drive the execution with an adversary.  [pick] is consulted with the
    current decision vector and the crash-budget counter and returns the
    next event ([None] ends the run).  Crashes violating the budget are
    rejected with [Invalid_argument].  When [rwf_bound] is given, the run
    monitors recoverable wait-freedom: an undecided process taking more
    than [rwf_bound] steps since its last crash (or since the start) is
    reported in the outcome.  The returned schedule is in execution
    order. *)

val pp_trace_event : 'st Program.t -> Format.formatter -> trace_event -> unit
(** Human-readable rendering: operation names, responses and crashes. *)

val pp_trace : 'st Program.t -> Format.formatter -> trace_event list -> unit
