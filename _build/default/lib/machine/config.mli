(** Configurations: a local state per process plus a value per object
    (paper Section 2).  The inputs are carried along because a crash resets
    a process to its initial state *for its input*. *)

type 'st t = {
  locals : 'st array;
  values : Objtype.value array;
  inputs : int array;
}

val initial : 'st Program.t -> inputs:int array -> 'st t
(** Every process in its initial state, every object at its initial value.
    @raise Invalid_argument if [inputs] has the wrong length. *)

val equal : 'st t -> 'st t -> bool
(** Structural equality of local states and object values (inputs are
    invariant along an execution, so they participate too). *)

val hash : 'st t -> int

val view : 'st Program.t -> 'st t -> proc:int -> 'st Program.view
val decided : 'st Program.t -> 'st t -> proc:int -> int option
val decisions : 'st Program.t -> 'st t -> int option array
val all_decided : 'st Program.t -> 'st t -> bool
val some_decision : 'st Program.t -> 'st t -> int option
(** The decision of the least decided process, if any. *)

val indistinguishable : procs:int list -> 'st t -> 'st t -> bool
(** The paper's [C ~Q C']: every process in [procs] has the same local state
    (and the same input).  Object values are *not* compared; combine with
    {!same_values} when needed. *)

val same_values : 'st t -> 'st t -> bool

val pp :
  pp_state:(Format.formatter -> 'st -> unit) ->
  'st Program.t ->
  Format.formatter ->
  'st t ->
  unit
