type t = decided:bool array -> Budget.counter -> Sched.event option

let undecided_procs decided =
  let procs = ref [] in
  Array.iteri (fun i d -> if not d then procs := i :: !procs) decided;
  List.rev !procs

let round_robin ~nprocs =
  let cursor = ref 0 in
  fun ~decided _budget ->
    let rec find tries =
      if tries >= nprocs then None
      else
        let p = !cursor mod nprocs in
        incr cursor;
        if decided.(p) then find (tries + 1) else Some (Sched.step p)
    in
    find 0

let replay sched =
  let remaining = ref sched in
  fun ~decided:_ budget ->
    let rec next () =
      match !remaining with
      | [] -> None
      | (Sched.Crash p as e) :: rest ->
          remaining := rest;
          if Budget.may_crash budget p then Some e else next ()
      | ((Sched.Step _ | Sched.Crash_all) as e) :: rest ->
          remaining := rest;
          Some e
    in
    next ()

let random ?(crash_prob = 0.2) ~seed ~nprocs =
  let rng = Random.State.make [| seed; nprocs |] in
  fun ~decided budget ->
    let crash_eligible = List.filter (Budget.may_crash budget) (List.init nprocs Fun.id) in
    let want_crash =
      crash_eligible <> [] && Random.State.float rng 1.0 < crash_prob
    in
    if want_crash then
      let p = List.nth crash_eligible (Random.State.int rng (List.length crash_eligible)) in
      Some (Sched.crash p)
    else
      match undecided_procs decided with
      | [] -> None
      | procs -> Some (Sched.step (List.nth procs (Random.State.int rng (List.length procs))))

let crash_storm ?(period = 3) ~seed ~nprocs =
  let rng = Random.State.make [| seed; nprocs; period |] in
  let clock = ref 0 in
  let cursor = ref 0 in
  fun ~decided budget ->
    incr clock;
    if !clock mod period = 0 then begin
      let best = ref None in
      for p = 1 to nprocs - 1 do
        let headroom = Budget.crash_headroom budget p in
        if headroom > 0 then
          match !best with
          | Some (_, h) when h >= headroom -> ()
          | _ -> best := Some (p, headroom)
      done;
      match !best with
      | Some (p, _) -> Some (Sched.crash p)
      | None -> (
          match undecided_procs decided with
          | [] -> None
          | procs -> Some (Sched.step (List.nth procs (Random.State.int rng (List.length procs)))))
    end
    else begin
      let rec find tries =
        if tries >= nprocs then None
        else
          let p = !cursor mod nprocs in
          incr cursor;
          if decided.(p) then find (tries + 1) else Some (Sched.step p)
      in
      find 0
    end

let random_simultaneous ?(crash_prob = 0.15) ~max_crashes ~seed ~nprocs =
  let rng = Random.State.make [| seed; nprocs; max_crashes; 77 |] in
  let crashes = ref 0 in
  fun ~decided _budget ->
    if !crashes < max_crashes && Random.State.float rng 1.0 < crash_prob then begin
      incr crashes;
      Some Sched.crash_all
    end
    else
      match undecided_procs decided with
      | [] -> None
      | procs -> Some (Sched.step (List.nth procs (Random.State.int rng (List.length procs))))
