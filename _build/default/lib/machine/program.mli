(** Protocols (algorithms) in the paper's shared-memory model.

    A program for [nprocs] processes defines a heap of shared objects (with
    their types and initial values) and, per process, a deterministic local
    state machine.  Each local state is either poised to apply one operation
    to one object, or an output state carrying the decided value.  Crashes
    reset the local state to [init] — the paper's model, where a process
    restarts its algorithm from scratch but keeps its private input.

    State types ['st] must be pure data (no closures) so that configurations
    can be compared and hashed structurally by the explorer. *)

type 'st view =
  | Poised of { obj : int; op : Objtype.op; next : Objtype.response -> 'st }
      (** The process's next step applies [op] to heap object [obj]; [next]
          maps the operation's response to the successor local state. *)
  | Decided of int
      (** Output state: further steps are no-ops (paper Section 2). *)

type 'st t = {
  name : string;
  nprocs : int;
  heap : (Objtype.t * Objtype.value) array;
  init : proc:int -> input:int -> 'st;
  view : proc:int -> 'st -> 'st view;
}

val validate : 'st t -> unit
(** Sanity checks: at least one process, every heap initial value in range.
    @raise Invalid_argument on violation. *)

val register_heap :
  ?registers:int ->
  register_values:int ->
  (Objtype.t * Objtype.value) ->
  (Objtype.t * Objtype.value) array
(** Convenience: a heap with one distinguished object (index 0) followed by
    [registers] registers (default 0) over [register_values] values, each
    initialized to 0. *)
