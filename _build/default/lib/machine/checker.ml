type verdict = Ok | Violation of string

let is_ok = function Ok -> true | Violation _ -> false
let message = function Ok -> None | Violation m -> Some m

let pp_verdict ppf = function
  | Ok -> Format.pp_print_string ppf "ok"
  | Violation m -> Format.fprintf ppf "violation: %s" m

let agreement p c =
  let decided =
    Array.to_list (Config.decisions p c)
    |> List.filteri (fun _ d -> Option.is_some d)
    |> List.map Option.get
  in
  match List.sort_uniq compare decided with
  | [] | [ _ ] -> Ok
  | values ->
      Violation
        (Printf.sprintf "agreement: distinct decisions {%s}"
           (String.concat ", " (List.map string_of_int values)))

let validity p c =
  let inputs = Array.to_list c.Config.inputs in
  let bad = ref None in
  Array.iteri
    (fun i d ->
      match d with
      | Some v when not (List.mem v inputs) && !bad = None ->
          bad := Some (Printf.sprintf "validity: p%d decided %d, not an input" i v)
      | _ -> ())
    (Config.decisions p c);
  match !bad with None -> Ok | Some m -> Violation m

let consensus p c =
  match agreement p c with Ok -> validity p c | v -> v

let all_decided p c =
  if Config.all_decided p c then Ok
  else
    let undecided =
      Array.to_list (Config.decisions p c)
      |> List.mapi (fun i d -> (i, d))
      |> List.filter_map (fun (i, d) -> if d = None then Some (string_of_int i) else None)
    in
    Violation (Printf.sprintf "undecided processes: {%s}" (String.concat ", " undecided))

let election ~winner_team p c =
  let bad = ref None in
  Array.iteri
    (fun i d ->
      match d with
      | Some v when v <> winner_team && !bad = None ->
          bad :=
            Some (Printf.sprintf "election: p%d output team %d, winner is team %d" i v winner_team)
      | _ -> ())
    (Config.decisions p c);
  match !bad with None -> Ok | Some m -> Violation m

let first_mover sched =
  List.find_map (function Sched.Step p -> Some p | Sched.Crash _ | Sched.Crash_all -> None) sched
