(** Sequential specifications of deterministic shared-object types.

    A type (in the sense of Herlihy's hierarchy and of the paper's Section 2)
    consists of a finite set of values, a finite set of operations, a finite
    set of responses, and a total, deterministic transition function: applying
    an operation to an object with a given value yields exactly one response
    and one resulting value.

    Values, operations and responses are represented as small integers
    [0 .. count - 1]; human-readable names are attached for printing.  All
    functions in this library treat a [t] as immutable. *)

type value = int
type op = int
type response = int

type t = private {
  name : string;  (** display name of the type, e.g. ["test-and-set"] *)
  num_values : int;
  num_ops : int;
  num_responses : int;
  default_initial : value;
      (** conventional initial value used by galleries and protocols *)
  delta : value -> op -> response * value;
      (** the sequential specification; total on the declared ranges *)
  value_name : value -> string;
  op_name : op -> string;
  response_name : response -> string;
}

exception Ill_formed of string
(** Raised by {!make} when a specification is not total, not deterministic,
    or refers to values/responses outside the declared ranges. *)

val make :
  name:string ->
  num_values:int ->
  num_ops:int ->
  num_responses:int ->
  ?default_initial:value ->
  ?value_name:(value -> string) ->
  ?op_name:(op -> string) ->
  ?response_name:(response -> string) ->
  (value -> op -> response * value) ->
  t
(** [make ~name ~num_values ~num_ops ~num_responses delta] builds a type and
    eagerly checks well-formedness: [delta] is evaluated on the full
    [num_values * num_ops] grid and every result must be in range.  The
    transition table is memoized, so [delta] of the result is O(1) and never
    re-runs user code.

    @raise Ill_formed if the specification is invalid. *)

val apply : t -> value -> op -> response * value
(** [apply t v o] is [t.delta v o] with range checks on [v] and [o].
    @raise Invalid_argument when [v] or [o] is out of range. *)

val apply_schedule : t -> value -> op list -> response list * value
(** [apply_schedule t u ops] applies [ops] in order starting from value [u],
    returning the responses in order and the final value. *)

val is_read_op : t -> op -> bool
(** [is_read_op t o] holds when [o] never changes the value and its response
    uniquely determines the current value (i.e. the response function
    [fun v -> fst (apply t v o)] is injective).  This is the paper's notion
    of a Read operation up to renaming of responses. *)

val read_op : t -> op option
(** The least operation satisfying {!is_read_op}, if any. *)

val is_readable : t -> bool
(** A type is readable when it supports a Read operation ({!read_op}). *)

val reachable_values : t -> from:value -> value list
(** Values reachable from [from] by any finite sequence of operations,
    in increasing order ([from] included). *)

val equal_behaviour : t -> t -> bool
(** Structural equality of the transition tables (names ignored). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name and component counts. *)

val pp_table : Format.formatter -> t -> unit
(** Full transition table, one line per (value, op) pair. *)

val read_decoder : t -> (op * (response -> value)) option
(** For a readable type: the Read operation together with the inverse of its
    response function, mapping each Read response back to the value it
    witnesses.  [None] for non-readable types. *)

val to_spec_string : t -> string
(** A plain-text serialization of the full specification (component counts,
    initial value, names, and the transition table), suitable for files and
    round-tripping with {!of_spec_string}. *)

val of_spec_string : string -> t
(** Parse the format produced by {!to_spec_string}.
    @raise Ill_formed on syntax errors or inconsistent tables. *)

val product : ?joint_read:bool -> t -> t -> t
(** The product type: one object holding a pair of components.  Values are
    pairs (encoded [v1 * t2.num_values + v2]); each component's operations
    act on its side only (responses are offset).  With [joint_read]
    (default [true]) an extra final operation reads the whole pair, making
    the product readable — the setting of the paper's Theorem 14, which
    says combining readable deterministic types this way cannot increase
    the recoverable consensus level beyond the strongest component.
    Deciding the product's levels therefore tests robustness *on the
    combined object itself*. *)

val product_value : t -> t -> value * value -> value
(** Encoding of a pair of component values in {!product}. *)
