type value = int
type op = int
type response = int

type t = {
  name : string;
  num_values : int;
  num_ops : int;
  num_responses : int;
  default_initial : value;
  delta : value -> op -> response * value;
  value_name : value -> string;
  op_name : op -> string;
  response_name : response -> string;
}

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let make ~name ~num_values ~num_ops ~num_responses ?(default_initial = 0)
    ?value_name ?op_name ?response_name delta =
  if num_values <= 0 then ill_formed "%s: num_values must be positive" name;
  if num_ops <= 0 then ill_formed "%s: num_ops must be positive" name;
  if num_responses <= 0 then ill_formed "%s: num_responses must be positive" name;
  if default_initial < 0 || default_initial >= num_values then
    ill_formed "%s: default_initial %d out of range" name default_initial;
  (* Memoize the whole transition table; this both makes [apply] cheap for
     the deciders and forces totality checking up front. *)
  let table = Array.make (num_values * num_ops) (0, 0) in
  for v = 0 to num_values - 1 do
    for o = 0 to num_ops - 1 do
      let r, v' = delta v o in
      if r < 0 || r >= num_responses then
        ill_formed "%s: delta %d %d yields response %d out of range" name v o r;
      if v' < 0 || v' >= num_values then
        ill_formed "%s: delta %d %d yields value %d out of range" name v o v';
      table.((v * num_ops) + o) <- (r, v')
    done
  done;
  let delta v o = table.((v * num_ops) + o) in
  let default prefix i = Printf.sprintf "%s%d" prefix i in
  let value_name = Option.value value_name ~default:(default "v") in
  let op_name = Option.value op_name ~default:(default "op") in
  let response_name = Option.value response_name ~default:(default "r") in
  {
    name;
    num_values;
    num_ops;
    num_responses;
    default_initial;
    delta;
    value_name;
    op_name;
    response_name;
  }

let apply t v o =
  if v < 0 || v >= t.num_values then
    invalid_arg (Printf.sprintf "Objtype.apply: value %d out of range for %s" v t.name);
  if o < 0 || o >= t.num_ops then
    invalid_arg (Printf.sprintf "Objtype.apply: op %d out of range for %s" o t.name);
  t.delta v o

let apply_schedule t u ops =
  let rec loop v acc = function
    | [] -> (List.rev acc, v)
    | o :: rest ->
        let r, v' = apply t v o in
        loop v' (r :: acc) rest
  in
  loop u [] ops

let is_read_op t o =
  let responses = Array.make t.num_values (-1) in
  let injective = Hashtbl.create 16 in
  let ok = ref true in
  for v = 0 to t.num_values - 1 do
    let r, v' = t.delta v o in
    if v' <> v then ok := false;
    responses.(v) <- r;
    if Hashtbl.mem injective r then ok := false else Hashtbl.add injective r v
  done;
  !ok

let read_op t =
  let rec find o = if o >= t.num_ops then None else if is_read_op t o then Some o else find (o + 1) in
  find 0

let is_readable t = Option.is_some (read_op t)

let reachable_values t ~from =
  let seen = Array.make t.num_values false in
  let rec visit v =
    if not seen.(v) then begin
      seen.(v) <- true;
      for o = 0 to t.num_ops - 1 do
        let _, v' = t.delta v o in
        visit v'
      done
    end
  in
  visit from;
  let acc = ref [] in
  for v = t.num_values - 1 downto 0 do
    if seen.(v) then acc := v :: !acc
  done;
  !acc

let equal_behaviour a b =
  a.num_values = b.num_values && a.num_ops = b.num_ops
  && a.num_responses = b.num_responses
  && a.default_initial = b.default_initial
  &&
  let ok = ref true in
  for v = 0 to a.num_values - 1 do
    for o = 0 to a.num_ops - 1 do
      if a.delta v o <> b.delta v o then ok := false
    done
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "%s (%d values, %d ops, %d responses%s)" t.name t.num_values
    t.num_ops t.num_responses
    (if is_readable t then ", readable" else "")

let pp_table ppf t =
  pp ppf t;
  for v = 0 to t.num_values - 1 do
    for o = 0 to t.num_ops - 1 do
      let r, v' = t.delta v o in
      Format.fprintf ppf "@\n  %s . %s -> %s / %s" (t.value_name v) (t.op_name o)
        (t.response_name r) (t.value_name v')
    done
  done

let read_decoder t =
  match read_op t with
  | None -> None
  | Some o ->
      let inverse = Hashtbl.create 16 in
      for v = 0 to t.num_values - 1 do
        let r, _ = t.delta v o in
        Hashtbl.add inverse r v
      done;
      let decode r =
        match Hashtbl.find_opt inverse r with
        | Some v -> v
        | None -> invalid_arg "Objtype.read_decoder: response is not a Read response"
      in
      Some (o, decode)

let to_spec_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" t.name);
  Buffer.add_string buf
    (Printf.sprintf "counts %d %d %d\n" t.num_values t.num_ops t.num_responses);
  Buffer.add_string buf (Printf.sprintf "initial %d\n" t.default_initial);
  for v = 0 to t.num_values - 1 do
    Buffer.add_string buf (Printf.sprintf "value %d %s\n" v (t.value_name v))
  done;
  for o = 0 to t.num_ops - 1 do
    Buffer.add_string buf (Printf.sprintf "op %d %s\n" o (t.op_name o))
  done;
  for r = 0 to t.num_responses - 1 do
    Buffer.add_string buf (Printf.sprintf "response %d %s\n" r (t.response_name r))
  done;
  for v = 0 to t.num_values - 1 do
    for o = 0 to t.num_ops - 1 do
      let r, v' = t.delta v o in
      Buffer.add_string buf (Printf.sprintf "delta %d %d -> %d %d\n" v o r v')
    done
  done;
  Buffer.contents buf

let of_spec_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  let name = ref "deserialized" in
  let counts = ref None in
  let initial = ref 0 in
  let value_names = Hashtbl.create 16 in
  let op_names = Hashtbl.create 16 in
  let response_names = Hashtbl.create 16 in
  let cells = Hashtbl.create 64 in
  let malformed line = ill_formed "of_spec_string: cannot parse %S" line in
  let parse_named table rest line =
    match String.index_opt rest ' ' with
    | Some i ->
        let idx = int_of_string_opt (String.sub rest 0 i) in
        let label = String.sub rest (i + 1) (String.length rest - i - 1) in
        (match idx with Some idx -> Hashtbl.replace table idx label | None -> malformed line)
    | None -> (
        match int_of_string_opt rest with
        | Some _ -> () (* unnamed entry *)
        | None -> malformed line)
  in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | None -> malformed line
      | Some i -> (
          let key = String.sub line 0 i in
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          match key with
          | "name" -> name := rest
          | "counts" -> (
              match String.split_on_char ' ' rest |> List.filter_map int_of_string_opt with
              | [ v; o; r ] -> counts := Some (v, o, r)
              | _ -> malformed line)
          | "initial" -> (
              match int_of_string_opt rest with
              | Some v -> initial := v
              | None -> malformed line)
          | "value" -> parse_named value_names rest line
          | "op" -> parse_named op_names rest line
          | "response" -> parse_named response_names rest line
          | "delta" -> (
              match
                String.split_on_char ' ' rest
                |> List.filter (fun s -> s <> "->" && s <> "")
                |> List.filter_map int_of_string_opt
              with
              | [ v; o; r; v' ] -> Hashtbl.replace cells (v, o) (r, v')
              | _ -> malformed line)
          | _ -> malformed line))
    lines;
  match !counts with
  | None -> ill_formed "of_spec_string: missing 'counts' line"
  | Some (num_values, num_ops, num_responses) ->
      let named table fallback i =
        match Hashtbl.find_opt table i with
        | Some label -> label
        | None -> Printf.sprintf "%s%d" fallback i
      in
      make ~name:!name ~num_values ~num_ops ~num_responses ~default_initial:!initial
        ~value_name:(named value_names "v") ~op_name:(named op_names "op")
        ~response_name:(named response_names "r")
        (fun v o ->
          match Hashtbl.find_opt cells (v, o) with
          | Some cell -> cell
          | None -> ill_formed "of_spec_string: missing delta %d %d" v o)

let product_value _t1 t2 (v1, v2) = (v1 * t2.num_values) + v2

let product ?(joint_read = true) t1 t2 =
  let num_values = t1.num_values * t2.num_values in
  let decode v = (v / t2.num_values, v mod t2.num_values) in
  let num_component_ops = t1.num_ops + t2.num_ops in
  let num_ops = num_component_ops + if joint_read then 1 else 0 in
  (* Responses: component responses offset side by side, then pair-read
     responses (one per value). *)
  let base_responses = t1.num_responses + t2.num_responses in
  let num_responses = base_responses + if joint_read then num_values else 0 in
  let delta v op =
    let v1, v2 = decode v in
    if op < t1.num_ops then
      let r, v1' = t1.delta v1 op in
      (r, (v1' * t2.num_values) + v2)
    else if op < num_component_ops then
      let r, v2' = t2.delta v2 (op - t1.num_ops) in
      (t1.num_responses + r, (v1 * t2.num_values) + v2')
    else (base_responses + v, v)
  in
  make
    ~name:(Printf.sprintf "%s (x) %s" t1.name t2.name)
    ~num_values ~num_ops ~num_responses
    ~default_initial:((t1.default_initial * t2.num_values) + t2.default_initial)
    ~value_name:(fun v ->
      let v1, v2 = decode v in
      Printf.sprintf "(%s, %s)" (t1.value_name v1) (t2.value_name v2))
    ~op_name:(fun op ->
      if op < t1.num_ops then "L:" ^ t1.op_name op
      else if op < num_component_ops then "R:" ^ t2.op_name (op - t1.num_ops)
      else "read-pair")
    ~response_name:(fun r ->
      if r < t1.num_responses then "L:" ^ t1.response_name r
      else if r < base_responses then "R:" ^ t2.response_name (r - t1.num_responses)
      else
        let v1, v2 = decode (r - base_responses) in
        Printf.sprintf "=(%s, %s)" (t1.value_name v1) (t2.value_name v2))
    delta
