lib/spec/gallery.ml: Array List Objtype Printf
