lib/spec/dot.ml: Buffer Fun Hashtbl List Objtype Printf String
