lib/spec/gallery.mli: Objtype
