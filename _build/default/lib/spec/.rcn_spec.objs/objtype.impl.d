lib/spec/objtype.ml: Array Buffer Format Hashtbl List Option Printf String
