lib/spec/objtype.mli: Format
