lib/spec/dot.mli: Objtype
