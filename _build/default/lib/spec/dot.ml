let edges ?(reachable_only = true) (t : Objtype.t) =
  let values =
    if reachable_only then Objtype.reachable_values t ~from:t.Objtype.default_initial
    else List.init t.Objtype.num_values Fun.id
  in
  (* Group transitions by (source, destination) so that parallel edges merge
     onto a single multi-label edge, as in the paper's Figure 3. *)
  let grouped = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun v ->
      for o = 0 to t.Objtype.num_ops - 1 do
        let r, v' = Objtype.apply t v o in
        let label = Printf.sprintf "%s / %s" (t.Objtype.op_name o) (t.Objtype.response_name r) in
        let key = (v, v') in
        match Hashtbl.find_opt grouped key with
        | Some labels -> labels := label :: !labels
        | None ->
            Hashtbl.add grouped key (ref [ label ]);
            order := key :: !order
      done)
    values;
  (values, List.rev_map (fun key -> (key, List.rev !(Hashtbl.find grouped key))) !order)

let to_dot ?reachable_only t =
  let values, merged = edges ?reachable_only t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" t.Objtype.name);
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=ellipse];\n";
  List.iter
    (fun v ->
      let shape = if v = t.Objtype.default_initial then " [shape=doublecircle]" else "" in
      Buffer.add_string buf (Printf.sprintf "  %d [label=%S]%s;\n" v (t.Objtype.value_name v) shape))
    values;
  List.iter
    (fun ((v, v'), labels) ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=%S];\n" v v' (String.concat "\\n" labels)))
    merged;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_ascii ?reachable_only t =
  let _, merged = edges ?reachable_only t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s\n" t.Objtype.name);
  List.iter
    (fun ((v, v'), labels) ->
      List.iter
        (fun label ->
          Buffer.add_string buf
            (Printf.sprintf "  %s --%s--> %s\n" (t.Objtype.value_name v) label
               (t.Objtype.value_name v')))
        labels)
    merged;
  Buffer.contents buf

let edge_count ?reachable_only t =
  let _, merged = edges ?reachable_only t in
  List.length merged
