(** Rendering object types as state-machine diagrams (paper Figure 3). *)

val to_dot : ?reachable_only:bool -> Objtype.t -> string
(** GraphViz [dot] source for the transition diagram of a type.  Edges are
    labelled [op / response]; parallel edges between the same pair of values
    are merged onto one labelled edge.  With [reachable_only] (default
    [true]) only values reachable from the default initial value appear. *)

val to_ascii : ?reachable_only:bool -> Objtype.t -> string
(** A plain-text adjacency listing of the same diagram, suitable for
    terminals and golden tests. *)

val edge_count : ?reachable_only:bool -> Objtype.t -> int
(** Number of merged edges that {!to_dot} emits (for structural checks). *)
