lib/synth/synth.ml: Array Decide List Numbers Objtype Printf Random
