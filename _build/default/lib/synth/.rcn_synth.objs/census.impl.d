lib/synth/census.ml: Array Format Hashtbl List Numbers Option Random Seq Synth
