lib/synth/synth.mli: Objtype Random
