lib/synth/census.mli: Format Synth
