(** Consensus numbers and recoverable consensus numbers of finite
    deterministic types — the paper's "determining" procedure.

    For readable deterministic types:
    - Ruppert (2000): consensus number [>= n] iff [n]-discerning, so the
      consensus number equals the largest [n] for which the type is
      [n]-discerning;
    - DFFR (2022) + this paper's Theorem 13: recoverable consensus number
      [>= n] iff [n]-recording, so the recoverable consensus number equals
      the largest [n] for which the type is [n]-recording.

    Both conditions are downward closed in [n] (drop a process from a team
    of size at least two), so a linear upward scan is exact; the test suite
    checks downward closure explicitly on the gallery.  Because some types
    (CAS, sticky bits) satisfy the conditions for every [n], the scan is
    bounded by a [cap] and the result distinguishes exact answers from
    lower bounds. *)

type bound = Exact of int | At_least of int

val equal_bound : bound -> bound -> bool
val pp_bound : Format.formatter -> bound -> unit
val bound_to_string : bound -> string

type level = {
  bound : bound;
  certificate : Certificate.t option;
      (** a witness at the highest level reached, [None] when the bound is
          [Exact 1] (the condition is vacuous for one process) *)
}

val max_discerning : ?cap:int -> Objtype.t -> level
(** Largest [n <= cap] (default cap 5) such that the type is
    [n]-discerning; [Exact 1] if not even 2-discerning, [At_least cap] when
    still discerning at the cap. *)

val max_recording : ?cap:int -> Objtype.t -> level
(** Same, for the [n]-recording condition. *)

val consensus_number : ?cap:int -> Objtype.t -> bound option
(** [Some] (via {!max_discerning}) for readable types, where Ruppert's
    characterization makes the answer exact; [None] for non-readable types,
    whose consensus number is not determined by discerning alone (the
    paper's [T_{n,n'}] is the canonical example). *)

val recoverable_consensus_number : ?cap:int -> Objtype.t -> bound option
(** [Some] (via {!max_recording}) for readable types — exact by DFFR
    Theorem 8 plus this paper's Theorem 13; [None] for non-readable types
    (for [T_{n,n'}], max-recording is [n-1] while the true recoverable
    consensus number is [n'] — recording is necessary but not sufficient
    without readability). *)

type analysis = {
  type_name : string;
  readable : bool;
  discerning : level;
  recording : level;
  consensus : bound option;
  recoverable : bound option;
}

val analyze : ?cap:int -> Objtype.t -> analysis
(** Everything above in one record, for tables (experiment E5). *)

val pp_analysis : Format.formatter -> analysis -> unit
