(** Certificates for the [n]-discerning and [n]-recording conditions.

    Both conditions (paper Section 2, after Ruppert 2000 and DFFR 2022)
    quantify existentially over the same data: an initial value [u], a
    partition of the [n] processes into two nonempty teams, and an operation
    per process.  A certificate packages that data together with the type it
    talks about; {!check_discerning} and {!check_recording} replay the
    at-most-once schedules [S(P)] to verify the respective condition, so a
    certificate can always be re-validated independently of how it was
    found. *)

type t = {
  objtype : Objtype.t;
  nprocs : int;
  initial : Objtype.value;  (** the value [u] *)
  team : bool array;  (** [team.(i)] is [true] iff process [i] is in [T_1] *)
  ops : Objtype.op array;  (** [ops.(i)] is the operation [o_i] *)
}

val make :
  objtype:Objtype.t ->
  initial:Objtype.value ->
  team:bool array ->
  ops:Objtype.op array ->
  t
(** @raise Invalid_argument if the arrays disagree in length, either team is
    empty, or [initial]/operations are out of range. *)

val team_members : t -> bool -> int list
(** Processes on the given team, in increasing order. *)

val replay : t -> Sched.proc list -> Objtype.response array option * Objtype.value
(** Apply the schedule's processes' certificate operations in order starting
    from [u].  Returns per-process responses (indexed by process; [None] when
    the schedule is empty is never used — the array marks non-participants
    with [-1]) and the final object value. *)

val u_set : t -> first_team:bool -> Objtype.value list
(** The paper's [U_x]: final values over nonempty schedules in [S(P)] whose
    first process is on team [x], sorted and deduplicated. *)

val check_discerning : t -> bool
(** Replay all of [S(P)] and verify: for every process [j],
    [R_{0,j}] and [R_{1,j}] are disjoint, where [R_{x,j}] collects the pairs
    (response of [o_j], final value) over schedules containing [p_j] whose
    first process is on team [x]. *)

val check_recording : t -> bool
(** Replay all of [S(P)] and verify [U_0 ∩ U_1 = ∅], and that [u ∈ U_x]
    implies the opposite team is a singleton. *)

val first_team_of_value : t -> Objtype.value -> bool option
(** For a recording certificate: map an object value to the team of the
    first process to have applied its operation, when the value determines
    it ([None] for the initial value or values outside [U_0 ∪ U_1]).
    Useful for building election protocols from certificates. *)

val is_clean : t -> bool
(** [u ∉ U_0 ∪ U_1]: the initial value cannot reappear once someone has
    applied an operation.  Clean recording certificates admit a simple
    recoverable team-election protocol (see [Rcn_protocols.Election]). *)

val pp : Format.formatter -> t -> unit
