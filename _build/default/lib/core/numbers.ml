type bound = Exact of int | At_least of int

let equal_bound a b =
  match (a, b) with
  | Exact x, Exact y | At_least x, At_least y -> x = y
  | Exact _, At_least _ | At_least _, Exact _ -> false

let pp_bound ppf = function
  | Exact n -> Format.pp_print_int ppf n
  | At_least n -> Format.fprintf ppf ">=%d" n

let bound_to_string b = Format.asprintf "%a" pp_bound b

type level = { bound : bound; certificate : Certificate.t option }

let default_cap = 5

let scan condition ?(cap = default_cap) t =
  if cap < 2 then invalid_arg "Numbers: cap must be at least 2";
  let rec loop n best =
    if n > cap then { bound = At_least cap; certificate = best }
    else
      match Decide.search condition t ~n with
      | Some c -> loop (n + 1) (Some c)
      | None ->
          let bound = Exact (n - 1) in
          { bound; certificate = best }
  in
  loop 2 None

let max_discerning ?cap t = scan Decide.Discerning ?cap t
let max_recording ?cap t = scan Decide.Recording ?cap t

let consensus_number ?cap t =
  if Objtype.is_readable t then Some (max_discerning ?cap t).bound else None

let recoverable_consensus_number ?cap t =
  if Objtype.is_readable t then Some (max_recording ?cap t).bound else None

type analysis = {
  type_name : string;
  readable : bool;
  discerning : level;
  recording : level;
  consensus : bound option;
  recoverable : bound option;
}

let analyze ?cap t =
  let readable = Objtype.is_readable t in
  let discerning = max_discerning ?cap t in
  let recording = max_recording ?cap t in
  {
    type_name = t.Objtype.name;
    readable;
    discerning;
    recording;
    consensus = (if readable then Some discerning.bound else None);
    recoverable = (if readable then Some recording.bound else None);
  }

let pp_analysis ppf a =
  let opt = function None -> "n/a" | Some b -> bound_to_string b in
  Format.fprintf ppf "%-18s %-9s disc=%-4s rec=%-4s cons=%-4s rcons=%-4s" a.type_name
    (if a.readable then "readable" else "opaque")
    (bound_to_string a.discerning.bound)
    (bound_to_string a.recording.bound)
    (opt a.consensus) (opt a.recoverable)
