lib/core/numbers.mli: Certificate Format Objtype
