lib/core/robustness.mli: Certificate Format Numbers Objtype
