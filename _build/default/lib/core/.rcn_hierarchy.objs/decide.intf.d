lib/core/decide.mli: Certificate Objtype Seq
