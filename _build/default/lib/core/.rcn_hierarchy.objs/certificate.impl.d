lib/core/certificate.ml: Array Format Hashtbl List Objtype Option Printf Sched String
