lib/core/numbers.ml: Certificate Decide Format Objtype
