lib/core/certificate.mli: Format Objtype Sched
