lib/core/decide.ml: Array Atomic Bool Certificate Domain Fun Hashtbl List Objtype Option Sched Seq
