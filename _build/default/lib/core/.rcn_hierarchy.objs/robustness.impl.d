lib/core/robustness.ml: Certificate Format List Numbers Objtype Printf
