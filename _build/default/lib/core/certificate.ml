type t = {
  objtype : Objtype.t;
  nprocs : int;
  initial : Objtype.value;
  team : bool array;
  ops : Objtype.op array;
}

let make ~objtype ~initial ~team ~ops =
  let nprocs = Array.length team in
  if Array.length ops <> nprocs then
    invalid_arg "Certificate.make: team and ops lengths differ";
  if nprocs < 2 then invalid_arg "Certificate.make: need at least two processes";
  if initial < 0 || initial >= objtype.Objtype.num_values then
    invalid_arg "Certificate.make: initial value out of range";
  Array.iter
    (fun o ->
      if o < 0 || o >= objtype.Objtype.num_ops then
        invalid_arg "Certificate.make: operation out of range")
    ops;
  let members x = Array.exists (fun b -> b = x) team in
  if not (members true && members false) then
    invalid_arg "Certificate.make: both teams must be nonempty";
  { objtype; nprocs; initial; team = Array.copy team; ops = Array.copy ops }

let team_members t x =
  let acc = ref [] in
  for i = t.nprocs - 1 downto 0 do
    if t.team.(i) = x then acc := i :: !acc
  done;
  !acc

let replay t procs =
  let responses = Array.make t.nprocs (-1) in
  let value =
    List.fold_left
      (fun v p ->
        let r, v' = Objtype.apply t.objtype v t.ops.(p) in
        responses.(p) <- r;
        v')
      t.initial procs
  in
  ((if procs = [] then None else Some responses), value)

let schedules t = Sched.at_most_once ~nprocs:t.nprocs

let u_set t ~first_team =
  schedules t
  |> List.filter_map (function
       | [] -> None
       | first :: _ as procs ->
           if t.team.(first) = first_team then Some (snd (replay t procs)) else None)
  |> List.sort_uniq compare

let check_recording t =
  let u0 = u_set t ~first_team:false and u1 = u_set t ~first_team:true in
  let disjoint = List.for_all (fun v -> not (List.mem v u1)) u0 in
  let hiding_ok x =
    let ux = if x then u1 else u0 in
    (not (List.mem t.initial ux)) || List.length (team_members t (not x)) = 1
  in
  disjoint && hiding_ok false && hiding_ok true

let check_discerning t =
  (* r_sets.(j) maps the pair (response of o_j, final value) to the team of
     the schedule's first process; a clash of teams for the same pair means
     R_{0,j} and R_{1,j} intersect. *)
  let r_sets = Array.init t.nprocs (fun _ -> Hashtbl.create 32) in
  let ok = ref true in
  List.iter
    (fun procs ->
      match procs with
      | [] -> ()
      | first :: _ ->
          let x = t.team.(first) in
          let responses, value = replay t procs in
          let responses = Option.get responses in
          List.iter
            (fun j ->
              let key = (responses.(j), value) in
              match Hashtbl.find_opt r_sets.(j) key with
              | None -> Hashtbl.add r_sets.(j) key x
              | Some x' -> if x' <> x then ok := false)
            procs)
    (schedules t);
  !ok

let first_team_of_value t v =
  let u0 = u_set t ~first_team:false and u1 = u_set t ~first_team:true in
  match (List.mem v u0, List.mem v u1) with
  | true, false -> Some false
  | false, true -> Some true
  | _, _ -> None

let is_clean t =
  (not (List.mem t.initial (u_set t ~first_team:false)))
  && not (List.mem t.initial (u_set t ~first_team:true))

let pp ppf t =
  let team x =
    team_members t x |> List.map (fun i -> Printf.sprintf "p%d" i) |> String.concat ","
  in
  Format.fprintf ppf "@[<v>type %s, u = %s@,T_0 = {%s}, T_1 = {%s}@,ops: %s@]"
    t.objtype.Objtype.name
    (t.objtype.Objtype.value_name t.initial)
    (team false) (team true)
    (String.concat ", "
       (List.init t.nprocs (fun i ->
            Printf.sprintf "p%d:%s" i (t.objtype.Objtype.op_name t.ops.(i)))))
