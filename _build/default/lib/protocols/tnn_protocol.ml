type wstate = WStart of int | WDone of int

let check_binary_input x =
  if x <> 0 && x <> 1 then invalid_arg "Tnn_protocol: inputs must be 0 or 1"

let wait_free_overloaded ~procs ~n ~n' : wstate Program.t =
  let ty = Gallery.tnn ~n ~n' in
  {
    Program.name = Printf.sprintf "tnn-waitfree(%d on T_{%d,%d})" procs n n';
    nprocs = procs;
    heap = [| (ty, Gallery.tnn_s) |];
    init =
      (fun ~proc:_ ~input ->
        check_binary_input input;
        WStart input);
    view =
      (fun ~proc:_ -> function
        | WDone v -> Program.Decided v
        | WStart x ->
            Program.Poised
              {
                obj = 0;
                op = Gallery.tnn_op (if x = 0 then `Op0 else `Op1);
                next =
                  (fun r ->
                    match Gallery.tnn_response ~n r with
                    | `Zero -> WDone 0
                    | `One -> WDone 1
                    | `Bot | `Value _ -> WDone 0);
              });
  }

let wait_free ~n ~n' = wait_free_overloaded ~procs:n ~n ~n'

type rstate = RStart of int | RApply of int | RDone of int

let recoverable_overloaded ~procs ~n ~n' : rstate Program.t =
  let ty = Gallery.tnn ~n ~n' in
  {
    Program.name = Printf.sprintf "tnn-recoverable(%d on T_{%d,%d})" procs n n';
    nprocs = procs;
    heap = [| (ty, Gallery.tnn_s) |];
    init =
      (fun ~proc:_ ~input ->
        check_binary_input input;
        RStart input);
    view =
      (fun ~proc:_ -> function
        | RDone v -> Program.Decided v
        | RStart x ->
            Program.Poised
              {
                obj = 0;
                op = Gallery.tnn_op `OpR;
                next =
                  (fun r ->
                    match Gallery.tnn_response ~n r with
                    | `Bot -> RDone 0
                    | `Value v when v = Gallery.tnn_s -> RApply x
                    | `Value v -> (
                        match Gallery.tnn_team_of_value ~n v with
                        | Some team -> RDone team
                        | None -> RDone 0)
                    | `Zero -> RDone 0
                    | `One -> RDone 1);
              }
        | RApply x ->
            Program.Poised
              {
                obj = 0;
                op = Gallery.tnn_op (if x = 0 then `Op0 else `Op1);
                next =
                  (fun r ->
                    match Gallery.tnn_response ~n r with
                    | `Zero -> RDone 0
                    | `One -> RDone 1
                    | `Bot | `Value _ -> RDone 0);
              });
  }

let recoverable ~n ~n' = recoverable_overloaded ~procs:n' ~n ~n'
